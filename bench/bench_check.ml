(* Benchmark regression gate (`make bench-check`).

   Compares a freshly generated BENCH_kernels.json against the baseline
   committed at HEAD (via `git show HEAD:BENCH_kernels.json`) and fails
   the build when the kernel engine regresses:

     1. digest drift   - a kernel's content digest differs from the
                         committed one.  The engine contract is strict
                         bit-identity across engine rewrites and
                         DCO3D_JOBS values, so this is never noise;
                         it means the numerics changed.
     2. speedup < 1.0  - the parallel leg is slower than the sequential
                         leg, modulo a small timing-noise tolerance
                         (DCO3D_BENCH_TOL, default 0.10: on hosts where
                         the jobs clamp makes both legs run the same
                         code, the ratio is pure noise around 1.0).
     3. par_ms regression - a kernel's parallel time exceeds the
                         committed baseline by more than
                         DCO3D_BENCH_REGRESS (default 0.15 = 15 %).
                         Catches "the new engine is slower than the one
                         we shipped" even when speedup still looks fine.
     4. per-op floors  - some rows promise more than "parallel is not
                         slower": predict_i8's speedup column is int8
                         time vs the float32 reference, and the
                         quantized engine ships with a >= 2x contract;
                         serve_fleet's is 2-shard over 1-shard wall
                         time, with a >= 1.5x scaling contract on
                         multi-core hosts (the fresh file's "cores"
                         header says what the bench machine had);
                         route_warm's is cold re-route over warm-start
                         time on a perturbed placement, with a >= 2x
                         incremental-routing contract.
                         Floors are gated with the same noise
                         tolerance: speedup < floor * (1 - tol) fails.

   Usage: dune exec bench/bench_check.exe [fresh.json [baseline.json]]
   With no arguments the fresh file is ./BENCH_kernels.json and the
   baseline is read from git. *)

let tol =
  match Sys.getenv_opt "DCO3D_BENCH_TOL" with
  | Some v -> float_of_string v
  | None -> 0.10

let regress =
  match Sys.getenv_opt "DCO3D_BENCH_REGRESS" with
  | Some v -> float_of_string v
  | None -> 0.15

type row = {
  op : string;
  seq_ms : float;
  par_ms : float;
  speedup : float;
  digest : string;
}

(* ------------------------------------------------------------------ *)
(* Minimal parser for the flat one-object-per-line format bench/main.ml
   emits.  Not a general JSON parser: it only has to read files this
   repository writes, and must keep working on older baselines that
   lack newer fields.                                                  *)
(* ------------------------------------------------------------------ *)

let find_field line key =
  let pat = Printf.sprintf "\"%s\":" key in
  let plen = String.length pat and llen = String.length line in
  let rec search i =
    if i + plen > llen then None
    else if String.sub line i plen = pat then Some (i + plen)
    else search (i + 1)
  in
  match search 0 with
  | None -> None
  | Some start ->
      let start = ref start in
      while !start < llen && line.[!start] = ' ' do
        incr start
      done;
      let stop = ref !start in
      (if !stop < llen && line.[!stop] = '"' then begin
         (* string value: scan to the closing quote *)
         incr start;
         incr stop;
         while !stop < llen && line.[!stop] <> '"' do
           incr stop
         done
       end
       else
         while
           !stop < llen && (match line.[!stop] with ',' | '}' -> false | _ -> true)
         do
           incr stop
         done);
      Some (String.trim (String.sub line !start (!stop - !start)))

let row_of_line line =
  match find_field line "op" with
  | None -> None
  | Some op ->
      let num key =
        match find_field line key with
        | Some v -> float_of_string v
        | None -> nan
      in
      Some
        {
          op;
          seq_ms = num "seq_ms";
          par_ms = num "par_ms";
          speedup = num "speedup";
          digest = Option.value ~default:"" (find_field line "digest");
        }

let rows_of_string text =
  String.split_on_char '\n' text |> List.filter_map row_of_line

(* header field of the combined file: core count of the machine the
   fresh run executed on (absent in older baselines -> assume 1) *)
let cores_of_string text =
  String.split_on_char '\n' text
  |> List.fold_left
       (fun acc line ->
         match acc with
         | Some _ -> acc
         | None -> (
             match find_field line "cores" with
             | Some v -> int_of_string_opt v
             | None -> None))
       None
  |> Option.value ~default:1

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let read_git_baseline () =
  let ic = Unix.open_process_in "git show HEAD:BENCH_kernels.json 2>/dev/null" in
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  match Unix.close_process_in ic with
  | Unix.WEXITED 0 -> Some (Buffer.contents buf)
  | _ -> None

(* ------------------------------------------------------------------ *)

let () =
  let fresh_path =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_kernels.json"
  in
  let fresh_text = read_file fresh_path in
  let fresh = rows_of_string fresh_text in
  let cores = cores_of_string fresh_text in
  if fresh = [] then begin
    Printf.eprintf "bench-check: no kernel rows in %s\n" fresh_path;
    exit 2
  end;
  let baseline =
    if Array.length Sys.argv > 2 then
      rows_of_string (read_file Sys.argv.(2))
    else
      match read_git_baseline () with
      | Some text -> rows_of_string text
      | None ->
          print_endline
            "bench-check: no committed BENCH_kernels.json at HEAD; checking \
             speedups only";
          []
  in
  let base_of op = List.find_opt (fun r -> r.op = op) baseline in
  let failures = ref 0 in
  let fail fmt =
    incr failures;
    Printf.printf ("  FAIL " ^^ fmt ^^ "\n")
  in
  Printf.printf
    "bench-check: %s vs committed baseline (tol %.0f%%, regression cap %.0f%%)\n"
    fresh_path (100. *. tol) (100. *. regress);
  Printf.printf "  %-24s %9s %9s %8s  %s\n" "op" "par ms" "base ms" "speedup"
    "verdict";
  List.iter
    (fun r ->
      let b = base_of r.op in
      let base_ms =
        match b with Some b -> Printf.sprintf "%9.2f" b.par_ms | None -> "        -"
      in
      let verdicts = ref [] in
      let floor =
        match r.op with
        | "predict_i8" -> 2.0
        (* warm-started incremental re-route promises >= 2x over a cold
           re-route of the same perturbed placement; the ratio compares
           two routing runs on the same schedule, so it holds at any
           core count *)
        | "route_warm" -> 2.0
        (* the sharded fleet promises >= 1.5x throughput at 2 shards,
           but only where a second core exists to scale onto; on a
           single-core host both legs time-slice one CPU and the bench
           folds them to ratio 1.0 *)
        | "serve_fleet" when cores >= 2 -> 1.5
        | _ -> 1.0
      in
      if r.speedup < floor *. (1.0 -. tol) then begin
        fail "%s: speedup %.2fx < %.2fx floor" r.op r.speedup
          (floor *. (1.0 -. tol));
        verdicts :=
          (if floor > 1.0 then "below-contract" else "slow-parallel")
          :: !verdicts
      end;
      (match b with
      | Some b when b.digest <> "" && r.digest <> b.digest ->
          fail "%s: digest %s differs from committed %s (numerics changed)"
            r.op r.digest b.digest;
          verdicts := "digest-drift" :: !verdicts
      | _ -> ());
      (match b with
      | Some b when r.par_ms > b.par_ms *. (1. +. regress) ->
          fail "%s: par %.2f ms is %+.0f%% vs committed %.2f ms" r.op r.par_ms
            (100. *. ((r.par_ms /. b.par_ms) -. 1.))
            b.par_ms;
          verdicts := "regressed" :: !verdicts
      | _ -> ());
      Printf.printf "  %-24s %9.2f %s %7.2fx  %s\n" r.op r.par_ms base_ms
        r.speedup
        (if !verdicts = [] then "ok" else String.concat "," !verdicts))
    fresh;
  (* a kernel silently vanishing from the bench is also a regression *)
  List.iter
    (fun b ->
      if not (List.exists (fun r -> r.op = b.op) fresh) then
        fail "%s: present in baseline but missing from %s" b.op fresh_path)
    baseline;
  if !failures > 0 then begin
    Printf.printf "bench-check: %d failure(s)\n" !failures;
    exit 1
  end;
  print_endline "bench-check: OK"
