(* DCO-3D benchmark harness: regenerates every table and figure of the
   paper's evaluation (section V) on the simulated substrate, plus
   bechamel microbenchmarks of the core kernels.

   Scaling knobs (environment variables):
     DCO3D_SCALE      design scale factor        (default 0.15; paper = 1.0)
     DCO3D_SAMPLES    dataset layouts per design (default 8;    paper = 300)
     DCO3D_EPOCHS     predictor training epochs  (default 8)
     DCO3D_BO_ITERS   Bayesian-opt evaluations   (default 8)
     DCO3D_DCO_ITERS  Algorithm-2 gradient steps (default 40)
     DCO3D_DESIGNS    comma-separated subset     (default all six)
     DCO3D_ONLY       comma-separated experiment subset
                      (table1,table2,fig2,fig5a,fig5b,fig5c,alg2,fig6,fig7,
                       table3,ablation,kernels,route,predict)

   Usage: dune exec bench/main.exe *)

module T = Dco3d_tensor.Tensor
module Rng = Dco3d_tensor.Rng
module Nl = Dco3d_netlist.Netlist
module Gen = Dco3d_netlist.Generator
module P = Dco3d_place
module Router = Dco3d_route.Router
module Fm = Dco3d_congestion.Feature_maps
module Metrics = Dco3d_congestion.Metrics
module Flow = Dco3d_flow.Flow
module Thermal = Dco3d_thermal.Thermal
module Dataset = Dco3d_core.Dataset
module Predictor = Dco3d_core.Predictor
module Dco = Dco3d_core.Dco
module Spreader = Dco3d_core.Spreader
module SiaUNet = Dco3d_nn.Siamese_unet
module Obs = Dco3d_obs.Obs
module Server = Dco3d_serve.Server
module Balance = Dco3d_serve.Balance
module Client = Dco3d_serve.Client

let env_int name default =
  match Sys.getenv_opt name with Some v -> int_of_string v | None -> default

let env_float name default =
  match Sys.getenv_opt name with Some v -> float_of_string v | None -> default

let scale = env_float "DCO3D_SCALE" 0.15
let n_samples = env_int "DCO3D_SAMPLES" 8
let epochs = env_int "DCO3D_EPOCHS" 8
let bo_iters = env_int "DCO3D_BO_ITERS" 8
let dco_iters = env_int "DCO3D_DCO_ITERS" 40

let designs =
  match Sys.getenv_opt "DCO3D_DESIGNS" with
  | Some s -> String.split_on_char ',' s
  | None -> [ "DMA"; "AES"; "ECG"; "LDPC"; "VGA"; "Rocket" ]

let only =
  match Sys.getenv_opt "DCO3D_ONLY" with
  | Some s -> Some (String.split_on_char ',' s)
  | None -> None

let enabled name =
  match only with None -> true | Some l -> List.mem name l

let section title =
  Printf.printf "\n%s\n%s\n%!" title (String.make (String.length title) '=')

let timed name f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  Printf.printf "[%s done in %.1f s]\n%!" name (Unix.gettimeofday () -. t0);
  r

(* ------------------------------------------------------------------ *)
(* shared per-design environments (built lazily, reused across
   experiments)                                                        *)
(* ------------------------------------------------------------------ *)

type design_env = {
  name : string;
  nl : Nl.t;
  ctx : Flow.context;
  mutable pin3d : Flow.result option;
  mutable dataset : Dataset.t option;
}

let envs : (string, design_env) Hashtbl.t = Hashtbl.create 8

let env_of name =
  match Hashtbl.find_opt envs name with
  | Some e -> e
  | None ->
      let nl = Gen.generate ~scale ~seed:42 (Gen.profile name) in
      let ctx = Flow.make_context nl in
      let e = { name; nl; ctx; pin3d = None; dataset = None } in
      Hashtbl.replace envs name e;
      e

let pin3d_of e =
  match e.pin3d with
  | Some r -> r
  | None ->
      let r = Flow.run_pin3d e.ctx in
      e.pin3d <- Some r;
      r

let dataset_of e =
  match e.dataset with
  | Some d -> d
  | None ->
      let d =
        timed (e.name ^ "/dataset") (fun () ->
            Dataset.build ~n_samples ~seed:7 ~route_cfg:e.ctx.Flow.route_cfg
              e.nl e.ctx.Flow.fp)
      in
      e.dataset <- Some d;
      d

(* one predictor shared by the prediction experiments and DCO, trained
   on the union of every requested design's dataset (the paper trains
   one model over its whole dataset) *)
let predictor_and_report =
  lazy
    (let ds = List.map (fun name -> dataset_of (env_of name)) designs in
     let merged = Dataset.merge ds in
     let train, test = Dataset.split ~test_fraction:0.2 ~seed:1 merged in
     let t0 = Unix.gettimeofday () in
     let p, rep = Predictor.train ~epochs ~input_hw:32 ~seed:3 ~train ~test () in
     Printf.printf
       "[predictor trained on %d layouts (+8x augmentation) in %.1f s]\n%!"
       (Array.length train.Dataset.samples)
       (Unix.gettimeofday () -. t0);
     (p, rep, test))

(* ------------------------------------------------------------------ *)
(* Table I: placement-parameter sampling coverage                       *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section "Table I - 3D placement parameters (sampling coverage)";
  print_endline
    "Sampling 300 knob configurations; every Table-I parameter with its\n\
     observed range (dataset construction draws from these):";
  let rng = Rng.create 99 in
  let samples = List.init 300 (fun _ -> P.Params.sample rng) in
  let assocs = List.map P.Params.to_assoc samples in
  let keys = List.map fst (P.Params.to_assoc P.Params.default) in
  List.iter
    (fun key ->
      let values = List.map (fun a -> List.assoc key a) assocs in
      let distinct = List.sort_uniq compare values in
      match float_of_string_opt (List.hd values) with
      | Some _ ->
          let floats = List.filter_map float_of_string_opt values in
          let lo = List.fold_left Float.min infinity floats in
          let hi = List.fold_left Float.max neg_infinity floats in
          Printf.printf "  %-38s range [%g, %g], %d distinct\n" key lo hi
            (List.length distinct)
      | None ->
          Printf.printf "  %-38s values {%s}\n" key
            (String.concat ", " distinct))
    keys

(* ------------------------------------------------------------------ *)
(* Table II: GNN node features                                          *)
(* ------------------------------------------------------------------ *)

let table2 () =
  section "Table II - handcrafted GNN node features";
  let e = env_of (List.hd designs) in
  let r = pin3d_of e in
  let f = Spreader.node_features r.Flow.placement in
  let names =
    [| "wst slack"; "wst output slew"; "wst input slew"; "drv net power";
       "int power"; "leakage"; "width"; "height"; "x0/W"; "y0/H"; "tier" |]
  in
  Printf.printf "design %s, %d cells, %d features per node:\n" e.name
    (T.dim f 0) (T.dim f 1);
  for k = 0 to T.dim f 1 - 1 do
    let n = T.dim f 0 in
    let acc = ref 0. and lo = ref infinity and hi = ref neg_infinity in
    for c = 0 to n - 1 do
      let v = T.get2 f c k in
      acc := !acc +. v;
      if v < !lo then lo := v;
      if v > !hi then hi := v
    done;
    Printf.printf "  %-16s mean %8.3f  range [%8.3f, %8.3f]%s\n" names.(k)
      (!acc /. float_of_int n) !lo !hi
      (if k >= 8 then "   (position augmentation)" else "")
  done

(* ------------------------------------------------------------------ *)
(* Fig. 2: input features and ground truth                              *)
(* ------------------------------------------------------------------ *)

let fig2 () =
  section "Fig. 2 - input feature maps and ground-truth congestion";
  let e = env_of (if List.mem "AES" designs then "AES" else List.hd designs) in
  let d = dataset_of e in
  let s = d.Dataset.samples.(0) in
  Printf.printf "design %s, one 3D global placement, %dx%d GCell maps:\n"
    e.name d.Dataset.nx d.Dataset.ny;
  Printf.printf "  %-16s %10s %10s %9s   (bottom die | top die)\n" "channel"
    "mean" "max" "nonzero%";
  let stats m =
    let nz = ref 0 in
    T.iteri_flat (fun _ v -> if v > 1e-9 then incr nz) m;
    (T.mean m, T.max_elt m, 100. *. float_of_int !nz /. float_of_int (T.numel m))
  in
  Array.iteri
    (fun ch name ->
      let mb, xb, nb = stats (T.channel s.Dataset.f_bottom ch) in
      let mt, xt, nt = stats (T.channel s.Dataset.f_top ch) in
      Printf.printf "  %-16s %10.3f %10.3f %8.1f%% | %.3f %.3f %.1f%%\n" name mb
        xb nb mt xt nt)
    Fm.channel_names;
  let mb, xb, nb = stats s.Dataset.c_bottom in
  let mt, xt, nt = stats s.Dataset.c_top in
  Printf.printf "  %-16s %10.3f %10.3f %8.1f%% | %.3f %.3f %.1f%%\n"
    "ground truth" mb xb nb mt xt nt

(* ------------------------------------------------------------------ *)
(* Fig. 5a: training curves                                             *)
(* ------------------------------------------------------------------ *)

let fig5a () =
  section "Fig. 5a - predictor training and testing loss curves (Eq. 4)";
  let _, rep, _ = Lazy.force predictor_and_report in
  print_endline "epoch  train-loss  test-loss";
  Array.iteri
    (fun epoch l ->
      Printf.printf "%5d  %10.4f  %10.4f\n" (epoch + 1) l
        rep.Predictor.test_loss.(epoch))
    rep.Predictor.train_loss;
  let last = rep.Predictor.epochs - 1 in
  Printf.printf
    "shape check: train %.4f -> %.4f (decreasing), test tracks train (%.4f)\n"
    rep.Predictor.train_loss.(0)
    rep.Predictor.train_loss.(last)
    rep.Predictor.test_loss.(last)

(* ------------------------------------------------------------------ *)
(* Fig. 5b: NRMSE / SSIM distributions                                  *)
(* ------------------------------------------------------------------ *)

let fig5b () =
  section "Fig. 5b - NRMSE and SSIM over the held-out test set";
  let p, _, test = Lazy.force predictor_and_report in
  let metrics = Predictor.evaluate p test in
  let nrmse = List.map fst metrics and ssim = List.map snd metrics in
  let hist name ~lo ~hi values =
    let h = Metrics.histogram ~bins:10 ~lo ~hi values in
    Printf.printf "  %s histogram [%g..%g]:" name lo hi;
    Array.iter (fun c -> Printf.printf " %3d" c) h;
    print_newline ()
  in
  hist "NRMSE" ~lo:0. ~hi:0.5 nrmse;
  hist "SSIM " ~lo:0. ~hi:1. ssim;
  Printf.printf "  NRMSE < 0.2: %5.1f%% of %d test maps   (paper: > 85%%)\n"
    (100. *. Metrics.fraction_below 0.2 nrmse)
    (List.length metrics);
  Printf.printf
    "  SSIM  > 0.8: %5.1f%% of test maps (> 0.7 sufficient: %5.1f%%; paper: > \
     85%% above 0.8)\n"
    (100. *. Metrics.fraction_above 0.8 ssim)
    (100. *. Metrics.fraction_above 0.7 ssim)

(* ------------------------------------------------------------------ *)
(* Fig. 5c: ours vs the RUDY estimator                                  *)
(* ------------------------------------------------------------------ *)

let fig5c () =
  section "Fig. 5c - prediction vs RUDY vs ground truth";
  let p, _, test = Lazy.force predictor_and_report in
  if Array.length test.Dataset.samples = 0 then
    print_endline "  (no test samples)"
  else begin
    let score (s : Dataset.sample) =
      let pred, _ = Predictor.predict p s.Dataset.f_bottom s.Dataset.f_top in
      let truth = s.Dataset.c_bottom in
      let rudy =
        T.add (T.channel s.Dataset.f_bottom 2) (T.channel s.Dataset.f_bottom 3)
      in
      let n01 = Metrics.normalize01 in
      ( Metrics.ssim (n01 pred) (n01 truth),
        Metrics.pearson pred truth,
        Metrics.ssim (n01 rudy) (n01 truth),
        Metrics.pearson rudy truth )
    in
    let scores = Array.map score test.Dataset.samples in
    let avg f =
      Array.fold_left (fun a s -> a +. f s) 0. scores
      /. float_of_int (Array.length scores)
    in
    Printf.printf "  averaged over %d test layouts (maps normalized to [0,1]):\n"
      (Array.length scores);
    Printf.printf "    ours vs ground truth: SSIM %.3f, pearson %.3f\n"
      (avg (fun (a, _, _, _) -> a))
      (avg (fun (_, b, _, _) -> b));
    Printf.printf "    RUDY vs ground truth: SSIM %.3f, pearson %.3f\n"
      (avg (fun (_, _, c, _) -> c))
      (avg (fun (_, _, _, d) -> d));
    print_endline
      "  shape check: the learned predictor beats the classical RUDY\n\
      \  estimator on both metrics (paper: far higher similarity)."
  end

(* ------------------------------------------------------------------ *)
(* Algorithm 2 convergence trace                                        *)
(* ------------------------------------------------------------------ *)

let dco_results : (string, Flow.result * Dco.report) Hashtbl.t =
  Hashtbl.create 8

(* Algorithm 2 drives gradients through the predictor, so it gets a
   model fit to the target design's own layout distribution — the
   paper's 300-layouts-per-design dataset gives its single model the
   same per-design densities; our scaled merged model cannot. *)
let design_predictors : (string, Predictor.t) Hashtbl.t = Hashtbl.create 8

let design_predictor_of name =
  match Hashtbl.find_opt design_predictors name with
  | Some p -> p
  | None ->
      let e = env_of name in
      let d = dataset_of e in
      let train, test = Dataset.split ~test_fraction:0.2 ~seed:1 d in
      let p, _ =
        Predictor.train ~epochs:(epochs + 4) ~input_hw:32 ~seed:3 ~train ~test
          ()
      in
      Hashtbl.replace design_predictors name p;
      p

let dco_of name =
  match Hashtbl.find_opt dco_results name with
  | Some r -> r
  | None ->
      let e = env_of name in
      let pin3d = pin3d_of e in
      let predictor = design_predictor_of name in
      let config = { Dco.default_config with Dco.iterations = dco_iters } in
      let optimized, rep =
        Dco.optimize ~config ~predictor pin3d.Flow.placement
      in
      let res = Flow.run_with_placement e.ctx ~name:"DCO-3D (ours)" optimized in
      (* GR-validated acceptance: the flow routes the spread placement
         anyway; if global routing does not confirm the predicted
         congestion gain, continue from the unmodified placement (any
         production flow would gate an optional optimization step the
         same way).  The paper's stronger predictor does not need this
         guard; ours sometimes does — see EXPERIMENTS.md. *)
      let res =
        if res.Flow.place_stage.Flow.overflow
           > pin3d.Flow.place_stage.Flow.overflow
        then begin
          Printf.printf
            "[%s: GR rejected the DCO placement (%d > %d overflow) - keeping              Pin-3D's]
%!"
            name res.Flow.place_stage.Flow.overflow
            pin3d.Flow.place_stage.Flow.overflow;
          { pin3d with Flow.flow_name = "DCO-3D (ours)" }
        end
        else res
      in
      Hashtbl.replace dco_results name (res, rep);
      (res, rep)

let alg2 () =
  section "Algorithm 2 / Fig. 4 - differentiable optimization trace";
  let name = List.hd designs in
  let _, rep = dco_of name in
  Printf.printf "design %s, %d iterations:\n" name (Array.length rep.Dco.stats);
  print_endline "  iter   total      disp      ovlp       cut      cong";
  let n = Array.length rep.Dco.stats in
  Array.iteri
    (fun i (s : Dco.iter_stats) ->
      if i mod (max 1 (n / 12)) = 0 || i = n - 1 then
        Printf.printf "  %4d  %8.4f  %8.4f  %8.5f  %8.4f  %8.4f\n" i s.Dco.total
          s.Dco.disp s.Dco.ovlp s.Dco.cut s.Dco.cong)
    rep.Dco.stats;
  Printf.printf
    "  predicted congestion %.4f -> %.4f, cut %d -> %d, %d tier moves, mean \
     displacement %.3f um\n"
    rep.Dco.predicted_cong_start rep.Dco.predicted_cong_end rep.Dco.cut_start
    rep.Dco.cut_end rep.Dco.tier_moves rep.Dco.mean_displacement

(* ------------------------------------------------------------------ *)
(* Fig. 6 / Fig. 7: LDPC congestion and density maps                    *)
(* ------------------------------------------------------------------ *)

let map_summary label (m : T.t) =
  let nz = ref 0 in
  T.iteri_flat (fun _ v -> if v > 1e-9 then incr nz) m;
  Printf.printf "    %-22s sum %9.1f  max %7.2f  hotspot bins %4d\n" label
    (T.sum m) (T.max_elt m) !nz

let fig6_name = "LDPC"

let fig6 () =
  section "Fig. 6 - post-route congestion maps, Pin-3D vs DCO-3D (LDPC)";
  let name = if List.mem fig6_name designs then fig6_name else List.hd designs in
  let e = env_of name in
  let pin3d = pin3d_of e in
  let dco, _ = dco_of name in
  Printf.printf "  %s (Pin-3D):\n" name;
  map_summary "bottom die overflow" pin3d.Flow.route.Router.congestion.(0);
  map_summary "top die overflow" pin3d.Flow.route.Router.congestion.(1);
  Printf.printf "  %s (DCO-3D):\n" name;
  map_summary "bottom die overflow" dco.Flow.route.Router.congestion.(0);
  map_summary "top die overflow" dco.Flow.route.Router.congestion.(1);
  print_endline "  bottom-die overflow heat maps (shared scale):";
  print_endline
    (Dco3d_congestion.Ascii_map.render_pair ~width:72
       ~labels:("Pin-3D", "DCO-3D")
       pin3d.Flow.route.Router.congestion.(0)
       dco.Flow.route.Router.congestion.(0));
  print_endline
    "  shape check: DCO-3D's maps carry less total overflow and fewer\n\
    \  hotspot bins than Pin-3D's (paper Fig. 6)."

let fig7 () =
  section "Fig. 7 - post-route density maps, Pin-3D vs DCO-3D (LDPC)";
  let name = if List.mem fig6_name designs then fig6_name else List.hd designs in
  let e = env_of name in
  let pin3d = pin3d_of e in
  let dco, _ = dco_of name in
  let nx = e.ctx.Flow.fp.P.Floorplan.gcell_nx in
  let ny = e.ctx.Flow.fp.P.Floorplan.gcell_ny in
  let peak_and_over p tier =
    let d = P.Placement.density_map p ~tier ~nx ~ny in
    let over = ref 0 in
    T.iteri_flat (fun _ v -> if v > 0.9 then incr over) d;
    (T.max_elt d, !over)
  in
  List.iter
    (fun (label, r) ->
      Printf.printf "  %s:\n" label;
      for tier = 0 to 1 do
        let peak, over = peak_and_over r.Flow.placement tier in
        Printf.printf "    die %d: peak density %.2f, bins over 0.9: %d\n" tier
          peak over
      done)
    [ ("Pin-3D", pin3d); ("DCO-3D", dco) ];
  print_endline
    "  shape check: DCO-3D distributes cells more evenly (fewer dense bins)."

(* ------------------------------------------------------------------ *)
(* Table III                                                            *)
(* ------------------------------------------------------------------ *)

let table3 () =
  section "Table III - optimization results over the benchmark suite";
  Printf.printf
    "design scale %.2f (paper = 1.0); same seed, routing fabric and clock \
     across the flows of a design.\n\n"
    scale;
  let header () =
    Printf.printf "%-16s | %9s %7s %7s %7s | %9s %11s %9s %12s %7s %7s\n"
      "flow" "overflow" "gcell%" "H ovf" "V ovf" "wns(ps)" "tns(ps)"
      "power(mW)" "WL(um)" "Tpk(C)" "Tavg(C)"
  in
  let row (r : Flow.result) =
    Printf.printf
      "%-16s | %9d %6.2f%% %7d %7d | %9.2f %11.1f %9.3f %12.1f %7.1f %7.1f\n"
      r.Flow.flow_name r.Flow.place_stage.Flow.overflow
      r.Flow.place_stage.Flow.ovf_gcell_pct r.Flow.place_stage.Flow.ovf_h
      r.Flow.place_stage.Flow.ovf_v r.Flow.signoff.Flow.wns_ps
      r.Flow.signoff.Flow.tns_ps r.Flow.signoff.Flow.power_mw
      r.Flow.signoff.Flow.wirelength_um r.Flow.signoff.Flow.peak_temp_c
      r.Flow.signoff.Flow.avg_temp_c
  in
  let pct a b = 100. *. (a -. b) /. Float.max 1e-9 (abs_float b) in
  List.iter
    (fun name ->
      let e = env_of name in
      Printf.printf "--- %s (#cells: %d, #nets: %d, #IO: %d) ---\n" name
        (Nl.n_cells e.nl) (Nl.n_nets e.nl) (Nl.n_ios e.nl);
      header ();
      let pin3d = timed (name ^ "/Pin3D") (fun () -> pin3d_of e) in
      row pin3d;
      let cong = timed (name ^ "/Cong") (fun () -> Flow.run_pin3d_cong e.ctx) in
      row cong;
      let bo =
        timed (name ^ "/BO") (fun () ->
            Flow.run_pin3d_bo ~iterations:bo_iters e.ctx)
      in
      row bo;
      let dco, _ = timed (name ^ "/DCO") (fun () -> dco_of name) in
      row dco;
      Printf.printf
        "DCO-3D vs Pin-3D: overflow %+.1f%%, wns %+.1f%%, tns %+.1f%%, power \
         %+.1f%%, WL %+.1f%%, peak temp %+.1f C\n\n"
        (pct
           (float_of_int dco.Flow.place_stage.Flow.overflow)
           (float_of_int pin3d.Flow.place_stage.Flow.overflow))
        (pct (-.dco.Flow.signoff.Flow.wns_ps) (-.pin3d.Flow.signoff.Flow.wns_ps))
        (pct (-.dco.Flow.signoff.Flow.tns_ps) (-.pin3d.Flow.signoff.Flow.tns_ps))
        (pct dco.Flow.signoff.Flow.power_mw pin3d.Flow.signoff.Flow.power_mw)
        (pct dco.Flow.signoff.Flow.wirelength_um
           pin3d.Flow.signoff.Flow.wirelength_um)
        (dco.Flow.signoff.Flow.peak_temp_c -. pin3d.Flow.signoff.Flow.peak_temp_c))
    designs

(* ------------------------------------------------------------------ *)
(* Ablations: the design choices DESIGN.md calls out                    *)
(* ------------------------------------------------------------------ *)

let ablation () =
  section "Ablation - what each Algorithm-2 ingredient buys";
  let name = List.hd designs in
  let e = env_of name in
  let pin3d = pin3d_of e in
  let predictor, _, _ = Lazy.force predictor_and_report in
  let run label config =
    let optimized, rep = Dco.optimize ~config ~predictor pin3d.Flow.placement in
    let res = Flow.run_with_placement e.ctx ~name:label optimized in
    Printf.printf
      "  %-24s overflow %6d  tns %10.1f  WL %10.1f  cut %5d  disp %.3f um\n%!"
      label res.Flow.place_stage.Flow.overflow res.Flow.signoff.Flow.tns_ps
      res.Flow.signoff.Flow.wirelength_um
      (P.Placement.cut_size res.Flow.placement)
      rep.Dco.mean_displacement
  in
  Printf.printf "  %-24s overflow %6d  tns %10.1f  WL %10.1f  cut %5d\n"
    "Pin-3D (no DCO)" pin3d.Flow.place_stage.Flow.overflow
    pin3d.Flow.signoff.Flow.tns_ps pin3d.Flow.signoff.Flow.wirelength_um
    (P.Placement.cut_size pin3d.Flow.placement);
  let base = { Dco.default_config with Dco.iterations = dco_iters } in
  run "DCO-3D (full)" base;
  run "DCO-3D (2D only, z frozen)" { base with Dco.freeze_z = true };
  run "DCO-3D (no displacement)" { base with Dco.alpha = 0. };
  run "DCO-3D (no cutsize)" { base with Dco.gamma = 0. };
  run "DCO-3D (no congestion)" { base with Dco.delta = 0. };
  print_endline
    "  shape check: removing the congestion loss removes the overflow gain;\n\
    \  removing displacement lets wirelength blow up; removing cutsize\n\
    \  inflates the number of 3D nets (section V-C's co-optimization claim)."

(* ------------------------------------------------------------------ *)
(* Kernel microbenchmarks: sequential vs parallel                       *)
(* ------------------------------------------------------------------ *)

module Pool = Dco3d_parallel.Pool

(* Content digest of a kernel's numeric result.  Written to
   BENCH_kernels.digest (no timings, so the file is stable run-to-run)
   and compared across DCO3D_JOBS values by `make bench-deterministic`. *)
let digest_tensors ts =
  let buf = Buffer.create 4096 in
  List.iter
    (fun t ->
      Buffer.add_string buf
        (Marshal.to_string (T.shape t, Array.init (T.numel t) (T.get_flat t))
           []))
    ts;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* Median-of-N timing.  These numbers feed bench_check's par_ms drift
   cap against the committed baseline, and on a loaded CI host the
   best-of-N minimum still jitters enough to trip a 15% cap — the
   median of three discards a whole outlier leg instead.  With fewer
   than three reps this degrades to the minimum. *)
let time_best reps f =
  let reps = max 1 reps in
  let samples = Array.make reps infinity in
  let result = ref None in
  for i = 0 to reps - 1 do
    let t0 = Unix.gettimeofday () in
    let r = f () in
    samples.(i) <- Unix.gettimeofday () -. t0;
    if !result = None then result := Some r
  done;
  Array.sort compare samples;
  let t = if reps >= 3 then samples.(reps / 2) else samples.(0) in
  (t, Option.get !result)

type kernel_row = {
  k_name : string;
  k_size : string;
  k_flops : float option;
  k_seq_ms : float;
  k_par_ms : float;
  k_digest : string;
  k_ok : bool;
}

let kernels () =
  section "Kernel microbenchmarks (sequential vs parallel)";
  let target_jobs = Pool.jobs () in
  let e = env_of (List.hd designs) in
  let r = pin3d_of e in
  let p = r.Flow.placement in
  let rng = Rng.create 5 in
  let ma = T.rand_uniform rng [| 256; 256 |] in
  let mb = T.rand_uniform rng [| 256; 256 |] in
  let img = T.rand_uniform rng [| 8; 64; 64 |] in
  let w = T.randn rng [| 16; 8; 3; 3 |] in
  let gout = T.rand_uniform rng [| 16; 64; 64 |] in
  let timg = T.rand_uniform rng [| 8; 32; 32 |] in
  let tw = T.randn rng [| 8; 8; 4; 4 |] in
  let conv_flops co ci kh kw oh ow =
    2. *. float_of_int (co * ci * kh * kw * oh * ow)
  in
  let cases =
    [
      ( "matmul",
        "256x256x256",
        Some (2. *. (256. ** 3.)),
        3,
        fun () -> [ T.matmul ma mb ] );
      ( "conv2d",
        "8x64x64 -> 16x64x64, 3x3",
        Some (conv_flops 16 8 3 3 64 64),
        3,
        fun () -> [ T.conv2d ~pad:1 img ~weight:w ~bias:None ] );
      ( "conv2d_backward_input",
        "16x64x64 -> 8x64x64, 3x3",
        Some (conv_flops 16 8 3 3 64 64),
        3,
        fun () ->
          [
            T.conv2d_backward_input ~pad:1 ~input_shape:[| 8; 64; 64 |]
              ~weight:w gout;
          ] );
      ( "conv2d_backward_weight",
        "16x8x3x3 over 64x64",
        Some (conv_flops 16 8 3 3 64 64),
        3,
        fun () ->
          [
            T.conv2d_backward_weight ~pad:1 ~input:img
              ~weight_shape:[| 16; 8; 3; 3 |] gout;
          ] );
      ( "conv2d_transpose",
        "8x32x32 -> 8x64x64, 4x4 s2",
        Some (conv_flops 8 8 4 4 32 32),
        3,
        fun () -> [ T.conv2d_transpose ~stride:2 ~pad:1 timg ~weight:tw ~bias:None ] );
      ( "rudy_map",
        Printf.sprintf "%s, 64x64 gcells" e.name,
        None,
        3,
        fun () ->
          [
            Dco3d_congestion.Rudy.rudy_map p ~tier:0
              ~kind:Dco3d_congestion.Rudy.All ~nx:64 ~ny:64;
          ] );
      ( "thermal_solve",
        Printf.sprintf "%s, 2x48x48 gcells" e.name,
        None,
        3,
        fun () ->
          let r = Thermal.solve_placement ~nx:48 ~ny:48 p in
          [ r.Thermal.grid ] );
      ( "corpus_gen",
        "dma + ecg-local + vga-macro @ 0.05",
        None,
        3,
        fun () ->
          (* digest the generated netlists themselves: the tensor packs
             each corpus point's content digest with its cell/net
             counts, so the seq-vs-par digest match proves corpus
             generation is jobs-invariant *)
          List.map
            (fun name ->
              let s =
                Dco3d_corpus.Corpus.scaled 0.05 (Dco3d_corpus.Corpus.find name)
              in
              let nl = Dco3d_corpus.Corpus.generate s in
              let dg = Dco3d_corpus.Corpus.netlist_digest nl in
              T.of_array1
                (Array.append
                   (Array.init (String.length dg) (fun i ->
                        float_of_int (Char.code dg.[i])))
                   [|
                     float_of_int (Nl.n_cells nl);
                     float_of_int (Nl.n_nets nl);
                   |]))
            [ "dma"; "ecg-local"; "vga-macro" ] );
      ( "dataset_build",
        Printf.sprintf "%s, 4 layouts" e.name,
        None,
        3,
        fun () ->
          let d =
            Dataset.build ~n_samples:4 ~seed:11 ~route_cfg:e.ctx.Flow.route_cfg
              e.nl e.ctx.Flow.fp
          in
          Array.to_list d.Dataset.samples
          |> List.concat_map (fun s ->
                 [
                   s.Dataset.f_bottom; s.Dataset.f_top; s.Dataset.c_bottom;
                   s.Dataset.c_top;
                 ]) );
    ]
  in
  (* effective_jobs clamps to the hardware; on a small host the
     "parallel" leg may legitimately run the same schedule as the
     sequential one, so report both numbers honestly *)
  let effective = Pool.effective_jobs () in
  Printf.printf "  jobs: sequential=1 parallel=%d (effective %d of %d cores)\n"
    target_jobs effective
    (Domain.recommended_domain_count ());
  Printf.printf "  %-24s %-28s %9s %9s %8s %9s %s\n" "op" "size" "seq ms"
    "par ms" "speedup" "GFLOP/s" "digest match";
  let rows =
    List.map
      (fun (name, size, flops, reps, run) ->
        (* DCO3D_BENCH_REPS raises every case's repetition floor; more
           best-of-N samples tighten the seq/par ratio on noisy hosts *)
        let reps = max reps (env_int "DCO3D_BENCH_REPS" reps) in
        Pool.set_jobs 1;
        let seq_t, seq_r = time_best reps run in
        Pool.set_jobs target_jobs;
        let par_t, par_r = time_best reps run in
        (* With the hardware clamp at one effective job, both legs run
           the byte-identical inline schedule, so the true ratio is 1.0
           and any measured deviation is timing noise.  Fold the two
           legs' samples into one best time rather than reporting the
           noise as a speedup or a slowdown. *)
        let seq_t, par_t =
          if effective = 1 then
            let best = Float.min seq_t par_t in
            (best, best)
          else (seq_t, par_t)
        in
        let dseq = digest_tensors seq_r and dpar = digest_tensors par_r in
        let ok = String.equal dseq dpar in
        let gflops =
          match flops with
          | Some f -> Printf.sprintf "%9.3f" (f /. par_t /. 1e9)
          | None -> "        -"
        in
        Printf.printf "  %-24s %-28s %9.2f %9.2f %7.2fx %s %s\n%!" name size
          (seq_t *. 1e3) (par_t *. 1e3) (seq_t /. par_t) gflops
          (if ok then "ok" else "MISMATCH");
        {
          k_name = name;
          k_size = size;
          k_flops = flops;
          k_seq_ms = seq_t *. 1e3;
          k_par_ms = par_t *. 1e3;
          k_digest = dseq;
          k_ok = ok;
        })
      cases
  in
  if List.exists (fun k -> not k.k_ok) rows then begin
    prerr_endline
      "kernels: parallel result diverged from sequential result (digest \
       mismatch)";
    exit 1
  end;
  rows

(* ------------------------------------------------------------------ *)
(* Route benchmark: sequential vs parallel repair waves                 *)
(* ------------------------------------------------------------------ *)

let route_bench () =
  section "Route benchmark (sequential vs parallel repair waves)";
  let target_jobs = Pool.jobs () in
  let e = env_of (List.hd designs) in
  let r = pin3d_of e in
  let p = r.Flow.placement in
  let cfg = e.ctx.Flow.route_cfg in
  let fp = e.ctx.Flow.fp in
  let size =
    Printf.sprintf "%s, %dx%dx2 gcells" e.name fp.P.Floorplan.gcell_nx
      fp.P.Floorplan.gcell_ny
  in
  let effective = Pool.effective_jobs () in
  Printf.printf "  jobs: sequential=1 parallel=%d (effective %d of %d cores)\n"
    target_jobs effective
    (Domain.recommended_domain_count ());
  let reps = max 3 (env_int "DCO3D_BENCH_REPS" 3) in
  let run () = Router.route ~config:cfg p in
  Pool.set_jobs 1;
  let seq_t, seq_r = time_best reps run in
  Pool.set_jobs target_jobs;
  let par_t, par_r = time_best reps run in
  (* same honest-reporting rule as the kernels: one effective job means
     both legs ran the identical inline schedule *)
  let seq_t, par_t =
    if effective = 1 then
      let best = Float.min seq_t par_t in
      (best, best)
    else (seq_t, par_t)
  in
  let dseq = Router.digest seq_r and dpar = Router.digest par_r in
  let ok = String.equal dseq dpar in
  Printf.printf "  %-24s %-28s %9s %9s %8s %s\n" "op" "size" "seq ms" "par ms"
    "speedup" "digest match";
  Printf.printf "  %-24s %-28s %9.2f %9.2f %7.2fx %s\n%!" "route" size
    (seq_t *. 1e3) (par_t *. 1e3) (seq_t /. par_t)
    (if ok then "ok" else "MISMATCH");
  Printf.printf "    overflow %d (%.2f%% gcells), wirelength %.1f um, %d \
                 repair passes\n"
    seq_r.Router.overflow_total seq_r.Router.overflow_gcell_pct
    seq_r.Router.wirelength seq_r.Router.iterations_run;
  if not ok then begin
    prerr_endline
      "route: parallel repair diverged from sequential repair (digest \
       mismatch)";
    exit 1
  end;
  (* Incremental re-route after an ECO-sized perturbation (2% of cells
     nudged sub-GCell distances).  The row's headline ratio is cold
     re-route time over warm-start time on the same schedule,
     floor-gated at >= 2x by bench_check; the congestion-parity
     contract (warm overflow/wirelength within 5% of the cold route)
     and jobs-invariance of the warm digest are asserted right here. *)
  let perturbed = P.Placer.perturb ~seed:1 ~fraction:0.02 p in
  Pool.set_jobs 1;
  let _, warm_seq_r =
    time_best reps (fun () -> Router.route ~config:cfg ~warm_start:(seq_r, p) perturbed)
  in
  Pool.set_jobs target_jobs;
  let cold_t, cold_r =
    time_best reps (fun () -> Router.route ~config:cfg perturbed)
  in
  let warm_t, warm_r =
    time_best reps (fun () -> Router.route ~config:cfg ~warm_start:(seq_r, p) perturbed)
  in
  let dwseq = Router.digest warm_seq_r and dwpar = Router.digest warm_r in
  let warm_jobs_ok = String.equal dwseq dwpar in
  let ovf_ok =
    float_of_int warm_r.Router.overflow_total
    <= 1.05 *. Float.max 1. (float_of_int cold_r.Router.overflow_total)
  in
  let wl_dev =
    abs_float (warm_r.Router.wirelength -. cold_r.Router.wirelength)
    /. Float.max 1. cold_r.Router.wirelength
  in
  let warm_ok = warm_jobs_ok && ovf_ok && wl_dev <= 0.05 in
  Printf.printf "  %-24s %-28s %9.2f %9.2f %7.2fx %s\n%!" "route_warm" size
    (cold_t *. 1e3) (warm_t *. 1e3) (cold_t /. warm_t)
    (if warm_ok then "ok" else "MISMATCH");
  Printf.printf
    "    warm: overflow %d vs cold %d, WL dev %.2f%%, %d repair passes\n"
    warm_r.Router.overflow_total cold_r.Router.overflow_total (100. *. wl_dev)
    warm_r.Router.iterations_run;
  if not warm_jobs_ok then begin
    prerr_endline
      "route_warm: warm-start digest differs between DCO3D_JOBS=1 and N";
    exit 1
  end;
  if not warm_ok then begin
    prerr_endline
      "route_warm: warm start broke congestion parity (overflow or \
       wirelength more than 5% off the cold route)";
    exit 1
  end;
  [
    {
      k_name = "route";
      k_size = size;
      k_flops = None;
      k_seq_ms = seq_t *. 1e3;
      k_par_ms = par_t *. 1e3;
      k_digest = dseq;
      k_ok = ok;
    };
    {
      k_name = "route_warm";
      k_size = size;
      k_flops = None;
      (* seq_ms = cold re-route of the perturbed placement, par_ms =
         warm-started re-route: the row's speedup is the incremental
         payoff, floor-gated at >= 2x by bench_check *)
      k_seq_ms = cold_t *. 1e3;
      k_par_ms = warm_t *. 1e3;
      k_digest = dwpar;
      k_ok = warm_ok;
    };
  ]

(* ------------------------------------------------------------------ *)
(* Predict benchmark: float32 vs int8 inference                         *)
(* ------------------------------------------------------------------ *)

let predict_bench () =
  section "Predict benchmark (float32 vs quantized int8 inference)";
  let target_jobs = Pool.jobs () in
  let effective = Pool.effective_jobs () in
  (* An untrained network exercises the identical kernel mix as a
     trained one (weights are random either way here), so the bench
     needs no training run — same trick as the serve smoke test. *)
  let net =
    SiaUNet.create (Rng.create 3)
      { SiaUNet.default_config with SiaUNet.base_channels = 8 }
  in
  let predictor = { Predictor.net; input_hw = 32; label_scale = 1.0 } in
  let rng = Rng.create 11 in
  let batch = 8 and hw = 48 in
  let pairs =
    Array.init batch (fun _ ->
        ( T.rand_uniform rng [| Fm.n_channels; hw; hw |],
          T.rand_uniform rng [| Fm.n_channels; hw; hw |] ))
  in
  let size = Printf.sprintf "batch %d, %dx%d gcells" batch hw hw in
  let digest_preds r =
    digest_tensors
      (Array.to_list r |> List.concat_map (fun (a, b) -> [ a; b ]))
  in
  (* the predict legs are long (~100 ms) but the headline ratio rides
     on both legs' minima; seven reps keep those minima stable on a
     noisy host *)
  let reps = max 7 (env_int "DCO3D_BENCH_REPS" 7) in
  let run numeric () = Predictor.predict_batch ~numeric predictor pairs in
  Pool.set_jobs 1;
  let f32_seq_t, f32_seq = time_best reps (run `F32) in
  let i8_seq_t, i8_seq = time_best reps (run `I8) in
  Pool.set_jobs target_jobs;
  let f32_par_t, f32_par = time_best reps (run `F32) in
  let i8_par_t, i8_par = time_best reps (run `I8) in
  let fold seq par = if effective = 1 then
      let best = Float.min seq par in (best, best)
    else (seq, par)
  in
  let f32_seq_t, f32_par_t = fold f32_seq_t f32_par_t in
  let _, i8_par_t = fold i8_seq_t i8_par_t in
  let df32_seq = digest_preds f32_seq and df32_par = digest_preds f32_par in
  let di8_seq = digest_preds i8_seq and di8_par = digest_preds i8_par in
  let f32_ok = String.equal df32_seq df32_par in
  let i8_ok = String.equal di8_seq di8_par in
  Printf.printf "  jobs: sequential=1 parallel=%d (effective %d of %d cores)\n"
    target_jobs effective
    (Domain.recommended_domain_count ());
  Printf.printf "  %-24s %-28s %9s %9s %8s %s\n" "op" "size" "seq ms" "par ms"
    "speedup" "digest match";
  Printf.printf "  %-24s %-28s %9.2f %9.2f %7.2fx %s\n%!" "predict_f32" size
    (f32_seq_t *. 1e3) (f32_par_t *. 1e3) (f32_seq_t /. f32_par_t)
    (if f32_ok then "ok" else "MISMATCH");
  (* the int8 row's "speedup" column is the headline ratio: float32
     time over int8 time on the same schedule *)
  Printf.printf "  %-24s %-28s %9.2f %9.2f %7.2fx %s\n%!" "predict_i8" size
    (f32_par_t *. 1e3) (i8_par_t *. 1e3) (f32_par_t /. i8_par_t)
    (if i8_ok then "ok" else "MISMATCH");
  if not (f32_ok && i8_ok) then begin
    prerr_endline
      "predict: parallel result diverged from sequential result (digest \
       mismatch)";
    exit 1
  end;
  let parity = Dco3d_core.Parity.compare ~f32:f32_par ~i8:i8_par in
  Printf.printf "  ";
  Dco3d_core.Parity.pp stdout parity;
  print_newline ();
  let oc = open_out "BENCH_parity.json" in
  output_string oc (Dco3d_core.Parity.to_json parity);
  output_char oc '\n';
  close_out oc;
  Printf.printf "  [wrote BENCH_parity.json]\n%!";
  (match Dco3d_core.Parity.check parity with
  | Ok () -> ()
  | Error msg ->
      prerr_endline ("predict: parity violation: " ^ msg);
      exit 1);
  [
    {
      k_name = "predict_f32";
      k_size = size;
      k_flops = None;
      k_seq_ms = f32_seq_t *. 1e3;
      k_par_ms = f32_par_t *. 1e3;
      k_digest = df32_seq;
      k_ok = f32_ok;
    };
    {
      k_name = "predict_i8";
      k_size = size;
      k_flops = None;
      (* seq_ms = float32 time, par_ms = int8 time: the row's speedup
         is the quantization payoff, gated at >= 2x by bench_check *)
      k_seq_ms = f32_par_t *. 1e3;
      k_par_ms = i8_par_t *. 1e3;
      k_digest = di8_seq;
      k_ok = i8_ok;
    };
  ]

let serve_bench () =
  section "Serve benchmark (shard scaling under concurrent clients)";
  (* the fleet legs spawn real `dco3d serve --shard-of` processes, so
     shard scaling reflects genuine multi-process parallelism rather
     than domains contending inside this bench process *)
  let exe =
    Filename.concat (Filename.dirname Sys.executable_name) "../bin/dco3d.exe"
  in
  if not (Sys.file_exists exe) then begin
    Printf.printf "  [skipped: %s not built - run `dune build bin/dco3d.exe`]\n"
      exe;
    []
  end
  else begin
    let cores = Domain.recommended_domain_count () in
    let n_clients = 4 and reqs_per_client = env_int "DCO3D_SERVE_REQS" 6 in
    let seed = 3 and input_hw = 16 in
    let hw = 14 in
    let tmp_name =
      let n = ref 0 in
      fun suffix ->
        incr n;
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "dco3d_bench_%d_%d%s" (Unix.getpid ()) !n suffix)
    in
    (* one fixed request set, reused by both legs so their reply
       digests are comparable bit-for-bit *)
    let rng = Rng.create 41 in
    let inputs =
      Array.init n_clients (fun _ ->
          Array.init reqs_per_client (fun _ ->
              ( T.rand_uniform rng [| Fm.n_channels; hw; hw |],
                T.rand_uniform rng [| Fm.n_channels; hw; hw |] )))
    in
    (* ground truth: the same untrained predictor the shards build from
       --seed/--input-hw (bin/dco3d.ml's untrained_predictor) *)
    let predictor =
      let net =
        SiaUNet.create (Rng.create seed)
          { SiaUNet.default_config with SiaUNet.base_channels = 8 }
      in
      { Predictor.net; input_hw; label_scale = 1.0 }
    in
    let digest_replies replies =
      digest_tensors
        (Array.to_list replies
        |> List.concat_map (fun per_client ->
               Array.to_list per_client
               |> List.concat_map (fun (a, b) -> [ a; b ])))
    in
    let expected_digest =
      digest_replies
        (Array.map
           (Array.map (fun (b, t) -> Predictor.predict predictor b t))
           inputs)
    in
    let run_leg n_shards =
      let ctl = tmp_name ".ctl" in
      let argv_of i =
        [|
          exe; "serve"; "--shard-of"; ctl; "--shard-id"; string_of_int i;
          "--seed"; string_of_int seed; "--input-hw"; string_of_int input_hw;
          "--linger-ms"; "2"; "--numeric"; "f32";
        |]
      in
      let cfg =
        Balance.default_config
          ~address:(Server.Unix_path (tmp_name ".sock"))
          ~ctl_path:ctl ~n_shards
      in
      let b = Balance.start cfg ~argv_of in
      Fun.protect
        ~finally:(fun () -> Balance.stop b)
        (fun () ->
          if not (Balance.await_live ~timeout_s:120. b n_shards) then begin
            Printf.eprintf "serve: %d-shard fleet failed to come up\n" n_shards;
            exit 1
          end;
          let addr = Balance.bound_addr b in
          let replies =
            Array.map (Array.map (fun _ -> (T.zeros [| 1 |], T.zeros [| 1 |])))
              inputs
          in
          let failed = Atomic.make false in
          let storm () =
            let threads =
              List.init n_clients (fun c ->
                  Thread.create
                    (fun () ->
                      let cl = Client.connect addr in
                      Array.iteri
                        (fun k (fb, ft) ->
                          match Client.retry ~attempts:10 ~seed:(c + k) cl fb ft with
                          | Client.Ok { c_bottom; c_top; _ } ->
                              replies.(c).(k) <- (c_bottom, c_top)
                          | _ -> Atomic.set failed true)
                        inputs.(c);
                      Client.close cl)
                    ())
            in
            List.iter Thread.join threads
          in
          let t0 = Unix.gettimeofday () in
          storm ();
          let dt = Unix.gettimeofday () -. t0 in
          if Atomic.get failed then begin
            Printf.eprintf "serve: requests failed against the %d-shard fleet\n"
              n_shards;
            exit 1
          end;
          (dt, digest_replies replies))
    in
    let t1, d1 = run_leg 1 in
    let tn, dn = run_leg 2 in
    (* same honesty rule as the kernel sections: on a single-core host
       two shards time-slice one CPU, the true ratio is 1.0, and any
       measured deviation is scheduling noise - fold the legs *)
    let t1, tn =
      if cores < 2 then
        let best = Float.min t1 tn in
        (best, best)
      else (t1, tn)
    in
    let total = n_clients * reqs_per_client in
    let rps dt = float_of_int total /. dt in
    let size =
      Printf.sprintf "%d clients x %d reqs, 1->2 shards" n_clients
        reqs_per_client
    in
    let ok = String.equal d1 dn && String.equal d1 expected_digest in
    Printf.printf "  %-24s %-28s %9s %9s %8s %s\n" "op" "size" "1sh req/s"
      "2sh req/s" "scaling" "digest match";
    Printf.printf "  %-24s %-28s %9.1f %9.1f %7.2fx %s\n%!" "serve_fleet" size
      (rps t1) (rps tn) (t1 /. tn)
      (if ok then "ok (= local predict)" else "MISMATCH");
    if not ok then begin
      prerr_endline
        "serve: fleet replies diverged from the local Predictor.predict \
         reference (digest mismatch)";
      exit 1
    end;
    [
      {
        k_name = "serve_fleet";
        k_size = size;
        k_flops = None;
        (* seq_ms = 1-shard wall time, par_ms = 2-shard wall time: the
           row's speedup is the shard-scaling factor, floor-gated by
           bench_check on multi-core hosts *)
        k_seq_ms = t1 *. 1e3;
        k_par_ms = tn *. 1e3;
        k_digest = d1;
        k_ok = ok;
      };
    ]
  end

(* machine-readable perf trajectory across PRs: one combined file over
   every benchmarked section (kernels + route) *)
let write_bench_files rows =
  let target_jobs = Pool.jobs () in
  let effective = Pool.effective_jobs () in
  let oc = open_out "BENCH_kernels.json" in
  (* "cores" lets bench_check scale its expectations to the machine the
     fresh file was generated on (e.g. the serve_fleet shard-scaling
     floor only binds when a second core exists to scale onto) *)
  Printf.fprintf oc
    "{\n  \"jobs\": %d,\n  \"jobs_effective\": %d,\n  \"cores\": %d,\n  \"kernels\": [\n"
    target_jobs effective
    (Domain.recommended_domain_count ());
  List.iteri
    (fun i k ->
      Printf.fprintf oc
        "    {\"op\": %S, \"size\": %S, \"seq_ms\": %.4f, \"par_ms\": %.4f, \
         \"speedup\": %.4f, \"gflops_par\": %s, \"digest\": %S}%s\n"
        k.k_name k.k_size k.k_seq_ms k.k_par_ms
        (k.k_seq_ms /. k.k_par_ms)
        (match k.k_flops with
        | Some f -> Printf.sprintf "%.4f" (f /. (k.k_par_ms /. 1e3) /. 1e9)
        | None -> "null")
        k.k_digest
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "  ]\n}\n";
  close_out oc;
  (* timing-free digests for the cross-process determinism check *)
  let oc = open_out "BENCH_kernels.digest" in
  List.iter (fun k -> Printf.fprintf oc "%s\t%s\n" k.k_name k.k_digest) rows;
  close_out oc;
  Printf.printf "  [wrote BENCH_kernels.json and BENCH_kernels.digest]\n"

(* ------------------------------------------------------------------ *)
(* main                                                                 *)
(* ------------------------------------------------------------------ *)

let () =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Warning);
  (* collect stage spans across every experiment; the aggregated
     profile lands next to BENCH_kernels.json *)
  Obs.enable ();
  Printf.printf
    "DCO-3D benchmark harness - designs: %s, scale %.2f, %d layouts/design, \
     %d epochs\n%!"
    (String.concat "," designs) scale n_samples epochs;
  let t0 = Unix.gettimeofday () in
  if enabled "table1" then table1 ();
  if enabled "table2" then table2 ();
  if enabled "fig2" then fig2 ();
  if enabled "fig5a" then fig5a ();
  if enabled "fig5b" then fig5b ();
  if enabled "fig5c" then fig5c ();
  if enabled "alg2" then alg2 ();
  if enabled "fig6" then fig6 ();
  if enabled "fig7" then fig7 ();
  if enabled "table3" then table3 ();
  if enabled "ablation" then ablation ();
  let kernel_rows = if enabled "kernels" then kernels () else [] in
  let route_rows = if enabled "route" then route_bench () else [] in
  let predict_rows = if enabled "predict" then predict_bench () else [] in
  let serve_rows = if enabled "serve" then serve_bench () else [] in
  let bench_rows = kernel_rows @ route_rows @ predict_rows @ serve_rows in
  if bench_rows <> [] then write_bench_files bench_rows;
  Obs.write_profile "BENCH_stage_profile.txt";
  Printf.printf "  [wrote BENCH_stage_profile.txt]\n";
  Printf.printf "\n[total runtime %.1f s]\n" (Unix.gettimeofday () -. t0)
