lib/autodiff/value.mli: Dco3d_tensor
