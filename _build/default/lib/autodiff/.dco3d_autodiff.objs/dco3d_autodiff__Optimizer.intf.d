lib/autodiff/optimizer.mli: Value
