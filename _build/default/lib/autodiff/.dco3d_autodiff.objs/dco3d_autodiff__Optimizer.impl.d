lib/autodiff/optimizer.ml: Array Dco3d_tensor List Value
