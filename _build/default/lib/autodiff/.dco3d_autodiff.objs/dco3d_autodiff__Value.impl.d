lib/autodiff/value.ml: Array Dco3d_tensor Float Hashtbl List Option
