module T = Dco3d_tensor.Tensor

type algo =
  | Sgd of { momentum : float; mutable velocity : T.t array }
  | Adam of {
      beta1 : float;
      beta2 : float;
      eps : float;
      mutable t : int;
      m : T.t array;
      v : T.t array;
    }

type t = {
  params : Value.t list;
  param_arr : Value.t array;
  mutable lr : float;
  weight_decay : float;
  algo : algo;
}

let sgd ?(momentum = 0.) ?(weight_decay = 0.) ~lr params =
  let param_arr = Array.of_list params in
  let velocity = Array.map (fun p -> T.zeros (Value.shape p)) param_arr in
  { params; param_arr; lr; weight_decay; algo = Sgd { momentum; velocity } }

let adam ?(beta1 = 0.9) ?(beta2 = 0.999) ?(eps = 1e-8) ?(weight_decay = 0.)
    ~lr params =
  let param_arr = Array.of_list params in
  let m = Array.map (fun p -> T.zeros (Value.shape p)) param_arr in
  let v = Array.map (fun p -> T.zeros (Value.shape p)) param_arr in
  { params; param_arr; lr; weight_decay; algo = Adam { beta1; beta2; eps; t = 0; m; v } }

let zero_grad t = List.iter Value.zero_grad t.params
let set_lr t lr = t.lr <- lr
let lr t = t.lr
let params t = t.params

let grad_norm t =
  let acc =
    List.fold_left
      (fun acc p ->
        let g = Value.grad p in
        acc +. T.dot g g)
      0. t.params
  in
  sqrt acc

let clip_grad_norm t bound =
  let norm = grad_norm t in
  if norm > bound && norm > 0. then begin
    let s = bound /. norm in
    (* [Value.grad] returns the live gradient tensor when one has been
       accumulated, so in-place scaling is enough; parameters without a
       gradient are untouched (scaling zero is a no-op). *)
    List.iter
      (fun p ->
        let g = Value.grad p in
        let n = T.numel g in
        for i = 0 to n - 1 do
          T.set_flat g i (s *. T.get_flat g i)
        done)
      t.params
  end

let step t =
  (match t.algo with
  | Sgd { momentum; velocity } ->
      Array.iteri
        (fun i p ->
          let g = Value.grad p in
          let x = Value.data p in
          let n = T.numel x in
          let v = velocity.(i) in
          for j = 0 to n - 1 do
            let gj = T.get_flat g j +. (t.weight_decay *. T.get_flat x j) in
            let vj = (momentum *. T.get_flat v j) +. gj in
            T.set_flat v j vj;
            T.set_flat x j (T.get_flat x j -. (t.lr *. vj))
          done)
        t.param_arr
  | Adam a ->
      a.t <- a.t + 1;
      let bc1 = 1. -. (a.beta1 ** float_of_int a.t) in
      let bc2 = 1. -. (a.beta2 ** float_of_int a.t) in
      Array.iteri
        (fun i p ->
          let g = Value.grad p in
          let x = Value.data p in
          let n = T.numel x in
          let m = a.m.(i) and v = a.v.(i) in
          for j = 0 to n - 1 do
            let gj = T.get_flat g j +. (t.weight_decay *. T.get_flat x j) in
            let mj = (a.beta1 *. T.get_flat m j) +. ((1. -. a.beta1) *. gj) in
            let vj = (a.beta2 *. T.get_flat v j) +. ((1. -. a.beta2) *. gj *. gj) in
            T.set_flat m j mj;
            T.set_flat v j vj;
            let mhat = mj /. bc1 and vhat = vj /. bc2 in
            T.set_flat x j
              (T.get_flat x j -. (t.lr *. mhat /. (sqrt vhat +. a.eps)))
          done)
        t.param_arr);
  zero_grad t
