module T = Dco3d_tensor.Tensor

type t = {
  id : int;
  data : T.t;
  mutable grad : T.t option;
  requires_grad : bool;
  parents : t list;
  (* [backward gout] returns one gradient option per parent. *)
  backward : (T.t -> T.t option list) option;
}

let counter = ref 0

let next_id () =
  incr counter;
  !counter

let data v = v.data
let requires_grad v = v.requires_grad
let shape v = T.shape v.data
let numel v = T.numel v.data

let grad v =
  match v.grad with Some g -> g | None -> T.zeros (T.shape v.data)

let const data =
  { id = next_id (); data; grad = None; requires_grad = false; parents = []; backward = None }

let param data =
  { id = next_id (); data; grad = None; requires_grad = true; parents = []; backward = None }

let scalar x = const (T.scalar x)

let node data parents backward =
  let requires_grad = List.exists (fun p -> p.requires_grad) parents in
  if requires_grad then
    { id = next_id (); data; grad = None; requires_grad; parents;
      backward = Some backward }
  else const data

let custom ~data ~parents ~backward = node data parents backward

(* ------------------------------------------------------------------ *)
(* Elementwise                                                         *)
(* ------------------------------------------------------------------ *)

let add a b =
  node (T.add a.data b.data) [ a; b ] (fun g -> [ Some g; Some g ])

let sub a b =
  node (T.sub a.data b.data) [ a; b ] (fun g -> [ Some g; Some (T.neg g) ])

let mul a b =
  node (T.mul a.data b.data) [ a; b ] (fun g ->
      [ Some (T.mul g b.data); Some (T.mul g a.data) ])

let div a b =
  let y = T.div a.data b.data in
  node y [ a; b ] (fun g ->
      let ga = T.map2 (fun gv bv -> gv /. bv) g b.data in
      (* d(a/b)/db = -a / b^2 *)
      let gb =
        T.map2 (fun gv yv_over_b -> gv *. yv_over_b)
          g
          (T.map2 (fun yv bv -> -.yv /. bv) y b.data)
      in
      [ Some ga; Some gb ])

let neg a = node (T.neg a.data) [ a ] (fun g -> [ Some (T.neg g) ])
let scale s a = node (T.scale s a.data) [ a ] (fun g -> [ Some (T.scale s g) ])
let add_scalar s a = node (T.add_scalar s a.data) [ a ] (fun g -> [ Some g ])

let relu a =
  let y = T.relu a.data in
  node y [ a ] (fun g ->
      [ Some (T.map2 (fun gv xv -> if xv > 0. then gv else 0.) g a.data) ])

let leaky_relu slope a =
  let y = T.map (fun x -> if x > 0. then x else slope *. x) a.data in
  node y [ a ] (fun g ->
      [ Some (T.map2 (fun gv xv -> if xv > 0. then gv else slope *. gv) g a.data) ])

let sigmoid a =
  let y = T.sigmoid a.data in
  node y [ a ] (fun g ->
      [ Some (T.map2 (fun gv yv -> gv *. yv *. (1. -. yv)) g y) ])

let tanh_ a =
  let y = T.tanh_ a.data in
  node y [ a ] (fun g ->
      [ Some (T.map2 (fun gv yv -> gv *. (1. -. (yv *. yv))) g y) ])

let sqr a =
  node (T.sqr a.data) [ a ] (fun g ->
      [ Some (T.map2 (fun gv xv -> 2. *. gv *. xv) g a.data) ])

let sqrt_ a =
  let y = T.sqrt_ a.data in
  node y [ a ] (fun g ->
      [ Some (T.map2 (fun gv yv -> gv /. (2. *. Float.max yv 1e-12)) g y) ])

(* ------------------------------------------------------------------ *)
(* Linear algebra                                                      *)
(* ------------------------------------------------------------------ *)

let matmul a b =
  node (T.matmul a.data b.data) [ a; b ] (fun g ->
      [
        Some (T.matmul g (T.transpose2 b.data));
        Some (T.matmul (T.transpose2 a.data) g);
      ])

let sum a =
  node (T.scalar (T.sum a.data)) [ a ] (fun g ->
      let gv = T.get_flat g 0 in
      [ Some (T.full (T.shape a.data) gv) ])

let mean a =
  let n = float_of_int (max 1 (T.numel a.data)) in
  node (T.scalar (T.mean a.data)) [ a ] (fun g ->
      let gv = T.get_flat g 0 /. n in
      [ Some (T.full (T.shape a.data) gv) ])

let dot a b =
  node (T.scalar (T.dot a.data b.data)) [ a; b ] (fun g ->
      let gv = T.get_flat g 0 in
      [ Some (T.scale gv b.data); Some (T.scale gv a.data) ])

let add_bias_rows x b =
  if T.rank x.data <> 2 || T.rank b.data <> 1 then
    invalid_arg "Value.add_bias_rows: expected rank-2 x and rank-1 b";
  let n = T.dim x.data 0 and f = T.dim x.data 1 in
  if T.dim b.data 0 <> f then invalid_arg "Value.add_bias_rows: width mismatch";
  let y = T.copy x.data in
  for i = 0 to n - 1 do
    for j = 0 to f - 1 do
      T.set2 y i j (T.get2 y i j +. T.get_flat b.data j)
    done
  done;
  node y [ x; b ] (fun g ->
      let gb = T.zeros [| f |] in
      for i = 0 to n - 1 do
        for j = 0 to f - 1 do
          T.set_flat gb j (T.get_flat gb j +. T.get2 g i j)
        done
      done;
      [ Some g; Some gb ])

(* ------------------------------------------------------------------ *)
(* Convolution / pooling                                               *)
(* ------------------------------------------------------------------ *)

let conv2d ?(stride = 1) ?(pad = 0) x ~weight ~bias =
  let bias_t = Option.map (fun b -> b.data) bias in
  let y = T.conv2d ~stride ~pad x.data ~weight:weight.data ~bias:bias_t in
  let parents =
    match bias with Some b -> [ x; weight; b ] | None -> [ x; weight ]
  in
  node y parents (fun g ->
      let gx =
        T.conv2d_backward_input ~stride ~pad ~input_shape:(T.shape x.data)
          ~weight:weight.data g
      in
      let gw =
        T.conv2d_backward_weight ~stride ~pad ~input:x.data
          ~weight_shape:(T.shape weight.data) g
      in
      let gb () =
        (* bias gradient: sum of g over each output channel *)
        let co = T.dim g 0 and oh = T.dim g 1 and ow = T.dim g 2 in
        let gb = T.zeros [| co |] in
        for o = 0 to co - 1 do
          let acc = ref 0. in
          for i = 0 to (oh * ow) - 1 do
            acc := !acc +. T.get_flat g ((o * oh * ow) + i)
          done;
          T.set_flat gb o !acc
        done;
        gb
      in
      match bias with
      | Some _ -> [ Some gx; Some gw; Some (gb ()) ]
      | None -> [ Some gx; Some gw ])

let conv2d_transpose ?(stride = 1) ?(pad = 0) x ~weight ~bias =
  let bias_t = Option.map (fun b -> b.data) bias in
  let y = T.conv2d_transpose ~stride ~pad x.data ~weight:weight.data ~bias:bias_t in
  let parents =
    match bias with Some b -> [ x; weight; b ] | None -> [ x; weight ]
  in
  node y parents (fun g ->
      (* Transposed conv forward == conv backward-input, so its input
         gradient is a plain convolution of g with the same kernel
         (viewed as [ci <- co]), and the weight gradient mirrors
         conv2d_backward_weight with the roles of x and g exchanged. *)
      let gx = T.conv2d ~stride ~pad g ~weight:weight.data ~bias:None in
      let gw =
        T.conv2d_backward_weight ~stride ~pad ~input:g
          ~weight_shape:(T.shape weight.data)
          x.data
      in
      let gb () =
        let co = T.dim g 0 and oh = T.dim g 1 and ow = T.dim g 2 in
        let gb = T.zeros [| co |] in
        for o = 0 to co - 1 do
          let acc = ref 0. in
          for i = 0 to (oh * ow) - 1 do
            acc := !acc +. T.get_flat g ((o * oh * ow) + i)
          done;
          T.set_flat gb o !acc
        done;
        gb
      in
      match bias with
      | Some _ -> [ Some gx; Some gw; Some (gb ()) ]
      | None -> [ Some gx; Some gw ])

let maxpool2 x =
  let y, arg = T.maxpool2 x.data in
  node y [ x ] (fun g ->
      [ Some (T.maxpool2_backward ~input_shape:(T.shape x.data) arg g) ])

let upsample_nearest2 x =
  let y = T.upsample_nearest2 x.data in
  node y [ x ] (fun g ->
      (* gradient: sum the 2x2 block of g into each input pixel *)
      let c = T.dim x.data 0 and h = T.dim x.data 1 and w = T.dim x.data 2 in
      let gin = T.zeros [| c; h; w |] in
      for ch = 0 to c - 1 do
        for oy = 0 to (2 * h) - 1 do
          for ox = 0 to (2 * w) - 1 do
            T.set3 gin ch (oy / 2) (ox / 2)
              (T.get3 gin ch (oy / 2) (ox / 2) +. T.get3 g ch oy ox)
          done
        done
      done;
      [ Some gin ])

let concat_channels xs =
  match xs with
  | [] -> invalid_arg "Value.concat_channels: empty list"
  | _ ->
      let y = T.concat_channels (List.map (fun x -> x.data) xs) in
      let channel_count t =
        match T.rank t with 3 -> T.dim t 0 | 2 -> 1 | _ -> assert false
      in
      node y xs (fun g ->
          let pos = ref 0 in
          List.map
            (fun x ->
              let c = channel_count x.data in
              let slice = T.slice_channels g !pos c in
              pos := !pos + c;
              Some (T.reshape slice (T.shape x.data)))
            xs)

let slice_channels x lo n =
  let y = T.slice_channels x.data lo n in
  node y [ x ] (fun g ->
      let gx = T.zeros (T.shape x.data) in
      let x3shape =
        match T.rank x.data with
        | 3 -> T.shape x.data
        | 2 -> [| 1; T.dim x.data 0; T.dim x.data 1 |]
        | _ -> invalid_arg "Value.slice_channels backward"
      in
      let hw = x3shape.(1) * x3shape.(2) in
      for i = 0 to (n * hw) - 1 do
        T.set_flat gx ((lo * hw) + i) (T.get_flat g i)
      done;
      [ Some gx ])

let reshape x sh =
  let y = T.reshape (T.copy x.data) sh in
  node y [ x ] (fun g -> [ Some (T.reshape (T.copy g) (T.shape x.data)) ])

let columns x =
  if T.rank x.data <> 2 then invalid_arg "Value.columns: rank-2 only";
  let n = T.dim x.data 0 and f = T.dim x.data 1 in
  Array.init f (fun j ->
      let col = T.init [| n |] (fun i -> T.get2 x.data i.(0) j) in
      node col [ x ] (fun g ->
          let gx = T.zeros [| n; f |] in
          for i = 0 to n - 1 do
            T.set2 gx i j (T.get_flat g i)
          done;
          [ Some gx ]))

let mse x target =
  if not (T.same_shape x.data target) then invalid_arg "Value.mse: shape mismatch";
  let n = float_of_int (max 1 (T.numel target)) in
  let diff = T.sub x.data target in
  let loss = T.dot diff diff /. n in
  node (T.scalar loss) [ x ] (fun g ->
      let gv = 2. *. T.get_flat g 0 /. n in
      [ Some (T.scale gv diff) ])

let rmse_frobenius x target =
  if not (T.same_shape x.data target) then
    invalid_arg "Value.rmse_frobenius: shape mismatch";
  let n = float_of_int (max 1 (T.numel target)) in
  let diff = T.sub x.data target in
  let msev = T.dot diff diff /. n in
  let rmse = sqrt msev in
  node (T.scalar rmse) [ x ] (fun g ->
      let gv = T.get_flat g 0 in
      let denom = Float.max rmse 1e-12 in
      [ Some (T.scale (gv /. (denom *. n)) diff) ])

let add_list = function
  | [] -> invalid_arg "Value.add_list: empty list"
  | x :: rest -> List.fold_left add x rest

(* ------------------------------------------------------------------ *)
(* Backward pass                                                       *)
(* ------------------------------------------------------------------ *)

let accumulate v g =
  match v.grad with
  | None -> v.grad <- Some (T.copy g)
  | Some acc -> T.axpy ~alpha:1. g acc

let backward root =
  if T.numel root.data <> 1 then
    invalid_arg "Value.backward: root must be a scalar";
  (* Topological order via iterative DFS. *)
  let visited = Hashtbl.create 256 in
  let order = ref [] in
  let rec visit v =
    if (not (Hashtbl.mem visited v.id)) && v.requires_grad then begin
      Hashtbl.add visited v.id ();
      List.iter visit v.parents;
      order := v :: !order
    end
  in
  visit root;
  root.grad <- Some (T.ones (T.shape root.data));
  List.iter
    (fun v ->
      match (v.backward, v.grad) with
      | Some bw, Some g ->
          let parent_grads = bw g in
          (try
             List.iter2
               (fun p gp ->
                 match gp with
                 | Some gp when p.requires_grad -> accumulate p gp
                 | _ -> ())
               v.parents parent_grads
           with Invalid_argument _ ->
             invalid_arg "Value.backward: backward arity mismatch");
          (* Free intermediate gradients eagerly to bound memory. *)
          if v.backward <> None then v.grad <- None
      | _ -> ())
    !order

let zero_grad v = v.grad <- None

(* ------------------------------------------------------------------ *)
(* Gradient checking                                                   *)
(* ------------------------------------------------------------------ *)

let gradient_check ?(eps = 1e-5) ?(tol = 1e-4) f x0 =
  let p = param (T.copy x0) in
  let loss = f p in
  backward loss;
  let analytic = grad p in
  let ok = ref true in
  let n = T.numel x0 in
  for i = 0 to n - 1 do
    let eval v =
      let x = T.copy x0 in
      T.set_flat x i v;
      T.get_flat (data (f (param x))) 0
    in
    let x = T.get_flat x0 i in
    let fd = (eval (x +. eps) -. eval (x -. eps)) /. (2. *. eps) in
    let a = T.get_flat analytic i in
    let scale_ref = Float.max 1. (Float.max (abs_float fd) (abs_float a)) in
    if abs_float (fd -. a) /. scale_ref > tol then ok := false
  done;
  !ok
