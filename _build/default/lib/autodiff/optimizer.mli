(** Gradient-descent optimizers over {!Value.param} leaves.

    Both Algorithm 1 (predictor training) and Algorithm 2 (GNN cell
    spreading) of the paper are driven by these: after
    {!Value.backward}, {!step} reads each parameter's accumulated
    gradient and updates its data in place, then clears the gradient. *)

type t

val sgd : ?momentum:float -> ?weight_decay:float -> lr:float -> Value.t list -> t
(** Stochastic gradient descent with optional classical momentum. *)

val adam :
  ?beta1:float ->
  ?beta2:float ->
  ?eps:float ->
  ?weight_decay:float ->
  lr:float ->
  Value.t list ->
  t
(** Adam (Kingma & Ba) with bias correction. *)

val step : t -> unit
(** Apply one update using the gradients currently stored on the
    parameters, then zero them. *)

val zero_grad : t -> unit
(** Clear all parameter gradients without updating. *)

val set_lr : t -> float -> unit
val lr : t -> float
val params : t -> Value.t list

val grad_norm : t -> float
(** L2 norm of the concatenated parameter gradients (diagnostics). *)

val clip_grad_norm : t -> float -> unit
(** Scale gradients down so their global L2 norm is at most the given
    bound. *)
