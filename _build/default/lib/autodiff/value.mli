(** Reverse-mode automatic differentiation over {!Dco3d_tensor.Tensor}.

    This is the replacement for PyTorch autograd required by Algorithm 2
    of the paper: the GNN cell spreader, the feature-map generation, the
    frozen Siamese UNet and all four losses are composed from the
    operations below, and {!backward} propagates gradients from the
    scalar total loss back to the GNN parameters (Eq. 5).

    The tape is implicit: each value records its parents and a backward
    function; {!backward} topologically sorts the graph reachable from
    the loss and accumulates gradients.  Non-differentiable components
    (the RUDY bounding-box terms of Eq. 6) plug in through {!custom},
    the equivalent of a custom [torch.autograd.Function]. *)

type t
(** A node of the computation graph. *)

val data : t -> Dco3d_tensor.Tensor.t
(** Forward value of the node. *)

val grad : t -> Dco3d_tensor.Tensor.t
(** Accumulated gradient; zeros if {!backward} has not reached it. *)

val requires_grad : t -> bool

val shape : t -> int array
val numel : t -> int

(** {1 Leaves} *)

val const : Dco3d_tensor.Tensor.t -> t
(** A constant: gradients are not tracked through it. *)

val param : Dco3d_tensor.Tensor.t -> t
(** A trainable leaf: {!backward} accumulates into its gradient, and
    optimizers mutate its data in place. *)

val scalar : float -> t
(** Constant rank-0 node. *)

(** {1 Differentiable operations} *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
(** Elementwise (Hadamard) product. *)

val div : t -> t -> t
(** Elementwise division; the denominator must be nonzero wherever the
    gradient is needed. *)

val neg : t -> t
val scale : float -> t -> t
val add_scalar : float -> t -> t
val relu : t -> t
val leaky_relu : float -> t -> t
val sigmoid : t -> t
val tanh_ : t -> t
val sqr : t -> t
val sqrt_ : t -> t
(** Differentiable square root; the input must be strictly positive
    wherever the gradient is needed. *)

val matmul : t -> t -> t
val sum : t -> t
(** Scalar sum of all elements. *)

val mean : t -> t
val dot : t -> t -> t

val add_bias_rows : t -> t -> t
(** [add_bias_rows x b] adds a rank-1 bias [b] (length [f]) to every row
    of a rank-2 tensor [x : [n; f]] — the GNN layer bias. *)

val conv2d : ?stride:int -> ?pad:int -> t -> weight:t -> bias:t option -> t
val conv2d_transpose : ?stride:int -> ?pad:int -> t -> weight:t -> bias:t option -> t
val maxpool2 : t -> t
val upsample_nearest2 : t -> t
val concat_channels : t list -> t
val slice_channels : t -> int -> int -> t

val reshape : t -> int array -> t

val columns : t -> t array
(** [columns x] splits a rank-2 tensor [[n; f]] into [f] rank-1 nodes,
    each differentiable back into [x] — used to read the GNN's
    (x, y, z) output heads. *)

val mse : t -> Dco3d_tensor.Tensor.t -> t
(** Mean squared error against a constant target. *)

val rmse_frobenius : t -> Dco3d_tensor.Tensor.t -> t
(** Eq. 4 term: [sqrt (1/HW * ||x - target||_F^2)]. *)

val add_list : t list -> t
(** Sum of same-shaped nodes. *)

val custom :
  data:Dco3d_tensor.Tensor.t ->
  parents:t list ->
  backward:(Dco3d_tensor.Tensor.t -> Dco3d_tensor.Tensor.t option list) ->
  t
(** [custom ~data ~parents ~backward] builds a node whose forward value
    was computed outside the tape.  [backward gout] must return one
    gradient (or [None]) per parent, in order — the OCaml analogue of a
    custom PyTorch [Function], used for the sub-gradient RUDY backward
    of Eq. 6. *)

(** {1 Backward pass} *)

val backward : t -> unit
(** [backward loss] seeds the scalar [loss] with gradient 1 and
    propagates to every reachable node that requires gradients.
    @raise Invalid_argument if [loss] is not a scalar. *)

val zero_grad : t -> unit
(** Reset the accumulated gradient of a leaf (typically a {!param}). *)

(** {1 Finite-difference checking} *)

val gradient_check :
  ?eps:float -> ?tol:float -> (t -> t) -> Dco3d_tensor.Tensor.t -> bool
(** [gradient_check f x0] compares the analytic gradient of
    [fun x -> f x] at [x0] (a scalar-valued function of one tensor)
    against central finite differences on every coordinate.  Returns
    [true] when all coordinates agree within [tol] (default [1e-4],
    [eps = 1e-5]). *)
