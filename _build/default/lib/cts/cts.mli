(** Clock-tree synthesis — the Pin-3D flow's CTS stage (Fig. 1).

    A recursive-geometric-matching tree: flip-flop sinks are split at
    the median along alternating axes, a clock buffer is placed at each
    internal node's centroid, and wiring follows Manhattan parent-child
    connections.  Sinks on the top die add a hybrid-bond stub.  The
    result feeds the power model (clock wire + buffer capacitance) and
    reports skew as the spread of root-to-sink latencies. *)

type result = {
  wirelength : float;  (** total clock wire, um *)
  n_buffers : int;  (** inserted clock buffers *)
  skew_ps : float;  (** max - min insertion latency *)
  max_latency_ps : float;
  n_sinks : int;
}

val synthesize : ?max_fanout:int -> Dco3d_place.Placement.t -> result
(** Build the tree over all flip-flop sinks of the placement.
    [max_fanout] (default 16) bounds leaf-buffer load.  A design with
    no flip-flops yields a zero result. *)
