module Nl = Dco3d_netlist.Netlist
module Pl = Dco3d_place.Placement

type result = {
  wirelength : float;
  n_buffers : int;
  skew_ps : float;
  max_latency_ps : float;
  n_sinks : int;
}

type sink = { sx : float; sy : float; via : bool }

(* per-um clock wire delay (ps) and per-buffer stage delay (ps) *)
let wire_delay_per_um = 0.9
let buffer_delay = 8.0
let via_stub = 0.5

let synthesize ?(max_fanout = 16) (p : Pl.t) =
  let nl = p.Pl.nl in
  let sinks = ref [] in
  for c = 0 to Nl.n_cells nl - 1 do
    if nl.Nl.masters.(c).Dco3d_netlist.Cell_lib.is_seq then
      sinks :=
        { sx = p.Pl.x.(c); sy = p.Pl.y.(c); via = p.Pl.tier.(c) = 1 }
        :: !sinks
  done;
  let sinks = Array.of_list !sinks in
  let n_sinks = Array.length sinks in
  if n_sinks = 0 then
    { wirelength = 0.; n_buffers = 0; skew_ps = 0.; max_latency_ps = 0.; n_sinks = 0 }
  else begin
    let wirelength = ref 0. in
    let n_buffers = ref 0 in
    let min_lat = ref infinity and max_lat = ref 0. in
    (* recursively split [lo, hi) of the (mutated) sink array; returns
       the subtree's tap point; [latency] is the delay accumulated from
       the root to this tap *)
    let rec build lo hi axis_x latency =
      let count = hi - lo in
      if count <= max_fanout then begin
        (* leaf buffer drives these sinks directly *)
        incr n_buffers;
        let cx = ref 0. and cy = ref 0. in
        for i = lo to hi - 1 do
          cx := !cx +. sinks.(i).sx;
          cy := !cy +. sinks.(i).sy
        done;
        let cx = !cx /. float_of_int count and cy = !cy /. float_of_int count in
        for i = lo to hi - 1 do
          let s = sinks.(i) in
          let dist =
            abs_float (s.sx -. cx) +. abs_float (s.sy -. cy)
            +. if s.via then via_stub else 0.
          in
          wirelength := !wirelength +. dist;
          let lat = latency +. buffer_delay +. (wire_delay_per_um *. dist) in
          if lat < !min_lat then min_lat := lat;
          if lat > !max_lat then max_lat := lat
        done;
        (cx, cy)
      end
      else begin
        (* median split along the chosen axis *)
        let slice = Array.sub sinks lo count in
        Array.sort
          (fun a b ->
            if axis_x then compare a.sx b.sx else compare a.sy b.sy)
          slice;
        Array.blit slice 0 sinks lo count;
        let mid = lo + (count / 2) in
        incr n_buffers;
        (* the tap point is the centroid of the two children's taps;
           recurse with an estimated extra stage latency, then wire the
           children *)
        let lat' = latency +. buffer_delay in
        let lx, ly = build lo mid (not axis_x) lat' in
        let rx, ry = build mid hi (not axis_x) lat' in
        let cx = (lx +. rx) /. 2. and cy = (ly +. ry) /. 2. in
        let dl = abs_float (lx -. cx) +. abs_float (ly -. cy) in
        let dr = abs_float (rx -. cx) +. abs_float (ry -. cy) in
        wirelength := !wirelength +. dl +. dr;
        (cx, cy)
      end
    in
    let _root = build 0 n_sinks true 0. in
    {
      wirelength = !wirelength;
      n_buffers = !n_buffers;
      skew_ps = !max_lat -. !min_lat;
      max_latency_ps = !max_lat;
      n_sinks;
    }
  end
