lib/cts/cts.mli: Dco3d_place
