lib/cts/cts.ml: Array Dco3d_netlist Dco3d_place
