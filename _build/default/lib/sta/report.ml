module Nl = Dco3d_netlist.Netlist
module Cl = Dco3d_netlist.Cell_lib

let timing_summary (t : Sta.timing) =
  Printf.sprintf
    "WNS: %.2f ps\nTNS: %.1f ps\nviolating endpoints: %d (critical delay %.1f ps)"
    t.Sta.wns t.Sta.tns t.Sta.n_violations t.Sta.critical_delay

let critical_path_report nl (t : Sta.timing) =
  let path = Sta.critical_path nl t in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "critical path (%d stages):\n" (List.length path));
  Buffer.add_string buf
    (Printf.sprintf "  %-4s %-10s %-12s %12s %12s\n" "#" "cell" "master"
       "arrival(ps)" "slack(ps)");
  List.iteri
    (fun i c ->
      Buffer.add_string buf
        (Printf.sprintf "  %-4d u%-9d %-12s %12.1f %12.1f\n" i c
           nl.Nl.masters.(c).Cl.name t.Sta.cell_arrival.(c)
           t.Sta.cell_slack.(c)))
    path;
  Buffer.contents buf

let histogram ?(bins = 10) (t : Sta.timing) =
  let slacks = t.Sta.cell_slack in
  let n = Array.length slacks in
  if n = 0 then "(empty design)\n"
  else begin
    let lo = Array.fold_left Float.min infinity slacks in
    let hi = Array.fold_left Float.max neg_infinity slacks in
    let span = Float.max 1e-9 (hi -. lo) in
    let counts = Array.make bins 0 in
    Array.iter
      (fun s ->
        let b =
          max 0 (min (bins - 1) (int_of_float ((s -. lo) /. span *. float_of_int bins)))
        in
        counts.(b) <- counts.(b) + 1)
      slacks;
    let peak = Array.fold_left max 1 counts in
    let buf = Buffer.create 512 in
    Buffer.add_string buf "slack histogram (cells):\n";
    Array.iteri
      (fun b c ->
        let from = lo +. (span *. float_of_int b /. float_of_int bins) in
        let upto = lo +. (span *. float_of_int (b + 1) /. float_of_int bins) in
        let width = c * 40 / peak in
        Buffer.add_string buf
          (Printf.sprintf "  [%8.1f, %8.1f) %6d %s\n" from upto c
             (String.make width '#')))
      counts;
    Buffer.contents buf
  end
