lib/sta/report.mli: Dco3d_netlist Sta
