lib/sta/report.ml: Array Buffer Dco3d_netlist Float List Printf Sta String
