lib/sta/sta.ml: Array Dco3d_netlist Dco3d_tensor Float Fun
