lib/sta/sta.mli: Dco3d_netlist Dco3d_tensor
