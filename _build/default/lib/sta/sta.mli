(** Static timing analysis and power estimation — the signoff
    evaluation substrate behind Table III's WNS / TNS / power columns
    and the Table-II GNN node features.

    Delay model (linear, self-consistent with {!Dco3d_netlist.Cell_lib}
    units — ps, fF, kOhm, um):
    + cell delay = intrinsic;
    + net delay (driver output to every sink) =
      [r_drv * (c_wire + sum of sink pin caps) + 0.5 * r_wire * c_wire],
      with wire parasitics proportional to the net's {e routed} length —
      this is the coupling that makes congestion-induced detours
      degrade timing, the mechanism behind the paper's end-of-flow
      TNS/power improvements;
    + 3D nets add a hybrid-bond via delay.

    Arrival times propagate over the levelized combinational graph from
    primary inputs and flip-flop outputs; endpoints are flip-flop /
    macro data pins and primary outputs.  Power combines
    activity-propagated switching (wire + pin caps), per-toggle internal
    energy, and leakage. *)

type config = {
  clock_period_ps : float;
  wire_res : float;  (** kOhm per um *)
  wire_cap : float;  (** fF per um *)
  via_delay_ps : float;  (** extra delay for a 3D net *)
  setup_ps : float;
  clk_to_q_ps : float;
  voltage : float;  (** V *)
  pi_activity : float;  (** toggle rate of primary inputs *)
}

val default_config : clock_period_ps:float -> config

type timing = {
  wns : float;  (** worst negative slack, ps (0 when all paths meet) *)
  tns : float;  (** total negative slack, ps (sum over endpoints, <= 0) *)
  n_violations : int;  (** endpoints with negative slack *)
  critical_delay : float;  (** longest register-to-register delay, ps *)
  cell_slack : float array;  (** worst slack through each cell *)
  cell_in_slew : float array;  (** worst input transition per cell, ps *)
  cell_out_slew : float array;  (** output transition per cell, ps *)
  cell_arrival : float array;  (** output arrival time per cell, ps *)
}

val analyze :
  config -> Dco3d_netlist.Netlist.t ->
  net_length:float array ->
  net_is_3d:(int -> bool) ->
  timing
(** [net_length] maps net id to routed (or estimated) length in um;
    [net_is_3d] tells whether the net crosses dies. *)

val suggest_period :
  Dco3d_netlist.Netlist.t ->
  net_length:float array ->
  net_is_3d:(int -> bool) ->
  float
(** A clock period slightly tighter than the critical delay of the
    given implementation, so signoff starts with realistic negative
    slack (as every design in Table III has). *)

val critical_path : Dco3d_netlist.Netlist.t -> timing -> int list
(** Cell ids along the critical path, launch point first: starting from
    the cell with the latest output arrival, walk backward through the
    latest-arriving fanin at each stage until a clocked source or a
    primary input is reached. *)

type power = {
  switching_mw : float;  (** net wire + pin cap switching *)
  internal_mw : float;
  leakage_mw : float;
  clock_mw : float;  (** clock-tree wire + buffer power, from CTS *)
  total_mw : float;
  net_switch_mw : float array;  (** per-net switching, for Table II *)
  cell_internal_mw : float array;
  activity : float array;  (** toggle rate per net *)
}

val estimate_power :
  config -> Dco3d_netlist.Netlist.t ->
  net_length:float array ->
  ?clock_wirelength:float ->
  ?clock_buffers:int ->
  unit ->
  power

val node_features :
  Dco3d_netlist.Netlist.t -> timing -> power -> Dco3d_tensor.Tensor.t
(** The 8 handcrafted GNN node features of Table II, one row per cell:
    worst slack, worst output slew, worst input slew, driven-net
    switching power, internal power, leakage, width, height — scaled to
    O(1) for training. *)
