(** Human-readable timing reports — the [report_timing] of this
    substrate.

    Renders the critical path stage by stage (cell, master, per-stage
    delay contribution, cumulative arrival) plus the endpoint summary
    (WNS / TNS / violation count), in the style every signoff engineer
    reads daily.  Used by the CLI and handy when debugging why a flow
    variant lost timing. *)

val timing_summary : Sta.timing -> string
(** Three-line WNS / TNS / violations summary. *)

val critical_path_report :
  Dco3d_netlist.Netlist.t -> Sta.timing -> string
(** The worst path, one stage per line:
    {v
    #   cell      master     arrival(ps)  slack(ps)
    0   u4521     DFF_X1          22.0      -55.2
    ...
    v} *)

val histogram : ?bins:int -> Sta.timing -> string
(** Slack histogram over cells (ASCII bars) — where the design's
    timing mass sits. *)
