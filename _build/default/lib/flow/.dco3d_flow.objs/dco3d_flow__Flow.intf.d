lib/flow/flow.mli: Dco3d_netlist Dco3d_place Dco3d_route Format
