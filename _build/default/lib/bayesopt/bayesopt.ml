module T = Dco3d_tensor.Tensor
module Rng = Dco3d_tensor.Rng
module Linalg = Dco3d_tensor.Linalg

type t = {
  dim : int;
  length_scale : float;
  noise : float;
  rng : Rng.t;
  mutable xs : float array list;  (** newest first *)
  mutable ys : float list;
  (* cached factorization, rebuilt lazily on observe *)
  mutable chol : T.t option;
  mutable alpha : T.t option;  (** K^-1 (y - mean) *)
  mutable y_mean : float;
  mutable y_std : float;
}

let create ?(length_scale = 0.35) ?(noise = 1e-3) ?(seed = 0) ~dim () =
  {
    dim;
    length_scale;
    noise;
    rng = Rng.create (seed lxor 0x5b0b);
    xs = [];
    ys = [];
    chol = None;
    alpha = None;
    y_mean = 0.;
    y_std = 1.;
  }

let n_observations t = List.length t.ys

let kernel t a b =
  let acc = ref 0. in
  for i = 0 to t.dim - 1 do
    let d = a.(i) -. b.(i) in
    acc := !acc +. (d *. d)
  done;
  exp (-. !acc /. (2. *. t.length_scale *. t.length_scale))

let observe t x y =
  if Array.length x <> t.dim then invalid_arg "Bayesopt.observe: bad dimension";
  t.xs <- Array.copy x :: t.xs;
  t.ys <- y :: t.ys;
  t.chol <- None;
  t.alpha <- None

let best t =
  let rec go xs ys acc =
    match (xs, ys) with
    | [], [] -> acc
    | x :: xs', y :: ys' ->
        let acc =
          match acc with
          | Some (_, by) when by <= y -> acc
          | _ -> Some (x, y)
        in
        go xs' ys' acc
    | _ -> assert false
  in
  go t.xs t.ys None

let refresh t =
  match t.chol with
  | Some _ -> ()
  | None ->
      let xs = Array.of_list t.xs in
      let ys = Array.of_list t.ys in
      let n = Array.length xs in
      if n = 0 then invalid_arg "Bayesopt: no observations";
      let mean = Array.fold_left ( +. ) 0. ys /. float_of_int n in
      let var =
        Array.fold_left (fun a y -> a +. ((y -. mean) ** 2.)) 0. ys
        /. float_of_int n
      in
      let std = Float.max 1e-9 (sqrt var) in
      t.y_mean <- mean;
      t.y_std <- std;
      let k =
        T.init [| n; n |] (fun i ->
            kernel t xs.(i.(0)) xs.(i.(1))
            +. if i.(0) = i.(1) then t.noise else 0.)
      in
      let l = Linalg.cholesky k in
      let y_norm = T.of_array1 (Array.map (fun y -> (y -. mean) /. std) ys) in
      t.chol <- Some l;
      t.alpha <- Some (Linalg.cholesky_solve l y_norm)

let posterior t x =
  refresh t;
  let xs = Array.of_list t.xs in
  let n = Array.length xs in
  let l = Option.get t.chol and alpha = Option.get t.alpha in
  let kstar = T.of_array1 (Array.init n (fun i -> kernel t x xs.(i))) in
  let mean_norm = T.dot kstar alpha in
  (* variance: k(x,x) - ||L^-1 k*||^2 *)
  let v = Linalg.solve_lower l kstar in
  let var = Float.max 1e-12 (1. +. t.noise -. T.dot v v) in
  ((mean_norm *. t.y_std) +. t.y_mean, sqrt var *. t.y_std)

(* standard normal pdf / cdf *)
let phi z = exp (-0.5 *. z *. z) /. sqrt (2. *. Float.pi)

let cdf z = 0.5 *. (1. +. Float.erf (z /. sqrt 2.))

let expected_improvement t ~best_y x =
  let mu, sigma = posterior t x in
  if sigma <= 1e-12 then 0.
  else begin
    let z = (best_y -. mu) /. sigma in
    ((best_y -. mu) *. cdf z) +. (sigma *. phi z)
  end

let random_point t = Array.init t.dim (fun _ -> Rng.uniform t.rng)

let suggest ?(candidates = 512) t =
  match best t with
  | None -> random_point t
  | Some (_, best_y) ->
      refresh t;
      let best_x = ref (random_point t) in
      let best_ei = ref (expected_improvement t ~best_y !best_x) in
      for _ = 2 to candidates do
        let x = random_point t in
        let ei = expected_improvement t ~best_y x in
        if ei > !best_ei then begin
          best_ei := ei;
          best_x := x
        end
      done;
      !best_x

let minimize ?(iterations = 16) ?(init = 4) t f =
  for _ = 1 to min init iterations do
    let x = random_point t in
    observe t x (f x)
  done;
  for _ = n_observations t + 1 to iterations do
    let x = suggest t in
    observe t x (f x)
  done;
  match best t with
  | Some (x, y) -> (x, y)
  | None -> invalid_arg "Bayesopt.minimize: zero iterations"
