lib/bayesopt/bayesopt.mli:
