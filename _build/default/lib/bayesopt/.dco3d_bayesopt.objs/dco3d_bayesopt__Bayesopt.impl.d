lib/bayesopt/bayesopt.ml: Array Dco3d_tensor Float List Option
