(** Gaussian-process Bayesian optimization — the engine behind the
    "Pin-3D + BO" baseline (section V-B), which tunes the Table-I
    placement parameters with the method of Ma et al. [19].

    Standard recipe: GP regression with an RBF kernel over the
    normalized parameter cube [\[0,1\]^d], expected-improvement
    acquisition maximized by random multistart, observations normalized
    to zero mean / unit variance. *)

type t

val create :
  ?length_scale:float ->
  ?noise:float ->
  ?seed:int ->
  dim:int ->
  unit ->
  t
(** Defaults: [length_scale = 0.35], [noise = 1e-3]. *)

val observe : t -> float array -> float -> unit
(** [observe t x y] records an evaluation of the objective (to be
    {e minimized}) at point [x] in the unit cube. *)

val n_observations : t -> int

val best : t -> (float array * float) option
(** Best (lowest) observation so far. *)

val posterior : t -> float array -> float * float
(** [(mean, stddev)] of the GP posterior at a point (in original
    objective units).
    @raise Invalid_argument before any observation. *)

val suggest : ?candidates:int -> t -> float array
(** Next point to evaluate: maximizes expected improvement over random
    candidates (default 512).  Before any observations, returns a
    uniform random point. *)

val minimize :
  ?iterations:int ->
  ?init:int ->
  t ->
  (float array -> float) ->
  float array * float
(** Full loop: [init] random evaluations (default 4) then
    EI-guided ones, [iterations] total (default 16).  Returns the best
    point and value. *)
