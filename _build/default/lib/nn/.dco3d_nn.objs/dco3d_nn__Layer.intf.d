lib/nn/layer.mli: Dco3d_autodiff Dco3d_tensor
