lib/nn/layer.ml: Dco3d_autodiff Dco3d_tensor List Option
