lib/nn/siamese_unet.ml: Array Dco3d_autodiff Dco3d_tensor Fun Layer List Marshal String
