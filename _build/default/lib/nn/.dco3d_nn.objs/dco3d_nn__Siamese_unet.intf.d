lib/nn/siamese_unet.mli: Dco3d_autodiff Dco3d_tensor
