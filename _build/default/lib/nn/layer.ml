module T = Dco3d_tensor.Tensor
module V = Dco3d_autodiff.Value

type t = { params : V.t list; forward : V.t -> V.t }

let conv2d rng ?(stride = 1) ?(pad = 0) ?(bias = true) ~in_channels
    ~out_channels ~ksize () =
  let fan_in = in_channels * ksize * ksize in
  let w = V.param (T.kaiming rng ~fan_in [| out_channels; in_channels; ksize; ksize |]) in
  let b = if bias then Some (V.param (T.zeros [| out_channels |])) else None in
  let params = w :: Option.to_list b in
  { params; forward = (fun x -> V.conv2d ~stride ~pad x ~weight:w ~bias:b) }

let conv2d_transpose rng ?(stride = 1) ?(pad = 0) ?(bias = true) ~in_channels
    ~out_channels ~ksize () =
  let fan_in = in_channels * ksize * ksize in
  let w = V.param (T.kaiming rng ~fan_in [| in_channels; out_channels; ksize; ksize |]) in
  let b = if bias then Some (V.param (T.zeros [| out_channels |])) else None in
  let params = w :: Option.to_list b in
  {
    params;
    forward = (fun x -> V.conv2d_transpose ~stride ~pad x ~weight:w ~bias:b);
  }

let pointwise rng ~in_channels ~out_channels () =
  conv2d rng ~in_channels ~out_channels ~ksize:1 ()

let linear rng ?(bias = true) ~in_dim ~out_dim () =
  let w = V.param (T.kaiming rng ~fan_in:in_dim [| in_dim; out_dim |]) in
  let b = if bias then Some (V.param (T.zeros [| out_dim |])) else None in
  let params = w :: Option.to_list b in
  {
    params;
    forward =
      (fun x ->
        let y = V.matmul x w in
        match b with Some b -> V.add_bias_rows y b | None -> y);
  }

let activation f = { params = []; forward = f }
let relu = activation V.relu
let leaky_relu slope = activation (V.leaky_relu slope)
let sigmoid = activation V.sigmoid
let tanh_ = activation V.tanh_
let maxpool2 = activation V.maxpool2

let seq layers =
  {
    params = List.concat_map (fun l -> l.params) layers;
    forward = (fun x -> List.fold_left (fun acc l -> l.forward acc) x layers);
  }

let num_params l = List.fold_left (fun acc p -> acc + V.numel p) 0 l.params

let state l = List.map (fun p -> T.copy (V.data p)) l.params

let load_state l snapshot =
  if List.length snapshot <> List.length l.params then
    invalid_arg "Layer.load_state: parameter count mismatch";
  List.iter2
    (fun p s ->
      let d = V.data p in
      if not (T.same_shape d s) then
        invalid_arg "Layer.load_state: shape mismatch";
      for i = 0 to T.numel d - 1 do
        T.set_flat d i (T.get_flat s i)
      done)
    l.params snapshot
