module T = Dco3d_tensor.Tensor
module V = Dco3d_autodiff.Value
module Csr = Dco3d_graph.Csr
module Gcn = Dco3d_graph.Gcn

let congestion c0 c1 =
  let zeros v = T.zeros (V.shape v) in
  V.scale 0.5
    (V.add (V.rmse_frobenius c0 (zeros c0)) (V.rmse_frobenius c1 (zeros c1)))

let cutsize ~adj z =
  let n = V.numel z in
  if Csr.nnz adj = 0 then V.scalar 0.
  else begin
    let z2 = V.reshape z [| n; 1 |] in
    let az = Gcn.spmm adj z2 in
    (* scalar building blocks *)
    let zaz = V.dot (V.reshape z2 [| n |]) (V.reshape az [| n |]) in
    let sum_az = V.sum az in
    let total = T.scalar (Array.fold_left ( +. ) 0. (Csr.row_sums adj)) in
    (* cut = 1'Az - z'Az ; deg_T = z'Az ; deg_B = total - 2 1'Az + z'Az *)
    let cut = V.sub sum_az zaz in
    let deg_t = zaz in
    let deg_b = V.add (V.sub (V.const total) (V.scale 2. sum_az)) zaz in
    let eps = 1e-6 in
    V.add
      (V.div cut (V.add_scalar eps deg_t))
      (V.div cut (V.add_scalar eps deg_b))
  end

let overlap ?(target = 0.85) f_bottom f_top =
  let pen f =
    let d = V.slice_channels f 0 1 in
    V.mean (V.sqr (V.relu (V.add_scalar (-.target) d)))
  in
  V.add (pen f_bottom) (pen f_top)

let displacement ~x ~y ~x0 ~y0 =
  let dx = V.sub x (V.const x0) and dy = V.sub y (V.const y0) in
  let n = float_of_int (max 1 (V.numel x)) in
  V.scale (1. /. n) (V.add (V.dot dx dx) (V.dot dy dy))
