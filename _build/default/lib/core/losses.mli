(** The four differentiable objectives of Algorithm 2 (sections
    IV-B..IV-E). *)

val congestion :
  Dco3d_autodiff.Value.t -> Dco3d_autodiff.Value.t -> Dco3d_autodiff.Value.t
(** Section IV-B: the congestion penalty of the two predicted maps,
    "calculated using Eq. 4" — the mean over dies of the
    root-mean-squared Frobenius norm of the predicted congestion
    (target zero). *)

val cutsize :
  adj:Dco3d_graph.Csr.t -> Dco3d_autodiff.Value.t -> Dco3d_autodiff.Value.t
(** Eq. 7 with soft tier probabilities: [cut(T,B)/deg(T) +
    cut(T,B)/deg(B)] where, over the weighted cell-connectivity graph
    [adj], [cut = sum_ij a_ij (z_i(1-z_j) + z_j(1-z_i)) / 2],
    [deg(T) = sum_ij a_ij z_i z_j], [deg(B)] symmetric.  [z] is the
    rank-1 tier-probability vector. *)

val overlap :
  ?target:float ->
  Dco3d_autodiff.Value.t ->
  Dco3d_autodiff.Value.t ->
  Dco3d_autodiff.Value.t
(** Sections IV-D (Eq. 8-10): the smoothed density penalty.  We penalize
    the soft per-die cell-density channels above [target] (default
    0.85): [mean (relu (density - target))^2] summed over dies.  The
    bilinear tent kernel of the soft maps plays the role of the
    bell-shaped potential [p_x p_y] — both are separable, piecewise
    polynomial bumps with compact support. *)

val displacement :
  x:Dco3d_autodiff.Value.t ->
  y:Dco3d_autodiff.Value.t ->
  x0:Dco3d_tensor.Tensor.t ->
  y0:Dco3d_tensor.Tensor.t ->
  Dco3d_autodiff.Value.t
(** Eq. 11, normalized per cell: [mean ((x - x0)^2 + (y - y0)^2)]
    in um^2. *)
