module Nl = Dco3d_netlist.Netlist
module Pl = Dco3d_place.Placement

let cell_name c = Printf.sprintf "u%d" c

let to_string ?only_moved_from (p : Pl.t) =
  let buf = Buffer.create (1 lsl 14) in
  Buffer.add_string buf "# DCO-3D cell spreading constraints\n";
  Buffer.add_string buf
    (Printf.sprintf "# design %s, %d cells\n" p.Pl.nl.Nl.design
       (Nl.n_cells p.Pl.nl));
  let moved c =
    match only_moved_from with
    | None -> true
    | Some r ->
        abs_float (p.Pl.x.(c) -. r.Pl.x.(c)) > 1e-9
        || abs_float (p.Pl.y.(c) -. r.Pl.y.(c)) > 1e-9
        || p.Pl.tier.(c) <> r.Pl.tier.(c)
  in
  for c = 0 to Nl.n_cells p.Pl.nl - 1 do
    if moved c then begin
      Buffer.add_string buf
        (Printf.sprintf
           "set_attribute -objects [get_cells %s] -name die -value %d\n"
           (cell_name c) p.Pl.tier.(c));
      Buffer.add_string buf
        (Printf.sprintf
           "set_cell_location -coordinates {%.4f %.4f} -fixed [get_cells %s]\n"
           p.Pl.x.(c) p.Pl.y.(c) (cell_name c))
    end
  done;
  Buffer.contents buf

let write ?only_moved_from p path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?only_moved_from p))

let parse_locations text =
  let lines = String.split_on_char '\n' text in
  let die = Hashtbl.create 97 in
  let out = ref [] in
  List.iter
    (fun line ->
      match
        Scanf.sscanf_opt line
          "set_attribute -objects [get_cells %s@] -name die -value %d"
          (fun name v -> (name, v))
      with
      | Some (name, v) -> Hashtbl.replace die name v
      | None -> (
          match
            Scanf.sscanf_opt line
              "set_cell_location -coordinates {%f %f} -fixed [get_cells %s@]"
              (fun x y name -> (x, y, name))
          with
          | Some (x, y, name) ->
              let tier = Option.value ~default:0 (Hashtbl.find_opt die name) in
              out := (name, x, y, tier) :: !out
          | None -> ()))
    lines;
  List.rev !out
