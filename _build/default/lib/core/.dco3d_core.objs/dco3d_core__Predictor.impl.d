lib/core/predictor.ml: Array Dataset Dco3d_autodiff Dco3d_congestion Dco3d_nn Dco3d_tensor Fun List Logs Marshal String
