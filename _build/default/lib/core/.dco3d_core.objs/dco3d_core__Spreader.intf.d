lib/core/spreader.mli: Dco3d_autodiff Dco3d_graph Dco3d_netlist Dco3d_place Dco3d_tensor
