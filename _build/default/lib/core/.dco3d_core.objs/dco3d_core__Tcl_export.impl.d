lib/core/tcl_export.ml: Array Buffer Dco3d_netlist Dco3d_place Fun Hashtbl List Option Printf Scanf String
