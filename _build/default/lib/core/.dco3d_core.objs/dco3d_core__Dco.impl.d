lib/core/dco.ml: Array Dco3d_autodiff Dco3d_congestion Dco3d_graph Dco3d_netlist Dco3d_nn Dco3d_place Dco3d_tensor Lazy List Logs Losses Predictor Soft_maps Spreader
