lib/core/predictor.mli: Dataset Dco3d_autodiff Dco3d_nn Dco3d_tensor
