lib/core/spreader.ml: Array Dco3d_autodiff Dco3d_graph Dco3d_netlist Dco3d_place Dco3d_sta Dco3d_tensor Float List
