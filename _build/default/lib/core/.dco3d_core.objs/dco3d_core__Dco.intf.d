lib/core/dco.mli: Dco3d_autodiff Dco3d_place Predictor
