lib/core/dataset.mli: Dco3d_netlist Dco3d_place Dco3d_route Dco3d_tensor
