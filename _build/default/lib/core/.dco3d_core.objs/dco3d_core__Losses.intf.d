lib/core/losses.mli: Dco3d_autodiff Dco3d_graph Dco3d_tensor
