lib/core/soft_maps.ml: Array Dco3d_autodiff Dco3d_netlist Dco3d_place Dco3d_tensor Float
