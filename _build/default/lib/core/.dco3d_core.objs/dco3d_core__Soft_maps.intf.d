lib/core/soft_maps.mli: Dco3d_autodiff Dco3d_place Dco3d_tensor
