lib/core/dataset.ml: Array Dco3d_congestion Dco3d_netlist Dco3d_place Dco3d_route Dco3d_tensor Float Fun List Logs Marshal String
