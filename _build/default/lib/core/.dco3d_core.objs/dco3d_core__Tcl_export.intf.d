lib/core/tcl_export.mli: Dco3d_place
