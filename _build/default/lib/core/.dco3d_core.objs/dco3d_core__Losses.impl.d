lib/core/losses.ml: Array Dco3d_autodiff Dco3d_graph Dco3d_tensor
