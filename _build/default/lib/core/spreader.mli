(** The GNN-based 3D cell spreader (section IV-A).

    Three GCN layers with weights shared across all cells predict, per
    cell, a bounded (dx, dy) move plus a tier probability
    [z in [0, 1]]: [x = x0 + max_move * tanh(o_x)], [y] likewise, and
    [z = sigmoid(o_z + bias(z0))] where the fixed logit bias starts
    every cell near its current tier, so optimization begins from the
    incoming placement.  Macros are masked: their positions and tiers
    never move. *)

type t

val graph_of_netlist : Dco3d_netlist.Netlist.t -> Dco3d_graph.Csr.t
(** The weighted cell-connectivity graph: cliques (weight
    [1/(deg-1)]) for nets with at most 16 pins, driver-centered stars
    (weight [2/deg]) for larger nets; IO pins are dropped.  Symmetric,
    un-normalized (feed to {!Dco3d_graph.Csr.symmetric_normalize} for
    propagation, or use directly as the Eq.-7 cut graph). *)

val node_features :
  Dco3d_place.Placement.t -> Dco3d_tensor.Tensor.t
(** The Table-II handcrafted features (worst slack, slews, powers,
    leakage, geometry — computed by a pre-route STA over the incoming
    placement) augmented with the normalized initial position
    [(x0/W, y0/H, tier)], giving [[n; 11]]. *)

val create :
  Dco3d_tensor.Rng.t ->
  adj:Dco3d_graph.Csr.t ->
  n_features:int ->
  ?hidden:int ->
  max_move:float ->
  placement:Dco3d_place.Placement.t ->
  unit ->
  t
(** [adj] must already be symmetric-normalized.  [max_move] in um. *)

val forward :
  t ->
  features:Dco3d_tensor.Tensor.t ->
  Dco3d_autodiff.Value.t * Dco3d_autodiff.Value.t * Dco3d_autodiff.Value.t
(** [(x, y, z)] rank-1 values of length [n_cells]. *)

val params : t -> Dco3d_autodiff.Value.t list
val n_params : t -> int
