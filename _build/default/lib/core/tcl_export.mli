(** TCL constraint export.

    The paper's DCO-3D "directly generates cell spreading decisions in
    TCL constraints for the commercial P&R tool" (section I).  This
    module reproduces that integration contract: the optimized
    placement is serialized as ICC2-style commands
    ([set_cell_location -coordinates {x y} -fixed] plus a die
    attribute), one per moved cell, so a downstream tool run can
    consume the spreading decisions. *)

val to_string :
  ?only_moved_from:Dco3d_place.Placement.t ->
  Dco3d_place.Placement.t ->
  string
(** Render the constraints.  With [only_moved_from], only cells whose
    position or tier changed with respect to the reference placement
    are emitted (the paper's "cell spreading decisions"). *)

val write :
  ?only_moved_from:Dco3d_place.Placement.t ->
  Dco3d_place.Placement.t ->
  string ->
  unit

val parse_locations : string -> (string * float * float * int) list
(** Parse back [(cell_name, x, y, tier)] from an exported script —
    used by tests and by the CLI round-trip. *)
