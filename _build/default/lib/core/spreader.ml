module T = Dco3d_tensor.Tensor
module V = Dco3d_autodiff.Value
module Nl = Dco3d_netlist.Netlist
module Pl = Dco3d_place.Placement
module Csr = Dco3d_graph.Csr
module Gcn = Dco3d_graph.Gcn
module Sta = Dco3d_sta.Sta

let graph_of_netlist nl =
  let n = Nl.n_cells nl in
  let coo = ref [] in
  let edge a b w =
    coo := (a, b, w) :: (b, a, w) :: !coo
  in
  List.iter
    (fun (net : Nl.net) ->
      let cells =
        Array.to_list (Array.append [| net.Nl.driver |] net.Nl.sinks)
        |> List.filter_map (function Nl.Cell c -> Some c | Nl.Io _ -> None)
      in
      match cells with
      | [] | [ _ ] -> ()
      | driver :: rest as all ->
          let deg = List.length all in
          if deg <= 16 then begin
            let w = 1. /. float_of_int (deg - 1) in
            let arr = Array.of_list all in
            for a = 0 to deg - 2 do
              for b = a + 1 to deg - 1 do
                if arr.(a) <> arr.(b) then edge arr.(a) arr.(b) w
              done
            done
          end
          else begin
            let w = 2. /. float_of_int deg in
            List.iter (fun s -> if s <> driver then edge driver s w) rest
          end)
    (Nl.signal_nets nl);
  Csr.create ~n_rows:n ~n_cols:n !coo

let node_features (p : Pl.t) =
  let nl = p.Pl.nl in
  let n = Nl.n_cells nl in
  (* pre-route estimates: HPWL net lengths *)
  let lengths = Array.make (Nl.n_nets nl) 0.5 in
  List.iter
    (fun (net : Nl.net) ->
      let x0, y0, x1, y1 = Pl.net_bbox p net in
      lengths.(net.Nl.net_id) <- Float.max 0.5 (x1 -. x0 +. (y1 -. y0)))
    (Nl.signal_nets nl);
  let net_is_3d nid = Pl.net_is_3d p nl.Nl.nets.(nid) in
  let cfg = Sta.default_config ~clock_period_ps:500. in
  let t = Sta.analyze cfg nl ~net_length:lengths ~net_is_3d in
  let pw = Sta.estimate_power cfg nl ~net_length:lengths () in
  let table2 = Sta.node_features nl t pw in
  let fp = p.Pl.fp in
  T.init [| n; 11 |] (fun idx ->
      let c = idx.(0) and f = idx.(1) in
      if f < 8 then T.get2 table2 c f
      else if f = 8 then p.Pl.x.(c) /. fp.Dco3d_place.Floorplan.width
      else if f = 9 then p.Pl.y.(c) /. fp.Dco3d_place.Floorplan.height
      else float_of_int p.Pl.tier.(c))

type t = {
  layers : Gcn.t list;
  max_move : float;
  x0 : T.t;
  y0 : T.t;
  z_bias : T.t;  (** fixed logit offset toward the initial tier *)
  mask : T.t;  (** 0 for macros, 1 for movable cells *)
}

let create rng ~adj ~n_features ?(hidden = 32) ~max_move ~placement () =
  let nl = placement.Pl.nl in
  let n = Nl.n_cells nl in
  let layers = Gcn.stack rng ~adj ~dims:[ n_features; hidden; hidden; 3 ] () in
  let x0 = T.of_array1 placement.Pl.x in
  let y0 = T.of_array1 placement.Pl.y in
  (* start near (not at) the incoming tier: +-1.5 gives z ~ 0.18/0.82,
     close enough to round back to the original assignment yet leaving
     the sigmoid un-saturated so cross-tier gradients can act *)
  let z_bias =
    T.init [| n |] (fun i ->
        if placement.Pl.tier.(i.(0)) = 1 then 1.5 else -1.5)
  in
  let mask =
    T.init [| n |] (fun i -> if Nl.is_macro nl i.(0) then 0. else 1.)
  in
  { layers; max_move; x0; y0; z_bias; mask }

let forward t ~features =
  let o = Gcn.forward_stack t.layers (V.const features) in
  let cols = V.columns o in
  let masked v = V.mul (V.const t.mask) v in
  let x =
    V.add (V.const t.x0) (V.scale t.max_move (masked (V.tanh_ cols.(0))))
  in
  let y =
    V.add (V.const t.y0) (V.scale t.max_move (masked (V.tanh_ cols.(1))))
  in
  (* damp the raw logit so a freshly initialized GNN stays close to
     the incoming tier assignment *)
  let z = V.sigmoid (V.add (V.scale 0.6 (masked cols.(2))) (V.const t.z_bias)) in
  (x, y, z)

let params t = Gcn.stack_params t.layers
let n_params t = List.fold_left (fun a p -> a + V.numel p) 0 (params t)
