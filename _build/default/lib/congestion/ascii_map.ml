module T = Dco3d_tensor.Tensor

let default_palette = " .:-=+*#%@"

let cell palette lo hi v =
  let n = String.length palette in
  if n = 0 then ' '
  else begin
    let t = if hi -. lo <= 1e-15 then 0. else (v -. lo) /. (hi -. lo) in
    let k = int_of_float (t *. float_of_int n) in
    palette.[max 0 (min (n - 1) k)]
  end

let prepare ?(width = 48) m =
  if T.rank m <> 2 then invalid_arg "Ascii_map.render: rank-2 map expected";
  let h = T.dim m 0 and w = T.dim m 1 in
  if w <= width then m
  else begin
    let h' = max 1 (h * width / w) in
    T.resize_nearest m h' width
  end

let render ?(width = 48) ?(palette = default_palette) ?lo ?hi m =
  let m = prepare ~width m in
  let lo = match lo with Some v -> v | None -> T.min_elt m in
  let hi = match hi with Some v -> v | None -> T.max_elt m in
  let h = T.dim m 0 and w = T.dim m 1 in
  let buf = Buffer.create ((h + 2) * (w + 3)) in
  Buffer.add_char buf '+';
  Buffer.add_string buf (String.make w '-');
  Buffer.add_string buf "+\n";
  (* row 0 of the tensor is the bottom of the die: draw top first *)
  for i = h - 1 downto 0 do
    Buffer.add_char buf '|';
    for j = 0 to w - 1 do
      Buffer.add_char buf (cell palette lo hi (T.get2 m i j))
    done;
    Buffer.add_string buf "|\n"
  done;
  Buffer.add_char buf '+';
  Buffer.add_string buf (String.make w '-');
  Buffer.add_string buf "+\n";
  Buffer.contents buf

let render_pair ?(width = 48) ?(labels = ("bottom", "top")) a b =
  let a' = prepare ~width:(width / 2) a and b' = prepare ~width:(width / 2) b in
  let lo = Float.min (T.min_elt a') (T.min_elt b') in
  let hi = Float.max (T.max_elt a') (T.max_elt b') in
  let ra = render ~width:(width / 2) ~lo ~hi a' in
  let rb = render ~width:(width / 2) ~lo ~hi b' in
  let la = String.split_on_char '\n' ra and lb = String.split_on_char '\n' rb in
  let rec zip xs ys acc =
    match (xs, ys) with
    | x :: xs', y :: ys' -> zip xs' ys' ((x ^ "  " ^ y) :: acc)
    | [], rest | rest, [] -> List.rev_append acc rest
  in
  let name_a, name_b = labels in
  let header =
    Printf.sprintf "%-*s  %s" ((width / 2) + 2) name_a name_b
  in
  String.concat "\n" (header :: zip la lb [])
