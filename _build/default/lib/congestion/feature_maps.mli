(** The 7 per-die input feature maps of section III-B1.

    Channel order (fixed, used everywhere):
    + 0 — cell density: cell area per bin / bin area
    + 1 — pin density: pins per um^2
    + 2 — 2D RUDY (nets with all pins on this die)
    + 3 — 3D RUDY (nets spanning dies, 0.5-scaled)
    + 4 — 2D PinRUDY
    + 5 — 3D PinRUDY
    + 6 — macro blockage: macro-covered area fraction

    Raw maps are built at GCell resolution and resized to the CNN input
    with nearest-neighbour interpolation (Fig. 3a); {!normalize}
    rescales each channel to O(1) for training. *)

val n_channels : int
val channel_names : string array

val per_die :
  Dco3d_place.Placement.t -> tier:int -> nx:int -> ny:int ->
  Dco3d_tensor.Tensor.t
(** Raw feature stack [[7; ny; nx]] for one die. *)

val both_dies :
  Dco3d_place.Placement.t -> nx:int -> ny:int ->
  Dco3d_tensor.Tensor.t * Dco3d_tensor.Tensor.t
(** [(bottom, top)] raw stacks. *)

val default_scales : float array
(** Per-channel normalization divisors (bring typical magnitudes to
    O(1); fixed so that train and inference agree). *)

val normalize : Dco3d_tensor.Tensor.t -> Dco3d_tensor.Tensor.t
(** Divide each channel by its {!default_scales} entry. *)

val resize_stack : Dco3d_tensor.Tensor.t -> int -> int -> Dco3d_tensor.Tensor.t
(** Nearest-neighbour resize of every channel to [h x w]
    (section III-B3). *)
