lib/congestion/ascii_map.ml: Buffer Dco3d_tensor Float List Printf String
