lib/congestion/rudy.mli: Dco3d_place Dco3d_tensor
