lib/congestion/rudy.ml: Array Dco3d_netlist Dco3d_place Dco3d_tensor Float List
