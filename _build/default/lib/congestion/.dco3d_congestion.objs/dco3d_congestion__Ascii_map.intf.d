lib/congestion/ascii_map.mli: Dco3d_tensor
