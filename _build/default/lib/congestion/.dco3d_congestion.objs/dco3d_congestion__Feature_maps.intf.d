lib/congestion/feature_maps.mli: Dco3d_place Dco3d_tensor
