lib/congestion/metrics.ml: Array Dco3d_tensor Float List
