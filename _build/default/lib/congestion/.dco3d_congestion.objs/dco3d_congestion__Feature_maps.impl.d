lib/congestion/feature_maps.ml: Array Dco3d_netlist Dco3d_place Dco3d_tensor Float List Rudy
