lib/congestion/metrics.mli: Dco3d_tensor
