(** RUDY and PinRUDY routing-demand estimation (paper section II-B).

    RUDY (Rectangular Uniform wire DensitY, Eq. 1-2) spreads each net's
    expected wire area uniformly over its bounding box: tile [(m, n)]
    accumulates [(1/w + 1/h) * overlap / tile_area].  PinRUDY (Eq. 3)
    accumulates [(1/w + 1/h)] at each pin's tile.

    The 3D extension follows section III-B1: a {e 2D net} has all pins
    on one die and contributes to that die's 2D maps; a {e 3D net}
    spans both dies and contributes to both dies' 3D maps, scaled by
    0.5 to account for the extra 3D routing resources. *)

type kind =
  | Two_d  (** nets with every pin on the queried die *)
  | Three_d  (** nets spanning both dies (0.5-scaled) *)
  | All  (** both, unscaled — the classic 2D estimator of Fig. 5c *)

val net_weight : float -> float -> float
(** [net_weight w h] is [(1/w + 1/h)] with both spans clamped below by
    a minimum feature size so point nets stay finite. *)

val rudy_map :
  Dco3d_place.Placement.t -> tier:int -> kind:kind -> nx:int -> ny:int ->
  Dco3d_tensor.Tensor.t
(** Eq. 2 accumulated over the selected signal nets, shape [[ny; nx]]. *)

val pin_rudy_map :
  Dco3d_place.Placement.t -> tier:int -> kind:kind -> nx:int -> ny:int ->
  Dco3d_tensor.Tensor.t
(** Eq. 3; only pins physically on [tier] accumulate. *)

val accumulate_net :
  Dco3d_tensor.Tensor.t ->
  die_w:float -> die_h:float ->
  bbox:float * float * float * float ->
  weight:float ->
  unit
(** Add one net's RUDY contribution into an existing [[ny; nx]] map —
    the kernel shared with the differentiable soft maps of the
    optimizer. *)
