(** Terminal rendering of GCell maps.

    The paper's figures (Fig. 2, 5c, 6, 7) are heat maps; this renders
    any rank-2 map as ASCII art so the examples and the bench harness
    can show the spatial structure (hotspot locations, die halves)
    without a plotting stack. *)

val render :
  ?width:int ->
  ?palette:string ->
  ?lo:float ->
  ?hi:float ->
  Dco3d_tensor.Tensor.t ->
  string
(** [render m] draws the map top row first, one character per
    (downsampled) cell.  [width] bounds the output columns (default 48,
    the map is nearest-resized when wider).  [palette] maps intensity
    from low to high (default [" .:-=+*#%@"]); [lo]/[hi] fix the scale
    (default: the map's own range). *)

val render_pair :
  ?width:int -> ?labels:string * string ->
  Dco3d_tensor.Tensor.t -> Dco3d_tensor.Tensor.t -> string
(** Two maps side by side on a shared scale — the paper's
    bottom-die/top-die (Fig. 2) or Pin-3D/DCO-3D (Fig. 6) layouts. *)
