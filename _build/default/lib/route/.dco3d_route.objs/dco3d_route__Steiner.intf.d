lib/route/steiner.mli:
