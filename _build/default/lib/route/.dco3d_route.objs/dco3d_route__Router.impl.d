lib/route/router.ml: Array Dco3d_netlist Dco3d_place Dco3d_tensor Float Fun Hashtbl List Steiner
