lib/route/steiner.ml: Array List
