type point = { x : int; y : int }
type edge = point * point

let dist a b = abs (a.x - b.x) + abs (a.y - b.y)

(* Manhattan-closest point on the bounding box spanned by a
   rectilinear tree edge.  Tree edges are abstract "L-connections":
   any point inside the edge's bounding box can be reached from both
   endpoints without extra wire, so snapping the query into the box is
   the legal Steiner candidate. *)
let closest_point_on_segment q ((a, b) : edge) =
  let lo_x = min a.x b.x and hi_x = max a.x b.x in
  let lo_y = min a.y b.y and hi_y = max a.y b.y in
  { x = max lo_x (min hi_x q.x); y = max lo_y (min hi_y q.y) }

let length edges =
  List.fold_left (fun acc (a, b) -> acc + dist a b) 0 edges

let dedup pins =
  List.sort_uniq (fun a b -> compare (a.x, a.y) (b.x, b.y)) pins

let spanning_length pins =
  match dedup pins with
  | [] | [ _ ] -> 0
  | first :: rest ->
      let rest = Array.of_list rest in
      let n = Array.length rest in
      let best = Array.map (dist first) rest in
      let used = Array.make n false in
      let total = ref 0 in
      for _ = 1 to n do
        (* nearest unused pin *)
        let bi = ref (-1) in
        for i = 0 to n - 1 do
          if (not used.(i)) && (!bi < 0 || best.(i) < best.(!bi)) then bi := i
        done;
        used.(!bi) <- true;
        total := !total + best.(!bi);
        for i = 0 to n - 1 do
          if not used.(i) then
            best.(i) <- min best.(i) (dist rest.(!bi) rest.(i))
        done
      done;
      !total

let build pins =
  match dedup pins with
  | [] | [ _ ] -> []
  | first :: rest ->
      (* Sequential RSMT: attach each remaining pin (nearest first) to
         the closest point of the current tree, splitting the host edge
         at a fresh Steiner point when the attachment lands strictly
         inside it. *)
      let edges = ref [] in
      let tree_pts = ref [ first ] in
      let remaining = ref rest in
      while !remaining <> [] do
        (* the pin closest to the current tree (over edges and points) *)
        let best = ref None in
        List.iter
          (fun pin ->
            (* closest attachment for this pin *)
            let attach = ref (List.hd !tree_pts) in
            let d = ref (dist pin !attach) in
            List.iter
              (fun pt ->
                let dd = dist pin pt in
                if dd < !d then begin
                  d := dd;
                  attach := pt
                end)
              !tree_pts;
            let host = ref None in
            List.iter
              (fun e ->
                let cp = closest_point_on_segment pin e in
                let dd = dist pin cp in
                if dd < !d then begin
                  d := dd;
                  attach := cp;
                  host := Some e
                end)
              !edges;
            match !best with
            | Some (bd, _, _, _) when bd <= !d -> ()
            | _ -> best := Some (!d, pin, !attach, !host))
          !remaining;
        match !best with
        | None -> remaining := []
        | Some (_, pin, attach, host) ->
            remaining := List.filter (fun p -> p <> pin) !remaining;
            (* split the host edge at the Steiner point if needed *)
            (match host with
            | Some ((a, b) as e) when attach <> a && attach <> b ->
                edges := List.filter (fun e' -> e' <> e) !edges;
                edges := (a, attach) :: (attach, b) :: !edges;
                tree_pts := attach :: !tree_pts
            | Some _ | None -> ());
            if attach <> pin then edges := (attach, pin) :: !edges;
            tree_pts := pin :: !tree_pts
      done;
      !edges
