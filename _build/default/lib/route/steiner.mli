(** Rectilinear Steiner minimal-tree approximation.

    The router decomposes each net into two-pin connections; a plain
    Prim spanning tree over the pins wastes wirelength that a Steiner
    topology saves (up to 33 % in theory, a few percent typically).
    This module implements the classic sequential ("Prim-based") RSMT
    heuristic: pins are inserted one at a time at the closest point of
    the current tree, creating L-bend Steiner points on demand.

    Points are integer GCell coordinates; distances are Manhattan. *)

type point = { x : int; y : int }

type edge = point * point
(** Tree edges; endpoints are pins or Steiner points. *)

val closest_point_on_segment : point -> edge -> point
(** The Manhattan-closest point to the query on the (rectilinear
    bounding box of the) segment — the candidate Steiner point. *)

val build : point list -> edge list
(** [build pins] returns a connected rectilinear tree spanning the
    pins.  [n-1 <= edges <= 2(n-1)]; duplicates among the input pins
    are merged.  The empty and singleton cases return []. *)

val length : edge list -> int
(** Total Manhattan length of the tree. *)

val spanning_length : point list -> int
(** Length of the plain Prim spanning tree over the pins (the baseline
    the Steiner construction must never exceed). *)
