module Rng = Dco3d_tensor.Rng

type t = {
  pin_density_aware : bool;
  target_routing_density : float;
  adv_node_cong_max_util : float;
  congestion_driven_max_util : float;
  cong_restruct_effort : int;
  cong_restruct_iterations : int;
  enhanced_low_power_effort : int;
  low_power_placement : bool;
  max_density : float;
  displacement_threshold : int;
  two_pass : bool;
  global_route_based : bool;
  enable_ccd : bool;
  initial_place_effort : int;
  final_place_effort : int;
  enable_irap : bool;
}

(* The Pin-3D baseline is a tuned production flow, so its defaults sit
   near this placer's own optimum (high placement efforts, two-pass
   initial placement); the congestion-specific knobs stay off. *)
let default =
  {
    pin_density_aware = false;
    target_routing_density = 0.85;
    adv_node_cong_max_util = 0.85;
    congestion_driven_max_util = 0.85;
    cong_restruct_effort = 0;
    cong_restruct_iterations = 0;
    enhanced_low_power_effort = 0;
    low_power_placement = false;
    max_density = 0.80;
    displacement_threshold = 5;
    two_pass = true;
    global_route_based = false;
    enable_ccd = false;
    initial_place_effort = 2;
    final_place_effort = 2;
    enable_irap = false;
  }

let congestion_focused =
  {
    default with
    pin_density_aware = true;
    target_routing_density = 0.60;
    adv_node_cong_max_util = 0.60;
    congestion_driven_max_util = 0.60;
    cong_restruct_effort = 4;
    cong_restruct_iterations = 10;
    max_density = 0.75;
    two_pass = true;
    global_route_based = true;
    initial_place_effort = 2;
    final_place_effort = 2;
    enable_irap = true;
  }

let sample rng =
  {
    pin_density_aware = Rng.bool rng;
    target_routing_density = Rng.uniform rng;
    adv_node_cong_max_util = Rng.uniform rng;
    congestion_driven_max_util = Rng.uniform rng;
    cong_restruct_effort = Rng.int rng 5;
    cong_restruct_iterations = Rng.int rng 11;
    enhanced_low_power_effort = Rng.int rng 5;
    low_power_placement = Rng.bool rng;
    max_density = Rng.uniform rng;
    displacement_threshold = Rng.int rng 11;
    two_pass = Rng.bool rng;
    global_route_based = Rng.bool rng;
    enable_ccd = Rng.bool rng;
    initial_place_effort = Rng.int rng 3;
    final_place_effort = Rng.int rng 3;
    enable_irap = Rng.bool rng;
  }

let dimensions = 16

let to_vector p =
  let b v = if v then 1. else 0. in
  let e v range = float_of_int v /. float_of_int range in
  [|
    b p.pin_density_aware;
    p.target_routing_density;
    p.adv_node_cong_max_util;
    p.congestion_driven_max_util;
    e p.cong_restruct_effort 4;
    e p.cong_restruct_iterations 10;
    e p.enhanced_low_power_effort 4;
    b p.low_power_placement;
    p.max_density;
    e p.displacement_threshold 10;
    b p.two_pass;
    b p.global_route_based;
    b p.enable_ccd;
    e p.initial_place_effort 2;
    e p.final_place_effort 2;
    b p.enable_irap;
  |]

let of_vector v =
  if Array.length v <> dimensions then
    invalid_arg "Params.of_vector: expected 16 values";
  let clamp x = Float.max 0. (Float.min 1. x) in
  let b x = clamp x >= 0.5 in
  let e x range = int_of_float (Float.round (clamp x *. float_of_int range)) in
  {
    pin_density_aware = b v.(0);
    target_routing_density = clamp v.(1);
    adv_node_cong_max_util = clamp v.(2);
    congestion_driven_max_util = clamp v.(3);
    cong_restruct_effort = e v.(4) 4;
    cong_restruct_iterations = e v.(5) 10;
    enhanced_low_power_effort = e v.(6) 4;
    low_power_placement = b v.(7);
    max_density = clamp v.(8);
    displacement_threshold = e v.(9) 10;
    two_pass = b v.(10);
    global_route_based = b v.(11);
    enable_ccd = b v.(12);
    initial_place_effort = e v.(13) 2;
    final_place_effort = e v.(14) 2;
    enable_irap = b v.(15);
  }

let to_assoc p =
  let b v = if v then "true" else "false" in
  [
    ("coarse.pin_density_aware", b p.pin_density_aware);
    ("coarse.target_routing_density", Printf.sprintf "%.3f" p.target_routing_density);
    ("coarse.adv_node_cong_max_util", Printf.sprintf "%.3f" p.adv_node_cong_max_util);
    ("coarse.congestion_driven_max_util", Printf.sprintf "%.3f" p.congestion_driven_max_util);
    ("coarse.cong_restruct_effort", string_of_int p.cong_restruct_effort);
    ("coarse.cong_restruct_iterations", string_of_int p.cong_restruct_iterations);
    ("coarse.enhanced_low_power_effort", string_of_int p.enhanced_low_power_effort);
    ("coarse.low_power_placement", b p.low_power_placement);
    ("coarse.max_density", Printf.sprintf "%.3f" p.max_density);
    ("legalize.displacement_threshold", string_of_int p.displacement_threshold);
    ("initial_place.two_pass", b p.two_pass);
    ("initial_drc.global_route_based", b p.global_route_based);
    ("flow.enable_ccd", b p.enable_ccd);
    ("initial_place.effort", string_of_int p.initial_place_effort);
    ("final_place.effort", string_of_int p.final_place_effort);
    ("flow.enable_irap", b p.enable_irap);
  ]

let pp ppf p =
  Format.fprintf ppf "@[<v>";
  List.iter (fun (k, v) -> Format.fprintf ppf "%s = %s@," k v) (to_assoc p);
  Format.fprintf ppf "@]"
