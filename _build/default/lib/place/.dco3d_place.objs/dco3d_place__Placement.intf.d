lib/place/placement.mli: Dco3d_netlist Dco3d_tensor Floorplan
