lib/place/partition.mli: Dco3d_netlist
