lib/place/partition.ml: Array Dco3d_netlist Dco3d_tensor Fun List
