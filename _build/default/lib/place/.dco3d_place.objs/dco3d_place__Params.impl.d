lib/place/params.ml: Array Dco3d_tensor Float Format List Printf
