lib/place/params.mli: Dco3d_tensor Format
