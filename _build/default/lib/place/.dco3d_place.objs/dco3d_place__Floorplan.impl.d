lib/place/floorplan.ml: Dco3d_netlist Float
