lib/place/placer.mli: Dco3d_netlist Floorplan Params Placement
