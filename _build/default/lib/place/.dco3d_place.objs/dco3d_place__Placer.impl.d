lib/place/placer.ml: Array Dco3d_netlist Dco3d_tensor Float Floorplan Fun Hashtbl List Option Params Partition Placement Printf
