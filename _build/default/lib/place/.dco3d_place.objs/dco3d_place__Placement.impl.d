lib/place/placement.ml: Array Dco3d_netlist Dco3d_tensor Float Floorplan List
