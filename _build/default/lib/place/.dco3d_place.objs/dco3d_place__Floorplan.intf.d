lib/place/floorplan.mli: Dco3d_netlist
