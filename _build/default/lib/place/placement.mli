(** 3D placement state: per-cell [(x, y)] coordinates plus a tier
    (z) assignment, and fixed IO pad positions.

    Tier 0 is the bottom die (which also carries the IO pads), tier 1
    the top die.  Quality metrics — HPWL, cut size, density maps,
    displacement — live here because every stage of the flow reports
    them. *)

type t = {
  nl : Dco3d_netlist.Netlist.t;
  fp : Floorplan.t;
  x : float array;  (** cell-center x, um *)
  y : float array;  (** cell-center y, um *)
  tier : int array;  (** 0 = bottom die, 1 = top die *)
  io_x : float array;
  io_y : float array;
}

val create : Dco3d_netlist.Netlist.t -> Floorplan.t -> t
(** All cells at the die center on tier 0; IO pads at their periphery
    positions. *)

val copy : t -> t

val endpoint_position : t -> Dco3d_netlist.Netlist.endpoint -> float * float * int
(** [(x, y, tier)] of a pin; IO pads are on tier 0. *)

val net_bbox : t -> Dco3d_netlist.Netlist.net -> float * float * float * float
(** [(x_min, y_min, x_max, y_max)] over all pins of the net. *)

val net_is_3d : t -> Dco3d_netlist.Netlist.net -> bool
(** True when the net's pins span both tiers (a "3D net" in the paper's
    feature terminology). *)

val hpwl : t -> float
(** Total half-perimeter wirelength over signal nets, um. *)

val cut_size : t -> int
(** Number of signal nets spanning both tiers — the paper's
    cut(T, B). *)

val displacement_from : t -> t -> float
(** Mean Euclidean (x, y) displacement per cell between two placements
    of the same netlist. *)

val max_displacement_from : t -> t -> float

val density_map : t -> tier:int -> nx:int -> ny:int -> Dco3d_tensor.Tensor.t
(** Cell-area utilization per bin in [\[0, ..\]] (1.0 = bin full). *)

val tier_areas : t -> float * float
(** Total placed cell area per tier (bottom, top). *)

val tier_balance : t -> float
(** [abs (bottom - top) / total] area imbalance in [\[0, 1\]]. *)

val inside_die : t -> bool
(** Every cell center within the outline. *)

val clamp_to_die : t -> unit
(** Clamp all cell coordinates into the outline in place. *)
