(** Area-balanced min-cut tier bipartitioning.

    Pseudo-3D flows assign z-coordinates through tier assignment
    (section II-A); this module provides the initial assignment that
    the Pin-3D emulation uses and that DCO-3D's differentiable spreader
    then refines.  The heuristic is Fiduccia-Mattheyses-style
    positive-gain sweeps over the netlist hypergraph with an area
    balance constraint. *)

val bipartition :
  ?passes:int ->
  ?balance_tol:float ->
  seed:int ->
  Dco3d_netlist.Netlist.t ->
  int array
(** [bipartition ~seed nl] returns a tier (0/1) per cell.  Defaults:
    [passes = 8], [balance_tol = 0.03] (maximum area imbalance
    fraction). *)

val cut_of : Dco3d_netlist.Netlist.t -> int array -> int
(** Number of signal nets with pins on both tiers (IO pads count as
    tier 0). *)

val balance_of : Dco3d_netlist.Netlist.t -> int array -> float
(** Area imbalance fraction in [\[0, 1\]]. *)
