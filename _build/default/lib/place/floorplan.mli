(** Die geometry for a two-tier face-to-face 3D IC.

    Both dies share the same outline (they are hybrid-bonded face to
    face at a 1 um bump pitch, per the paper's section V).  IO pads sit
    on the bottom die's periphery; the GCell grid used by the router and
    the feature maps is anchored here. *)

type t = {
  width : float;  (** die width, um *)
  height : float;  (** die height, um *)
  gcell_nx : int;  (** GCell columns *)
  gcell_ny : int;  (** GCell rows *)
  n_rows : int;  (** standard-cell rows per die *)
}

val n_tiers : int
(** Always 2 (top die and bottom die). *)

val create :
  ?utilization:float -> ?gcell_nx:int -> ?gcell_ny:int -> Dco3d_netlist.Netlist.t -> t
(** Size a square outline so that total cell area fills [utilization]
    (default 0.55) of the two dies combined, with an integral number of
    standard-cell rows.  Default GCell grid: 48 x 48. *)

val gcell_w : t -> float
val gcell_h : t -> float

val gcell_of : t -> float -> float -> int * int
(** [gcell_of fp x y] is the (column, row) of the GCell containing the
    point, clamped to the grid. *)

val gcell_center : t -> int -> int -> float * float

val row_y : t -> int -> float
(** Center y of a standard-cell row. *)

val row_of : t -> float -> int
(** Nearest row index for a y coordinate (clamped). *)

val io_position : t -> n_ios:int -> int -> float * float
(** Deterministic pad position for IO [i]: pads are spread uniformly
    around the die periphery in id order. *)
