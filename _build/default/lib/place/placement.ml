module Nl = Dco3d_netlist.Netlist
module T = Dco3d_tensor.Tensor

type t = {
  nl : Nl.t;
  fp : Floorplan.t;
  x : float array;
  y : float array;
  tier : int array;
  io_x : float array;
  io_y : float array;
}

let create nl fp =
  let n = Nl.n_cells nl in
  let ni = Nl.n_ios nl in
  let io_x = Array.make ni 0. and io_y = Array.make ni 0. in
  for i = 0 to ni - 1 do
    let px, py = Floorplan.io_position fp ~n_ios:ni i in
    io_x.(i) <- px;
    io_y.(i) <- py
  done;
  {
    nl;
    fp;
    x = Array.make n (fp.Floorplan.width /. 2.);
    y = Array.make n (fp.Floorplan.height /. 2.);
    tier = Array.make n 0;
    io_x;
    io_y;
  }

let copy p =
  {
    p with
    x = Array.copy p.x;
    y = Array.copy p.y;
    tier = Array.copy p.tier;
  }

let endpoint_position p = function
  | Nl.Cell c -> (p.x.(c), p.y.(c), p.tier.(c))
  | Nl.Io i -> (p.io_x.(i), p.io_y.(i), 0)

let net_bbox p (net : Nl.net) =
  let x0 = ref infinity and y0 = ref infinity in
  let x1 = ref neg_infinity and y1 = ref neg_infinity in
  let visit e =
    let x, y, _ = endpoint_position p e in
    if x < !x0 then x0 := x;
    if x > !x1 then x1 := x;
    if y < !y0 then y0 := y;
    if y > !y1 then y1 := y
  in
  visit net.Nl.driver;
  Array.iter visit net.Nl.sinks;
  (!x0, !y0, !x1, !y1)

let net_is_3d p (net : Nl.net) =
  let _, _, t0 = endpoint_position p net.Nl.driver in
  Array.exists
    (fun e ->
      let _, _, t = endpoint_position p e in
      t <> t0)
    net.Nl.sinks

let hpwl p =
  List.fold_left
    (fun acc net ->
      let x0, y0, x1, y1 = net_bbox p net in
      acc +. (x1 -. x0) +. (y1 -. y0))
    0. (Nl.signal_nets p.nl)

let cut_size p =
  List.fold_left
    (fun acc net -> if net_is_3d p net then acc + 1 else acc)
    0 (Nl.signal_nets p.nl)

let displacement_from p q =
  if p.nl != q.nl && Nl.n_cells p.nl <> Nl.n_cells q.nl then
    invalid_arg "Placement.displacement_from: different netlists";
  let n = Array.length p.x in
  if n = 0 then 0.
  else begin
    let acc = ref 0. in
    for c = 0 to n - 1 do
      let dx = p.x.(c) -. q.x.(c) and dy = p.y.(c) -. q.y.(c) in
      acc := !acc +. sqrt ((dx *. dx) +. (dy *. dy))
    done;
    !acc /. float_of_int n
  end

let max_displacement_from p q =
  let n = Array.length p.x in
  let best = ref 0. in
  for c = 0 to n - 1 do
    let dx = p.x.(c) -. q.x.(c) and dy = p.y.(c) -. q.y.(c) in
    best := Float.max !best (sqrt ((dx *. dx) +. (dy *. dy)))
  done;
  !best

let density_map p ~tier ~nx ~ny =
  let m = T.zeros [| ny; nx |] in
  let bw = p.fp.Floorplan.width /. float_of_int nx in
  let bh = p.fp.Floorplan.height /. float_of_int ny in
  let bin_area = bw *. bh in
  let n = Array.length p.x in
  for c = 0 to n - 1 do
    if p.tier.(c) = tier then begin
      (* spread the cell's area over the bins its footprint overlaps *)
      let m_ = p.nl.Nl.masters.(c) in
      let w = m_.Dco3d_netlist.Cell_lib.width in
      let h = m_.Dco3d_netlist.Cell_lib.height in
      let x0 = p.x.(c) -. (w /. 2.) and x1 = p.x.(c) +. (w /. 2.) in
      let y0 = p.y.(c) -. (h /. 2.) and y1 = p.y.(c) +. (h /. 2.) in
      let gx0 = max 0 (int_of_float (x0 /. bw)) in
      let gx1 = min (nx - 1) (int_of_float (x1 /. bw)) in
      let gy0 = max 0 (int_of_float (y0 /. bh)) in
      let gy1 = min (ny - 1) (int_of_float (y1 /. bh)) in
      for gy = gy0 to gy1 do
        for gx = gx0 to gx1 do
          let ox =
            Float.max 0.
              (Float.min x1 (float_of_int (gx + 1) *. bw)
              -. Float.max x0 (float_of_int gx *. bw))
          in
          let oy =
            Float.max 0.
              (Float.min y1 (float_of_int (gy + 1) *. bh)
              -. Float.max y0 (float_of_int gy *. bh))
          in
          T.set2 m gy gx (T.get2 m gy gx +. (ox *. oy /. bin_area))
        done
      done
    end
  done;
  m

let tier_areas p =
  let bot = ref 0. and top = ref 0. in
  let n = Array.length p.x in
  for c = 0 to n - 1 do
    let a = Nl.cell_area p.nl c in
    if p.tier.(c) = 0 then bot := !bot +. a else top := !top +. a
  done;
  (!bot, !top)

let tier_balance p =
  let bot, top = tier_areas p in
  let total = bot +. top in
  if total <= 0. then 0. else abs_float (bot -. top) /. total

let inside_die p =
  let ok = ref true in
  let n = Array.length p.x in
  for c = 0 to n - 1 do
    if
      p.x.(c) < 0.
      || p.x.(c) > p.fp.Floorplan.width
      || p.y.(c) < 0.
      || p.y.(c) > p.fp.Floorplan.height
    then ok := false
  done;
  !ok

let clamp_to_die p =
  let n = Array.length p.x in
  for c = 0 to n - 1 do
    (* keep the whole footprint inside the outline, not just the
       center — macros are wide enough for the difference to matter *)
    let m = p.nl.Nl.masters.(c) in
    let hw = Float.min (m.Dco3d_netlist.Cell_lib.width /. 2.) (p.fp.Floorplan.width /. 2.) in
    let hh = Float.min (m.Dco3d_netlist.Cell_lib.height /. 2.) (p.fp.Floorplan.height /. 2.) in
    p.x.(c) <- Float.max hw (Float.min (p.fp.Floorplan.width -. hw) p.x.(c));
    p.y.(c) <- Float.max hh (Float.min (p.fp.Floorplan.height -. hh) p.y.(c))
  done
