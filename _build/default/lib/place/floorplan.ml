module Nl = Dco3d_netlist.Netlist
module Cl = Dco3d_netlist.Cell_lib

type t = {
  width : float;
  height : float;
  gcell_nx : int;
  gcell_ny : int;
  n_rows : int;
}

let n_tiers = 2

let create ?(utilization = 0.55) ?(gcell_nx = 48) ?(gcell_ny = 48) nl =
  if utilization <= 0. || utilization > 1. then
    invalid_arg "Floorplan.create: utilization must be in (0, 1]";
  let area = Nl.total_cell_area nl in
  (* two dies share the outline *)
  let die_area = area /. (2. *. utilization) in
  let side = Float.max (4. *. Cl.row_height) (sqrt die_area) in
  (* snap height to an integral number of rows *)
  let n_rows = max 4 (int_of_float (Float.round (side /. Cl.row_height))) in
  let height = float_of_int n_rows *. Cl.row_height in
  let width = die_area /. height in
  { width; height; gcell_nx; gcell_ny; n_rows }

let gcell_w fp = fp.width /. float_of_int fp.gcell_nx
let gcell_h fp = fp.height /. float_of_int fp.gcell_ny

let clamp lo hi v = max lo (min hi v)

let gcell_of fp x y =
  let gx = int_of_float (x /. gcell_w fp) in
  let gy = int_of_float (y /. gcell_h fp) in
  (clamp 0 (fp.gcell_nx - 1) gx, clamp 0 (fp.gcell_ny - 1) gy)

let gcell_center fp gx gy =
  ((float_of_int gx +. 0.5) *. gcell_w fp, (float_of_int gy +. 0.5) *. gcell_h fp)

let row_y _fp r = (float_of_int r +. 0.5) *. Cl.row_height

let row_of fp y =
  clamp 0 (fp.n_rows - 1) (int_of_float (Float.round ((y /. Cl.row_height) -. 0.5)))

let io_position fp ~n_ios i =
  if n_ios <= 0 then invalid_arg "Floorplan.io_position: no IOs";
  let perimeter = 2. *. (fp.width +. fp.height) in
  let s = float_of_int (i mod n_ios) /. float_of_int n_ios *. perimeter in
  if s < fp.width then (s, 0.)
  else if s < fp.width +. fp.height then (fp.width, s -. fp.width)
  else if s < (2. *. fp.width) +. fp.height then
    ((2. *. fp.width) +. fp.height -. s, fp.height)
  else (0., perimeter -. s)
