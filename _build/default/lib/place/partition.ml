module Nl = Dco3d_netlist.Netlist
module Rng = Dco3d_tensor.Rng

let side_of tier = function
  | Nl.Cell c -> tier.(c)
  | Nl.Io _ -> 0 (* pads live on the bottom die *)

let cut_of nl tier =
  List.fold_left
    (fun acc (net : Nl.net) ->
      let s0 = side_of tier net.Nl.driver in
      if Array.exists (fun e -> side_of tier e <> s0) net.Nl.sinks then acc + 1
      else acc)
    0 (Nl.signal_nets nl)

let balance_of nl tier =
  let a = [| 0.; 0. |] in
  for c = 0 to Nl.n_cells nl - 1 do
    a.(tier.(c)) <- a.(tier.(c)) +. Nl.cell_area nl c
  done;
  let total = a.(0) +. a.(1) in
  if total <= 0. then 0. else abs_float (a.(0) -. a.(1)) /. total

let bipartition ?(passes = 8) ?(balance_tol = 0.03) ~seed nl =
  let n = Nl.n_cells nl in
  let rng = Rng.create seed in
  let tier = Array.make n 0 in
  let area = Array.init n (Nl.cell_area nl) in
  let total_area = Array.fold_left ( +. ) 0. area in
  (* Initial assignment: id-interleaved halves balanced by area.  The
     generators wire locally in id space, so contiguous id ranges are
     also logically clustered — splitting at the running-area midpoint
     is a strong start. *)
  let side_area = [| 0.; 0. |] in
  let running = ref 0. in
  for c = 0 to n - 1 do
    let s = if !running < total_area /. 2. then 0 else 1 in
    tier.(c) <- s;
    running := !running +. area.(c);
    side_area.(s) <- side_area.(s) +. area.(c)
  done;
  (* signal nets only, with per-net side pin counts *)
  let nets = Array.of_list (Nl.signal_nets nl) in
  let counts = Array.map (fun _ -> [| 0; 0 |]) nets in
  (* per-cell incident signal-net indices *)
  let incident = Array.make n [] in
  Array.iteri
    (fun k (net : Nl.net) ->
      let bump e =
        counts.(k).(side_of tier e) <- counts.(k).(side_of tier e) + 1;
        match e with
        | Nl.Cell c -> incident.(c) <- k :: incident.(c)
        | Nl.Io _ -> ()
      in
      bump net.Nl.driver;
      Array.iter bump net.Nl.sinks)
    nets;
  let incident = Array.map Array.of_list incident in
  let gain c =
    let s = tier.(c) in
    let o = 1 - s in
    Array.fold_left
      (fun g k ->
        let cs = counts.(k).(s) and co = counts.(k).(o) in
        if cs = 1 && co > 0 then g + 1 else if co = 0 then g - 1 else g)
      0 incident.(c)
  in
  let imbalance_after c =
    let s = tier.(c) in
    let a0 = side_area.(0) and a1 = side_area.(1) in
    let a0', a1' =
      if s = 0 then (a0 -. area.(c), a1 +. area.(c))
      else (a0 +. area.(c), a1 -. area.(c))
    in
    abs_float (a0' -. a1') /. total_area
  in
  let move c =
    let s = tier.(c) in
    let o = 1 - s in
    Array.iter
      (fun k ->
        counts.(k).(s) <- counts.(k).(s) - 1;
        counts.(k).(o) <- counts.(k).(o) + 1)
      incident.(c);
    side_area.(s) <- side_area.(s) -. area.(c);
    side_area.(o) <- side_area.(o) +. area.(c);
    tier.(c) <- o
  in
  let order = Array.init n Fun.id in
  let continue_ = ref true in
  let pass = ref 0 in
  while !continue_ && !pass < passes do
    incr pass;
    Rng.shuffle rng order;
    let moved = ref 0 in
    Array.iter
      (fun c ->
        let g = gain c in
        let imb = imbalance_after c in
        let imb_now = abs_float (side_area.(0) -. side_area.(1)) /. total_area in
        if (g > 0 && imb <= balance_tol) || (g >= 0 && imb < imb_now -. 1e-12)
        then begin
          move c;
          incr moved
        end)
      order;
    if !moved = 0 then continue_ := false
  done;
  tier
