(** The 16 placement parameters of Table I.

    These are the ICC2 knobs the paper samples to build its training
    dataset (section III-A) and the search space of the Pin-3D+BO
    baseline.  Our placer interprets each knob with the same intent as
    the tool: density targets bound spreading, congestion knobs trade
    wirelength for congestion relief, efforts buy iterations. *)

type t = {
  pin_density_aware : bool;  (** coarse.pin_density_aware *)
  target_routing_density : float;  (** coarse.target_routing_density, [0,1] *)
  adv_node_cong_max_util : float;  (** coarse.adv_node_cong_max_util, [0,1] *)
  congestion_driven_max_util : float;  (** coarse.congestion_driven_max_util *)
  cong_restruct_effort : int;  (** coarse.cong_restruct_effort, 0-4 *)
  cong_restruct_iterations : int;  (** coarse.cong_restruct_iterations, 0-10 *)
  enhanced_low_power_effort : int;  (** coarse.enhanced_low_power_effort, 0-4 *)
  low_power_placement : bool;  (** coarse.low_power_placement *)
  max_density : float;  (** coarse.max_density, [0,1] *)
  displacement_threshold : int;  (** legalize.displacement_threshold, 0-10 *)
  two_pass : bool;  (** initial_place.two_pass *)
  global_route_based : bool;  (** initial_drc.global_route_based *)
  enable_ccd : bool;  (** flow.enable_ccd *)
  initial_place_effort : int;  (** initial_place.effort, 0-2 *)
  final_place_effort : int;  (** final_place.effort, 0-2 *)
  enable_irap : bool;  (** flow.enable_irap *)
}

val default : t
(** The Pin-3D baseline settings. *)

val congestion_focused : t
(** The "Pin-3D + Cong." variant: ICC2 congestion-driven placement at
    the highest effort (section V-B). *)

val sample : Dco3d_tensor.Rng.t -> t
(** Uniform sample over Table I's ranges — dataset construction. *)

val dimensions : int
(** Number of knobs (16) — the BO search-space dimensionality. *)

val to_vector : t -> float array
(** Encode into [\[0,1\]^16] for the Bayesian optimizer. *)

val of_vector : float array -> t
(** Decode; values are clamped into range.
    @raise Invalid_argument on wrong length. *)

val to_assoc : t -> (string * string) list
(** [(icc2-knob-name, value)] pairs, Table I naming — used by reports
    and the TCL exporter. *)

val pp : Format.formatter -> t -> unit
