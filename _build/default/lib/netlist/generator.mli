(** Synthetic benchmark generators.

    The paper evaluates on six industrial RTL designs (DMA, AES, ECG,
    LDPC, VGA, RocketCore) synthesized in a commercial 3nm node — none
    of which are redistributable.  These generators produce seeded
    random netlists that match each benchmark's {e published} size
    (#cells / #nets / #IO from Table III) and a per-design topology
    profile (logic depth, register fraction, high-fanout nets, macros)
    chosen to reflect the design's character: LDPC is shallow and
    IO-heavy with wide XOR fan-in, Rocket is deep control logic with
    RAM macros, AES is wide datapath logic, etc.

    Every netlist is a valid DAG ({!Netlist.validate} passes, every
    cell output drives at least one sink) and is a pure function of
    [(profile, scale, seed)]. *)

type profile = {
  name : string;
  n_cells : int;  (** standard cells, flip-flops included *)
  n_ios : int;
  seq_fraction : float;  (** flip-flop share of [n_cells] *)
  depth : int;  (** combinational levels between register stages *)
  hub_fraction : float;  (** share of drivers that become high-fanout hubs *)
  locality : float;  (** 0 = wiring is global, 1 = strongly local in id space *)
  macros : (string * float * float) list;  (** (name, width um, height um) *)
}

val profiles : profile list
(** The six benchmarks of Table III, published sizes. *)

val profile : string -> profile
(** Case-insensitive lookup ("aes", "Rocket", ...).
    @raise Not_found for unknown designs. *)

val generate : ?scale:float -> seed:int -> profile -> Netlist.t
(** Build a netlist.  [scale] multiplies cell and IO counts (default
    [1.0], the published sizes; tests use small fractions).  The same
    [(profile, scale, seed)] triple always yields the same netlist. *)
