type cell_class =
  | Inv
  | Buf
  | Nand2
  | Nor2
  | And2
  | Or2
  | Xor2
  | Aoi21
  | Oai21
  | Mux2
  | Dff
  | Clkbuf
  | Macro

type master = {
  name : string;
  klass : cell_class;
  drive : int;
  width : float;
  height : float;
  n_inputs : int;
  input_cap : float;
  drive_res : float;
  intrinsic_delay : float;
  leakage : float;
  internal_energy : float;
  is_seq : bool;
}

let row_height = 0.15

let class_name = function
  | Inv -> "INV"
  | Buf -> "BUF"
  | Nand2 -> "NAND2"
  | Nor2 -> "NOR2"
  | And2 -> "AND2"
  | Or2 -> "OR2"
  | Xor2 -> "XOR2"
  | Aoi21 -> "AOI21"
  | Oai21 -> "OAI21"
  | Mux2 -> "MUX2"
  | Dff -> "DFF"
  | Clkbuf -> "CLKBUF"
  | Macro -> "MACRO"

(* Per-class base characteristics at drive X1.  Larger drives scale
   width / input_cap / leakage / internal energy up and drive_res down,
   the standard cell-library trade-off. *)
type base = {
  b_class : cell_class;
  b_width : float;
  b_inputs : int;
  b_cap : float;
  b_res : float;
  b_delay : float;
  b_leak : float;
  b_energy : float;
  b_seq : bool;
}

let bases =
  [|
    { b_class = Inv; b_width = 0.054; b_inputs = 1; b_cap = 0.6; b_res = 6.0;
      b_delay = 4.0; b_leak = 1.2; b_energy = 0.35; b_seq = false };
    { b_class = Buf; b_width = 0.072; b_inputs = 1; b_cap = 0.7; b_res = 5.5;
      b_delay = 7.0; b_leak = 1.6; b_energy = 0.5; b_seq = false };
    { b_class = Nand2; b_width = 0.072; b_inputs = 2; b_cap = 0.7; b_res = 7.0;
      b_delay = 5.5; b_leak = 1.8; b_energy = 0.45; b_seq = false };
    { b_class = Nor2; b_width = 0.072; b_inputs = 2; b_cap = 0.7; b_res = 8.0;
      b_delay = 6.0; b_leak = 1.8; b_energy = 0.45; b_seq = false };
    { b_class = And2; b_width = 0.090; b_inputs = 2; b_cap = 0.8; b_res = 7.0;
      b_delay = 8.5; b_leak = 2.2; b_energy = 0.6; b_seq = false };
    { b_class = Or2; b_width = 0.090; b_inputs = 2; b_cap = 0.8; b_res = 7.5;
      b_delay = 9.0; b_leak = 2.2; b_energy = 0.6; b_seq = false };
    { b_class = Xor2; b_width = 0.126; b_inputs = 2; b_cap = 1.1; b_res = 8.5;
      b_delay = 11.0; b_leak = 3.0; b_energy = 0.9; b_seq = false };
    { b_class = Aoi21; b_width = 0.108; b_inputs = 3; b_cap = 0.9; b_res = 8.5;
      b_delay = 8.0; b_leak = 2.6; b_energy = 0.7; b_seq = false };
    { b_class = Oai21; b_width = 0.108; b_inputs = 3; b_cap = 0.9; b_res = 8.5;
      b_delay = 8.0; b_leak = 2.6; b_energy = 0.7; b_seq = false };
    { b_class = Mux2; b_width = 0.126; b_inputs = 3; b_cap = 1.0; b_res = 8.0;
      b_delay = 10.0; b_leak = 2.8; b_energy = 0.8; b_seq = false };
    { b_class = Dff; b_width = 0.270; b_inputs = 1; b_cap = 0.9; b_res = 7.0;
      b_delay = 22.0; b_leak = 6.0; b_energy = 1.8; b_seq = true };
    { b_class = Clkbuf; b_width = 0.108; b_inputs = 1; b_cap = 0.9; b_res = 4.0;
      b_delay = 8.0; b_leak = 2.4; b_energy = 0.7; b_seq = false };
  |]

let drives = [| 1; 2; 4; 8 |]

let make_master b drive =
  let d = float_of_int drive in
  {
    name = Printf.sprintf "%s_X%d" (class_name b.b_class) drive;
    klass = b.b_class;
    drive;
    width = b.b_width *. (1. +. (0.65 *. (d -. 1.)));
    height = row_height;
    n_inputs = b.b_inputs;
    input_cap = b.b_cap *. (1. +. (0.55 *. (d -. 1.)));
    drive_res = b.b_res /. d;
    intrinsic_delay = b.b_delay *. (1. +. (0.05 *. (d -. 1.)));
    leakage = b.b_leak *. d;
    internal_energy = b.b_energy *. (1. +. (0.5 *. (d -. 1.)));
    is_seq = b.b_seq;
  }

let all =
  Array.concat
    (Array.to_list
       (Array.map (fun b -> Array.map (make_master b) drives) bases))

let table = Hashtbl.create 64
let () = Array.iter (fun m -> Hashtbl.replace table m.name m) all

let find name =
  match Hashtbl.find_opt table name with
  | Some m -> m
  | None -> raise Not_found

let combinational = [ Inv; Buf; Nand2; Nor2; And2; Or2; Xor2; Aoi21; Oai21; Mux2 ]

let master_of klass ~drive = find (Printf.sprintf "%s_X%d" (class_name klass) drive)

let next_drive m delta =
  let rec index i =
    if i >= Array.length drives then None
    else if drives.(i) = m.drive then Some i
    else index (i + 1)
  in
  match index 0 with
  | None -> None
  | Some i ->
      let j = i + delta in
      if j < 0 || j >= Array.length drives then None
      else Some (master_of m.klass ~drive:drives.(j))

let upsize m = if m.klass = Macro then None else next_drive m 1
let downsize m = if m.klass = Macro then None else next_drive m (-1)

let macro_master ~name ~width ~height =
  {
    name;
    klass = Macro;
    drive = 1;
    width;
    height;
    n_inputs = 0;
    input_cap = 3.0;
    drive_res = 2.0;
    intrinsic_delay = 60.0;
    leakage = 500.0;
    internal_energy = 25.0;
    is_seq = false;
  }

let area m = m.width *. m.height
