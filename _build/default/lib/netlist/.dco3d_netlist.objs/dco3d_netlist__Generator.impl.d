lib/netlist/generator.ml: Array Cell_lib Dco3d_tensor Float Fun Hashtbl List Netlist Printf Queue String
