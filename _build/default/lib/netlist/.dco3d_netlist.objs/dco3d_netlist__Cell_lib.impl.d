lib/netlist/cell_lib.ml: Array Hashtbl Printf
