lib/netlist/netlist.ml: Array Cell_lib Hashtbl List Option Printf Queue
