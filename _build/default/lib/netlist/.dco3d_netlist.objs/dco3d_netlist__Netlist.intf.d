lib/netlist/netlist.mli: Cell_lib
