lib/netlist/netlist_io.ml: Array Buffer Cell_lib Fun List Netlist Printf String
