lib/netlist/netlist_io.mli: Netlist
