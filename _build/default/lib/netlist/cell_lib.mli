(** A small standard-cell library standing in for the paper's commercial
    3nm PDK.

    Values are invented but mutually consistent (a linear delay model
    [d = intrinsic + drive_res * load_cap] in picoseconds with
    capacitance in femtofarads and resistance in kilo-ohms, energies in
    femtojoules, leakage in nanowatts, geometry in micrometres).  The
    experiments only need the couplings the real PDK provides: bigger
    drives are faster into large loads but cost area, input capacitance,
    and leakage — which is what makes the signoff optimizer's sizing
    moves meaningful. *)

type cell_class =
  | Inv
  | Buf
  | Nand2
  | Nor2
  | And2
  | Or2
  | Xor2
  | Aoi21
  | Oai21
  | Mux2
  | Dff
  | Clkbuf
  | Macro

type master = {
  name : string;  (** e.g. ["NAND2_X2"] *)
  klass : cell_class;
  drive : int;  (** drive strength: 1, 2, 4 or 8 *)
  width : float;  (** um *)
  height : float;  (** um; one row height for standard cells *)
  n_inputs : int;  (** signal inputs (excluding clock) *)
  input_cap : float;  (** fF per input pin *)
  drive_res : float;  (** kOhm output resistance *)
  intrinsic_delay : float;  (** ps *)
  leakage : float;  (** nW *)
  internal_energy : float;  (** fJ per output toggle *)
  is_seq : bool;  (** true for flip-flops *)
}

val row_height : float
(** Standard-cell row height (um). *)

val all : master array
(** Every master in the library, macros excluded. *)

val find : string -> master
(** Lookup by name. @raise Not_found for unknown masters. *)

val combinational : cell_class list
(** The classes eligible for random combinational logic. *)

val master_of : cell_class -> drive:int -> master
(** @raise Not_found if the (class, drive) pair is not in the library. *)

val upsize : master -> master option
(** Next drive strength of the same class, if any — the signoff
    optimizer's repair move. *)

val downsize : master -> master option
(** Previous drive strength — the power-recovery move. *)

val macro_master : name:string -> width:float -> height:float -> master
(** A hard macro (RAM block etc.): placed but not sized or timed as a
    gate. *)

val area : master -> float
(** [width * height] in um^2. *)
