let magic = "dco3d-netlist-v1"

let endpoint_to_string = function
  | Netlist.Cell c -> Printf.sprintf "c%d" c
  | Netlist.Io i -> Printf.sprintf "p%d" i

let to_string nl =
  let buf = Buffer.create (1 lsl 16) in
  Buffer.add_string buf magic;
  Buffer.add_char buf '\n';
  Printf.bprintf buf "design %s\n" nl.Netlist.design;
  Array.iteri
    (fun c (m : Cell_lib.master) ->
      if m.Cell_lib.klass = Cell_lib.Macro then
        Printf.bprintf buf "macro %d %s %g %g\n" c m.Cell_lib.name
          m.Cell_lib.width m.Cell_lib.height
      else Printf.bprintf buf "cell %d %s\n" c m.Cell_lib.name)
    nl.Netlist.masters;
  Array.iter
    (fun (io : Netlist.io) ->
      Printf.bprintf buf "io %d %s %s\n" io.Netlist.io_id
        (match io.Netlist.dir with Netlist.In -> "in" | Netlist.Out -> "out")
        io.Netlist.io_name)
    nl.Netlist.ios;
  Array.iter
    (fun (net : Netlist.net) ->
      Printf.bprintf buf "net %d %s %s %s :" net.Netlist.net_id
        net.Netlist.net_name
        (if net.Netlist.is_clock then "clock" else "signal")
        (endpoint_to_string net.Netlist.driver);
      Array.iter
        (fun s -> Printf.bprintf buf " %s" (endpoint_to_string s))
        net.Netlist.sinks;
      Buffer.add_char buf '\n')
    nl.Netlist.nets;
  Buffer.add_string buf "end\n";
  Buffer.contents buf

let write nl path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string nl))

exception Parse_error of int * string

let parse_endpoint lineno s =
  if String.length s < 2 then raise (Parse_error (lineno, "bad endpoint " ^ s));
  let num () =
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some n -> n
    | None -> raise (Parse_error (lineno, "bad endpoint " ^ s))
  in
  match s.[0] with
  | 'c' -> Netlist.Cell (num ())
  | 'p' -> Netlist.Io (num ())
  | _ -> raise (Parse_error (lineno, "bad endpoint " ^ s))

let of_string text =
  let lines = String.split_on_char '\n' text in
  let design = ref "" in
  let cells = ref [] (* (id, master) in reverse *) in
  let ios = ref [] in
  let nets = ref [] in
  let ended = ref false in
  try
    List.iteri
      (fun i line ->
        let lineno = i + 1 in
        let line = String.trim line in
        if line = "" || !ended then ()
        else if lineno = 1 then begin
          if line <> magic then raise (Parse_error (1, "bad magic"))
        end
        else
          match String.split_on_char ' ' line with
          | [ "design"; name ] -> design := name
          | [ "cell"; id; master ] ->
              let id =
                match int_of_string_opt id with
                | Some v -> v
                | None -> raise (Parse_error (lineno, "bad cell id"))
              in
              let m =
                try Cell_lib.find master
                with Not_found ->
                  raise (Parse_error (lineno, "unknown master " ^ master))
              in
              cells := (id, m) :: !cells
          | [ "macro"; id; name; w; h ] ->
              let id =
                match int_of_string_opt id with
                | Some v -> v
                | None -> raise (Parse_error (lineno, "bad macro id"))
              in
              let fl s =
                match float_of_string_opt s with
                | Some v -> v
                | None -> raise (Parse_error (lineno, "bad macro size"))
              in
              cells :=
                (id, Cell_lib.macro_master ~name ~width:(fl w) ~height:(fl h))
                :: !cells
          | [ "io"; id; dir; name ] ->
              let id =
                match int_of_string_opt id with
                | Some v -> v
                | None -> raise (Parse_error (lineno, "bad io id"))
              in
              let dir =
                match dir with
                | "in" -> Netlist.In
                | "out" -> Netlist.Out
                | _ -> raise (Parse_error (lineno, "bad io dir"))
              in
              ios := { Netlist.io_id = id; io_name = name; dir } :: !ios
          | "net" :: id :: name :: kind :: driver :: ":" :: sinks ->
              let id =
                match int_of_string_opt id with
                | Some v -> v
                | None -> raise (Parse_error (lineno, "bad net id"))
              in
              let is_clock =
                match kind with
                | "clock" -> true
                | "signal" -> false
                | _ -> raise (Parse_error (lineno, "bad net kind"))
              in
              nets :=
                {
                  Netlist.net_id = id;
                  net_name = name;
                  driver = parse_endpoint lineno driver;
                  sinks =
                    Array.of_list (List.map (parse_endpoint lineno) sinks);
                  is_clock;
                }
                :: !nets
          | [ "end" ] -> ended := true
          | _ -> raise (Parse_error (lineno, "unrecognized line: " ^ line)))
      lines;
    if not !ended then raise (Parse_error (0, "missing 'end'"));
    let cells = List.rev !cells in
    let n_cells = List.length cells in
    let masters = Array.make (max 1 n_cells) (Cell_lib.find "INV_X1") in
    List.iter
      (fun (id, m) ->
        if id < 0 || id >= n_cells then
          raise (Parse_error (0, "cell ids must be dense from 0"));
        masters.(id) <- m)
      cells;
    let masters = if n_cells = 0 then [||] else masters in
    let ios =
      List.rev !ios |> Array.of_list
      |> fun a ->
      Array.sort (fun x y -> compare x.Netlist.io_id y.Netlist.io_id) a;
      a
    in
    let nets =
      List.rev !nets |> Array.of_list
      |> fun a ->
      Array.sort (fun x y -> compare x.Netlist.net_id y.Netlist.net_id) a;
      a
    in
    (* reconstruct fanin / fanout *)
    let fanin = Array.make n_cells [] in
    let fanout = Array.make n_cells (-1) in
    Array.iter
      (fun (net : Netlist.net) ->
        (match net.Netlist.driver with
        | Netlist.Cell c ->
            if c >= n_cells then raise (Parse_error (0, "driver out of range"));
            fanout.(c) <- net.Netlist.net_id
        | Netlist.Io _ -> ());
        Array.iter
          (fun s ->
            match s with
            | Netlist.Cell c ->
                if c >= n_cells then raise (Parse_error (0, "sink out of range"));
                fanin.(c) <- net.Netlist.net_id :: fanin.(c)
            | Netlist.Io _ -> ())
          net.Netlist.sinks)
      nets;
    let nl =
      {
        Netlist.design = !design;
        masters;
        nets;
        ios;
        cell_fanin = Array.map (fun l -> Array.of_list (List.rev l)) fanin;
        cell_fanout = fanout;
      }
    in
    (match Netlist.validate nl with
    | Ok () -> Ok nl
    | Error e -> Error ("invalid netlist: " ^ e))
  with Parse_error (lineno, msg) ->
    Error (Printf.sprintf "line %d: %s" lineno msg)

let read path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      of_string (really_input_string ic n))
