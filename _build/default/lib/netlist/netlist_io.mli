(** Plain-text netlist interchange format.

    A minimal structural format (one element per line) so generated
    benchmarks can be dumped, inspected, diffed, and reloaded by the
    CLI without rerunning a generator:

    {v
    dco3d-netlist-v1
    design AES
    cell 0 NAND2_X1
    macro 114000 RAM0 8.0 6.0
    io 0 in clk
    net 0 n0 signal c0 : c4 c9 p391
    net 1 clk clock p0 : c113999
    end
    v}

    Endpoints are [c<cell-id>] or [p<io-id>].  Fan-in/fan-out tables are
    reconstructed from the net list on load, so the format is
    self-contained. *)

val to_string : Netlist.t -> string
val write : Netlist.t -> string -> unit

val of_string : string -> (Netlist.t, string) result
(** Parse; returns [Error msg] with a line number on malformed input. *)

val read : string -> (Netlist.t, string) result
