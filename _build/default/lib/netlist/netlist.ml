type endpoint = Cell of int | Io of int

type net = {
  net_id : int;
  net_name : string;
  driver : endpoint;
  sinks : endpoint array;
  is_clock : bool;
}

type io_dir = In | Out

type io = { io_id : int; io_name : string; dir : io_dir }

type t = {
  design : string;
  masters : Cell_lib.master array;
  nets : net array;
  ios : io array;
  cell_fanin : int array array;
  cell_fanout : int array;
}

let n_cells nl = Array.length nl.masters
let n_nets nl = Array.length nl.nets
let n_ios nl = Array.length nl.ios

let degree net = 1 + Array.length net.sinks

let n_pins nl = Array.fold_left (fun acc net -> acc + degree net) 0 nl.nets

let cell_area nl c = Cell_lib.area nl.masters.(c)

let total_cell_area nl =
  let acc = ref 0. in
  for c = 0 to n_cells nl - 1 do
    acc := !acc +. cell_area nl c
  done;
  !acc

let signal_nets nl =
  Array.to_list nl.nets |> List.filter (fun net -> not net.is_clock)

let clock_net nl = Array.find_opt (fun net -> net.is_clock) nl.nets

let is_macro nl c = nl.masters.(c).Cell_lib.klass = Cell_lib.Macro

let fanout_histogram nl =
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun net ->
      if not net.is_clock then begin
        let d = degree net in
        Hashtbl.replace tbl d (1 + Option.value ~default:0 (Hashtbl.find_opt tbl d))
      end)
    nl.nets;
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let copy nl =
  {
    nl with
    masters = Array.copy nl.masters;
    nets = Array.copy nl.nets;
    ios = Array.copy nl.ios;
    cell_fanin = Array.map Array.copy nl.cell_fanin;
    cell_fanout = Array.copy nl.cell_fanout;
  }

let validate nl =
  let nc = n_cells nl and nn = n_nets nl and ni = n_ios nl in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let check_endpoint e =
    match e with
    | Cell c -> c >= 0 && c < nc
    | Io i -> i >= 0 && i < ni
  in
  let exception Bad of string in
  try
    if Array.length nl.cell_fanin <> nc then
      raise (Bad "cell_fanin length mismatch");
    if Array.length nl.cell_fanout <> nc then
      raise (Bad "cell_fanout length mismatch");
    Array.iteri
      (fun i net ->
        if net.net_id <> i then raise (Bad (Printf.sprintf "net %d id mismatch" i));
        if not (check_endpoint net.driver) then
          raise (Bad (Printf.sprintf "net %d driver out of range" i));
        Array.iter
          (fun s ->
            if not (check_endpoint s) then
              raise (Bad (Printf.sprintf "net %d sink out of range" i)))
          net.sinks;
        (match net.driver with
        | Cell c ->
            if nl.cell_fanout.(c) <> i then
              raise
                (Bad
                   (Printf.sprintf "net %d driven by cell %d but fanout disagrees"
                      i c))
        | Io io ->
            if nl.ios.(io).dir <> In then
              raise (Bad (Printf.sprintf "net %d driven by output pad %d" i io)));
        Array.iter
          (fun s ->
            match s with
            | Io io when nl.ios.(io).dir <> Out ->
                raise (Bad (Printf.sprintf "net %d sinks into input pad %d" i io))
            | _ -> ())
          net.sinks)
      nl.nets;
    Array.iteri
      (fun c fanin ->
        let m = nl.masters.(c) in
        let limit =
          if m.Cell_lib.is_seq then m.Cell_lib.n_inputs + 1 (* + clock *)
          else m.Cell_lib.n_inputs
        in
        if m.Cell_lib.klass <> Cell_lib.Macro && Array.length fanin > limit then
          raise
            (Bad
               (Printf.sprintf "cell %d (%s) has %d fanin nets > %d inputs" c
                  m.Cell_lib.name (Array.length fanin) limit));
        Array.iter
          (fun nid ->
            if nid < 0 || nid >= nn then
              raise (Bad (Printf.sprintf "cell %d fanin net out of range" c)))
          fanin)
      nl.cell_fanin;
    Ok ()
  with Bad msg -> err "%s" msg

(* Combinational levelization: Kahn's algorithm over cell->cell arcs
   through non-clock nets, where sequential cells cut the arcs (their
   outputs are sources, their D-inputs are sinks). *)
let levelize nl =
  let nc = n_cells nl in
  let level = Array.make nc 0 in
  let indeg = Array.make nc 0 in
  let is_source c = nl.masters.(c).Cell_lib.is_seq || is_macro nl c in
  (* count combinational fanin arcs of each cell *)
  Array.iteri
    (fun c fanin ->
      if not (is_source c) then
        Array.iter
          (fun nid ->
            let net = nl.nets.(nid) in
            if not net.is_clock then
              match net.driver with
              | Cell d when not (is_source d) -> ignore d; indeg.(c) <- indeg.(c) + 1
              | Cell _ | Io _ -> ())
          fanin)
    nl.cell_fanin;
  let queue = Queue.create () in
  for c = 0 to nc - 1 do
    if indeg.(c) = 0 then Queue.add c queue
  done;
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let c = Queue.pop queue in
    incr seen;
    let out = nl.cell_fanout.(c) in
    if out >= 0 && not (is_source c) then begin
      let net = nl.nets.(out) in
      if not net.is_clock then
        Array.iter
          (fun s ->
            match s with
            | Cell k when not (is_source k) ->
                level.(k) <- max level.(k) (level.(c) + 1);
                indeg.(k) <- indeg.(k) - 1;
                if indeg.(k) = 0 then Queue.add k queue
            | Cell _ | Io _ -> ())
          net.sinks
    end
  done;
  if !seen = nc then Some level else None

let logic_depth nl =
  match levelize nl with
  | Some levels -> Array.fold_left max 0 levels
  | None -> invalid_arg "Netlist.logic_depth: combinational cycle"

let stats nl =
  let seq = Array.fold_left (fun a m -> if m.Cell_lib.is_seq then a + 1 else a) 0 nl.masters in
  let macros =
    Array.fold_left
      (fun a m -> if m.Cell_lib.klass = Cell_lib.Macro then a + 1 else a)
      0 nl.masters
  in
  Printf.sprintf
    "%s: %d cells (%d FF, %d macro), %d nets, %d IOs, %d pins, area %.1f um^2"
    nl.design (n_cells nl) seq macros (n_nets nl) (n_ios nl) (n_pins nl)
    (total_cell_area nl)
