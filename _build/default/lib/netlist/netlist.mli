(** Gate-level netlists.

    The unit of work for the whole flow: generators build these
    ({!module:Generator}), the placer assigns coordinates to their
    cells, the router routes their nets, the timer walks their logic
    cones and the GNN spreads their cells.  Cells, nets, and IOs are
    identified by dense integer ids so every downstream pass can use
    flat arrays at the published design sizes (13K-120K cells). *)

type endpoint =
  | Cell of int  (** a cell pin (driver = the cell's output pin) *)
  | Io of int  (** a primary input/output pad *)

type net = {
  net_id : int;
  net_name : string;
  driver : endpoint;
  sinks : endpoint array;
  is_clock : bool;  (** clock nets are routed by CTS, not the router *)
}

type io_dir = In | Out

type io = { io_id : int; io_name : string; dir : io_dir }

type t = {
  design : string;
  masters : Cell_lib.master array;
  (** per-cell master; mutable via array update for ECO sizing *)
  nets : net array;
  ios : io array;
  cell_fanin : int array array;
  (** [cell_fanin.(c)] = ids of the nets driving cell [c]'s inputs *)
  cell_fanout : int array;
  (** [cell_fanout.(c)] = id of the net driven by cell [c], or -1 *)
}

val n_cells : t -> int
val n_nets : t -> int
val n_ios : t -> int

val n_pins : t -> int
(** Total pin count: net drivers plus sinks. *)

val cell_area : t -> int -> float
(** Footprint of one cell (um^2). *)

val total_cell_area : t -> float

val degree : net -> int
(** Number of pins on the net (driver + sinks). *)

val signal_nets : t -> net list
(** All non-clock nets — the ones the router and RUDY see. *)

val clock_net : t -> net option
(** The clock net, if the design is sequential. *)

val is_macro : t -> int -> bool

val fanout_histogram : t -> (int * int) list
(** [(degree, count)] pairs, ascending by degree, clock excluded. *)

val copy : t -> t
(** Deep copy (safe to resize cells in the copy). *)

val validate : t -> (unit, string) result
(** Structural sanity: endpoint ranges, driver/fanout cross-consistency,
    fanin arities against masters, io direction consistency. *)

val levelize : t -> int array option
(** Topological level of each cell through combinational arcs (flip-flop
    outputs and primary inputs are level 0 sources).  [None] if the
    combinational graph has a cycle. *)

val logic_depth : t -> int
(** Maximum combinational level ([0] for an empty design).
    @raise Invalid_argument on a cyclic netlist. *)

val stats : t -> string
(** One-line human-readable summary. *)
