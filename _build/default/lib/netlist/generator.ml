module Rng = Dco3d_tensor.Rng

type profile = {
  name : string;
  n_cells : int;
  n_ios : int;
  seq_fraction : float;
  depth : int;
  hub_fraction : float;
  locality : float;
  macros : (string * float * float) list;
}

(* Published sizes from Table III; topology knobs chosen to reflect each
   design's character. *)
let profiles =
  [
    { name = "DMA"; n_cells = 13_000; n_ios = 961; seq_fraction = 0.18;
      depth = 10; hub_fraction = 0.0020; locality = 0.55; macros = [] };
    { name = "AES"; n_cells = 114_000; n_ios = 390; seq_fraction = 0.06;
      depth = 16; hub_fraction = 0.0010; locality = 0.65; macros = [] };
    { name = "ECG"; n_cells = 83_000; n_ios = 1_700; seq_fraction = 0.12;
      depth = 14; hub_fraction = 0.0015; locality = 0.60; macros = [] };
    { name = "LDPC"; n_cells = 39_000; n_ios = 4_100; seq_fraction = 0.08;
      depth = 6; hub_fraction = 0.0040; locality = 0.30; macros = [] };
    { name = "VGA"; n_cells = 52_000; n_ios = 184; seq_fraction = 0.20;
      depth = 12; hub_fraction = 0.0010; locality = 0.70;
      macros = [ ("VGA_LINEBUF0", 6.0, 4.0); ("VGA_LINEBUF1", 6.0, 4.0) ] };
    { name = "Rocket"; n_cells = 120_000; n_ios = 379; seq_fraction = 0.15;
      depth = 20; hub_fraction = 0.0015; locality = 0.60;
      macros =
        [ ("ROCKET_ICACHE", 8.0, 6.0); ("ROCKET_DCACHE", 8.0, 6.0);
          ("ROCKET_ITLB", 4.0, 3.0); ("ROCKET_DTLB", 4.0, 3.0) ] };
  ]

let profile name =
  let lower = String.lowercase_ascii name in
  match
    List.find_opt (fun p -> String.lowercase_ascii p.name = lower) profiles
  with
  | Some p -> p
  | None -> raise Not_found

(* Growable int vector — sink lists. *)
module Vec = struct
  type t = { mutable data : int array; mutable len : int }

  let create () = { data = Array.make 4 0; len = 0 }

  let push v x =
    if v.len = Array.length v.data then begin
      let data = Array.make (2 * v.len) 0 in
      Array.blit v.data 0 data 0 v.len;
      v.data <- data
    end;
    v.data.(v.len) <- x;
    v.len <- v.len + 1

  let to_array v = Array.sub v.data 0 v.len
end

let pick_drive rng =
  let u = Rng.uniform rng in
  if u < 0.60 then 1 else if u < 0.85 then 2 else if u < 0.95 then 4 else 8

let generate ?(scale = 1.0) ~seed p =
  let rng = Rng.create (seed lxor Hashtbl.hash p.name) in
  let n_cells = max 24 (int_of_float (float_of_int p.n_cells *. scale)) in
  let n_ios = max 8 (int_of_float (float_of_int p.n_ios *. scale)) in
  let n_ff = max 2 (int_of_float (p.seq_fraction *. float_of_int n_cells)) in
  let n_comb = n_cells - n_ff in
  let n_macros = List.length p.macros in
  let total_cells = n_cells + n_macros in
  (* IOs: index 0 is the clock; then inputs, then outputs. *)
  let n_in = max 2 (int_of_float (0.45 *. float_of_int (n_ios - 1))) in
  let n_out = max 2 (n_ios - 1 - n_in) in
  let n_ios = 1 + n_in + n_out in

  (* --- masters ------------------------------------------------------ *)
  let comb_classes = Array.of_list Cell_lib.combinational in
  let masters =
    Array.init total_cells (fun c ->
        if c < n_comb then
          Cell_lib.master_of (Rng.choose rng comb_classes) ~drive:(pick_drive rng)
        else if c < n_cells then
          Cell_lib.master_of Cell_lib.Dff
            ~drive:(if Rng.uniform rng < 0.8 then 1 else 2)
        else begin
          (* macro contents scale with the design, so their footprint
             scales by sqrt(scale) — keeps the macro area fraction
             constant across test scales *)
          let mscale = Float.max 0.1 (sqrt scale) in
          let name, w, h = List.nth p.macros (c - n_cells) in
          Cell_lib.macro_master ~name ~width:(w *. mscale) ~height:(h *. mscale)
        end)
  in

  (* --- levels -------------------------------------------------------- *)
  (* Comb cells get a level in 1..depth; level-0 drivers are primary
     inputs, flip-flop outputs and macro outputs.  Top-level cells can
     only be consumed by flip-flop D pins and primary outputs, so the
     level distribution decays geometrically with a ratio chosen to keep
     the expected top-level population under that consumer capacity —
     otherwise shallow IO-heavy profiles (LDPC) would saturate and leave
     dangling gates. *)
  let level = Array.make total_cells 0 in
  let cap = 0.6 *. float_of_int (n_ff + n_out) in
  let top_share r =
    if r >= 0.9999 then 1. /. float_of_int p.depth
    else (r ** float_of_int (p.depth - 1)) *. (1. -. r) /. (1. -. (r ** float_of_int p.depth))
  in
  let decay =
    if float_of_int n_comb *. top_share 1.0 <= cap then 1.0
    else begin
      let lo = ref 0.01 and hi = ref 1.0 in
      for _ = 1 to 40 do
        let mid = 0.5 *. (!lo +. !hi) in
        if float_of_int n_comb *. top_share mid <= cap then lo := mid
        else hi := mid
      done;
      !lo
    end
  in
  let cum_weights = Array.make p.depth 0. in
  let acc = ref 0. in
  for l = 0 to p.depth - 1 do
    acc := !acc +. (decay ** float_of_int l);
    cum_weights.(l) <- !acc
  done;
  let total_weight = !acc in
  let sample_level () =
    let u = Rng.uniform rng *. total_weight in
    let rec find l = if l >= p.depth - 1 || cum_weights.(l) >= u then l + 1 else find (l + 1) in
    find 0
  in
  for c = 0 to n_comb - 1 do
    level.(c) <- sample_level ()
  done;

  (* Driver universe: flat array of endpoints ordered by level then id,
     so that a positional pick with a local window correlates with id
     locality.  Index ranges per level are recorded in [level_offset]. *)
  let drivers = Array.make (n_in + total_cells) (Netlist.Io 0) in
  let driver_level = Array.make (n_in + total_cells) 0 in
  let pos = ref 0 in
  let add_driver e l =
    drivers.(!pos) <- e;
    driver_level.(!pos) <- l;
    incr pos
  in
  for i = 0 to n_in - 1 do
    add_driver (Netlist.Io (1 + i)) 0
  done;
  for c = n_comb to total_cells - 1 do
    add_driver (Netlist.Cell c) 0
  done;
  for l = 1 to p.depth do
    for c = 0 to n_comb - 1 do
      if level.(c) = l then add_driver (Netlist.Cell c) l
    done
  done;
  let n_drivers = !pos in
  assert (n_drivers = n_in + total_cells);
  (* prefix count of drivers strictly below each level *)
  let below = Array.make (p.depth + 2) 0 in
  for k = 0 to n_drivers - 1 do
    let l = driver_level.(k) in
    below.(l + 1) <- max below.(l + 1) (k + 1)
  done;
  for l = 1 to p.depth + 1 do
    below.(l) <- max below.(l) below.(l - 1)
  done;

  (* hubs: a few designated high-fanout drivers (resets, enables, wide
     broadcast buses) *)
  let n_hubs = max 1 (int_of_float (p.hub_fraction *. float_of_int n_drivers)) in
  let hubs = Array.init n_hubs (fun _ -> Rng.int rng (max 1 (below.(1)))) in

  (* unconsumed pool with lazy deletion *)
  let consumed = Array.make n_drivers false in
  let sink_count = Array.make n_drivers 0 in
  let pool = Array.init n_drivers Fun.id in
  let pool_len = ref n_drivers in
  Rng.shuffle rng pool;
  let pop_unconsumed ~max_level =
    (* try a few lazily-deleted candidates *)
    let rec try_ k =
      if k = 0 || !pool_len = 0 then None
      else begin
        let i = Rng.int rng !pool_len in
        let d = pool.(i) in
        if consumed.(d) then begin
          (* lazy delete: swap-remove and retry *)
          pool.(i) <- pool.(!pool_len - 1);
          decr pool_len;
          try_ k
        end
        else if driver_level.(d) < max_level then begin
          pool.(i) <- pool.(!pool_len - 1);
          decr pool_len;
          Some d
        end
        else try_ (k - 1)
      end
    in
    try_ 6
  in
  (* Like [pop_unconsumed], but returns the highest-level candidate of a
     small sample: used for flip-flop D pins and primary outputs, the
     only consumers that can absorb top-level logic. *)
  let pop_unconsumed_topmost ~max_level =
    (* scan-only sampling (no lazy deletion) so recorded indices stay
       valid until the final swap-remove *)
    let best = ref (-1) in
    let best_level = ref (-1) in
    let tries = min 12 !pool_len in
    for _ = 1 to tries do
      let i = Rng.int rng !pool_len in
      let d = pool.(i) in
      if
        (not consumed.(d))
        && driver_level.(d) < max_level
        && driver_level.(d) > !best_level
      then begin
        best := i;
        best_level := driver_level.(d)
      end
    done;
    if !best < 0 then None
    else begin
      let d = pool.(!best) in
      pool.(!best) <- pool.(!pool_len - 1);
      decr pool_len;
      Some d
    end
  in
  let sigma = 0.02 +. (0.5 *. (1. -. p.locality)) in
  let pick_local ~max_level ~at =
    let limit = below.(max_level) in
    if limit = 0 then None
    else begin
      let u = at +. Rng.gaussian ~sigma rng in
      let u = Float.max 0. (Float.min 0.999999 u) in
      Some (int_of_float (u *. float_of_int limit))
    end
  in
  let pick_driver ~max_level ~at ~prefer_unconsumed =
    let hub_pick () =
      let d = hubs.(Rng.int rng n_hubs) in
      if driver_level.(d) < max_level then Some d else None
    in
    let choice =
      if Rng.uniform rng < 0.10 then hub_pick () else None
    in
    match choice with
    | Some d -> Some d
    | None ->
        if prefer_unconsumed && Rng.uniform rng < 0.6 then
          match pop_unconsumed ~max_level with
          | Some d -> Some d
          | None -> pick_local ~max_level ~at
        else pick_local ~max_level ~at
  in

  (* --- wiring -------------------------------------------------------- *)
  (* input_driver.(c) = driver index per input pin of cell c *)
  let input_driver = Array.make total_cells [||] in
  for c = 0 to n_comb - 1 do
    let m = masters.(c) in
    let at = float_of_int c /. float_of_int (max 1 n_comb) in
    input_driver.(c) <-
      Array.init m.Cell_lib.n_inputs (fun _ ->
          match pick_driver ~max_level:level.(c) ~at ~prefer_unconsumed:true with
          | Some d ->
              consumed.(d) <- true;
              sink_count.(d) <- sink_count.(d) + 1;
              d
          | None -> -1)
  done;
  (* flip-flop D inputs: any level is legal (the register cuts the
     cycle); prefer the highest-level unconsumed drivers since D pins
     are the natural consumers of end-of-cone logic *)
  let pick_for_register () =
    match pop_unconsumed_topmost ~max_level:(p.depth + 1) with
    | Some d -> Some d
    | None ->
        pick_driver ~max_level:(p.depth + 1) ~at:(Rng.uniform rng)
          ~prefer_unconsumed:true
  in
  for c = n_comb to n_cells - 1 do
    input_driver.(c) <-
      [|
        (match pick_for_register () with
        | Some d ->
            consumed.(d) <- true;
            sink_count.(d) <- sink_count.(d) + 1;
            d
        | None -> -1);
      |]
  done;
  (* macro inputs: a handful of taps from anywhere *)
  for c = n_cells to total_cells - 1 do
    input_driver.(c) <-
      Array.init 4 (fun _ ->
          match
            pick_driver ~max_level:(p.depth + 1) ~at:(Rng.uniform rng)
              ~prefer_unconsumed:true
          with
          | Some d ->
              consumed.(d) <- true;
              sink_count.(d) <- sink_count.(d) + 1;
              d
          | None -> -1)
  done;
  (* primary outputs: same policy as registers *)
  let po_driver =
    Array.init n_out (fun _ ->
        match pick_for_register () with
        | Some d ->
            consumed.(d) <- true;
            sink_count.(d) <- sink_count.(d) + 1;
            d
        | None -> -1)
  in
  (* Steal pass: give every remaining sink-less driver one sink by
     re-pointing a suitably-leveled consumer input.  Stealing from a net
     with >= 2 sinks resolves a dangling driver outright; stealing a
     {e singleton} sink is also allowed when the robbed driver sits at a
     strictly lower level — that pushes the dangling driver down to
     levels where combinational consumers are plentiful, so the cascade
     terminates (the dangling level strictly decreases). *)
  let dangling = Queue.create () in
  for i = 0 to !pool_len - 1 do
    let d = pool.(i) in
    if not consumed.(d) then Queue.add d dangling
  done;
  let steal_attempts = ref 0 in
  let max_steal_attempts = 400 * (1 + Queue.length dangling) in
  while (not (Queue.is_empty dangling)) && !steal_attempts < max_steal_attempts do
    let d = Queue.pop dangling in
    let l = driver_level.(d) in
    let resolved = ref false in
    let attempts = ref 0 in
    while (not !resolved) && !attempts < 200 do
      incr attempts;
      incr steal_attempts;
      (* choose a consumer: a comb cell above level l, a flip-flop D
         input, or a primary output *)
      let roll = Rng.uniform rng in
      let take pins pin c_level =
        let old = pins.(pin) in
        if
          c_level > l && old >= 0 && old <> d
          && (sink_count.(old) >= 2 || driver_level.(old) < l)
        then begin
          sink_count.(old) <- sink_count.(old) - 1;
          pins.(pin) <- d;
          sink_count.(d) <- sink_count.(d) + 1;
          consumed.(d) <- true;
          resolved := true;
          if sink_count.(old) = 0 then begin
            consumed.(old) <- false;
            Queue.add old dangling
          end
        end
      in
      if roll < 0.2 && n_out > 0 then begin
        let k = Rng.int rng n_out in
        let old = po_driver.(k) in
        if old >= 0 && old <> d && (sink_count.(old) >= 2 || driver_level.(old) < l)
        then begin
          sink_count.(old) <- sink_count.(old) - 1;
          po_driver.(k) <- d;
          sink_count.(d) <- sink_count.(d) + 1;
          consumed.(d) <- true;
          resolved := true;
          if sink_count.(old) = 0 then begin
            consumed.(old) <- false;
            Queue.add old dangling
          end
        end
      end
      else if roll < 0.5 && n_ff > 0 then begin
        let c = n_comb + Rng.int rng n_ff in
        let pins = input_driver.(c) in
        if Array.length pins > 0 then take pins 0 (p.depth + 1)
      end
      else begin
        let c = Rng.int rng n_comb in
        let pins = input_driver.(c) in
        if Array.length pins > 0 then
          take pins (Rng.int rng (Array.length pins)) level.(c)
      end
    done
  done;

  (* --- build nets ---------------------------------------------------- *)
  let sink_lists = Array.init n_drivers (fun _ -> Vec.create ()) in
  (* encode sinks: cell c -> c, primary output k -> total_cells + k *)
  Array.iteri
    (fun c pins ->
      Array.iter (fun d -> if d >= 0 then Vec.push sink_lists.(d) c) pins)
    input_driver;
  Array.iteri
    (fun k d -> if d >= 0 then Vec.push sink_lists.(d) (total_cells + k))
    po_driver;
  let net_of_driver = Array.make n_drivers (-1) in
  let nets = ref [] in
  let n_nets = ref 0 in
  for d = 0 to n_drivers - 1 do
    let sinks = Vec.to_array sink_lists.(d) in
    if Array.length sinks > 0 then begin
      let id = !n_nets in
      net_of_driver.(d) <- id;
      incr n_nets;
      let sinks =
        Array.map
          (fun s ->
            if s < total_cells then Netlist.Cell s
            else Netlist.Io (1 + n_in + (s - total_cells)))
          sinks
      in
      nets :=
        {
          Netlist.net_id = id;
          net_name = Printf.sprintf "n%d" id;
          driver = drivers.(d);
          sinks;
          is_clock = false;
        }
        :: !nets
    end
  done;
  (* clock net: Io 0 -> every flip-flop *)
  let clock_id = !n_nets in
  incr n_nets;
  let clock_net =
    {
      Netlist.net_id = clock_id;
      net_name = "clk";
      driver = Netlist.Io 0;
      sinks = Array.init n_ff (fun i -> Netlist.Cell (n_comb + i));
      is_clock = true;
    }
  in
  let nets = Array.of_list (List.rev (clock_net :: !nets)) in

  (* --- fanin / fanout ------------------------------------------------ *)
  let cell_fanout = Array.make total_cells (-1) in
  let driver_index_of_cell = Array.make total_cells (-1) in
  for d = 0 to n_drivers - 1 do
    match drivers.(d) with
    | Netlist.Cell c -> driver_index_of_cell.(c) <- d
    | Netlist.Io _ -> ()
  done;
  for c = 0 to total_cells - 1 do
    let d = driver_index_of_cell.(c) in
    if d >= 0 then cell_fanout.(c) <- net_of_driver.(d)
  done;
  let cell_fanin =
    Array.init total_cells (fun c ->
        let pins =
          Array.to_list input_driver.(c)
          |> List.filter_map (fun d ->
                 if d >= 0 && net_of_driver.(d) >= 0 then Some net_of_driver.(d)
                 else None)
        in
        let pins = if c >= n_comb && c < n_cells then pins @ [ clock_id ] else pins in
        Array.of_list pins)
  in

  (* --- IOs ------------------------------------------------------------ *)
  let ios =
    Array.init n_ios (fun i ->
        if i = 0 then { Netlist.io_id = 0; io_name = "clk"; dir = Netlist.In }
        else if i <= n_in then
          { Netlist.io_id = i; io_name = Printf.sprintf "in%d" (i - 1);
            dir = Netlist.In }
        else
          { Netlist.io_id = i; io_name = Printf.sprintf "out%d" (i - 1 - n_in);
            dir = Netlist.Out })
  in
  { Netlist.design = p.name; masters; nets; ios; cell_fanin; cell_fanout }
