(** Graph Convolutional Network layers (Kipf & Welling) on the autodiff
    tape.

    The paper's differentiable cell spreader is "a GNN consisting of
    three Graph Convolutional Network layers with shared weights across
    all cells" (section IV-A): each layer computes
    [X' = act (D^-1/2 (A+I) D^-1/2 X W + b)], where the propagation
    operator is fixed (the netlist does not change during spreading) and
    only [W], [b] are trained. *)

val spmm : Csr.t -> Dco3d_autodiff.Value.t -> Dco3d_autodiff.Value.t
(** Differentiable sparse-dense product with a constant sparse matrix:
    the backward pass multiplies by the transpose (computed once per
    call). *)

type t

val layer :
  Dco3d_tensor.Rng.t ->
  adj:Csr.t ->
  in_dim:int ->
  out_dim:int ->
  ?act:(Dco3d_autodiff.Value.t -> Dco3d_autodiff.Value.t) ->
  unit ->
  t
(** One GCN layer over a pre-normalized propagation matrix [adj]
    (see {!Csr.symmetric_normalize}).  Default activation: identity. *)

val forward : t -> Dco3d_autodiff.Value.t -> Dco3d_autodiff.Value.t
val params : t -> Dco3d_autodiff.Value.t list

val stack :
  Dco3d_tensor.Rng.t ->
  adj:Csr.t ->
  dims:int list ->
  ?hidden_act:(Dco3d_autodiff.Value.t -> Dco3d_autodiff.Value.t) ->
  unit ->
  t list
(** [stack rng ~adj ~dims:[f0; f1; ...; fk] ()] builds [k] layers
    [f0 -> f1 -> ... -> fk]; all but the last use [hidden_act]
    (default {!Dco3d_autodiff.Value.relu}), the last is linear. *)

val forward_stack : t list -> Dco3d_autodiff.Value.t -> Dco3d_autodiff.Value.t
val stack_params : t list -> Dco3d_autodiff.Value.t list
