(** Compressed-sparse-row matrices over floats.

    The netlist connectivity graph that drives the paper's GNN cell
    spreader is stored in this format: for the published design sizes
    (13K-120K cells, 14K-120K nets) dense adjacency is out of the
    question, while CSR gives linear-time sparse-dense products. *)

type t = private {
  n_rows : int;
  n_cols : int;
  row_ptr : int array;  (** length [n_rows + 1] *)
  col_idx : int array;
  values : float array;
}

val create :
  n_rows:int -> n_cols:int -> (int * int * float) list -> t
(** [create ~n_rows ~n_cols coo] builds a CSR matrix from coordinate
    triples [(row, col, value)].  Duplicate coordinates are summed.
    @raise Invalid_argument on out-of-range indices. *)

val identity : int -> t
val nnz : t -> int
val get : t -> int -> int -> float
(** [get m i j] is 0. for absent entries ([O(log nnz_row)]). *)

val transpose : t -> t

val matvec : t -> float array -> float array

val spmm : t -> Dco3d_tensor.Tensor.t -> Dco3d_tensor.Tensor.t
(** [spmm a x] with [x : [n_cols; f]] returns [[n_rows; f]]. *)

val row_sums : t -> float array

val iter_row : t -> int -> (int -> float -> unit) -> unit
(** Iterate over the stored entries of one row. *)

val iter : t -> (int -> int -> float -> unit) -> unit
(** Iterate over all stored entries as [(row, col, value)]. *)

val scale_rows : t -> float array -> t
(** [scale_rows m d] multiplies row [i] by [d.(i)]. *)

val scale_cols : t -> float array -> t

val symmetric_normalize : t -> t
(** [symmetric_normalize a] returns [D^-1/2 (A + I) D^-1/2] where [D] is
    the degree matrix of [A + I] — the GCN propagation operator of Kipf
    & Welling used by the paper's spreader.  Requires a square input. *)
