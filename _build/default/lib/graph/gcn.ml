module V = Dco3d_autodiff.Value

let spmm adj x =
  let y = Csr.spmm adj (V.data x) in
  V.custom ~data:y ~parents:[ x ]
    ~backward:(fun g -> [ Some (Csr.spmm (Csr.transpose adj) g) ])

type t = {
  adj : Csr.t;
  lin : Dco3d_nn.Layer.t;
  act : V.t -> V.t;
}

let layer rng ~adj ~in_dim ~out_dim ?(act = Fun.id) () =
  { adj; lin = Dco3d_nn.Layer.linear rng ~in_dim ~out_dim (); act }

let forward l x = l.act (l.lin.Dco3d_nn.Layer.forward (spmm l.adj x))
let params l = l.lin.Dco3d_nn.Layer.params

let stack rng ~adj ~dims ?(hidden_act = V.relu) () =
  let rec build = function
    | [] | [ _ ] -> []
    | [ in_dim; out_dim ] -> [ layer rng ~adj ~in_dim ~out_dim () ]
    | in_dim :: (out_dim :: _ as rest) ->
        layer rng ~adj ~in_dim ~out_dim ~act:hidden_act () :: build rest
  in
  build dims

let forward_stack layers x = List.fold_left (fun acc l -> forward l acc) x layers
let stack_params layers = List.concat_map params layers
