lib/graph/gcn.mli: Csr Dco3d_autodiff Dco3d_tensor
