lib/graph/csr.ml: Array Dco3d_tensor Fun List
