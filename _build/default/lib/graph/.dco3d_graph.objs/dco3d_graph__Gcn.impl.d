lib/graph/gcn.ml: Csr Dco3d_autodiff Dco3d_nn Fun List
