lib/graph/csr.mli: Dco3d_tensor
