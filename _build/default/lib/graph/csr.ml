module T = Dco3d_tensor.Tensor

type t = {
  n_rows : int;
  n_cols : int;
  row_ptr : int array;
  col_idx : int array;
  values : float array;
}

let create ~n_rows ~n_cols coo =
  List.iter
    (fun (r, c, _) ->
      if r < 0 || r >= n_rows || c < 0 || c >= n_cols then
        invalid_arg "Csr.create: index out of range")
    coo;
  let sorted =
    List.sort (fun (r1, c1, _) (r2, c2, _) -> compare (r1, c1) (r2, c2)) coo
  in
  (* merge duplicates *)
  let merged =
    List.fold_left
      (fun acc (r, c, v) ->
        match acc with
        | (r', c', v') :: rest when r = r' && c = c' -> (r, c, v +. v') :: rest
        | _ -> (r, c, v) :: acc)
      [] sorted
    |> List.rev
  in
  let nnz = List.length merged in
  let col_idx = Array.make nnz 0 in
  let values = Array.make nnz 0. in
  let row_ptr = Array.make (n_rows + 1) 0 in
  List.iteri
    (fun i (r, c, v) ->
      col_idx.(i) <- c;
      values.(i) <- v;
      row_ptr.(r + 1) <- row_ptr.(r + 1) + 1)
    merged;
  for r = 0 to n_rows - 1 do
    row_ptr.(r + 1) <- row_ptr.(r + 1) + row_ptr.(r)
  done;
  { n_rows; n_cols; row_ptr; col_idx; values }

let identity n =
  {
    n_rows = n;
    n_cols = n;
    row_ptr = Array.init (n + 1) Fun.id;
    col_idx = Array.init n Fun.id;
    values = Array.make n 1.;
  }

let nnz m = Array.length m.values

let get m i j =
  if i < 0 || i >= m.n_rows || j < 0 || j >= m.n_cols then
    invalid_arg "Csr.get: index out of range";
  (* binary search within the row (columns are sorted by construction) *)
  let lo = ref m.row_ptr.(i) and hi = ref (m.row_ptr.(i + 1) - 1) in
  let result = ref 0. in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = m.col_idx.(mid) in
    if c = j then begin
      result := m.values.(mid);
      lo := !hi + 1
    end
    else if c < j then lo := mid + 1
    else hi := mid - 1
  done;
  !result

let iter_row m i f =
  for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
    f m.col_idx.(k) m.values.(k)
  done

let iter m f =
  for i = 0 to m.n_rows - 1 do
    iter_row m i (fun j v -> f i j v)
  done

let transpose m =
  let nnz = Array.length m.values in
  let row_ptr = Array.make (m.n_cols + 1) 0 in
  Array.iter (fun c -> row_ptr.(c + 1) <- row_ptr.(c + 1) + 1) m.col_idx;
  for c = 0 to m.n_cols - 1 do
    row_ptr.(c + 1) <- row_ptr.(c + 1) + row_ptr.(c)
  done;
  let col_idx = Array.make nnz 0 in
  let values = Array.make nnz 0. in
  let cursor = Array.copy row_ptr in
  iter m (fun i j v ->
      let k = cursor.(j) in
      col_idx.(k) <- i;
      values.(k) <- v;
      cursor.(j) <- k + 1);
  { n_rows = m.n_cols; n_cols = m.n_rows; row_ptr; col_idx; values }

let matvec m x =
  if Array.length x <> m.n_cols then invalid_arg "Csr.matvec: length mismatch";
  let y = Array.make m.n_rows 0. in
  for i = 0 to m.n_rows - 1 do
    let acc = ref 0. in
    for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      acc := !acc +. (m.values.(k) *. x.(m.col_idx.(k)))
    done;
    y.(i) <- !acc
  done;
  y

let spmm m x =
  if T.rank x <> 2 || T.dim x 0 <> m.n_cols then
    invalid_arg "Csr.spmm: shape mismatch";
  let f = T.dim x 1 in
  let y = T.zeros [| m.n_rows; f |] in
  for i = 0 to m.n_rows - 1 do
    for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      let j = m.col_idx.(k) and v = m.values.(k) in
      if v <> 0. then
        for c = 0 to f - 1 do
          T.set2 y i c (T.get2 y i c +. (v *. T.get2 x j c))
        done
    done
  done;
  y

let row_sums m =
  let s = Array.make m.n_rows 0. in
  iter m (fun i _ v -> s.(i) <- s.(i) +. v);
  s

let scale_rows m d =
  if Array.length d <> m.n_rows then invalid_arg "Csr.scale_rows: length mismatch";
  let values =
    Array.init (Array.length m.values) (fun k -> m.values.(k))
  in
  for i = 0 to m.n_rows - 1 do
    for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      values.(k) <- values.(k) *. d.(i)
    done
  done;
  { m with values }

let scale_cols m d =
  if Array.length d <> m.n_cols then invalid_arg "Csr.scale_cols: length mismatch";
  let values =
    Array.init (Array.length m.values) (fun k ->
        m.values.(k) *. d.(m.col_idx.(k)))
  in
  { m with values }

let symmetric_normalize a =
  if a.n_rows <> a.n_cols then
    invalid_arg "Csr.symmetric_normalize: square matrix expected";
  let n = a.n_rows in
  (* A + I, rebuilt through the COO path to keep columns sorted. *)
  let coo = ref [] in
  iter a (fun i j v -> coo := (i, j, v) :: !coo);
  for i = 0 to n - 1 do
    coo := (i, i, 1.) :: !coo
  done;
  let a_hat = create ~n_rows:n ~n_cols:n !coo in
  let deg = row_sums a_hat in
  let d_inv_sqrt =
    Array.map (fun d -> if d > 0. then 1. /. sqrt d else 0.) deg
  in
  scale_cols (scale_rows a_hat d_inv_sqrt) d_inv_sqrt
