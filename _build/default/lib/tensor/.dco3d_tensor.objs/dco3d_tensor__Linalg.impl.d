lib/tensor/linalg.ml: Array Float Tensor
