lib/tensor/rng.mli:
