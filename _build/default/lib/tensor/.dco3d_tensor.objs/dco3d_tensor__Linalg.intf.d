lib/tensor/linalg.mli: Tensor
