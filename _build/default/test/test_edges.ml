(* Edge-case and error-path tests across libraries: the behaviours a
   downstream user hits first when they misuse an API. *)

module T = Dco3d_tensor.Tensor
module Rng = Dco3d_tensor.Rng
module V = Dco3d_autodiff.Value
module Csr = Dco3d_graph.Csr
module Nl = Dco3d_netlist.Netlist
module Cl = Dco3d_netlist.Cell_lib
module Gen = Dco3d_netlist.Generator
module Fp = Dco3d_place.Floorplan
module Sta = Dco3d_sta.Sta

(* ------------------------------------------------------------------ *)
(* Tensor                                                              *)
(* ------------------------------------------------------------------ *)

let test_tensor_bad_indices () =
  let t = T.zeros [| 2; 2 |] in
  Alcotest.check_raises "oob" (Invalid_argument "Tensor: index out of bounds")
    (fun () -> ignore (T.get t [| 2; 0 |]));
  Alcotest.check_raises "rank" (Invalid_argument "Tensor: index rank mismatch")
    (fun () -> ignore (T.get t [| 0 |]))

let test_tensor_shape_mismatches () =
  let a = T.zeros [| 2 |] and b = T.zeros [| 3 |] in
  Alcotest.check_raises "map2" (Invalid_argument "Tensor.map2: shape mismatch")
    (fun () -> ignore (T.add a b));
  Alcotest.check_raises "dot" (Invalid_argument "Tensor.dot: shape mismatch")
    (fun () -> ignore (T.dot a b));
  Alcotest.check_raises "matmul rank"
    (Invalid_argument "Tensor.matmul: rank-2 only") (fun () ->
      ignore (T.matmul a b))

let test_tensor_conv_errors () =
  let x = T.zeros [| 2; 4; 4 |] in
  let w_bad = T.zeros [| 3; 5; 3; 3 |] in
  Alcotest.check_raises "channel mismatch"
    (Invalid_argument "Tensor.conv2d: channel mismatch between input and weight")
    (fun () -> ignore (T.conv2d x ~weight:w_bad ~bias:None));
  let odd = T.zeros [| 1; 3; 4 |] in
  Alcotest.check_raises "odd pool"
    (Invalid_argument "Tensor.maxpool2: spatial dimensions must be even")
    (fun () -> ignore (T.maxpool2 odd))

let test_tensor_empty_and_tiny () =
  let e = T.zeros [| 0 |] in
  Alcotest.(check (float 0.)) "sum of empty" 0. (T.sum e);
  Alcotest.(check (float 0.)) "mean of empty" 0. (T.mean e);
  let one = T.scalar 5. in
  Alcotest.(check (float 0.)) "scalar mean" 5. (T.mean one)

let test_resize_degenerate () =
  let m = T.of_array2 [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let tiny = T.resize_nearest m 1 1 in
  Alcotest.(check (float 0.)) "1x1 resize picks a source pixel" 1.
    (T.get2 tiny 0 0);
  Alcotest.check_raises "zero target"
    (Invalid_argument "Tensor.resize_nearest: empty target") (fun () ->
      ignore (T.resize_nearest m 0 3))

(* ------------------------------------------------------------------ *)
(* Autodiff                                                            *)
(* ------------------------------------------------------------------ *)

let test_value_div_gradcheck () =
  let rng = Rng.create 31 in
  let denom = T.add_scalar 2. (T.sqr (T.randn rng [| 5 |])) in
  Alcotest.(check bool) "div gradient (numerator)" true
    (V.gradient_check
       (fun x -> V.sum (V.div x (V.const denom)))
       (T.randn (Rng.create 32) [| 5 |]));
  let num = T.randn (Rng.create 33) [| 5 |] in
  Alcotest.(check bool) "div gradient (denominator)" true
    (V.gradient_check
       (fun x -> V.sum (V.div (V.const num) (V.add_scalar 3. (V.sqr x))))
       (T.randn (Rng.create 34) [| 5 |]))

let test_value_const_subgraph_untracked () =
  (* a graph of constants collapses: backward through it is a no-op *)
  let c = V.add (V.scalar 1.) (V.scalar 2.) in
  Alcotest.(check bool) "const result" false (V.requires_grad c)

let test_gradient_check_catches_wrong_gradient () =
  (* a deliberately wrong custom gradient must fail the checker *)
  let broken x =
    V.custom
      ~data:(T.map (fun v -> v *. v) (V.data x))
      ~parents:[ x ]
      ~backward:(fun g -> [ Some g ] (* wrong: should be 2x*g *))
  in
  Alcotest.(check bool) "detects wrong backward" false
    (V.gradient_check (fun x -> V.sum (broken x)) (T.of_array1 [| 1.5; -2. |]))

(* ------------------------------------------------------------------ *)
(* Csr                                                                 *)
(* ------------------------------------------------------------------ *)

let test_csr_empty_matrix () =
  let m = Csr.create ~n_rows:3 ~n_cols:3 [] in
  Alcotest.(check int) "nnz" 0 (Csr.nnz m);
  Alcotest.(check (array (float 0.))) "matvec zero" [| 0.; 0.; 0. |]
    (Csr.matvec m [| 1.; 2.; 3. |]);
  (* normalizing an empty graph leaves pure self-loops *)
  let n = Csr.symmetric_normalize m in
  Alcotest.(check (float 1e-9)) "self loop" 1. (Csr.get n 0 0)

let test_csr_matvec_length_check () =
  let m = Csr.identity 3 in
  Alcotest.check_raises "length" (Invalid_argument "Csr.matvec: length mismatch")
    (fun () -> ignore (Csr.matvec m [| 1. |]))

(* ------------------------------------------------------------------ *)
(* Netlist validation negatives                                        *)
(* ------------------------------------------------------------------ *)

let bad_netlist_driver_mismatch () =
  let m = Cl.find "INV_X1" in
  {
    Nl.design = "bad";
    masters = [| m; m |];
    nets =
      [|
        { Nl.net_id = 0; net_name = "n"; driver = Nl.Cell 0;
          sinks = [| Nl.Cell 1 |]; is_clock = false };
      |];
    ios = [||];
    cell_fanin = [| [||]; [| 0 |] |];
    cell_fanout = [| -1 (* should be 0 *); -1 |];
  }

let test_validate_rejects_fanout_mismatch () =
  match Nl.validate (bad_netlist_driver_mismatch ()) with
  | Ok () -> Alcotest.fail "accepted inconsistent fanout"
  | Error _ -> ()

let test_validate_rejects_arity_overflow () =
  let m = Cl.find "INV_X1" in
  (* INV has 1 input; give it 3 fanin nets *)
  let net id driver sinks =
    { Nl.net_id = id; net_name = "n"; driver; sinks; is_clock = false }
  in
  let nl =
    {
      Nl.design = "bad";
      masters = [| m; m; m; m |];
      nets =
        [|
          net 0 (Nl.Cell 0) [| Nl.Cell 3 |];
          net 1 (Nl.Cell 1) [| Nl.Cell 3 |];
          net 2 (Nl.Cell 2) [| Nl.Cell 3 |];
        |];
      ios = [||];
      cell_fanin = [| [||]; [||]; [||]; [| 0; 1; 2 |] |];
      cell_fanout = [| 0; 1; 2; -1 |];
    }
  in
  match Nl.validate nl with
  | Ok () -> Alcotest.fail "accepted arity overflow"
  | Error e ->
      Alcotest.(check bool) "mentions inputs" true
        (String.length e > 0)

let test_levelize_detects_cycle () =
  let m = Cl.find "INV_X1" in
  let net id driver sinks =
    { Nl.net_id = id; net_name = "n"; driver; sinks; is_clock = false }
  in
  (* 0 -> 1 -> 0 combinational loop *)
  let nl =
    {
      Nl.design = "cyclic";
      masters = [| m; m |];
      nets =
        [| net 0 (Nl.Cell 0) [| Nl.Cell 1 |]; net 1 (Nl.Cell 1) [| Nl.Cell 0 |] |];
      ios = [||];
      cell_fanin = [| [| 1 |]; [| 0 |] |];
      cell_fanout = [| 0; 1 |];
    }
  in
  Alcotest.(check bool) "cycle detected" true (Nl.levelize nl = None);
  Alcotest.check_raises "logic_depth raises"
    (Invalid_argument "Netlist.logic_depth: combinational cycle") (fun () ->
      ignore (Nl.logic_depth nl))

(* ------------------------------------------------------------------ *)
(* Floorplan / placement edge cases                                    *)
(* ------------------------------------------------------------------ *)

let test_floorplan_rejects_bad_utilization () =
  let nl = Gen.generate ~scale:0.01 ~seed:1 (Gen.profile "DMA") in
  Alcotest.check_raises "util 0"
    (Invalid_argument "Floorplan.create: utilization must be in (0, 1]")
    (fun () -> ignore (Fp.create ~utilization:0. nl))

let test_io_position_requires_ios () =
  let nl = Gen.generate ~scale:0.01 ~seed:1 (Gen.profile "DMA") in
  let fp = Fp.create nl in
  Alcotest.check_raises "no ios"
    (Invalid_argument "Floorplan.io_position: no IOs") (fun () ->
      ignore (Fp.io_position fp ~n_ios:0 0))

(* ------------------------------------------------------------------ *)
(* STA edge cases                                                      *)
(* ------------------------------------------------------------------ *)

let test_sta_pure_combinational_design () =
  (* IO -> INV -> IO : no flip-flops at all *)
  let m = Cl.find "INV_X2" in
  let net id driver sinks is_clock =
    { Nl.net_id = id; net_name = "n"; driver; sinks; is_clock }
  in
  let nl =
    {
      Nl.design = "comb";
      masters = [| m |];
      nets =
        [|
          net 0 (Nl.Io 0) [| Nl.Cell 0 |] false;
          net 1 (Nl.Cell 0) [| Nl.Io 1 |] false;
        |];
      ios =
        [|
          { Nl.io_id = 0; io_name = "in"; dir = Nl.In };
          { Nl.io_id = 1; io_name = "out"; dir = Nl.Out };
        |];
      cell_fanin = [| [| 0 |] |];
      cell_fanout = [| 1 |];
    }
  in
  let cfg = Sta.default_config ~clock_period_ps:1000. in
  let t =
    Sta.analyze cfg nl ~net_length:[| 2.; 3. |] ~net_is_3d:(fun _ -> false)
  in
  Alcotest.(check bool) "finite critical path" true
    (Float.is_finite t.Sta.critical_delay && t.Sta.critical_delay > 0.);
  Alcotest.(check int) "meets loose clock" 0 t.Sta.n_violations

let test_sta_3d_nets_pay_via_delay () =
  let m = Cl.find "INV_X2" in
  let net id driver sinks =
    { Nl.net_id = id; net_name = "n"; driver; sinks; is_clock = false }
  in
  let nl =
    {
      Nl.design = "via";
      masters = [| m |];
      nets =
        [|
          net 0 (Nl.Io 0) [| Nl.Cell 0 |];
          net 1 (Nl.Cell 0) [| Nl.Io 1 |];
        |];
      ios =
        [|
          { Nl.io_id = 0; io_name = "in"; dir = Nl.In };
          { Nl.io_id = 1; io_name = "out"; dir = Nl.Out };
        |];
      cell_fanin = [| [| 0 |] |];
      cell_fanout = [| 1 |];
    }
  in
  let cfg = Sta.default_config ~clock_period_ps:1000. in
  let planar =
    Sta.analyze cfg nl ~net_length:[| 2.; 2. |] ~net_is_3d:(fun _ -> false)
  in
  let stacked =
    Sta.analyze cfg nl ~net_length:[| 2.; 2. |] ~net_is_3d:(fun _ -> true)
  in
  Alcotest.(check bool) "via delay charged" true
    (stacked.Sta.critical_delay > planar.Sta.critical_delay)

(* ------------------------------------------------------------------ *)
(* Placement relief sanity                                             *)
(* ------------------------------------------------------------------ *)

let test_relieve_hot_nets_sane () =
  let nl = Gen.generate ~scale:0.02 ~seed:5 (Gen.profile "AES") in
  let fp = Fp.create nl in
  let p =
    Dco3d_place.Placer.global_place ~seed:1 ~params:Dco3d_place.Params.default
      nl fp
  in
  let before = Dco3d_place.Placement.copy p in
  let moved = Dco3d_place.Placer.relieve_hot_nets ~quantile:0.9 p in
  Alcotest.(check bool) "non-negative move count" true (moved >= 0);
  (* moves are bounded: one GCell pitch plus clamping *)
  let max_d = Dco3d_place.Placement.max_displacement_from p before in
  let pitch = Fp.gcell_w fp +. Fp.gcell_h fp in
  Alcotest.(check bool)
    (Printf.sprintf "bounded displacement %.3f <= %.3f" max_d pitch)
    true (max_d <= pitch +. 1e-6)

let suites =
  [
    ( "edges.tensor",
      [
        Alcotest.test_case "bad indices" `Quick test_tensor_bad_indices;
        Alcotest.test_case "shape mismatches" `Quick test_tensor_shape_mismatches;
        Alcotest.test_case "conv errors" `Quick test_tensor_conv_errors;
        Alcotest.test_case "empty and tiny" `Quick test_tensor_empty_and_tiny;
        Alcotest.test_case "resize degenerate" `Quick test_resize_degenerate;
      ] );
    ( "edges.autodiff",
      [
        Alcotest.test_case "div gradients" `Quick test_value_div_gradcheck;
        Alcotest.test_case "const subgraph" `Quick test_value_const_subgraph_untracked;
        Alcotest.test_case "checker catches bad backward" `Quick test_gradient_check_catches_wrong_gradient;
      ] );
    ( "edges.graph",
      [
        Alcotest.test_case "empty matrix" `Quick test_csr_empty_matrix;
        Alcotest.test_case "matvec length" `Quick test_csr_matvec_length_check;
      ] );
    ( "edges.netlist",
      [
        Alcotest.test_case "fanout mismatch" `Quick test_validate_rejects_fanout_mismatch;
        Alcotest.test_case "arity overflow" `Quick test_validate_rejects_arity_overflow;
        Alcotest.test_case "combinational cycle" `Quick test_levelize_detects_cycle;
      ] );
    ( "edges.place",
      [
        Alcotest.test_case "bad utilization" `Quick test_floorplan_rejects_bad_utilization;
        Alcotest.test_case "io position requires ios" `Quick test_io_position_requires_ios;
        Alcotest.test_case "relieve_hot_nets sane" `Quick test_relieve_hot_nets_sane;
      ] );
    ( "edges.sta",
      [
        Alcotest.test_case "pure combinational" `Quick test_sta_pure_combinational_design;
        Alcotest.test_case "3D nets pay via delay" `Quick test_sta_3d_nets_pay_via_delay;
      ] );
  ]
