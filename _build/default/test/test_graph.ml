(* Tests for CSR sparse matrices and GCN layers. *)

module T = Dco3d_tensor.Tensor
module Rng = Dco3d_tensor.Rng
module V = Dco3d_autodiff.Value
module Csr = Dco3d_graph.Csr
module Gcn = Dco3d_graph.Gcn

let test_create_and_get () =
  let m = Csr.create ~n_rows:3 ~n_cols:4 [ (0, 1, 2.); (2, 3, 5.); (1, 0, -1.) ] in
  Alcotest.(check int) "nnz" 3 (Csr.nnz m);
  Alcotest.(check (float 0.)) "get (0,1)" 2. (Csr.get m 0 1);
  Alcotest.(check (float 0.)) "get (2,3)" 5. (Csr.get m 2 3);
  Alcotest.(check (float 0.)) "absent" 0. (Csr.get m 0 0)

let test_duplicates_sum () =
  let m = Csr.create ~n_rows:2 ~n_cols:2 [ (0, 0, 1.); (0, 0, 2.5) ] in
  Alcotest.(check int) "merged" 1 (Csr.nnz m);
  Alcotest.(check (float 0.)) "summed" 3.5 (Csr.get m 0 0)

let test_rejects_out_of_range () =
  Alcotest.check_raises "bad index"
    (Invalid_argument "Csr.create: index out of range") (fun () ->
      ignore (Csr.create ~n_rows:2 ~n_cols:2 [ (2, 0, 1.) ]))

let test_identity_matvec () =
  let m = Csr.identity 4 in
  let x = [| 1.; 2.; 3.; 4. |] in
  Alcotest.(check (array (float 0.))) "I x = x" x (Csr.matvec m x)

let test_matvec_known () =
  (* [[1 2]; [0 3]] * [4; 5] = [14; 15] *)
  let m = Csr.create ~n_rows:2 ~n_cols:2 [ (0, 0, 1.); (0, 1, 2.); (1, 1, 3.) ] in
  Alcotest.(check (array (float 0.))) "matvec" [| 14.; 15. |]
    (Csr.matvec m [| 4.; 5. |])

let random_csr seed n_rows n_cols density =
  let rng = Rng.create seed in
  let coo = ref [] in
  for i = 0 to n_rows - 1 do
    for j = 0 to n_cols - 1 do
      if Rng.uniform rng < density then
        coo := (i, j, Rng.gaussian rng) :: !coo
    done
  done;
  Csr.create ~n_rows ~n_cols !coo

let to_dense m =
  T.init [| m.Csr.n_rows; m.Csr.n_cols |] (fun i -> Csr.get m i.(0) i.(1))

let prop_transpose_involutive =
  QCheck.Test.make ~name:"transpose is involutive" ~count:30
    (QCheck.int_bound 10_000) (fun seed ->
      let m = random_csr seed 7 5 0.3 in
      let tt = Csr.transpose (Csr.transpose m) in
      T.approx_equal (to_dense m) (to_dense tt))

let prop_spmm_matches_dense =
  QCheck.Test.make ~name:"spmm matches dense matmul" ~count:30
    (QCheck.int_bound 10_000) (fun seed ->
      let m = random_csr seed 6 8 0.4 in
      let x = T.randn (Rng.create (seed + 1)) [| 8; 3 |] in
      T.approx_equal ~eps:1e-9 (Csr.spmm m x) (T.matmul (to_dense m) x))

let test_row_sums () =
  let m = Csr.create ~n_rows:2 ~n_cols:3 [ (0, 0, 1.); (0, 2, 2.); (1, 1, 4.) ] in
  Alcotest.(check (array (float 0.))) "row sums" [| 3.; 4. |] (Csr.row_sums m)

let test_scale_rows_cols () =
  let m = Csr.create ~n_rows:2 ~n_cols:2 [ (0, 0, 1.); (1, 1, 2.) ] in
  let r = Csr.scale_rows m [| 2.; 3. |] in
  Alcotest.(check (float 0.)) "row scaled" 2. (Csr.get r 0 0);
  Alcotest.(check (float 0.)) "row scaled 2" 6. (Csr.get r 1 1);
  let c = Csr.scale_cols m [| 5.; 7. |] in
  Alcotest.(check (float 0.)) "col scaled" 5. (Csr.get c 0 0);
  Alcotest.(check (float 0.)) "col scaled 2" 14. (Csr.get c 1 1)

let test_symmetric_normalize () =
  (* path graph 0-1-2: after A+I, degrees are [2;3;2]. *)
  let a =
    Csr.create ~n_rows:3 ~n_cols:3
      [ (0, 1, 1.); (1, 0, 1.); (1, 2, 1.); (2, 1, 1.) ]
  in
  let n = Csr.symmetric_normalize a in
  Alcotest.(check (float 1e-9)) "diag 0" 0.5 (Csr.get n 0 0);
  Alcotest.(check (float 1e-9)) "diag 1" (1. /. 3.) (Csr.get n 1 1);
  Alcotest.(check (float 1e-9)) "off 01" (1. /. sqrt 6.) (Csr.get n 0 1);
  (* symmetry *)
  Alcotest.(check (float 1e-12)) "symmetric" (Csr.get n 0 1) (Csr.get n 1 0)

let prop_normalized_rows_bounded =
  QCheck.Test.make ~name:"normalized operator has spectral-safe entries"
    ~count:20 (QCheck.int_bound 10_000) (fun seed ->
      let rng = Rng.create seed in
      let n = 5 + Rng.int rng 10 in
      (* random symmetric 0/1 adjacency *)
      let coo = ref [] in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          if Rng.uniform rng < 0.3 then begin
            coo := (i, j, 1.) :: (j, i, 1.) :: !coo
          end
        done
      done;
      let norm = Csr.symmetric_normalize (Csr.create ~n_rows:n ~n_cols:n !coo) in
      let ok = ref true in
      Csr.iter norm (fun _ _ v -> if v < 0. || v > 1. +. 1e-12 then ok := false);
      !ok)

(* ------------------------------------------------------------------ *)
(* GCN                                                                 *)
(* ------------------------------------------------------------------ *)

let test_spmm_gradcheck () =
  let m = random_csr 77 5 5 0.4 in
  Alcotest.(check bool) "spmm gradient" true
    (V.gradient_check
       (fun x -> V.sum (V.sqr (Gcn.spmm m x)))
       (T.randn (Rng.create 78) [| 5; 3 |]))

let test_gcn_layer_shape () =
  let adj = Csr.symmetric_normalize (Csr.identity 6) in
  let l = Gcn.layer (Rng.create 1) ~adj ~in_dim:4 ~out_dim:2 () in
  let y = Gcn.forward l (V.const (T.zeros [| 6; 4 |])) in
  Alcotest.(check (array int)) "gcn shape" [| 6; 2 |] (V.shape y)

let test_gcn_isolated_node_untouched () =
  (* On an identity graph (self-loops only), the GCN reduces to a
     per-node linear layer: two nodes with equal features must map to
     equal outputs. *)
  let adj = Csr.symmetric_normalize (Csr.create ~n_rows:3 ~n_cols:3 []) in
  let l = Gcn.layer (Rng.create 2) ~adj ~in_dim:2 ~out_dim:2 () in
  let x = T.of_array2 [| [| 1.; 2. |]; [| 1.; 2. |]; [| 0.; 0. |] |] in
  let y = V.data (Gcn.forward l (V.const x)) in
  Alcotest.(check (float 1e-12)) "equal rows equal outputs"
    (T.get2 y 0 0) (T.get2 y 1 0)

let test_gcn_propagates_neighbours () =
  (* On a connected pair, node 0's output must depend on node 1's
     features. *)
  let adj =
    Csr.symmetric_normalize
      (Csr.create ~n_rows:2 ~n_cols:2 [ (0, 1, 1.); (1, 0, 1.) ])
  in
  let l = Gcn.layer (Rng.create 3) ~adj ~in_dim:2 ~out_dim:2 () in
  let x1 = T.of_array2 [| [| 1.; 0. |]; [| 0.; 0. |] |] in
  let x2 = T.of_array2 [| [| 1.; 0. |]; [| 5.; 5. |] |] in
  let y1 = V.data (Gcn.forward l (V.const x1)) in
  let y2 = V.data (Gcn.forward l (V.const x2)) in
  Alcotest.(check bool) "neighbour influence" false
    (abs_float (T.get2 y1 0 0 -. T.get2 y2 0 0) < 1e-12)

let test_gcn_stack () =
  let adj = Csr.symmetric_normalize (Csr.identity 4) in
  let layers = Gcn.stack (Rng.create 4) ~adj ~dims:[ 8; 16; 16; 3 ] () in
  Alcotest.(check int) "three layers" 3 (List.length layers);
  let y = Gcn.forward_stack layers (V.const (T.zeros [| 4; 8 |])) in
  Alcotest.(check (array int)) "stack output" [| 4; 3 |] (V.shape y);
  let n_params = List.length (Gcn.stack_params layers) in
  Alcotest.(check int) "w+b per layer" 6 n_params

let test_gcn_stack_trains () =
  (* A 2-layer GCN on a 4-cycle learns to regress a fixed target. *)
  let adj =
    Csr.symmetric_normalize
      (Csr.create ~n_rows:4 ~n_cols:4
         [ (0, 1, 1.); (1, 0, 1.); (1, 2, 1.); (2, 1, 1.);
           (2, 3, 1.); (3, 2, 1.); (3, 0, 1.); (0, 3, 1.) ])
  in
  let layers = Gcn.stack (Rng.create 5) ~adj ~dims:[ 3; 8; 1 ] () in
  let opt =
    Dco3d_autodiff.Optimizer.adam ~lr:0.05 (Gcn.stack_params layers)
  in
  let x = T.randn (Rng.create 6) [| 4; 3 |] in
  let target = T.of_array2 [| [| 1. |]; [| -1. |]; [| 1. |]; [| -1. |] |] in
  let step () =
    let loss = V.mse (Gcn.forward_stack layers (V.const x)) target in
    let lv = T.get_flat (V.data loss) 0 in
    V.backward loss;
    Dco3d_autodiff.Optimizer.step opt;
    lv
  in
  let first = step () in
  let last = ref first in
  for _ = 1 to 300 do
    last := step ()
  done;
  Alcotest.(check bool) "gcn trains" true (!last < first /. 10.)

let qtest = QCheck_alcotest.to_alcotest

let suites =
  [
    ( "graph.csr",
      [
        Alcotest.test_case "create/get" `Quick test_create_and_get;
        Alcotest.test_case "duplicates sum" `Quick test_duplicates_sum;
        Alcotest.test_case "rejects out-of-range" `Quick test_rejects_out_of_range;
        Alcotest.test_case "identity matvec" `Quick test_identity_matvec;
        Alcotest.test_case "matvec known" `Quick test_matvec_known;
        Alcotest.test_case "row sums" `Quick test_row_sums;
        Alcotest.test_case "scale rows/cols" `Quick test_scale_rows_cols;
        Alcotest.test_case "symmetric normalize (path graph)" `Quick test_symmetric_normalize;
        qtest prop_transpose_involutive;
        qtest prop_spmm_matches_dense;
        qtest prop_normalized_rows_bounded;
      ] );
    ( "graph.gcn",
      [
        Alcotest.test_case "spmm gradcheck" `Quick test_spmm_gradcheck;
        Alcotest.test_case "layer shape" `Quick test_gcn_layer_shape;
        Alcotest.test_case "identity graph = per-node linear" `Quick test_gcn_isolated_node_untouched;
        Alcotest.test_case "neighbour propagation" `Quick test_gcn_propagates_neighbours;
        Alcotest.test_case "stack structure" `Quick test_gcn_stack;
        Alcotest.test_case "stack trains" `Slow test_gcn_stack_trains;
      ] );
  ]
