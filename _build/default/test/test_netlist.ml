(* Tests for the cell library, netlist structure, generators, and the
   text interchange format. *)

module Rng = Dco3d_tensor.Rng
module Cl = Dco3d_netlist.Cell_lib
module Nl = Dco3d_netlist.Netlist
module Gen = Dco3d_netlist.Generator
module Nio = Dco3d_netlist.Netlist_io

(* ------------------------------------------------------------------ *)
(* Cell library                                                        *)
(* ------------------------------------------------------------------ *)

let test_library_lookup () =
  let m = Cl.find "NAND2_X2" in
  Alcotest.(check string) "name" "NAND2_X2" m.Cl.name;
  Alcotest.(check int) "drive" 2 m.Cl.drive;
  Alcotest.(check int) "inputs" 2 m.Cl.n_inputs;
  Alcotest.check_raises "unknown master" Not_found (fun () ->
      ignore (Cl.find "XYZZY_X1"))

let test_drive_scaling_monotone () =
  (* Bigger drives: wider, more input cap, lower output resistance,
     more leakage — the trade-off the signoff optimizer exploits. *)
  List.iter
    (fun klass ->
      let x1 = Cl.master_of klass ~drive:1 and x8 = Cl.master_of klass ~drive:8 in
      Alcotest.(check bool) "wider" true (x8.Cl.width > x1.Cl.width);
      Alcotest.(check bool) "more cap" true (x8.Cl.input_cap > x1.Cl.input_cap);
      Alcotest.(check bool) "stronger" true (x8.Cl.drive_res < x1.Cl.drive_res);
      Alcotest.(check bool) "leakier" true (x8.Cl.leakage > x1.Cl.leakage))
    Cl.combinational

let test_upsize_downsize_chain () =
  let x1 = Cl.master_of Cl.Inv ~drive:1 in
  (match Cl.upsize x1 with
  | Some x2 ->
      Alcotest.(check int) "up to X2" 2 x2.Cl.drive;
      Alcotest.(check (option string)) "down back" (Some "INV_X1")
        (Option.map (fun m -> m.Cl.name) (Cl.downsize x2))
  | None -> Alcotest.fail "X1 must upsize");
  let x8 = Cl.master_of Cl.Inv ~drive:8 in
  Alcotest.(check (option string)) "X8 tops out" None
    (Option.map (fun m -> m.Cl.name) (Cl.upsize x8));
  Alcotest.(check (option string)) "X1 bottoms out" None
    (Option.map (fun m -> m.Cl.name) (Cl.downsize x1))

let test_dff_is_sequential () =
  Alcotest.(check bool) "dff seq" true (Cl.master_of Cl.Dff ~drive:1).Cl.is_seq;
  Alcotest.(check bool) "inv comb" false (Cl.master_of Cl.Inv ~drive:1).Cl.is_seq

let test_macro_master () =
  let m = Cl.macro_master ~name:"RAM0" ~width:8. ~height:6. in
  Alcotest.(check (float 1e-12)) "area" 48. (Cl.area m);
  Alcotest.(check (option string)) "macros don't resize" None
    (Option.map (fun m -> m.Cl.name) (Cl.upsize m))

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let small nl_name = Gen.generate ~scale:0.01 ~seed:7 (Gen.profile nl_name)

let test_profiles_published_sizes () =
  (* Table III sizes at scale 1.0 *)
  let expect = [ ("DMA", 13_000, 961); ("AES", 114_000, 390);
                 ("ECG", 83_000, 1_700); ("LDPC", 39_000, 4_100);
                 ("VGA", 52_000, 184); ("Rocket", 120_000, 379) ] in
  List.iter
    (fun (name, cells, ios) ->
      let p = Gen.profile name in
      Alcotest.(check int) (name ^ " cells") cells p.Gen.n_cells;
      Alcotest.(check int) (name ^ " ios") ios p.Gen.n_ios)
    expect

let test_profile_lookup_case_insensitive () =
  Alcotest.(check string) "lower" "Rocket" (Gen.profile "rocket").Gen.name;
  Alcotest.check_raises "unknown" Not_found (fun () ->
      ignore (Gen.profile "z80"))

let test_generated_netlists_validate () =
  List.iter
    (fun p ->
      let nl = Gen.generate ~scale:0.02 ~seed:11 p in
      match Nl.validate nl with
      | Ok () -> ()
      | Error e -> Alcotest.fail (p.Gen.name ^ ": " ^ e))
    Gen.profiles

let test_generator_deterministic () =
  let a = small "DMA" and b = small "DMA" in
  Alcotest.(check int) "same nets" (Nl.n_nets a) (Nl.n_nets b);
  Alcotest.(check string) "same dump" (Nio.to_string a) (Nio.to_string b)

let test_generator_seed_sensitivity () =
  let a = Gen.generate ~scale:0.01 ~seed:1 (Gen.profile "DMA") in
  let b = Gen.generate ~scale:0.01 ~seed:2 (Gen.profile "DMA") in
  Alcotest.(check bool) "different wiring" false
    (Nio.to_string a = Nio.to_string b)

let test_generated_sizes_scale () =
  let nl = Gen.generate ~scale:0.05 ~seed:3 (Gen.profile "AES") in
  let target = int_of_float (114_000. *. 0.05) in
  Alcotest.(check bool) "cell count near target" true
    (abs (Nl.n_cells nl - target) <= 4 + List.length (Gen.profile "AES").Gen.macros);
  (* nets track cells in these benchmarks *)
  Alcotest.(check bool) "net count plausible" true
    (Nl.n_nets nl > Nl.n_cells nl / 2 && Nl.n_nets nl < 2 * Nl.n_cells nl)

let test_generated_is_acyclic () =
  List.iter
    (fun name ->
      let nl = small name in
      match Nl.levelize nl with
      | Some _ -> ()
      | None -> Alcotest.fail (name ^ " has a combinational cycle"))
    [ "DMA"; "AES"; "ECG"; "LDPC"; "VGA"; "Rocket" ]

let test_logic_depth_profiles () =
  (* LDPC is shallow (6 levels); Rocket is deep (20). The generated
     depth tracks the profile. *)
  let d_ldpc = Nl.logic_depth (small "LDPC") in
  let d_rocket = Nl.logic_depth (small "Rocket") in
  Alcotest.(check bool)
    (Printf.sprintf "ldpc %d < rocket %d" d_ldpc d_rocket)
    true (d_ldpc < d_rocket);
  Alcotest.(check bool) "ldpc <= 6" true (d_ldpc <= 6);
  Alcotest.(check bool) "rocket <= 20" true (d_rocket <= 20)

let test_clock_net () =
  let nl = small "VGA" in
  match Nl.clock_net nl with
  | None -> Alcotest.fail "sequential design must have a clock"
  | Some clk ->
      let n_ff =
        Array.fold_left
          (fun a m -> if m.Cl.is_seq then a + 1 else a)
          0 nl.Nl.masters
      in
      Alcotest.(check int) "clock reaches every FF" n_ff
        (Array.length clk.Nl.sinks);
      Alcotest.(check bool) "excluded from signal nets" true
        (List.for_all (fun n -> not n.Nl.is_clock) (Nl.signal_nets nl))

let test_no_dangling_outputs () =
  (* every cell output should drive a net (generator steal pass) *)
  List.iter
    (fun name ->
      let nl = small name in
      let dangling = ref 0 in
      Array.iteri
        (fun c out -> if out < 0 && not (Nl.is_macro nl c) then ignore c; if out < 0 then incr dangling)
        nl.Nl.cell_fanout;
      let frac = float_of_int !dangling /. float_of_int (Nl.n_cells nl) in
      Alcotest.(check bool)
        (Printf.sprintf "%s dangling %.3f" name frac)
        true (frac < 0.02))
    [ "DMA"; "LDPC"; "Rocket" ]

let test_macros_present () =
  let nl = small "Rocket" in
  let n_macro = ref 0 in
  for c = 0 to Nl.n_cells nl - 1 do
    if Nl.is_macro nl c then incr n_macro
  done;
  Alcotest.(check int) "rocket macros" 4 !n_macro

let test_fanout_histogram_tail () =
  let nl = small "LDPC" in
  let hist = Nl.fanout_histogram nl in
  let max_deg = List.fold_left (fun a (d, _) -> max a d) 0 hist in
  (* hub nets create a heavy tail *)
  Alcotest.(check bool) (Printf.sprintf "max degree %d > 8" max_deg) true
    (max_deg > 8);
  let total = List.fold_left (fun a (_, c) -> a + c) 0 hist in
  Alcotest.(check int) "histogram covers all signal nets" total
    (List.length (Nl.signal_nets nl))

let prop_validate_all_scales =
  QCheck.Test.make ~name:"generated netlists validate at random scales/seeds"
    ~count:15
    QCheck.(pair (int_bound 1000) (int_bound 4))
    (fun (seed, pidx) ->
      let p = List.nth Gen.profiles (pidx mod List.length Gen.profiles) in
      let scale = 0.003 +. (0.01 *. float_of_int (seed mod 5)) in
      let nl = Gen.generate ~scale ~seed p in
      match Nl.validate nl with Ok () -> true | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Text format                                                         *)
(* ------------------------------------------------------------------ *)

let test_io_roundtrip () =
  let nl = small "DMA" in
  match Nio.of_string (Nio.to_string nl) with
  | Error e -> Alcotest.fail e
  | Ok nl' ->
      Alcotest.(check string) "design" nl.Nl.design nl'.Nl.design;
      Alcotest.(check int) "cells" (Nl.n_cells nl) (Nl.n_cells nl');
      Alcotest.(check int) "nets" (Nl.n_nets nl) (Nl.n_nets nl');
      Alcotest.(check int) "ios" (Nl.n_ios nl) (Nl.n_ios nl');
      Alcotest.(check int) "pins" (Nl.n_pins nl) (Nl.n_pins nl');
      (* round-trip again: must be a fixed point *)
      Alcotest.(check string) "fixed point" (Nio.to_string nl)
        (Nio.to_string nl')

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_io_rejects_garbage () =
  (match Nio.of_string "hello world" with
  | Ok _ -> Alcotest.fail "accepted garbage"
  | Error e ->
      Alcotest.(check bool) "mentions magic" true
        (contains_substring e "magic"))

let test_io_rejects_bad_endpoint () =
  let text = "dco3d-netlist-v1\ndesign x\ncell 0 INV_X1\nio 0 in a\nnet 0 n0 signal q77 :\nend\n" in
  match Nio.of_string text with
  | Ok _ -> Alcotest.fail "accepted bad endpoint"
  | Error _ -> ()

let test_io_rejects_unknown_master () =
  let text = "dco3d-netlist-v1\ndesign x\ncell 0 FOO_X9\nend\n" in
  match Nio.of_string text with
  | Ok _ -> Alcotest.fail "accepted unknown master"
  | Error e ->
      Alcotest.(check bool) "mentions master" true
        (contains_substring e "master")

let test_copy_is_deep () =
  let nl = small "DMA" in
  let nl' = Nl.copy nl in
  nl'.Nl.masters.(0) <- Cl.find "INV_X8";
  Alcotest.(check bool) "original untouched" false
    (nl.Nl.masters.(0).Cl.name = "INV_X8"
    && nl'.Nl.masters.(0).Cl.name = "INV_X8"
    && nl.Nl.masters.(0) == nl'.Nl.masters.(0))

let qtest = QCheck_alcotest.to_alcotest

let suites =
  [
    ( "netlist.cell_lib",
      [
        Alcotest.test_case "lookup" `Quick test_library_lookup;
        Alcotest.test_case "drive scaling monotone" `Quick test_drive_scaling_monotone;
        Alcotest.test_case "upsize/downsize chain" `Quick test_upsize_downsize_chain;
        Alcotest.test_case "dff sequential" `Quick test_dff_is_sequential;
        Alcotest.test_case "macro master" `Quick test_macro_master;
      ] );
    ( "netlist.generator",
      [
        Alcotest.test_case "published sizes" `Quick test_profiles_published_sizes;
        Alcotest.test_case "profile lookup" `Quick test_profile_lookup_case_insensitive;
        Alcotest.test_case "all profiles validate" `Quick test_generated_netlists_validate;
        Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
        Alcotest.test_case "seed sensitivity" `Quick test_generator_seed_sensitivity;
        Alcotest.test_case "sizes scale" `Quick test_generated_sizes_scale;
        Alcotest.test_case "acyclic" `Quick test_generated_is_acyclic;
        Alcotest.test_case "depth tracks profile" `Quick test_logic_depth_profiles;
        Alcotest.test_case "clock net" `Quick test_clock_net;
        Alcotest.test_case "no dangling outputs" `Quick test_no_dangling_outputs;
        Alcotest.test_case "macros present" `Quick test_macros_present;
        Alcotest.test_case "fanout tail" `Quick test_fanout_histogram_tail;
        qtest prop_validate_all_scales;
      ] );
    ( "netlist.io",
      [
        Alcotest.test_case "roundtrip" `Quick test_io_roundtrip;
        Alcotest.test_case "rejects garbage" `Quick test_io_rejects_garbage;
        Alcotest.test_case "rejects bad endpoint" `Quick test_io_rejects_bad_endpoint;
        Alcotest.test_case "rejects unknown master" `Quick test_io_rejects_unknown_master;
        Alcotest.test_case "deep copy" `Quick test_copy_is_deep;
      ] );
  ]
