(* Tests for the rectilinear Steiner tree heuristic. *)

module S = Dco3d_route.Steiner
module Rng = Dco3d_tensor.Rng

let p x y = { S.x; y }

let test_trivial_cases () =
  Alcotest.(check int) "empty" 0 (List.length (S.build []));
  Alcotest.(check int) "singleton" 0 (List.length (S.build [ p 3 4 ]));
  Alcotest.(check int) "duplicates merge" 0
    (List.length (S.build [ p 3 4; p 3 4 ]));
  let e = S.build [ p 0 0; p 2 3 ] in
  Alcotest.(check int) "two pins, one edge" 1 (List.length e);
  Alcotest.(check int) "length" 5 (S.length e)

let test_closest_point () =
  let e = (p 0 0, p 10 0) in
  Alcotest.(check int) "projects x" 4 (S.closest_point_on_segment (p 4 7) e).S.x;
  Alcotest.(check int) "clamps y" 0 (S.closest_point_on_segment (p 4 7) e).S.y;
  Alcotest.(check int) "clamps end" 10
    (S.closest_point_on_segment (p 15 2) e).S.x

let test_classic_steiner_win () =
  (* three corners of an L: spanning tree length 2*(3+3) = hmm —
     canonical example: pins at (0,0), (2,0), (1,2).  MST = 2 + (1+2) =
     5; Steiner through (1,0) = 2 + 2 = 4. *)
  let pins = [ p 0 0; p 2 0; p 1 2 ] in
  let st = S.length (S.build pins) in
  let mst = S.spanning_length pins in
  Alcotest.(check int) "mst" 5 mst;
  Alcotest.(check bool) (Printf.sprintf "steiner %d <= 4" st) true (st <= 4)

let connected edges pins =
  (* union-find over edge endpoints; all pins must land in one class *)
  match pins with
  | [] | [ _ ] -> true
  | _ ->
      let pts = Hashtbl.create 64 in
      let id pt =
        match Hashtbl.find_opt pts (pt.S.x, pt.S.y) with
        | Some i -> i
        | None ->
            let i = Hashtbl.length pts in
            Hashtbl.add pts (pt.S.x, pt.S.y) i;
            i
      in
      List.iter (fun (a, b) -> ignore (id a); ignore (id b)) edges;
      List.iter (fun pt -> ignore (id pt)) pins;
      let parent = Array.init (Hashtbl.length pts) Fun.id in
      let rec find i = if parent.(i) = i then i else find parent.(i) in
      let union a b = parent.(find a) <- find b in
      List.iter (fun (a, b) -> union (id a) (id b)) edges;
      match pins with
      | first :: rest ->
          let root = find (id first) in
          List.for_all (fun pt -> find (id pt) = root) rest
      | [] -> true

let prop_steiner_connects_and_beats_mst =
  QCheck.Test.make ~name:"steiner tree connects pins, never beats MST upward"
    ~count:60 (QCheck.int_bound 100_000) (fun seed ->
      let rng = Rng.create seed in
      let n = 2 + Rng.int rng 10 in
      let pins =
        List.init n (fun _ -> p (Rng.int rng 30) (Rng.int rng 30))
      in
      let edges = S.build pins in
      let st = S.length edges in
      let mst = S.spanning_length pins in
      connected edges pins && st <= mst)

let prop_steiner_lower_bound =
  (* the tree can never be shorter than the half-perimeter of the pin
     bounding box *)
  QCheck.Test.make ~name:"steiner >= bbox half-perimeter" ~count:60
    (QCheck.int_bound 100_000) (fun seed ->
      let rng = Rng.create seed in
      let n = 2 + Rng.int rng 10 in
      let pins =
        List.init n (fun _ -> p (Rng.int rng 30) (Rng.int rng 30))
      in
      let xs = List.map (fun q -> q.S.x) pins in
      let ys = List.map (fun q -> q.S.y) pins in
      let span l = List.fold_left max min_int l - List.fold_left min max_int l in
      S.length (S.build pins) >= span xs + span ys)

let qtest = QCheck_alcotest.to_alcotest

let suites =
  [
    ( "route.steiner",
      [
        Alcotest.test_case "trivial cases" `Quick test_trivial_cases;
        Alcotest.test_case "closest point" `Quick test_closest_point;
        Alcotest.test_case "classic 3-pin win" `Quick test_classic_steiner_win;
        qtest prop_steiner_connects_and_beats_mst;
        qtest prop_steiner_lower_bound;
      ] );
  ]
