test/test_graph.ml: Alcotest Array Dco3d_autodiff Dco3d_graph Dco3d_tensor List QCheck QCheck_alcotest
