test/test_steiner.ml: Alcotest Array Dco3d_route Dco3d_tensor Fun Hashtbl List Printf QCheck QCheck_alcotest
