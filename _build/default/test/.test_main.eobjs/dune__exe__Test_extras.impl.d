test/test_extras.ml: Alcotest Array Dco3d_congestion Dco3d_core Dco3d_netlist Dco3d_place Dco3d_route Dco3d_sta Dco3d_tensor Filename Fun Lazy List String Sys
