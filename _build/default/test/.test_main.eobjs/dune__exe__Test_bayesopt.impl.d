test/test_bayesopt.ml: Alcotest Array Dco3d_bayesopt Printf QCheck QCheck_alcotest
