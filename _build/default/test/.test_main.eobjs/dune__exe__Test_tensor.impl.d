test/test_tensor.ml: Alcotest Array Dco3d_tensor Fun QCheck QCheck_alcotest
