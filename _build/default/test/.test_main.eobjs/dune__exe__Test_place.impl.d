test/test_place.ml: Alcotest Array Dco3d_netlist Dco3d_place Dco3d_tensor Float List Printf QCheck QCheck_alcotest
