test/test_netlist.ml: Alcotest Array Dco3d_netlist Dco3d_tensor List Option Printf QCheck QCheck_alcotest String
