test/test_sta.ml: Alcotest Array Dco3d_cts Dco3d_netlist Dco3d_place Dco3d_sta Dco3d_tensor Float List Printf
