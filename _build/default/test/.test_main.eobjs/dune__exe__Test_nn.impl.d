test/test_nn.ml: Alcotest Dco3d_autodiff Dco3d_nn Dco3d_tensor Filename Fun List Printf Sys
