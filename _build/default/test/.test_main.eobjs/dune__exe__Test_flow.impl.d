test/test_flow.ml: Alcotest Array Dco3d_flow Dco3d_netlist Dco3d_place Dco3d_route Dco3d_sta Float Lazy Printf
