test/test_autodiff.ml: Alcotest Array Dco3d_autodiff Dco3d_tensor QCheck QCheck_alcotest
