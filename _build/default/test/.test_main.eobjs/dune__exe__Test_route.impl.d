test/test_route.ml: Alcotest Array Dco3d_netlist Dco3d_place Dco3d_route Dco3d_tensor List Printf
