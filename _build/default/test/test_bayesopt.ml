(* Tests for the Gaussian-process Bayesian optimizer behind the
   Pin-3D+BO baseline. *)

module Bo = Dco3d_bayesopt.Bayesopt

let test_posterior_interpolates () =
  (* with tiny noise the GP must (nearly) interpolate its data *)
  let bo = Bo.create ~noise:1e-6 ~dim:1 () in
  Bo.observe bo [| 0.2 |] 1.0;
  Bo.observe bo [| 0.8 |] (-1.0);
  let m1, s1 = Bo.posterior bo [| 0.2 |] in
  Alcotest.(check (float 1e-2)) "mean at datum" 1.0 m1;
  Alcotest.(check bool) "low variance at datum" true (s1 < 0.1);
  let _, s_far = Bo.posterior bo [| 0.5 |] in
  Alcotest.(check bool) "more uncertain away from data" true (s_far > s1)

let test_posterior_requires_data () =
  let bo = Bo.create ~dim:2 () in
  Alcotest.check_raises "no data" (Invalid_argument "Bayesopt: no observations")
    (fun () -> ignore (Bo.posterior bo [| 0.5; 0.5 |]))

let test_best_tracks_minimum () =
  let bo = Bo.create ~dim:1 () in
  Bo.observe bo [| 0.1 |] 5.;
  Bo.observe bo [| 0.5 |] (-2.);
  Bo.observe bo [| 0.9 |] 3.;
  match Bo.best bo with
  | Some (x, y) ->
      Alcotest.(check (float 0.)) "best y" (-2.) y;
      Alcotest.(check (float 0.)) "best x" 0.5 x.(0)
  | None -> Alcotest.fail "expected data"

let test_suggest_in_unit_cube () =
  let bo = Bo.create ~seed:3 ~dim:4 () in
  for _ = 1 to 3 do
    let x = Bo.suggest bo in
    Alcotest.(check int) "dim" 4 (Array.length x);
    Array.iter
      (fun v -> Alcotest.(check bool) "in cube" true (v >= 0. && v < 1.))
      x;
    Bo.observe bo x (Array.fold_left ( +. ) 0. x)
  done;
  let x = Bo.suggest bo in
  Array.iter
    (fun v -> Alcotest.(check bool) "EI point in cube" true (v >= 0. && v < 1.))
    x

let quadratic x =
  Array.fold_left (fun acc v -> acc +. ((v -. 0.3) ** 2.)) 0. x

let test_minimize_beats_random () =
  (* On a smooth quadratic, 20 BO evaluations should land close to the
     optimum — and at least beat the best of its own 4 random seeds. *)
  let bo = Bo.create ~seed:11 ~dim:2 () in
  let _, y = Bo.minimize ~iterations:20 ~init:4 bo quadratic in
  Alcotest.(check bool) (Printf.sprintf "found %.4f" y) true (y < 0.05)

let test_minimize_deterministic () =
  let run seed =
    let bo = Bo.create ~seed ~dim:2 () in
    snd (Bo.minimize ~iterations:10 bo quadratic)
  in
  Alcotest.(check (float 0.)) "same seed, same result" (run 7) (run 7);
  Alcotest.(check int) "observation count" 10
    (let bo = Bo.create ~seed:7 ~dim:2 () in
     ignore (Bo.minimize ~iterations:10 bo quadratic);
     Bo.n_observations bo)

let prop_ei_progress =
  QCheck.Test.make ~name:"BO improves on its own random initialization"
    ~count:8 (QCheck.int_bound 10_000) (fun seed ->
      let bo = Bo.create ~seed ~dim:3 () in
      (* 4 random + 12 guided *)
      let _, best = Bo.minimize ~iterations:16 ~init:4 bo quadratic in
      (* pure random baseline with the same budget *)
      let bo_rand = Bo.create ~seed:(seed + 1) ~dim:3 () in
      let _, best_rand = Bo.minimize ~iterations:16 ~init:16 bo_rand quadratic in
      (* not strictly better every time, but never catastrophically worse *)
      best <= best_rand +. 0.15)

let qtest = QCheck_alcotest.to_alcotest

let suites =
  [
    ( "bayesopt",
      [
        Alcotest.test_case "posterior interpolates" `Quick test_posterior_interpolates;
        Alcotest.test_case "posterior requires data" `Quick test_posterior_requires_data;
        Alcotest.test_case "best tracks minimum" `Quick test_best_tracks_minimum;
        Alcotest.test_case "suggest in unit cube" `Quick test_suggest_in_unit_cube;
        Alcotest.test_case "minimize quadratic" `Quick test_minimize_beats_random;
        Alcotest.test_case "deterministic" `Quick test_minimize_deterministic;
        qtest prop_ei_progress;
      ] );
  ]
