(* Tests for Table-I parameters, floorplanning, tier partitioning,
   quadratic placement, spreading, and legalization. *)

module T = Dco3d_tensor.Tensor
module Rng = Dco3d_tensor.Rng
module Nl = Dco3d_netlist.Netlist
module Gen = Dco3d_netlist.Generator
module Params = Dco3d_place.Params
module Floorplan = Dco3d_place.Floorplan
module Placement = Dco3d_place.Placement
module Partition = Dco3d_place.Partition
module Placer = Dco3d_place.Placer

let small name = Gen.generate ~scale:0.02 ~seed:5 (Gen.profile name)

(* ------------------------------------------------------------------ *)
(* Params                                                              *)
(* ------------------------------------------------------------------ *)

let test_params_table1_names () =
  (* all 16 ICC2 knob names of Table I appear in the report *)
  let names = List.map fst (Params.to_assoc Params.default) in
  Alcotest.(check int) "16 knobs" 16 (List.length names);
  List.iter
    (fun expected ->
      Alcotest.(check bool) expected true (List.mem expected names))
    [
      "coarse.pin_density_aware"; "coarse.target_routing_density";
      "coarse.adv_node_cong_max_util"; "coarse.congestion_driven_max_util";
      "coarse.cong_restruct_effort"; "coarse.cong_restruct_iterations";
      "coarse.enhanced_low_power_effort"; "coarse.low_power_placement";
      "coarse.max_density"; "legalize.displacement_threshold";
      "initial_place.two_pass"; "initial_drc.global_route_based";
      "flow.enable_ccd"; "initial_place.effort"; "final_place.effort";
      "flow.enable_irap";
    ]

let test_params_vector_roundtrip () =
  let rng = Rng.create 9 in
  for _ = 1 to 50 do
    let p = Params.sample rng in
    let p' = Params.of_vector (Params.to_vector p) in
    Alcotest.(check bool) "roundtrip" true (p = p')
  done

let test_params_of_vector_clamps () =
  let v = Array.make Params.dimensions 7.5 in
  let p = Params.of_vector v in
  Alcotest.(check bool) "clamped density" true (p.Params.max_density <= 1.);
  Alcotest.(check int) "clamped effort" 4 p.Params.cong_restruct_effort;
  Alcotest.check_raises "wrong length"
    (Invalid_argument "Params.of_vector: expected 16 values") (fun () ->
      ignore (Params.of_vector [| 0.5 |]))

let prop_sample_in_ranges =
  QCheck.Test.make ~name:"sampled params stay in Table-I ranges" ~count:100
    (QCheck.int_bound 100_000) (fun seed ->
      let p = Params.sample (Rng.create seed) in
      p.Params.target_routing_density >= 0.
      && p.Params.target_routing_density <= 1.
      && p.Params.cong_restruct_effort >= 0
      && p.Params.cong_restruct_effort <= 4
      && p.Params.cong_restruct_iterations <= 10
      && p.Params.displacement_threshold <= 10
      && p.Params.initial_place_effort <= 2
      && p.Params.final_place_effort <= 2)

(* ------------------------------------------------------------------ *)
(* Floorplan                                                           *)
(* ------------------------------------------------------------------ *)

let test_floorplan_utilization () =
  let nl = small "DMA" in
  let fp = Floorplan.create ~utilization:0.5 nl in
  let die_area = fp.Floorplan.width *. fp.Floorplan.height in
  let util = Nl.total_cell_area nl /. (2. *. die_area) in
  Alcotest.(check bool)
    (Printf.sprintf "utilization %.3f near 0.5" util)
    true
    (abs_float (util -. 0.5) < 0.05)

let test_floorplan_rows_integral () =
  let nl = small "AES" in
  let fp = Floorplan.create nl in
  Alcotest.(check (float 1e-9)) "height = rows * row_height"
    fp.Floorplan.height
    (float_of_int fp.Floorplan.n_rows *. Dco3d_netlist.Cell_lib.row_height)

let test_gcell_mapping () =
  let nl = small "DMA" in
  let fp = Floorplan.create ~gcell_nx:10 ~gcell_ny:10 nl in
  Alcotest.(check (pair int int)) "origin" (0, 0) (Floorplan.gcell_of fp 0. 0.);
  Alcotest.(check (pair int int)) "far corner clamps" (9, 9)
    (Floorplan.gcell_of fp (2. *. fp.Floorplan.width) (2. *. fp.Floorplan.height));
  let cx, cy = Floorplan.gcell_center fp 0 0 in
  let gx, gy = Floorplan.gcell_of fp cx cy in
  Alcotest.(check (pair int int)) "center maps back" (0, 0) (gx, gy)

let test_io_positions_on_boundary () =
  let nl = small "LDPC" in
  let fp = Floorplan.create nl in
  let n = Nl.n_ios nl in
  for i = 0 to n - 1 do
    let x, y = Floorplan.io_position fp ~n_ios:n i in
    let on_edge =
      abs_float x < 1e-9
      || abs_float (x -. fp.Floorplan.width) < 1e-9
      || abs_float y < 1e-9
      || abs_float (y -. fp.Floorplan.height) < 1e-9
    in
    if not on_edge then
      Alcotest.failf "pad %d at (%g, %g) is not on the boundary" i x y
  done

(* ------------------------------------------------------------------ *)
(* Partition                                                           *)
(* ------------------------------------------------------------------ *)

let test_partition_balanced () =
  let nl = small "AES" in
  let tier = Partition.bipartition ~seed:3 nl in
  Alcotest.(check bool) "balance within tolerance" true
    (Partition.balance_of nl tier <= 0.031)

let test_partition_beats_random () =
  let nl = small "AES" in
  let tier = Partition.bipartition ~seed:3 nl in
  let rng = Rng.create 77 in
  let random = Array.init (Nl.n_cells nl) (fun _ -> Rng.int rng 2) in
  let cut = Partition.cut_of nl tier in
  let cut_rand = Partition.cut_of nl random in
  Alcotest.(check bool)
    (Printf.sprintf "fm cut %d < random cut %d" cut cut_rand)
    true (cut < cut_rand)

let prop_partition_valid =
  QCheck.Test.make ~name:"partition is balanced for any seed" ~count:10
    (QCheck.int_bound 1000) (fun seed ->
      let nl = small "DMA" in
      let tier = Partition.bipartition ~seed nl in
      Array.for_all (fun t -> t = 0 || t = 1) tier
      && Partition.balance_of nl tier <= 0.05)

(* ------------------------------------------------------------------ *)
(* Placement metrics                                                   *)
(* ------------------------------------------------------------------ *)

let test_hpwl_decreases_with_qp () =
  (* quadratic placement must reduce wirelength versus random spread *)
  let nl = small "DMA" in
  let fp = Floorplan.create nl in
  let p = Placement.create nl fp in
  let rng = Rng.create 4 in
  for c = 0 to Nl.n_cells nl - 1 do
    p.Placement.x.(c) <- Rng.float rng fp.Floorplan.width;
    p.Placement.y.(c) <- Rng.float rng fp.Floorplan.height
  done;
  let before = Placement.hpwl p in
  Placer.quadratic_place p;
  let after = Placement.hpwl p in
  Alcotest.(check bool)
    (Printf.sprintf "hpwl %.0f -> %.0f" before after)
    true
    (after < 0.7 *. before)

let test_cut_size_matches_3d_nets () =
  let nl = small "DMA" in
  let fp = Floorplan.create nl in
  let p = Placement.create nl fp in
  let tier = Partition.bipartition ~seed:1 nl in
  Array.blit tier 0 p.Placement.tier 0 (Array.length tier);
  let by_pred =
    List.length (List.filter (Placement.net_is_3d p) (Nl.signal_nets nl))
  in
  Alcotest.(check int) "cut = #3D nets" by_pred (Placement.cut_size p);
  Alcotest.(check int) "partition agrees" (Partition.cut_of nl tier)
    (Placement.cut_size p)

let test_density_map_conserves_area () =
  let nl = small "VGA" in
  let fp = Floorplan.create nl in
  let p = Placer.global_place ~seed:2 ~params:Params.default nl fp in
  let nx = 16 and ny = 16 in
  let d0 = Placement.density_map p ~tier:0 ~nx ~ny in
  let d1 = Placement.density_map p ~tier:1 ~nx ~ny in
  let bin_area =
    fp.Floorplan.width /. float_of_int nx *. (fp.Floorplan.height /. float_of_int ny)
  in
  let mapped = (T.sum d0 +. T.sum d1) *. bin_area in
  let total = Nl.total_cell_area nl in
  Alcotest.(check bool)
    (Printf.sprintf "area %.1f vs mapped %.1f" total mapped)
    true
    (abs_float (mapped -. total) /. total < 0.02)

let test_displacement_metrics () =
  let nl = small "DMA" in
  let fp = Floorplan.create nl in
  let p = Placement.create nl fp in
  let q = Placement.copy p in
  Alcotest.(check (float 1e-12)) "zero displacement" 0.
    (Placement.displacement_from p q);
  q.Placement.x.(0) <- q.Placement.x.(0) +. 3.;
  Alcotest.(check (float 1e-9)) "max displacement" 3.
    (Placement.max_displacement_from p q);
  Alcotest.(check (float 1e-9)) "mean displacement"
    (3. /. float_of_int (Nl.n_cells nl))
    (Placement.displacement_from p q)

(* ------------------------------------------------------------------ *)
(* Spreading and legalization                                          *)
(* ------------------------------------------------------------------ *)

let test_spread_reduces_peak () =
  let nl = small "AES" in
  let fp = Floorplan.create nl in
  let p = Placement.create nl fp in
  (* everything at the center: worst case *)
  let peak_before =
    T.max_elt
      (Placement.density_map p ~tier:0 ~nx:fp.Floorplan.gcell_nx
         ~ny:fp.Floorplan.gcell_ny)
  in
  Placer.spread ~iterations:30 ~target_density:0.7 ~inflation:None p;
  let peak_after =
    T.max_elt
      (Placement.density_map p ~tier:0 ~nx:fp.Floorplan.gcell_nx
         ~ny:fp.Floorplan.gcell_ny)
  in
  Alcotest.(check bool)
    (Printf.sprintf "peak %.2f -> %.2f" peak_before peak_after)
    true
    (peak_after < 0.25 *. peak_before)

let test_legalize_produces_legal () =
  List.iter
    (fun name ->
      let nl = small name in
      let fp = Floorplan.create nl in
      let p = Placer.global_place ~seed:1 ~params:Params.default nl fp in
      match Placer.legal_check p with
      | Ok () -> ()
      | Error e -> Alcotest.fail (name ^ ": " ^ e))
    [ "DMA"; "VGA"; "Rocket" ]

let test_legalize_bounded_displacement () =
  let nl = small "DMA" in
  let fp = Floorplan.create nl in
  let p = Placer.global_place ~seed:1 ~params:Params.default nl fp in
  let before = Placement.copy p in
  Placer.legalize p;
  (* legalizing an already-legal placement must barely move cells *)
  Alcotest.(check bool) "stable legalization" true
    (Placement.displacement_from p before < 0.5)

let test_global_place_deterministic () =
  let nl = small "DMA" in
  let fp = Floorplan.create nl in
  let a = Placer.global_place ~seed:9 ~params:Params.default nl fp in
  let b = Placer.global_place ~seed:9 ~params:Params.default nl fp in
  Alcotest.(check bool) "same placement" true
    (a.Placement.x = b.Placement.x && a.Placement.y = b.Placement.y
    && a.Placement.tier = b.Placement.tier)

let test_global_place_seed_diversity () =
  let nl = small "DMA" in
  let fp = Floorplan.create nl in
  let a = Placer.global_place ~seed:1 ~params:Params.default nl fp in
  let b = Placer.global_place ~seed:2 ~params:Params.default nl fp in
  Alcotest.(check bool) "seeds differ" true
    (Placement.displacement_from a b > 0.001)

let test_congestion_params_spread_more () =
  (* the Pin-3D+Cong. knob set must place less densely (more spreading)
     than the default — the mechanism behind Table III's placement-stage
     overflow reductions *)
  let nl = small "AES" in
  let fp = Floorplan.create nl in
  let base = Placer.global_place ~seed:1 ~params:Params.default nl fp in
  let cong = Placer.global_place ~seed:1 ~params:Params.congestion_focused nl fp in
  let nx = fp.Floorplan.gcell_nx and ny = fp.Floorplan.gcell_ny in
  let peak p =
    Float.max
      (T.max_elt (Placement.density_map p ~tier:0 ~nx ~ny))
      (T.max_elt (Placement.density_map p ~tier:1 ~nx ~ny))
  in
  (* compare total squared density (peak is noisy at small scale) *)
  let energy p =
    let d0 = Placement.density_map p ~tier:0 ~nx ~ny in
    let d1 = Placement.density_map p ~tier:1 ~nx ~ny in
    T.dot d0 d0 +. T.dot d1 d1
  in
  Alcotest.(check bool)
    (Printf.sprintf "density energy: cong %.2f <= base %.2f (peaks %.2f, %.2f)"
       (energy cong) (energy base) (peak cong) (peak base))
    true
    (energy cong <= energy base *. 1.02);
  (* and pays wirelength for it *)
  Alcotest.(check bool)
    (Printf.sprintf "hpwl: cong %.0f >= base %.0f"
       (Placement.hpwl cong) (Placement.hpwl base))
    true
    (Placement.hpwl cong >= 0.98 *. Placement.hpwl base)

let qtest = QCheck_alcotest.to_alcotest

let suites =
  [
    ( "place.params",
      [
        Alcotest.test_case "Table-I knob names" `Quick test_params_table1_names;
        Alcotest.test_case "vector roundtrip" `Quick test_params_vector_roundtrip;
        Alcotest.test_case "of_vector clamps" `Quick test_params_of_vector_clamps;
        qtest prop_sample_in_ranges;
      ] );
    ( "place.floorplan",
      [
        Alcotest.test_case "utilization" `Quick test_floorplan_utilization;
        Alcotest.test_case "integral rows" `Quick test_floorplan_rows_integral;
        Alcotest.test_case "gcell mapping" `Quick test_gcell_mapping;
        Alcotest.test_case "pads on boundary" `Quick test_io_positions_on_boundary;
      ] );
    ( "place.partition",
      [
        Alcotest.test_case "balanced" `Quick test_partition_balanced;
        Alcotest.test_case "beats random cut" `Quick test_partition_beats_random;
        qtest prop_partition_valid;
      ] );
    ( "place.metrics",
      [
        Alcotest.test_case "qp reduces hpwl" `Quick test_hpwl_decreases_with_qp;
        Alcotest.test_case "cut = 3D nets" `Quick test_cut_size_matches_3d_nets;
        Alcotest.test_case "density conserves area" `Quick test_density_map_conserves_area;
        Alcotest.test_case "displacement metrics" `Quick test_displacement_metrics;
      ] );
    ( "place.pipeline",
      [
        Alcotest.test_case "spread reduces peak" `Quick test_spread_reduces_peak;
        Alcotest.test_case "legal output" `Quick test_legalize_produces_legal;
        Alcotest.test_case "stable re-legalization" `Quick test_legalize_bounded_displacement;
        Alcotest.test_case "deterministic" `Quick test_global_place_deterministic;
        Alcotest.test_case "seed diversity" `Quick test_global_place_seed_diversity;
        Alcotest.test_case "congestion knobs spread more" `Quick test_congestion_params_spread_more;
      ] );
  ]
