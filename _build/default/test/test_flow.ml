(* Integration tests for the Pin-3D flow emulation and its variants. *)

module Nl = Dco3d_netlist.Netlist
module Gen = Dco3d_netlist.Generator
module Flow = Dco3d_flow.Flow
module Pl = Dco3d_place.Placement

let ctx_env =
  lazy
    (let nl = Gen.generate ~scale:0.03 ~seed:11 (Gen.profile "DMA") in
     Flow.make_context ~gcell_nx:24 ~gcell_ny:24 nl)

let pin3d = lazy (Flow.run_pin3d (Lazy.force ctx_env))

let test_context_fixed_environment () =
  let ctx = Lazy.force ctx_env in
  Alcotest.(check bool) "positive clock" true (ctx.Flow.clock_period_ps > 0.);
  Alcotest.(check bool) "caps provisioned" true
    (ctx.Flow.route_cfg.Dco3d_route.Router.cap_h >= 4
    && ctx.Flow.route_cfg.Dco3d_route.Router.cap_v >= 4)

let test_pin3d_result_consistency () =
  let r = Lazy.force pin3d in
  Alcotest.(check string) "name" "Pin3D" r.Flow.flow_name;
  Alcotest.(check int) "overflow components"
    r.Flow.route.Dco3d_route.Router.overflow_total
    (r.Flow.route.Dco3d_route.Router.overflow_h
    + r.Flow.route.Dco3d_route.Router.overflow_v
    + r.Flow.route.Dco3d_route.Router.overflow_via);
  Alcotest.(check bool) "wns <= 0" true (r.Flow.signoff.Flow.wns_ps <= 0.);
  Alcotest.(check bool) "tns <= wns" true
    (r.Flow.signoff.Flow.tns_ps <= r.Flow.signoff.Flow.wns_ps);
  Alcotest.(check bool) "power positive" true (r.Flow.signoff.Flow.power_mw > 0.);
  Alcotest.(check bool) "signoff WL >= placement HPWL" true
    (r.Flow.signoff.Flow.wirelength_um >= r.Flow.place_stage.Flow.place_hpwl)

let test_signoff_optimize_improves_timing () =
  let ctx = Lazy.force ctx_env in
  let r = Lazy.force pin3d in
  let nl = Nl.copy ctx.Flow.nl in
  let net_is_3d nid =
    Pl.net_is_3d r.Flow.placement ctx.Flow.nl.Nl.nets.(nid)
  in
  let lengths = r.Flow.route.Dco3d_route.Router.net_length in
  let cfg =
    Dco3d_sta.Sta.default_config ~clock_period_ps:ctx.Flow.clock_period_ps
  in
  let before = Dco3d_sta.Sta.analyze cfg nl ~net_length:lengths ~net_is_3d in
  let upsized = Flow.signoff_optimize ctx nl ~net_length:lengths ~net_is_3d in
  let after = Dco3d_sta.Sta.analyze cfg nl ~net_length:lengths ~net_is_3d in
  Alcotest.(check bool) "some ECO work happened" true (upsized > 0);
  Alcotest.(check bool)
    (Printf.sprintf "tns improved (%.1f -> %.1f)" before.Dco3d_sta.Sta.tns
       after.Dco3d_sta.Sta.tns)
    true
    (after.Dco3d_sta.Sta.tns >= before.Dco3d_sta.Sta.tns)

let test_flow_deterministic () =
  let ctx = Lazy.force ctx_env in
  let a = Flow.run_pin3d ctx and b = Flow.run_pin3d ctx in
  Alcotest.(check int) "same overflow" a.Flow.place_stage.Flow.overflow
    b.Flow.place_stage.Flow.overflow;
  Alcotest.(check (float 1e-9)) "same tns" a.Flow.signoff.Flow.tns_ps
    b.Flow.signoff.Flow.tns_ps

let test_custom_placement_entry () =
  (* run_with_placement must accept an externally modified placement and
     produce a full result — the DCO-3D integration path *)
  let ctx = Lazy.force ctx_env in
  let r = Lazy.force pin3d in
  let p = Pl.copy r.Flow.placement in
  (* nudge some cells; the flow must still complete *)
  for c = 0 to min 20 (Nl.n_cells ctx.Flow.nl - 1) do
    p.Pl.x.(c) <- Float.max 0.1 (p.Pl.x.(c) -. 0.2)
  done;
  Dco3d_place.Placer.legalize p;
  let r' = Flow.run_with_placement ctx ~name:"custom" p in
  Alcotest.(check string) "name" "custom" r'.Flow.flow_name;
  Alcotest.(check bool) "routed" true
    (r'.Flow.route.Dco3d_route.Router.wirelength > 0.)

let test_bo_runs_and_reports_best_params () =
  let ctx = Lazy.force ctx_env in
  let r = Flow.run_pin3d_bo ~iterations:5 ctx in
  Alcotest.(check string) "name" "Pin3D + BO" r.Flow.flow_name;
  (* BO's probe objective is placement overflow; its pick should not be
     catastrophically worse than the default *)
  let base = Lazy.force pin3d in
  Alcotest.(check bool)
    (Printf.sprintf "bo %d vs pin3d %d" r.Flow.place_stage.Flow.overflow
       base.Flow.place_stage.Flow.overflow)
    true
    (r.Flow.place_stage.Flow.overflow
    <= (3 * base.Flow.place_stage.Flow.overflow) + 50)

let test_cong_variant_runs () =
  let ctx = Lazy.force ctx_env in
  let r = Flow.run_pin3d_cong ctx in
  Alcotest.(check string) "name" "Pin3D + Cong." r.Flow.flow_name;
  (* the congestion knobs must actually be on *)
  Alcotest.(check bool) "congestion knobs" true
    (r.Flow.params.Dco3d_place.Params.cong_restruct_effort > 0)

let suites =
  [
    ( "flow",
      [
        Alcotest.test_case "context environment" `Quick test_context_fixed_environment;
        Alcotest.test_case "pin3d consistency" `Quick test_pin3d_result_consistency;
        Alcotest.test_case "signoff ECO improves TNS" `Quick test_signoff_optimize_improves_timing;
        Alcotest.test_case "deterministic" `Quick test_flow_deterministic;
        Alcotest.test_case "custom placement entry" `Quick test_custom_placement_entry;
        Alcotest.test_case "BO variant" `Slow test_bo_runs_and_reports_best_params;
        Alcotest.test_case "Cong variant" `Quick test_cong_variant_runs;
      ] );
  ]
