(* Tests for the reverse-mode autodiff tape: every operation's gradient
   is validated against central finite differences, which is the same
   guarantee PyTorch's gradcheck gives the original implementation. *)

module T = Dco3d_tensor.Tensor
module Rng = Dco3d_tensor.Rng
module V = Dco3d_autodiff.Value
module Opt = Dco3d_autodiff.Optimizer

let check_float = Alcotest.(check (float 1e-9))

let test_leaf_kinds () =
  let c = V.const (T.of_array1 [| 1.; 2. |]) in
  let p = V.param (T.of_array1 [| 1.; 2. |]) in
  Alcotest.(check bool) "const no grad" false (V.requires_grad c);
  Alcotest.(check bool) "param grad" true (V.requires_grad p)

let test_simple_chain () =
  (* loss = sum ((2x + 1)^2); dloss/dx = 4(2x+1) *)
  let x = V.param (T.of_array1 [| 1.; -0.5; 3. |]) in
  let loss = V.sum (V.sqr (V.add_scalar 1. (V.scale 2. x))) in
  V.backward loss;
  let g = V.grad x in
  check_float "g0" (4. *. 3.) (T.get_flat g 0);
  check_float "g1" 0. (T.get_flat g 1);
  check_float "g2" (4. *. 7.) (T.get_flat g 2)

let test_grad_accumulates_fanout () =
  (* y = x + x: dy/dx = 2 through two paths *)
  let x = V.param (T.of_array1 [| 5. |]) in
  let loss = V.sum (V.add x x) in
  V.backward loss;
  check_float "fanout grad" 2. (T.get_flat (V.grad x) 0)

let test_backward_requires_scalar () =
  let x = V.param (T.of_array1 [| 1.; 2. |]) in
  Alcotest.check_raises "non-scalar root"
    (Invalid_argument "Value.backward: root must be a scalar") (fun () ->
      V.backward (V.scale 2. x))

let test_zero_grad () =
  let x = V.param (T.of_array1 [| 1. |]) in
  let loss = V.sum x in
  V.backward loss;
  check_float "grad set" 1. (T.get_flat (V.grad x) 0);
  V.zero_grad x;
  check_float "grad cleared" 0. (T.get_flat (V.grad x) 0)

(* ------------------------------------------------------------------ *)
(* Finite-difference checks on every op                                *)
(* ------------------------------------------------------------------ *)

let gc name f x0 = Alcotest.(check bool) name true (V.gradient_check f x0)

let rng = Rng.create 100

let test_gc_elementwise () =
  let x0 = T.randn (Rng.copy rng) [| 7 |] in
  gc "relu" (fun x -> V.sum (V.relu x)) (T.add_scalar 0.3 x0);
  gc "leaky_relu" (fun x -> V.sum (V.leaky_relu 0.1 x)) (T.add_scalar 0.3 x0);
  gc "sigmoid" (fun x -> V.sum (V.sigmoid x)) x0;
  gc "tanh" (fun x -> V.sum (V.tanh_ x)) x0;
  gc "sqr" (fun x -> V.sum (V.sqr x)) x0;
  gc "sqrt" (fun x -> V.sum (V.sqrt_ x)) (T.add_scalar 2. (T.sqr x0));
  gc "neg-mean" (fun x -> V.mean (V.neg x)) x0;
  gc "mul-self" (fun x -> V.sum (V.mul x x)) x0;
  gc "sub" (fun x -> V.sum (V.sub (V.scale 3. x) x)) x0

let test_gc_matmul () =
  let a0 = T.randn (Rng.copy rng) [| 3; 4 |] in
  let b = T.randn (Rng.create 7) [| 4; 2 |] in
  gc "matmul-left" (fun a -> V.sum (V.matmul a (V.const b))) a0;
  let a = T.randn (Rng.create 8) [| 3; 4 |] in
  gc "matmul-right" (fun bv -> V.sum (V.matmul (V.const a) bv))
    (T.randn (Rng.create 9) [| 4; 2 |])

let test_gc_dot_and_losses () =
  let x0 = T.randn (Rng.create 10) [| 6 |] in
  let y = T.randn (Rng.create 11) [| 6 |] in
  gc "dot" (fun x -> V.dot x (V.const y)) x0;
  gc "mse" (fun x -> V.mse x y) x0;
  gc "rmse_frobenius" (fun x -> V.rmse_frobenius x y) x0

let test_gc_bias_rows () =
  let x = T.randn (Rng.create 12) [| 4; 3 |] in
  gc "bias rows (bias)" (fun b ->
      V.sum (V.sqr (V.add_bias_rows (V.const x) b)))
    (T.randn (Rng.create 13) [| 3 |]);
  gc "bias rows (x)" (fun xv ->
      V.sum (V.sqr (V.add_bias_rows xv (V.const (T.of_array1 [| 1.; 2.; 3. |])))))
    x

let test_gc_conv2d () =
  let x0 = T.randn (Rng.create 14) [| 2; 5; 5 |] in
  let w = T.randn (Rng.create 15) [| 3; 2; 3; 3 |] in
  let b = T.randn (Rng.create 16) [| 3 |] in
  gc "conv2d input" (fun x ->
      V.sum (V.sqr (V.conv2d ~pad:1 x ~weight:(V.const w) ~bias:(Some (V.const b)))))
    x0;
  gc "conv2d weight" (fun wv ->
      V.sum (V.sqr (V.conv2d ~pad:1 (V.const x0) ~weight:wv ~bias:None)))
    w;
  gc "conv2d bias" (fun bv ->
      V.sum (V.sqr (V.conv2d ~pad:1 (V.const x0) ~weight:(V.const w) ~bias:(Some bv))))
    b

let test_gc_conv2d_stride () =
  let x0 = T.randn (Rng.create 17) [| 1; 6; 6 |] in
  let w = T.randn (Rng.create 18) [| 2; 1; 3; 3 |] in
  gc "strided conv input" (fun x ->
      V.sum (V.sqr (V.conv2d ~stride:2 ~pad:1 x ~weight:(V.const w) ~bias:None)))
    x0

let test_gc_conv2d_transpose () =
  let x0 = T.randn (Rng.create 19) [| 3; 4; 4 |] in
  let w = T.randn (Rng.create 20) [| 3; 2; 2; 2 |] in
  let b = T.randn (Rng.create 21) [| 2 |] in
  gc "convT input" (fun x ->
      V.sum (V.sqr (V.conv2d_transpose ~stride:2 x ~weight:(V.const w) ~bias:(Some (V.const b)))))
    x0;
  gc "convT weight" (fun wv ->
      V.sum (V.sqr (V.conv2d_transpose ~stride:2 (V.const x0) ~weight:wv ~bias:None)))
    w;
  gc "convT bias" (fun bv ->
      V.sum (V.sqr (V.conv2d_transpose ~stride:2 (V.const x0) ~weight:(V.const w) ~bias:(Some bv))))
    b

let test_gc_pool_upsample () =
  let x0 = T.randn (Rng.create 22) [| 2; 4; 4 |] in
  gc "maxpool" (fun x -> V.sum (V.sqr (V.maxpool2 x))) x0;
  gc "upsample" (fun x -> V.sum (V.sqr (V.upsample_nearest2 x))) x0

let test_gc_concat_slice () =
  let x0 = T.randn (Rng.create 23) [| 2; 3; 3 |] in
  let other = T.randn (Rng.create 24) [| 1; 3; 3 |] in
  gc "concat" (fun x ->
      V.sum (V.sqr (V.concat_channels [ x; V.const other ])))
    x0;
  gc "slice" (fun x -> V.sum (V.sqr (V.slice_channels x 1 1))) x0;
  gc "reshape" (fun x -> V.sum (V.sqr (V.reshape x [| 9; 2 |]))) x0

let test_gc_columns () =
  let x0 = T.randn (Rng.create 25) [| 5; 3 |] in
  gc "columns" (fun x ->
      let cols = V.columns x in
      V.add_list [ V.sum (V.sqr cols.(0)); V.sum (V.sqr cols.(2)) ])
    x0

let test_custom_op () =
  (* custom op computing x^3 with hand-written backward 3x^2 *)
  let x0 = T.of_array1 [| 1.5; -2.; 0.5 |] in
  gc "custom cube" (fun x ->
      let y =
        V.custom
          ~data:(T.map (fun v -> v ** 3.) (V.data x))
          ~parents:[ x ]
          ~backward:(fun g ->
            [ Some (T.map2 (fun gv xv -> gv *. 3. *. xv *. xv) g (V.data x)) ])
      in
      V.sum y)
    x0

(* ------------------------------------------------------------------ *)
(* Property: random DAGs of safe ops pass the gradient check.           *)
(* ------------------------------------------------------------------ *)

let prop_random_graphs =
  QCheck.Test.make ~name:"random op DAGs pass gradient check" ~count:25
    (QCheck.int_bound 100_000) (fun seed ->
      let rng = Rng.create seed in
      let x0 = T.randn rng [| 4; 4 |] in
      let ops =
        [|
          (fun v -> V.tanh_ v);
          (fun v -> V.sigmoid v);
          (fun v -> V.scale 1.3 v);
          (fun v -> V.add_scalar 0.7 v);
          (fun v -> V.mul v v);
          (fun v -> V.leaky_relu 0.2 v);
        |]
      in
      let depth = 1 + Rng.int rng 4 in
      let picks = Array.init depth (fun _ -> Rng.int rng (Array.length ops)) in
      V.gradient_check
        (fun x ->
          let v = Array.fold_left (fun acc k -> ops.(k) acc) x picks in
          V.mean (V.sqr v))
        x0)

(* ------------------------------------------------------------------ *)
(* Optimizers                                                          *)
(* ------------------------------------------------------------------ *)

let quadratic_loss target p = V.mse p (T.of_array1 target)

let test_sgd_converges () =
  let p = V.param (T.of_array1 [| 0.; 0. |]) in
  let opt = Opt.sgd ~lr:0.1 [ p ] in
  for _ = 1 to 200 do
    let loss = quadratic_loss [| 3.; -1. |] p in
    V.backward loss;
    Opt.step opt
  done;
  Alcotest.(check (float 1e-3)) "x0" 3. (T.get_flat (V.data p) 0);
  Alcotest.(check (float 1e-3)) "x1" (-1.) (T.get_flat (V.data p) 1)

let test_sgd_momentum_converges () =
  let p = V.param (T.of_array1 [| 10. |]) in
  let opt = Opt.sgd ~momentum:0.9 ~lr:0.02 [ p ] in
  for _ = 1 to 300 do
    let loss = quadratic_loss [| -4. |] p in
    V.backward loss;
    Opt.step opt
  done;
  Alcotest.(check (float 1e-2)) "momentum converges" (-4.)
    (T.get_flat (V.data p) 0)

let test_adam_converges () =
  let p = V.param (T.of_array1 [| 5.; 5.; 5. |]) in
  let opt = Opt.adam ~lr:0.1 [ p ] in
  for _ = 1 to 500 do
    let loss = quadratic_loss [| 1.; 2.; 3. |] p in
    V.backward loss;
    Opt.step opt
  done;
  let d = V.data p in
  Alcotest.(check (float 1e-2)) "adam x0" 1. (T.get_flat d 0);
  Alcotest.(check (float 1e-2)) "adam x1" 2. (T.get_flat d 1);
  Alcotest.(check (float 1e-2)) "adam x2" 3. (T.get_flat d 2)

let test_weight_decay_shrinks () =
  (* with zero data-gradient, weight decay alone must shrink weights *)
  let p = V.param (T.of_array1 [| 2. |]) in
  let opt = Opt.sgd ~weight_decay:0.1 ~lr:0.5 [ p ] in
  for _ = 1 to 10 do
    (* loss independent of p: backward leaves grad at zero *)
    Opt.step opt
  done;
  Alcotest.(check bool) "decayed" true (T.get_flat (V.data p) 0 < 2.)

let test_clip_grad_norm () =
  let p = V.param (T.of_array1 [| 0.; 0. |]) in
  let opt = Opt.sgd ~lr:1. [ p ] in
  let loss = V.scale 100. (V.sum p) in
  V.backward loss;
  Alcotest.(check (float 1e-6)) "pre-clip norm" (100. *. sqrt 2.) (Opt.grad_norm opt);
  Opt.clip_grad_norm opt 1.;
  Alcotest.(check (float 1e-6)) "post-clip norm" 1. (Opt.grad_norm opt)

let test_lr_accessors () =
  let opt = Opt.sgd ~lr:0.5 [] in
  Alcotest.(check (float 0.)) "lr" 0.5 (Opt.lr opt);
  Opt.set_lr opt 0.25;
  Alcotest.(check (float 0.)) "set_lr" 0.25 (Opt.lr opt)

let qtest = QCheck_alcotest.to_alcotest

let suites =
  [
    ( "autodiff.tape",
      [
        Alcotest.test_case "leaf kinds" `Quick test_leaf_kinds;
        Alcotest.test_case "simple chain rule" `Quick test_simple_chain;
        Alcotest.test_case "fan-out accumulation" `Quick test_grad_accumulates_fanout;
        Alcotest.test_case "scalar root required" `Quick test_backward_requires_scalar;
        Alcotest.test_case "zero_grad" `Quick test_zero_grad;
        Alcotest.test_case "custom op (Eq.6 mechanism)" `Quick test_custom_op;
      ] );
    ( "autodiff.gradcheck",
      [
        Alcotest.test_case "elementwise ops" `Quick test_gc_elementwise;
        Alcotest.test_case "matmul" `Quick test_gc_matmul;
        Alcotest.test_case "dot and losses" `Quick test_gc_dot_and_losses;
        Alcotest.test_case "bias rows" `Quick test_gc_bias_rows;
        Alcotest.test_case "conv2d" `Quick test_gc_conv2d;
        Alcotest.test_case "conv2d strided" `Quick test_gc_conv2d_stride;
        Alcotest.test_case "conv2d transpose" `Quick test_gc_conv2d_transpose;
        Alcotest.test_case "pool and upsample" `Quick test_gc_pool_upsample;
        Alcotest.test_case "concat/slice/reshape" `Quick test_gc_concat_slice;
        Alcotest.test_case "columns" `Quick test_gc_columns;
        qtest prop_random_graphs;
      ] );
    ( "autodiff.optim",
      [
        Alcotest.test_case "sgd converges" `Quick test_sgd_converges;
        Alcotest.test_case "sgd+momentum converges" `Quick test_sgd_momentum_converges;
        Alcotest.test_case "adam converges" `Quick test_adam_converges;
        Alcotest.test_case "weight decay" `Quick test_weight_decay_shrinks;
        Alcotest.test_case "clip grad norm" `Quick test_clip_grad_norm;
        Alcotest.test_case "lr accessors" `Quick test_lr_accessors;
      ] );
  ]
