examples/quickstart.ml: Array Dco3d_cts Dco3d_netlist Dco3d_place Dco3d_route Dco3d_sta Printf
