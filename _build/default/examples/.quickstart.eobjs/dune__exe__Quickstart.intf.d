examples/quickstart.mli:
