examples/flow_compare.ml: Dco3d_core Dco3d_flow Dco3d_netlist Float Format Logs Printf
