examples/spread_3d.ml: Dco3d_core Dco3d_flow Dco3d_netlist Dco3d_route Format List Logs Printf
