examples/spread_3d.mli:
