examples/predict_congestion.ml: Array Dco3d_congestion Dco3d_core Dco3d_flow Dco3d_netlist Dco3d_tensor List Logs Printf
