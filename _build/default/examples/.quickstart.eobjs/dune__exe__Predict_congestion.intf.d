examples/predict_congestion.mli:
