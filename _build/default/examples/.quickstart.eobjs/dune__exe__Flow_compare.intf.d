examples/flow_compare.mli:
