examples/visualize_maps.mli:
