(* Visualize the paper's maps in the terminal: the 7 input feature
   channels (Fig. 2), and the post-route congestion heat maps of both
   dies (Fig. 6), rendered as ASCII art.

   Run with:  dune exec examples/visualize_maps.exe *)

module T = Dco3d_tensor.Tensor
module Gen = Dco3d_netlist.Generator
module Fp = Dco3d_place.Floorplan
module Placer = Dco3d_place.Placer
module Router = Dco3d_route.Router
module Fm = Dco3d_congestion.Feature_maps
module Ascii = Dco3d_congestion.Ascii_map

let () =
  let nl = Gen.generate ~scale:0.2 ~seed:42 (Gen.profile "AES") in
  let fp = Fp.create nl in
  let p = Placer.global_place ~seed:1 ~params:Dco3d_place.Params.default nl fp in
  let f0, f1 = Fm.both_dies p ~nx:fp.Fp.gcell_nx ~ny:fp.Fp.gcell_ny in

  print_endline "== Fig. 2: input feature maps (bottom die | top die) ==";
  Array.iteri
    (fun ch name ->
      Printf.printf "\n-- channel %d: %s --\n" ch name;
      print_endline
        (Ascii.render_pair ~width:64
           ~labels:("bottom", "top")
           (T.channel f0 ch) (T.channel f1 ch)))
    Fm.channel_names;

  print_endline "\n== Fig. 6: post-route congestion (overflow per GCell) ==";
  let cfg = Router.calibrated_config p in
  let r = Router.route ~config:cfg p in
  Printf.printf "overflow %d (%.1f%% of GCells)\n" r.Router.overflow_total
    r.Router.overflow_gcell_pct;
  print_endline
    (Ascii.render_pair ~width:64 ~labels:("bottom", "top")
       r.Router.congestion.(0) r.Router.congestion.(1));

  print_endline "== routing utilization (demand / capacity) ==";
  print_endline
    (Ascii.render_pair ~width:64 ~labels:("bottom", "top")
       r.Router.utilization.(0) r.Router.utilization.(1))
