(* Differentiable 3D cell spreading (Algorithm 2 in miniature).

   Trains a small congestion predictor, then runs the GNN-based
   spreader on a Pin-3D placement: cells move in (x, y) and across
   dies, guided by gradients that flow from the predicted congestion
   through the frozen Siamese UNet and the custom RUDY backward
   (Eq. 6) into the GNN parameters.  The cell spreading decisions are
   exported as TCL constraints, the paper's integration interface.

   Run with:  dune exec examples/spread_3d.exe *)

module Gen = Dco3d_netlist.Generator
module Router = Dco3d_route.Router
module Flow = Dco3d_flow.Flow
module Dataset = Dco3d_core.Dataset
module Predictor = Dco3d_core.Predictor
module Dco = Dco3d_core.Dco
module Tcl = Dco3d_core.Tcl_export

let () =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Info);
  let nl = Gen.generate ~scale:0.25 ~seed:42 (Gen.profile "LDPC") in
  let ctx = Flow.make_context nl in
  (* Algorithm 1: a small predictor for this design *)
  let d =
    Dataset.build ~n_samples:12 ~seed:7 ~route_cfg:ctx.Flow.route_cfg nl
      ctx.Flow.fp
  in
  let train, test = Dataset.split ~test_fraction:0.25 ~seed:1 d in
  let predictor, _ = Predictor.train ~epochs:8 ~seed:3 ~train ~test () in

  (* the incoming 3D global placement (Pin-3D baseline) *)
  let pin3d = Flow.run_pin3d ctx in
  Format.printf "%a@." Flow.pp_result pin3d;

  (* Algorithm 2 *)
  let optimized, report = Dco.optimize ~predictor pin3d.Flow.placement in
  Printf.printf
    "DCO: predicted congestion %.4f -> %.4f | cut %d -> %d | %d cells changed \
     die | mean displacement %.3f um\n"
    report.Dco.predicted_cong_start report.Dco.predicted_cong_end
    report.Dco.cut_start report.Dco.cut_end report.Dco.tier_moves
    report.Dco.mean_displacement;

  (* the same signoff flow consumes the optimized placement *)
  let dco = Flow.run_with_placement ctx ~name:"DCO-3D" optimized in
  Format.printf "%a@." Flow.pp_result dco;
  let delta =
    100.
    *. (float_of_int (pin3d.Flow.place_stage.Flow.overflow
                      - dco.Flow.place_stage.Flow.overflow))
    /. float_of_int (max 1 pin3d.Flow.place_stage.Flow.overflow)
  in
  Printf.printf "overflow delta vs Pin-3D: %+.1f%%\n" (-.delta);

  (* the paper's integration contract: TCL constraints for the tool *)
  let tcl = Tcl.to_string ~only_moved_from:pin3d.Flow.placement optimized in
  let moved = List.length (Tcl.parse_locations tcl) in
  Tcl.write ~only_moved_from:pin3d.Flow.placement optimized "dco3d_spread.tcl";
  Printf.printf "wrote dco3d_spread.tcl (%d cell constraints)\n" moved
