(* Flow comparison (one Table-III block in miniature).

   Runs the three baselines of the paper — Pin-3D, Pin-3D with
   congestion-driven placement, Pin-3D with Bayesian optimization over
   the Table-I knobs — plus the full DCO-3D flow on one design, and
   prints a Table-III-style block.

   Run with:  dune exec examples/flow_compare.exe *)

module Gen = Dco3d_netlist.Generator
module Flow = Dco3d_flow.Flow
module Dataset = Dco3d_core.Dataset
module Predictor = Dco3d_core.Predictor
module Dco = Dco3d_core.Dco

let () =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Warning);
  let nl = Gen.generate ~scale:0.2 ~seed:42 (Gen.profile "AES") in
  Printf.printf "%s\n%!" (Dco3d_netlist.Netlist.stats nl);
  let ctx = Flow.make_context nl in
  Printf.printf "clock period: %.1f ps (fixed across all flows)\n%!"
    ctx.Flow.clock_period_ps;

  let pin3d = Flow.run_pin3d ctx in
  Format.printf "%a@." Flow.pp_result pin3d;
  let cong = Flow.run_pin3d_cong ctx in
  Format.printf "%a@." Flow.pp_result cong;
  let bo = Flow.run_pin3d_bo ~iterations:10 ctx in
  Format.printf "%a@." Flow.pp_result bo;

  (* DCO-3D: predictor + differentiable spreading on the Pin-3D start *)
  let d =
    Dataset.build ~n_samples:12 ~seed:7 ~route_cfg:ctx.Flow.route_cfg nl
      ctx.Flow.fp
  in
  let train, test = Dataset.split ~test_fraction:0.25 ~seed:1 d in
  let predictor, _ = Predictor.train ~epochs:8 ~seed:3 ~train ~test () in
  let optimized, _ = Dco.optimize ~predictor pin3d.Flow.placement in
  let dco = Flow.run_with_placement ctx ~name:"DCO-3D (ours)" optimized in
  Format.printf "%a@." Flow.pp_result dco;

  let pct now base =
    100. *. (now -. base) /. Float.max 1e-9 (abs_float base)
  in
  Printf.printf "\nDCO-3D vs Pin-3D: overflow %+.1f%%, TNS %+.1f%%, power %+.1f%%\n"
    (pct (float_of_int dco.Flow.place_stage.Flow.overflow)
       (float_of_int pin3d.Flow.place_stage.Flow.overflow))
    (pct dco.Flow.signoff.Flow.tns_ps pin3d.Flow.signoff.Flow.tns_ps *. -1.)
    (pct dco.Flow.signoff.Flow.power_mw pin3d.Flow.signoff.Flow.power_mw)
