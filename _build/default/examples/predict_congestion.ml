(* Congestion prediction (Algorithm 1 / Fig. 5 in miniature).

   Builds a dataset of diverse placements for one design, trains the
   Siamese UNet, and reports the paper's evaluation: NRMSE / SSIM
   distributions on held-out layouts, plus the comparison against the
   classical RUDY estimator (Fig. 5c) — the learned model should
   correlate with post-route congestion far better than RUDY does.

   Run with:  dune exec examples/predict_congestion.exe *)

module T = Dco3d_tensor.Tensor
module Gen = Dco3d_netlist.Generator
module Flow = Dco3d_flow.Flow
module Metrics = Dco3d_congestion.Metrics
module Dataset = Dco3d_core.Dataset
module Predictor = Dco3d_core.Predictor

let () =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Info);
  let nl = Gen.generate ~scale:0.15 ~seed:42 (Gen.profile "AES") in
  let ctx = Flow.make_context nl in
  Printf.printf "building dataset (%s)...\n%!"
    nl.Dco3d_netlist.Netlist.design;
  let d =
    Dataset.build ~n_samples:16 ~seed:7 ~route_cfg:ctx.Flow.route_cfg nl
      ctx.Flow.fp
  in
  let train, test = Dataset.split ~test_fraction:0.25 ~seed:1 d in
  Printf.printf "training (%d train layouts x8 augmented, %d test)...\n%!"
    (Array.length train.Dataset.samples)
    (Array.length test.Dataset.samples);
  let predictor, report =
    Predictor.train ~epochs:10 ~input_hw:32 ~seed:3 ~train ~test ()
  in
  print_endline "epoch  train-loss  test-loss";
  Array.iteri
    (fun e l ->
      Printf.printf "%5d  %10.4f  %9.4f\n" (e + 1) l
        report.Predictor.test_loss.(e))
    report.Predictor.train_loss;

  (* Fig. 5b: metric distribution over the test set *)
  let metrics = Predictor.evaluate predictor test in
  let nrmse = List.map fst metrics and ssim = List.map snd metrics in
  Printf.printf "\nNRMSE < 0.2: %.0f%% of test maps (paper: >85%%)\n"
    (100. *. Metrics.fraction_below 0.2 nrmse);
  Printf.printf "SSIM  > 0.8: %.0f%% of test maps (paper: >85%%)\n"
    (100. *. Metrics.fraction_above 0.8 ssim);

  (* Fig. 5c: our prediction vs the RUDY estimator on one test sample *)
  match Array.to_list test.Dataset.samples with
  | [] -> print_endline "no test samples"
  | s :: _ ->
      let pred, _ = Predictor.predict predictor s.Dataset.f_bottom s.Dataset.f_top in
      let truth = s.Dataset.c_bottom in
      (* channel 2 + 3 of the features are the 2D/3D RUDY maps *)
      let rudy =
        T.add (T.channel s.Dataset.f_bottom 2) (T.channel s.Dataset.f_bottom 3)
      in
      let n01 = Metrics.normalize01 in
      Printf.printf
        "\nFig. 5c (bottom die, values normalized to [0,1]):\n\
        \  ours vs ground truth: SSIM %.3f, pearson %.3f\n\
        \  RUDY vs ground truth: SSIM %.3f, pearson %.3f\n"
        (Metrics.ssim (n01 pred) (n01 truth))
        (Metrics.pearson pred truth)
        (Metrics.ssim (n01 rudy) (n01 truth))
        (Metrics.pearson rudy truth)
