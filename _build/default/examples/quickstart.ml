(* Quickstart: generate a benchmark, floorplan it, run the pseudo-3D
   placement, route it, and report the numbers a physical designer
   would look at first.

   Run with:  dune exec examples/quickstart.exe *)

module Nl = Dco3d_netlist.Netlist
module Gen = Dco3d_netlist.Generator
module Fp = Dco3d_place.Floorplan
module Pl = Dco3d_place.Placement
module Placer = Dco3d_place.Placer
module Params = Dco3d_place.Params
module Router = Dco3d_route.Router
module Sta = Dco3d_sta.Sta
module Cts = Dco3d_cts.Cts

let () =
  (* 1. A DMA-profile netlist at 20 % of the published size. *)
  let nl = Gen.generate ~scale:0.2 ~seed:42 (Gen.profile "DMA") in
  print_endline (Nl.stats nl);

  (* 2. Floorplan two face-to-face dies at 55 % utilization. *)
  let fp = Fp.create nl in
  Printf.printf "die: %.1f x %.1f um, %d rows, %dx%d GCells\n"
    fp.Fp.width fp.Fp.height fp.Fp.n_rows fp.Fp.gcell_nx fp.Fp.gcell_ny;

  (* 3. 3D global placement (tier partitioning + quadratic placement +
        spreading + legalization). *)
  let p = Placer.global_place ~seed:1 ~params:Params.default nl fp in
  Printf.printf "placement: HPWL %.1f um, cut size %d, tier balance %.3f\n"
    (Pl.hpwl p) (Pl.cut_size p) (Pl.tier_balance p);
  (match Placer.legal_check p with
  | Ok () -> print_endline "placement is legal"
  | Error e -> Printf.printf "legalization issue: %s\n" e);

  (* 4. Global routing on a fabric calibrated for this design. *)
  let config = Router.calibrated_config p in
  let r = Router.route ~config p in
  Printf.printf
    "routing: overflow %d (H %d / V %d / via %d), %.1f%% GCells overflowed, \
     WL %.1f um\n"
    r.Router.overflow_total r.Router.overflow_h r.Router.overflow_v
    r.Router.overflow_via r.Router.overflow_gcell_pct r.Router.wirelength;

  (* 5. Clock tree and signoff timing/power. *)
  let clock = Cts.synthesize p in
  Printf.printf "CTS: %d sinks, %d buffers, %.1f um clock wire, skew %.1f ps\n"
    clock.Cts.n_sinks clock.Cts.n_buffers clock.Cts.wirelength clock.Cts.skew_ps;
  let net_is_3d nid = Pl.net_is_3d p nl.Nl.nets.(nid) in
  let period =
    Sta.suggest_period nl ~net_length:r.Router.net_length ~net_is_3d
  in
  let cfg = Sta.default_config ~clock_period_ps:period in
  let t = Sta.analyze cfg nl ~net_length:r.Router.net_length ~net_is_3d in
  let pw =
    Sta.estimate_power cfg nl ~net_length:r.Router.net_length
      ~clock_wirelength:clock.Cts.wirelength ~clock_buffers:clock.Cts.n_buffers
      ()
  in
  Printf.printf
    "timing @ %.0f ps clock: WNS %.2f ps, TNS %.1f ps (%d violating endpoints)\n"
    period t.Sta.wns t.Sta.tns t.Sta.n_violations;
  Printf.printf "power: %.3f mW (switching %.3f, internal %.3f, leakage %.3f, clock %.3f)\n"
    pw.Sta.total_mw pw.Sta.switching_mw pw.Sta.internal_mw pw.Sta.leakage_mw
    pw.Sta.clock_mw
