(* Tests for the auxiliary user-facing utilities: ASCII map rendering,
   dataset persistence, and critical-path tracing. *)

module T = Dco3d_tensor.Tensor
module Rng = Dco3d_tensor.Rng
module Nl = Dco3d_netlist.Netlist
module Gen = Dco3d_netlist.Generator
module Ascii = Dco3d_congestion.Ascii_map
module Sta = Dco3d_sta.Sta
module Fp = Dco3d_place.Floorplan
module Pl = Dco3d_place.Placement
module Dataset = Dco3d_core.Dataset

(* ------------------------------------------------------------------ *)
(* Ascii_map                                                           *)
(* ------------------------------------------------------------------ *)

let test_render_dimensions () =
  let m = T.zeros [| 4; 6 |] in
  let out = Ascii.render m in
  let lines = String.split_on_char '\n' out |> List.filter (fun l -> l <> "") in
  (* 4 rows + 2 border lines *)
  Alcotest.(check int) "line count" 6 (List.length lines);
  List.iter
    (fun l -> Alcotest.(check int) "width" 8 (String.length l))
    lines

let test_render_intensity_order () =
  let m = T.of_array2 [| [| 0.; 1. |] |] in
  let out = Ascii.render ~palette:" X" m in
  (* low maps to ' ', high to 'X' *)
  Alcotest.(check bool) "contains X" true (String.contains out 'X');
  let row = List.nth (String.split_on_char '\n' out) 1 in
  Alcotest.(check char) "low cell blank" ' ' row.[1];
  Alcotest.(check char) "high cell marked" 'X' row.[2]

let test_render_constant_map () =
  let m = T.full [| 3; 3 |] 7. in
  (* must not divide by zero *)
  let out = Ascii.render m in
  Alcotest.(check bool) "rendered" true (String.length out > 0)

let test_render_downsamples_wide_maps () =
  let m = T.zeros [| 10; 200 |] in
  let out = Ascii.render ~width:40 m in
  let row = List.nth (String.split_on_char '\n' out) 1 in
  Alcotest.(check bool) "bounded width" true (String.length row <= 42)

let test_render_pair_shares_scale () =
  let a = T.full [| 2; 2 |] 0. in
  let b = T.full [| 2; 2 |] 10. in
  let out = Ascii.render_pair ~labels:("L", "R") a b in
  Alcotest.(check bool) "labels present" true
    (String.length out > 0
    && String.contains out 'L'
    && String.contains out 'R');
  (* the all-zero map must render as the lowest palette char, since the
     scale is shared with the all-10 map *)
  Alcotest.(check bool) "left is blank under shared scale" true
    (String.contains out ' ')

let test_render_requires_rank2 () =
  Alcotest.check_raises "rank 3"
    (Invalid_argument "Ascii_map.render: rank-2 map expected") (fun () ->
      ignore (Ascii.render (T.zeros [| 1; 2; 2 |])))

(* ------------------------------------------------------------------ *)
(* Dataset persistence                                                 *)
(* ------------------------------------------------------------------ *)

let test_dataset_save_load_roundtrip () =
  let nl = Gen.generate ~scale:0.01 ~seed:5 (Gen.profile "DMA") in
  let fp = Fp.create ~gcell_nx:12 ~gcell_ny:12 nl in
  let base =
    Dco3d_place.Placer.global_place ~seed:1 ~params:Dco3d_place.Params.default
      nl fp
  in
  let route_cfg = Dco3d_route.Router.calibrated_config base in
  let d = Dataset.build ~n_samples:2 ~seed:3 ~route_cfg nl fp in
  let path = Filename.temp_file "dco3d_ds" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Dataset.save d path;
      let d' = Dataset.load path in
      Alcotest.(check string) "design" d.Dataset.design d'.Dataset.design;
      Alcotest.(check int) "samples" 2 (Array.length d'.Dataset.samples);
      Alcotest.(check bool) "features identical" true
        (T.approx_equal d.Dataset.samples.(0).Dataset.f_bottom
           d'.Dataset.samples.(0).Dataset.f_bottom);
      Alcotest.(check bool) "labels identical" true
        (T.approx_equal d.Dataset.samples.(1).Dataset.c_top
           d'.Dataset.samples.(1).Dataset.c_top);
      Alcotest.(check bool) "params preserved" true
        (d.Dataset.samples.(0).Dataset.params
        = d'.Dataset.samples.(0).Dataset.params))

(* substring check, used by the load-error tests *)
let astr_contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_dataset_load_rejects_garbage () =
  let path = Filename.temp_file "dco3d_ds" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc "garbage-not-a-dataset";
      close_out oc;
      (match Dataset.load path with
      | _ -> Alcotest.fail "expected Load_error"
      | exception Dataset.Load_error msg ->
          Alcotest.(check bool) "names the file" true
            (astr_contains msg path);
          Alcotest.(check bool) "names the cause" true
            (astr_contains msg "bad file magic")))

let test_dataset_load_truncated () =
  let nl = Gen.generate ~scale:0.01 ~seed:5 (Gen.profile "DMA") in
  let fp = Fp.create ~gcell_nx:12 ~gcell_ny:12 nl in
  let base =
    Dco3d_place.Placer.global_place ~seed:1 ~params:Dco3d_place.Params.default
      nl fp
  in
  let route_cfg = Dco3d_route.Router.calibrated_config base in
  let d = Dataset.build ~n_samples:1 ~seed:3 ~route_cfg nl fp in
  let path = Filename.temp_file "dco3d_ds" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Dataset.save d path;
      (* keep the magic plus a sliver of the Marshal image *)
      let ic = open_in_bin path in
      let keep = min (in_channel_length ic) 40 in
      let prefix = really_input_string ic keep in
      close_in ic;
      let oc = open_out_bin path in
      output_string oc prefix;
      close_out oc;
      match Dataset.load path with
      | _ -> Alcotest.fail "expected Load_error on truncated file"
      | exception Dataset.Load_error msg ->
          Alcotest.(check bool)
            (Printf.sprintf "error %S names the file" msg)
            true (astr_contains msg path))

let test_dataset_load_missing_file () =
  match Dataset.load "/nonexistent/dco3d-no-such-dataset.bin" with
  | _ -> Alcotest.fail "expected Load_error on missing file"
  | exception Dataset.Load_error msg ->
      Alcotest.(check bool) "names the file" true
        (astr_contains msg "no-such-dataset")

(* ------------------------------------------------------------------ *)
(* Critical path                                                       *)
(* ------------------------------------------------------------------ *)

let test_critical_path_structure () =
  let nl = Gen.generate ~scale:0.02 ~seed:5 (Gen.profile "Rocket") in
  let fp = Fp.create nl in
  let p =
    Dco3d_place.Placer.global_place ~seed:1 ~params:Dco3d_place.Params.default
      nl fp
  in
  let lengths = Array.make (Nl.n_nets nl) 1. in
  let net_is_3d nid = Pl.net_is_3d p nl.Nl.nets.(nid) in
  let cfg = Sta.default_config ~clock_period_ps:500. in
  let t = Sta.analyze cfg nl ~net_length:lengths ~net_is_3d in
  let path = Sta.critical_path nl t in
  Alcotest.(check bool) "non-empty" true (path <> []);
  (* arrivals must be non-decreasing along the path *)
  let arr = List.map (fun c -> t.Sta.cell_arrival.(c)) path in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-9 && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "arrivals non-decreasing" true (monotone arr);
  (* the endpoint is the globally latest cell *)
  let last = List.nth path (List.length path - 1) in
  Array.iteri
    (fun c a ->
      if a > t.Sta.cell_arrival.(last) +. 1e-9 then
        Alcotest.failf "cell %d arrives later than path endpoint" c)
    t.Sta.cell_arrival

let test_critical_path_singleton_design () =
  (* one cell: the path is that cell *)
  let m = Dco3d_netlist.Cell_lib.find "INV_X1" in
  let nl =
    {
      Nl.design = "one";
      masters = [| m |];
      nets =
        [|
          { Nl.net_id = 0; net_name = "n"; driver = Nl.Cell 0;
            sinks = [| Nl.Io 0 |]; is_clock = false };
        |];
      ios = [| { Nl.io_id = 0; io_name = "o"; dir = Nl.Out } |];
      cell_fanin = [| [||] |];
      cell_fanout = [| 0 |];
    }
  in
  let cfg = Sta.default_config ~clock_period_ps:1000. in
  let t =
    Sta.analyze cfg nl ~net_length:[| 1. |] ~net_is_3d:(fun _ -> false)
  in
  Alcotest.(check (list int)) "single-cell path" [ 0 ]
    (Sta.critical_path nl t)

(* ------------------------------------------------------------------ *)
(* Timing reports                                                      *)
(* ------------------------------------------------------------------ *)

let report_env =
  lazy
    (let nl = Gen.generate ~scale:0.02 ~seed:5 (Gen.profile "DMA") in
     let fp = Fp.create nl in
     let p =
       Dco3d_place.Placer.global_place ~seed:1
         ~params:Dco3d_place.Params.default nl fp
     in
     let lengths = Array.make (Nl.n_nets nl) 1. in
     let net_is_3d nid = Pl.net_is_3d p nl.Nl.nets.(nid) in
     let cfg = Sta.default_config ~clock_period_ps:200. in
     (nl, Sta.analyze cfg nl ~net_length:lengths ~net_is_3d))

let test_report_summary () =
  let _, t = Lazy.force report_env in
  let s = Dco3d_sta.Report.timing_summary t in
  Alcotest.(check bool) "mentions WNS" true
    (String.length s > 0 && String.sub s 0 4 = "WNS:")

let test_report_critical_path () =
  let nl, t = Lazy.force report_env in
  let s = Dco3d_sta.Report.critical_path_report nl t in
  let lines = String.split_on_char '
' s in
  (* header + column titles + at least one stage *)
  Alcotest.(check bool) "has stages" true (List.length lines >= 3);
  let contains hay needle =
    let n = String.length hay and m = String.length needle in
    let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
    m = 0 || go 0
  in
  Alcotest.(check bool) "names masters" true
    (List.exists
       (fun l ->
         List.exists (contains l) [ "_X1"; "_X2"; "_X4"; "_X8" ])
       lines)

let test_report_histogram () =
  let _, t = Lazy.force report_env in
  let s = Dco3d_sta.Report.histogram ~bins:5 t in
  let bars = String.split_on_char '
' s |> List.filter (fun l -> l <> "") in
  (* title + 5 bins *)
  Alcotest.(check int) "bins" 6 (List.length bars)

let suites =
  [
    ( "extras.ascii_map",
      [
        Alcotest.test_case "dimensions" `Quick test_render_dimensions;
        Alcotest.test_case "intensity order" `Quick test_render_intensity_order;
        Alcotest.test_case "constant map" `Quick test_render_constant_map;
        Alcotest.test_case "downsamples wide maps" `Quick test_render_downsamples_wide_maps;
        Alcotest.test_case "pair shares scale" `Quick test_render_pair_shares_scale;
        Alcotest.test_case "requires rank 2" `Quick test_render_requires_rank2;
      ] );
    ( "extras.dataset_io",
      [
        Alcotest.test_case "save/load roundtrip" `Quick test_dataset_save_load_roundtrip;
        Alcotest.test_case "rejects garbage" `Quick test_dataset_load_rejects_garbage;
        Alcotest.test_case "rejects truncated" `Quick test_dataset_load_truncated;
        Alcotest.test_case "rejects missing" `Quick test_dataset_load_missing_file;
      ] );
    ( "extras.critical_path",
      [
        Alcotest.test_case "structure" `Quick test_critical_path_structure;
        Alcotest.test_case "singleton design" `Quick test_critical_path_singleton_design;
      ] );
    ( "extras.report",
      [
        Alcotest.test_case "summary" `Quick test_report_summary;
        Alcotest.test_case "critical path report" `Quick test_report_critical_path;
        Alcotest.test_case "histogram" `Quick test_report_histogram;
      ] );
  ]
