(* Tests for static timing analysis, power estimation, CTS, and the
   Table-II node features. *)

module T = Dco3d_tensor.Tensor
module Nl = Dco3d_netlist.Netlist
module Gen = Dco3d_netlist.Generator
module Fp = Dco3d_place.Floorplan
module Pl = Dco3d_place.Placement
module Placer = Dco3d_place.Placer
module Sta = Dco3d_sta.Sta
module Cts = Dco3d_cts.Cts

let placed name =
  let nl = Gen.generate ~scale:0.02 ~seed:5 (Gen.profile name) in
  let fp = Fp.create nl in
  Placer.global_place ~seed:1 ~params:Dco3d_place.Params.default nl fp

(* HPWL-based net lengths for pre-route timing *)
let hpwl_lengths (p : Pl.t) =
  let lengths = Array.make (Nl.n_nets p.Pl.nl) 0.5 in
  List.iter
    (fun (net : Nl.net) ->
      let x0, y0, x1, y1 = Pl.net_bbox p net in
      lengths.(net.Nl.net_id) <- Float.max 0.5 (x1 -. x0 +. (y1 -. y0)))
    (Nl.signal_nets p.Pl.nl);
  lengths

let is_3d_fn (p : Pl.t) nid = Pl.net_is_3d p p.Pl.nl.Nl.nets.(nid)

let test_timing_basic_sanity () =
  let p = placed "DMA" in
  let lengths = hpwl_lengths p in
  let cfg = Sta.default_config ~clock_period_ps:300. in
  let t = Sta.analyze cfg p.Pl.nl ~net_length:lengths ~net_is_3d:(is_3d_fn p) in
  Alcotest.(check bool) "critical delay positive" true (t.Sta.critical_delay > 0.);
  Alcotest.(check bool) "wns <= 0" true (t.Sta.wns <= 0.);
  Alcotest.(check bool) "tns <= wns" true (t.Sta.tns <= t.Sta.wns);
  if t.Sta.n_violations = 0 then begin
    Alcotest.(check (float 0.)) "no violations -> wns 0" 0. t.Sta.wns;
    Alcotest.(check (float 0.)) "no violations -> tns 0" 0. t.Sta.tns
  end

let test_tight_clock_creates_violations () =
  let p = placed "DMA" in
  let lengths = hpwl_lengths p in
  let loose = Sta.default_config ~clock_period_ps:100000. in
  let t_loose = Sta.analyze loose p.Pl.nl ~net_length:lengths ~net_is_3d:(is_3d_fn p) in
  Alcotest.(check int) "loose clock meets timing" 0 t_loose.Sta.n_violations;
  let tight = Sta.default_config ~clock_period_ps:(0.5 *. t_loose.Sta.critical_delay) in
  let t_tight = Sta.analyze tight p.Pl.nl ~net_length:lengths ~net_is_3d:(is_3d_fn p) in
  Alcotest.(check bool) "tight clock violates" true (t_tight.Sta.n_violations > 0);
  Alcotest.(check bool) "wns negative" true (t_tight.Sta.wns < 0.)

let test_longer_wires_hurt_timing () =
  (* the congestion-detour -> timing coupling of the paper *)
  let p = placed "DMA" in
  let lengths = hpwl_lengths p in
  let detoured = Array.map (fun l -> 1.5 *. l) lengths in
  let cfg = Sta.default_config ~clock_period_ps:300. in
  let base = Sta.analyze cfg p.Pl.nl ~net_length:lengths ~net_is_3d:(is_3d_fn p) in
  let slow = Sta.analyze cfg p.Pl.nl ~net_length:detoured ~net_is_3d:(is_3d_fn p) in
  Alcotest.(check bool)
    (Printf.sprintf "critical %.1f < detoured %.1f" base.Sta.critical_delay
       slow.Sta.critical_delay)
    true
    (slow.Sta.critical_delay > base.Sta.critical_delay)

let test_suggest_period_tight () =
  let p = placed "DMA" in
  let lengths = hpwl_lengths p in
  let period = Sta.suggest_period p.Pl.nl ~net_length:lengths ~net_is_3d:(is_3d_fn p) in
  let cfg = Sta.default_config ~clock_period_ps:period in
  let t = Sta.analyze cfg p.Pl.nl ~net_length:lengths ~net_is_3d:(is_3d_fn p) in
  Alcotest.(check bool) "suggested period creates work" true
    (t.Sta.n_violations > 0)

let test_upsizing_improves_delay () =
  (* upsizing every cell on a fixed netlist shortens the critical path
     (stronger drivers), the signoff optimizer's lever *)
  let p = placed "DMA" in
  let lengths = hpwl_lengths p in
  let cfg = Sta.default_config ~clock_period_ps:300. in
  let before = Sta.analyze cfg p.Pl.nl ~net_length:lengths ~net_is_3d:(is_3d_fn p) in
  let nl' = Nl.copy p.Pl.nl in
  for c = 0 to Nl.n_cells nl' - 1 do
    match Dco3d_netlist.Cell_lib.upsize nl'.Nl.masters.(c) with
    | Some m -> nl'.Nl.masters.(c) <- m
    | None -> ()
  done;
  let after = Sta.analyze cfg nl' ~net_length:lengths ~net_is_3d:(is_3d_fn p) in
  Alcotest.(check bool)
    (Printf.sprintf "critical %.1f -> %.1f" before.Sta.critical_delay
       after.Sta.critical_delay)
    true
    (after.Sta.critical_delay < before.Sta.critical_delay)

(* ------------------------------------------------------------------ *)
(* Power                                                               *)
(* ------------------------------------------------------------------ *)

let test_power_components_positive () =
  let p = placed "VGA" in
  let lengths = hpwl_lengths p in
  let cfg = Sta.default_config ~clock_period_ps:300. in
  let pw = Sta.estimate_power cfg p.Pl.nl ~net_length:lengths
      ~clock_wirelength:500. ~clock_buffers:20 () in
  Alcotest.(check bool) "switching > 0" true (pw.Sta.switching_mw > 0.);
  Alcotest.(check bool) "internal > 0" true (pw.Sta.internal_mw > 0.);
  Alcotest.(check bool) "leakage > 0" true (pw.Sta.leakage_mw > 0.);
  Alcotest.(check bool) "clock > 0" true (pw.Sta.clock_mw > 0.);
  Alcotest.(check (float 1e-9)) "total = sum"
    (pw.Sta.switching_mw +. pw.Sta.internal_mw +. pw.Sta.leakage_mw
    +. pw.Sta.clock_mw)
    pw.Sta.total_mw

let test_power_grows_with_wirelength () =
  let p = placed "VGA" in
  let lengths = hpwl_lengths p in
  let cfg = Sta.default_config ~clock_period_ps:300. in
  let base = Sta.estimate_power cfg p.Pl.nl ~net_length:lengths () in
  let detoured = Array.map (fun l -> 1.4 *. l) lengths in
  let more = Sta.estimate_power cfg p.Pl.nl ~net_length:detoured () in
  Alcotest.(check bool) "longer wires burn more" true
    (more.Sta.total_mw > base.Sta.total_mw)

let test_activity_bounded () =
  let p = placed "DMA" in
  let lengths = hpwl_lengths p in
  let cfg = Sta.default_config ~clock_period_ps:300. in
  let pw = Sta.estimate_power cfg p.Pl.nl ~net_length:lengths () in
  Array.iter
    (fun a ->
      Alcotest.(check bool) "activity in [0,1]" true (a >= 0. && a <= 1.))
    pw.Sta.activity

(* ------------------------------------------------------------------ *)
(* Node features (Table II)                                            *)
(* ------------------------------------------------------------------ *)

let test_node_features_shape_and_scale () =
  let p = placed "DMA" in
  let lengths = hpwl_lengths p in
  let cfg = Sta.default_config ~clock_period_ps:300. in
  let t = Sta.analyze cfg p.Pl.nl ~net_length:lengths ~net_is_3d:(is_3d_fn p) in
  let pw = Sta.estimate_power cfg p.Pl.nl ~net_length:lengths () in
  let f = Sta.node_features p.Pl.nl t pw in
  Alcotest.(check (array int)) "Table-II shape"
    [| Nl.n_cells p.Pl.nl; 8 |] (T.shape f);
  Alcotest.(check bool) "O(1) magnitudes" true
    (T.max_elt f < 100. && T.min_elt f > -100.);
  (* width / height columns reflect the masters *)
  let c0 = 0 in
  let m = p.Pl.nl.Nl.masters.(c0) in
  Alcotest.(check (float 1e-9)) "width feature"
    (m.Dco3d_netlist.Cell_lib.width /. 0.3)
    (T.get2 f c0 6)

(* ------------------------------------------------------------------ *)
(* Activity propagation vs cell ordering                                *)
(* ------------------------------------------------------------------ *)

(* Two structurally identical netlists — FF -> INV -> output — that
   differ only in cell-array order.  Both the FF (a source) and the INV
   sit at levelization level 0, so before the source-pre-seeding fix
   the INV could read its fan-in activity as 0.0 or 0.20 depending on
   which cell the walk visited first: the power model leaked the
   netlist's array ordering. *)
let ff_inv_netlist ~ff_first =
  let module Cl = Dco3d_netlist.Cell_lib in
  let dff = Cl.master_of Cl.Dff ~drive:1 in
  let inv = Cl.master_of Cl.Inv ~drive:1 in
  let ff = if ff_first then 0 else 1 in
  let iv = if ff_first then 1 else 0 in
  let masters = Array.make 2 dff in
  masters.(iv) <- inv;
  let net id name driver sinks =
    { Nl.net_id = id; net_name = name; driver; sinks; is_clock = false }
  in
  let nets =
    [|
      net 0 "in" (Nl.Io 0) [| Nl.Cell ff |];
      net 1 "q" (Nl.Cell ff) [| Nl.Cell iv |];
      net 2 "y" (Nl.Cell iv) [| Nl.Io 1 |];
    |]
  in
  let cell_fanin = Array.make 2 [||] in
  cell_fanin.(ff) <- [| 0 |];
  cell_fanin.(iv) <- [| 1 |];
  let cell_fanout = Array.make 2 (-1) in
  cell_fanout.(ff) <- 1;
  cell_fanout.(iv) <- 2;
  {
    Nl.design = (if ff_first then "ff_first" else "inv_first");
    masters;
    nets;
    ios =
      [|
        { Nl.io_id = 0; io_name = "in"; dir = Nl.In };
        { Nl.io_id = 1; io_name = "out"; dir = Nl.Out };
      |];
    cell_fanin;
    cell_fanout;
  }

let test_activity_order_independent () =
  let cfg = Sta.default_config ~clock_period_ps:1000. in
  let net_length = [| 1.; 1.; 1. |] in
  let run ~ff_first =
    let nl = ff_inv_netlist ~ff_first in
    (match Nl.validate nl with
    | Ok () -> ()
    | Error e -> Alcotest.failf "bad fixture: %s" e);
    Sta.estimate_power cfg nl ~net_length ()
  in
  let a = run ~ff_first:true and b = run ~ff_first:false in
  (* the INV's output activity is 0.85 x its FF fan-in's 0.20, in both
     orderings — before the fix the inv-first variant read 0. *)
  Alcotest.(check (float 1e-12)) "ff-first inv activity" (0.85 *. 0.20)
    a.Sta.activity.(2);
  Alcotest.(check (float 1e-12)) "inv-first inv activity" (0.85 *. 0.20)
    b.Sta.activity.(2);
  Alcotest.(check (float 1e-12)) "total power order-independent"
    a.Sta.total_mw b.Sta.total_mw

(* ------------------------------------------------------------------ *)
(* CTS                                                                 *)
(* ------------------------------------------------------------------ *)

let test_cts_reaches_all_ffs () =
  let p = placed "VGA" in
  let r = Cts.synthesize p in
  let n_ff =
    Array.fold_left
      (fun a m -> if m.Dco3d_netlist.Cell_lib.is_seq then a + 1 else a)
      0 p.Pl.nl.Nl.masters
  in
  Alcotest.(check int) "all sinks" n_ff r.Cts.n_sinks;
  Alcotest.(check bool) "wire > 0" true (r.Cts.wirelength > 0.);
  Alcotest.(check bool) "buffers > 0" true (r.Cts.n_buffers > 0);
  Alcotest.(check bool) "skew >= 0" true (r.Cts.skew_ps >= 0.);
  Alcotest.(check bool) "latency >= skew" true
    (r.Cts.max_latency_ps >= r.Cts.skew_ps)

let test_cts_empty_design () =
  (* a netlist with zero flip-flops yields a zero tree *)
  let nl = Gen.generate ~scale:0.02 ~seed:5 (Gen.profile "DMA") in
  let fp = Fp.create nl in
  let p = Pl.create nl fp in
  (* strip sequential masters *)
  for c = 0 to Nl.n_cells nl - 1 do
    if nl.Nl.masters.(c).Dco3d_netlist.Cell_lib.is_seq then
      nl.Nl.masters.(c) <- Dco3d_netlist.Cell_lib.find "BUF_X1"
  done;
  let r = Cts.synthesize p in
  Alcotest.(check int) "no sinks" 0 r.Cts.n_sinks;
  Alcotest.(check (float 0.)) "no wire" 0. r.Cts.wirelength

let test_cts_fanout_bound_increases_buffers () =
  let p = placed "VGA" in
  let few = Cts.synthesize ~max_fanout:32 p in
  let many = Cts.synthesize ~max_fanout:4 p in
  Alcotest.(check bool) "tighter fanout, more buffers" true
    (many.Cts.n_buffers > few.Cts.n_buffers)

let suites =
  [
    ( "sta.timing",
      [
        Alcotest.test_case "basic sanity" `Quick test_timing_basic_sanity;
        Alcotest.test_case "tight clock violates" `Quick test_tight_clock_creates_violations;
        Alcotest.test_case "detours hurt timing" `Quick test_longer_wires_hurt_timing;
        Alcotest.test_case "suggested period is tight" `Quick test_suggest_period_tight;
        Alcotest.test_case "upsizing helps" `Quick test_upsizing_improves_delay;
      ] );
    ( "sta.power",
      [
        Alcotest.test_case "components positive" `Quick test_power_components_positive;
        Alcotest.test_case "wirelength coupling" `Quick test_power_grows_with_wirelength;
        Alcotest.test_case "activity bounded" `Quick test_activity_bounded;
        Alcotest.test_case "activity ordering (shuffled netlist)" `Quick
          test_activity_order_independent;
      ] );
    ( "sta.features",
      [ Alcotest.test_case "Table-II features" `Quick test_node_features_shape_and_scale ] );
    ( "cts",
      [
        Alcotest.test_case "reaches all FFs" `Quick test_cts_reaches_all_ffs;
        Alcotest.test_case "empty design" `Quick test_cts_empty_design;
        Alcotest.test_case "fanout bound" `Quick test_cts_fanout_bound_increases_buffers;
      ] );
  ]
