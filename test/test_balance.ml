(* dco3d.serve fleet: LRU eviction hooks, persistent spill framing,
   warm restarts from spill, self-pipe stop latency, and process-level
   balancer failure paths (shard crash mid-stream, drain-while-serving,
   numeric-path routing) against real [dco3d serve --shard-of]
   children. *)

module T = Dco3d_tensor.Tensor
module Rng = Dco3d_tensor.Rng
module Obs = Dco3d_obs.Obs
module SiaUNet = Dco3d_nn.Siamese_unet
module Predictor = Dco3d_core.Predictor
module Lru = Dco3d_serve.Lru
module Proto = Dco3d_serve.Protocol
module Spill = Dco3d_serve.Spill
module Server = Dco3d_serve.Server
module Client = Dco3d_serve.Client
module Balance = Dco3d_serve.Balance

let tmp_name =
  let n = ref 0 in
  fun suffix ->
    incr n;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dco3d_balance_test_%d_%d%s" (Unix.getpid ()) !n suffix)

let rm_rf path =
  let rec go p =
    match Unix.lstat p with
    | { Unix.st_kind = Unix.S_DIR; _ } ->
        Array.iter (fun e -> go (Filename.concat p e)) (Sys.readdir p);
        Unix.rmdir p
    | _ -> Sys.remove p
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  in
  go path

let rand_stack rng ny nx = T.rand_uniform rng ~lo:0. ~hi:4. [| 8; ny; nx |]

let check_bits what expected got =
  Alcotest.(check int)
    (what ^ " length")
    (Array.length expected.T.data)
    (Array.length got.T.data);
  Array.iteri
    (fun i e ->
      if Int64.bits_of_float e <> Int64.bits_of_float got.T.data.(i) then
        Alcotest.failf "%s: bit mismatch at %d: %h vs %h" what i e
          got.T.data.(i))
    expected.T.data

(* ------------------------------------------------------------------ *)
(* LRU eviction hook                                                   *)
(* ------------------------------------------------------------------ *)

let test_lru_on_evict_capacity_only () =
  let evicted = ref [] in
  let c = Lru.create ~capacity:2 in
  Lru.set_on_evict c (fun k v -> evicted := (k, v) :: !evicted);
  Lru.put c "a" 1;
  Lru.put c "b" 2;
  Alcotest.(check (list (pair string int))) "nothing evicted yet" [] !evicted;
  (* replacing a resident key is not an eviction *)
  Lru.put c "a" 10;
  Alcotest.(check (list (pair string int))) "replace is not evict" [] !evicted;
  Lru.put c "c" 3;
  Alcotest.(check (list (pair string int)))
    "capacity eviction fires with the evicted value"
    [ ("b", 2) ] !evicted;
  (* clear drops entries without spilling them: they were not pushed
     out by hotter traffic, the cache was torn down *)
  Lru.clear c;
  Alcotest.(check (list (pair string int))) "clear is silent" [ ("b", 2) ]
    !evicted

let test_lru_iter_order () =
  let c = Lru.create ~capacity:4 in
  Lru.put c "a" 1;
  Lru.put c "b" 2;
  Lru.put c "c" 3;
  (* promote "a" so the MRU->LRU order is a, c, b *)
  ignore (Lru.find c "a");
  let seen = ref [] in
  Lru.iter c (fun k v -> seen := (k, v) :: !seen);
  Alcotest.(check (list (pair string int)))
    "iter walks MRU to LRU"
    [ ("a", 1); ("c", 3); ("b", 2) ]
    (List.rev !seen);
  (* iter must not promote: "b" is still the eviction candidate *)
  Lru.put c "d" 4;
  Lru.put c "e" 5;
  Alcotest.(check bool) "b evicted first" false (Lru.mem c "b")

(* ------------------------------------------------------------------ *)
(* Spill store                                                         *)
(* ------------------------------------------------------------------ *)

let pair_of_seed seed =
  let rng = Rng.create seed in
  (rand_stack rng 5 7, rand_stack rng 5 7)

let spill_file dir key =
  Filename.concat dir (Digest.to_hex (Digest.string key) ^ ".spill")

let test_spill_roundtrip () =
  let dir = tmp_name ".spill" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let s = Spill.create ~dir in
  let b, t = pair_of_seed 3 in
  Alcotest.(check bool) "put succeeds" true (Spill.put s "key-1" (b, t));
  Alcotest.(check int) "one entry on disk" 1 (Spill.count s);
  (match Spill.find s "key-1" with
  | Some (gb, gt) ->
      check_bits "bottom survives disk" b gb;
      check_bits "top survives disk" t gt
  | None -> Alcotest.fail "spilled entry not found");
  Alcotest.(check bool) "missing key misses" true (Spill.find s "nope" = None);
  (* a fresh handle on the same dir sees the entry: restart persistence *)
  let s2 = Spill.create ~dir in
  Alcotest.(check bool) "entry survives re-open" true
    (Spill.find s2 "key-1" <> None)

let test_spill_rejects_corruption () =
  let dir = tmp_name ".spill" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let s = Spill.create ~dir in
  Alcotest.(check bool) "put" true (Spill.put s "key-1" (pair_of_seed 4));
  let path = spill_file dir "key-1" in
  (* flip a byte in the middle of the body: digest check must fail *)
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
  ignore (Unix.lseek fd 64 Unix.SEEK_SET);
  ignore (Unix.write fd (Bytes.of_string "\xff") 0 1);
  Unix.close fd;
  Alcotest.(check bool) "corrupt entry is a miss" true
    (Spill.find s "key-1" = None);
  Alcotest.(check bool) "corrupt file deleted" false (Sys.file_exists path);
  Alcotest.(check int) "store empty again" 0 (Spill.count s)

let test_spill_rejects_wrong_key () =
  let dir = tmp_name ".spill" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let s = Spill.create ~dir in
  Alcotest.(check bool) "put" true (Spill.put s "key-a" (pair_of_seed 5));
  (* simulate a hash-slot mixup: the file lands under key-b's name but
     still stores "key-a" inside; the stored-key check must reject it *)
  Sys.rename (spill_file dir "key-a") (spill_file dir "key-b");
  Alcotest.(check bool) "foreign entry is a miss" true
    (Spill.find s "key-b" = None);
  Alcotest.(check bool) "foreign file deleted" false
    (Sys.file_exists (spill_file dir "key-b"));
  (* truncated file: framing check must reject without raising *)
  let path = spill_file dir "key-c" in
  let oc = open_out_bin path in
  output_string oc "DCO3D";
  close_out oc;
  Alcotest.(check bool) "truncated entry is a miss" true
    (Spill.find s "key-c" = None);
  Alcotest.(check bool) "truncated file deleted" false (Sys.file_exists path)

(* ------------------------------------------------------------------ *)
(* Server + spill: warm restart of a single daemon                     *)
(* ------------------------------------------------------------------ *)

let mk_predictor ?(input_hw = 8) ?(base_channels = 4) seed =
  let cfg = { SiaUNet.default_config with SiaUNet.base_channels } in
  {
    Predictor.net = SiaUNet.create (Rng.create seed) cfg;
    input_hw;
    label_scale = 1.0;
  }

let server_cfg ?(cache_capacity = 128) ?spill_dir ?(shard_id = 0) () =
  {
    Server.address = Server.Unix_path (tmp_name ".sock");
    queue_capacity = 64;
    max_batch = 8;
    batch_linger_ms = 10.;
    cache_capacity;
    numeric = `F32;
    spill_dir;
    route_cache_dir = None;
    corpus_dir = None;
    shard_id;
  }

let stat srv name =
  match List.assoc_opt name (Server.stats srv) with
  | Some v -> v
  | None -> Alcotest.failf "stat %s missing" name

let predict_ok what c b t =
  match Client.predict c b t with
  | Client.Ok { c_bottom; c_top; cache_hit } -> (c_bottom, c_top, cache_hit)
  | Client.Overloaded _ -> Alcotest.failf "%s: overloaded" what
  | Client.Timed_out -> Alcotest.failf "%s: timed out" what
  | Client.Disconnected -> Alcotest.failf "%s: disconnected" what

let test_server_spill_warm_restart () =
  let predictor = mk_predictor 11 in
  let spill_dir = tmp_name ".spill" in
  Fun.protect ~finally:(fun () -> rm_rf spill_dir) @@ fun () ->
  let rng = Rng.create 23 in
  let inputs = Array.init 3 (fun _ -> (rand_stack rng 8 8, rand_stack rng 8 8)) in
  let expected =
    Array.map (fun (b, t) -> Predictor.predict predictor b t) inputs
  in
  (* first life: capacity 2, three distinct keys -> one capacity
     eviction spills to disk, the rest flush on drain *)
  let cfg = server_cfg ~cache_capacity:2 ~spill_dir () in
  let srv = Server.start cfg predictor in
  let addr = Server.bound_addr srv in
  let c = Client.connect addr in
  Array.iteri
    (fun i (b, t) ->
      let rb, rt, _ = predict_ok (Printf.sprintf "warmup %d" i) c b t in
      let eb, et = expected.(i) in
      check_bits (Printf.sprintf "warmup %d bottom" i) eb rb;
      check_bits (Printf.sprintf "warmup %d top" i) et rt)
    inputs;
  Alcotest.(check bool) "capacity eviction spilled" true
    (stat srv "spill_writes" >= 1.);
  Client.close c;
  Server.stop srv;
  (* drain flushed the two resident entries too: all three on disk *)
  Alcotest.(check int) "hot set flushed on drain" 3
    (Spill.count (Spill.create ~dir:spill_dir));
  (* second life: fresh process state, same spill dir.  Every key is a
     digest-verified disk hit, bit-identical, no forward pass. *)
  let srv2 = Server.start (server_cfg ~cache_capacity:2 ~spill_dir ()) predictor in
  let c2 = Client.connect (Server.bound_addr srv2) in
  Fun.protect
    ~finally:(fun () ->
      Client.close c2;
      Server.stop srv2)
    (fun () ->
      Array.iteri
        (fun i (b, t) ->
          let rb, rt, hit = predict_ok (Printf.sprintf "reload %d" i) c2 b t in
          Alcotest.(check bool)
            (Printf.sprintf "reload %d is a cache hit" i)
            true hit;
          let eb, et = expected.(i) in
          check_bits (Printf.sprintf "reload %d bottom" i) eb rb;
          check_bits (Printf.sprintf "reload %d top" i) et rt)
        inputs;
      Alcotest.(check bool) "hits came from spill" true
        (stat srv2 "spill_hits" >= 3.))

let test_server_spill_corrupt_recompute () =
  let predictor = mk_predictor 13 in
  let spill_dir = tmp_name ".spill" in
  Fun.protect ~finally:(fun () -> rm_rf spill_dir) @@ fun () ->
  let rng = Rng.create 29 in
  let b, t = (rand_stack rng 6 6, rand_stack rng 6 6) in
  let eb, et = Predictor.predict predictor b t in
  let srv = Server.start (server_cfg ~spill_dir ()) predictor in
  let c = Client.connect (Server.bound_addr srv) in
  ignore (predict_ok "seed entry" c b t);
  Client.close c;
  Server.stop srv;
  (* corrupt every spilled file *)
  Array.iter
    (fun e ->
      if Filename.check_suffix e ".spill" then begin
        let path = Filename.concat spill_dir e in
        let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
        ignore (Unix.lseek fd 40 Unix.SEEK_SET);
        ignore (Unix.write fd (Bytes.of_string "\x00\x01\x02") 0 3);
        Unix.close fd
      end)
    (Sys.readdir spill_dir);
  let srv2 = Server.start (server_cfg ~spill_dir ()) predictor in
  let c2 = Client.connect (Server.bound_addr srv2) in
  Fun.protect
    ~finally:(fun () ->
      Client.close c2;
      Server.stop srv2)
    (fun () ->
      let rb, rt, hit = predict_ok "recompute" c2 b t in
      Alcotest.(check bool) "corrupt spill is not a hit" false hit;
      check_bits "recomputed bottom" eb rb;
      check_bits "recomputed top" et rt;
      Alcotest.(check (float 0.)) "no spill hits" 0. (stat srv2 "spill_hits"))

(* ------------------------------------------------------------------ *)
(* Self-pipe wakeup: stop must not wait out a poll interval            *)
(* ------------------------------------------------------------------ *)

let test_stop_latency () =
  Obs.reset ();
  Obs.enable ();
  Fun.protect ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
  @@ fun () ->
  let predictor = mk_predictor 17 in
  (* the accept loop blocks in select until the self-pipe wakes it, so
     an idle server stops in microseconds, not a 100 ms poll tick.
     min-of-3 keeps a loaded CI machine from failing the bound. *)
  let best = ref infinity in
  for _ = 1 to 3 do
    let srv = Server.start (server_cfg ()) predictor in
    (* prove the server is actually accepting before timing the stop *)
    let c = Client.connect (Server.bound_addr srv) in
    ignore (predict_ok "wake" c (T.zeros [| 8; 4; 4 |]) (T.zeros [| 8; 4; 4 |]));
    Client.close c;
    let t0 = Unix.gettimeofday () in
    Server.stop srv;
    best := Float.min !best (Unix.gettimeofday () -. t0)
  done;
  if !best >= 0.08 then
    Alcotest.failf "stop took %.0f ms; self-pipe wakeup should beat the old \
                    100 ms poll" (!best *. 1000.);
  (* the batch span aggregate is queryable for smoke checks *)
  match Obs.span_stat_of "serve/batch" with
  | Some s ->
      Alcotest.(check bool) "batch span recorded" true (s.Obs.sp_count >= 3)
  | None -> Alcotest.fail "serve/batch span missing from stage profile"

(* ------------------------------------------------------------------ *)
(* Balancer process tests                                              *)
(* ------------------------------------------------------------------ *)

(* the binary the balancer spawns as shards is a declared test dep
   next door in the build tree; resolve it relative to this executable
   so both [dune runtest] and [dune exec] find it *)
let dco3d_exe =
  Filename.concat (Filename.dirname Sys.executable_name) "../bin/dco3d.exe"

(* must mirror bin/dco3d.ml's untrained_predictor so bit-identity
   against the spawned shards can be checked in-process *)
let cli_predictor ~seed ~input_hw =
  let net =
    SiaUNet.create (Rng.create seed)
      { SiaUNet.default_config with SiaUNet.base_channels = 8 }
  in
  { Predictor.net; input_hw; label_scale = 1.0 }

let fleet_argv ~ctl ~seed ~input_hw ~numeric_of ?spill_root () i =
  let base =
    [
      dco3d_exe;
      "serve";
      "--shard-of";
      ctl;
      "--shard-id";
      string_of_int i;
      "--seed";
      string_of_int seed;
      "--input-hw";
      string_of_int input_hw;
      "--linger-ms";
      "10";
      "--numeric";
      numeric_of i;
    ]
  in
  let full =
    match spill_root with
    | Some root ->
        base
        @ [ "--spill-dir"; Filename.concat root (Printf.sprintf "shard-%d" i) ]
    | None -> base
  in
  Array.of_list full

let with_fleet ?spill_root ~numeric_of ~seed ~input_hw n f =
  if not (Sys.file_exists dco3d_exe) then
    Alcotest.failf "missing shard binary %s" dco3d_exe;
  let addr = Server.Unix_path (tmp_name ".sock") in
  let ctl = tmp_name ".ctl" in
  let cfg = Balance.default_config ~address:addr ~ctl_path:ctl ~n_shards:n in
  let b =
    Balance.start cfg
      ~argv_of:(fleet_argv ~ctl ~seed ~input_hw ~numeric_of ?spill_root ())
  in
  Fun.protect
    ~finally:(fun () ->
      Balance.stop b;
      match spill_root with Some r -> rm_rf r | None -> ())
    (fun () ->
      if not (Balance.await_live ~timeout_s:120. b n) then
        Alcotest.failf "fleet of %d never came live" n;
      f b (Balance.bound_addr b))

let retry_ok what c b t =
  match Client.retry ~attempts:10 ~seed:7 c b t with
  | Client.Ok { c_bottom; c_top; cache_hit } -> (c_bottom, c_top, cache_hit)
  | Client.Overloaded _ -> Alcotest.failf "%s: overloaded after retries" what
  | Client.Timed_out -> Alcotest.failf "%s: timed out after retries" what
  | Client.Disconnected -> Alcotest.failf "%s: still disconnected" what

let slot_pid b idx =
  match List.find_opt (fun s -> s.Balance.si_idx = idx) (Balance.slots b) with
  | Some s -> s.Balance.si_pid
  | None -> Alcotest.failf "slot %d missing" idx

let test_fleet_routing_and_bits () =
  let seed = 7 and input_hw = 16 in
  let numeric_of i = if i = 1 then "i8" else "f32" in
  with_fleet ~numeric_of ~seed ~input_hw 2 @@ fun _b addr ->
  (* explicit numeric routing via hello *)
  let c_i8 = Client.connect addr in
  let _fp, shard_i8, numeric_i8 =
    Client.hello ~want:(Proto.Want_numeric "i8") c_i8
  in
  Alcotest.(check string) "i8 request lands on the i8 shard" "i8" numeric_i8;
  Alcotest.(check int) "which is slot 1" 1 shard_i8;
  let c_f32 = Client.connect addr in
  let fp_f32, shard_f32, numeric_f32 =
    Client.hello ~want:(Proto.Want_numeric "f32") c_f32
  in
  Alcotest.(check string) "f32 request lands on the f32 shard" "f32"
    numeric_f32;
  Alcotest.(check int) "which is slot 0" 0 shard_f32;
  (* pinning an exact fingerprint also routes *)
  let c_fp = Client.connect addr in
  let fp2, _, _ = Client.hello ~want:(Proto.Want_fingerprint fp_f32) c_fp in
  Alcotest.(check string) "fingerprint pin honoured" fp_f32 fp2;
  Client.close c_fp;
  (* legacy clients (no hello) route within the primary f32 group and
     stay bit-identical to a local Predictor.predict *)
  let predictor = cli_predictor ~seed ~input_hw in
  let rng = Rng.create 31 in
  for i = 0 to 3 do
    let b, t = (rand_stack rng 8 10, rand_stack rng 8 10) in
    let eb, et = Predictor.predict predictor b t in
    let c = Client.connect addr in
    let rb, rt, _ = predict_ok (Printf.sprintf "legacy %d" i) c b t in
    check_bits (Printf.sprintf "legacy %d bottom" i) eb rb;
    check_bits (Printf.sprintf "legacy %d top" i) et rt;
    Client.close c
  done;
  (* the already-helloed connections keep serving on their shard *)
  let b1, t1 = (rand_stack rng 8 10, rand_stack rng 8 10) in
  ignore (predict_ok "pinned i8 predict" c_i8 b1 t1);
  ignore (predict_ok "pinned f32 predict" c_f32 b1 t1);
  Client.close c_i8;
  Client.close c_f32

let test_fleet_crash_drain_spill () =
  let seed = 7 and input_hw = 16 in
  let spill_root = tmp_name ".fleet-spill" in
  with_fleet ~spill_root
    ~numeric_of:(fun _ -> "f32")
    ~seed ~input_hw 2
  @@ fun b addr ->
  let predictor = cli_predictor ~seed ~input_hw in
  let rng = Rng.create 37 in
  let fb, ft = (rand_stack rng 9 9, rand_stack rng 9 9) in
  let eb, et = Predictor.predict predictor fb ft in
  (* warm one key through the fleet *)
  let c0 = Client.connect addr in
  let wb, _, _ = predict_ok "warm" c0 fb ft in
  check_bits "warm bottom" eb wb;
  Client.close c0;
  (* shard crash: SIGKILL both shard processes so the routed one is
     dead whichever the key hashed to.  Client.retry redials through
     the balancer, which respawns the slot; the request completes
     transparently with identical bits. *)
  let pid0 = slot_pid b 0 and pid1 = slot_pid b 1 in
  Unix.kill pid0 Sys.sigkill;
  Unix.kill pid1 Sys.sigkill;
  let c1 = Client.connect addr in
  let cb, ct, _ = retry_ok "post-crash" c1 fb ft in
  check_bits "post-crash bottom" eb cb;
  check_bits "post-crash top" et ct;
  Client.close c1;
  if not (Balance.await_live ~timeout_s:120. b 2) then
    Alcotest.fail "crashed shards never respawned";
  let s0 = slot_pid b 0 in
  Alcotest.(check bool) "slot 0 is a new process" true (s0 <> pid0);
  (* drain one shard while the fleet keeps serving: requests ride the
     remaining shard (or retry through the respawn window) *)
  Balance.drain_shard b 0;
  let c2 = Client.connect addr in
  let db, _, _ = retry_ok "during drain" c2 fb ft in
  check_bits "during-drain bottom" eb db;
  Client.close c2;
  if not (Balance.await_live ~timeout_s:120. b 2) then
    Alcotest.fail "drained shard never came back";
  (* the drained shard flushed its hot set; after the whole fleet rolls
     the key must come back as a digest-verified spill hit *)
  if not (Balance.rolling_restart ~timeout_s:120. b) then
    Alcotest.fail "rolling restart timed out";
  let c3 = Client.connect addr in
  let pb, pt, warm = retry_ok "post-roll" c3 fb ft in
  Alcotest.(check bool) "post-roll predict is a warm hit" true warm;
  check_bits "post-roll bottom" eb pb;
  check_bits "post-roll top" et pt;
  Client.close c3

let suites =
  [
    ( "balance lru hooks",
      [
        Alcotest.test_case "on_evict fires on capacity only" `Quick
          test_lru_on_evict_capacity_only;
        Alcotest.test_case "iter order, no promotion" `Quick
          test_lru_iter_order;
      ] );
    ( "balance spill",
      [
        Alcotest.test_case "roundtrip and reopen" `Quick test_spill_roundtrip;
        Alcotest.test_case "digest rejects corruption" `Quick
          test_spill_rejects_corruption;
        Alcotest.test_case "stored key and framing verified" `Quick
          test_spill_rejects_wrong_key;
        Alcotest.test_case "server warm restart from spill" `Quick
          test_server_spill_warm_restart;
        Alcotest.test_case "corrupt spill recomputes" `Quick
          test_server_spill_corrupt_recompute;
      ] );
    ( "balance wakeup",
      [ Alcotest.test_case "stop beats the old poll tick" `Quick
          test_stop_latency ] );
    ( "balance fleet",
      [
        Alcotest.test_case "hello routing and bit identity" `Quick
          test_fleet_routing_and_bits;
        Alcotest.test_case "crash, drain, spill warm restart" `Quick
          test_fleet_crash_drain_spill;
      ] );
  ]
