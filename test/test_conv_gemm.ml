(* Property tests for the im2col/GEMM convolution engine.

   The contract under test is strict bit-identity: for EVERY shape,
   stride, and padding — including degenerate ones (pad larger than the
   kernel, 1x1 inputs, stride-2 transposed convolutions) — the [`Gemm]
   engine must produce exactly the floats the [`Direct] reference loops
   produce, at DCO3D_JOBS=1 and on a real multi-domain pool.  This is
   the property that keeps BENCH_kernels.digest stable across engine
   changes, so it is checked with [eps = 0.], never a tolerance. *)

module Pool = Dco3d_parallel.Pool
module T = Dco3d_tensor.Tensor
module Rng = Dco3d_tensor.Rng

let exact_tensor =
  Alcotest.testable T.pp (fun a b -> T.approx_equal ~eps:0. a b)

let with_exact_jobs n f =
  Pool.set_jobs ~exact:true n;
  Fun.protect ~finally:(fun () -> Pool.set_jobs 1) f

(* Run [check] sequentially and on a genuine 4-domain pool (the exact
   flag bypasses the hardware clamp on single-core CI hosts). *)
let on_both_schedules check =
  check "jobs=1";
  with_exact_jobs 4 (fun () -> check "jobs=4")

type conv_case = {
  ci : int;
  co : int;
  h : int;
  w : int;
  kh : int;
  kw : int;
  stride : int;
  pad : int;
  with_bias : bool;
}

let case_name tag c =
  Printf.sprintf "%s %dx%dx%d w=%dx%dx%dx%d s=%d p=%d%s" tag c.ci c.h c.w
    c.co c.ci c.kh c.kw c.stride c.pad
    (if c.with_bias then " bias" else "")

(* Random but reproducible case stream; candidates that would produce an
   empty output are discarded before they reach the kernels. *)
let random_cases rng ~n ~valid =
  let rec draw () =
    let c =
      {
        ci = 1 + Rng.int rng 4;
        co = 1 + Rng.int rng 4;
        h = 1 + Rng.int rng 13;
        w = 1 + Rng.int rng 13;
        kh = 1 + Rng.int rng 4;
        kw = 1 + Rng.int rng 4;
        stride = 1 + Rng.int rng 2;
        (* up to kernel + 2: deliberately allows pad > kernel *)
        pad = Rng.int rng 6;
        with_bias = Rng.bool rng;
      }
    in
    if valid c then c else draw ()
  in
  List.init n (fun _ -> draw ())

let conv_out_dim x k ~stride ~pad = (((x + (2 * pad)) - k) / stride) + 1

let valid_conv c =
  conv_out_dim c.h c.kh ~stride:c.stride ~pad:c.pad >= 1
  && conv_out_dim c.w c.kw ~stride:c.stride ~pad:c.pad >= 1

let valid_transpose c =
  ((c.h - 1) * c.stride) - (2 * c.pad) + c.kh >= 1
  && ((c.w - 1) * c.stride) - (2 * c.pad) + c.kw >= 1

let make_inputs rng c =
  let x = T.randn rng [| c.ci; c.h; c.w |] in
  let w = T.randn rng [| c.co; c.ci; c.kh; c.kw |] in
  let bias = if c.with_bias then Some (T.randn rng [| c.co |]) else None in
  (x, w, bias)

(* Hand-picked corners that a random draw might miss. *)
let corner_conv_cases =
  [
    (* pad strictly larger than the kernel, both parities *)
    { ci = 2; co = 3; h = 5; w = 7; kh = 2; kw = 2; stride = 1; pad = 3;
      with_bias = true };
    { ci = 1; co = 1; h = 4; w = 4; kh = 3; kw = 1; stride = 2; pad = 4;
      with_bias = false };
    (* 1x1 input, kernel covers it only via padding *)
    { ci = 3; co = 2; h = 1; w = 1; kh = 3; kw = 3; stride = 1; pad = 1;
      with_bias = true };
    (* 1x1 kernel degenerates to a pure channel mix *)
    { ci = 4; co = 4; h = 9; w = 6; kh = 1; kw = 1; stride = 1; pad = 0;
      with_bias = false };
    (* wide rectangular kernel with stride *)
    { ci = 2; co = 5; h = 11; w = 13; kh = 1; kw = 5; stride = 3; pad = 2;
      with_bias = true };
    (* above conv_par_macs, so the jobs=4 schedule genuinely row-bands
       the GEMM across domains *)
    { ci = 8; co = 16; h = 32; w = 32; kh = 3; kw = 3; stride = 1; pad = 1;
      with_bias = true };
  ]

let corner_transpose_cases =
  [
    (* the bench shape in miniature: stride-2 4x4 upsampling *)
    { ci = 3; co = 2; h = 6; w = 5; kh = 4; kw = 4; stride = 2; pad = 1;
      with_bias = true };
    { ci = 1; co = 1; h = 1; w = 1; kh = 2; kw = 2; stride = 2; pad = 0;
      with_bias = false };
    { ci = 2; co = 3; h = 7; w = 4; kh = 3; kw = 5; stride = 3; pad = 2;
      with_bias = true };
    (* above conv_par_macs with stride 1, so [`Gemm] runs the pooled
       row-banded path when jobs=4 *)
    { ci = 8; co = 8; h = 36; w = 36; kh = 4; kw = 4; stride = 1; pad = 2;
      with_bias = true };
  ]

let check_conv2d rng c =
  let x, w, bias = make_inputs rng c in
  on_both_schedules (fun sched ->
      let direct =
        T.conv2d ~stride:c.stride ~pad:c.pad ~engine:`Direct x ~weight:w ~bias
      in
      let gemm =
        T.conv2d ~stride:c.stride ~pad:c.pad ~engine:`Gemm x ~weight:w ~bias
      in
      Alcotest.check exact_tensor (case_name "conv2d" c ^ " " ^ sched) direct
        gemm)

let check_conv2d_backwards rng c =
  let x, w, _ = make_inputs rng c in
  let y = T.conv2d ~stride:c.stride ~pad:c.pad x ~weight:w ~bias:None in
  let gout = T.randn rng (T.shape y) in
  on_both_schedules (fun sched ->
      let di =
        T.conv2d_backward_input ~stride:c.stride ~pad:c.pad ~engine:`Direct
          ~input_shape:(T.shape x) ~weight:w gout
      in
      let gi =
        T.conv2d_backward_input ~stride:c.stride ~pad:c.pad ~engine:`Gemm
          ~input_shape:(T.shape x) ~weight:w gout
      in
      Alcotest.check exact_tensor
        (case_name "bwd_input" c ^ " " ^ sched)
        di gi;
      let dw =
        T.conv2d_backward_weight ~stride:c.stride ~pad:c.pad ~engine:`Direct
          ~input:x ~weight_shape:(T.shape w) gout
      in
      let gw =
        T.conv2d_backward_weight ~stride:c.stride ~pad:c.pad ~engine:`Gemm
          ~input:x ~weight_shape:(T.shape w) gout
      in
      Alcotest.check exact_tensor
        (case_name "bwd_weight" c ^ " " ^ sched)
        dw gw)

let check_transpose rng c =
  let x = T.randn rng [| c.ci; c.h; c.w |] in
  (* transposed-conv weight layout is [ci; co; kh; kw] *)
  let w = T.randn rng [| c.ci; c.co; c.kh; c.kw |] in
  let bias = if c.with_bias then Some (T.randn rng [| c.co |]) else None in
  on_both_schedules (fun sched ->
      let direct =
        T.conv2d_transpose ~stride:c.stride ~pad:c.pad ~engine:`Direct x
          ~weight:w ~bias
      in
      let gemm =
        T.conv2d_transpose ~stride:c.stride ~pad:c.pad ~engine:`Gemm x
          ~weight:w ~bias
      in
      Alcotest.check exact_tensor
        (case_name "transpose" c ^ " " ^ sched)
        direct gemm)

let test_conv2d_random () =
  let rng = Rng.create 0xC0417 in
  List.iter (check_conv2d rng)
    (corner_conv_cases @ random_cases rng ~n:30 ~valid:valid_conv)

let test_backwards_random () =
  let rng = Rng.create 0xC0418 in
  List.iter (check_conv2d_backwards rng)
    (corner_conv_cases @ random_cases rng ~n:30 ~valid:valid_conv)

let test_transpose_random () =
  let rng = Rng.create 0xC0419 in
  List.iter (check_transpose rng)
    (corner_transpose_cases @ random_cases rng ~n:30 ~valid:valid_transpose)

(* The packed-GEMM matmul must agree bitwise with a naive row-major
   triple loop accumulating the inner dimension in ascending order —
   the reference order every engine in the tensor layer preserves. *)
let test_matmul_vs_reference () =
  let rng = Rng.create 0xC041A in
  for case = 1 to 20 do
    (* the last cases exceed matmul_par_macs so the jobs=4 schedule
       exercises real cross-domain row bands *)
    let big = if case > 17 then 60 else 0 in
    let m = big + 1 + Rng.int rng 40
    and k = big + 1 + Rng.int rng 40
    and n = big + 1 + Rng.int rng 40 in
    let a = T.randn rng [| m; k |] and b = T.randn rng [| k; n |] in
    let reference =
      T.init [| m; n |] (fun idx ->
          let i = idx.(0) and j = idx.(1) in
          let acc = ref 0. in
          for p = 0 to k - 1 do
            acc := !acc +. (T.get2 a i p *. T.get2 b p j)
          done;
          !acc)
    in
    on_both_schedules (fun sched ->
        Alcotest.check exact_tensor
          (Printf.sprintf "matmul %dx%dx%d %s" m k n sched)
          reference (T.matmul a b))
  done

let test_auto_matches_forced_engines () =
  let rng = Rng.create 0xC041B in
  (* straddle conv_gemm_min_macs so [`Auto] picks both engines *)
  List.iter
    (fun c ->
      let x, w, bias = make_inputs rng c in
      let auto =
        T.conv2d ~stride:c.stride ~pad:c.pad x ~weight:w ~bias
      in
      let direct =
        T.conv2d ~stride:c.stride ~pad:c.pad ~engine:`Direct x ~weight:w ~bias
      in
      Alcotest.check exact_tensor (case_name "auto" c) direct auto)
    (corner_conv_cases
    @ [
        { ci = 8; co = 8; h = 16; w = 16; kh = 3; kw = 3; stride = 1; pad = 1;
          with_bias = true };
        { ci = 1; co = 1; h = 3; w = 3; kh = 2; kw = 2; stride = 1; pad = 0;
          with_bias = false };
      ])

let suites =
  [
    ( "tensor.conv_gemm",
      [
        Alcotest.test_case "conv2d gemm == direct" `Quick test_conv2d_random;
        Alcotest.test_case "backwards gemm == direct" `Quick
          test_backwards_random;
        Alcotest.test_case "transpose gemm == direct" `Quick
          test_transpose_random;
        Alcotest.test_case "matmul == naive reference" `Quick
          test_matmul_vs_reference;
        Alcotest.test_case "auto == forced engines" `Quick
          test_auto_matches_forced_engines;
      ] );
  ]
