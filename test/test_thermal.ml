(* Tests for the steady-state thermal solver (lib/thermal) and the
   differentiable thermal penalty it feeds. *)

module T = Dco3d_tensor.Tensor
module Linalg = Dco3d_tensor.Linalg
module V = Dco3d_autodiff.Value
module Rng = Dco3d_tensor.Rng
module Nl = Dco3d_netlist.Netlist
module Gen = Dco3d_netlist.Generator
module Fp = Dco3d_place.Floorplan
module Pl = Dco3d_place.Placement
module Placer = Dco3d_place.Placer
module Pool = Dco3d_parallel.Pool
module Losses = Dco3d_core.Losses
module Thermal = Dco3d_thermal.Thermal

let with_jobs n f =
  Pool.set_jobs ~exact:true n;
  Fun.protect ~finally:(fun () -> Pool.set_jobs 1) f

let placed = lazy (
  let nl = Gen.generate ~scale:0.02 ~seed:5 (Gen.profile "DMA") in
  let fp = Fp.create nl in
  Placer.global_place ~seed:1 ~params:Dco3d_place.Params.default nl fp)

(* ------------------------------------------------------------------ *)
(* Power binning                                                       *)
(* ------------------------------------------------------------------ *)

let test_power_density_conserves_power () =
  let p = Lazy.force placed in
  let power = Thermal.placement_power p in
  let per_cell = Thermal.cell_power p ~power in
  let grid = Thermal.power_density p ~power ~nx:12 ~ny:10 in
  Alcotest.(check (array int)) "shape" [| 2; 10; 12 |] (T.shape grid);
  let cell_total = Array.fold_left ( +. ) 0. per_cell in
  Alcotest.(check bool) "some power" true (cell_total > 0.);
  (* binning moves power around, it must not create or destroy any *)
  Alcotest.(check (float 1e-9)) "grid total = cell total" cell_total
    (T.sum grid);
  Alcotest.(check bool) "non-negative everywhere" true (T.min_elt grid >= 0.)

(* ------------------------------------------------------------------ *)
(* Steady-state solve                                                  *)
(* ------------------------------------------------------------------ *)

let test_solve_sanity () =
  let p = Lazy.force placed in
  let r = Thermal.solve_placement ~nx:12 ~ny:10 p in
  let amb = Thermal.default_config.Thermal.ambient_c in
  (match r.Thermal.cg_status with
  | Linalg.Converged -> ()
  | s -> Alcotest.failf "solve did not converge: %s" (Linalg.string_of_cg_status s));
  Alcotest.(check bool) "iters spent" true (r.Thermal.cg_iters > 0);
  Alcotest.(check bool) "peak >= avg" true (r.Thermal.peak_c >= r.Thermal.avg_c);
  Alcotest.(check bool) "avg above ambient" true (r.Thermal.avg_c > amb);
  Alcotest.(check bool) "all nodes above ambient" true
    (T.min_elt r.Thermal.grid >= amb)

let test_top_tier_runs_hotter () =
  (* identical power on both tiers: only tier 0 touches the heat sink,
     so the top die must come out strictly hotter on average *)
  let power_grid = T.full [| 2; 8; 8 |] 0.5 in
  let r = Thermal.solve ~power_grid () in
  let tier_avg t =
    let acc = ref 0. in
    for y = 0 to 7 do
      for x = 0 to 7 do
        acc := !acc +. T.get3 r.Thermal.grid t y x
      done
    done;
    !acc /. 64.
  in
  Alcotest.(check bool) "top hotter than bottom" true
    (tier_avg 1 > tier_avg 0 +. 1e-6)

let test_zero_power_is_ambient () =
  let r = Thermal.solve ~power_grid:(T.zeros [| 2; 6; 7 |]) () in
  let amb = Thermal.default_config.Thermal.ambient_c in
  Alcotest.(check (float 1e-9)) "peak ambient" amb r.Thermal.peak_c;
  Alcotest.(check (float 1e-9)) "avg ambient" amb r.Thermal.avg_c

let test_solve_jobs_bit_identical () =
  (* the row-parallel matvec has one writer per element: the whole CG
     trajectory, and therefore the map, must be bit-identical at any
     DCO3D_JOBS *)
  let p = Lazy.force placed in
  let solve () = Thermal.solve_placement ~nx:16 ~ny:16 p in
  let a = with_jobs 1 solve and b = with_jobs 4 solve in
  Alcotest.(check int) "same iters" a.Thermal.cg_iters b.Thermal.cg_iters;
  let ga = a.Thermal.grid and gb = b.Thermal.grid in
  Alcotest.(check int) "same size" (T.numel ga) (T.numel gb);
  for i = 0 to T.numel ga - 1 do
    if not (Float.equal (T.get_flat ga i) (T.get_flat gb i)) then
      Alcotest.failf "node %d differs: %.17g vs %.17g" i (T.get_flat ga i)
        (T.get_flat gb i)
  done

(* ------------------------------------------------------------------ *)
(* Thermal penalty gradients                                           *)
(* ------------------------------------------------------------------ *)

let test_penalty_gradients_match_fd () =
  (* frozen field, soft positions: the penalty's hand-rolled bilinear
     gradients must match central differences *)
  let nl = Gen.generate ~scale:0.01 ~seed:9 (Gen.profile "DMA") in
  let fp = { Fp.width = 8.; height = 8.; gcell_nx = 4; gcell_ny = 4; n_rows = 8 } in
  let p = Pl.create nl fp in
  let n = Nl.n_cells nl in
  let rng = Rng.create 11 in
  let grid =
    T.map (fun v -> 5. *. abs_float v) (T.randn (Rng.create 3) [| 2; 4; 4 |])
  in
  let cell_mw = Array.init n (fun _ -> 0.1 +. Rng.uniform rng) in
  let x0 = T.init [| n |] (fun _ -> 0.5 +. (7. *. Rng.uniform rng)) in
  let y0 = T.init [| n |] (fun _ -> 0.5 +. (7. *. Rng.uniform rng)) in
  let z0 = T.init [| n |] (fun _ -> 0.2 +. (0.6 *. Rng.uniform rng)) in
  let loss xt yt zt =
    let x = V.param (T.copy xt)
    and y = V.param (T.copy yt)
    and z = V.param (T.copy zt) in
    (Losses.thermal ~grid ~cell_mw ~placement:p ~nx:4 ~ny:4 ~x ~y ~z, x, y, z)
  in
  let l, x, y, z = loss x0 y0 z0 in
  Alcotest.(check bool) "positive on a hot field" true
    (T.get_flat (V.data l) 0 > 0.);
  V.backward l;
  let eps = 1e-6 in
  let fd base rebuild i =
    let tp = T.copy base and tm = T.copy base in
    T.set_flat tp i (T.get_flat base i +. eps);
    T.set_flat tm i (T.get_flat base i -. eps);
    let lp, _, _, _ = rebuild tp and lm, _, _, _ = rebuild tm in
    (T.get_flat (V.data lp) 0 -. T.get_flat (V.data lm) 0) /. (2. *. eps)
  in
  for c = 0 to min 5 (n - 1) do
    Alcotest.(check (float 1e-4)) "d/dx"
      (fd x0 (fun t -> loss t y0 z0) c)
      (T.get_flat (V.grad x) c);
    Alcotest.(check (float 1e-4)) "d/dy"
      (fd y0 (fun t -> loss x0 t z0) c)
      (T.get_flat (V.grad y) c);
    Alcotest.(check (float 1e-4)) "d/dz"
      (fd z0 (fun t -> loss x0 y0 t) c)
      (T.get_flat (V.grad z) c)
  done

let suites =
  [
    ( "thermal.power",
      [ Alcotest.test_case "density conserves power" `Quick
          test_power_density_conserves_power ] );
    ( "thermal.solve",
      [
        Alcotest.test_case "sanity" `Quick test_solve_sanity;
        Alcotest.test_case "top tier hotter" `Quick test_top_tier_runs_hotter;
        Alcotest.test_case "zero power is ambient" `Quick
          test_zero_power_is_ambient;
        Alcotest.test_case "jobs 1 = jobs 4 bit-identical" `Quick
          test_solve_jobs_bit_identical;
      ] );
    ( "thermal.penalty",
      [ Alcotest.test_case "gradients match FD" `Quick
          test_penalty_gradients_match_fd ] );
  ]
