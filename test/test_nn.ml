(* Tests for neural-network layers and the Siamese UNet predictor. *)

module T = Dco3d_tensor.Tensor
module Rng = Dco3d_tensor.Rng
module V = Dco3d_autodiff.Value
module Opt = Dco3d_autodiff.Optimizer
module Layer = Dco3d_nn.Layer
module SiaUNet = Dco3d_nn.Siamese_unet

let test_conv_layer_shapes () =
  let rng = Rng.create 1 in
  let l = Layer.conv2d rng ~pad:1 ~in_channels:3 ~out_channels:5 ~ksize:3 () in
  let y = l.Layer.forward (V.const (T.zeros [| 3; 8; 8 |])) in
  Alcotest.(check (array int)) "conv shape" [| 5; 8; 8 |] (V.shape y);
  Alcotest.(check int) "param count" ((5 * 3 * 3 * 3) + 5) (Layer.num_params l)

let test_linear_layer () =
  let rng = Rng.create 2 in
  let l = Layer.linear rng ~in_dim:4 ~out_dim:2 () in
  let y = l.Layer.forward (V.const (T.zeros [| 10; 4 |])) in
  Alcotest.(check (array int)) "linear shape" [| 10; 2 |] (V.shape y)

let test_seq_composition () =
  let rng = Rng.create 3 in
  let l =
    Layer.seq
      [
        Layer.conv2d rng ~pad:1 ~in_channels:1 ~out_channels:4 ~ksize:3 ();
        Layer.relu;
        Layer.maxpool2;
        Layer.conv2d rng ~pad:1 ~in_channels:4 ~out_channels:2 ~ksize:3 ();
      ]
  in
  let y = l.Layer.forward (V.const (T.zeros [| 1; 8; 8 |])) in
  Alcotest.(check (array int)) "seq shape" [| 2; 4; 4 |] (V.shape y)

let test_layer_state_roundtrip () =
  let rng = Rng.create 4 in
  let l = Layer.conv2d rng ~in_channels:2 ~out_channels:2 ~ksize:1 () in
  let snap = Layer.state l in
  (* perturb, then restore *)
  List.iter
    (fun p ->
      let d = V.data p in
      for i = 0 to T.numel d - 1 do
        T.set_flat d i 99.
      done)
    l.Layer.params;
  Layer.load_state l snap;
  List.iter2
    (fun p s ->
      Alcotest.(check bool) "restored" true (T.approx_equal (V.data p) s))
    l.Layer.params snap

let test_layer_trains () =
  (* A 1x1-conv network can learn y = 2x: check loss decreases. *)
  let rng = Rng.create 5 in
  let l = Layer.conv2d rng ~in_channels:1 ~out_channels:1 ~ksize:1 () in
  let opt = Opt.adam ~lr:0.05 l.Layer.params in
  let x = T.rand_uniform (Rng.create 6) [| 1; 4; 4 |] in
  let target = T.scale 2. x in
  let loss_at it =
    let loss = V.mse (l.Layer.forward (V.const x)) target in
    if it >= 0 then begin
      V.backward loss;
      Opt.step opt
    end;
    T.get_flat (V.data loss) 0
  in
  let first = loss_at (-1) in
  for it = 0 to 400 do
    ignore (loss_at it)
  done;
  let last = loss_at (-1) in
  Alcotest.(check bool) "loss decreased 20x" true (last < first /. 20.)

(* ------------------------------------------------------------------ *)
(* Siamese UNet                                                        *)
(* ------------------------------------------------------------------ *)

let small_cfg = { SiaUNet.in_channels = 3; base_channels = 4; depth = 2 }

let test_unet_shapes () =
  let net = SiaUNet.create (Rng.create 7) small_cfg in
  let f0 = T.rand_uniform (Rng.create 8) [| 3; 16; 16 |] in
  let f1 = T.rand_uniform (Rng.create 9) [| 3; 16; 16 |] in
  let c0, c1 = SiaUNet.predict net f0 f1 in
  Alcotest.(check (array int)) "c0 shape" [| 16; 16 |] (T.shape c0);
  Alcotest.(check (array int)) "c1 shape" [| 16; 16 |] (T.shape c1)

let test_unet_depth1 () =
  let net =
    SiaUNet.create (Rng.create 7)
      { SiaUNet.in_channels = 2; base_channels = 4; depth = 1 }
  in
  let f = T.rand_uniform (Rng.create 8) [| 2; 6; 6 |] in
  let c0, _ = SiaUNet.predict net f f in
  Alcotest.(check (array int)) "depth-1 shape" [| 6; 6 |] (T.shape c0)

let test_unet_rejects_bad_depth () =
  Alcotest.check_raises "depth 3 unsupported"
    (Invalid_argument "Siamese_unet.create: depth must be 1 or 2") (fun () ->
      ignore
        (SiaUNet.create (Rng.create 1)
           { SiaUNet.in_channels = 1; base_channels = 2; depth = 3 }))

let test_unet_siamese_symmetry () =
  (* Interchangeable dies: swapping the two input stacks swaps the two
     output maps exactly, because encoder/decoder weights are shared and
     the communication layer is the only cross-path.  This is the
     defining property of the paper's architecture (section III-C). *)
  let net = SiaUNet.create (Rng.create 10) small_cfg in
  let f0 = T.rand_uniform (Rng.create 11) [| 3; 8; 8 |] in
  let f1 = T.rand_uniform (Rng.create 12) [| 3; 8; 8 |] in
  let c0, c1 = SiaUNet.predict net f0 f1 in
  let c0', c1' = SiaUNet.predict net f1 f0 in
  Alcotest.(check bool) "swap symmetry (top)" true
    (T.approx_equal ~eps:1e-9 c0 c1');
  Alcotest.(check bool) "swap symmetry (bottom)" true
    (T.approx_equal ~eps:1e-9 c1 c0')

let test_unet_communication_matters () =
  (* Changing die 1's input must change die 0's prediction: the
     communication layer really exchanges information between dies. *)
  let net = SiaUNet.create (Rng.create 13) small_cfg in
  let f0 = T.rand_uniform (Rng.create 14) [| 3; 8; 8 |] in
  let f1 = T.rand_uniform (Rng.create 15) [| 3; 8; 8 |] in
  let f1' = T.scale 2. f1 in
  let c0_a, _ = SiaUNet.predict net f0 f1 in
  let c0_b, _ = SiaUNet.predict net f0 f1' in
  Alcotest.(check bool) "cross-die influence" false
    (T.approx_equal ~eps:1e-9 c0_a c0_b)

let test_unet_gradients_flow_to_inputs () =
  (* Algorithm 2 requires gradients through the frozen net into the
     feature maps. *)
  let net = SiaUNet.create (Rng.create 16) small_cfg in
  let f0 = V.param (T.rand_uniform (Rng.create 17) [| 3; 8; 8 |]) in
  let f1 = V.param (T.rand_uniform (Rng.create 18) [| 3; 8; 8 |]) in
  let c0, c1 = SiaUNet.forward net f0 f1 in
  let loss = V.add (V.sum (V.sqr c0)) (V.sum (V.sqr c1)) in
  V.backward loss;
  Alcotest.(check bool) "nonzero input grad (die 0)" true
    (T.frobenius (V.grad f0) > 0.);
  Alcotest.(check bool) "nonzero input grad (die 1)" true
    (T.frobenius (V.grad f1) > 0.)

let test_unet_trains () =
  (* Tiny overfit run: the predictor must fit one (features, label) pair;
     this is a miniature of Algorithm 1. *)
  let net = SiaUNet.create (Rng.create 19) small_cfg in
  let opt = Opt.adam ~lr:0.01 (SiaUNet.params net) in
  let f0 = T.rand_uniform (Rng.create 20) [| 3; 8; 8 |] in
  let f1 = T.rand_uniform (Rng.create 21) [| 3; 8; 8 |] in
  let t0 = T.rand_uniform (Rng.create 22) [| 1; 8; 8 |] in
  let t1 = T.rand_uniform (Rng.create 23) [| 1; 8; 8 |] in
  let run_epoch () =
    let c0, c1 = SiaUNet.forward net (V.const f0) (V.const f1) in
    let loss =
      V.scale 0.5 (V.add (V.rmse_frobenius c0 t0) (V.rmse_frobenius c1 t1))
    in
    let lv = T.get_flat (V.data loss) 0 in
    V.backward loss;
    Opt.step opt;
    lv
  in
  let first = run_epoch () in
  let last = ref first in
  for _ = 1 to 150 do
    last := run_epoch ()
  done;
  Alcotest.(check bool)
    (Printf.sprintf "loss decreased (%.4f -> %.4f)" first !last)
    true
    (!last < first /. 3.)

let test_unet_save_load () =
  let net = SiaUNet.create (Rng.create 24) small_cfg in
  let f0 = T.rand_uniform (Rng.create 25) [| 3; 8; 8 |] in
  let f1 = T.rand_uniform (Rng.create 26) [| 3; 8; 8 |] in
  let c0, _ = SiaUNet.predict net f0 f1 in
  let path = Filename.temp_file "dco3d_unet" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      SiaUNet.save net path;
      let net' = SiaUNet.load path in
      let c0', _ = SiaUNet.predict net' f0 f1 in
      Alcotest.(check bool) "same prediction after reload" true
        (T.approx_equal ~eps:1e-12 c0 c0');
      Alcotest.(check int) "same param count" (SiaUNet.num_params net)
        (SiaUNet.num_params net'))

let test_unet_load_rejects_garbage () =
  let path = Filename.temp_file "dco3d_unet" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc "NOT-A-UNET-FILE-AT-ALL";
      close_out oc;
      (match SiaUNet.load path with
      | _ -> Alcotest.fail "expected Load_error"
      | exception SiaUNet.Load_error msg ->
          let contains hay needle =
            let nh = String.length hay and nn = String.length needle in
            let rec go i =
              i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
            in
            go 0
          in
          Alcotest.(check bool) "names the file" true (contains msg path);
          Alcotest.(check bool) "names the cause" true
            (contains msg "bad file magic")))

let test_unet_load_truncated () =
  let path = Filename.temp_file "dco3d_unet" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      (* valid magic, no snapshot behind it *)
      output_string oc "DCO3D-SIAUNET-V1";
      close_out oc;
      match SiaUNet.load path with
      | _ -> Alcotest.fail "expected Load_error on truncated file"
      | exception SiaUNet.Load_error msg ->
          let contains hay needle =
            let nh = String.length hay and nn = String.length needle in
            let rec go i =
              i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
            in
            go 0
          in
          Alcotest.(check bool) "names the file" true (contains msg path))

let suites =
  [
    ( "nn.layer",
      [
        Alcotest.test_case "conv shapes" `Quick test_conv_layer_shapes;
        Alcotest.test_case "linear shapes" `Quick test_linear_layer;
        Alcotest.test_case "seq composition" `Quick test_seq_composition;
        Alcotest.test_case "state roundtrip" `Quick test_layer_state_roundtrip;
        Alcotest.test_case "1x1 conv learns scaling" `Quick test_layer_trains;
      ] );
    ( "nn.siamese_unet",
      [
        Alcotest.test_case "output shapes" `Quick test_unet_shapes;
        Alcotest.test_case "depth 1" `Quick test_unet_depth1;
        Alcotest.test_case "rejects bad depth" `Quick test_unet_rejects_bad_depth;
        Alcotest.test_case "die-swap symmetry" `Quick test_unet_siamese_symmetry;
        Alcotest.test_case "communication layer mixes dies" `Quick test_unet_communication_matters;
        Alcotest.test_case "gradients reach inputs" `Quick test_unet_gradients_flow_to_inputs;
        Alcotest.test_case "overfits one sample" `Slow test_unet_trains;
        Alcotest.test_case "save/load roundtrip" `Quick test_unet_save_load;
        Alcotest.test_case "load rejects garbage" `Quick test_unet_load_rejects_garbage;
        Alcotest.test_case "load rejects truncated" `Quick test_unet_load_truncated;
      ] );
  ]
