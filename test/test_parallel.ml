(* Tests for the domain-pool runtime and the determinism contract of
   the parallelized kernels: every pooled path must be bit-identical to
   the sequential (DCO3D_JOBS=1) path. *)

module Pool = Dco3d_parallel.Pool
module T = Dco3d_tensor.Tensor
module Rng = Dco3d_tensor.Rng
module Gen = Dco3d_netlist.Generator
module Fp = Dco3d_place.Floorplan
module Placer = Dco3d_place.Placer
module Rudy = Dco3d_congestion.Rudy

(* Force a real pool even on single-core CI hosts: [~exact:true]
   bypasses the hardware clamp, so [n] domains genuinely run and the
   tests exercise true cross-domain schedules. *)
let with_jobs n f =
  Pool.set_jobs ~exact:true n;
  Fun.protect ~finally:(fun () -> Pool.set_jobs 1) f

let exact_tensor =
  Alcotest.testable T.pp (fun a b -> T.approx_equal ~eps:0. a b)

(* ------------------------------------------------------------------ *)
(* Pool primitives                                                     *)
(* ------------------------------------------------------------------ *)

let test_empty_range () =
  with_jobs 4 (fun () ->
      let hits = Atomic.make 0 in
      Pool.parallel_for 5 5 (fun _ -> Atomic.incr hits);
      Pool.parallel_for 7 3 (fun _ -> Atomic.incr hits);
      Alcotest.(check int) "no body calls" 0 (Atomic.get hits);
      let r =
        Pool.parallel_for_reduce ~init:42 ~combine:( + ) 9 9 (fun _ _ -> 1)
      in
      Alcotest.(check int) "empty reduce is init" 42 r)

let test_range_smaller_than_chunk () =
  with_jobs 4 (fun () ->
      let seen = Array.make 3 0 in
      Pool.parallel_for ~chunk:64 0 3 (fun i -> seen.(i) <- seen.(i) + 1);
      Alcotest.(check (array int)) "each index once" [| 1; 1; 1 |] seen)

let test_odd_sizes () =
  with_jobs 3 (fun () ->
      let n = 1023 in
      let seen = Array.make n 0 in
      Pool.parallel_for ~chunk:37 0 n (fun i -> seen.(i) <- seen.(i) + 1);
      Alcotest.(check bool) "every index exactly once" true
        (Array.for_all (( = ) 1) seen))

let test_reduce_sum_and_order () =
  with_jobs 4 (fun () ->
      let n = 10_000 in
      let total =
        Pool.parallel_for_reduce ~chunk:97 ~init:0 ~combine:( + ) 0 n
          (fun lo hi ->
            let s = ref 0 in
            for i = lo to hi - 1 do
              s := !s + i
            done;
            !s)
      in
      Alcotest.(check int) "sum 0..n-1" (n * (n - 1) / 2) total;
      (* chunk results must be combined in ascending range order *)
      let spans =
        Pool.parallel_for_reduce ~chunk:37 ~init:[]
          ~combine:(fun acc span -> span :: acc)
          0 500
          (fun lo hi -> (lo, hi))
        |> List.rev
      in
      let rec contiguous expected = function
        | [] -> expected = 500
        | (lo, hi) :: rest -> lo = expected && hi > lo && contiguous hi rest
      in
      Alcotest.(check bool) "partials in index order" true (contiguous 0 spans))

let test_nested_calls () =
  with_jobs 4 (fun () ->
      let grid = Array.make_matrix 4 100 0 in
      Pool.parallel_for ~chunk:1 0 4 (fun i ->
          Pool.parallel_for ~chunk:8 0 100 (fun j ->
              grid.(i).(j) <- grid.(i).(j) + 1));
      Alcotest.(check bool) "all cells touched once" true
        (Array.for_all (Array.for_all (( = ) 1)) grid))

let test_tabulate_and_map_array () =
  with_jobs 4 (fun () ->
      Alcotest.(check (array int))
        "tabulate"
        (Array.init 1001 (fun i -> i * i))
        (Pool.tabulate ~chunk:13 1001 (fun i -> i * i));
      Alcotest.(check (array int)) "tabulate empty" [||]
        (Pool.tabulate 0 (fun i -> i));
      let a = Array.init 257 (fun i -> i) in
      Alcotest.(check (array int))
        "map_array" (Array.map succ a)
        (Pool.map_array succ a))

let test_exception_propagates () =
  with_jobs 4 (fun () ->
      Alcotest.check_raises "body exception reaches caller" (Failure "boom")
        (fun () ->
          Pool.parallel_for ~chunk:1 0 64 (fun i ->
              if i = 13 then failwith "boom")))

let test_set_jobs () =
  Pool.set_jobs 3;
  Alcotest.(check int) "jobs reflects set_jobs" 3 (Pool.jobs ());
  Pool.set_jobs 1;
  Alcotest.(check int) "back to one" 1 (Pool.jobs ());
  Alcotest.check_raises "rejects zero"
    (Invalid_argument "Pool.set_jobs: need at least one job") (fun () ->
      Pool.set_jobs 0)

let test_effective_jobs_clamp () =
  let hw = max 1 (Domain.recommended_domain_count ()) in
  Pool.set_jobs (hw + 5);
  Alcotest.(check int) "requested is kept" (hw + 5) (Pool.jobs ());
  Alcotest.(check int) "clamped to hardware" hw (Pool.effective_jobs ());
  Pool.set_jobs ~exact:true (hw + 5);
  Alcotest.(check int) "exact bypasses the clamp" (hw + 5)
    (Pool.effective_jobs ());
  Pool.set_jobs 1

let test_exception_in_reduce () =
  with_jobs 4 (fun () ->
      Alcotest.check_raises "reduce body exception reaches caller"
        (Failure "kaboom") (fun () ->
          ignore
            (Pool.parallel_for_reduce ~chunk:1 ~init:0 ~combine:( + ) 0 32
               (fun lo _ -> if lo = 7 then failwith "kaboom" else lo)));
      (* the pool must still be usable after a failed region *)
      let ok =
        Pool.parallel_for_reduce ~chunk:1 ~init:0 ~combine:( + ) 0 32
          (fun lo _ -> lo)
      in
      Alcotest.(check int) "pool survives the failure" (31 * 32 / 2) ok)

(* ------------------------------------------------------------------ *)
(* Per-domain scratch                                                  *)
(* ------------------------------------------------------------------ *)

let test_scratch_reuse_sequential () =
  let created = ref 0 in
  let sp =
    Pool.scratch_pool (fun () ->
        incr created;
        Bytes.create 8)
  in
  (* sequential borrows reuse one value: put-back precedes the next take *)
  for _ = 1 to 10 do
    Pool.with_scratch sp (fun b -> Bytes.set b 0 'x')
  done;
  Alcotest.(check int) "one scratch for sequential use" 1 !created

let test_scratch_bounded_creation () =
  with_jobs 4 (fun () ->
      let created = Atomic.make 0 in
      let sp =
        Pool.scratch_pool (fun () ->
            Atomic.incr created;
            ref 0)
      in
      Pool.parallel_for ~chunk:1 0 64 (fun _ ->
          Pool.with_scratch sp (fun r -> incr r));
      let n = Atomic.get created in
      Alcotest.(check bool)
        (Printf.sprintf "1 <= %d <= effective jobs" n)
        true
        (n >= 1 && n <= Pool.effective_jobs ()))

let test_scratch_returned_on_exception () =
  let created = ref 0 in
  let sp =
    Pool.scratch_pool (fun () ->
        incr created;
        ref 0)
  in
  (try Pool.with_scratch sp (fun _ -> failwith "boom") with Failure _ -> ());
  Pool.with_scratch sp (fun r -> incr r);
  Alcotest.(check int) "scratch came back after the exception" 1 !created

(* ------------------------------------------------------------------ *)
(* Parallel kernels are bit-identical to sequential                    *)
(* ------------------------------------------------------------------ *)

(* Sizes are above the tensor layer's parallelism threshold so the
   pooled path really runs; randomized values catch order-of-accumulation
   bugs that structured inputs would mask. *)

let check_par_eq_seq name f =
  let seq = ref None in
  Pool.set_jobs 1;
  seq := Some (f ());
  let par = with_jobs 4 f in
  Alcotest.check exact_tensor name (Option.get !seq) par

let test_matmul_par_eq_seq () =
  let rng = Rng.create 21 in
  let a = T.randn rng [| 61; 67 |] and b = T.randn rng [| 67; 71 |] in
  check_par_eq_seq "matmul 61x67x71" (fun () -> T.matmul a b);
  let a = T.randn rng [| 64; 64 |] and b = T.randn rng [| 64; 64 |] in
  check_par_eq_seq "matmul 64^3" (fun () -> T.matmul a b)

let test_matvec_par_eq_seq () =
  let rng = Rng.create 22 in
  let a = T.randn rng [| 300; 301 |] and x = T.randn rng [| 301 |] in
  check_par_eq_seq "matvec" (fun () -> T.matvec a x)

let test_conv2d_par_eq_seq () =
  let rng = Rng.create 23 in
  let x = T.randn rng [| 3; 26; 24 |] in
  let w = T.randn rng [| 5; 3; 3; 3 |] in
  let b = T.randn rng [| 5 |] in
  check_par_eq_seq "conv2d" (fun () ->
      T.conv2d ~pad:1 x ~weight:w ~bias:(Some b));
  check_par_eq_seq "conv2d stride 2" (fun () ->
      T.conv2d ~stride:2 ~pad:1 x ~weight:w ~bias:None)

let test_conv2d_backwards_par_eq_seq () =
  let rng = Rng.create 24 in
  let x = T.randn rng [| 3; 26; 24 |] in
  let w = T.randn rng [| 5; 3; 3; 3 |] in
  let y = T.conv2d ~pad:1 x ~weight:w ~bias:None in
  let gout = T.randn rng (T.shape y) in
  check_par_eq_seq "backward input" (fun () ->
      T.conv2d_backward_input ~pad:1 ~input_shape:(T.shape x) ~weight:w gout);
  check_par_eq_seq "backward weight" (fun () ->
      T.conv2d_backward_weight ~pad:1 ~input:x ~weight_shape:(T.shape w) gout)

let test_conv2d_transpose_par_eq_seq () =
  let rng = Rng.create 25 in
  let x = T.randn rng [| 6; 17; 19 |] in
  let w = T.randn rng [| 6; 4; 4; 4 |] in
  let b = T.randn rng [| 4 |] in
  check_par_eq_seq "conv2d_transpose" (fun () ->
      T.conv2d_transpose ~stride:2 ~pad:1 x ~weight:w ~bias:(Some b))

let test_rudy_par_eq_seq () =
  let nl = Gen.generate ~scale:0.02 ~seed:5 (Gen.profile "DMA") in
  let fp = Fp.create nl in
  let p = Placer.global_place ~seed:1 ~params:Dco3d_place.Params.default nl fp in
  check_par_eq_seq "rudy_map" (fun () ->
      Rudy.rudy_map p ~tier:0 ~kind:Rudy.All ~nx:48 ~ny:48);
  check_par_eq_seq "pin_rudy_map" (fun () ->
      Rudy.pin_rudy_map p ~tier:0 ~kind:Rudy.Two_d ~nx:48 ~ny:48)

let suites =
  [
    ( "parallel.pool",
      [
        Alcotest.test_case "empty range" `Quick test_empty_range;
        Alcotest.test_case "range < chunk" `Quick test_range_smaller_than_chunk;
        Alcotest.test_case "odd sizes" `Quick test_odd_sizes;
        Alcotest.test_case "reduce sum + order" `Quick test_reduce_sum_and_order;
        Alcotest.test_case "nested calls" `Quick test_nested_calls;
        Alcotest.test_case "tabulate / map_array" `Quick test_tabulate_and_map_array;
        Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
        Alcotest.test_case "exception in reduce" `Quick test_exception_in_reduce;
        Alcotest.test_case "set_jobs" `Quick test_set_jobs;
        Alcotest.test_case "effective_jobs clamp" `Quick test_effective_jobs_clamp;
        Alcotest.test_case "scratch reuse (sequential)" `Quick test_scratch_reuse_sequential;
        Alcotest.test_case "scratch bounded creation" `Quick test_scratch_bounded_creation;
        Alcotest.test_case "scratch returned on exception" `Quick test_scratch_returned_on_exception;
      ] );
    ( "parallel.kernels",
      [
        Alcotest.test_case "matmul" `Quick test_matmul_par_eq_seq;
        Alcotest.test_case "matvec" `Quick test_matvec_par_eq_seq;
        Alcotest.test_case "conv2d" `Quick test_conv2d_par_eq_seq;
        Alcotest.test_case "conv2d backwards" `Quick test_conv2d_backwards_par_eq_seq;
        Alcotest.test_case "conv2d_transpose" `Quick test_conv2d_transpose_par_eq_seq;
        Alcotest.test_case "rudy" `Quick test_rudy_par_eq_seq;
      ] );
  ]
