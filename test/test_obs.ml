(* Tests for the observability subsystem (lib/obs): span nesting and
   rollup, counter aggregation under pool parallelism, disabled-mode
   no-op behavior, and Chrome-trace JSON well-formedness.

   The obs state is global, so every test starts from [Obs.reset] and
   restores the disabled default on the way out. *)

module Obs = Dco3d_obs.Obs
module Pool = Dco3d_parallel.Pool

let with_obs f =
  Obs.reset ();
  Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    f

let with_jobs n f =
  Pool.set_jobs ~exact:true n;
  Fun.protect ~finally:(fun () -> Pool.set_jobs 1) f

let find_stat path =
  List.find_opt
    (fun s -> s.Obs.sp_path = path)
    (Obs.stage_profile ())

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  with_obs (fun () ->
      Obs.with_span "outer" (fun () ->
          Obs.with_span "inner" (fun () -> ());
          Obs.with_span "inner" (fun () -> ()));
      Obs.with_span "outer" (fun () -> ());
      let outer = Option.get (find_stat "outer") in
      let inner = Option.get (find_stat "outer/inner") in
      Alcotest.(check int) "outer count" 2 outer.Obs.sp_count;
      Alcotest.(check int) "inner count" 2 inner.Obs.sp_count;
      Alcotest.(check bool) "no bare inner" true (find_stat "inner" = None);
      Alcotest.(check int) "4 raw events" 4 (Obs.span_events ()))

let test_span_ordering () =
  (* a parent's total covers its children; the profile sorts by
     decreasing total *)
  with_obs (fun () ->
      Obs.with_span "parent" (fun () ->
          Obs.with_span "child" (fun () -> Unix.sleepf 0.002));
      let parent = Option.get (find_stat "parent") in
      let child = Option.get (find_stat "parent/child") in
      Alcotest.(check bool) "parent >= child" true
        (parent.Obs.sp_total_ms >= child.Obs.sp_total_ms);
      match Obs.stage_profile () with
      | first :: _ ->
          Alcotest.(check string) "sorted by total" "parent" first.Obs.sp_path
      | [] -> Alcotest.fail "empty profile")

let test_span_rollup () =
  with_obs (fun () ->
      for i = 0 to 4 do
        Obs.with_span (Printf.sprintf "route/net:%d" i) (fun () -> ())
      done;
      Obs.with_span "route/net:final" (fun () -> ());
      let rolled = Option.get (find_stat "route/net:*") in
      Alcotest.(check int) "numeric ids roll up" 5 rolled.Obs.sp_count;
      Alcotest.(check bool) "non-numeric id kept" true
        (find_stat "route/net:final" <> None))

let test_span_passes_result_and_exn () =
  with_obs (fun () ->
      Alcotest.(check int) "result" 41 (Obs.with_span "s" (fun () -> 41));
      (try Obs.with_span "boom" (fun () -> failwith "x") with Failure _ -> ());
      (* the span closed despite the exception, and the stack unwound *)
      Alcotest.(check bool) "boom recorded" true (find_stat "boom" <> None);
      Obs.with_span "after" (fun () -> ());
      Alcotest.(check bool) "stack unwound" true (find_stat "after" <> None))

(* ------------------------------------------------------------------ *)
(* Counters under parallelism                                          *)
(* ------------------------------------------------------------------ *)

let count_with_jobs jobs =
  with_jobs jobs (fun () ->
      with_obs (fun () ->
          let c = Obs.counter "test/work_items" in
          Pool.parallel_for 0 1000 (fun _ -> Obs.incr c);
          let chunks0 = Obs.counter_value "pool/chunks" in
          Pool.for_chunks ~chunk:7 0 500 (fun lo hi -> Obs.incr ~by:(hi - lo) c);
          ( Obs.counter_value "test/work_items",
            Obs.counter_value "pool/chunks" - chunks0 )))

let test_counters_jobs_invariant () =
  let total1, chunks1 = count_with_jobs 1 in
  let total4, chunks4 = count_with_jobs 4 in
  Alcotest.(check int) "jobs=1 total" 1500 total1;
  Alcotest.(check int) "jobs=4 agrees" total1 total4;
  (* the chunk decomposition is a function of the range alone *)
  Alcotest.(check int) "chunk count jobs-invariant" chunks1 chunks4;
  Alcotest.(check int) "for_chunks ~chunk:7 over 500" ((500 + 6) / 7) chunks4

let test_gauges_and_histograms () =
  with_obs (fun () ->
      let g = Obs.gauge "test/level" in
      Obs.set_gauge g 2.5;
      Obs.set_gauge g 4.0;
      Alcotest.(check (float 0.)) "last write wins" 4.0
        (Obs.gauge_value "test/level");
      Alcotest.(check bool) "unknown gauge is nan" true
        (Float.is_nan (Obs.gauge_value "test/no_such"));
      let h = Obs.histogram "test/sizes" in
      List.iter (fun v -> Obs.observe h v) [ 3.; 1.; 2. ];
      match Obs.histogram_stats "test/sizes" with
      | Some (count, sum, mn, mx) ->
          Alcotest.(check int) "count" 3 count;
          Alcotest.(check (float 1e-12)) "sum" 6. sum;
          Alcotest.(check (float 0.)) "min" 1. mn;
          Alcotest.(check (float 0.)) "max" 3. mx
      | None -> Alcotest.fail "histogram missing")

(* ------------------------------------------------------------------ *)
(* Disabled mode                                                       *)
(* ------------------------------------------------------------------ *)

let test_disabled_noop () =
  Obs.reset ();
  Obs.disable ();
  let c = Obs.counter "test/disabled_counter" in
  let h = Obs.histogram "test/disabled_hist" in
  let g = Obs.gauge "test/disabled_gauge" in
  Obs.with_span "test/disabled_span" (fun () ->
      Obs.incr c;
      Obs.observe h 1.;
      Obs.set_gauge g 1.);
  Alcotest.(check int) "counter untouched" 0
    (Obs.counter_value "test/disabled_counter");
  Alcotest.(check bool) "gauge untouched" true
    (Float.is_nan (Obs.gauge_value "test/disabled_gauge"));
  Alcotest.(check bool) "no histogram" true
    (Obs.histogram_stats "test/disabled_hist" = None);
  Alcotest.(check int) "no span events" 0 (Obs.span_events ());
  Alcotest.(check (list reject)) "empty profile" [] (Obs.stage_profile ())

(* ------------------------------------------------------------------ *)
(* Chrome-trace JSON                                                   *)
(* ------------------------------------------------------------------ *)

(* Minimal JSON validator: enough grammar to prove the export is
   well-formed (balanced structure, terminated strings, no trailing
   commas) without an external dependency. *)
let validate_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = failwith (Printf.sprintf "json: %s at %d" msg !pos) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %c" c)
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> string_lit ()
    | Some ('-' | '0' .. '9') -> number ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | _ -> fail "value expected"
  and literal lit =
    if !pos + String.length lit <= n && String.sub s !pos (String.length lit) = lit
    then pos := !pos + String.length lit
    else fail ("expected " ^ lit)
  and number () =
    let start = !pos in
    while
      !pos < n
      && (match s.[!pos] with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false)
    do
      incr pos
    done;
    if !pos = start then fail "number expected"
  and string_lit () =
    expect '"';
    let closed = ref false in
    while not !closed do
      if !pos >= n then fail "unterminated string";
      (match s.[!pos] with
      | '"' -> closed := true
      | '\\' -> incr pos (* skip the escaped char *)
      | _ -> ());
      incr pos
    done
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then incr pos
    else begin
      let continue_ = ref true in
      while !continue_ do
        skip_ws ();
        string_lit ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> incr pos
        | Some '}' ->
            incr pos;
            continue_ := false
        | _ -> fail "',' or '}' expected"
      done
    end
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then incr pos
    else begin
      let continue_ = ref true in
      while !continue_ do
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> incr pos
        | Some ']' ->
            incr pos;
            continue_ := false
        | _ -> fail "',' or ']' expected"
      done
    end
  in
  value ();
  skip_ws ();
  if !pos <> n then fail "trailing garbage"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_chrome_trace_wellformed () =
  with_obs (fun () ->
      Obs.with_span "flow" ~args:[ ("design", "DMA \"quoted\"\n") ] (fun () ->
          Obs.with_span "place" (fun () -> ());
          Obs.with_span "route" (fun () -> ()));
      let c = Obs.counter "test/trace_counter" in
      Obs.incr ~by:3 c;
      let path = Filename.temp_file "dco3d_trace" ".json" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Obs.write_chrome_trace path;
          let s = read_file path in
          (match validate_json s with
          | () -> ()
          | exception Failure msg -> Alcotest.fail msg);
          let contains needle =
            let nh = String.length s and nn = String.length needle in
            let rec go i =
              i + nn <= nh && (String.sub s i nn = needle || go (i + 1))
            in
            go 0
          in
          Alcotest.(check bool) "has traceEvents" true (contains "\"traceEvents\"");
          Alcotest.(check bool) "has complete events" true (contains "\"ph\":\"X\"");
          Alcotest.(check bool) "span paths in cat" true (contains "flow/place");
          Alcotest.(check bool) "args escaped" true (contains "DMA \\\"quoted\\\"\\n");
          Alcotest.(check bool) "counter sample" true
            (contains "test/trace_counter")))

let test_profile_table_renders () =
  with_obs (fun () ->
      Obs.with_span "stage" (fun () -> ());
      Obs.incr (Obs.counter "test/table_counter");
      let table = Obs.profile_table () in
      let contains needle =
        let nh = String.length table and nn = String.length needle in
        let rec go i =
          i + nn <= nh && (String.sub table i nn = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "mentions span" true (contains "stage");
      Alcotest.(check bool) "mentions counter" true
        (contains "test/table_counter"))

let suites =
  [
    ( "obs",
      [
        Alcotest.test_case "span nesting" `Quick test_span_nesting;
        Alcotest.test_case "span ordering" `Quick test_span_ordering;
        Alcotest.test_case "span rollup" `Quick test_span_rollup;
        Alcotest.test_case "span result/exception" `Quick
          test_span_passes_result_and_exn;
        Alcotest.test_case "counters jobs-invariant" `Quick
          test_counters_jobs_invariant;
        Alcotest.test_case "gauges and histograms" `Quick
          test_gauges_and_histograms;
        Alcotest.test_case "disabled no-op" `Quick test_disabled_noop;
        Alcotest.test_case "chrome trace well-formed" `Quick
          test_chrome_trace_wellformed;
        Alcotest.test_case "profile table" `Quick test_profile_table_renders;
      ] );
  ]
