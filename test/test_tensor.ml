(* Unit and property tests for the tensor substrate. *)

module T = Dco3d_tensor.Tensor
module Rng = Dco3d_tensor.Rng
module Linalg = Dco3d_tensor.Linalg

let check_float = Alcotest.(check (float 1e-9))

let tensor_testable =
  Alcotest.testable T.pp (fun a b -> T.approx_equal ~eps:1e-9 a b)

(* ------------------------------------------------------------------ *)
(* Basic construction and access                                       *)
(* ------------------------------------------------------------------ *)

let test_make_and_access () =
  let t = T.make [| 2; 3 |] [| 1.; 2.; 3.; 4.; 5.; 6. |] in
  check_float "get [0;0]" 1. (T.get t [| 0; 0 |]);
  check_float "get [1;2]" 6. (T.get t [| 1; 2 |]);
  check_float "get2" 5. (T.get2 t 1 1);
  T.set t [| 0; 1 |] 9.;
  check_float "after set" 9. (T.get2 t 0 1);
  Alcotest.check Alcotest.int "numel" 6 (T.numel t);
  Alcotest.check Alcotest.int "rank" 2 (T.rank t)

let test_make_rejects_bad_length () =
  Alcotest.check_raises "bad length"
    (Invalid_argument "Tensor.make: shape implies 4 elements, got 3") (fun () ->
      ignore (T.make [| 2; 2 |] [| 1.; 2.; 3. |]))

let test_init_row_major () =
  let t = T.init [| 2; 2 |] (fun idx -> float_of_int ((10 * idx.(0)) + idx.(1))) in
  Alcotest.check tensor_testable "init order"
    (T.make [| 2; 2 |] [| 0.; 1.; 10.; 11. |])
    t

let test_get3 () =
  let t = T.init [| 2; 3; 4 |] (fun i -> float_of_int ((i.(0) * 100) + (i.(1) * 10) + i.(2))) in
  check_float "get3" 123. (T.get3 t 1 2 3);
  T.set3 t 0 1 2 77.;
  check_float "set3" 77. (T.get t [| 0; 1; 2 |])

let test_reshape_shares_data () =
  let t = T.zeros [| 2; 3 |] in
  let r = T.reshape t [| 6 |] in
  T.set_flat r 0 5.;
  check_float "shared" 5. (T.get2 t 0 0);
  Alcotest.check_raises "bad reshape"
    (Invalid_argument "Tensor.reshape: element count mismatch") (fun () ->
      ignore (T.reshape t [| 7 |]))

(* Regression: reshape aliases the data (by documented contract) but
   must not alias the caller's shape array, and reshape_copy must hand
   back fully owned storage. *)
let test_reshape_aliasing_contract () =
  let t = T.make [| 2; 3 |] [| 1.; 2.; 3.; 4.; 5.; 6. |] in
  (* mutating the shape array after make/reshape cannot corrupt tensors *)
  let sh = [| 3; 2 |] in
  let r = T.reshape t sh in
  sh.(0) <- 999;
  Alcotest.(check (array int)) "reshape copies shape" [| 3; 2 |] (T.shape r);
  let sh2 = [| 6 |] in
  let m = T.make sh2 (Array.init 6 float_of_int) in
  sh2.(0) <- 999;
  Alcotest.(check (array int)) "make copies shape" [| 6 |] (T.shape m);
  (* reshape_copy: independent in both directions *)
  let c = T.reshape_copy t [| 6 |] in
  T.set_flat c 0 42.;
  check_float "copy write stays local" 1. (T.get2 t 0 0);
  T.set2 t 0 1 (-7.);
  check_float "source write stays local" 2. (T.get_flat c 1);
  Alcotest.check_raises "bad reshape_copy"
    (Invalid_argument "Tensor.reshape_copy: element count mismatch") (fun () ->
      ignore (T.reshape_copy t [| 4 |]))

let test_scalar () =
  let s = T.scalar 3.5 in
  Alcotest.check Alcotest.int "rank 0" 0 (T.rank s);
  check_float "value" 3.5 (T.get_flat s 0)

(* ------------------------------------------------------------------ *)
(* Elementwise and reductions                                          *)
(* ------------------------------------------------------------------ *)

let test_elementwise () =
  let a = T.of_array1 [| 1.; -2.; 3. |] in
  let b = T.of_array1 [| 4.; 5.; -6. |] in
  Alcotest.check tensor_testable "add" (T.of_array1 [| 5.; 3.; -3. |]) (T.add a b);
  Alcotest.check tensor_testable "sub" (T.of_array1 [| -3.; -7.; 9. |]) (T.sub a b);
  Alcotest.check tensor_testable "mul" (T.of_array1 [| 4.; -10.; -18. |]) (T.mul a b);
  Alcotest.check tensor_testable "relu" (T.of_array1 [| 1.; 0.; 3. |]) (T.relu a);
  Alcotest.check tensor_testable "neg" (T.of_array1 [| -1.; 2.; -3. |]) (T.neg a);
  Alcotest.check tensor_testable "scale" (T.of_array1 [| 2.; -4.; 6. |]) (T.scale 2. a);
  Alcotest.check tensor_testable "clip"
    (T.of_array1 [| 1.; -1.; 1.5 |])
    (T.clip ~lo:(-1.) ~hi:1.5 a)

let test_reductions () =
  let a = T.of_array1 [| 1.; -2.; 3.; 6. |] in
  check_float "sum" 8. (T.sum a);
  check_float "mean" 2. (T.mean a);
  check_float "max" 6. (T.max_elt a);
  check_float "min" (-2.) (T.min_elt a);
  check_float "dot" (1. +. 4. +. 9. +. 36.) (T.dot a a);
  check_float "frobenius" (sqrt 50.) (T.frobenius a)

let test_axpy () =
  let x = T.of_array1 [| 1.; 2. |] in
  let y = T.of_array1 [| 10.; 20. |] in
  T.axpy ~alpha:2. x y;
  Alcotest.check tensor_testable "axpy" (T.of_array1 [| 12.; 24. |]) y

(* ------------------------------------------------------------------ *)
(* Matmul                                                              *)
(* ------------------------------------------------------------------ *)

let test_matmul () =
  let a = T.of_array2 [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = T.of_array2 [| [| 5.; 6. |]; [| 7.; 8. |] |] in
  Alcotest.check tensor_testable "matmul"
    (T.of_array2 [| [| 19.; 22. |]; [| 43.; 50. |] |])
    (T.matmul a b);
  Alcotest.check tensor_testable "transpose"
    (T.of_array2 [| [| 1.; 3. |]; [| 2.; 4. |] |])
    (T.transpose2 a);
  Alcotest.check tensor_testable "matvec"
    (T.of_array1 [| 5.; 11. |])
    (T.matvec a (T.of_array1 [| 1.; 2. |]))

let prop_matmul_assoc =
  QCheck.Test.make ~name:"matmul associativity (small random)" ~count:30
    QCheck.(triple (int_bound 4) (int_bound 4) (int_bound 4))
    (fun (m, k, n) ->
      let m = m + 1 and k = k + 1 and n = n + 1 in
      let rng = Rng.create ((m * 100) + (k * 10) + n) in
      let a = T.rand_uniform rng ~lo:(-1.) ~hi:1. [| m; k |] in
      let b = T.rand_uniform rng ~lo:(-1.) ~hi:1. [| k; n |] in
      let c = T.rand_uniform rng ~lo:(-1.) ~hi:1. [| n; 2 |] in
      T.approx_equal ~eps:1e-8
        (T.matmul (T.matmul a b) c)
        (T.matmul a (T.matmul b c)))

(* ------------------------------------------------------------------ *)
(* Convolution                                                         *)
(* ------------------------------------------------------------------ *)

let test_conv2d_identity () =
  (* 1x1 kernel of weight 1 is the identity. *)
  let rng = Rng.create 1 in
  let x = T.rand_uniform rng [| 2; 4; 4 |] in
  let w = T.make [| 2; 2; 1; 1 |] [| 1.; 0.; 0.; 1. |] in
  let y = T.conv2d x ~weight:w ~bias:None in
  Alcotest.check tensor_testable "identity conv" x y

let test_conv2d_known () =
  (* 3x3 all-ones kernel on a 3x3 all-ones input with pad 1: each output
     counts the number of valid taps. *)
  let x = T.ones [| 1; 3; 3 |] in
  let w = T.ones [| 1; 1; 3; 3 |] in
  let y = T.conv2d ~pad:1 x ~weight:w ~bias:None in
  Alcotest.check tensor_testable "padded sum conv"
    (T.make [| 1; 3; 3 |] [| 4.; 6.; 4.; 6.; 9.; 6.; 4.; 6.; 4. |])
    y

let test_conv2d_stride_shape () =
  let x = T.zeros [| 3; 8; 8 |] in
  let w = T.zeros [| 5; 3; 3; 3 |] in
  let y = T.conv2d ~stride:2 ~pad:1 x ~weight:w ~bias:None in
  Alcotest.(check (array int)) "strided shape" [| 5; 4; 4 |] (T.shape y)

let test_conv2d_bias () =
  let x = T.zeros [| 1; 2; 2 |] in
  let w = T.zeros [| 2; 1; 1; 1 |] in
  let b = T.of_array1 [| 1.5; -0.5 |] in
  let y = T.conv2d x ~weight:w ~bias:(Some b) in
  check_float "bias ch0" 1.5 (T.get3 y 0 0 0);
  check_float "bias ch1" (-0.5) (T.get3 y 1 1 1)

(* Adjointness: <conv(x), y> = <x, conv_backward_input(y)> for any x, y.
   This is the defining property of a correct backward kernel. *)
let prop_conv_adjoint =
  QCheck.Test.make ~name:"conv2d input-backward is the adjoint" ~count:20
    QCheck.(pair (int_bound 1000) (int_bound 1))
    (fun (seed, s) ->
      let stride = s + 1 in
      let rng = Rng.create seed in
      let ci = 2 and co = 3 and h = 6 and w = 6 and k = 3 and pad = 1 in
      let x = T.randn rng [| ci; h; w |] in
      let wt = T.randn rng [| co; ci; k; k |] in
      let y = T.conv2d ~stride ~pad x ~weight:wt ~bias:None in
      let gy = T.randn rng (T.shape y) in
      let gx =
        T.conv2d_backward_input ~stride ~pad ~input_shape:[| ci; h; w |]
          ~weight:wt gy
      in
      abs_float (T.dot y gy -. T.dot x gx) < 1e-8)

let prop_conv_weight_grad =
  QCheck.Test.make ~name:"conv2d weight-backward matches finite differences"
    ~count:10 (QCheck.int_bound 1000) (fun seed ->
      let rng = Rng.create seed in
      let ci = 1 and co = 2 and h = 5 and w = 5 and k = 3 in
      let x = T.randn rng [| ci; h; w |] in
      let wt = T.randn rng [| co; ci; k; k |] in
      let loss wt = T.sum (T.conv2d ~pad:1 x ~weight:wt ~bias:None) in
      let gy = T.ones [| co; h; w |] in
      let gw =
        T.conv2d_backward_weight ~pad:1 ~input:x ~weight_shape:(T.shape wt) gy
      in
      let eps = 1e-5 in
      let idx = Rng.int rng (T.numel wt) in
      let wplus = T.copy wt and wminus = T.copy wt in
      T.set_flat wplus idx (T.get_flat wt idx +. eps);
      T.set_flat wminus idx (T.get_flat wt idx -. eps);
      let fd = (loss wplus -. loss wminus) /. (2. *. eps) in
      abs_float (fd -. T.get_flat gw idx) < 1e-4)

let test_conv_transpose_shape () =
  let x = T.zeros [| 4; 5; 5 |] in
  let w = T.zeros [| 4; 2; 2; 2 |] in
  let y = T.conv2d_transpose ~stride:2 x ~weight:w ~bias:None in
  Alcotest.(check (array int)) "transpose shape" [| 2; 10; 10 |] (T.shape y)

let prop_conv_transpose_adjoint =
  (* conv2d_transpose is the adjoint of a matching conv2d:
     <convT(x), y> = <x, conv(y)> when the kernels correspond. *)
  QCheck.Test.make ~name:"conv2d_transpose is adjoint of conv2d" ~count:20
    (QCheck.int_bound 1000) (fun seed ->
      let rng = Rng.create seed in
      let ci = 2 and co = 3 and h = 4 and w = 4 and k = 2 and stride = 2 in
      (* weight for transpose: [ci; co; kh; kw] *)
      let wt = T.randn rng [| ci; co; k; k |] in
      let x = T.randn rng [| ci; h; w |] in
      let y = T.conv2d_transpose ~stride x ~weight:wt ~bias:None in
      let gy = T.randn rng (T.shape y) in
      (* adjoint direction: conv2d with the same kernel viewed as
         [cout = ci; cin = co]. *)
      let gx = T.conv2d ~stride gy ~weight:wt ~bias:None in
      abs_float (T.dot y gy -. T.dot x gx) < 1e-8)

(* ------------------------------------------------------------------ *)
(* Pooling, upsampling, resize                                         *)
(* ------------------------------------------------------------------ *)

let test_maxpool () =
  let x = T.make [| 1; 2; 4 |] [| 1.; 5.; 2.; 0.; 3.; 4.; 1.; 7. |] in
  let y, arg = T.maxpool2 x in
  Alcotest.check tensor_testable "maxpool" (T.make [| 1; 1; 2 |] [| 5.; 7. |]) y;
  let gin = T.maxpool2_backward ~input_shape:[| 1; 2; 4 |] arg (T.ones [| 1; 1; 2 |]) in
  Alcotest.check tensor_testable "maxpool backward"
    (T.make [| 1; 2; 4 |] [| 0.; 1.; 0.; 0.; 0.; 0.; 0.; 1. |])
    gin

let test_avgpool () =
  let x = T.make [| 1; 2; 2 |] [| 1.; 2.; 3.; 6. |] in
  Alcotest.check tensor_testable "avgpool" (T.make [| 1; 1; 1 |] [| 3. |])
    (T.avgpool2 x)

let test_upsample () =
  let x = T.make [| 1; 1; 2 |] [| 1.; 2. |] in
  Alcotest.check tensor_testable "upsample"
    (T.make [| 1; 2; 4 |] [| 1.; 1.; 2.; 2.; 1.; 1.; 2.; 2. |])
    (T.upsample_nearest2 x)

let test_resize_nearest_roundtrip () =
  (* Paper section III-B3: nearest-neighbour resize preserves magnitudes
     and recovers the original map after upscale-then-downscale. *)
  let rng = Rng.create 42 in
  let m = T.rand_uniform rng [| 6; 6 |] in
  let up = T.resize_nearest m 12 12 in
  let back = T.resize_nearest up 6 6 in
  Alcotest.check tensor_testable "resize roundtrip" m back;
  check_float "magnitude preserved" (T.max_elt m) (T.max_elt up)

let prop_resize_preserves_range =
  QCheck.Test.make ~name:"resize_nearest never invents values" ~count:50
    (QCheck.int_bound 10_000) (fun seed ->
      let rng = Rng.create seed in
      let h = 3 + Rng.int rng 10 and w = 3 + Rng.int rng 10 in
      let m = T.rand_uniform rng [| h; w |] in
      let r = T.resize_nearest m (2 + Rng.int rng 20) (2 + Rng.int rng 20) in
      T.max_elt r <= T.max_elt m +. 1e-12
      && T.min_elt r >= T.min_elt m -. 1e-12)

(* ------------------------------------------------------------------ *)
(* Channels, padding, orientation transforms                           *)
(* ------------------------------------------------------------------ *)

let test_concat_slice_channels () =
  let a = T.full [| 1; 2; 2 |] 1. in
  let b = T.full [| 2; 2; 2 |] 2. in
  let c = T.concat_channels [ a; b ] in
  Alcotest.(check (array int)) "concat shape" [| 3; 2; 2 |] (T.shape c);
  Alcotest.check tensor_testable "slice" b (T.slice_channels c 1 2);
  Alcotest.check tensor_testable "channel"
    (T.full [| 2; 2 |] 1.)
    (T.channel c 0)

let test_concat_rank2_promotion () =
  let a = T.full [| 2; 2 |] 3. in
  let c = T.concat_channels [ a; a ] in
  Alcotest.(check (array int)) "promoted shape" [| 2; 2; 2 |] (T.shape c)

let test_pad2d () =
  let x = T.ones [| 1; 1 |] in
  let p = T.pad2d x 1 in
  Alcotest.check tensor_testable "pad"
    (T.make [| 3; 3 |] [| 0.; 0.; 0.; 0.; 1.; 0.; 0.; 0.; 0. |])
    p

let test_rot90_cycle () =
  let rng = Rng.create 7 in
  let m = T.rand_uniform rng [| 4; 6 |] in
  let r4 = T.rot90 (T.rot90 (T.rot90 (T.rot90 m))) in
  Alcotest.check tensor_testable "rot90^4 = id" m r4;
  Alcotest.(check (array int)) "rot90 shape" [| 6; 4 |] (T.shape (T.rot90 m))

let test_flips_involutive () =
  let rng = Rng.create 8 in
  let m = T.rand_uniform rng [| 3; 5 |] in
  Alcotest.check tensor_testable "flip_h^2 = id" m (T.flip_h (T.flip_h m));
  Alcotest.check tensor_testable "flip_v^2 = id" m (T.flip_v (T.flip_v m));
  let c = T.rand_uniform rng [| 2; 3; 5 |] in
  Alcotest.check tensor_testable "rank3 flip_v^2 = id" c (T.flip_v (T.flip_v c))

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_determinism () =
  let a = Rng.create 17 and b = Rng.create 17 in
  for _ = 1 to 100 do
    check_float "same stream" (Rng.uniform a) (Rng.uniform b)
  done

let test_rng_split_independence () =
  let a = Rng.create 17 in
  let c = Rng.split a in
  (* The split stream must differ from the parent's continuation. *)
  let xs = Array.init 10 (fun _ -> Rng.uniform a) in
  let ys = Array.init 10 (fun _ -> Rng.uniform c) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_rng_uniform_range () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.range rng 2. 5. in
    Alcotest.(check bool) "in range" true (v >= 2. && v < 5.)
  done

let test_rng_gaussian_moments () =
  let rng = Rng.create 4 in
  let n = 20000 in
  let xs = Array.init n (fun _ -> Rng.gaussian rng) in
  let mean = Array.fold_left ( +. ) 0. xs /. float_of_int n in
  let var =
    Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs
    /. float_of_int n
  in
  Alcotest.(check bool) "mean ~ 0" true (abs_float mean < 0.05);
  Alcotest.(check bool) "var ~ 1" true (abs_float (var -. 1.) < 0.05)

(* Pins the gaussian stream layout (the interface guarantee added with
   the explicit u1-then-u2 sequencing fix): the first 8 deviates of two
   fixed seeds, bit-for-bit.  If this test fails, every seeded
   placement and dataset in the repo has silently shifted. *)
let test_rng_gaussian_stream_pinned () =
  let expect_42 =
    [|
      0x1.160aff434622bp-1;
      0x1.ceecb24eab8c2p+0;
      0x1.2d06dee17728ap-6;
      0x1.d4877725ed293p-1;
      0x1.d7dd2fc70572bp-6;
      0x1.1b615727bb0e3p-1;
      0x1.9b685848f051cp-2;
      0x1.8e04e447870d2p+0;
    |]
  in
  let expect_7 =
    [|
      -0x1.766856aa9a2d2p-2;
      0x1.093de7eb90b17p-2;
      -0x1.03a2c761b72c9p-1;
      -0x1.12ce2e86f41a7p+0;
      0x1.1a42e8c18845fp-1;
      0x1.a59127bd87728p-3;
      -0x1.9184060107012p-4;
      0x1.0d64f49dddc1p-1;
    |]
  in
  List.iter
    (fun (seed, expect) ->
      let rng = Rng.create seed in
      Array.iteri
        (fun i e ->
          let got = Rng.gaussian rng in
          Alcotest.(check (float 0.))
            (Printf.sprintf "seed %d deviate %d" seed i)
            e got)
        expect)
    [ (42, expect_42); (7, expect_7) ];
  (* mu/sigma are an affine map of the same underlying stream *)
  let a = Rng.create 42 and b = Rng.create 42 in
  for i = 0 to 7 do
    let plain = Rng.gaussian a in
    let scaled = Rng.gaussian ~mu:3. ~sigma:0.5 b in
    Alcotest.(check (float 1e-12))
      (Printf.sprintf "affine deviate %d" i)
      (3. +. (0.5 *. plain))
      scaled
  done

let test_rng_permutation () =
  let rng = Rng.create 5 in
  let p = Rng.permutation rng 50 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

(* ------------------------------------------------------------------ *)
(* Linalg                                                              *)
(* ------------------------------------------------------------------ *)

let spd_of_seed seed n =
  let rng = Rng.create seed in
  let a = T.randn rng [| n; n |] in
  let ata = T.matmul (T.transpose2 a) a in
  (* + n*I for conditioning *)
  T.init [| n; n |] (fun i ->
      T.get2 ata i.(0) i.(1) +. if i.(0) = i.(1) then float_of_int n else 0.)

let test_cholesky_reconstruct () =
  let a = spd_of_seed 11 5 in
  let l = Linalg.cholesky a in
  let llt = T.matmul l (T.transpose2 l) in
  Alcotest.(check bool) "L L^T = A" true (T.approx_equal ~eps:1e-8 a llt)

let test_cholesky_solve () =
  let a = spd_of_seed 12 6 in
  let rng = Rng.create 13 in
  let x_true = T.randn rng [| 6 |] in
  let b = T.matvec a x_true in
  let l = Linalg.cholesky a in
  let x = Linalg.cholesky_solve l b in
  Alcotest.(check bool) "solves" true (T.approx_equal ~eps:1e-6 x_true x)

let test_cholesky_rejects_indefinite () =
  let a = T.of_array2 [| [| 1.; 2. |]; [| 2.; 1. |] |] in
  Alcotest.check_raises "not PD"
    (Failure "Linalg.cholesky: matrix not positive definite") (fun () ->
      ignore (Linalg.cholesky a))

let prop_cg_solves_spd =
  QCheck.Test.make ~name:"conjugate gradient solves SPD systems" ~count:25
    (QCheck.int_bound 10_000) (fun seed ->
      let n = 4 + (seed mod 12) in
      let a = spd_of_seed seed n in
      let rng = Rng.create (seed + 1) in
      let x_true = T.randn rng [| n |] in
      let b = T.matvec a x_true in
      let matvec v =
        let t = T.matvec a (T.of_array1 v) in
        Array.init n (T.get_flat t)
      in
      let x =
        Linalg.conjugate_gradient ~max_iter:500 ~tol:1e-12 matvec
          (Array.init n (T.get_flat b))
          (Array.make n 0.)
      in
      let ok = ref true in
      for i = 0 to n - 1 do
        if abs_float (x.(i) -. T.get_flat x_true i) > 1e-5 then ok := false
      done;
      !ok)

let test_solve_lower_transposed () =
  let a = spd_of_seed 21 6 in
  let l = Linalg.cholesky a in
  let rng = Rng.create 22 in
  let b = T.randn rng [| 6 |] in
  let x_fast = Linalg.solve_lower_transposed l b in
  let x_ref = Linalg.solve_upper (T.transpose2 l) b in
  Alcotest.(check bool)
    "matches transpose2 + solve_upper" true
    (T.approx_equal ~eps:1e-12 x_ref x_fast)

let test_cg_breakdown_reported () =
  (* indefinite diag(1, -1) with b = (1, 1): the very first search
     direction has p.Ap = 0, so the solver must report Breakdown after
     0 iterations — NOT Max_iter (the bug this pins down: breakdown
     used to be folded into iter := max_iter) *)
  let matvec (v : float array) = [| v.(0); -.v.(1) |] in
  let iters = ref (-1) in
  let status = ref Linalg.Converged in
  let _ =
    Linalg.conjugate_gradient ~max_iter:50 ~tol:1e-12 ~iterations_out:iters
      ~status_out:status matvec [| 1.; 1. |] [| 0.; 0. |]
  in
  Alcotest.(check bool)
    "status is Breakdown" true
    (!status = Linalg.Breakdown);
  Alcotest.(check bool)
    "breakdown is not Max_iter" true
    (!status <> Linalg.Max_iter);
  Alcotest.(check int) "real iteration count, not max_iter" 0 !iters;
  Alcotest.(check string) "printable" "breakdown"
    (Linalg.string_of_cg_status !status)

let test_cg_max_iter_reported () =
  let n = 8 in
  let a = spd_of_seed 31 n in
  let rng = Rng.create 32 in
  let x_true = T.randn rng [| n |] in
  let b = T.matvec a x_true in
  let matvec v =
    let t = T.matvec a (T.of_array1 v) in
    Array.init n (T.get_flat t)
  in
  let iters = ref (-1) in
  let status = ref Linalg.Breakdown in
  let _ =
    Linalg.conjugate_gradient ~max_iter:2 ~tol:1e-14 ~iterations_out:iters
      ~status_out:status matvec
      (Array.init n (T.get_flat b))
      (Array.make n 0.)
  in
  Alcotest.(check bool) "status is Max_iter" true (!status = Linalg.Max_iter);
  Alcotest.(check int) "spent the whole budget" 2 !iters

let prop_cg_status_consistent =
  QCheck.Test.make ~name:"CG status matches iterations_out" ~count:25
    (QCheck.int_bound 10_000) (fun seed ->
      let n = 4 + (seed mod 12) in
      let a = spd_of_seed seed n in
      let rng = Rng.create (seed + 1) in
      let x_true = T.randn rng [| n |] in
      let b = T.matvec a x_true in
      let matvec v =
        let t = T.matvec a (T.of_array1 v) in
        Array.init n (T.get_flat t)
      in
      let iters = ref (-1) in
      let status = ref Linalg.Breakdown in
      let _ =
        Linalg.conjugate_gradient ~max_iter:500 ~tol:1e-12
          ~iterations_out:iters ~status_out:status matvec
          (Array.init n (T.get_flat b))
          (Array.make n 0.)
      in
      (* a well-conditioned SPD system must converge, within budget *)
      !status = Linalg.Converged && !iters >= 0 && !iters < 500)

let qtest = QCheck_alcotest.to_alcotest

let suites =
  [
    ( "tensor.basic",
      [
        Alcotest.test_case "make/get/set" `Quick test_make_and_access;
        Alcotest.test_case "make rejects bad length" `Quick test_make_rejects_bad_length;
        Alcotest.test_case "init row-major" `Quick test_init_row_major;
        Alcotest.test_case "rank-3 accessors" `Quick test_get3;
        Alcotest.test_case "reshape shares data" `Quick test_reshape_shares_data;
        Alcotest.test_case "reshape aliasing contract" `Quick test_reshape_aliasing_contract;
        Alcotest.test_case "scalar" `Quick test_scalar;
        Alcotest.test_case "elementwise ops" `Quick test_elementwise;
        Alcotest.test_case "reductions" `Quick test_reductions;
        Alcotest.test_case "axpy" `Quick test_axpy;
      ] );
    ( "tensor.linear",
      [
        Alcotest.test_case "matmul/transpose/matvec" `Quick test_matmul;
        qtest prop_matmul_assoc;
      ] );
    ( "tensor.conv",
      [
        Alcotest.test_case "1x1 identity" `Quick test_conv2d_identity;
        Alcotest.test_case "3x3 padded sums" `Quick test_conv2d_known;
        Alcotest.test_case "strided shape" `Quick test_conv2d_stride_shape;
        Alcotest.test_case "bias broadcast" `Quick test_conv2d_bias;
        Alcotest.test_case "transpose shape" `Quick test_conv_transpose_shape;
        qtest prop_conv_adjoint;
        qtest prop_conv_weight_grad;
        qtest prop_conv_transpose_adjoint;
      ] );
    ( "tensor.maps",
      [
        Alcotest.test_case "maxpool fwd/bwd" `Quick test_maxpool;
        Alcotest.test_case "avgpool" `Quick test_avgpool;
        Alcotest.test_case "upsample nearest" `Quick test_upsample;
        Alcotest.test_case "resize roundtrip" `Quick test_resize_nearest_roundtrip;
        Alcotest.test_case "concat/slice channels" `Quick test_concat_slice_channels;
        Alcotest.test_case "rank-2 channel promotion" `Quick test_concat_rank2_promotion;
        Alcotest.test_case "pad2d" `Quick test_pad2d;
        Alcotest.test_case "rot90 four-cycle" `Quick test_rot90_cycle;
        Alcotest.test_case "flips involutive" `Quick test_flips_involutive;
        qtest prop_resize_preserves_range;
      ] );
    ( "tensor.rng",
      [
        Alcotest.test_case "determinism" `Quick test_rng_determinism;
        Alcotest.test_case "split independence" `Quick test_rng_split_independence;
        Alcotest.test_case "uniform range" `Quick test_rng_uniform_range;
        Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
        Alcotest.test_case "gaussian stream pinned" `Quick
          test_rng_gaussian_stream_pinned;
        Alcotest.test_case "permutation" `Quick test_rng_permutation;
      ] );
    ( "tensor.linalg",
      [
        Alcotest.test_case "cholesky reconstructs" `Quick test_cholesky_reconstruct;
        Alcotest.test_case "cholesky solve" `Quick test_cholesky_solve;
        Alcotest.test_case "cholesky rejects indefinite" `Quick test_cholesky_rejects_indefinite;
        Alcotest.test_case "transposed back-substitution" `Quick
          test_solve_lower_transposed;
        Alcotest.test_case "CG breakdown reported" `Quick
          test_cg_breakdown_reported;
        Alcotest.test_case "CG max_iter reported" `Quick
          test_cg_max_iter_reported;
        qtest prop_cg_solves_spd;
        qtest prop_cg_status_consistent;
      ] );
  ]
