(* Tests for the two-tier global router. *)

module T = Dco3d_tensor.Tensor
module Nl = Dco3d_netlist.Netlist
module Gen = Dco3d_netlist.Generator
module Fp = Dco3d_place.Floorplan
module Pl = Dco3d_place.Placement
module Placer = Dco3d_place.Placer
module Params = Dco3d_place.Params
module R = Dco3d_route.Router

let placed ?(scale = 0.02) ?(seed = 5) name =
  let nl = Gen.generate ~scale ~seed (Gen.profile name) in
  let fp = Fp.create nl in
  Placer.global_place ~seed:1 ~params:Params.default nl fp

let test_route_completes_all_nets () =
  let p = placed "DMA" in
  let r = R.route p in
  (* every signal net must have a routed length *)
  List.iter
    (fun (net : Nl.net) ->
      if r.R.net_length.(net.Nl.net_id) <= 0. then
        Alcotest.failf "net %d unrouted" net.Nl.net_id)
    (Nl.signal_nets p.Pl.nl);
  (* the clock net stays unrouted (CTS owns it) *)
  match Nl.clock_net p.Pl.nl with
  | Some clk ->
      Alcotest.(check (float 0.)) "clock not routed" 0.
        r.R.net_length.(clk.Nl.net_id)
  | None -> Alcotest.fail "expected a clock"

let test_wirelength_lower_bound () =
  (* routed length of a net can never beat its bounding-box
     half-perimeter (grid-quantized) *)
  let p = placed "DMA" in
  let r = R.route p in
  let fp = p.Pl.fp in
  let g = Fp.gcell_w fp +. Fp.gcell_h fp in
  List.iter
    (fun (net : Nl.net) ->
      let x0, y0, x1, y1 = Pl.net_bbox p net in
      let hp = x1 -. x0 +. (y1 -. y0) in
      let routed = r.R.net_length.(net.Nl.net_id) in
      (* one GCell of slack for quantization *)
      if routed +. (2. *. g) < hp then
        Alcotest.failf "net %d: routed %.2f < half-perimeter %.2f"
          net.Nl.net_id routed hp)
    (Nl.signal_nets p.Pl.nl);
  Alcotest.(check bool) "total WL >= 0.8 * HPWL" true
    (r.R.wirelength >= 0.8 *. Pl.hpwl p)

let test_overflow_consistency () =
  let p = placed "AES" in
  let r = R.route p in
  Alcotest.(check int) "total = H + V + via" r.R.overflow_total
    (r.R.overflow_h + r.R.overflow_v + r.R.overflow_via);
  Alcotest.(check bool) "gcell pct in range" true
    (r.R.overflow_gcell_pct >= 0. && r.R.overflow_gcell_pct <= 100.);
  (* congestion maps are consistent with the totals *)
  let map_sum =
    T.sum r.R.congestion.(0) +. T.sum r.R.congestion.(1)
  in
  Alcotest.(check (float 1e-6)) "maps sum to H+V overflow"
    (float_of_int (r.R.overflow_h + r.R.overflow_v))
    map_sum

let test_capacity_scaling_reduces_overflow () =
  let p = placed "AES" in
  let base_cfg = R.default_config p.Pl.fp in
  let tight = R.route ~config:{ base_cfg with R.cap_h = base_cfg.R.cap_h / 2;
                                cap_v = base_cfg.R.cap_v / 2 } p in
  let loose = R.route ~config:{ base_cfg with R.cap_h = base_cfg.R.cap_h * 2;
                                cap_v = base_cfg.R.cap_v * 2 } p in
  Alcotest.(check bool)
    (Printf.sprintf "tight %d > loose %d" tight.R.overflow_total loose.R.overflow_total)
    true
    (tight.R.overflow_total > loose.R.overflow_total)

let test_negotiation_helps () =
  (* rip-up-and-reroute must not increase overflow *)
  let p = placed "AES" in
  let cfg = R.default_config p.Pl.fp in
  let no_rr = R.route ~config:{ cfg with R.max_iterations = 0 } p in
  let rr = R.route ~config:{ cfg with R.max_iterations = 3 } p in
  Alcotest.(check bool)
    (Printf.sprintf "rr %d <= initial %d" rr.R.overflow_total no_rr.R.overflow_total)
    true
    (rr.R.overflow_total <= no_rr.R.overflow_total)

let test_route_deterministic () =
  let p = placed "DMA" in
  let a = R.route p and b = R.route p in
  Alcotest.(check int) "same overflow" a.R.overflow_total b.R.overflow_total;
  Alcotest.(check (float 1e-9)) "same WL" a.R.wirelength b.R.wirelength

let test_spread_placement_routes_better () =
  (* a congestion-focused placement must reduce routed overflow — the
     placement-stage mechanism of Table III *)
  let nl = Gen.generate ~scale:0.05 ~seed:5 (Gen.profile "AES") in
  let fp = Fp.create nl in
  let base = Placer.global_place ~seed:1 ~params:Params.default nl fp in
  let cong = Placer.global_place ~seed:1 ~params:Params.congestion_focused nl fp in
  (* one routing fabric, calibrated on the baseline, shared by both *)
  let config = R.calibrated_config base in
  let r_base = R.route ~config base and r_cong = R.route ~config cong in
  Alcotest.(check bool)
    (Printf.sprintf "cong %d <= base %d" r_cong.R.overflow_total
       r_base.R.overflow_total)
    true
    (r_cong.R.overflow_total <= r_base.R.overflow_total)

let test_utilization_maps () =
  let p = placed "DMA" in
  let r = R.route p in
  Array.iter
    (fun u ->
      Alcotest.(check bool) "non-negative utilization" true (T.min_elt u >= 0.);
      Alcotest.(check bool) "some demand" true (T.max_elt u > 0.))
    r.R.utilization

let test_congestion_maps_nonneg () =
  let p = placed "LDPC" in
  let r = R.route p in
  Array.iter
    (fun c ->
      Alcotest.(check bool) "overflow map >= 0" true (T.min_elt c >= 0.))
    r.R.congestion

let test_heap_pop_empty_raises () =
  let h = R.Heap.create () in
  let raises f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  raises (fun () -> R.Heap.pop h);
  raises (fun () -> R.Heap.pop_min h);
  (* and again after a push/drain cycle *)
  R.Heap.push h 1.5 7;
  R.Heap.push h 0.5 3;
  Alcotest.(check int) "min value" 3 (R.Heap.pop_min h);
  let k, v = R.Heap.pop h in
  Alcotest.(check (float 0.)) "min key" 1.5 k;
  Alcotest.(check int) "value" 7 v;
  Alcotest.(check bool) "drained" true (R.Heap.is_empty h);
  raises (fun () -> R.Heap.pop h)

let with_jobs n f =
  Dco3d_parallel.Pool.set_jobs ~exact:true n;
  Fun.protect ~finally:(fun () -> Dco3d_parallel.Pool.set_jobs 1) f

(* [~validate:true] makes the router itself check that demand equals
   the per-edge sum over committed paths and that the incidence index
   agrees — run it under both a sequential and a true multi-domain
   schedule *)
let test_demand_conservation () =
  let p = placed "DMA" in
  ignore (R.route ~validate:true p);
  with_jobs 4 (fun () -> ignore (R.route ~validate:true p))

(* the whole point of the wave construction: routing results are
   bit-identical at any job count *)
let test_jobs_invariant_digest () =
  let p = placed "AES" ~scale:0.03 in
  let seq = R.route p in
  let par = with_jobs 4 (fun () -> R.route p) in
  Alcotest.(check string) "digest jobs=1 == jobs=4" (R.digest seq)
    (R.digest par)

(* warm start on an unchanged placement short-circuits to the previous
   result verbatim: every endpoint bin is unchanged, so the stored
   result IS the cold result — bit-identical at any job count (the
   property-test side of the cache-replay contract) *)
let test_warm_unchanged_bit_identical () =
  let p = placed "DMA" in
  let cfg = R.calibrated_config p in
  let cold = R.route ~config:cfg p in
  let warm1 = R.route ~config:cfg ~warm_start:(cold, p) p in
  Alcotest.(check string) "warm(unchanged) == cold, jobs=1" (R.digest cold)
    (R.digest warm1);
  let warm4 =
    with_jobs 4 (fun () -> R.route ~config:cfg ~warm_start:(cold, p) p)
  in
  Alcotest.(check string) "warm(unchanged) == cold, jobs=4" (R.digest cold)
    (R.digest warm4)

let test_warm_perturbed_jobs_invariant () =
  let p = placed "DMA" in
  let cfg = R.calibrated_config p in
  let cold = R.route ~config:cfg p in
  let q = Placer.perturb ~seed:3 ~fraction:0.05 p in
  let w1 = R.route ~config:cfg ~warm_start:(cold, p) q in
  let w4 =
    with_jobs 4 (fun () -> R.route ~config:cfg ~warm_start:(cold, p) q)
  in
  Alcotest.(check string) "warm digest jobs=1 == jobs=4" (R.digest w1)
    (R.digest w4)

(* the incremental contract: a warm start on a perturbed placement must
   actually reuse kept paths (counters) and stay congestion-faithful —
   overflow and wirelength within 5% of a cold route of the same
   placement *)
let test_warm_reuse_and_parity () =
  let module Obs = Dco3d_obs.Obs in
  Obs.reset ();
  Obs.enable ();
  Fun.protect
    ~finally:(fun () -> Obs.reset ())
    (fun () ->
      let p = placed "DMA" in
      let cfg = R.calibrated_config p in
      let cold = R.route ~config:cfg p in
      let q = Placer.perturb ~seed:3 ~fraction:0.05 p in
      let cold_q = R.route ~config:cfg q in
      let reused0 = Obs.counter_value "route/warm/reused" in
      let ripped0 = Obs.counter_value "route/warm/ripped" in
      let warm = R.route ~config:cfg ~warm_start:(cold, p) q in
      let reused = Obs.counter_value "route/warm/reused" - reused0 in
      let ripped = Obs.counter_value "route/warm/ripped" - ripped0 in
      Alcotest.(check bool)
        (Printf.sprintf "reused %d > 0" reused)
        true (reused > 0);
      Alcotest.(check bool)
        (Printf.sprintf "ripped %d > 0" ripped)
        true (ripped > 0);
      Alcotest.(check int) "reused + ripped covers every signal net"
        (List.length (Nl.signal_nets p.Pl.nl))
        (reused + ripped);
      Alcotest.(check bool)
        (Printf.sprintf "warm overflow %d within 5%% of cold %d"
           warm.R.overflow_total cold_q.R.overflow_total)
        true
        (float_of_int warm.R.overflow_total
        <= 1.05 *. Float.max 1. (float_of_int cold_q.R.overflow_total));
      let wl_dev =
        abs_float (warm.R.wirelength -. cold_q.R.wirelength)
        /. Float.max 1. cold_q.R.wirelength
      in
      Alcotest.(check bool)
        (Printf.sprintf "warm WL within 5%% of cold (dev %.2f%%)"
           (100. *. wl_dev))
        true (wl_dev <= 0.05))

let test_warm_mismatch_raises () =
  let p = placed "DMA" in
  let cfg = R.calibrated_config p in
  let cold = R.route ~config:cfg p in
  let raises f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  (* a warm start is only sound against the same netlist, grid and
     config — anything else must be rejected, not silently re-keyed *)
  raises (fun () ->
      R.route
        ~config:{ cfg with R.max_iterations = cfg.R.max_iterations + 1 }
        ~warm_start:(cold, p) p);
  let other = placed "AES" in
  raises (fun () -> R.route ~config:cfg ~warm_start:(cold, p) other);
  let nl = Gen.generate ~scale:0.02 ~seed:5 (Gen.profile "DMA") in
  let fp32 = Fp.create ~gcell_nx:32 ~gcell_ny:32 nl in
  let p32 = Placer.global_place ~seed:1 ~params:Params.default nl fp32 in
  raises (fun () -> R.route ~config:cfg ~warm_start:(cold, p) p32)

let suites =
  [
    ( "route.router",
      [
        Alcotest.test_case "routes all signal nets" `Quick test_route_completes_all_nets;
        Alcotest.test_case "wirelength lower bound" `Quick test_wirelength_lower_bound;
        Alcotest.test_case "overflow consistency" `Quick test_overflow_consistency;
        Alcotest.test_case "capacity scaling" `Quick test_capacity_scaling_reduces_overflow;
        Alcotest.test_case "negotiation helps" `Quick test_negotiation_helps;
        Alcotest.test_case "deterministic" `Quick test_route_deterministic;
        Alcotest.test_case "spread placement routes better" `Slow test_spread_placement_routes_better;
        Alcotest.test_case "utilization maps" `Quick test_utilization_maps;
        Alcotest.test_case "congestion maps non-negative" `Quick test_congestion_maps_nonneg;
        Alcotest.test_case "heap pop on empty raises" `Quick test_heap_pop_empty_raises;
        Alcotest.test_case "demand conservation" `Quick test_demand_conservation;
        Alcotest.test_case "jobs-invariant digest" `Quick test_jobs_invariant_digest;
        Alcotest.test_case "warm unchanged bit-identical" `Quick test_warm_unchanged_bit_identical;
        Alcotest.test_case "warm perturbed jobs-invariant" `Quick test_warm_perturbed_jobs_invariant;
        Alcotest.test_case "warm reuse and parity" `Quick test_warm_reuse_and_parity;
        Alcotest.test_case "warm mismatch raises" `Quick test_warm_mismatch_raises;
      ] );
  ]
