(* Quantized int8 inference: kernel property tests and the golden-parity
   harness against the float32 reference. *)

module T = Dco3d_tensor.Tensor
module Rng = Dco3d_tensor.Rng
module Pool = Dco3d_parallel.Pool

let with_exact_jobs n f =
  let saved = Pool.jobs () in
  Pool.set_jobs ~exact:true n;
  Fun.protect ~finally:(fun () -> Pool.set_jobs ~exact:true saved) f

(* Run a check under jobs=1 and jobs=4 — int8 results must be
   bit-identical at any job count. *)
let on_both_schedules check =
  check "jobs=1";
  with_exact_jobs 4 (fun () -> check "jobs=4")

let check_bits name expected got =
  Alcotest.(check int64)
    name
    (Int64.bits_of_float expected)
    (Int64.bits_of_float got)

let check_tensor_bits name a b =
  Alcotest.(check (array int))
    (name ^ ": shape") (T.shape a) (T.shape b);
  for i = 0 to T.numel a - 1 do
    check_bits
      (Printf.sprintf "%s [%d]" name i)
      (T.get_flat a i) (T.get_flat b i)
  done

(* ------------------------------------------------------------------ *)
(* quantize -> dequantize round trip                                    *)
(* ------------------------------------------------------------------ *)

let test_roundtrip_bounds () =
  let rng = Rng.create 11 in
  let w = T.rand_uniform rng ~lo:(-3.) ~hi:3. [| 5; 3; 3; 3 |] in
  let qw = T.quantize_weight w in
  let scales = T.qweight_scales qw in
  let dq = T.dequantize_weight qw in
  Alcotest.(check (array int)) "shape" (T.shape w) (T.shape dq);
  let kdim = 3 * 3 * 3 in
  for o = 0 to 4 do
    (* per-channel scale is max|W[o]| / 127 *)
    let m = ref 0. in
    for p = 0 to kdim - 1 do
      m := Float.max !m (Float.abs (T.get_flat w ((o * kdim) + p)))
    done;
    Alcotest.(check (float 1e-12)) "scale" (!m /. 127.) scales.(o);
    (* round-trip error is bounded by half a quantization step *)
    for p = 0 to kdim - 1 do
      let v = T.get_flat w ((o * kdim) + p) in
      let r = T.get_flat dq ((o * kdim) + p) in
      if Float.abs (v -. r) > (scales.(o) /. 2.) +. 1e-12 then
        Alcotest.failf "channel %d elt %d: %g -> %g exceeds half-step %g" o p v
          r (scales.(o) /. 2.)
    done
  done

let test_roundtrip_zero_preserved () =
  let rng = Rng.create 12 in
  let w = T.rand_uniform rng ~lo:(-1.) ~hi:1. [| 2; 2; 3; 3 |] in
  (* plant exact zeros *)
  T.set_flat w 0 0.;
  T.set_flat w 17 0.;
  let dq = T.dequantize_weight (T.quantize_weight w) in
  check_bits "zero 0" 0. (T.get_flat dq 0);
  check_bits "zero 17" 0. (T.get_flat dq 17)

let test_roundtrip_symmetric () =
  let rng = Rng.create 13 in
  let w = T.rand_uniform rng ~lo:(-2.) ~hi:2. [| 3; 4; 1; 1 |] in
  let neg = T.neg w in
  let dq = T.dequantize_weight (T.quantize_weight w) in
  let dqn = T.dequantize_weight (T.quantize_weight neg) in
  (* symmetric scheme: quantizing -w negates exactly (no -128 asymmetry);
     zero codes compare by value so +0. vs -0. is not a mismatch *)
  for i = 0 to T.numel w - 1 do
    let v = T.get_flat dq i and nv = T.get_flat dqn i in
    if v = 0. then Alcotest.(check bool) (Printf.sprintf "negate [%d]" i) true (nv = 0.)
    else check_bits (Printf.sprintf "negate [%d]" i) (-.v) nv
  done;
  (* every code stays inside the symmetric range *)
  let b = T.qweight_bytes (T.quantize_weight w) in
  Bytes.iter
    (fun c ->
      if Char.code c < 1 then Alcotest.fail "byte -128 must never be produced")
    b

let test_qweight_of_parts_rejects () =
  let rng = Rng.create 14 in
  let qw = T.quantize_weight (T.rand_uniform rng ~lo:(-1.) ~hi:1. [| 2; 3; 3; 3 |]) in
  let shape = T.qweight_shape qw in
  let data = T.qweight_bytes qw in
  let scales = T.qweight_scales qw in
  let rebuilt = T.qweight_of_parts ~shape ~data ~scales in
  check_tensor_bits "rebuild" (T.dequantize_weight qw)
    (T.dequantize_weight rebuilt);
  (try
     ignore (T.qweight_of_parts ~shape ~data:(Bytes.sub data 0 3) ~scales);
     Alcotest.fail "short data accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (T.qweight_of_parts ~shape ~data ~scales:[| 1. |]);
     Alcotest.fail "short scales accepted"
   with Invalid_argument _ -> ());
  (try
     let bad = Bytes.copy data in
     Bytes.set bad 0 '\000';
     ignore (T.qweight_of_parts ~shape ~data:bad ~scales);
     Alcotest.fail "byte 0 accepted"
   with Invalid_argument _ -> ());
  try
    let bad = Array.copy scales in
    bad.(0) <- -1.;
    ignore (T.qweight_of_parts ~shape ~data ~scales:bad);
    Alcotest.fail "negative scale accepted"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* int8 GEMM vs reference loop (eps = 0 on the integer accumulator)    *)
(* ------------------------------------------------------------------ *)

let rand_bytes rng len =
  Bytes.init len (fun _ -> Char.chr (1 + Rng.int rng 255))

let gemm_ref ~m ~k ~n a b =
  let out = Array.make (m * n) 0 in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let acc = ref 0 in
      for p = 0 to k - 1 do
        let qa = Char.code (Bytes.get a ((i * k) + p)) - 128 in
        let qb = Char.code (Bytes.get b ((p * n) + j)) - 128 in
        acc := !acc + (qa * qb)
      done;
      out.((i * n) + j) <- !acc
    done
  done;
  out

let test_gemm_i8_exact () =
  let rng = Rng.create 21 in
  (* sizes exercise: lane tails (n mod 3), spill blocks (k > 15), odd
     row counts (the paired-row kernel's tail row) *)
  List.iter
    (fun (m, k, n) ->
      let a = rand_bytes rng (m * k) in
      let b = rand_bytes rng (k * n) in
      let expected = gemm_ref ~m ~k ~n a b in
      on_both_schedules (fun tag ->
          let got = T.gemm_i8_exact ~m ~k ~n a b in
          Alcotest.(check (array int))
            (Printf.sprintf "%s m=%d k=%d n=%d" tag m k n)
            expected got))
    [ (1, 1, 1); (2, 15, 3); (3, 16, 4); (5, 31, 7); (4, 64, 6); (7, 130, 10) ]

let test_gemm_i8_extremes () =
  (* all-max magnitudes: the lane-overflow worst case *)
  let m = 3 and k = 257 and n = 5 in
  let a = Bytes.make (m * k) '\255' in
  let b = Bytes.make (k * n) '\001' in
  let expected = gemm_ref ~m ~k ~n a b in
  let got = T.gemm_i8_exact ~m ~k ~n a b in
  Alcotest.(check (array int)) "extremes" expected got

(* ------------------------------------------------------------------ *)
(* conv2d_batch_i8 vs fake-quantized reference                         *)
(* ------------------------------------------------------------------ *)

(* Reference: quantize the input with the engine's per-sample affine
   scheme (scale spanning [min(x,0) .. max(x,0)], zero-point z) and the
   weights per channel, run a direct integer conv loop over (qa - z),
   requantize with the same expression tree. *)
let conv_i8_ref ~stride ~pad x qw bias =
  let shape = T.shape x in
  let n = shape.(0) and ci = shape.(1) and h = shape.(2) and w = shape.(3) in
  let wshape = T.qweight_shape qw in
  let co = wshape.(0) and kh = wshape.(2) and kw = wshape.(3) in
  let oh = ((h + (2 * pad) - kh) / stride) + 1 in
  let ow = ((w + (2 * pad) - kw) / stride) + 1 in
  let wb = T.qweight_bytes qw in
  let wscales = T.qweight_scales qw in
  let sample = ci * h * w in
  let out = Array.make (n * co * oh * ow) 0. in
  for b = 0 to n - 1 do
    let mn = ref 0. and mx = ref 0. in
    for i = 0 to sample - 1 do
      let v = T.get_flat x ((b * sample) + i) in
      if v < !mn then mn := v;
      if v > !mx then mx := v
    done;
    let range = !mx -. !mn in
    let xs = if range > 0. then range /. 254. else 1. in
    let z = -127 - int_of_float ((!mn /. xs) -. 0.5) in
    let inv = 1. /. xs in
    let qx =
      Array.init sample (fun i ->
          let q =
            z
            + int_of_float
                (Float.round (T.get_flat x ((b * sample) + i) *. inv))
          in
          if q > 127 then 127 else if q < -127 then -127 else q)
    in
    for o = 0 to co - 1 do
      for oy = 0 to oh - 1 do
        for ox = 0 to ow - 1 do
          let acc = ref 0 in
          for c = 0 to ci - 1 do
            for ky = 0 to kh - 1 do
              for kx = 0 to kw - 1 do
                let iy = (oy * stride) + ky - pad in
                let ix = (ox * stride) + kx - pad in
                if iy >= 0 && iy < h && ix >= 0 && ix < w then begin
                  let qa = qx.((((c * h) + iy) * w) + ix) in
                  let qb =
                    Char.code
                      (Bytes.get wb
                         ((o * ci * kh * kw) + (((c * kh) + ky) * kw) + kx))
                    - 128
                  in
                  acc := !acc + ((qa - z) * qb)
                end
              done
            done
          done;
          let v = float_of_int !acc *. (wscales.(o) *. xs) in
          let v =
            match bias with
            | None -> v
            | Some bt -> v +. T.get_flat bt o
          in
          out.((((((b * co) + o) * oh) + oy) * ow) + ox) <- v
        done
      done
    done
  done;
  T.make [| n; co; oh; ow |] out

let test_conv_i8_vs_ref () =
  let rng = Rng.create 31 in
  List.iter
    (fun (n, ci, h, w, co, ksize, stride, pad, biased) ->
      let x = T.rand_uniform rng ~lo:(-2.) ~hi:2. [| n; ci; h; w |] in
      let wt =
        T.rand_uniform rng ~lo:(-1.) ~hi:1. [| co; ci; ksize; ksize |]
      in
      let bias =
        if biased then Some (T.rand_uniform rng ~lo:(-0.5) ~hi:0.5 [| co |])
        else None
      in
      let qw = T.quantize_weight wt in
      let expected = conv_i8_ref ~stride ~pad x qw bias in
      on_both_schedules (fun tag ->
          let got = T.conv2d_batch_i8 ~stride ~pad x ~qweight:qw ~bias in
          check_tensor_bits
            (Printf.sprintf "%s n=%d ci=%d h=%d co=%d k=%d s=%d p=%d" tag n ci
               h co ksize stride pad)
            expected got))
    [
      (1, 1, 5, 5, 1, 3, 1, 1, false);
      (2, 3, 8, 8, 4, 3, 1, 1, true);
      (3, 2, 7, 9, 5, 3, 1, 0, true);
      (2, 4, 6, 6, 3, 1, 1, 0, true);
      (1, 2, 9, 9, 2, 3, 2, 1, true);
    ]

let test_conv_i8_batch_independence () =
  (* element [b] of a batched call is bit-identical to a singleton call:
     the per-sample activation scales decouple batchmates, which is what
     lets the serve cache reuse replies across batch compositions *)
  let rng = Rng.create 32 in
  let samples =
    Array.init 5 (fun _ -> T.rand_uniform rng ~lo:(-3.) ~hi:3. [| 1; 3; 8; 8 |])
  in
  let wt = T.rand_uniform rng ~lo:(-1.) ~hi:1. [| 4; 3; 3; 3 |] in
  let bias = Some (T.rand_uniform rng ~lo:(-0.2) ~hi:0.2 [| 4 |]) in
  let qw = T.quantize_weight wt in
  let batch =
    T.stack (Array.map (fun s -> T.reshape (T.copy s) [| 3; 8; 8 |]) samples)
  in
  on_both_schedules (fun tag ->
      let whole = T.unstack (T.conv2d_batch_i8 ~pad:1 batch ~qweight:qw ~bias) in
      Array.iteri
        (fun i s ->
          let solo =
            T.unstack (T.conv2d_batch_i8 ~pad:1 s ~qweight:qw ~bias)
          in
          check_tensor_bits
            (Printf.sprintf "%s sample %d" tag i)
            solo.(0) whole.(i))
        samples)

(* Reference for the transposed conv: integer scatter loop over the
   quantized transposed weight (read back through the flipped layout
   quantize_weight_transposed stores), requantized with the engine's
   expression tree. *)
let convT_i8_ref ~stride ~pad x w qw bias =
  let shape = T.shape x in
  let n = shape.(0) and ci = shape.(1) and h = shape.(2) and wd = shape.(3) in
  let wshape = T.shape w in
  let co = wshape.(1) and kh = wshape.(2) and kw = wshape.(3) in
  let oh = ((h - 1) * stride) + kh - (2 * pad) in
  let ow = ((wd - 1) * stride) + kw - (2 * pad) in
  let wb = T.qweight_bytes qw in
  let wscales = T.qweight_scales qw in
  let kdim = ci * kh * kw in
  let sample = ci * h * wd in
  let out = Array.make (n * co * oh * ow) 0. in
  for b = 0 to n - 1 do
    let mn = ref 0. and mx = ref 0. in
    for i = 0 to sample - 1 do
      let v = T.get_flat x ((b * sample) + i) in
      if v < !mn then mn := v;
      if v > !mx then mx := v
    done;
    let range = !mx -. !mn in
    let xs = if range > 0. then range /. 254. else 1. in
    let z = -127 - int_of_float ((!mn /. xs) -. 0.5) in
    let inv = 1. /. xs in
    let qx =
      Array.init sample (fun i ->
          let q =
            z
            + int_of_float
                (Float.round (T.get_flat x ((b * sample) + i) *. inv))
          in
          if q > 127 then 127 else if q < -127 then -127 else q)
    in
    let acc = Array.make (co * oh * ow) 0 in
    for c = 0 to ci - 1 do
      for iy = 0 to h - 1 do
        for ix = 0 to wd - 1 do
          let qa = qx.((((c * h) + iy) * wd) + ix) in
          for o = 0 to co - 1 do
            for ky = 0 to kh - 1 do
              for kx = 0 to kw - 1 do
                let oy = (iy * stride) + ky - pad in
                let ox = (ix * stride) + kx - pad in
                if oy >= 0 && oy < oh && ox >= 0 && ox < ow then begin
                  (* stored layout is flipped: w[c][o][ky][kx] lives at
                     data[o][c][kh-1-ky][kw-1-kx] *)
                  let qb =
                    Char.code
                      (Bytes.get wb
                         ((o * kdim)
                         + (((c * kh) + (kh - 1 - ky)) * kw)
                         + (kw - 1 - kx)))
                    - 128
                  in
                  let oi = (((o * oh) + oy) * ow) + ox in
                  acc.(oi) <- acc.(oi) + ((qa - z) * qb)
                end
              done
            done
          done
        done
      done
    done;
    for o = 0 to co - 1 do
      for i = 0 to (oh * ow) - 1 do
        let v = float_of_int acc.(((o * oh) * ow) + i) *. (wscales.(o) *. xs) in
        let v =
          match bias with None -> v | Some bt -> v +. T.get_flat bt o
        in
        out.((((b * co) + o) * oh * ow) + i) <- v
      done
    done
  done;
  T.make [| n; co; oh; ow |] out

let test_convT_i8_vs_ref () =
  let rng = Rng.create 33 in
  List.iter
    (fun (n, ci, h, w, co, ksize, stride, pad, biased) ->
      let x = T.rand_uniform rng ~lo:(-2.) ~hi:2. [| n; ci; h; w |] in
      let wt =
        T.rand_uniform rng ~lo:(-1.) ~hi:1. [| ci; co; ksize; ksize |]
      in
      let bias =
        if biased then Some (T.rand_uniform rng ~lo:(-0.5) ~hi:0.5 [| co |])
        else None
      in
      let qw = T.quantize_weight_transposed wt in
      let expected = convT_i8_ref ~stride ~pad x wt qw bias in
      on_both_schedules (fun tag ->
          let got =
            T.conv2d_transpose_batch_i8 ~stride ~pad x ~qweight:qw ~bias
          in
          check_tensor_bits
            (Printf.sprintf "%s n=%d ci=%d h=%d co=%d k=%d s=%d p=%d" tag n ci
               h co ksize stride pad)
            expected got))
    [
      (1, 1, 4, 4, 1, 2, 2, 0, false);
      (2, 3, 5, 5, 2, 2, 2, 0, true);
      (1, 2, 6, 5, 3, 3, 1, 1, true);
      (2, 2, 4, 6, 2, 3, 2, 1, true);
    ]

let test_convT_i8_matches_f32_shape () =
  (* shape agreement with the float transposed conv across strides *)
  let rng = Rng.create 34 in
  List.iter
    (fun (stride, pad, ksize) ->
      let x = T.rand_uniform rng ~lo:(-1.) ~hi:1. [| 2; 3; 5; 7 |] in
      let wt = T.rand_uniform rng ~lo:(-1.) ~hi:1. [| 3; 4; ksize; ksize |] in
      let f = T.conv2d_transpose_batch ~stride ~pad x ~weight:wt ~bias:None in
      let q =
        T.conv2d_transpose_batch_i8 ~stride ~pad x
          ~qweight:(T.quantize_weight_transposed wt) ~bias:None
      in
      Alcotest.(check (array int))
        (Printf.sprintf "s=%d p=%d k=%d" stride pad ksize)
        (T.shape f) (T.shape q))
    [ (1, 0, 3); (2, 0, 2); (2, 1, 3); (3, 1, 4) ]

let test_conv_i8_act_fused () =
  (* fused activation equals activating the plain output *)
  let rng = Rng.create 35 in
  let x = T.rand_uniform rng ~lo:(-2.) ~hi:2. [| 2; 3; 6; 6 |] in
  let wt = T.rand_uniform rng ~lo:(-1.) ~hi:1. [| 4; 3; 3; 3 |] in
  let bias = Some (T.rand_uniform rng ~lo:(-0.5) ~hi:0.5 [| 4 |]) in
  let qw = T.quantize_weight wt in
  let plain = T.conv2d_batch_i8 ~pad:1 x ~qweight:qw ~bias in
  List.iter
    (fun (act, f) ->
      let fused = T.conv2d_batch_i8 ~pad:1 ~act x ~qweight:qw ~bias in
      for i = 0 to T.numel plain - 1 do
        let v = T.get_flat plain i in
        check_bits (Printf.sprintf "[%d]" i)
          (if v < 0. then f v else v)
          (T.get_flat fused i)
      done)
    [ (`Relu, fun v -> v *. 0.); (`Leaky 0.1, fun v -> v *. 0.1) ]

let test_conv_i8_zero_input () =
  let wt = T.make [| 2; 1; 1; 1 |] [| 0.5; -0.25 |] in
  let bias = Some (T.make [| 2 |] [| 1.5; -2.5 |]) in
  let x = T.zeros [| 1; 1; 3; 3 |] in
  let y = T.conv2d_batch_i8 x ~qweight:(T.quantize_weight wt) ~bias in
  for i = 0 to 8 do
    check_bits "ch0 = bias0" 1.5 (T.get_flat y i);
    check_bits "ch1 = bias1" (-2.5) (T.get_flat y (9 + i))
  done

(* ------------------------------------------------------------------ *)
(* Golden parity: the full quantized predictor vs its f32 reference    *)
(* ------------------------------------------------------------------ *)

module SiaUNet = Dco3d_nn.Siamese_unet
module Predictor = Dco3d_core.Predictor
module Parity = Dco3d_core.Parity
module Fm = Dco3d_congestion.Feature_maps

let mk_predictor ?(seed = 41) ?(input_hw = 16) () =
  let rng = Rng.create seed in
  let net =
    SiaUNet.create rng { SiaUNet.default_config with base_channels = 4 }
  in
  { Predictor.net; input_hw; label_scale = 1.0 }

let mk_inputs ?(seed = 42) ?(n = 3) ~hw () =
  let rng = Rng.create seed in
  let one () = T.rand_uniform rng [| Fm.n_channels; hw; hw |] in
  Array.init n (fun _ -> (one (), one ()))

let test_predict_parity () =
  let p = mk_predictor () in
  let inputs = mk_inputs ~hw:16 () in
  let f32 = Predictor.predict_batch ~numeric:`F32 p inputs in
  let i8 = Predictor.predict_batch ~numeric:`I8 p inputs in
  let report = Parity.compare ~f32 ~i8 in
  (match Parity.check report with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "parity gate: %s" msg);
  Alcotest.(check bool)
    "divergence positive (paths actually differ)" true
    (report.Parity.max_abs > 0.)

let test_predict_i8_schedule_invariant () =
  let p = mk_predictor () in
  let inputs = mk_inputs ~hw:16 () in
  let golden = Predictor.predict_batch ~numeric:`I8 p inputs in
  with_exact_jobs 4 (fun () ->
      let got = Predictor.predict_batch ~numeric:`I8 p inputs in
      Array.iteri
        (fun k (g0, g1) ->
          let h0, h1 = got.(k) in
          check_tensor_bits (Printf.sprintf "sample %d die 0" k) g0 h0;
          check_tensor_bits (Printf.sprintf "sample %d die 1" k) g1 h1)
        golden)

let test_predict_i8_batch_matches_singletons () =
  (* ragged coalescing in serve relies on batch position not mattering *)
  let p = mk_predictor () in
  let inputs = mk_inputs ~n:5 ~hw:16 () in
  let batched = Predictor.predict_batch ~numeric:`I8 p inputs in
  Array.iteri
    (fun k (f0, f1) ->
      let s0, s1 = Predictor.predict ~numeric:`I8 p f0 f1 in
      let b0, b1 = batched.(k) in
      check_tensor_bits (Printf.sprintf "sample %d die 0" k) s0 b0;
      check_tensor_bits (Printf.sprintf "sample %d die 1" k) s1 b1)
    inputs

let with_tmp f =
  let path = Filename.temp_file "dco3d_qtest" ".qpred" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; path ^ ".qnet" ])
    (fun () -> f path)

let test_quantized_save_load_roundtrip () =
  let p = mk_predictor () in
  let inputs = mk_inputs ~n:2 ~hw:16 () in
  let golden = Predictor.predict_batch ~numeric:`I8 p inputs in
  let fp = Predictor.fingerprint ~numeric:`I8 p in
  with_tmp (fun path ->
      Predictor.save_quantized p path;
      let q = Predictor.load_quantized path in
      Alcotest.(check string)
        "fingerprint survives the round trip" fp
        (Predictor.fingerprint ~numeric:`I8 q);
      let got = Predictor.predict_batch ~numeric:`I8 q inputs in
      Array.iteri
        (fun k (g0, g1) ->
          let h0, h1 = got.(k) in
          check_tensor_bits (Printf.sprintf "sample %d die 0" k) g0 h0;
          check_tensor_bits (Printf.sprintf "sample %d die 1" k) g1 h1)
        golden)

let test_quantized_load_rejects_corrupt () =
  with_tmp (fun path ->
      let oc = open_out_bin path in
      output_string oc "not a quantized predictor at all";
      close_out oc;
      match Predictor.load_quantized path with
      | _ -> Alcotest.fail "corrupt file loaded"
      | exception Predictor.Load_error _ -> ())

let suites =
  [
    ( "quant",
      [
        Alcotest.test_case "roundtrip scale+bound" `Quick test_roundtrip_bounds;
        Alcotest.test_case "roundtrip zero preserved" `Quick
          test_roundtrip_zero_preserved;
        Alcotest.test_case "roundtrip symmetric" `Quick test_roundtrip_symmetric;
        Alcotest.test_case "qweight_of_parts validation" `Quick
          test_qweight_of_parts_rejects;
        Alcotest.test_case "gemm_i8 vs reference (eps=0)" `Quick
          test_gemm_i8_exact;
        Alcotest.test_case "gemm_i8 extremes" `Quick test_gemm_i8_extremes;
        Alcotest.test_case "conv_i8 vs reference" `Quick test_conv_i8_vs_ref;
        Alcotest.test_case "conv_i8 batch independence" `Quick
          test_conv_i8_batch_independence;
        Alcotest.test_case "convT_i8 vs reference" `Quick test_convT_i8_vs_ref;
        Alcotest.test_case "convT_i8 output shapes" `Quick
          test_convT_i8_matches_f32_shape;
        Alcotest.test_case "conv_i8 fused activation" `Quick
          test_conv_i8_act_fused;
        Alcotest.test_case "conv_i8 zero input" `Quick test_conv_i8_zero_input;
        Alcotest.test_case "golden parity gate" `Quick test_predict_parity;
        Alcotest.test_case "i8 predict schedule invariant" `Quick
          test_predict_i8_schedule_invariant;
        Alcotest.test_case "i8 batch matches singletons" `Quick
          test_predict_i8_batch_matches_singletons;
        Alcotest.test_case "quantized save/load round trip" `Quick
          test_quantized_save_load_roundtrip;
        Alcotest.test_case "quantized load rejects corrupt" `Quick
          test_quantized_load_rejects_corrupt;
      ] );
  ]
