(* dco3d.corpus: the generated PPA benchmark suite and the bounded
   on-disk stores underneath it.

   Load-bearing properties:

   - a corpus spec is a pure function of (profile, seed): the same spec
     generates bit-identical netlists (equal content digests) at
     DCO3D_JOBS=1 and 4, and distinct seeds / corpus points generate
     distinct digests;
   - a PPA row's determinism digest is jobs-invariant and rerun-stable,
     and a store replay returns the stored row verbatim (runtimes
     included);
   - the caches are bounded: LRU-by-mtime eviction past the cap, with
     corrupt survivors aging out like live entries;
   - the serving tier replays a corpus cell bit-identically, dedupes
     identical in-flight requests, and answers repeats from the store
     without re-running the flow. *)

module Gen = Dco3d_netlist.Generator
module Fp = Dco3d_place.Floorplan
module Placer = Dco3d_place.Placer
module Params = Dco3d_place.Params
module R = Dco3d_route.Router
module Rc = Dco3d_route.Route_cache
module Framing = Dco3d_framing.Framing
module Corpus = Dco3d_corpus.Corpus
module Dataset = Dco3d_core.Dataset
module Obs = Dco3d_obs.Obs
module Rng = Dco3d_tensor.Rng
module SiaUNet = Dco3d_nn.Siamese_unet
module Predictor = Dco3d_core.Predictor
module Proto = Dco3d_serve.Protocol
module Server = Dco3d_serve.Server
module Client = Dco3d_serve.Client

let with_jobs n f =
  Dco3d_parallel.Pool.set_jobs ~exact:true n;
  Fun.protect ~finally:(fun () -> Dco3d_parallel.Pool.set_jobs 1) f

let with_obs f =
  Obs.reset ();
  Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    f

let tmp_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "dco3d_corpus_test_%d_%d" (Unix.getpid ()) !n)
    in
    (* fresh every time: a leftover from a crashed run must not leak
       hits into this one *)
    if Sys.file_exists d then
      Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d);
    d

(* The whole suite runs on one tiny corpus point: a scaled-down DMA
   whose full flow takes tens of milliseconds. *)
let tiny_spec = Corpus.reseeded 7 (Corpus.scaled 0.02 (Corpus.find "dma"))
let tiny_cfg = Corpus.flow_config ~gcell:16 "base"

let row_t =
  Alcotest.testable
    (fun ppf r -> Format.pp_print_string ppf (Corpus.json_of_row r))
    ( = )

(* ------------------------------------------------------------------ *)
(* Framing: LRU eviction primitive                                     *)
(* ------------------------------------------------------------------ *)

let test_evict_lru () =
  let dir = tmp_dir () in
  Framing.mkdir_p dir;
  let file i = Filename.concat dir (Printf.sprintf "e%d.x" i) in
  for i = 0 to 4 do
    let oc = open_out (file i) in
    output_string oc "x";
    close_out oc;
    (* deterministic mtimes, oldest first *)
    Unix.utimes (file i) (1000. +. float_of_int i) (1000. +. float_of_int i)
  done;
  let foreign = Filename.concat dir "other.y" in
  let oc = open_out foreign in
  close_out oc;
  let removed = Framing.evict_lru ~dir ~suffix:".x" ~max_entries:2 in
  Alcotest.(check int) "evicts past cap" 3 removed;
  Alcotest.(check bool) "oldest gone" false (Sys.file_exists (file 0));
  Alcotest.(check bool) "next-oldest gone" false (Sys.file_exists (file 1));
  Alcotest.(check bool) "newest kept" true (Sys.file_exists (file 4));
  Alcotest.(check bool) "foreign suffix untouched" true
    (Sys.file_exists foreign);
  Alcotest.(check int) "under cap is a no-op" 0
    (Framing.evict_lru ~dir ~suffix:".x" ~max_entries:10);
  (* touch promotes: file 3 becomes newest, so a cap of 1 keeps it *)
  Framing.touch (file 3);
  let removed = Framing.evict_lru ~dir ~suffix:".x" ~max_entries:1 in
  Alcotest.(check int) "cap 1" 1 removed;
  Alcotest.(check bool) "touched entry survives" true
    (Sys.file_exists (file 3));
  Alcotest.(check bool) "untouched entry evicted" false
    (Sys.file_exists (file 4));
  Alcotest.(check int) "missing dir" 0
    (Framing.evict_lru ~dir:(Filename.concat dir "nope") ~suffix:".x"
       ~max_entries:1)

(* ------------------------------------------------------------------ *)
(* Route cache: bounded size                                           *)
(* ------------------------------------------------------------------ *)

let placed ?(scale = 0.02) ~seed name =
  let nl = Gen.generate ~scale ~seed (Gen.profile name) in
  let fp = Fp.create nl in
  Placer.global_place ~seed:1 ~params:Params.default nl fp

let test_route_cache_cap () =
  with_obs @@ fun () ->
  let rc = Rc.create ~max_entries:2 (tmp_dir ()) in
  Alcotest.(check int) "explicit cap" 2 (Rc.max_entries rc);
  (* three distinct placements -> three distinct keys -> one eviction *)
  for seed = 1 to 3 do
    let p = placed ~seed "DMA" in
    ignore (Rc.find_or_route ~cache:rc ~config:(R.calibrated_config p) p)
  done;
  Alcotest.(check int) "bounded" 2 (Rc.count rc);
  Alcotest.(check int) "eviction counted" 1
    (Obs.counter_value "route/cache_evicted");
  (* the survivors still replay *)
  let p = placed ~seed:3 "DMA" in
  let cfg = R.calibrated_config p in
  let cold = R.route ~config:cfg p in
  let replay = Rc.find_or_route ~cache:rc ~config:cfg p in
  Alcotest.(check string) "survivor replays bit-identically" (R.digest cold)
    (R.digest replay)

let test_route_cache_env_cap () =
  Unix.putenv "DCO3D_ROUTE_CACHE_CAP" "17";
  Fun.protect ~finally:(fun () -> Unix.putenv "DCO3D_ROUTE_CACHE_CAP" "")
  @@ fun () ->
  Alcotest.(check int) "env cap" 17 (Rc.max_entries (Rc.create (tmp_dir ())));
  Unix.putenv "DCO3D_ROUTE_CACHE_CAP" "-3";
  Alcotest.(check int) "non-positive falls back" 4096
    (Rc.max_entries (Rc.create (tmp_dir ())));
  Unix.putenv "DCO3D_ROUTE_CACHE_CAP" "";
  Alcotest.(check int) "unset falls back" 4096
    (Rc.max_entries (Rc.create (tmp_dir ())))

(* ------------------------------------------------------------------ *)
(* Corpus store: round-trip, corruption, bound                         *)
(* ------------------------------------------------------------------ *)

let fake_row i =
  {
    Corpus.r_design = "fake";
    r_digest = Printf.sprintf "%032x" i;
    r_config = "base";
    r_seed = i;
    r_cells = 10 + i;
    r_nets = 12;
    r_overflow = i;
    r_ovf_pct = 0.5;
    r_wirelength_um = 123.4;
    r_wns_ps = -1.5;
    r_tns_ps = -2.5;
    r_power_mw = 0.25;
    r_peak_c = 26.0;
    r_avg_c = 25.1;
    r_gen_ms = 1.0;
    r_calib_ms = 2.0;
    r_flow_ms = 3.0;
  }

let test_store_roundtrip () =
  with_obs @@ fun () ->
  let st = Corpus.Store.create (tmp_dir ()) in
  let r = fake_row 1 in
  Alcotest.(check (option row_t)) "empty miss" None
    (Corpus.Store.find st ~key:"k1");
  Alcotest.(check bool) "put" true (Corpus.Store.put st ~key:"k1" r);
  Alcotest.(check (option row_t)) "hit, verbatim" (Some r)
    (Corpus.Store.find st ~key:"k1");
  Alcotest.(check (option row_t)) "other key misses" None
    (Corpus.Store.find st ~key:"k2");
  Alcotest.(check int) "one entry" 1 (Corpus.Store.count st);
  Alcotest.(check int) "hits counted" 1 (Obs.counter_value "corpus/cache_hit");
  Alcotest.(check int) "misses counted" 2
    (Obs.counter_value "corpus/cache_miss")

let test_store_corrupt_self_deletes () =
  let st = Corpus.Store.create (tmp_dir ()) in
  ignore (Corpus.Store.put st ~key:"k" (fake_row 3) : bool);
  let path = Framing.path_of ~dir:(Corpus.Store.dir st) ~suffix:".ppa" "k" in
  (* flip a byte inside the framed body: digest check must fail *)
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  ignore (Unix.lseek fd 40 Unix.SEEK_SET : int);
  ignore (Unix.write_substring fd "~" 0 1 : int);
  Unix.close fd;
  Alcotest.(check (option row_t)) "corrupt entry misses" None
    (Corpus.Store.find st ~key:"k");
  Alcotest.(check bool) "and self-deletes" false (Sys.file_exists path)

let test_store_bounded_with_corrupt_survivor () =
  with_obs @@ fun () ->
  let st = Corpus.Store.create ~max_entries:2 (tmp_dir ()) in
  (* a corrupt survivor from a crashed run, older than everything *)
  let junk = Filename.concat (Corpus.Store.dir st) "deadbeef.ppa" in
  let oc = open_out junk in
  output_string oc "not a framed row";
  close_out oc;
  Unix.utimes junk 1000. 1000.;
  ignore (Corpus.Store.put st ~key:"a" (fake_row 1) : bool);
  ignore (Corpus.Store.put st ~key:"b" (fake_row 2) : bool);
  (* the second put pushes the population to 3: the corrupt file is
     oldest, so it is what ages out *)
  Alcotest.(check bool) "corrupt survivor aged out" false
    (Sys.file_exists junk);
  Alcotest.(check int) "bounded" 2 (Corpus.Store.count st);
  Alcotest.(check int) "eviction counted" 1
    (Obs.counter_value "corpus/cache_evicted");
  Alcotest.(check (option row_t)) "live entries kept" (Some (fake_row 2))
    (Corpus.Store.find st ~key:"b")

(* ------------------------------------------------------------------ *)
(* Determinism: digests and PPA rows                                   *)
(* ------------------------------------------------------------------ *)

let test_netlist_digest_determinism () =
  let digest s = Corpus.netlist_digest (Corpus.generate s) in
  let d1 = digest tiny_spec in
  Alcotest.(check string) "rerun, same digest" d1 (digest tiny_spec);
  let d4 = with_jobs 4 (fun () -> digest tiny_spec) in
  Alcotest.(check string) "jobs=4, same digest" d1 d4;
  Alcotest.(check bool) "distinct seeds, distinct digests" true
    (d1 <> digest (Corpus.reseeded 8 tiny_spec));
  (* two corpus points on one base draw distinct RNG streams *)
  let local = digest (Corpus.scaled 0.02 (Corpus.find "ecg-local")) in
  let global = digest (Corpus.scaled 0.02 (Corpus.find "ecg-global")) in
  Alcotest.(check bool) "same base, distinct points" true (local <> global)

let test_row_determinism () =
  let d1 = Corpus.row_digest (Corpus.run_cell tiny_spec tiny_cfg) in
  Alcotest.(check string) "rerun, same row digest" d1
    (Corpus.row_digest (Corpus.run_cell tiny_spec tiny_cfg));
  let d4 =
    with_jobs 4 (fun () -> Corpus.row_digest (Corpus.run_cell tiny_spec tiny_cfg))
  in
  Alcotest.(check string) "jobs=4, same row digest" d1 d4;
  let other =
    Corpus.row_digest (Corpus.run_cell (Corpus.reseeded 8 tiny_spec) tiny_cfg)
  in
  Alcotest.(check bool) "distinct seed, distinct row" true (d1 <> other)

let test_store_replay_verbatim () =
  with_obs @@ fun () ->
  let store = Corpus.Store.create (tmp_dir ()) in
  let r1 = Corpus.run_cell ~store tiny_spec tiny_cfg in
  let hits0 = Obs.counter_value "corpus/cache_hit" in
  let r2 = Corpus.run_cell ~store tiny_spec tiny_cfg in
  (* verbatim: the stored runtimes come back too, so a fleet replay is
     bit-identical, not merely digest-equal *)
  Alcotest.check row_t "replay verbatim (runtimes included)" r1 r2;
  Alcotest.(check int) "served from the store" (hits0 + 1)
    (Obs.counter_value "corpus/cache_hit")

(* ------------------------------------------------------------------ *)
(* Serving tier: replay, dedup, store hits                             *)
(* ------------------------------------------------------------------ *)

let tmp_name =
  let n = ref 0 in
  fun suffix ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dco3d_corpus_srv_%d_%d%s" (Unix.getpid ()) !n suffix)

let mk_predictor seed =
  {
    Predictor.net =
      SiaUNet.create (Rng.create seed)
        { SiaUNet.default_config with SiaUNet.base_channels = 4 };
    input_hw = 8;
    label_scale = 1.0;
  }

let with_corpus_server f =
  let cfg =
    {
      Server.address = Server.Unix_path (tmp_name ".sock");
      queue_capacity = 64;
      max_batch = 8;
      batch_linger_ms = 5.;
      cache_capacity = 16;
      numeric = `F32;
      spill_dir = None;
      (* the PPA store defaults to <route cache>/corpus *)
      route_cache_dir = Some (tmp_dir ());
      corpus_dir = None;
      shard_id = 0;
    }
  in
  let srv = Server.start cfg (mk_predictor 3) in
  Fun.protect ~finally:(fun () -> Server.stop srv) (fun () -> f srv)

let stat srv name =
  match List.assoc_opt name (Server.stats srv) with
  | Some v -> v
  | None -> Alcotest.failf "stat %s missing" name

let test_served_replay_dedup_and_store () =
  with_obs @@ fun () ->
  (* the reference row, computed locally with no caches at all *)
  let local = Corpus.run_cell tiny_spec tiny_cfg in
  with_corpus_server @@ fun srv ->
  let c = Client.connect (Server.bound_addr srv) in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let req =
    { Proto.cr_spec = tiny_spec; cr_config = tiny_cfg; cr_kind = Proto.Corpus_ppa }
  in
  let id1 = Client.submit_corpus c req in
  (* identical request while the first is in flight: same job id *)
  let id1b = Client.submit_corpus c req in
  Alcotest.(check int) "in-flight dedup returns the same id" id1 id1b;
  Alcotest.(check bool) "dedup counted" true (stat srv "corpus_dedup" >= 1.);
  let served =
    match Client.wait_corpus c id1 with
    | Proto.Corpus_row r -> r
    | Proto.Corpus_dataset_built _ -> Alcotest.fail "unexpected dataset reply"
  in
  Alcotest.(check string) "served row == local row" (Corpus.row_digest local)
    (Corpus.row_digest served);
  (* a fresh identical request after completion is answered from the
     on-disk store without re-running the flow *)
  let hits0 = stat srv "corpus_cache_hits" in
  let id2 = Client.submit_corpus c req in
  Alcotest.(check bool) "new job after completion" true (id2 <> id1);
  let replay =
    match Client.wait_corpus c id2 with
    | Proto.Corpus_row r -> r
    | Proto.Corpus_dataset_built _ -> Alcotest.fail "unexpected dataset reply"
  in
  Alcotest.check row_t "store replay verbatim" served replay;
  Alcotest.(check bool) "store hit observed in stats" true
    (stat srv "corpus_cache_hits" > hits0)

let test_served_dataset_build () =
  with_obs @@ fun () ->
  let local =
    Dataset.digest (Corpus.build_dataset ~n_samples:1 tiny_spec tiny_cfg)
  in
  with_corpus_server @@ fun srv ->
  let c = Client.connect (Server.bound_addr srv) in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let id =
    Client.submit_corpus c
      {
        Proto.cr_spec = tiny_spec;
        cr_config = tiny_cfg;
        cr_kind = Proto.Corpus_dataset 1;
      }
  in
  match Client.wait_corpus c id with
  | Proto.Corpus_dataset_built { cd_design; cd_samples; cd_digest } ->
      Alcotest.(check string) "design" tiny_spec.Corpus.sp_name cd_design;
      Alcotest.(check int) "samples" 1 cd_samples;
      Alcotest.(check string) "served build == local build" local cd_digest
  | Proto.Corpus_row _ -> Alcotest.fail "unexpected PPA-row reply"

let test_corpus_key_identity () =
  let req =
    { Proto.cr_spec = tiny_spec; cr_config = tiny_cfg; cr_kind = Proto.Corpus_ppa }
  in
  Alcotest.(check string) "stable" (Proto.corpus_key req)
    (Proto.corpus_key req);
  Alcotest.(check bool) "seed changes the key" true
    (Proto.corpus_key req
    <> Proto.corpus_key { req with Proto.cr_spec = Corpus.reseeded 8 tiny_spec });
  Alcotest.(check bool) "kind changes the key" true
    (Proto.corpus_key req
    <> Proto.corpus_key { req with Proto.cr_kind = Proto.Corpus_dataset 1 })

let suites =
  [
    ( "corpus",
      [
        Alcotest.test_case "framing evict_lru (order, suffix, touch)" `Quick
          test_evict_lru;
        Alcotest.test_case "route cache bounded + survivor replay" `Quick
          test_route_cache_cap;
        Alcotest.test_case "route cache cap from env" `Quick
          test_route_cache_env_cap;
        Alcotest.test_case "store round-trip + counters" `Quick
          test_store_roundtrip;
        Alcotest.test_case "store corrupt entry self-deletes" `Quick
          test_store_corrupt_self_deletes;
        Alcotest.test_case "store bounded, corrupt survivor ages out" `Quick
          test_store_bounded_with_corrupt_survivor;
        Alcotest.test_case "netlist digests deterministic (jobs 1 and 4)"
          `Quick test_netlist_digest_determinism;
        Alcotest.test_case "PPA rows deterministic (jobs 1 and 4)" `Quick
          test_row_determinism;
        Alcotest.test_case "store replay verbatim" `Quick
          test_store_replay_verbatim;
        Alcotest.test_case "served replay, in-flight dedup, store hits"
          `Quick test_served_replay_dedup_and_store;
        Alcotest.test_case "served dataset build" `Quick
          test_served_dataset_build;
        Alcotest.test_case "corpus request key" `Quick test_corpus_key_identity;
      ] );
  ]
