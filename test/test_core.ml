(* Tests for the DCO-3D core: dataset construction, Algorithm-1
   training, the differentiable soft maps with the Eq.-6 backward,
   the Algorithm-2 losses and optimizer, and the TCL export. *)

module T = Dco3d_tensor.Tensor
module Rng = Dco3d_tensor.Rng
module V = Dco3d_autodiff.Value
module Nl = Dco3d_netlist.Netlist
module Cl = Dco3d_netlist.Cell_lib
module Gen = Dco3d_netlist.Generator
module Fp = Dco3d_place.Floorplan
module Pl = Dco3d_place.Placement
module Placer = Dco3d_place.Placer
module Router = Dco3d_route.Router
module Csr = Dco3d_graph.Csr
module Dataset = Dco3d_core.Dataset
module Predictor = Dco3d_core.Predictor
module Sm = Dco3d_core.Soft_maps
module Losses = Dco3d_core.Losses
module Spreader = Dco3d_core.Spreader
module Dco = Dco3d_core.Dco
module Tcl = Dco3d_core.Tcl_export

(* shared tiny environment *)
let env =
  lazy
    (let nl = Gen.generate ~scale:0.015 ~seed:5 (Gen.profile "DMA") in
     let fp = Fp.create ~gcell_nx:16 ~gcell_ny:16 nl in
     let base =
       Placer.global_place ~seed:1 ~params:Dco3d_place.Params.default nl fp
     in
     let route_cfg = Router.calibrated_config base in
     (nl, fp, base, route_cfg))

let tiny_dataset =
  lazy
    (let nl, fp, _, route_cfg = Lazy.force env in
     Dataset.build ~n_samples:6 ~seed:2 ~route_cfg nl fp)

(* ------------------------------------------------------------------ *)
(* Dataset                                                             *)
(* ------------------------------------------------------------------ *)

let test_dataset_shapes () =
  let d = Lazy.force tiny_dataset in
  Alcotest.(check int) "sample count" 6 (Array.length d.Dataset.samples);
  Array.iter
    (fun s ->
      Alcotest.(check (array int)) "features" [| 8; 16; 16 |]
        (T.shape s.Dataset.f_bottom);
      Alcotest.(check (array int)) "labels" [| 16; 16 |]
        (T.shape s.Dataset.c_top);
      Alcotest.(check bool) "labels non-negative" true
        (T.min_elt s.Dataset.c_bottom >= 0.))
    d.Dataset.samples

let test_dataset_deterministic () =
  let nl, fp, _, route_cfg = Lazy.force env in
  let a = Dataset.build ~n_samples:2 ~seed:9 ~route_cfg nl fp in
  let b = Dataset.build ~n_samples:2 ~seed:9 ~route_cfg nl fp in
  Alcotest.(check bool) "same labels" true
    (T.approx_equal a.Dataset.samples.(0).Dataset.c_bottom
       b.Dataset.samples.(0).Dataset.c_bottom)

let test_dataset_diverse () =
  let d = Lazy.force tiny_dataset in
  (* different Table-I samples must give different features *)
  Alcotest.(check bool) "diverse samples" false
    (T.approx_equal d.Dataset.samples.(0).Dataset.f_bottom
       d.Dataset.samples.(1).Dataset.f_bottom)

let test_dataset_split () =
  let d = Lazy.force tiny_dataset in
  let train, test = Dataset.split ~test_fraction:0.33 ~seed:1 d in
  Alcotest.(check int) "test size" 2 (Array.length test.Dataset.samples);
  Alcotest.(check int) "train size" 4 (Array.length train.Dataset.samples)

let test_dataset_augment8 () =
  let d = Lazy.force tiny_dataset in
  let augmented = Dataset.augment8 d.Dataset.samples.(0) in
  Alcotest.(check int) "8 variants" 8 (List.length augmented);
  (* all variants conserve total label mass *)
  let mass s = T.sum s.Dataset.c_bottom +. T.sum s.Dataset.c_top in
  let m0 = mass d.Dataset.samples.(0) in
  List.iter
    (fun s -> Alcotest.(check (float 1e-9)) "mass conserved" m0 (mass s))
    augmented

let test_dataset_merge () =
  let d = Lazy.force tiny_dataset in
  let m = Dataset.merge [ d; d ] in
  Alcotest.(check int) "merged" 12 (Array.length m.Dataset.samples)

let test_label_scale_positive () =
  let d = Lazy.force tiny_dataset in
  Alcotest.(check bool) "positive" true (Dataset.label_scale d > 0.)

(* ------------------------------------------------------------------ *)
(* Predictor (Algorithm 1)                                             *)
(* ------------------------------------------------------------------ *)

let trained =
  lazy
    (let d = Lazy.force tiny_dataset in
     let train, test = Dataset.split ~test_fraction:0.33 ~seed:1 d in
     Predictor.train ~epochs:6 ~input_hw:16 ~base_channels:4 ~augment:false
       ~seed:3 ~train ~test ())

let test_training_reduces_loss () =
  let _, report = Lazy.force trained in
  let first = report.Predictor.train_loss.(0) in
  let last = report.Predictor.train_loss.(report.Predictor.epochs - 1) in
  Alcotest.(check bool)
    (Printf.sprintf "train loss %.4f -> %.4f" first last)
    true (last < first)

let test_predict_shapes_and_sign () =
  let t, _ = Lazy.force trained in
  let d = Lazy.force tiny_dataset in
  let s = d.Dataset.samples.(0) in
  let p0, p1 = Predictor.predict t s.Dataset.f_bottom s.Dataset.f_top in
  Alcotest.(check (array int)) "gcell resolution" [| 16; 16 |] (T.shape p0);
  Alcotest.(check bool) "non-negative overflow" true
    (T.min_elt p0 >= 0. && T.min_elt p1 >= 0.)

let test_evaluate_metrics_range () =
  let t, _ = Lazy.force trained in
  let d = Lazy.force tiny_dataset in
  let metrics = Predictor.evaluate t d in
  Alcotest.(check int) "two dies per sample" 12 (List.length metrics);
  List.iter
    (fun (nrmse, ssim) ->
      Alcotest.(check bool) "nrmse >= 0" true (nrmse >= 0.);
      Alcotest.(check bool) "ssim in range" true (ssim >= -1. && ssim <= 1.))
    metrics

let test_predictor_save_load () =
  let t, _ = Lazy.force trained in
  let d = Lazy.force tiny_dataset in
  let s = d.Dataset.samples.(0) in
  let path = Filename.temp_file "dco3d_pred" ".bin" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove path;
      if Sys.file_exists (path ^ ".net") then Sys.remove (path ^ ".net"))
    (fun () ->
      Predictor.save t path;
      let t' = Predictor.load path in
      let a, _ = Predictor.predict t s.Dataset.f_bottom s.Dataset.f_top in
      let b, _ = Predictor.predict t' s.Dataset.f_bottom s.Dataset.f_top in
      Alcotest.(check bool) "same predictions" true (T.approx_equal a b))

let test_predictor_load_errors () =
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  (* missing file *)
  (match Predictor.load "/nonexistent/dco3d-no-such-predictor.bin" with
  | _ -> Alcotest.fail "expected Load_error on missing file"
  | exception Predictor.Load_error msg ->
      Alcotest.(check bool) "missing: names the file" true
        (contains msg "no-such-predictor"));
  (* well-formed header whose companion weights file is absent: the
     SiaUNet failure must surface as Predictor.Load_error *)
  let path = Filename.temp_file "dco3d_pred" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc "DCO3D-PREDICTOR-V1";
      Marshal.to_channel oc ((32, 1.0) : int * float) [];
      close_out oc;
      match Predictor.load path with
      | _ -> Alcotest.fail "expected Load_error on missing .net"
      | exception Predictor.Load_error msg ->
          Alcotest.(check bool)
            (Printf.sprintf "error %S names the .net file" msg)
            true
            (contains msg (path ^ ".net")));
  (* truncated header *)
  let path = Filename.temp_file "dco3d_pred" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc "DCO3D-PREDICTOR-V1";
      close_out oc;
      match Predictor.load path with
      | _ -> Alcotest.fail "expected Load_error on truncated file"
      | exception Predictor.Load_error msg ->
          Alcotest.(check bool) "truncated: names the file" true
            (contains msg path))

(* ------------------------------------------------------------------ *)
(* Soft maps (section IV-A + Eq. 6)                                    *)
(* ------------------------------------------------------------------ *)

(* hand-built two-cell netlist for exact gradient checks *)
let tiny_pair () =
  let m = Cl.find "INV_X1" in
  let nets =
    [|
      { Nl.net_id = 0; net_name = "n0"; driver = Nl.Cell 0;
        sinks = [| Nl.Cell 1 |]; is_clock = false };
    |]
  in
  let nl =
    { Nl.design = "tiny"; masters = [| m; m |]; nets; ios = [||];
      cell_fanin = [| [||]; [| 0 |] |]; cell_fanout = [| 0; -1 |] }
  in
  let fp = { Fp.width = 8.; height = 8.; gcell_nx = 4; gcell_ny = 4; n_rows = 8 } in
  let p = Pl.create nl fp in
  p.Pl.x.(0) <- 1.3;
  p.Pl.y.(0) <- 1.7;
  p.Pl.x.(1) <- 5.9;
  p.Pl.y.(1) <- 6.3;
  p

let soft_loss p wmap xt yt zt =
  let x = V.param (T.copy xt) and y = V.param (T.copy yt) and z = V.param (T.copy zt) in
  let f0, f1 = Sm.build ~placement:p ~x ~y ~z ~nx:4 ~ny:4 () in
  (V.add (V.dot f0 (V.const wmap)) (V.scale 2. (V.dot f1 (V.const wmap))), x, y, z)

let test_soft_maps_match_hard_at_binary_z () =
  (* with z exactly 0/1 the soft maps reduce to the hard feature maps
     up to the splat kernel: total mass per channel must agree *)
  let _, _, base, _ = Lazy.force env in
  let p = base in
  let n = Nl.n_cells p.Pl.nl in
  let x = V.const (T.of_array1 p.Pl.x) in
  let y = V.const (T.of_array1 p.Pl.y) in
  let z = V.const (T.init [| n |] (fun i -> float_of_int p.Pl.tier.(i.(0)))) in
  let f0, f1 = Sm.build ~placement:p ~x ~y ~z ~nx:16 ~ny:16 () in
  let h0, h1 = Dco3d_congestion.Feature_maps.both_dies p ~nx:16 ~ny:16 in
  List.iter
    (fun (soft, hard, die) ->
      for ch = 0 to 6 do
        let ms = T.sum (T.channel (V.data soft) ch) in
        let mh = T.sum (T.channel hard ch) in
        let denom = Float.max 1. mh in
        if abs_float (ms -. mh) /. denom > 0.02 then
          Alcotest.failf "die %d channel %d mass: soft %.3f vs hard %.3f" die ch
            ms mh
      done)
    [ (f0, h0, 0); (f1, h1, 1) ]

let test_soft_maps_exact_gradients () =
  (* the minimal clean case must match central differences exactly *)
  let p = tiny_pair () in
  let x0 = T.of_array1 p.Pl.x and y0 = T.of_array1 p.Pl.y in
  let z0 = T.of_array1 [| 0.3; 0.7 |] in
  let rng = Rng.create 7 in
  (* the PinRUDY channels use a documented stop-gradient on the net
     scale, so the exactness check covers the other channels (the
     thermal plane is a frozen constant — zeros here — so it cannot
     perturb the check either way) *)
  let wmap =
    T.init [| 8; 4; 4 |] (fun i ->
        if i.(0) = 4 || i.(0) = 5 then 0. else Rng.gaussian rng)
  in
  let l, x, y, z = soft_loss p wmap x0 y0 z0 in
  V.backward l;
  let eps = 1e-6 in
  let fd base i rebuild =
    let tp = T.copy base and tm = T.copy base in
    T.set_flat tp i (T.get_flat base i +. eps);
    T.set_flat tm i (T.get_flat base i -. eps);
    let lp, _, _, _ = rebuild tp and lm, _, _, _ = rebuild tm in
    (T.get_flat (V.data lp) 0 -. T.get_flat (V.data lm) 0) /. (2. *. eps)
  in
  for c = 0 to 1 do
    Alcotest.(check (float 1e-3)) "dx"
      (fd x0 c (fun t -> soft_loss p wmap t y0 z0))
      (T.get_flat (V.grad x) c);
    Alcotest.(check (float 1e-3)) "dy"
      (fd y0 c (fun t -> soft_loss p wmap x0 t z0))
      (T.get_flat (V.grad y) c);
    Alcotest.(check (float 1e-3)) "dz"
      (fd z0 c (fun t -> soft_loss p wmap x0 y0 t))
      (T.get_flat (V.grad z) c)
  done

let test_soft_maps_descent_direction () =
  (* On a full random design the RUDY backward is a sub-gradient at
     ties; it must still be a descent direction: moving against it must
     reduce the loss. *)
  let _, _, base, _ = Lazy.force env in
  let p = base in
  let n = Nl.n_cells p.Pl.nl in
  let rng = Rng.create 11 in
  let x0 = T.init [| n |] (fun i -> p.Pl.x.(i.(0)) +. (0.011 *. Rng.uniform rng)) in
  let y0 = T.init [| n |] (fun i -> p.Pl.y.(i.(0)) +. (0.011 *. Rng.uniform rng)) in
  let z0 = T.init [| n |] (fun _ -> 0.2 +. (0.6 *. Rng.uniform rng)) in
  let wmap = T.map (fun v -> abs_float v) (T.randn (Rng.create 13) [| 8; 16; 16 |]) in
  let build xt yt zt =
    let x = V.param (T.copy xt) and y = V.param (T.copy yt) and z = V.param (T.copy zt) in
    let f0, f1 = Sm.build ~placement:p ~x ~y ~z ~nx:16 ~ny:16 () in
    (V.add (V.dot f0 (V.const wmap)) (V.dot f1 (V.const wmap)), x, y, z)
  in
  let l, x, y, z = build x0 y0 z0 in
  let l0 = T.get_flat (V.data l) 0 in
  V.backward l;
  let step = 1e-4 in
  let move base g =
    T.map2 (fun b gv -> b -. (step *. gv)) base g
  in
  let l', _, _, _ =
    build (move x0 (V.grad x)) (move y0 (V.grad y)) (move z0 (V.grad z))
  in
  let l1 = T.get_flat (V.data l') 0 in
  Alcotest.(check bool)
    (Printf.sprintf "descent %.6f -> %.6f" l0 l1)
    true (l1 < l0)

let prop_soft_density_mass_conserved =
  (* for ANY z, the per-cell density mass splits between the dies but
     its total is invariant: sum over both dies of the density channel
     equals total (non-macro) cell area / bin area + macro channel *)
  QCheck.Test.make ~name:"soft density mass is z-invariant" ~count:10
    (QCheck.int_bound 10_000) (fun seed ->
      let _, _, base, _ = Lazy.force env in
      let p = base in
      let n = Nl.n_cells p.Pl.nl in
      let rng = Rng.create seed in
      let x = V.const (T.of_array1 p.Pl.x) in
      let y = V.const (T.of_array1 p.Pl.y) in
      let z = V.const (T.init [| n |] (fun _ -> Rng.uniform rng)) in
      let f0, f1 = Sm.build ~placement:p ~x ~y ~z ~nx:16 ~ny:16 () in
      let mass f = T.sum (T.channel (V.data f) 0) in
      let total = mass f0 +. mass f1 in
      (* reference at z = tier *)
      let z_hard =
        V.const (T.init [| n |] (fun i -> float_of_int p.Pl.tier.(i.(0))))
      in
      let g0, g1 = Sm.build ~placement:p ~x ~y ~z:z_hard ~nx:16 ~ny:16 () in
      let total_ref = mass g0 +. mass g1 in
      abs_float (total -. total_ref) < 1e-6 *. Float.max 1. total_ref)

let prop_soft_rudy3d_symmetric =
  (* the 3D RUDY channel is always identical on both dies *)
  QCheck.Test.make ~name:"soft 3D RUDY identical on both dies" ~count:5
    (QCheck.int_bound 10_000) (fun seed ->
      let _, _, base, _ = Lazy.force env in
      let p = base in
      let n = Nl.n_cells p.Pl.nl in
      let rng = Rng.create seed in
      let x = V.const (T.of_array1 p.Pl.x) in
      let y = V.const (T.of_array1 p.Pl.y) in
      let z = V.const (T.init [| n |] (fun _ -> Rng.uniform rng)) in
      let f0, f1 = Sm.build ~placement:p ~x ~y ~z ~nx:16 ~ny:16 () in
      T.approx_equal ~eps:1e-9
        (T.channel (V.data f0) 3)
        (T.channel (V.data f1) 3))

let prop_cutsize_bounds =
  (* Eq. 7 is non-negative and zero on a cut-free partition *)
  QCheck.Test.make ~name:"cutsize loss bounds" ~count:20
    (QCheck.int_bound 10_000) (fun seed ->
      let rng = Rng.create seed in
      let n = 4 + Rng.int rng 6 in
      (* random graph *)
      let coo = ref [] in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          if Rng.uniform rng < 0.4 then coo := (i, j, 1.) :: (j, i, 1.) :: !coo
        done
      done;
      let adj = Csr.create ~n_rows:n ~n_cols:n !coo in
      let z = V.const (T.init [| n |] (fun _ -> Rng.uniform rng)) in
      let l = T.get_flat (V.data (Losses.cutsize ~adj z)) 0 in
      let all_bottom = V.const (T.zeros [| n |]) in
      let l0 = T.get_flat (V.data (Losses.cutsize ~adj all_bottom)) 0 in
      l >= -1e-9 && abs_float l0 < 1e-6)

let test_hard_assignment () =
  let z = T.of_array1 [| 0.1; 0.5; 0.9; 0.49999 |] in
  Alcotest.(check (array int)) "threshold at 0.5" [| 0; 1; 1; 0 |]
    (Sm.hard_assignment z)

(* ------------------------------------------------------------------ *)
(* Losses                                                              *)
(* ------------------------------------------------------------------ *)

let test_cutsize_loss_matches_hard_cut () =
  (* binary z: the soft cut count must equal the hard edge cut *)
  let adj =
    Csr.create ~n_rows:4 ~n_cols:4
      [ (0, 1, 1.); (1, 0, 1.); (1, 2, 1.); (2, 1, 1.); (2, 3, 1.); (3, 2, 1.) ]
  in
  (* partition {0,1 | 2,3}: one cut edge (1-2); deg_T = 2*1 (edge 0-1 both
     dirs), deg_B = 2*1 *)
  let z = V.const (T.of_array1 [| 0.; 0.; 1.; 1. |]) in
  let l = Losses.cutsize ~adj z in
  (* cut = z'A1 - z'Az = 3 - 2 = 1 (the single cut edge), deg(T) =
     z'Az = 2 and deg(B) = 2 (each intra-die edge counted in both
     directions): loss = 1/2 + 1/2 = 1 *)
  Alcotest.(check (float 1e-4)) "eq7 at binary z" 1. (T.get_flat (V.data l) 0)

let test_cutsize_gradient_reduces_cut () =
  (* gradient descent on the cut loss must drive a cut edge's endpoints
     to the same side *)
  let adj = Csr.create ~n_rows:2 ~n_cols:2 [ (0, 1, 1.); (1, 0, 1.) ] in
  let zt = T.of_array1 [| -0.2; 0.2 |] in
  let z = V.param zt in
  let l = Losses.cutsize ~adj (V.sigmoid z) in
  ignore (V.data l);
  V.backward l;
  let g = V.grad z in
  (* pushing along -g must move z0 and z1 toward each other *)
  Alcotest.(check bool) "gradients pull together" true
    (T.get_flat g 0 *. T.get_flat g 1 < 0.)

let test_overlap_loss_detects_overfill () =
  let mk v = V.const (T.full [| 8; 4; 4 |] v) in
  let low = Losses.overlap ~target:0.8 (mk 0.5) (mk 0.5) in
  let high = Losses.overlap ~target:0.8 (mk 1.2) (mk 1.2) in
  Alcotest.(check (float 1e-9)) "under target" 0. (T.get_flat (V.data low) 0);
  Alcotest.(check bool) "over target penalized" true
    (T.get_flat (V.data high) 0 > 0.)

let test_displacement_loss () =
  let x0 = T.of_array1 [| 0.; 0. |] and y0 = T.of_array1 [| 0.; 0. |] in
  let x = V.const (T.of_array1 [| 3.; 0. |]) in
  let y = V.const (T.of_array1 [| 4.; 0. |]) in
  let l = Losses.displacement ~x ~y ~x0 ~y0 in
  Alcotest.(check (float 1e-9)) "eq11 mean" 12.5 (T.get_flat (V.data l) 0)

let test_congestion_loss_zero_on_empty () =
  let z = V.const (T.zeros [| 1; 4; 4 |]) in
  Alcotest.(check (float 1e-12)) "zero maps" 0.
    (T.get_flat (V.data (Losses.congestion z z)) 0)

(* ------------------------------------------------------------------ *)
(* Spreader                                                            *)
(* ------------------------------------------------------------------ *)

let test_graph_of_netlist () =
  let nl, _, _, _ = Lazy.force env in
  let g = Spreader.graph_of_netlist nl in
  Alcotest.(check int) "square" (Nl.n_cells nl) g.Csr.n_rows;
  (* symmetry *)
  let ok = ref true in
  Csr.iter g (fun i j v -> if abs_float (Csr.get g j i -. v) > 1e-9 then ok := false);
  Alcotest.(check bool) "symmetric" true !ok

let test_node_features_shape () =
  let _, _, base, _ = Lazy.force env in
  let f = Spreader.node_features base in
  Alcotest.(check (array int)) "n x 11"
    [| Nl.n_cells base.Pl.nl; 11 |] (T.shape f)

let test_spreader_starts_at_identity () =
  let _, _, base, _ = Lazy.force env in
  let adj = Csr.symmetric_normalize (Spreader.graph_of_netlist base.Pl.nl) in
  let features = Spreader.node_features base in
  let sp =
    Spreader.create (Rng.create 3) ~adj ~n_features:11 ~max_move:1.0
      ~placement:base ()
  in
  let x, _, z = Spreader.forward sp ~features in
  (* fresh GNN outputs are small: positions near x0, tiers near z0 *)
  let n = Nl.n_cells base.Pl.nl in
  let max_shift = ref 0. and tier_flips = ref 0 in
  for c = 0 to n - 1 do
    max_shift := Float.max !max_shift (abs_float (T.get_flat (V.data x) c -. base.Pl.x.(c)));
    let zt = T.get_flat (V.data z) c in
    if (zt >= 0.5) <> (base.Pl.tier.(c) = 1) then incr tier_flips
  done;
  Alcotest.(check bool) "bounded moves" true (!max_shift <= 1.0 +. 1e-9);
  Alcotest.(check bool)
    (Printf.sprintf "few initial tier flips (%d)" !tier_flips)
    true
    (!tier_flips < n / 6)

let test_spreader_masks_macros () =
  let nl = Gen.generate ~scale:0.015 ~seed:5 (Gen.profile "Rocket") in
  let fp = Fp.create ~gcell_nx:16 ~gcell_ny:16 nl in
  let p = Placer.global_place ~seed:1 ~params:Dco3d_place.Params.default nl fp in
  let adj = Csr.symmetric_normalize (Spreader.graph_of_netlist nl) in
  let sp =
    Spreader.create (Rng.create 3) ~adj ~n_features:11 ~max_move:5.0
      ~placement:p ()
  in
  let x, y, _ = Spreader.forward sp ~features:(Spreader.node_features p) in
  for c = 0 to Nl.n_cells nl - 1 do
    if Nl.is_macro nl c then begin
      Alcotest.(check (float 1e-9)) "macro x fixed" p.Pl.x.(c)
        (T.get_flat (V.data x) c);
      Alcotest.(check (float 1e-9)) "macro y fixed" p.Pl.y.(c)
        (T.get_flat (V.data y) c)
    end
  done

(* ------------------------------------------------------------------ *)
(* Algorithm 2 end-to-end                                              *)
(* ------------------------------------------------------------------ *)

let test_dco_optimize_smoke () =
  let _, _, base, _ = Lazy.force env in
  let predictor, _ = Lazy.force trained in
  let config =
    { Dco.default_config with Dco.iterations = 8; seed = 4 }
  in
  let p', report = Dco.optimize ~config ~predictor base in
  (* legal result *)
  (match Placer.legal_check p' with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* the optimization must make progress: the best iterate beats the
     first (Adam wobbles a little step to step) *)
  let first = report.Dco.stats.(0).Dco.total in
  let best =
    Array.fold_left (fun acc (s : Dco.iter_stats) -> Float.min acc s.Dco.total)
      infinity report.Dco.stats
  in
  Alcotest.(check bool)
    (Printf.sprintf "loss %.4f -> best %.4f" first best)
    true (best <= first);
  (* displacement stays bounded (the displacement loss is doing work) *)
  Alcotest.(check bool)
    (Printf.sprintf "bounded displacement %.3f" report.Dco.mean_displacement)
    true
    (report.Dco.mean_displacement < 5.);
  Alcotest.(check bool) "stats recorded" true
    (Array.length report.Dco.stats >= 1 && Array.length report.Dco.stats <= 8)

(* epsilon > 0 threads the steady-state solver through every iteration:
   the rise becomes the UNet's 8th channel and the frozen-field penalty
   joins the objective.  Smoke: it must run and come back legal. *)
let test_dco_optimize_thermal_coupling () =
  let _, _, base, _ = Lazy.force env in
  let predictor, _ = Lazy.force trained in
  let config =
    { Dco.default_config with Dco.iterations = 2; seed = 4; epsilon = 0.15 }
  in
  let p', report = Dco.optimize ~config ~predictor base in
  (match Placer.legal_check p' with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "stats recorded" true
    (Array.length report.Dco.stats >= 1)

let test_dco_deterministic () =
  let _, _, base, _ = Lazy.force env in
  let predictor, _ = Lazy.force trained in
  let config = { Dco.default_config with Dco.iterations = 3; seed = 4 } in
  let a, _ = Dco.optimize ~config ~predictor base in
  let b, _ = Dco.optimize ~config ~predictor base in
  Alcotest.(check bool) "same result" true
    (a.Pl.x = b.Pl.x && a.Pl.tier = b.Pl.tier)

(* Alternating minimization on the penalty alone must actually cool a
   hotspot: compress the placement toward the die center (unlegalized —
   legalization is a density flattener that would erase the hotspot),
   run [Dco.cool], and check both the penalty and the measured peak
   rise went down on the legalized result. *)
let test_dco_cool_reduces_peak () =
  let nl, fp, base, _ = Lazy.force env in
  let hot = Pl.copy base in
  let cx = fp.Fp.width /. 2. and cy = fp.Fp.height /. 2. in
  for c = 0 to Nl.n_cells nl - 1 do
    if not (Nl.is_macro nl c) then begin
      hot.Pl.x.(c) <- cx +. (0.35 *. (hot.Pl.x.(c) -. cx));
      hot.Pl.y.(c) <- cy +. (0.35 *. (hot.Pl.y.(c) -. cy))
    end
  done;
  let cold, report = Dco.cool ~iterations:40 hot in
  (match Placer.legal_check cold with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool)
    (Printf.sprintf "penalty %.4g -> %.4g" report.Dco.loss_start
       report.Dco.loss_end)
    true
    (report.Dco.loss_end < report.Dco.loss_start);
  let module Th = Dco3d_thermal.Thermal in
  let peak p = (Th.solve_placement ~nx:8 ~ny:8 p).Th.peak_c in
  let hot_peak = peak hot and cold_peak = peak cold in
  Alcotest.(check bool)
    (Printf.sprintf "peak %.4f -> %.4f C" hot_peak cold_peak)
    true (cold_peak < hot_peak)

let test_dco_cool_deterministic () =
  let _, _, base, _ = Lazy.force env in
  let a, _ = Dco.cool ~iterations:5 base in
  let b, _ = Dco.cool ~iterations:5 base in
  Alcotest.(check bool) "same result" true
    (a.Pl.x = b.Pl.x && a.Pl.tier = b.Pl.tier)

let test_resize_value_gradcheck () =
  Alcotest.(check bool) "resize gradient" true
    (V.gradient_check
       (fun v -> V.sum (V.sqr (Dco.resize_value v 6 6)))
       (T.randn (Rng.create 21) [| 2; 4; 4 |]))

let test_normalize_features_gradcheck () =
  Alcotest.(check bool) "normalize gradient" true
    (V.gradient_check
       (fun v -> V.sum (V.sqr (Dco.normalize_features v)))
       (T.randn (Rng.create 22) [| 8; 3; 3 |]))

(* ------------------------------------------------------------------ *)
(* TCL export                                                          *)
(* ------------------------------------------------------------------ *)

let test_tcl_roundtrip () =
  let _, _, base, _ = Lazy.force env in
  let text = Tcl.to_string base in
  let locs = Tcl.parse_locations text in
  Alcotest.(check int) "all cells" (Nl.n_cells base.Pl.nl) (List.length locs);
  List.iteri
    (fun i (name, x, y, tier) ->
      if i < 10 then begin
        Alcotest.(check string) "name" (Printf.sprintf "u%d" i) name;
        Alcotest.(check (float 1e-3)) "x" base.Pl.x.(i) x;
        Alcotest.(check (float 1e-3)) "y" base.Pl.y.(i) y;
        Alcotest.(check int) "tier" base.Pl.tier.(i) tier
      end)
    locs

let test_tcl_only_moved () =
  let _, _, base, _ = Lazy.force env in
  let moved = Pl.copy base in
  moved.Pl.x.(3) <- moved.Pl.x.(3) +. 1.;
  moved.Pl.tier.(7) <- 1 - moved.Pl.tier.(7);
  let text = Tcl.to_string ~only_moved_from:base moved in
  let locs = Tcl.parse_locations text in
  Alcotest.(check int) "only two cells" 2 (List.length locs)

let qtest = QCheck_alcotest.to_alcotest

let suites =
  [
    ( "core.dataset",
      [
        Alcotest.test_case "shapes" `Quick test_dataset_shapes;
        Alcotest.test_case "deterministic" `Quick test_dataset_deterministic;
        Alcotest.test_case "diverse" `Quick test_dataset_diverse;
        Alcotest.test_case "split" `Quick test_dataset_split;
        Alcotest.test_case "augment8" `Quick test_dataset_augment8;
        Alcotest.test_case "merge" `Quick test_dataset_merge;
        Alcotest.test_case "label scale" `Quick test_label_scale_positive;
      ] );
    ( "core.predictor",
      [
        Alcotest.test_case "training reduces loss" `Slow test_training_reduces_loss;
        Alcotest.test_case "prediction shapes" `Slow test_predict_shapes_and_sign;
        Alcotest.test_case "metric ranges" `Slow test_evaluate_metrics_range;
        Alcotest.test_case "save/load" `Slow test_predictor_save_load;
        Alcotest.test_case "load errors" `Quick test_predictor_load_errors;
      ] );
    ( "core.soft_maps",
      [
        Alcotest.test_case "mass matches hard maps" `Quick test_soft_maps_match_hard_at_binary_z;
        Alcotest.test_case "exact gradients (2-cell)" `Quick test_soft_maps_exact_gradients;
        Alcotest.test_case "descent direction" `Quick test_soft_maps_descent_direction;
        Alcotest.test_case "hard assignment" `Quick test_hard_assignment;
        qtest prop_soft_density_mass_conserved;
        qtest prop_soft_rudy3d_symmetric;
      ] );
    ( "core.losses",
      [
        Alcotest.test_case "cutsize matches hard cut" `Quick test_cutsize_loss_matches_hard_cut;
        Alcotest.test_case "cutsize gradient" `Quick test_cutsize_gradient_reduces_cut;
        Alcotest.test_case "overlap detects overfill" `Quick test_overlap_loss_detects_overfill;
        Alcotest.test_case "displacement (Eq. 11)" `Quick test_displacement_loss;
        Alcotest.test_case "congestion zero map" `Quick test_congestion_loss_zero_on_empty;
        qtest prop_cutsize_bounds;
      ] );
    ( "core.spreader",
      [
        Alcotest.test_case "netlist graph" `Quick test_graph_of_netlist;
        Alcotest.test_case "node features" `Quick test_node_features_shape;
        Alcotest.test_case "starts near identity" `Quick test_spreader_starts_at_identity;
        Alcotest.test_case "macros masked" `Quick test_spreader_masks_macros;
      ] );
    ( "core.dco",
      [
        Alcotest.test_case "optimize smoke" `Slow test_dco_optimize_smoke;
        Alcotest.test_case "thermal coupling smoke" `Slow
          test_dco_optimize_thermal_coupling;
        Alcotest.test_case "deterministic" `Slow test_dco_deterministic;
        Alcotest.test_case "cool reduces peak" `Quick test_dco_cool_reduces_peak;
        Alcotest.test_case "cool deterministic" `Quick test_dco_cool_deterministic;
        Alcotest.test_case "resize gradcheck" `Quick test_resize_value_gradcheck;
        Alcotest.test_case "normalize gradcheck" `Quick test_normalize_features_gradcheck;
      ] );
    ( "core.tcl",
      [
        Alcotest.test_case "roundtrip" `Quick test_tcl_roundtrip;
        Alcotest.test_case "only moved" `Quick test_tcl_only_moved;
      ] );
  ]
