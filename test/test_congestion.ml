(* Tests for RUDY / PinRUDY, the 7-channel feature maps, and the
   prediction metrics (NRMSE / SSIM). *)

module T = Dco3d_tensor.Tensor
module Rng = Dco3d_tensor.Rng
module Nl = Dco3d_netlist.Netlist
module Gen = Dco3d_netlist.Generator
module Fp = Dco3d_place.Floorplan
module Pl = Dco3d_place.Placement
module Placer = Dco3d_place.Placer
module Rudy = Dco3d_congestion.Rudy
module Fm = Dco3d_congestion.Feature_maps
module M = Dco3d_congestion.Metrics

let placed name =
  let nl = Gen.generate ~scale:0.02 ~seed:5 (Gen.profile name) in
  let fp = Fp.create nl in
  Placer.global_place ~seed:1 ~params:Dco3d_place.Params.default nl fp

(* ------------------------------------------------------------------ *)
(* RUDY                                                                *)
(* ------------------------------------------------------------------ *)

let test_net_weight () =
  Alcotest.(check (float 1e-9)) "square net" 2. (Rudy.net_weight 1. 1.);
  Alcotest.(check (float 1e-9)) "wide net" (1. +. 0.5) (Rudy.net_weight 1. 2.);
  (* degenerate spans clamp to the minimum feature size *)
  Alcotest.(check bool) "point net finite" true
    (Float.is_finite (Rudy.net_weight 0. 0.))

let test_accumulate_net_conserves_weight () =
  (* integrating RUDY over all tiles recovers weight * bbox_area /
     tile_area (Eq. 2 is a partition of the bbox) *)
  let map = T.zeros [| 8; 8 |] in
  let die = 8. in
  Rudy.accumulate_net map ~die_w:die ~die_h:die ~bbox:(1.2, 2.3, 5.7, 6.1)
    ~weight:3.;
  let bbox_area = (5.7 -. 1.2) *. (6.1 -. 2.3) in
  let tile_area = 1. in
  Alcotest.(check (float 1e-9)) "mass conserved"
    (3. *. bbox_area /. tile_area)
    (T.sum map)

let test_accumulate_clips_outside () =
  let map = T.zeros [| 4; 4 |] in
  Rudy.accumulate_net map ~die_w:4. ~die_h:4. ~bbox:(-2., -2., 2., 2.) ~weight:1.;
  (* only the on-die quarter of the box lands *)
  Alcotest.(check (float 1e-9)) "clipped mass" 4. (T.sum map);
  Alcotest.(check (float 1e-9)) "in the corner" 1. (T.get2 map 0 0)

let test_rudy_2d_3d_partition () =
  (* Every signal net is either 2D or 3D: on each die,
     2D + 2*3D(scaled by .5 -> x2) mass must equal the per-die share of
     the All estimator's coverage... simpler invariant: a 2D map only
     sees same-tier nets, the 3D maps of both dies are identical. *)
  let p = placed "DMA" in
  let nx = 12 and ny = 12 in
  let r3_bot = Rudy.rudy_map p ~tier:0 ~kind:Rudy.Three_d ~nx ~ny in
  let r3_top = Rudy.rudy_map p ~tier:1 ~kind:Rudy.Three_d ~nx ~ny in
  Alcotest.(check bool) "3D RUDY identical on both dies" true
    (T.approx_equal ~eps:1e-9 r3_bot r3_top);
  let r2_bot = Rudy.rudy_map p ~tier:0 ~kind:Rudy.Two_d ~nx ~ny in
  Alcotest.(check bool) "some 2D demand" true (T.sum r2_bot > 0.);
  Alcotest.(check bool) "some 3D demand" true (T.sum r3_bot > 0.)

let test_rudy_scaling_halves_3d () =
  (* the 3D contribution carries the paper's 0.5 scale *)
  let p = placed "DMA" in
  let nets_3d =
    List.filter (Pl.net_is_3d p) (Nl.signal_nets p.Pl.nl)
  in
  Alcotest.(check bool) "design has 3D nets" true (nets_3d <> []);
  let nx = 10 and ny = 10 in
  let map = Rudy.rudy_map p ~tier:0 ~kind:Rudy.Three_d ~nx ~ny in
  (* recompute manually at scale 1 and compare total mass *)
  let manual = T.zeros [| ny; nx |] in
  List.iter
    (fun net ->
      let x0, y0, x1, y1 = Pl.net_bbox p net in
      Rudy.accumulate_net manual
        ~die_w:p.Pl.fp.Fp.width ~die_h:p.Pl.fp.Fp.height
        ~bbox:(x0, y0, x1, y1)
        ~weight:(Rudy.net_weight (x1 -. x0) (y1 -. y0)))
    nets_3d;
  Alcotest.(check bool) "exactly half" true
    (abs_float (T.sum map -. (0.5 *. T.sum manual)) < 1e-6)

let test_pin_rudy_counts_only_tier_pins () =
  let p = placed "DMA" in
  let nx = 10 and ny = 10 in
  let m0 = Rudy.pin_rudy_map p ~tier:0 ~kind:Rudy.Two_d ~nx ~ny in
  let m1 = Rudy.pin_rudy_map p ~tier:1 ~kind:Rudy.Two_d ~nx ~ny in
  Alcotest.(check bool) "both tiers have pin demand" true
    (T.sum m0 > 0. && T.sum m1 > 0.)

(* ------------------------------------------------------------------ *)
(* Feature maps                                                        *)
(* ------------------------------------------------------------------ *)

let test_feature_stack_shape () =
  let p = placed "VGA" in
  let f0, f1 = Fm.both_dies p ~nx:16 ~ny:12 in
  Alcotest.(check (array int)) "bottom shape" [| 8; 12; 16 |] (T.shape f0);
  Alcotest.(check (array int)) "top shape" [| 8; 12; 16 |] (T.shape f1);
  Alcotest.(check int) "channel names" 8 (Array.length Fm.channel_names)

let test_feature_channels_nonneg () =
  let p = placed "LDPC" in
  let f0 = Fm.per_die p ~tier:0 ~nx:16 ~ny:16 in
  Alcotest.(check bool) "non-negative features" true (T.min_elt f0 >= 0.)

let test_macro_blockage_channel () =
  let p = placed "VGA" in
  (* VGA has two macros; blockage appears on exactly the macro tiers *)
  let blk t = T.sum (T.channel (Fm.per_die p ~tier:t ~nx:16 ~ny:16) 6) in
  Alcotest.(check bool) "macro blockage present" true (blk 0 +. blk 1 > 0.);
  let p_dma = placed "DMA" in
  let blk_dma t = T.sum (T.channel (Fm.per_die p_dma ~tier:t ~nx:16 ~ny:16) 6) in
  Alcotest.(check (float 1e-12)) "no macros, no blockage" 0.
    (blk_dma 0 +. blk_dma 1)

let test_normalize_scales_channels () =
  let p = placed "DMA" in
  let f = Fm.per_die p ~tier:0 ~nx:16 ~ny:16 in
  let n = Fm.normalize f in
  Alcotest.(check bool) "normalized below raw max" true
    (T.max_elt n <= T.max_elt f +. 1e-9);
  Alcotest.(check bool) "O(1) scale" true (T.max_elt n < 50.)

let test_resize_stack () =
  let p = placed "DMA" in
  let f = Fm.per_die p ~tier:0 ~nx:12 ~ny:12 in
  let r = Fm.resize_stack f 8 8 in
  Alcotest.(check (array int)) "resized" [| 8; 8; 8 |] (T.shape r);
  (* nearest-neighbour: no new values *)
  Alcotest.(check bool) "range preserved" true
    (T.max_elt r <= T.max_elt f +. 1e-12)

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_nrmse_identical_zero () =
  let m = T.rand_uniform (Rng.create 1) [| 10; 10 |] in
  Alcotest.(check (float 1e-12)) "identical" 0. (M.nrmse m m)

let test_nrmse_known () =
  let truth = T.make [| 1; 2 |] [| 0.; 1. |] in
  let pred = T.make [| 1; 2 |] [| 0.5; 1. |] in
  (* rmse = sqrt(0.25/2), range = 1 *)
  Alcotest.(check (float 1e-9)) "known" (sqrt 0.125) (M.nrmse pred truth)

let test_ssim_identical_one () =
  let m = T.rand_uniform (Rng.create 2) [| 16; 16 |] in
  Alcotest.(check (float 1e-9)) "identical" 1. (M.ssim m m)

let test_ssim_bounded_and_ordered () =
  let rng = Rng.create 3 in
  let truth = T.rand_uniform rng [| 16; 16 |] in
  let close = T.map2 (fun a b -> (0.9 *. a) +. (0.1 *. b)) truth (T.rand_uniform rng [| 16; 16 |]) in
  let far = T.rand_uniform (Rng.create 99) [| 16; 16 |] in
  let s_close = M.ssim close truth and s_far = M.ssim far truth in
  Alcotest.(check bool) "bounded" true (s_close <= 1. && s_close >= -1.);
  Alcotest.(check bool)
    (Printf.sprintf "close %.3f > far %.3f" s_close s_far)
    true (s_close > s_far)

(* Brute-force reference: identical statistics, positions generated
   naively (every multiple of the stride, plus the clamped edge
   position).  Guards the window_positions fix: before it, windows
   stopped at the last full multiple of the stride and up to stride-1
   border rows/columns were invisible to the metric. *)
let ssim_reference ?(window = 7) pred truth =
  let h = T.dim pred 0 and w = T.dim pred 1 in
  let win = max 2 (min window (min h w)) in
  let range = Float.max 1e-12 (T.max_elt truth -. T.min_elt truth) in
  let c1 = (0.01 *. range) ** 2. and c2 = (0.03 *. range) ** 2. in
  let stride = max 1 (win / 2) in
  let positions extent =
    let rec go p acc = if p <= extent - win then go (p + stride) (p :: acc) else acc in
    let ps = go 0 [] in
    let ps = if List.mem (extent - win) ps then ps else (extent - win) :: ps in
    List.rev ps
  in
  let patch y x =
    let n = float_of_int (win * win) in
    let stat m =
      let s = ref 0. in
      for i = y to y + win - 1 do
        for j = x to x + win - 1 do
          s := !s +. T.get2 m i j
        done
      done;
      !s /. n
    in
    let mu_a = stat pred and mu_b = stat truth in
    let va = ref 0. and vb = ref 0. and cov = ref 0. in
    for i = y to y + win - 1 do
      for j = x to x + win - 1 do
        let da = T.get2 pred i j -. mu_a and db = T.get2 truth i j -. mu_b in
        va := !va +. (da *. da);
        vb := !vb +. (db *. db);
        cov := !cov +. (da *. db)
      done
    done;
    ((2. *. mu_a *. mu_b) +. c1)
    *. ((2. *. !cov /. n) +. c2)
    /. (((mu_a *. mu_a) +. (mu_b *. mu_b) +. c1)
       *. ((!va /. n) +. (!vb /. n) +. c2))
  in
  let acc = ref 0. and count = ref 0 in
  List.iter
    (fun y ->
      List.iter
        (fun x ->
          acc := !acc +. patch y x;
          incr count)
        (positions w))
    (positions h);
  !acc /. float_of_int (max 1 !count)

let test_ssim_matches_bruteforce () =
  List.iter
    (fun (hh, ww, window, seed) ->
      let rng = Rng.create seed in
      let truth = T.rand_uniform rng [| hh; ww |] in
      let pred = T.rand_uniform rng [| hh; ww |] in
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "%dx%d win %d" hh ww window)
        (ssim_reference ~window pred truth)
        (M.ssim ~window pred truth))
    [ (9, 9, 4, 1); (8, 8, 4, 2); (16, 16, 7, 3); (7, 11, 5, 4); (5, 5, 7, 5) ]

let test_ssim_sees_edge_hotspot () =
  (* 9x9 with win=4, stride=2: window starts were [0;2;4] pre-fix, so
     row/column 8 was never sampled — a hotspot there left the score at
     exactly 1.  The clamped position 5 must now pick it up. *)
  let base = T.init [| 9; 9 |] (fun _ -> 0.1) in
  let truth =
    T.init [| 9; 9 |] (fun idx ->
        if idx.(0) = 8 && idx.(1) = 8 then 5. else 0.1)
  in
  let s = M.ssim ~window:4 base truth in
  Alcotest.(check bool)
    (Printf.sprintf "edge hotspot lowers ssim (got %.6f)" s)
    true (s < 0.999);
  Alcotest.(check (float 1e-12)) "matches brute force"
    (ssim_reference ~window:4 base truth) s

let prop_ssim_range =
  QCheck.Test.make ~name:"ssim stays in [-1, 1]" ~count:30
    (QCheck.int_bound 100_000) (fun seed ->
      let rng = Rng.create seed in
      let a = T.rand_uniform rng [| 12; 12 |] in
      let b = T.rand_uniform rng [| 12; 12 |] in
      let s = M.ssim a b in
      s >= -1.000001 && s <= 1.000001)

let test_pearson () =
  let a = T.of_array1 [| 1.; 2.; 3.; 4. |] in
  Alcotest.(check (float 1e-9)) "self" 1. (M.pearson a a);
  Alcotest.(check (float 1e-9)) "anti" (-1.) (M.pearson a (T.neg a));
  Alcotest.(check (float 1e-12)) "constant" 0. (M.pearson a (T.ones [| 4 |]))

let test_normalize01 () =
  let m = T.of_array1 [| 2.; 4.; 6. |] in
  let n = M.normalize01 m in
  Alcotest.(check (float 1e-12)) "min" 0. (T.min_elt n);
  Alcotest.(check (float 1e-12)) "max" 1. (T.max_elt n);
  let flat = M.normalize01 (T.ones [| 3 |]) in
  Alcotest.(check (float 1e-12)) "constant map -> zeros" 0. (T.max_elt flat)

let test_histogram_and_fractions () =
  let values = [ 0.05; 0.15; 0.15; 0.25; 0.95; 1.5 ] in
  let h = M.histogram ~bins:10 ~lo:0. ~hi:1. values in
  Alcotest.(check int) "bin 0" 1 h.(0);
  Alcotest.(check int) "bin 1" 2 h.(1);
  Alcotest.(check int) "clamped top" 2 h.(9);
  Alcotest.(check (float 1e-9)) "below 0.2" 0.5 (M.fraction_below 0.2 values);
  Alcotest.(check (float 1e-9)) "above 0.9" (2. /. 6.) (M.fraction_above 0.9 values)

let qtest = QCheck_alcotest.to_alcotest

let suites =
  [
    ( "congestion.rudy",
      [
        Alcotest.test_case "net weight" `Quick test_net_weight;
        Alcotest.test_case "mass conservation" `Quick test_accumulate_net_conserves_weight;
        Alcotest.test_case "clips outside die" `Quick test_accumulate_clips_outside;
        Alcotest.test_case "2D/3D partition" `Quick test_rudy_2d_3d_partition;
        Alcotest.test_case "3D nets scaled by 0.5" `Quick test_rudy_scaling_halves_3d;
        Alcotest.test_case "pin RUDY per tier" `Quick test_pin_rudy_counts_only_tier_pins;
      ] );
    ( "congestion.features",
      [
        Alcotest.test_case "stack shape" `Quick test_feature_stack_shape;
        Alcotest.test_case "non-negative" `Quick test_feature_channels_nonneg;
        Alcotest.test_case "macro blockage" `Quick test_macro_blockage_channel;
        Alcotest.test_case "normalization" `Quick test_normalize_scales_channels;
        Alcotest.test_case "resize stack" `Quick test_resize_stack;
      ] );
    ( "congestion.metrics",
      [
        Alcotest.test_case "nrmse identical" `Quick test_nrmse_identical_zero;
        Alcotest.test_case "nrmse known" `Quick test_nrmse_known;
        Alcotest.test_case "ssim identical" `Quick test_ssim_identical_one;
        Alcotest.test_case "ssim ordering" `Quick test_ssim_bounded_and_ordered;
        Alcotest.test_case "ssim matches brute force" `Quick
          test_ssim_matches_bruteforce;
        Alcotest.test_case "ssim sees edge hotspot" `Quick
          test_ssim_sees_edge_hotspot;
        Alcotest.test_case "pearson" `Quick test_pearson;
        Alcotest.test_case "normalize01" `Quick test_normalize01;
        Alcotest.test_case "histogram/fractions" `Quick test_histogram_and_fractions;
        qtest prop_ssim_range;
      ] );
  ]
