(* dco3d.serve: LRU cache, wire protocol, batched inference
   bit-exactness, load-guard regressions, and an end-to-end daemon
   exercise with concurrent clients from the domain pool. *)

module T = Dco3d_tensor.Tensor
module Rng = Dco3d_tensor.Rng
module Pool = Dco3d_parallel.Pool
module Obs = Dco3d_obs.Obs
module SiaUNet = Dco3d_nn.Siamese_unet
module Predictor = Dco3d_core.Predictor
module Lru = Dco3d_serve.Lru
module Proto = Dco3d_serve.Protocol
module Server = Dco3d_serve.Server
module Client = Dco3d_serve.Client

let with_jobs n f =
  Pool.set_jobs ~exact:true n;
  Fun.protect ~finally:(fun () -> Pool.set_jobs 1) f

let tmp_name =
  let n = ref 0 in
  fun suffix ->
    incr n;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dco3d_serve_test_%d_%d%s" (Unix.getpid ()) !n suffix)

(* ------------------------------------------------------------------ *)
(* LRU                                                                 *)
(* ------------------------------------------------------------------ *)

let test_lru_basic () =
  let c = Lru.create ~capacity:2 in
  Alcotest.(check int) "empty" 0 (Lru.length c);
  Lru.put c "a" 1;
  Lru.put c "b" 2;
  Alcotest.(check (option int)) "find a" (Some 1) (Lru.find c "a");
  Lru.put c "c" 3;
  (* "b" was least recently used ("a" was promoted by the find) *)
  Alcotest.(check (option int)) "b evicted" None (Lru.find c "b");
  Alcotest.(check (option int)) "a kept" (Some 1) (Lru.find c "a");
  Alcotest.(check (option int)) "c kept" (Some 3) (Lru.find c "c");
  Alcotest.(check int) "full" 2 (Lru.length c)

let test_lru_replace () =
  let c = Lru.create ~capacity:2 in
  Lru.put c "a" 1;
  Lru.put c "b" 2;
  Lru.put c "a" 10;
  Alcotest.(check (option int)) "replaced" (Some 10) (Lru.find c "a");
  Alcotest.(check int) "no growth" 2 (Lru.length c);
  Lru.put c "c" 3;
  Alcotest.(check (option int)) "b evicted after a's refresh" None
    (Lru.find c "b")

let test_lru_mem_no_promote () =
  let c = Lru.create ~capacity:2 in
  Lru.put c "a" 1;
  Lru.put c "b" 2;
  Alcotest.(check bool) "mem a" true (Lru.mem c "a");
  (* mem must not promote: "a" is still the eviction candidate *)
  Lru.put c "c" 3;
  Alcotest.(check bool) "a evicted" false (Lru.mem c "a");
  Alcotest.(check bool) "b kept" true (Lru.mem c "b")

let test_lru_zero_capacity () =
  let c = Lru.create ~capacity:0 in
  Lru.put c "a" 1;
  Alcotest.(check (option int)) "disabled cache never hits" None
    (Lru.find c "a");
  Alcotest.(check int) "stays empty" 0 (Lru.length c);
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Lru.create: negative capacity") (fun () ->
      ignore (Lru.create ~capacity:(-1)))

let test_lru_clear_and_churn () =
  let c = Lru.create ~capacity:8 in
  for i = 0 to 99 do
    Lru.put c (string_of_int i) i
  done;
  Alcotest.(check int) "capped" 8 (Lru.length c);
  for i = 92 to 99 do
    Alcotest.(check (option int))
      (Printf.sprintf "latest %d resident" i)
      (Some i)
      (Lru.find c (string_of_int i))
  done;
  Lru.clear c;
  Alcotest.(check int) "cleared" 0 (Lru.length c);
  Alcotest.(check (option int)) "gone" None (Lru.find c "99")

(* ------------------------------------------------------------------ *)
(* Protocol framing                                                    *)
(* ------------------------------------------------------------------ *)

let rand_stack rng ny nx =
  T.rand_uniform rng ~lo:0. ~hi:4. [| 8; ny; nx |]

let test_protocol_roundtrip () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      Unix.close a;
      Unix.close b)
    (fun () ->
      let rng = Rng.create 11 in
      let payload =
        { Proto.f_bottom = rand_stack rng 9 13; f_top = rand_stack rng 9 13 }
      in
      Proto.send_request a { Proto.req = Proto.Predict payload; timeout_ms = Some 25. };
      let env = Proto.recv_request b in
      Alcotest.(check (option (float 0.))) "timeout survives" (Some 25.)
        env.Proto.timeout_ms;
      (match env.Proto.req with
      | Proto.Predict p ->
          Alcotest.(check (array (float 0.))) "payload bits survive"
            payload.Proto.f_bottom.T.data p.Proto.f_bottom.T.data;
          Alcotest.(check string) "content key stable"
            (Proto.predict_key payload) (Proto.predict_key p)
      | _ -> Alcotest.fail "wrong request decoded");
      Proto.send_reply b (Proto.Overloaded { queue_len = 3; capacity = 2 });
      (match Proto.recv_reply a with
      | Proto.Overloaded { queue_len = 3; capacity = 2 } -> ()
      | _ -> Alcotest.fail "wrong reply decoded"))

let test_protocol_rejects_garbage () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      Unix.close a;
      Unix.close b)
    (fun () ->
      let junk = Bytes.of_string (String.make 64 'x') in
      ignore (Unix.write a junk 0 (Bytes.length junk));
      Alcotest.(check bool) "bad magic raises" true
        (match Proto.recv_request b with
        | _ -> false
        | exception Proto.Protocol_error _ -> true))

let test_protocol_eof_and_truncation () =
  (* Clean disconnect between frames: End_of_file. *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.close a;
  Alcotest.(check bool) "clean EOF" true
    (match Proto.recv_request b with
    | _ -> false
    | exception End_of_file -> true);
  Unix.close b;
  (* Disconnect mid-frame: Protocol_error, not a Marshal crash. *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let partial = Bytes.of_string "DCO3D-SERVE-V1" in
  ignore (Unix.write a partial 0 (Bytes.length partial));
  Unix.close a;
  Alcotest.(check bool) "truncated header" true
    (match Proto.recv_request b with
    | _ -> false
    | exception Proto.Protocol_error _ -> true);
  Unix.close b

let test_predict_key_content_only () =
  let rng = Rng.create 5 in
  let p = { Proto.f_bottom = rand_stack rng 6 6; f_top = rand_stack rng 6 6 } in
  let same = { Proto.f_bottom = T.copy p.Proto.f_bottom; f_top = T.copy p.Proto.f_top } in
  Alcotest.(check string) "equal content, equal key" (Proto.predict_key p)
    (Proto.predict_key same);
  let other = { p with Proto.f_top = rand_stack rng 6 6 } in
  Alcotest.(check bool) "different content, different key" true
    (Proto.predict_key p <> Proto.predict_key other)

(* ------------------------------------------------------------------ *)
(* predict_batch bit-exactness (satellite: property tests)             *)
(* ------------------------------------------------------------------ *)

let mk_predictor ?(input_hw = 8) ?(base_channels = 4) seed =
  let cfg = { SiaUNet.default_config with SiaUNet.base_channels } in
  {
    Predictor.net = SiaUNet.create (Rng.create seed) cfg;
    input_hw;
    label_scale = 1.0;
  }

let check_bits what expected got =
  Alcotest.(check int)
    (what ^ " length") (Array.length expected.T.data)
    (Array.length got.T.data);
  Array.iteri
    (fun i e ->
      if Int64.bits_of_float e <> Int64.bits_of_float got.T.data.(i) then
        Alcotest.failf "%s: bit mismatch at %d: %h vs %h" what i e
          got.T.data.(i))
    expected.T.data

let batch_matches_singles jobs sizes () =
  with_jobs jobs (fun () ->
      let predictor = mk_predictor 3 in
      let rng = Rng.create 17 in
      List.iter
        (fun n ->
          (* ragged sample shapes: resolution differs per pair *)
          let pairs =
            Array.init n (fun i ->
                let ny = 5 + ((i * 3) mod 9) and nx = 4 + ((i * 5) mod 11) in
                (rand_stack rng ny nx, rand_stack rng ny nx))
          in
          let batched = Predictor.predict_batch predictor pairs in
          Array.iteri
            (fun i (fb, ft) ->
              let eb, et = Predictor.predict predictor fb ft in
              let gb, gt = batched.(i) in
              check_bits (Printf.sprintf "n=%d sample %d bottom" n i) eb gb;
              check_bits (Printf.sprintf "n=%d sample %d top" n i) et gt)
            pairs)
        sizes)

let test_predict_batch_empty () =
  let predictor = mk_predictor 3 in
  Alcotest.(check int) "empty batch" 0
    (Array.length (Predictor.predict_batch predictor [||]))

(* ------------------------------------------------------------------ *)
(* Load guards (satellite: reject mismatched weight files)             *)
(* ------------------------------------------------------------------ *)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let test_load_rejects_wrong_architecture () =
  let path = tmp_name ".bin" in
  let predictor = mk_predictor ~base_channels:4 9 in
  Predictor.save predictor path;
  Fun.protect
    ~finally:(fun () ->
      Sys.remove path;
      Sys.remove (path ^ ".net"))
    (fun () ->
      (* Matching expectation loads fine... *)
      let same =
        Predictor.load
          ~expect:{ SiaUNet.default_config with SiaUNet.base_channels = 4 }
          path
      in
      Alcotest.(check string) "same weights" (Predictor.fingerprint predictor)
        (Predictor.fingerprint same);
      (* ...a disagreeing one is rejected with both architectures named. *)
      match
        Predictor.load
          ~expect:{ SiaUNet.default_config with SiaUNet.base_channels = 16 }
          path
      with
      | _ -> Alcotest.fail "wrong-architecture load must fail"
      | exception Predictor.Load_error msg ->
          Alcotest.(check bool) "mentions the mismatch" true
            (contains ~affix:"mismatch" msg);
          Alcotest.(check bool) "names the stored architecture" true
            (contains ~affix:"base_channels=4" msg);
          Alcotest.(check bool) "names the requested architecture" true
            (contains ~affix:"base_channels=16" msg))

let test_load_rejects_corrupt_weights () =
  let path = tmp_name ".bin" in
  let predictor = mk_predictor 13 in
  Predictor.save predictor path;
  Fun.protect
    ~finally:(fun () ->
      Sys.remove path;
      Sys.remove (path ^ ".net"))
    (fun () ->
      (* Truncate the companion weights file mid-payload. *)
      let net_path = path ^ ".net" in
      let full = In_channel.with_open_bin net_path In_channel.input_all in
      Out_channel.with_open_bin net_path (fun oc ->
          Out_channel.output_string oc
            (String.sub full 0 (String.length full / 2)));
      (match Predictor.load path with
      | _ -> Alcotest.fail "truncated weights must fail"
      | exception Predictor.Load_error _ -> ());
      (* Garbage magic. *)
      Out_channel.with_open_bin net_path (fun oc ->
          Out_channel.output_string oc (String.make 256 'Z'));
      match Predictor.load path with
      | _ -> Alcotest.fail "garbage weights must fail"
      | exception Predictor.Load_error msg ->
          Alcotest.(check bool) "names the cause" true
            (contains ~affix:"magic" msg))

let test_load_rejects_incoherent_pair () =
  (* A predictor whose stored resolution is not divisible by the
     network's downsampling factor must be refused at load time. *)
  let path = tmp_name ".bin" in
  let predictor = { (mk_predictor 21) with Predictor.input_hw = 18 } in
  Predictor.save predictor path;
  Fun.protect
    ~finally:(fun () ->
      Sys.remove path;
      Sys.remove (path ^ ".net"))
    (fun () ->
      match Predictor.load path with
      | _ -> Alcotest.fail "indivisible resolution must fail"
      | exception Predictor.Load_error msg ->
          Alcotest.(check bool) "names divisibility" true
            (contains ~affix:"divisible" msg))

let test_load_rejects_wrong_channels () =
  (* Weights for a 5-channel network can never serve the 8-channel
     feature pipeline, even though they Marshal-decode fine. *)
  let path = tmp_name ".bin" in
  let cfg = { SiaUNet.default_config with SiaUNet.in_channels = 5 } in
  let predictor =
    {
      Predictor.net = SiaUNet.create (Rng.create 3) cfg;
      input_hw = 8;
      label_scale = 1.0;
    }
  in
  Predictor.save predictor path;
  Fun.protect
    ~finally:(fun () ->
      Sys.remove path;
      Sys.remove (path ^ ".net"))
    (fun () ->
      match Predictor.load path with
      | _ -> Alcotest.fail "wrong channel count must fail"
      | exception Predictor.Load_error msg ->
          Alcotest.(check bool) "names the channels" true
            (contains ~affix:"channels" msg))

(* ------------------------------------------------------------------ *)
(* End-to-end daemon                                                   *)
(* ------------------------------------------------------------------ *)

let with_server ?(queue_capacity = 64) ?(max_batch = 8) ?(batch_linger_ms = 30.)
    ?(cache_capacity = 128) ?(numeric = `F32) ?spill_dir ?(shard_id = 0)
    predictor f =
  let cfg =
    {
      Server.address = Server.Unix_path (tmp_name ".sock");
      queue_capacity;
      max_batch;
      batch_linger_ms;
      cache_capacity;
      numeric;
      spill_dir;
      route_cache_dir = None;
      corpus_dir = None;
      shard_id;
    }
  in
  let srv = Server.start cfg predictor in
  Fun.protect ~finally:(fun () -> Server.stop srv) (fun () -> f srv)

let stat srv name =
  match List.assoc_opt name (Server.stats srv) with
  | Some v -> v
  | None -> Alcotest.failf "stat %s missing" name

let test_e2e_concurrent_bit_identical () =
  Obs.reset ();
  Obs.enable ();
  Fun.protect ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
  @@ fun () ->
  with_jobs 4 @@ fun () ->
  let predictor = mk_predictor 29 in
  with_server predictor @@ fun srv ->
  let addr = Server.bound_addr srv in
  let rng = Rng.create 31 in
  let payloads =
    Array.init 8 (fun i ->
        let ny = 6 + (i mod 3) and nx = 6 + (i mod 4) in
        (rand_stack rng ny nx, rand_stack rng ny nx))
  in
  (* Fire all clients concurrently from the domain pool; each worker
     opens its own connection.  Blocking socket IO releases the domain
     runtime lock, so the server's systhreads keep running. *)
  let replies =
    Pool.map_array
      (fun (fb, ft) ->
        let c = Client.connect addr in
        Fun.protect
          ~finally:(fun () -> Client.close c)
          (fun () -> Client.predict c fb ft))
      payloads
  in
  Array.iteri
    (fun i reply ->
      match reply with
      | Client.Ok { c_bottom; c_top; cache_hit = _ } ->
          let fb, ft = payloads.(i) in
          let eb, et = Predictor.predict predictor fb ft in
          check_bits (Printf.sprintf "client %d bottom" i) eb c_bottom;
          check_bits (Printf.sprintf "client %d top" i) et c_top
      | _ -> Alcotest.failf "client %d not served" i)
    replies;
  (* The micro-batcher must have coalesced at least once: 8 concurrent
     requests against a 30 ms linger cannot all ride alone. *)
  Alcotest.(check bool) "batcher coalesced" true (stat srv "max_batch" > 1.);
  (match Obs.histogram_stats "serve/batch_size" with
  | Some (_, _, _, mx) ->
      Alcotest.(check bool) "obs histogram saw a real batch" true (mx > 1.)
  | None -> Alcotest.fail "serve/batch_size histogram empty");
  Alcotest.(check bool) "requests counted" true
    (Obs.counter_value "serve/requests" >= 8)

let test_e2e_cache_hit_no_recompute () =
  let predictor = mk_predictor 37 in
  with_server predictor @@ fun srv ->
  let c = Client.connect (Server.bound_addr srv) in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let rng = Rng.create 41 in
  let fb = rand_stack rng 7 9 and ft = rand_stack rng 7 9 in
  (match Client.predict c fb ft with
  | Client.Ok { cache_hit; _ } ->
      Alcotest.(check bool) "first is a miss" false cache_hit
  | _ -> Alcotest.fail "first predict not served");
  let batches_before = stat srv "batches" in
  (* Same content from a different tensor allocation: the content key
     must hit, and no new forward pass may run. *)
  (match Client.predict c (T.copy fb) (T.copy ft) with
  | Client.Ok { cache_hit; c_bottom; c_top } ->
      Alcotest.(check bool) "repeat is a hit" true cache_hit;
      let eb, et = Predictor.predict predictor fb ft in
      check_bits "cached bottom" eb c_bottom;
      check_bits "cached top" et c_top
  | _ -> Alcotest.fail "repeat predict not served");
  Alcotest.(check (float 0.)) "no extra forward pass" batches_before
    (stat srv "batches");
  Alcotest.(check bool) "hit counted" true (stat srv "cache_hits" >= 1.)

let test_e2e_backpressure_overloaded () =
  let predictor = mk_predictor 43 in
  (* Tiny queue + long linger: the first request parks in the batcher's
     linger window while the second finds the queue full. *)
  with_server ~queue_capacity:1 ~batch_linger_ms:400. predictor @@ fun srv ->
  let addr = Server.bound_addr srv in
  let rng = Rng.create 47 in
  let mk () = (rand_stack rng 6 6, rand_stack rng 6 6) in
  let first_reply = ref None in
  let fb1, ft1 = mk () in
  let t =
    Thread.create
      (fun () ->
        let c = Client.connect addr in
        Fun.protect
          ~finally:(fun () -> Client.close c)
          (fun () -> first_reply := Some (Client.predict c fb1 ft1)))
      ()
  in
  (* Wait until the first request occupies the queue. *)
  let deadline = Unix.gettimeofday () +. 5. in
  while stat srv "queue_depth" < 1. && Unix.gettimeofday () < deadline do
    Thread.delay 0.005
  done;
  let c = Client.connect addr in
  let overloaded =
    Fun.protect
      ~finally:(fun () -> Client.close c)
      (fun () ->
        let fb, ft = mk () in
        Client.predict c fb ft)
  in
  (match overloaded with
  | Client.Overloaded { capacity = 1; _ } -> ()
  | Client.Overloaded _ -> Alcotest.fail "wrong capacity reported"
  | _ -> Alcotest.fail "second request should be refused");
  Thread.join t;
  (match !first_reply with
  | Some (Client.Ok _) -> ()
  | _ -> Alcotest.fail "queued request must still be served");
  Alcotest.(check bool) "overload counted" true (stat srv "overloaded" >= 1.)

let test_e2e_deadline_timeout () =
  let predictor = mk_predictor 53 in
  with_server ~batch_linger_ms:150. predictor @@ fun srv ->
  let c = Client.connect (Server.bound_addr srv) in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let rng = Rng.create 59 in
  let fb = rand_stack rng 6 6 and ft = rand_stack rng 6 6 in
  (* A 1 ms deadline expires inside the 150 ms linger window, so the
     batcher must answer Timed_out without running the request. *)
  (match Client.predict ~timeout_ms:1. c fb ft with
  | Client.Timed_out -> ()
  | _ -> Alcotest.fail "expected a deadline miss");
  Alcotest.(check bool) "timeout counted" true (stat srv "timeouts" >= 1.);
  (* The connection stays usable afterwards. *)
  Client.ping c

let test_e2e_survives_rude_clients () =
  let predictor = mk_predictor 61 in
  with_server predictor @@ fun srv ->
  let addr = Server.bound_addr srv in
  let path = match addr with Server.Unix_path p -> p | _ -> assert false in
  (* Client 1: raw garbage bytes. *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  let junk = Bytes.of_string (String.make 128 '?') in
  ignore (Unix.write fd junk 0 (Bytes.length junk));
  Unix.close fd;
  (* Client 2: sends a valid request, then vanishes before the reply. *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  let rng = Rng.create 67 in
  Proto.send_request fd
    {
      Proto.req =
        Proto.Predict
          { Proto.f_bottom = rand_stack rng 6 6; f_top = rand_stack rng 6 6 };
      timeout_ms = None;
    };
  Unix.close fd;
  (* The daemon must shrug both off and keep serving. *)
  let c = Client.connect addr in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let deadline = Unix.gettimeofday () +. 5. in
  let rec settle () =
    Client.ping c;
    if stat srv "batches" < 1. && Unix.gettimeofday () < deadline then begin
      Thread.delay 0.01;
      settle ()
    end
  in
  settle ();
  Client.ping c;
  let fb = rand_stack rng 6 6 and ft = rand_stack rng 6 6 in
  match Client.predict c fb ft with
  | Client.Ok _ -> ()
  | _ -> Alcotest.fail "daemon should keep serving after rude clients"

(* A payload the predictor cannot evaluate (wrong channel count) must
   fail that request with a server error — and must NOT kill the
   batcher: the next well-formed predict on the same daemon succeeds.
   (Regression: an exception escaping [predict_batch] terminated the
   batcher thread, wedging every subsequent client forever.) *)
let test_bad_payload_does_not_kill_batcher () =
  let rng = Rng.create 83 in
  let predictor = mk_predictor 83 in
  with_server predictor @@ fun srv ->
  let c = Client.connect (Server.bound_addr srv) in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let bad = T.zeros [| 7; 6; 6 |] in
  (match try `R (Client.predict c bad bad) with Client.Error m -> `E m with
  | `E msg ->
      Alcotest.(check bool) "names the failure" true
        (contains ~affix:"predict failed" msg)
  | `R _ -> Alcotest.fail "7-channel payload must not predict");
  let fb = rand_stack rng 6 6 and ft = rand_stack rng 6 6 in
  match Client.predict c fb ft with
  | Client.Ok _ -> ()
  | _ -> Alcotest.fail "batcher must survive a malformed payload"

let test_e2e_flow_job () =
  let predictor = mk_predictor 71 in
  with_server predictor @@ fun srv ->
  let c = Client.connect (Server.bound_addr srv) in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (* Unknown design: the job fails, the daemon does not. *)
  let bad =
    Client.submit_flow c
      {
        Proto.fl_design = "no-such-design";
        fl_scale = 0.02;
        fl_seed = 1;
        fl_gcell = 8;
        fl_variant = Proto.Pin3d;
      }
  in
  (match
     try `Sum (Client.wait_flow c bad) with Client.Error msg -> `Err msg
   with
  | `Err msg ->
      Alcotest.(check bool) "failure names the design" true
        (contains ~affix:"no-such-design" msg)
  | `Sum _ -> Alcotest.fail "unknown design must fail");
  (* A real (tiny) flow job completes asynchronously and reports PPA. *)
  let id =
    Client.submit_flow c
      {
        Proto.fl_design = "DMA";
        fl_scale = 0.02;
        fl_seed = 5;
        fl_gcell = 10;
        fl_variant = Proto.Pin3d;
      }
  in
  (* Submission returns immediately; the job runs on the flow worker
     while this connection stays free for other requests. *)
  Client.ping c;
  let s = Client.wait_flow c id in
  Alcotest.(check bool) "wirelength positive" true
    (s.Proto.fs_wirelength_um > 0.);
  Alcotest.(check bool) "overflow sane" true (s.Proto.fs_overflow >= 0);
  (* Unknown job id is an error, not a crash. *)
  match Client.poll_flow c (id + 999) with
  | _ -> Alcotest.fail "unknown job id must be refused"
  | exception Client.Error _ -> ()

let test_e2e_drain_on_stop () =
  let predictor = mk_predictor 73 in
  let cfg =
    {
      Server.address = Server.Unix_path (tmp_name ".sock");
      queue_capacity = 64;
      max_batch = 8;
      batch_linger_ms = 200.;
      cache_capacity = 16;
      numeric = `F32;
      spill_dir = None;
      route_cache_dir = None;
      corpus_dir = None;
      shard_id = 0;
    }
  in
  let srv = Server.start cfg predictor in
  let addr = Server.bound_addr srv in
  let rng = Rng.create 79 in
  let fb = rand_stack rng 6 6 and ft = rand_stack rng 6 6 in
  let reply = ref None in
  let t =
    Thread.create
      (fun () ->
        let c = Client.connect addr in
        Fun.protect
          ~finally:(fun () -> Client.close c)
          (fun () -> reply := Some (Client.predict c fb ft)))
      ()
  in
  let deadline = Unix.gettimeofday () +. 5. in
  while stat srv "queue_depth" < 1. && Unix.gettimeofday () < deadline do
    Thread.delay 0.005
  done;
  (* Stop while the request is still queued in the linger window: the
     drain must answer it, not drop it. *)
  Server.stop srv;
  Thread.join t;
  match !reply with
  | Some (Client.Ok { c_bottom; c_top; _ }) ->
      let eb, et = Predictor.predict predictor fb ft in
      check_bits "drained bottom" eb c_bottom;
      check_bits "drained top" et c_top
  | _ -> Alcotest.fail "queued request must be served during drain"

(* ------------------------------------------------------------------ *)
(* Quantized serving and client retry                                  *)
(* ------------------------------------------------------------------ *)

let test_fingerprint_numeric_distinct () =
  (* Same weights, different numeric path: the serve cache key must not
     alias int8 replies with float32 replies. *)
  let predictor = mk_predictor 83 in
  let fp_f32 = Predictor.fingerprint ~numeric:`F32 predictor in
  let fp_i8 = Predictor.fingerprint ~numeric:`I8 predictor in
  Alcotest.(check bool)
    "f32 and i8 fingerprints differ" true (fp_f32 <> fp_i8);
  Alcotest.(check string)
    "f32 fingerprint stable" fp_f32
    (Predictor.fingerprint ~numeric:`F32 predictor);
  Alcotest.(check string)
    "i8 fingerprint stable" fp_i8
    (Predictor.fingerprint ~numeric:`I8 predictor);
  Alcotest.(check string)
    "default numeric is f32" fp_f32
    (Predictor.fingerprint predictor)

let test_e2e_quantized_serving () =
  let predictor = mk_predictor 89 in
  with_server ~numeric:`I8 predictor @@ fun srv ->
  let c = Client.connect (Server.bound_addr srv) in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let rng = Rng.create 97 in
  let fb = rand_stack rng 7 9 and ft = rand_stack rng 7 9 in
  match Client.predict c fb ft with
  | Client.Ok { c_bottom; c_top; _ } ->
      let eb, et = Predictor.predict ~numeric:`I8 predictor fb ft in
      check_bits "quantized bottom" eb c_bottom;
      check_bits "quantized top" et c_top;
      let fb32, ft32 = Predictor.predict ~numeric:`F32 predictor fb ft in
      (* Either die's map may saturate to the clamp floor on a given
         fixture; the numeric paths must diverge somewhere across the
         pair. *)
      let differs = ref false in
      let scan f32 i8 =
        Array.iteri
          (fun i v ->
            if Int64.bits_of_float v <> Int64.bits_of_float i8.T.data.(i)
            then differs := true)
          f32.T.data
      in
      scan fb32 c_bottom;
      scan ft32 c_top;
      Alcotest.(check bool) "i8 reply is not the f32 reply" true !differs
  | _ -> Alcotest.fail "quantized predict not served"

let test_retry_overloaded_recovers () =
  let predictor = mk_predictor 101 in
  (* Tiny queue + long linger: a parked request keeps the queue full,
     so a second client is refused with Overloaded until the linger
     window expires and the batch drains.  Client.retry must absorb
     those refusals and come back with the real reply. *)
  with_server ~queue_capacity:1 ~batch_linger_ms:150. predictor @@ fun srv ->
  let addr = Server.bound_addr srv in
  let rng = Rng.create 103 in
  let fb1, ft1 = (rand_stack rng 6 6, rand_stack rng 6 6) in
  let first_reply = ref None in
  let t =
    Thread.create
      (fun () ->
        let c = Client.connect addr in
        Fun.protect
          ~finally:(fun () -> Client.close c)
          (fun () -> first_reply := Some (Client.predict c fb1 ft1)))
      ()
  in
  let deadline = Unix.gettimeofday () +. 5. in
  while stat srv "queue_depth" < 1. && Unix.gettimeofday () < deadline do
    Thread.delay 0.005
  done;
  let c = Client.connect addr in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let fb, ft = (rand_stack rng 6 6, rand_stack rng 6 6) in
  (match Client.retry ~attempts:30 ~base_delay_s:0.02 ~max_delay_s:0.1 c fb ft
   with
  | Client.Ok { c_bottom; c_top; _ } ->
      let eb, et = Predictor.predict predictor fb ft in
      check_bits "retried bottom" eb c_bottom;
      check_bits "retried top" et c_top
  | Client.Overloaded _ -> Alcotest.fail "retry gave up while queue drained"
  | _ -> Alcotest.fail "retry must end in a served reply");
  Alcotest.(check bool) "server refused at least once" true
    (stat srv "overloaded" >= 1.);
  Thread.join t;
  match !first_reply with
  | Some (Client.Ok _) -> ()
  | _ -> Alcotest.fail "parked request must still be served"

let test_retry_respects_deadline () =
  let predictor = mk_predictor 107 in
  with_server ~queue_capacity:1 ~batch_linger_ms:400. predictor @@ fun srv ->
  let addr = Server.bound_addr srv in
  let rng = Rng.create 109 in
  let fb1, ft1 = (rand_stack rng 6 6, rand_stack rng 6 6) in
  let t =
    Thread.create
      (fun () ->
        let c = Client.connect addr in
        Fun.protect
          ~finally:(fun () -> Client.close c)
          (fun () -> ignore (Client.predict c fb1 ft1)))
      ()
  in
  let deadline = Unix.gettimeofday () +. 5. in
  while stat srv "queue_depth" < 1. && Unix.gettimeofday () < deadline do
    Thread.delay 0.005
  done;
  let c = Client.connect addr in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let fb, ft = (rand_stack rng 6 6, rand_stack rng 6 6) in
  let started = Unix.gettimeofday () in
  (* The queue stays full for 400 ms but the retry budget is 100 ms:
     retry must return the typed refusal once the deadline is spent
     instead of burning all 50 attempts. *)
  (match
     Client.retry ~attempts:50 ~base_delay_s:0.02 ~max_delay_s:0.05
       ~deadline_s:0.1 c fb ft
   with
  | Client.Overloaded _ -> ()
  | Client.Ok _ -> Alcotest.fail "queue cannot have drained inside 100 ms"
  | _ -> Alcotest.fail "expected the typed overload refusal");
  let elapsed = Unix.gettimeofday () -. started in
  Alcotest.(check bool)
    (Printf.sprintf "deadline respected (%.3fs)" elapsed)
    true (elapsed < 0.35);
  Thread.join t

let suites =
  [
    ( "serve lru",
      [
        Alcotest.test_case "basic eviction order" `Quick test_lru_basic;
        Alcotest.test_case "replace refreshes" `Quick test_lru_replace;
        Alcotest.test_case "mem does not promote" `Quick test_lru_mem_no_promote;
        Alcotest.test_case "zero capacity disables" `Quick
          test_lru_zero_capacity;
        Alcotest.test_case "churn and clear" `Quick test_lru_clear_and_churn;
      ] );
    ( "serve protocol",
      [
        Alcotest.test_case "roundtrip" `Quick test_protocol_roundtrip;
        Alcotest.test_case "rejects garbage" `Quick test_protocol_rejects_garbage;
        Alcotest.test_case "eof and truncation" `Quick
          test_protocol_eof_and_truncation;
        Alcotest.test_case "content-only cache key" `Quick
          test_predict_key_content_only;
      ] );
    ( "serve batch",
      [
        Alcotest.test_case "batch = singles, jobs=1" `Quick
          (batch_matches_singles 1 [ 1; 2; 5 ]);
        Alcotest.test_case "batch = singles, jobs=4" `Quick
          (batch_matches_singles 4 [ 1; 3; 5 ]);
        Alcotest.test_case "empty batch" `Quick test_predict_batch_empty;
      ] );
    ( "serve load guards",
      [
        Alcotest.test_case "wrong architecture" `Quick
          test_load_rejects_wrong_architecture;
        Alcotest.test_case "corrupt weights" `Quick
          test_load_rejects_corrupt_weights;
        Alcotest.test_case "incoherent pair" `Quick
          test_load_rejects_incoherent_pair;
        Alcotest.test_case "wrong channel count" `Quick
          test_load_rejects_wrong_channels;
      ] );
    ( "serve e2e",
      [
        Alcotest.test_case "concurrent clients, bit-identical" `Quick
          test_e2e_concurrent_bit_identical;
        Alcotest.test_case "cache hit skips recompute" `Quick
          test_e2e_cache_hit_no_recompute;
        Alcotest.test_case "backpressure overloads" `Quick
          test_e2e_backpressure_overloaded;
        Alcotest.test_case "deadline timeout" `Quick test_e2e_deadline_timeout;
        Alcotest.test_case "survives rude clients" `Quick
          test_e2e_survives_rude_clients;
        Alcotest.test_case "bad payload fails, batcher survives" `Quick
          test_bad_payload_does_not_kill_batcher;
        Alcotest.test_case "flow job lifecycle" `Quick test_e2e_flow_job;
        Alcotest.test_case "drain on stop" `Quick test_e2e_drain_on_stop;
        Alcotest.test_case "numeric-distinct fingerprints" `Quick
          test_fingerprint_numeric_distinct;
        Alcotest.test_case "quantized serving" `Quick test_e2e_quantized_serving;
        Alcotest.test_case "retry recovers from overload" `Quick
          test_retry_overloaded_recovers;
        Alcotest.test_case "retry respects deadline" `Quick
          test_retry_respects_deadline;
      ] );
  ]
