(* Tests for the content-addressed route cache (and, through it, the
   shared magic+digest framing).

   The load-bearing property: a cache replay is bit-identical to the
   cold route — same Router.digest — and so is a warm-started re-route
   of an unchanged placement, at DCO3D_JOBS=1 and 4.  Everything else
   is corruption handling (corrupt/truncated/foreign files are misses
   that self-delete) and key semantics (sub-GCell jitter hits, a
   GCell-crossing move or a different config misses). *)

module Gen = Dco3d_netlist.Generator
module Fp = Dco3d_place.Floorplan
module Pl = Dco3d_place.Placement
module Placer = Dco3d_place.Placer
module Params = Dco3d_place.Params
module R = Dco3d_route.Router
module Rc = Dco3d_route.Route_cache

let placed ?(scale = 0.02) ?(seed = 5) name =
  let nl = Gen.generate ~scale ~seed (Gen.profile name) in
  let fp = Fp.create nl in
  Placer.global_place ~seed:1 ~params:Params.default nl fp

let with_jobs n f =
  Dco3d_parallel.Pool.set_jobs ~exact:true n;
  Fun.protect ~finally:(fun () -> Dco3d_parallel.Pool.set_jobs 1) f

let tmp_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "dco3d_rc_test_%d_%d" (Unix.getpid ()) !n)
    in
    (* fresh every time: a leftover from a crashed run must not leak
       hits into this one *)
    if Sys.file_exists d then
      Array.iter
        (fun f -> Sys.remove (Filename.concat d f))
        (Sys.readdir d);
    d

module T = Dco3d_tensor.Tensor

let tensor_eq a b =
  T.shape a = T.shape b
  && Array.init (T.numel a) (T.get_flat a)
     = Array.init (T.numel b) (T.get_flat b)

let entry_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".route")
  |> List.map (Filename.concat dir)

(* ------------------------------------------------------------------ *)

let test_replay_bit_identical () =
  let p = placed "DMA" in
  let cfg = R.calibrated_config p in
  let cache = Rc.create (tmp_dir ()) in
  Alcotest.(check (option string)) "empty cache misses" None
    (Option.map R.digest (Rc.find cache ~config:cfg p));
  let cold = Rc.find_or_route ~cache ~config:cfg p in
  Alcotest.(check int) "one entry" 1 (Rc.count cache);
  (* the replay, the cold route, and a warm-started re-route of the
     unchanged placement must all carry one digest — at jobs=1 and 4 *)
  let replay1 =
    match Rc.find cache ~config:cfg p with
    | Some r -> r
    | None -> Alcotest.fail "expected a hit"
  in
  Alcotest.(check string) "replay == cold, jobs=1" (R.digest cold)
    (R.digest replay1);
  let replay4 =
    with_jobs 4 (fun () ->
        match Rc.find cache ~config:cfg p with
        | Some r -> r
        | None -> Alcotest.fail "expected a hit")
  in
  Alcotest.(check string) "replay == cold, jobs=4" (R.digest cold)
    (R.digest replay4);
  let warm = R.route ~config:cfg ~warm_start:(replay1, p) p in
  Alcotest.(check string) "warm(replay, unchanged) == cold" (R.digest cold)
    (R.digest warm);
  let warm4 =
    with_jobs 4 (fun () -> R.route ~config:cfg ~warm_start:(replay4, p) p)
  in
  Alcotest.(check string) "warm(replay, unchanged) == cold, jobs=4"
    (R.digest cold) (R.digest warm4)

let test_replay_fields_roundtrip () =
  (* beyond the digest: tensors, arrays and the stored config must
     survive the flatten/unflatten marshalling *)
  let p = placed "DMA" in
  let cfg = R.calibrated_config p in
  let cache = Rc.create (tmp_dir ()) in
  let cold = Rc.find_or_route ~cache ~config:cfg p in
  let r =
    match Rc.find cache ~config:cfg p with
    | Some r -> r
    | None -> Alcotest.fail "expected a hit"
  in
  Alcotest.(check int) "overflow" cold.R.overflow_total r.R.overflow_total;
  Alcotest.(check int) "iterations" cold.R.iterations_run r.R.iterations_run;
  Alcotest.(check (float 0.)) "wirelength" cold.R.wirelength r.R.wirelength;
  Alcotest.(check bool) "config" true (cold.R.config = r.R.config);
  Alcotest.(check bool) "net_edges" true (cold.R.net_edges = r.R.net_edges);
  Alcotest.(check bool) "history" true (cold.R.history = r.R.history);
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "congestion.(%d)" i)
        true
        (tensor_eq c r.R.congestion.(i)))
    cold.R.congestion

let test_key_sub_gcell_invariant () =
  let p = placed "DMA" in
  let cfg = R.calibrated_config p in
  let fp = p.Pl.fp in
  let k0 = Rc.key ~config:cfg p in
  (* nudge every cell well below a GCell pitch: same bins, same key *)
  let q = Pl.copy p in
  let eps = 0.01 *. Float.min (Fp.gcell_w fp) (Fp.gcell_h fp) in
  for c = 0 to Array.length q.Pl.x - 1 do
    let gx, gy = Fp.gcell_of fp q.Pl.x.(c) q.Pl.y.(c) in
    let gx', gy' = Fp.gcell_of fp (q.Pl.x.(c) +. eps) (q.Pl.y.(c) +. eps) in
    if gx = gx' && gy = gy' then begin
      q.Pl.x.(c) <- q.Pl.x.(c) +. eps;
      q.Pl.y.(c) <- q.Pl.y.(c) +. eps
    end
  done;
  Alcotest.(check string) "sub-GCell jitter keeps the key" k0
    (Rc.key ~config:cfg q);
  (* a perturbation that crosses GCell boundaries must change it *)
  let moved = Placer.perturb ~seed:9 ~fraction:0.3 ~max_dist:(2. *. Fp.gcell_w fp) p in
  Alcotest.(check bool) "GCell-crossing move changes the key" false
    (String.equal k0 (Rc.key ~config:cfg moved));
  (* so must the config *)
  Alcotest.(check bool) "config changes the key" false
    (String.equal k0
       (Rc.key ~config:{ cfg with R.max_iterations = cfg.R.max_iterations + 1 } p))

let test_different_config_misses () =
  let p = placed "DMA" in
  let cfg = R.calibrated_config p in
  let cache = Rc.create (tmp_dir ()) in
  let _ = Rc.find_or_route ~cache ~config:cfg p in
  let probe = { cfg with R.max_iterations = 1 } in
  Alcotest.(check bool) "probe config misses the full-budget entry" true
    (Rc.find cache ~config:probe p = None)

(* corruption: every damaged entry must read back as a miss AND be
   deleted, and a subsequent find_or_route must repopulate it *)
let damage_cases =
  [
    ("truncated", fun path ->
        let len = (Unix.stat path).Unix.st_size in
        Unix.truncate path (len / 2));
    ("flipped body byte", fun path ->
        let fd = Unix.openfile path [ Unix.O_RDWR ] 0o600 in
        Fun.protect
          ~finally:(fun () -> Unix.close fd)
          (fun () ->
            let len = (Unix.stat path).Unix.st_size in
            ignore (Unix.lseek fd (len - 1) Unix.SEEK_SET);
            let b = Bytes.make 1 '\xff' in
            ignore (Unix.write fd b 0 1)));
    ("foreign magic", fun path ->
        let oc = open_out_bin path in
        output_string oc "DCO3D-SPILL-V1 something else entirely";
        close_out oc);
    ("empty", fun path ->
        let oc = open_out_bin path in
        close_out oc);
  ]

let test_corrupt_entries_are_misses () =
  let p = placed "DMA" in
  let cfg = R.calibrated_config p in
  List.iter
    (fun (label, damage) ->
      let cache = Rc.create (tmp_dir ()) in
      let cold = Rc.find_or_route ~cache ~config:cfg p in
      (match entry_files (Rc.dir cache) with
      | [ path ] -> damage path
      | l -> Alcotest.failf "%s: expected 1 entry, found %d" label (List.length l));
      Alcotest.(check bool) (label ^ " reads as a miss") true
        (Rc.find cache ~config:cfg p = None);
      Alcotest.(check int) (label ^ " self-deletes") 0 (Rc.count cache);
      let again = Rc.find_or_route ~cache ~config:cfg p in
      Alcotest.(check string) (label ^ " repopulates bit-identically")
        (R.digest cold) (R.digest again);
      Alcotest.(check int) (label ^ " entry back") 1 (Rc.count cache))
    damage_cases

let test_foreign_key_collision_is_miss () =
  (* an intact entry whose *stored* key disagrees with the filename's
     (someone renamed a file, or a hash collision in a shared dir) must
     be discarded, not replayed *)
  let p = placed "DMA" in
  let cfg = R.calibrated_config p in
  let cache = Rc.create (tmp_dir ()) in
  let _ = Rc.find_or_route ~cache ~config:cfg p in
  let probe = { cfg with R.max_iterations = 1 } in
  (match entry_files (Rc.dir cache) with
  | [ path ] ->
      let target =
        Dco3d_framing.Framing.path_of ~dir:(Rc.dir cache) ~suffix:".route"
          (Rc.key ~config:probe p)
      in
      (* keep a copy under the probe key's filename: framing intact,
         stored key wrong *)
      let ic = open_in_bin path in
      let body = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let oc = open_out_bin target in
      output_string oc body;
      close_out oc
  | l -> Alcotest.failf "expected 1 entry, found %d" (List.length l));
  Alcotest.(check bool) "renamed entry is a miss" true
    (Rc.find cache ~config:probe p = None);
  Alcotest.(check int) "impostor deleted, original kept" 1 (Rc.count cache);
  Alcotest.(check bool) "original still hits" true
    (Rc.find cache ~config:cfg p <> None)

let test_dataset_build_cached_identical () =
  (* Dataset.build through a cache must produce the same samples as
     without one — first run populates, second run replays *)
  let module Dataset = Dco3d_core.Dataset in
  let nl = Gen.generate ~scale:0.02 ~seed:5 (Gen.profile "DMA") in
  let fp = Fp.create nl in
  let base = Placer.global_place ~seed:1 ~params:Params.default nl fp in
  let cfg = R.calibrated_config base in
  let cache = Rc.create (tmp_dir ()) in
  let plain = Dataset.build ~n_samples:3 ~seed:2 ~route_cfg:cfg nl fp in
  let cached = Dataset.build ~n_samples:3 ~seed:2 ~route_cache:cache ~route_cfg:cfg nl fp in
  Alcotest.(check bool) "cache populated" true (Rc.count cache > 0);
  let replayed = Dataset.build ~n_samples:3 ~seed:2 ~route_cache:cache ~route_cfg:cfg nl fp in
  let digest (d : Dataset.t) =
    Digest.to_hex
      (Digest.string
         (Marshal.to_string
            (Array.map
               (fun (s : Dataset.sample) ->
                 let flat t = Array.init (T.numel t) (T.get_flat t) in
                 (flat s.Dataset.c_bottom, flat s.Dataset.c_top))
               d.Dataset.samples)
            []))
  in
  Alcotest.(check string) "cached build == plain build" (digest plain)
    (digest cached);
  Alcotest.(check string) "replayed build == plain build" (digest plain)
    (digest replayed)

let suites =
  [
    ( "route.cache",
      [
        Alcotest.test_case "replay bit-identical (cold/warm, jobs 1 and 4)"
          `Quick test_replay_bit_identical;
        Alcotest.test_case "replay fields round-trip" `Quick
          test_replay_fields_roundtrip;
        Alcotest.test_case "key: sub-GCell invariant, bin/config sensitive"
          `Quick test_key_sub_gcell_invariant;
        Alcotest.test_case "different config misses" `Quick
          test_different_config_misses;
        Alcotest.test_case "corrupt entries are self-deleting misses" `Quick
          test_corrupt_entries_are_misses;
        Alcotest.test_case "foreign stored key is a miss" `Quick
          test_foreign_key_collision_is_miss;
        Alcotest.test_case "dataset build through cache is identical" `Slow
          test_dataset_build_cached_identical;
      ] );
  ]
