# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench examples clean bench-deterministic bench-check serve-smoke quantize-smoke

# Parallel jobs used for the determinism check's "parallel" leg.
JOBS ?= 4

all: build

build:
	dune build @all

test:
	dune runtest

test-log:
	dune runtest --force --no-buffer 2>&1 | tee test_output.txt

bench:
	dune exec bench/main.exe

bench-log:
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

# Determinism guard: the kernels and route benches must produce
# bit-identical results at DCO3D_JOBS=1 and DCO3D_JOBS=$(JOBS).  The
# bench writes BENCH_kernels.digest (timing-free content digests of
# every section's numeric output); the two runs' files must match.
bench-deterministic:
	dune build bench/main.exe
	DCO3D_ONLY=kernels,route,predict DCO3D_JOBS=1 dune exec --no-build bench/main.exe > /dev/null
	mv BENCH_kernels.digest BENCH_kernels.jobs1.digest
	DCO3D_ONLY=kernels,route,predict DCO3D_JOBS=$(JOBS) dune exec --no-build bench/main.exe > /dev/null
	sha256sum BENCH_kernels.jobs1.digest BENCH_kernels.digest
	cmp BENCH_kernels.jobs1.digest BENCH_kernels.digest
	@rm -f BENCH_kernels.jobs1.digest
	@echo "bench-deterministic: OK (DCO3D_JOBS=1 == DCO3D_JOBS=$(JOBS))"

# Performance regression gate: regenerate BENCH_kernels.json at
# DCO3D_JOBS=$(JOBS) and compare it against the baseline committed at
# HEAD.  Fails on digest drift (numerics changed), a parallel leg
# slower than sequential (beyond timing-noise tolerance), or par_ms
# more than 15 % above the committed baseline.  Knobs:
#   DCO3D_BENCH_TOL      speedup noise tolerance  (default 0.10)
#   DCO3D_BENCH_REGRESS  par_ms regression cap    (default 0.15)
bench-check:
	dune build bench/main.exe bench/bench_check.exe
	DCO3D_ONLY=kernels,route,predict DCO3D_JOBS=$(JOBS) dune exec --no-build bench/main.exe > /dev/null
	dune exec --no-build bench/bench_check.exe

# End-to-end daemon smoke: start `dco3d serve` (untrained model), fire
# predict requests (the repeats must hit the result cache), run a tiny
# flow job through the async job queue, then drain with SIGTERM.  The
# daemon writes its stage profile to serve-profile.txt at exit.
serve-smoke:
	dune build bin/dco3d.exe
	rm -f serve-smoke.sock serve-profile.txt
	DCO3D_PROFILE=serve-profile.txt \
	  dune exec --no-build bin/dco3d.exe -- serve --socket serve-smoke.sock \
	  > serve-smoke.log 2>&1 & \
	SERVE_PID=$$!; \
	for i in $$(seq 1 50); do [ -S serve-smoke.sock ] && break; sleep 0.1; done; \
	[ -S serve-smoke.sock ] || { cat serve-smoke.log; exit 1; }; \
	dune exec --no-build bin/dco3d.exe -- client ping --socket serve-smoke.sock && \
	dune exec --no-build bin/dco3d.exe -- client predict --socket serve-smoke.sock \
	  -s 0.05 --gcell 16 --repeat 3 | tee serve-predict.log && \
	grep -q "cache hit" serve-predict.log && \
	dune exec --no-build bin/dco3d.exe -- client flow --socket serve-smoke.sock \
	  -d DMA -s 0.02 --gcell 12 && \
	dune exec --no-build bin/dco3d.exe -- client stats --socket serve-smoke.sock && \
	kill -TERM $$SERVE_PID && wait $$SERVE_PID; \
	STATUS=$$?; cat serve-smoke.log; \
	[ $$STATUS -eq 0 ] && [ -f serve-profile.txt ] && \
	  grep -q "serve/batch " serve-profile.txt && \
	  grep -q "serve/flow_job" serve-profile.txt && \
	  grep -q "serve/cache_hit" serve-profile.txt && \
	  grep -q "serve/requests" serve-profile.txt && \
	  grep -q "drained and stopped" serve-smoke.log && \
	  echo "serve-smoke: OK" || { echo "serve-smoke: FAILED"; exit 1; }
	@rm -f serve-smoke.sock serve-predict.log

# Quantized-path smoke: `dco3d quantize` must produce a loadable int8
# model that passes its own golden-parity gate (BENCH_parity_smoke.json
# is the uploadable artifact), and `dco3d serve --numeric i8` must
# serve predictions from it end to end.
quantize-smoke:
	dune build bin/dco3d.exe
	rm -f quantize-smoke.sock predictor.i8.bin predictor.i8.bin.qnet BENCH_parity_smoke.json
	dune exec --no-build bin/dco3d.exe -- quantize --gcell 24 --samples 2 \
	  -o predictor.i8.bin --report BENCH_parity_smoke.json
	cat BENCH_parity_smoke.json
	dune exec --no-build bin/dco3d.exe -- serve --socket quantize-smoke.sock \
	  --model predictor.i8.bin --numeric i8 > quantize-smoke.log 2>&1 & \
	SERVE_PID=$$!; \
	for i in $$(seq 1 50); do [ -S quantize-smoke.sock ] && break; sleep 0.1; done; \
	[ -S quantize-smoke.sock ] || { cat quantize-smoke.log; exit 1; }; \
	dune exec --no-build bin/dco3d.exe -- client predict --socket quantize-smoke.sock \
	  -s 0.05 --gcell 16 --repeat 2 | tee quantize-predict.log && \
	grep -q "cache hit" quantize-predict.log && \
	kill -TERM $$SERVE_PID && wait $$SERVE_PID; \
	STATUS=$$?; cat quantize-smoke.log; \
	[ $$STATUS -eq 0 ] && grep -q "numeric i8" quantize-smoke.log && \
	  grep -q "drained and stopped" quantize-smoke.log && \
	  echo "quantize-smoke: OK" || { echo "quantize-smoke: FAILED"; exit 1; }
	@rm -f quantize-smoke.sock quantize-predict.log predictor.i8.bin predictor.i8.bin.qnet

examples:
	dune exec examples/quickstart.exe
	dune exec examples/predict_congestion.exe
	dune exec examples/spread_3d.exe
	dune exec examples/flow_compare.exe

clean:
	dune clean
