# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench examples clean bench-deterministic bench-check

# Parallel jobs used for the determinism check's "parallel" leg.
JOBS ?= 4

all: build

build:
	dune build @all

test:
	dune runtest

test-log:
	dune runtest --force --no-buffer 2>&1 | tee test_output.txt

bench:
	dune exec bench/main.exe

bench-log:
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

# Determinism guard: the kernels and route benches must produce
# bit-identical results at DCO3D_JOBS=1 and DCO3D_JOBS=$(JOBS).  The
# bench writes BENCH_kernels.digest (timing-free content digests of
# every section's numeric output); the two runs' files must match.
bench-deterministic:
	dune build bench/main.exe
	DCO3D_ONLY=kernels,route DCO3D_JOBS=1 dune exec --no-build bench/main.exe > /dev/null
	mv BENCH_kernels.digest BENCH_kernels.jobs1.digest
	DCO3D_ONLY=kernels,route DCO3D_JOBS=$(JOBS) dune exec --no-build bench/main.exe > /dev/null
	sha256sum BENCH_kernels.jobs1.digest BENCH_kernels.digest
	cmp BENCH_kernels.jobs1.digest BENCH_kernels.digest
	@rm -f BENCH_kernels.jobs1.digest
	@echo "bench-deterministic: OK (DCO3D_JOBS=1 == DCO3D_JOBS=$(JOBS))"

# Performance regression gate: regenerate BENCH_kernels.json at
# DCO3D_JOBS=$(JOBS) and compare it against the baseline committed at
# HEAD.  Fails on digest drift (numerics changed), a parallel leg
# slower than sequential (beyond timing-noise tolerance), or par_ms
# more than 15 % above the committed baseline.  Knobs:
#   DCO3D_BENCH_TOL      speedup noise tolerance  (default 0.10)
#   DCO3D_BENCH_REGRESS  par_ms regression cap    (default 0.15)
bench-check:
	dune build bench/main.exe bench/bench_check.exe
	DCO3D_ONLY=kernels,route DCO3D_JOBS=$(JOBS) dune exec --no-build bench/main.exe > /dev/null
	dune exec --no-build bench/bench_check.exe

examples:
	dune exec examples/quickstart.exe
	dune exec examples/predict_congestion.exe
	dune exec examples/spread_3d.exe
	dune exec examples/flow_compare.exe

clean:
	dune clean
