# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench examples clean

all: build

build:
	dune build @all

test:
	dune runtest

test-log:
	dune runtest --force --no-buffer 2>&1 | tee test_output.txt

bench:
	dune exec bench/main.exe

bench-log:
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

examples:
	dune exec examples/quickstart.exe
	dune exec examples/predict_congestion.exe
	dune exec examples/spread_3d.exe
	dune exec examples/flow_compare.exe

clean:
	dune clean
