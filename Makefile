# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench examples clean bench-deterministic bench-check serve-smoke quantize-smoke balance-smoke thermal-smoke warm-smoke corpus-smoke

# Parallel jobs used for the determinism check's "parallel" leg.
JOBS ?= 4

# Smoke targets keep their scratch output (daemon logs, stage
# profiles, sockets, throwaway models) out of the repo root.
LOGS := logs

all: build

build:
	dune build @all

test:
	dune runtest

test-log:
	dune runtest --force --no-buffer 2>&1 | tee test_output.txt

bench:
	dune exec bench/main.exe

bench-log:
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

# Determinism guard: the kernels and route benches must produce
# bit-identical results at DCO3D_JOBS=1 and DCO3D_JOBS=$(JOBS).  The
# bench writes BENCH_kernels.digest (timing-free content digests of
# every section's numeric output); the two runs' files must match.
bench-deterministic:
	dune build bench/main.exe
	DCO3D_ONLY=kernels,route,predict DCO3D_JOBS=1 dune exec --no-build bench/main.exe > /dev/null
	mv BENCH_kernels.digest BENCH_kernels.jobs1.digest
	DCO3D_ONLY=kernels,route,predict DCO3D_JOBS=$(JOBS) dune exec --no-build bench/main.exe > /dev/null
	sha256sum BENCH_kernels.jobs1.digest BENCH_kernels.digest
	cmp BENCH_kernels.jobs1.digest BENCH_kernels.digest
	@rm -f BENCH_kernels.jobs1.digest
	@echo "bench-deterministic: OK (DCO3D_JOBS=1 == DCO3D_JOBS=$(JOBS))"

# Performance regression gate: regenerate BENCH_kernels.json at
# DCO3D_JOBS=$(JOBS) and compare it against the baseline committed at
# HEAD.  Fails on digest drift (numerics changed), a parallel leg
# slower than sequential (beyond timing-noise tolerance), or par_ms
# more than 15 % above the committed baseline.  Knobs:
#   DCO3D_BENCH_TOL      speedup noise tolerance  (default 0.10)
#   DCO3D_BENCH_REGRESS  par_ms regression cap    (default 0.15)
bench-check:
	dune build bench/main.exe bench/bench_check.exe bin/dco3d.exe
	DCO3D_ONLY=kernels,route,predict,serve DCO3D_JOBS=$(JOBS) dune exec --no-build bench/main.exe > /dev/null
	dune exec --no-build bench/bench_check.exe

# End-to-end daemon smoke: start `dco3d serve` (untrained model), fire
# predict requests (the repeats must hit the result cache), run a tiny
# flow job through the async job queue, then drain with SIGTERM.  The
# daemon writes its stage profile to $(LOGS)/serve-profile.txt at exit.
serve-smoke:
	dune build bin/dco3d.exe
	mkdir -p $(LOGS)
	rm -f $(LOGS)/serve-smoke.sock $(LOGS)/serve-profile.txt
	DCO3D_PROFILE=$(LOGS)/serve-profile.txt \
	  dune exec --no-build bin/dco3d.exe -- serve --socket $(LOGS)/serve-smoke.sock \
	  > $(LOGS)/serve-smoke.log 2>&1 & \
	SERVE_PID=$$!; \
	for i in $$(seq 1 50); do [ -S $(LOGS)/serve-smoke.sock ] && break; sleep 0.1; done; \
	[ -S $(LOGS)/serve-smoke.sock ] || { cat $(LOGS)/serve-smoke.log; exit 1; }; \
	dune exec --no-build bin/dco3d.exe -- client ping --socket $(LOGS)/serve-smoke.sock && \
	dune exec --no-build bin/dco3d.exe -- client predict --socket $(LOGS)/serve-smoke.sock \
	  -s 0.05 --gcell 16 --repeat 3 | tee $(LOGS)/serve-predict.log && \
	grep -q "cache hit" $(LOGS)/serve-predict.log && \
	dune exec --no-build bin/dco3d.exe -- client flow --socket $(LOGS)/serve-smoke.sock \
	  -d DMA -s 0.02 --gcell 12 && \
	dune exec --no-build bin/dco3d.exe -- client stats --socket $(LOGS)/serve-smoke.sock && \
	kill -TERM $$SERVE_PID && wait $$SERVE_PID; \
	STATUS=$$?; cat $(LOGS)/serve-smoke.log; \
	[ $$STATUS -eq 0 ] && [ -f $(LOGS)/serve-profile.txt ] && \
	  grep -q "serve/batch " $(LOGS)/serve-profile.txt && \
	  grep -q "serve/flow_job" $(LOGS)/serve-profile.txt && \
	  grep -q "serve/cache_hit" $(LOGS)/serve-profile.txt && \
	  grep -q "serve/requests" $(LOGS)/serve-profile.txt && \
	  grep -q "drained and stopped" $(LOGS)/serve-smoke.log && \
	  echo "serve-smoke: OK" || { echo "serve-smoke: FAILED"; exit 1; }
	@rm -f $(LOGS)/serve-smoke.sock

# Quantized-path smoke: `dco3d quantize` must produce a loadable int8
# model that passes its own golden-parity gate (BENCH_parity_smoke.json
# is the uploadable artifact), and `dco3d serve --numeric i8` must
# serve predictions from it end to end.
quantize-smoke:
	dune build bin/dco3d.exe
	mkdir -p $(LOGS)
	rm -f $(LOGS)/quantize-smoke.sock $(LOGS)/predictor.i8.bin $(LOGS)/predictor.i8.bin.qnet BENCH_parity_smoke.json
	dune exec --no-build bin/dco3d.exe -- quantize --gcell 24 --samples 2 \
	  -o $(LOGS)/predictor.i8.bin --report BENCH_parity_smoke.json
	cat BENCH_parity_smoke.json
	dune exec --no-build bin/dco3d.exe -- serve --socket $(LOGS)/quantize-smoke.sock \
	  --model $(LOGS)/predictor.i8.bin --numeric i8 > $(LOGS)/quantize-smoke.log 2>&1 & \
	SERVE_PID=$$!; \
	for i in $$(seq 1 50); do [ -S $(LOGS)/quantize-smoke.sock ] && break; sleep 0.1; done; \
	[ -S $(LOGS)/quantize-smoke.sock ] || { cat $(LOGS)/quantize-smoke.log; exit 1; }; \
	dune exec --no-build bin/dco3d.exe -- client predict --socket $(LOGS)/quantize-smoke.sock \
	  -s 0.05 --gcell 16 --repeat 2 | tee $(LOGS)/quantize-predict.log && \
	grep -q "cache hit" $(LOGS)/quantize-predict.log && \
	kill -TERM $$SERVE_PID && wait $$SERVE_PID; \
	STATUS=$$?; cat $(LOGS)/quantize-smoke.log; \
	[ $$STATUS -eq 0 ] && grep -q "numeric i8" $(LOGS)/quantize-smoke.log && \
	  grep -q "drained and stopped" $(LOGS)/quantize-smoke.log && \
	  echo "quantize-smoke: OK" || { echo "quantize-smoke: FAILED"; exit 1; }
	@rm -f $(LOGS)/quantize-smoke.sock $(LOGS)/predictor.i8.bin $(LOGS)/predictor.i8.bin.qnet

# Fleet smoke: `dco3d balance` with two shards (one f32, one i8)
# behind one socket.  Concurrent clients route by numeric path, a
# SIGKILLed shard is respawned by the supervisor while `client predict
# --retry` rides through, and SIGTERM drains the whole fleet.  The
# balancer and each shard leave stage profiles under $(LOGS)/.
balance-smoke:
	dune build bin/dco3d.exe
	mkdir -p $(LOGS)
	rm -f $(LOGS)/balance-smoke.sock $(LOGS)/balance-smoke.ctl $(LOGS)/balance-profile.txt*
	rm -rf $(LOGS)/balance-spill
	DCO3D_PROFILE=$(LOGS)/balance-profile.txt \
	  dune exec --no-build bin/dco3d.exe -- balance --socket $(LOGS)/balance-smoke.sock \
	  --ctl $(LOGS)/balance-smoke.ctl --shards 2 --numerics f32,i8 \
	  --spill-dir $(LOGS)/balance-spill \
	  > $(LOGS)/balance-smoke.log 2>&1 & \
	BAL_PID=$$!; \
	for i in $$(seq 1 150); do grep -q "all 2 shards live" $(LOGS)/balance-smoke.log 2>/dev/null && break; sleep 0.2; done; \
	grep -q "all 2 shards live" $(LOGS)/balance-smoke.log || { cat $(LOGS)/balance-smoke.log; exit 1; }; \
	( for s in 1 2 3; do \
	    dune exec --no-build bin/dco3d.exe -- client predict --socket $(LOGS)/balance-smoke.sock \
	      -s 0.05 --gcell 16 --seed $$s --retry 6 & \
	  done; wait ) > $(LOGS)/balance-predict.log 2>&1 && \
	dune exec --no-build bin/dco3d.exe -- client predict --socket $(LOGS)/balance-smoke.sock \
	  -s 0.05 --gcell 16 --route i8 --retry 6 | tee -a $(LOGS)/balance-predict.log | grep -q "numeric i8" && \
	dune exec --no-build bin/dco3d.exe -- client predict --socket $(LOGS)/balance-smoke.sock \
	  -s 0.05 --gcell 16 --route f32 --retry 6 | tee -a $(LOGS)/balance-predict.log | grep -q "numeric f32" && \
	pkill -9 -f "[-]-shard-id 0" && sleep 1 && \
	dune exec --no-build bin/dco3d.exe -- client predict --socket $(LOGS)/balance-smoke.sock \
	  -s 0.05 --gcell 16 --retry 10 >> $(LOGS)/balance-predict.log 2>&1 && \
	dune exec --no-build bin/dco3d.exe -- client stats --socket $(LOGS)/balance-smoke.sock \
	  | tee $(LOGS)/balance-stats.log && \
	kill -TERM $$BAL_PID && wait $$BAL_PID; \
	STATUS=$$?; cat $(LOGS)/balance-smoke.log; \
	[ $$STATUS -eq 0 ] && \
	  grep -q "drained and stopped" $(LOGS)/balance-smoke.log && \
	  grep -q "shard 0: .*1 restarts" $(LOGS)/balance-smoke.log && \
	  [ -f $(LOGS)/balance-profile.txt ] && \
	  ls $(LOGS)/balance-profile.txt.shard0 $(LOGS)/balance-profile.txt.shard1 && \
	  echo "balance-smoke: OK" || { echo "balance-smoke: FAILED"; exit 1; }
	@rm -f $(LOGS)/balance-smoke.sock $(LOGS)/balance-smoke.ctl

# Thermal smoke: on a deliberately hotspotted tiny design, alternating
# minimization on the thermal penalty (`dco3d thermal --check`) must
# lower the measured peak temperature vs the no-penalty baseline with
# post-route overflow within 5%, and the epsilon-coupled Algorithm-2
# loop must run the solver in the loop and come back legal.  Exercised
# at DCO3D_JOBS=1 and $(JOBS): the solve itself is gated bit-identical.
thermal-smoke:
	dune build bin/dco3d.exe
	DCO3D_JOBS=1 dune exec --no-build bin/dco3d.exe -- thermal --check
	DCO3D_JOBS=$(JOBS) dune exec --no-build bin/dco3d.exe -- thermal --check
	@echo "thermal-smoke: OK"

# Incremental-routing smoke: `dco3d route --warm-check` perturbs the
# DMA placement, re-routes it cold and warm-started, and fails unless
# the warm start reused paths (route/warm/reused > 0), won >= 2x wall
# clock, and matched the cold route's overflow/wirelength within 5%.
# Run at DCO3D_JOBS=1 and $(JOBS); the warm result digest printed by
# the gate must be identical across the two legs.
warm-smoke:
	dune build bin/dco3d.exe
	mkdir -p $(LOGS)
	DCO3D_JOBS=1 dune exec --no-build bin/dco3d.exe -- route --warm-check \
	  | tee $(LOGS)/warm-smoke.jobs1.log
	DCO3D_JOBS=$(JOBS) dune exec --no-build bin/dco3d.exe -- route --warm-check \
	  | tee $(LOGS)/warm-smoke.jobsN.log
	@D1=$$(grep "warm digest" $(LOGS)/warm-smoke.jobs1.log); \
	DN=$$(grep "warm digest" $(LOGS)/warm-smoke.jobsN.log); \
	[ -n "$$D1" ] && [ "$$D1" = "$$DN" ] || \
	  { echo "warm-smoke: FAILED (digest differs between DCO3D_JOBS=1 and $(JOBS))"; exit 1; }
	@echo "warm-smoke: OK"

# Corpus smoke: a 2-shard fleet sharing ONE route cache and ONE PPA
# store runs a 3-design x 2-config PPA matrix twice.  The first run
# evaluates every cell; the second must be answered from the on-disk
# store without re-running the flow (rows come back verbatim, so the
# two JSON matrices are byte-identical, and corpus_cache_hits > 0 in
# the fleet stats).  A local run of the same matrix must produce the
# same matrix digest as both fleet runs — the serving tier adds no
# numeric drift.  The CI matrix runs this at DCO3D_JOBS=1 and 4.
CORPUS_DESIGNS := dma,ecg-local,vga-macro
corpus-smoke:
	dune build bin/dco3d.exe
	mkdir -p $(LOGS)
	rm -f $(LOGS)/corpus-smoke.sock $(LOGS)/corpus-smoke.ctl $(LOGS)/corpus-profile.txt*
	rm -rf $(LOGS)/corpus-store $(LOGS)/corpus-routes
	dune exec --no-build bin/dco3d.exe -- corpus --matrix \
	  --designs $(CORPUS_DESIGNS) --configs base,cong --scale 0.03 --gcell 16 \
	  --json $(LOGS)/corpus-local.json | tee $(LOGS)/corpus-local.log
	DCO3D_PROFILE=$(LOGS)/corpus-profile.txt \
	  dune exec --no-build bin/dco3d.exe -- balance --socket $(LOGS)/corpus-smoke.sock \
	  --ctl $(LOGS)/corpus-smoke.ctl --shards 2 \
	  --route-cache $(LOGS)/corpus-routes --corpus-cache $(LOGS)/corpus-store \
	  > $(LOGS)/corpus-smoke.log 2>&1 & \
	BAL_PID=$$!; \
	for i in $$(seq 1 150); do grep -q "all 2 shards live" $(LOGS)/corpus-smoke.log 2>/dev/null && break; sleep 0.2; done; \
	grep -q "all 2 shards live" $(LOGS)/corpus-smoke.log || { cat $(LOGS)/corpus-smoke.log; exit 1; }; \
	dune exec --no-build bin/dco3d.exe -- corpus --matrix --socket $(LOGS)/corpus-smoke.sock \
	  --designs $(CORPUS_DESIGNS) --configs base,cong --scale 0.03 --gcell 16 \
	  --json $(LOGS)/corpus-run1.json | tee $(LOGS)/corpus-run1.log && \
	dune exec --no-build bin/dco3d.exe -- corpus --matrix --socket $(LOGS)/corpus-smoke.sock \
	  --designs $(CORPUS_DESIGNS) --configs base,cong --scale 0.03 --gcell 16 \
	  --json $(LOGS)/corpus-run2.json | tee $(LOGS)/corpus-run2.log && \
	{ dune exec --no-build bin/dco3d.exe -- client stats --socket $(LOGS)/corpus-smoke.sock; \
	  dune exec --no-build bin/dco3d.exe -- client stats --socket $(LOGS)/corpus-smoke.sock; } \
	  | tee $(LOGS)/corpus-stats.log && \
	kill -TERM $$BAL_PID && wait $$BAL_PID; \
	STATUS=$$?; cat $(LOGS)/corpus-smoke.log; \
	[ $$STATUS -eq 0 ] && \
	  grep -q "drained and stopped" $(LOGS)/corpus-smoke.log && \
	  cmp $(LOGS)/corpus-run1.json $(LOGS)/corpus-run2.json && \
	  D_LOCAL=$$(grep "corpus matrix:" $(LOGS)/corpus-local.log) && \
	  D_RUN1=$$(grep "corpus matrix:" $(LOGS)/corpus-run1.log) && \
	  D_RUN2=$$(grep "corpus matrix:" $(LOGS)/corpus-run2.log) && \
	  [ -n "$$D_LOCAL" ] && [ "$$D_LOCAL" = "$$D_RUN1" ] && [ "$$D_RUN1" = "$$D_RUN2" ] && \
	  awk '/corpus_cache_hits/ { s += $$2 } END { exit !(s > 0) }' $(LOGS)/corpus-stats.log && \
	  echo "corpus-smoke: OK" || { echo "corpus-smoke: FAILED"; exit 1; }
	@rm -f $(LOGS)/corpus-smoke.sock $(LOGS)/corpus-smoke.ctl

examples:
	dune exec examples/quickstart.exe
	dune exec examples/predict_congestion.exe
	dune exec examples/spread_3d.exe
	dune exec examples/flow_compare.exe

clean:
	dune clean
