(** The 8 per-die input feature maps: section III-B1's seven plus a
    thermal channel (TaiWei-style coupling, ROADMAP thermal item).

    Channel order (fixed, used everywhere):
    + 0 — cell density: cell area per bin / bin area
    + 1 — pin density: pins per um^2
    + 2 — 2D RUDY (nets with all pins on this die)
    + 3 — 3D RUDY (nets spanning dies, 0.5-scaled)
    + 4 — 2D PinRUDY
    + 5 — 3D PinRUDY
    + 6 — macro blockage: macro-covered area fraction
    + 7 — thermal: steady-state temperature rise over ambient, deg C
      (from {!Dco3d_thermal.Thermal}; zeros = cold)

    Raw maps are built at GCell resolution and resized to the CNN input
    with nearest-neighbour interpolation (Fig. 3a); {!normalize}
    rescales each channel to O(1) for training. *)

val n_channels : int
val channel_names : string array

val thermal_rise_map :
  Dco3d_thermal.Thermal.result -> tier:int -> Dco3d_tensor.Tensor.t
(** One tier's temperature-rise-over-ambient plane [\[ny; nx\]] from a
    solved thermal result (clamped at 0). *)

val per_die :
  ?thermal:Dco3d_tensor.Tensor.t ->
  Dco3d_place.Placement.t -> tier:int -> nx:int -> ny:int ->
  Dco3d_tensor.Tensor.t
(** Raw feature stack [[8; ny; nx]] for one die.  [thermal] is the
    tier's temperature-rise plane ([\[ny; nx\]]); when omitted the
    thermal channel is zeros (cold die). *)

val both_dies :
  ?thermal:Dco3d_thermal.Thermal.result ->
  Dco3d_place.Placement.t -> nx:int -> ny:int ->
  Dco3d_tensor.Tensor.t * Dco3d_tensor.Tensor.t
(** [(bottom, top)] raw stacks.  The thermal channel comes from
    [thermal] when given, otherwise from a fresh
    {!Dco3d_thermal.Thermal.solve_placement} on the GCell grid. *)

val default_scales : float array
(** Per-channel normalization divisors (bring typical magnitudes to
    O(1); fixed so that train and inference agree). *)

val normalize : Dco3d_tensor.Tensor.t -> Dco3d_tensor.Tensor.t
(** Divide each channel by its {!default_scales} entry. *)

val resize_stack : Dco3d_tensor.Tensor.t -> int -> int -> Dco3d_tensor.Tensor.t
(** Nearest-neighbour resize of every channel to [h x w]
    (section III-B3). *)
