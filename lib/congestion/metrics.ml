module T = Dco3d_tensor.Tensor

let nrmse pred truth =
  if not (T.same_shape pred truth) then
    invalid_arg "Metrics.nrmse: shape mismatch";
  let n = float_of_int (max 1 (T.numel truth)) in
  let diff = T.sub pred truth in
  let rmse = sqrt (T.dot diff diff /. n) in
  let range = T.max_elt truth -. T.min_elt truth in
  if range > 1e-12 then rmse /. range else rmse

let mean_of a = T.mean a

(* Strided window start positions over [0, extent - win], with the
   final position clamped to [extent - win] so the last up-to-stride-1
   rows/columns are always covered (without the clamp, a hotspot
   hugging the die edge can fall outside every window).  Positions are
   strictly increasing: the clamped tail is skipped when the regular
   grid already ends flush. *)
let window_positions extent win stride =
  let last = extent - win in
  let rec go p acc =
    if p < last then go (p + stride) (p :: acc)
    else List.rev (last :: acc)
  in
  go 0 []

let ssim ?(window = 7) pred truth =
  if not (T.same_shape pred truth) then invalid_arg "Metrics.ssim: shape mismatch";
  if T.rank pred <> 2 then invalid_arg "Metrics.ssim: rank-2 maps expected";
  let h = T.dim pred 0 and w = T.dim pred 1 in
  let win = max 2 (min window (min h w)) in
  let range = Float.max 1e-12 (T.max_elt truth -. T.min_elt truth) in
  let c1 = (0.01 *. range) ** 2. and c2 = (0.03 *. range) ** 2. in
  let acc = ref 0. and count = ref 0 in
  let stride = max 1 (win / 2) in
  let ys = window_positions h win stride in
  let xs = window_positions w win stride in
  List.iter (fun y ->
    List.iter (fun x ->
      (* patch statistics *)
      let n = float_of_int (win * win) in
      let sum_a = ref 0. and sum_b = ref 0. in
      for i = y to y + win - 1 do
        for j = x to x + win - 1 do
          sum_a := !sum_a +. T.get2 pred i j;
          sum_b := !sum_b +. T.get2 truth i j
        done
      done;
      let mu_a = !sum_a /. n and mu_b = !sum_b /. n in
      let var_a = ref 0. and var_b = ref 0. and cov = ref 0. in
      for i = y to y + win - 1 do
        for j = x to x + win - 1 do
          let da = T.get2 pred i j -. mu_a and db = T.get2 truth i j -. mu_b in
          var_a := !var_a +. (da *. da);
          var_b := !var_b +. (db *. db);
          cov := !cov +. (da *. db)
        done
      done;
      let var_a = !var_a /. n and var_b = !var_b /. n and cov = !cov /. n in
      let s =
        ((2. *. mu_a *. mu_b) +. c1)
        *. ((2. *. cov) +. c2)
        /. (((mu_a *. mu_a) +. (mu_b *. mu_b) +. c1) *. (var_a +. var_b +. c2))
      in
      acc := !acc +. s;
      incr count)
      xs)
    ys;
  if !count = 0 then 1. else !acc /. float_of_int !count

let pearson a b =
  if not (T.same_shape a b) then invalid_arg "Metrics.pearson: shape mismatch";
  let n = float_of_int (max 1 (T.numel a)) in
  let ma = mean_of a and mb = mean_of b in
  let cov = ref 0. and va = ref 0. and vb = ref 0. in
  for i = 0 to T.numel a - 1 do
    let da = T.get_flat a i -. ma and db = T.get_flat b i -. mb in
    cov := !cov +. (da *. db);
    va := !va +. (da *. da);
    vb := !vb +. (db *. db)
  done;
  let denom = sqrt (!va /. n) *. sqrt (!vb /. n) in
  if denom <= 1e-15 then 0. else !cov /. n /. denom

let normalize01 m =
  let lo = T.min_elt m and hi = T.max_elt m in
  if hi -. lo <= 1e-15 then T.map (fun _ -> 0.) m
  else T.map (fun v -> (v -. lo) /. (hi -. lo)) m

let histogram ~bins ~lo ~hi values =
  if bins <= 0 then invalid_arg "Metrics.histogram: bins must be positive";
  let h = Array.make bins 0 in
  List.iter
    (fun v ->
      let t = (v -. lo) /. Float.max 1e-15 (hi -. lo) in
      let b = max 0 (min (bins - 1) (int_of_float (t *. float_of_int bins))) in
      h.(b) <- h.(b) + 1)
    values;
  h

let fraction_below threshold values =
  match values with
  | [] -> 0.
  | _ ->
      let n = List.length values in
      let k = List.length (List.filter (fun v -> v < threshold) values) in
      float_of_int k /. float_of_int n

let fraction_above threshold values =
  match values with
  | [] -> 0.
  | _ ->
      let n = List.length values in
      let k = List.length (List.filter (fun v -> v > threshold) values) in
      float_of_int k /. float_of_int n
