module T = Dco3d_tensor.Tensor
module Nl = Dco3d_netlist.Netlist
module Pl = Dco3d_place.Placement
module Fp = Dco3d_place.Floorplan
module Thermal = Dco3d_thermal.Thermal

let n_channels = 8

let channel_names =
  [|
    "cell_density"; "pin_density"; "rudy_2d"; "rudy_3d"; "pin_rudy_2d";
    "pin_rudy_3d"; "macro_blockage"; "thermal";
  |]

let pin_density_map p ~tier ~nx ~ny =
  let fp = p.Pl.fp in
  let bw = fp.Fp.width /. float_of_int nx in
  let bh = fp.Fp.height /. float_of_int ny in
  let map = T.zeros [| ny; nx |] in
  let add e =
    let x, y, t = Pl.endpoint_position p e in
    if t = tier then begin
      let gx = max 0 (min (nx - 1) (int_of_float (x /. bw))) in
      let gy = max 0 (min (ny - 1) (int_of_float (y /. bh))) in
      T.set2 map gy gx (T.get2 map gy gx +. 1.)
    end
  in
  List.iter
    (fun (net : Nl.net) ->
      add net.Nl.driver;
      Array.iter add net.Nl.sinks)
    (Nl.signal_nets p.Pl.nl);
  T.scale (1. /. (bw *. bh)) map

let macro_blockage_map p ~tier ~nx ~ny =
  let fp = p.Pl.fp in
  let bw = fp.Fp.width /. float_of_int nx in
  let bh = fp.Fp.height /. float_of_int ny in
  let map = T.zeros [| ny; nx |] in
  let n = Nl.n_cells p.Pl.nl in
  for c = 0 to n - 1 do
    if Nl.is_macro p.Pl.nl c && p.Pl.tier.(c) = tier then begin
      let m = p.Pl.nl.Nl.masters.(c) in
      let w = m.Dco3d_netlist.Cell_lib.width in
      let h = m.Dco3d_netlist.Cell_lib.height in
      let x0 = p.Pl.x.(c) -. (w /. 2.) and x1 = p.Pl.x.(c) +. (w /. 2.) in
      let y0 = p.Pl.y.(c) -. (h /. 2.) and y1 = p.Pl.y.(c) +. (h /. 2.) in
      let gx0 = max 0 (int_of_float (x0 /. bw)) in
      let gx1 = min (nx - 1) (int_of_float (x1 /. bw)) in
      let gy0 = max 0 (int_of_float (y0 /. bh)) in
      let gy1 = min (ny - 1) (int_of_float (y1 /. bh)) in
      for gy = gy0 to gy1 do
        for gx = gx0 to gx1 do
          let ox =
            Float.max 0.
              (Float.min x1 (float_of_int (gx + 1) *. bw)
              -. Float.max x0 (float_of_int gx *. bw))
          in
          let oy =
            Float.max 0.
              (Float.min y1 (float_of_int (gy + 1) *. bh)
              -. Float.max y0 (float_of_int gy *. bh))
          in
          T.set2 map gy gx
            (Float.min 1. (T.get2 map gy gx +. (ox *. oy /. (bw *. bh))))
        done
      done
    end
  done;
  map

(* The thermal channel holds the temperature *rise* over ambient so an
   unsupplied map (zeros) means "cold", consistent with a powered-down
   design. *)
let thermal_rise_map (r : Thermal.result) ~tier =
  let g = T.channel r.Thermal.grid tier in
  let ambient = Thermal.default_config.Thermal.ambient_c in
  T.map (fun t -> Float.max 0. (t -. ambient)) g

let per_die ?thermal p ~tier ~nx ~ny =
  let thermal_ch =
    match thermal with Some t -> t | None -> T.zeros [| ny; nx |]
  in
  T.concat_channels
    [
      Pl.density_map p ~tier ~nx ~ny;
      pin_density_map p ~tier ~nx ~ny;
      Rudy.rudy_map p ~tier ~kind:Rudy.Two_d ~nx ~ny;
      Rudy.rudy_map p ~tier ~kind:Rudy.Three_d ~nx ~ny;
      Rudy.pin_rudy_map p ~tier ~kind:Rudy.Two_d ~nx ~ny;
      Rudy.pin_rudy_map p ~tier ~kind:Rudy.Three_d ~nx ~ny;
      macro_blockage_map p ~tier ~nx ~ny;
      thermal_ch;
    ]

let both_dies ?thermal p ~nx ~ny =
  let r =
    match thermal with
    | Some r -> r
    | None -> Thermal.solve_placement ~nx ~ny p
  in
  ( per_die p ~tier:0 ~nx ~ny ~thermal:(thermal_rise_map r ~tier:0),
    per_die p ~tier:1 ~nx ~ny ~thermal:(thermal_rise_map r ~tier:1) )

(* Typical magnitudes at ~55 % utilization and GCell bins: cell density
   ~0.5, pin density ~30 pins/um^2, RUDY ~10, PinRUDY ~50, thermal rise
   ~10 K.  These bring every channel to O(1). *)
let default_scales = [| 1.0; 40.0; 15.0; 15.0; 60.0; 60.0; 1.0; 30.0 |]

let normalize stack =
  if T.rank stack <> 3 || T.dim stack 0 <> n_channels then
    invalid_arg "Feature_maps.normalize: expected an [8; h; w] stack";
  T.concat_channels
    (List.init n_channels (fun c ->
         T.scale (1. /. default_scales.(c)) (T.channel stack c)))

let resize_stack stack h w =
  let c = T.dim stack 0 in
  T.concat_channels
    (List.init c (fun ch -> T.resize_nearest (T.channel stack ch) h w))
