(** Map-comparison metrics for the prediction evaluation (Fig. 5).

    The paper scores congestion-map predictions with NRMSE (below 0.2 =
    close alignment) and SSIM (above 0.7 sufficient, above 0.8
    reported).  Both operate on rank-2 maps of equal shape. *)

val nrmse : Dco3d_tensor.Tensor.t -> Dco3d_tensor.Tensor.t -> float
(** [nrmse pred truth] = RMSE / (max - min of [truth]); falls back to
    plain RMSE when the truth is constant. *)

val ssim :
  ?window:int -> Dco3d_tensor.Tensor.t -> Dco3d_tensor.Tensor.t -> float
(** Mean structural similarity over sliding [window x window] patches
    (default 7), standard constants [k1 = 0.01], [k2 = 0.03] with the
    dynamic range taken from the truth map.  Windows step by
    [window / 2] and the final position along each axis is clamped to
    the map edge, so every row and column — in particular a congestion
    hotspot hugging the die boundary — is covered by at least one
    window.  Result in [\[-1, 1\]]; identical maps score 1. *)

val pearson : Dco3d_tensor.Tensor.t -> Dco3d_tensor.Tensor.t -> float
(** Pearson correlation of the flattened maps (0 when either side is
    constant). *)

val normalize01 : Dco3d_tensor.Tensor.t -> Dco3d_tensor.Tensor.t
(** Affine rescale to [\[0, 1\]] (Fig. 5c compares maps "with pixel
    values normalized to [0, 1] for fairness"). *)

val histogram : bins:int -> lo:float -> hi:float -> float list -> int array
(** Fixed-range histogram used for the Fig. 5b distribution plots;
    values outside the range clamp into the edge bins. *)

val fraction_below : float -> float list -> float
val fraction_above : float -> float list -> float
