module T = Dco3d_tensor.Tensor
module Nl = Dco3d_netlist.Netlist
module Pl = Dco3d_place.Placement
module Pool = Dco3d_parallel.Pool

(* Nets per parallel chunk.  Each chunk accumulates into a private map
   and the partials are merged in chunk order, so the float reduction
   tree is fixed by this constant alone — never by DCO3D_JOBS — keeping
   RUDY bit-identical at any job count. *)
let nets_per_chunk = 256

type kind = Two_d | Three_d | All

(* Minimum bounding-box span (um): a zero-extent net still occupies one
   wire's worth of track. *)
let min_span = 0.10

let net_weight w h = (1. /. Float.max min_span w) +. (1. /. Float.max min_span h)

let accumulate_net map ~die_w ~die_h ~bbox:(x0, y0, x1, y1) ~weight =
  if weight <> 0. then begin
    let ny = T.dim map 0 and nx = T.dim map 1 in
    let bw = die_w /. float_of_int nx and bh = die_h /. float_of_int ny in
    (* give degenerate boxes the minimal span so they land somewhere *)
    let x1 = Float.max x1 (x0 +. min_span) and y1 = Float.max y1 (y0 +. min_span) in
    let gx0 = max 0 (min (nx - 1) (int_of_float (x0 /. bw))) in
    let gx1 = max 0 (min (nx - 1) (int_of_float (x1 /. bw))) in
    let gy0 = max 0 (min (ny - 1) (int_of_float (y0 /. bh))) in
    let gy1 = max 0 (min (ny - 1) (int_of_float (y1 /. bh))) in
    let tile_area = bw *. bh in
    for gy = gy0 to gy1 do
      let oy =
        Float.min y1 (float_of_int (gy + 1) *. bh)
        -. Float.max y0 (float_of_int gy *. bh)
      in
      if oy > 0. then
        for gx = gx0 to gx1 do
          let ox =
            Float.min x1 (float_of_int (gx + 1) *. bw)
            -. Float.max x0 (float_of_int gx *. bw)
          in
          if ox > 0. then
            T.set2 map gy gx
              (T.get2 map gy gx +. (weight *. ox *. oy /. tile_area))
        done
    done
  end

let net_selector p ~tier ~kind (net : Nl.net) =
  let is_3d = Pl.net_is_3d p net in
  match kind with
  | All ->
      (* classic 2D estimator: every net whose bbox touches this die *)
      let _, _, t0 = Pl.endpoint_position p net.Nl.driver in
      let on_tier =
        t0 = tier
        || Array.exists
             (fun e ->
               let _, _, t = Pl.endpoint_position p e in
               t = tier)
             net.Nl.sinks
      in
      if on_tier then Some 1.0 else None
  | Two_d ->
      if is_3d then None
      else begin
        let _, _, t0 = Pl.endpoint_position p net.Nl.driver in
        if t0 = tier then Some 1.0 else None
      end
  | Three_d -> if is_3d then Some 0.5 else None

(* Shared parallel driver: one private partial map per chunk of nets,
   merged in ascending chunk order. *)
let over_nets p ~nx ~ny accumulate =
  let nets = Array.of_list (Nl.signal_nets p.Pl.nl) in
  Pool.parallel_for_reduce ~chunk:nets_per_chunk
    ~init:(T.zeros [| ny; nx |])
    ~combine:(fun acc partial ->
      T.axpy ~alpha:1. partial acc;
      acc)
    0 (Array.length nets)
    (fun lo hi ->
      let partial = T.zeros [| ny; nx |] in
      for i = lo to hi - 1 do
        accumulate partial nets.(i)
      done;
      partial)

let rudy_map p ~tier ~kind ~nx ~ny =
  let fp = p.Pl.fp in
  let die_w = fp.Dco3d_place.Floorplan.width in
  let die_h = fp.Dco3d_place.Floorplan.height in
  over_nets p ~nx ~ny (fun map (net : Nl.net) ->
      match net_selector p ~tier ~kind net with
      | None -> ()
      | Some scale ->
          let x0, y0, x1, y1 = Pl.net_bbox p net in
          let w = x1 -. x0 and h = y1 -. y0 in
          accumulate_net map ~die_w ~die_h ~bbox:(x0, y0, x1, y1)
            ~weight:(scale *. net_weight w h))

let pin_rudy_map p ~tier ~kind ~nx ~ny =
  let fp = p.Pl.fp in
  let die_w = fp.Dco3d_place.Floorplan.width in
  let die_h = fp.Dco3d_place.Floorplan.height in
  let bw = die_w /. float_of_int nx and bh = die_h /. float_of_int ny in
  over_nets p ~nx ~ny (fun map (net : Nl.net) ->
      match net_selector p ~tier ~kind net with
      | None -> ()
      | Some scale ->
          let x0, y0, x1, y1 = Pl.net_bbox p net in
          let weight = scale *. net_weight (x1 -. x0) (y1 -. y0) in
          let add e =
            let x, y, t = Pl.endpoint_position p e in
            if t = tier then begin
              let gx = max 0 (min (nx - 1) (int_of_float (x /. bw))) in
              let gy = max 0 (min (ny - 1) (int_of_float (y /. bh))) in
              T.set2 map gy gx (T.get2 map gy gx +. weight)
            end
          in
          add net.Nl.driver;
          Array.iter add net.Nl.sinks)
