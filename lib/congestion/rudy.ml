module T = Dco3d_tensor.Tensor
module Ws = Dco3d_tensor.Workspace
module Nl = Dco3d_netlist.Netlist
module Pl = Dco3d_place.Placement
module Pool = Dco3d_parallel.Pool

(* Nets per parallel chunk.  Each chunk accumulates into a private map
   and the partials are merged in chunk order, so the float reduction
   tree is fixed by this constant alone — never by DCO3D_JOBS — keeping
   RUDY bit-identical at any job count. *)
let nets_per_chunk = 256

type kind = Two_d | Three_d | All

(* Minimum bounding-box span (um): a zero-extent net still occupies one
   wire's worth of track. *)
let min_span = 0.10

let net_weight w h = (1. /. Float.max min_span w) +. (1. /. Float.max min_span h)

(* Raw-buffer kernel: accumulate one net's contribution into the map
   slice at [off] of [buf].  Working on a bare float slice (rather than
   through [T.get2]/[T.set2], which re-read the shape and bounds-check
   on every tile) lets the chunk bodies run on workspace slabs with no
   per-access overhead; the float expressions are kept verbatim so the
   results are bit-identical to the tensor version. *)
let accumulate_net_buf buf ~off ~nx ~ny ~bw ~bh ~bbox:(x0, y0, x1, y1) ~weight
    =
  if weight <> 0. then begin
    (* give degenerate boxes the minimal span so they land somewhere *)
    let x1 = Float.max x1 (x0 +. min_span) and y1 = Float.max y1 (y0 +. min_span) in
    let gx0 = max 0 (min (nx - 1) (int_of_float (x0 /. bw))) in
    let gx1 = max 0 (min (nx - 1) (int_of_float (x1 /. bw))) in
    let gy0 = max 0 (min (ny - 1) (int_of_float (y0 /. bh))) in
    let gy1 = max 0 (min (ny - 1) (int_of_float (y1 /. bh))) in
    let tile_area = bw *. bh in
    for gy = gy0 to gy1 do
      let oy =
        Float.min y1 (float_of_int (gy + 1) *. bh)
        -. Float.max y0 (float_of_int gy *. bh)
      in
      if oy > 0. then begin
        let rowbase = off + (gy * nx) in
        for gx = gx0 to gx1 do
          let ox =
            Float.min x1 (float_of_int (gx + 1) *. bw)
            -. Float.max x0 (float_of_int gx *. bw)
          in
          if ox > 0. then
            Array.unsafe_set buf (rowbase + gx)
              (Array.unsafe_get buf (rowbase + gx)
              +. (weight *. ox *. oy /. tile_area))
        done
      end
    done
  end

let accumulate_net map ~die_w ~die_h ~bbox ~weight =
  let ny = T.dim map 0 and nx = T.dim map 1 in
  let bw = die_w /. float_of_int nx and bh = die_h /. float_of_int ny in
  accumulate_net_buf map.T.data ~off:0 ~nx ~ny ~bw ~bh ~bbox ~weight

let net_selector p ~tier ~kind (net : Nl.net) =
  let is_3d = Pl.net_is_3d p net in
  match kind with
  | All ->
      (* classic 2D estimator: every net whose bbox touches this die *)
      let _, _, t0 = Pl.endpoint_position p net.Nl.driver in
      let on_tier =
        t0 = tier
        || Array.exists
             (fun e ->
               let _, _, t = Pl.endpoint_position p e in
               t = tier)
             net.Nl.sinks
      in
      if on_tier then Some 1.0 else None
  | Two_d ->
      if is_3d then None
      else begin
        let _, _, t0 = Pl.endpoint_position p net.Nl.driver in
        if t0 = tier then Some 1.0 else None
      end
  | Three_d -> if is_3d then Some 0.5 else None

(* Shared parallel driver.  One zeroed workspace slab holds every
   chunk's private partial map side by side; chunk [c] accumulates into
   slice [c] and the slices are merged into the result in ascending
   chunk order.  The reduction tree (hence every result bit) is fixed
   by [nets_per_chunk] alone — never by DCO3D_JOBS — exactly as in the
   v1 tensor-partials version, but with zero per-chunk allocation: the
   slab is borrowed, reused across calls, and released on exit. *)
let over_nets p ~nx ~ny accumulate =
  let nets = Array.of_list (Nl.signal_nets p.Pl.nl) in
  let n = Array.length nets in
  let size = ny * nx in
  let out = T.zeros [| ny; nx |] in
  if n > 0 && size > 0 then begin
    let n_chunks = (n + nets_per_chunk - 1) / nets_per_chunk in
    Ws.with_floats (n_chunks * size) (fun slab ->
        Array.fill slab 0 (n_chunks * size) 0.;
        Pool.for_chunks ~chunk:nets_per_chunk 0 n (fun lo hi ->
            let off = lo / nets_per_chunk * size in
            for i = lo to hi - 1 do
              accumulate slab off nets.(i)
            done);
        let od = out.T.data in
        for c = 0 to n_chunks - 1 do
          let coff = c * size in
          for i = 0 to size - 1 do
            Array.unsafe_set od i
              (Array.unsafe_get od i +. Array.unsafe_get slab (coff + i))
          done
        done)
  end;
  out

let rudy_map p ~tier ~kind ~nx ~ny =
  let fp = p.Pl.fp in
  let die_w = fp.Dco3d_place.Floorplan.width in
  let die_h = fp.Dco3d_place.Floorplan.height in
  let bw = die_w /. float_of_int nx and bh = die_h /. float_of_int ny in
  over_nets p ~nx ~ny (fun buf off (net : Nl.net) ->
      match net_selector p ~tier ~kind net with
      | None -> ()
      | Some scale ->
          let x0, y0, x1, y1 = Pl.net_bbox p net in
          let w = x1 -. x0 and h = y1 -. y0 in
          accumulate_net_buf buf ~off ~nx ~ny ~bw ~bh
            ~bbox:(x0, y0, x1, y1)
            ~weight:(scale *. net_weight w h))

let pin_rudy_map p ~tier ~kind ~nx ~ny =
  let fp = p.Pl.fp in
  let die_w = fp.Dco3d_place.Floorplan.width in
  let die_h = fp.Dco3d_place.Floorplan.height in
  let bw = die_w /. float_of_int nx and bh = die_h /. float_of_int ny in
  over_nets p ~nx ~ny (fun buf off (net : Nl.net) ->
      match net_selector p ~tier ~kind net with
      | None -> ()
      | Some scale ->
          let x0, y0, x1, y1 = Pl.net_bbox p net in
          let weight = scale *. net_weight (x1 -. x0) (y1 -. y0) in
          let add e =
            let x, y, t = Pl.endpoint_position p e in
            if t = tier then begin
              let gx = max 0 (min (nx - 1) (int_of_float (x /. bw))) in
              let gy = max 0 (min (ny - 1) (int_of_float (y /. bh))) in
              let idx = off + (gy * nx) + gx in
              Array.unsafe_set buf idx (Array.unsafe_get buf idx +. weight)
            end
          in
          add net.Nl.driver;
          Array.iter add net.Nl.sinks)
