(* Flow-wide observability: spans, counters, gauges, histograms.

   Design constraints, in order:

   1. A disabled probe must cost a few nanoseconds and allocate
      nothing: every probe starts with one atomic load of [enabled_]
      and returns immediately when it is false.  The whole subsystem is
      off unless DCO3D_TRACE/DCO3D_PROFILE are set or a caller enables
      it programmatically.

   2. Counters must aggregate correctly when bumped concurrently from
      pool worker domains, and totals must be a function of the work
      performed — never of DCO3D_JOBS.  Counters are plain atomics;
      span aggregation and the event buffer sit behind one mutex
      (spans mark stages, not inner loops, so the lock is cold).

   3. Span paths form a stage tree.  Nesting is tracked per domain
      with DLS, so a span opened inside another on the same domain
      extends its path ("flow" -> "flow/place" -> "flow/place/cg_solve")
      while spans on pool workers start fresh roots and land on their
      own trace track.  High-cardinality segments ("iter:17",
      "sample:3", "net:812") are rolled up to "iter:*" in the
      aggregated profile; the raw trace keeps exact names. *)

(* ------------------------------------------------------------------ *)
(* Gating                                                              *)
(* ------------------------------------------------------------------ *)

let enabled_ = Atomic.make false
let enabled () = Atomic.get enabled_
let enable () = Atomic.set enabled_ true
let disable () = Atomic.set enabled_ false

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

(* Microseconds since the module loaded.  [Unix.gettimeofday] is the
   best wall clock the stdlib offers; the CAS clamp below makes the
   reported timeline monotonic even if the system clock steps
   backwards, which keeps trace events well-formed. *)
let t0 = Unix.gettimeofday ()
let last_us = Atomic.make 0.

let now_us () =
  let t = (Unix.gettimeofday () -. t0) *. 1e6 in
  let rec clamp () =
    let l = Atomic.get last_us in
    if t >= l then if Atomic.compare_and_set last_us l t then t else clamp ()
    else l
  in
  clamp ()

(* ------------------------------------------------------------------ *)
(* Span recording                                                      *)
(* ------------------------------------------------------------------ *)

type event = {
  ev_path : string;
  ev_tid : int;
  ev_ts_us : float;
  ev_dur_us : float;
  ev_args : (string * string) list;
}

type span_stat = {
  sp_path : string;
  sp_count : int;
  sp_total_ms : float;
  sp_min_ms : float;
  sp_max_ms : float;
}

type agg = {
  mutable a_count : int;
  mutable a_total_us : float;
  mutable a_min_us : float;
  mutable a_max_us : float;
}

(* One mutex guards the event buffer, the span aggregates and the
   histogram cells.  Spans and histogram observations are per-stage /
   per-iteration probes, so contention is negligible. *)
let stats_mutex = Mutex.create ()
let events : event list ref = ref []
let n_events = ref 0
let dropped_events = ref 0

(* Bounds trace memory on long runs (a multi-hour flow with per-net
   spans); the aggregates keep counting past the cap. *)
let max_events = 200_000

let aggregates : (string, agg) Hashtbl.t = Hashtbl.create 64

let is_digits s lo =
  let n = String.length s in
  lo < n
  &&
  let ok = ref true in
  for i = lo to n - 1 do
    match s.[i] with '0' .. '9' -> () | _ -> ok := false
  done;
  !ok

(* "dco/iter:17" -> "dco/iter:*" ; non-numeric suffixes are kept. *)
let rollup_segment seg =
  match String.rindex_opt seg ':' with
  | Some i when is_digits seg (i + 1) -> String.sub seg 0 (i + 1) ^ "*"
  | _ -> seg

let rollup_path path =
  if String.contains path ':' then
    String.concat "/" (List.map rollup_segment (String.split_on_char '/' path))
  else path

let record_span ~path ~tid ~ts_us ~dur_us ~args =
  Mutex.lock stats_mutex;
  (let key = rollup_path path in
   (match Hashtbl.find_opt aggregates key with
   | Some a ->
       a.a_count <- a.a_count + 1;
       a.a_total_us <- a.a_total_us +. dur_us;
       if dur_us < a.a_min_us then a.a_min_us <- dur_us;
       if dur_us > a.a_max_us then a.a_max_us <- dur_us
   | None ->
       Hashtbl.replace aggregates key
         { a_count = 1; a_total_us = dur_us; a_min_us = dur_us; a_max_us = dur_us });
   if !n_events < max_events then begin
     events :=
       { ev_path = path; ev_tid = tid; ev_ts_us = ts_us; ev_dur_us = dur_us;
         ev_args = args }
       :: !events;
     incr n_events
   end
   else incr dropped_events);
  Mutex.unlock stats_mutex

(* Innermost open span path on this domain. *)
let span_stack : string list Domain.DLS.key = Domain.DLS.new_key (fun () -> [])

let with_span ?(args = []) name f =
  if not (Atomic.get enabled_) then f ()
  else begin
    let parent = Domain.DLS.get span_stack in
    let path = match parent with [] -> name | p :: _ -> p ^ "/" ^ name in
    Domain.DLS.set span_stack (path :: parent);
    let ts = now_us () in
    Fun.protect
      ~finally:(fun () ->
        let dur = now_us () -. ts in
        Domain.DLS.set span_stack parent;
        record_span ~path
          ~tid:(Domain.self () :> int)
          ~ts_us:ts ~dur_us:dur ~args)
      f
  end

(* ------------------------------------------------------------------ *)
(* Counters, gauges, histograms                                        *)
(* ------------------------------------------------------------------ *)

type counter = int Atomic.t
type gauge = float Atomic.t
type hist_cell = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}
type histogram = hist_cell

(* Interning tables; the mutex is only taken at handle-creation and
   report time, never on the hot increment path. *)
let intern_mutex = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let intern table make name =
  Mutex.lock intern_mutex;
  let cell =
    match Hashtbl.find_opt table name with
    | Some c -> c
    | None ->
        let c = make () in
        Hashtbl.replace table name c;
        c
  in
  Mutex.unlock intern_mutex;
  cell

let counter name = intern counters (fun () -> Atomic.make 0) name

let incr ?(by = 1) c =
  if Atomic.get enabled_ then ignore (Atomic.fetch_and_add c by)

let counter_value name =
  match Hashtbl.find_opt counters name with
  | Some c -> Atomic.get c
  | None -> 0

let gauge name = intern gauges (fun () -> Atomic.make nan) name
let set_gauge g v = if Atomic.get enabled_ then Atomic.set g v

let gauge_value name =
  match Hashtbl.find_opt gauges name with
  | Some g -> Atomic.get g
  | None -> nan

let histogram name =
  intern histograms
    (fun () -> { h_count = 0; h_sum = 0.; h_min = infinity; h_max = neg_infinity })
    name

let observe h v =
  if Atomic.get enabled_ then begin
    Mutex.lock stats_mutex;
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v;
    Mutex.unlock stats_mutex
  end

let histogram_stats name =
  match Hashtbl.find_opt histograms name with
  | Some h when h.h_count > 0 -> Some (h.h_count, h.h_sum, h.h_min, h.h_max)
  | Some _ | None -> None

(* ------------------------------------------------------------------ *)
(* Aggregates                                                          *)
(* ------------------------------------------------------------------ *)

let stage_profile () =
  Mutex.lock stats_mutex;
  let rows =
    Hashtbl.fold
      (fun path a acc ->
        {
          sp_path = path;
          sp_count = a.a_count;
          sp_total_ms = a.a_total_us /. 1e3;
          sp_min_ms = a.a_min_us /. 1e3;
          sp_max_ms = a.a_max_us /. 1e3;
        }
        :: acc)
      aggregates []
  in
  Mutex.unlock stats_mutex;
  List.sort
    (fun a b ->
      match compare b.sp_total_ms a.sp_total_ms with
      | 0 -> compare a.sp_path b.sp_path
      | c -> c)
    rows

let span_stat_of path =
  List.find_opt (fun s -> s.sp_path = path) (stage_profile ())

let span_events () =
  Mutex.lock stats_mutex;
  let n = !n_events in
  Mutex.unlock stats_mutex;
  n

let sorted_bindings table value =
  Mutex.lock intern_mutex;
  let rows = Hashtbl.fold (fun k c acc -> (k, value c) :: acc) table [] in
  Mutex.unlock intern_mutex;
  List.sort (fun (a, _) (b, _) -> compare a b) rows

let profile_table () =
  let buf = Buffer.create 2048 in
  let spans = stage_profile () in
  if spans <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf "%-44s %8s %12s %10s %10s %10s\n" "span" "calls"
         "total ms" "mean ms" "min ms" "max ms");
    List.iter
      (fun s ->
        Buffer.add_string buf
          (Printf.sprintf "%-44s %8d %12.2f %10.3f %10.3f %10.3f\n" s.sp_path
             s.sp_count s.sp_total_ms
             (s.sp_total_ms /. float_of_int (max 1 s.sp_count))
             s.sp_min_ms s.sp_max_ms))
      spans
  end;
  let counters_rows =
    List.filter (fun (_, v) -> v <> 0) (sorted_bindings counters Atomic.get)
  in
  if counters_rows <> [] then begin
    Buffer.add_string buf "\ncounters:\n";
    List.iter
      (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "  %-42s %12d\n" name v))
      counters_rows
  end;
  let gauge_rows =
    List.filter
      (fun (_, v) -> not (Float.is_nan v))
      (sorted_bindings gauges Atomic.get)
  in
  if gauge_rows <> [] then begin
    Buffer.add_string buf "\ngauges:\n";
    List.iter
      (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "  %-42s %12g\n" name v))
      gauge_rows
  end;
  let hist_rows =
    List.filter
      (fun (_, h) -> h.h_count > 0)
      (sorted_bindings histograms Fun.id)
  in
  if hist_rows <> [] then begin
    Buffer.add_string buf "\nhistograms:\n";
    Buffer.add_string buf
      (Printf.sprintf "  %-42s %8s %12s %10s %10s %10s\n" "name" "count" "sum"
         "mean" "min" "max");
    List.iter
      (fun (name, h) ->
        Buffer.add_string buf
          (Printf.sprintf "  %-42s %8d %12.3f %10.3f %10.3f %10.3f\n" name
             h.h_count h.h_sum
             (h.h_sum /. float_of_int (max 1 h.h_count))
             h.h_min h.h_max))
      hist_rows
  end;
  (if !dropped_events > 0 then
     Buffer.add_string buf
       (Printf.sprintf "\n(trace buffer full: %d span events dropped)\n"
          !dropped_events));
  Buffer.contents buf

let write_profile path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (profile_table ()))

(* ------------------------------------------------------------------ *)
(* Chrome trace sink                                                   *)
(* ------------------------------------------------------------------ *)

(* Minimal JSON string escaping (names are span paths and arg strings
   we emit ourselves, but a netlist design name could contain
   anything). *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_chrome_trace path =
  Mutex.lock stats_mutex;
  let evs = List.rev !events in
  Mutex.unlock stats_mutex;
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "{\"traceEvents\":[\n";
      let first = ref true in
      let emit line =
        if !first then first := false else output_string oc ",\n";
        output_string oc line
      in
      List.iter
        (fun e ->
          let args =
            match e.ev_args with
            | [] -> ""
            | kvs ->
                let fields =
                  List.map
                    (fun (k, v) ->
                      Printf.sprintf "\"%s\":\"%s\"" (json_escape k)
                        (json_escape v))
                    kvs
                in
                Printf.sprintf ",\"args\":{%s}" (String.concat "," fields)
          in
          (* span events use the leaf name; the full path goes into the
             category so the viewer can filter on it *)
          let leaf =
            match String.rindex_opt e.ev_path '/' with
            | Some i ->
                String.sub e.ev_path (i + 1) (String.length e.ev_path - i - 1)
            | None -> e.ev_path
          in
          emit
            (Printf.sprintf
               "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.1f,\"dur\":%.1f,\"pid\":1,\"tid\":%d%s}"
               (json_escape leaf) (json_escape e.ev_path) e.ev_ts_us
               e.ev_dur_us e.ev_tid args))
        evs;
      (* final counter totals as Chrome counter samples *)
      let ts = now_us () in
      List.iter
        (fun (name, v) ->
          if v <> 0 then
            emit
              (Printf.sprintf
                 "{\"name\":\"%s\",\"cat\":\"counter\",\"ph\":\"C\",\"ts\":%.1f,\"pid\":1,\"args\":{\"value\":%d}}"
                 (json_escape name) ts v))
        (sorted_bindings counters Atomic.get);
      output_string oc "\n],\"displayTimeUnit\":\"ms\"}\n")

(* ------------------------------------------------------------------ *)
(* Reset (tests)                                                       *)
(* ------------------------------------------------------------------ *)

let reset () =
  Mutex.lock stats_mutex;
  events := [];
  n_events := 0;
  dropped_events := 0;
  Hashtbl.reset aggregates;
  Mutex.unlock stats_mutex;
  Mutex.lock intern_mutex;
  Hashtbl.iter (fun _ c -> Atomic.set c 0) counters;
  Hashtbl.iter (fun _ g -> Atomic.set g nan) gauges;
  Hashtbl.iter
    (fun _ h ->
      h.h_count <- 0;
      h.h_sum <- 0.;
      h.h_min <- infinity;
      h.h_max <- neg_infinity)
    histograms;
  Mutex.unlock intern_mutex

(* ------------------------------------------------------------------ *)
(* Exit sinks + environment gating                                     *)
(* ------------------------------------------------------------------ *)

let trace_path : string option ref = ref None
let profile_dest : string option ref = ref None
let at_exit_registered = ref false

let flush_sinks () =
  (match !trace_path with Some p -> write_chrome_trace p | None -> ());
  match !profile_dest with
  | Some ("1" | "true" | "stderr") ->
      let table = profile_table () in
      if table <> "" then (
        prerr_endline "--- dco3d stage profile ---";
        prerr_string table)
  | Some path -> write_profile path
  | None -> ()

let register_at_exit () =
  if not !at_exit_registered then begin
    at_exit_registered := true;
    Stdlib.at_exit flush_sinks
  end

let set_trace_path p =
  trace_path := Some p;
  enable ();
  register_at_exit ()

let set_profile_dest d =
  profile_dest := Some d;
  enable ();
  register_at_exit ()

let () =
  (match Sys.getenv_opt "DCO3D_TRACE" with
  | Some p when p <> "" && p <> "0" -> set_trace_path p
  | Some _ | None -> ());
  match Sys.getenv_opt "DCO3D_PROFILE" with
  | Some d when d <> "" && d <> "0" -> set_profile_dest d
  | Some _ | None -> ()
