(** Flow-wide observability: spans, counters, gauges, histograms.

    Every stage of the DCO-3D flow (placement, routing, STA, dataset
    construction, predictor training, the Algorithm-2 loop, the domain
    pool) is instrumented with probes from this module.  The subsystem
    has two halves:

    {ul
    {- {b Spans} — nestable monotonic timers.  A span opened inside
       another span on the same domain extends its path with [/], so the
       recorded tree reads like a call stack: [flow/place/cg_solve],
       [flow/route/repair:2].  Path segments of the form [name:<int>]
       (per-net, per-sample, per-iteration spans) are rolled up to
       [name:*] in the aggregated stage profile, while the raw trace
       keeps the exact names.}
    {- {b Counters / gauges / histograms} — cheap scalar probes.
       Counters are atomic and aggregate correctly when bumped from
       pool worker domains; totals are a function of the work done, not
       of [DCO3D_JOBS].}}

    {b Gating.}  Everything is off by default; a disabled probe costs
    one atomic load (a few nanoseconds) and allocates nothing.  Enable
    with the environment:

    {ul
    {- [DCO3D_TRACE=<path>] — record spans and write a Chrome-trace
       JSON to [<path>] at exit (open in [chrome://tracing] or
       {{:https://ui.perfetto.dev}Perfetto}).}
    {- [DCO3D_PROFILE=1] — print the aggregated stage-profile table to
       stderr at exit ([DCO3D_PROFILE=<path>] writes it to a file
       instead).}}

    or programmatically with {!enable} / {!set_trace_path} (the
    [--trace-out] flag of the [dco3d] binary uses the latter). *)

(** {1 Gating} *)

val enabled : unit -> bool
(** [enabled ()] is [true] when probes record.  Probe call sites may
    use this to skip argument preparation that is only needed when
    recording. *)

val enable : unit -> unit
(** Turn recording on (spans, counters, gauges, histograms). *)

val disable : unit -> unit
(** Turn recording off.  Already-recorded data is kept. *)

val set_trace_path : string -> unit
(** [set_trace_path p] enables recording and arranges for a
    Chrome-trace JSON to be written to [p] at process exit (the
    [DCO3D_TRACE] environment variable does the same). *)

val set_profile_dest : string -> unit
(** [set_profile_dest d] enables recording and arranges for the stage
    profile to be emitted at process exit: to stderr when [d] is ["1"],
    ["true"] or ["stderr"], otherwise to the file [d]. *)

(** {1 Spans} *)

val with_span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] times [f ()] on the monotonic clock and records
    the interval under [parent_path/name], where the parent path is the
    innermost span currently open on this domain (spans opened on pool
    worker domains start fresh roots — the trace shows them on their
    own track).  [args] attaches key/value detail visible in the trace
    viewer.  The result (or exception) of [f] is passed through;
    disabled, [with_span name f] is [f ()]. *)

(** {1 Counters, gauges, histograms} *)

type counter

val counter : string -> counter
(** [counter name] interns the counter [name] (idempotent — the same
    cell is returned for the same name).  Handles are cheap and are
    meant to be created once at module level. *)

val incr : ?by:int -> counter -> unit
(** Atomically add [by] (default 1) to the counter when enabled. *)

val counter_value : string -> int
(** Current total of a counter, 0 if it was never interned. *)

type gauge

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit
(** Last-write-wins scalar (e.g. effective pool jobs). *)

val gauge_value : string -> float
(** Current value of a gauge, [nan] if never interned. *)

type histogram

val histogram : string -> histogram

val observe : histogram -> float -> unit
(** Record one observation (count/sum/min/max are kept). *)

val histogram_stats : string -> (int * float * float * float) option
(** [histogram_stats name] is [Some (count, sum, min, max)], or [None]
    if the histogram was never interned or has no observations. *)

(** {1 Aggregates and sinks} *)

type span_stat = {
  sp_path : string;  (** rolled-up span path, e.g. [dco/iter:*] *)
  sp_count : int;
  sp_total_ms : float;
  sp_min_ms : float;
  sp_max_ms : float;
}

val stage_profile : unit -> span_stat list
(** Aggregated span statistics, sorted by decreasing total time. *)

val span_stat_of : string -> span_stat option
(** Aggregated stats of one rolled-up span path (e.g. ["serve/batch"]),
    [None] if it never closed a span.  Lets tests and the serving
    fleet's smoke checks assert on latency aggregates directly. *)

val span_events : unit -> int
(** Number of raw span events currently buffered for the trace. *)

val profile_table : unit -> string
(** The stage profile plus counters/gauges/histograms rendered as a
    human-readable table. *)

val write_profile : string -> unit
(** Write {!profile_table} to a file. *)

val write_chrome_trace : string -> unit
(** Write the buffered span events (plus final counter values) as
    Chrome trace-event JSON. *)

val reset : unit -> unit
(** Drop all recorded data and zero every interned probe; handles stay
    valid.  Intended for tests. *)
