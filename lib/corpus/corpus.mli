(** Generated multi-design PPA benchmark corpus (Open3DBench-style).

    The six Table-III generators cover the paper's designs; a corpus
    {!spec} sweeps the axes around them — cell/net count (base profile
    x scale), Rent-style topology (depth / hub fraction / locality),
    macro density, and flip-flop fraction — so the repo can evaluate on
    a standing family of designs instead of one experiment's six.
    Every spec is seeded and deterministic: the generated netlist is a
    pure function of the spec, and {!netlist_digest} gives it a stable
    content identity shared by tests, the on-disk PPA store, and the
    serving tier's corpus request class.

    The {!run_matrix} runner executes the full flow per
    (design x flow-config) cell and emits one PPA {!row} each — WL,
    WNS/TNS, power, peak/avg temperature, overflow, per-stage runtime —
    as machine-readable JSON plus a rendered table
    ([dco3d corpus --matrix]).  Rows cache through {!Store} (same
    [Framing] discipline as the route cache) keyed by
    [(netlist digest, flow config, seed)], so a whole fleet shares one
    evaluated corpus. *)

type spec = {
  sp_name : string;  (** corpus point name (also the generated design name) *)
  sp_base : string;  (** base {!Dco3d_netlist.Generator.profile} name *)
  sp_scale : float;  (** cell/IO count multiplier on the base profile *)
  sp_seed : int;
  sp_seq_fraction : float option;  (** flip-flop fraction override *)
  sp_depth : int option;  (** combinational depth override *)
  sp_hub_fraction : float option;  (** high-fanout hub share override *)
  sp_locality : float option;  (** Rent-style wiring locality override *)
  sp_macros : int option;
      (** when set, replace the base profile's macros with this many
          generated SRAM macros (the macro-density axis) *)
}

val spec :
  ?scale:float ->
  ?seed:int ->
  ?seq_fraction:float ->
  ?depth:int ->
  ?hub_fraction:float ->
  ?locality:float ->
  ?macros:int ->
  name:string ->
  string ->
  spec
(** [spec ~name base] is a corpus point on [base] (e.g. ["AES"]) with
    the given overrides.  Defaults: [scale = 1.0], [seed = 42], every
    override absent. *)

val designs : spec list
(** The default corpus: the axes swept around the Table-III bases,
    including macro-heavy and RocketCore-scale points. *)

val find : string -> spec
(** Case-insensitive lookup in {!designs}.
    @raise Not_found for unknown corpus points. *)

val scaled : float -> spec -> spec
(** Multiply a spec's scale (smoke tests and CI run tiny corpora). *)

val reseeded : int -> spec -> spec
(** Replace a spec's seed. *)

val to_profile : spec -> Dco3d_netlist.Generator.profile
(** The fully resolved generator profile (overrides applied; the
    profile is named after the spec, so two corpus points on one base
    draw distinct RNG streams). *)

val generate : spec -> Dco3d_netlist.Netlist.t
(** Build the netlist — a pure function of the spec. *)

val netlist_digest : Dco3d_netlist.Netlist.t -> string
(** Stable content digest (hex MD5) of a netlist: identical across
    processes and [DCO3D_JOBS] values for structurally identical
    netlists. *)

(** {1 Flow configs and PPA rows} *)

type variant = Pin3d | Cong

type flow_config = {
  fc_name : string;
  fc_variant : variant;
  fc_gcell : int;  (** GCell grid (nx = ny) *)
  fc_util : float;  (** floorplan target utilization *)
}

val default_configs : flow_config list
(** The standing matrix columns: the Pin-3D baseline and the
    congestion-driven variant on the default fabric. *)

val flow_config :
  ?gcell:int -> ?util:float -> ?variant:variant -> string -> flow_config
(** [flow_config name] with defaults [gcell = 48], [util = 0.55],
    [variant = Pin3d]. *)

type row = {
  r_design : string;
  r_digest : string;  (** netlist content digest *)
  r_config : string;
  r_seed : int;
  r_cells : int;
  r_nets : int;
  r_overflow : int;
  r_ovf_pct : float;
  r_wirelength_um : float;
  r_wns_ps : float;
  r_tns_ps : float;
  r_power_mw : float;
  r_peak_c : float;
  r_avg_c : float;
  r_gen_ms : float;  (** netlist generation wall time *)
  r_calib_ms : float;  (** flow-context calibration wall time *)
  r_flow_ms : float;  (** flow (place..signoff..thermal) wall time *)
}

val row_digest : row -> string
(** Hex MD5 over every metric field of a row {e except} the wall-time
    fields — the determinism identity: bit-identical reruns at any
    [DCO3D_JOBS] produce equal digests even though runtimes differ. *)

val store_key : netlist_digest:string -> seed:int -> flow_config -> string
(** The on-disk cell key, [(netlist digest, flow config, seed)] —
    computable before the flow runs. *)

(** {1 On-disk PPA store} *)

module Store : sig
  type t

  val create : ?max_entries:int -> string -> t
  (** Bounded like {!Dco3d_route.Route_cache.create}: LRU-by-mtime
      eviction past [max_entries] (default [DCO3D_CORPUS_CACHE_CAP],
      else 4096), [corpus/cache_evicted] counter, corrupt survivors
      age out like live entries.
      @raise Unix.Unix_error if the directory cannot be created. *)

  val dir : t -> string
  val max_entries : t -> int

  val find : t -> key:string -> row option
  (** Counted on [corpus/cache_hit] / [corpus/cache_miss]. *)

  val put : t -> key:string -> row -> bool
  val count : t -> int
end

(** {1 Matrix runner} *)

val run_cell :
  ?store:Store.t ->
  ?route_cache:Dco3d_route.Route_cache.t ->
  spec ->
  flow_config ->
  row
(** One (design x config) cell: generate, calibrate a flow context,
    run the variant, report the PPA row.  With [?store], a previously
    evaluated cell is returned verbatim (stored runtimes included, so
    fleet replays are bit-identical) and fresh rows are persisted.
    Runs under a [corpus/cell] span. *)

val run_matrix :
  ?store:Store.t ->
  ?route_cache:Dco3d_route.Route_cache.t ->
  specs:spec list ->
  configs:flow_config list ->
  unit ->
  row list
(** The full matrix, row-major (specs outer, configs inner).  Cells
    run sequentially — the flow parallelizes internally, so exactly
    one level fans out. *)

val build_dataset :
  ?n_samples:int ->
  ?route_cache:Dco3d_route.Route_cache.t ->
  spec ->
  flow_config ->
  Dco3d_core.Dataset.t
(** A congestion-predictor dataset on a corpus design (the corpus
    build the serving tier exposes): floorplan + calibrated fabric
    from the flow context, then {!Dco3d_core.Dataset.build} — sharing
    [?route_cache] means many training runs share one layout corpus. *)

(** {1 Rendering} *)

val json_of_row : row -> string
(** One JSON object (single line, stable field order). *)

val write_json : string -> row list -> unit
(** One row-object per line (the [BENCH_*.json] idiom). *)

val pp_matrix : Format.formatter -> row list -> unit
(** Rendered table, one line per cell. *)
