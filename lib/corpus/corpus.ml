(* Generated multi-design PPA benchmark corpus.

   A corpus point is a seeded variation of one of the six Table-III
   generator profiles: scale moves the #cells/#nets axis, the
   depth/hub/locality overrides move the Rent-style topology axes,
   [sp_seq_fraction] the flip-flop share, and [sp_macros] swaps in a
   generated SRAM block stack (the macro-density axis).  The resolved
   profile is named after the corpus point, so two points on the same
   base draw distinct RNG streams and carry distinct design names all
   the way into the flow reports.

   PPA rows persist through the shared [Framing] layout

     "DCO3D-CORPUS-V1" | 16-byte MD5(body) | body

   with body = Marshal of (key, row), key = MD5(netlist digest x flow
   config x seed), stored-key re-checked on read — the same discipline
   (and the same LRU bound) as the route cache one directory over. *)

module Nl = Dco3d_netlist.Netlist
module Gen = Dco3d_netlist.Generator
module Cl = Dco3d_netlist.Cell_lib
module Flow = Dco3d_flow.Flow
module Route_cache = Dco3d_route.Route_cache
module Dataset = Dco3d_core.Dataset
module Framing = Dco3d_framing.Framing
module Obs = Dco3d_obs.Obs

type spec = {
  sp_name : string;
  sp_base : string;
  sp_scale : float;
  sp_seed : int;
  sp_seq_fraction : float option;
  sp_depth : int option;
  sp_hub_fraction : float option;
  sp_locality : float option;
  sp_macros : int option;
}

let spec ?(scale = 1.0) ?(seed = 42) ?seq_fraction ?depth ?hub_fraction
    ?locality ?macros ~name base =
  {
    sp_name = name;
    sp_base = base;
    sp_scale = scale;
    sp_seed = seed;
    sp_seq_fraction = seq_fraction;
    sp_depth = depth;
    sp_hub_fraction = hub_fraction;
    sp_locality = locality;
    sp_macros = macros;
  }

(* The default corpus: one point per sweep axis around the bases,
   including macro-heavy and RocketCore-scale entries. *)
let designs =
  [
    spec ~name:"dma" "DMA";
    spec ~name:"aes" "AES";
    spec ~name:"aes-ff" ~seq_fraction:0.35 "AES";
    spec ~name:"ldpc-shallow" ~depth:4 ~hub_fraction:0.008 "LDPC";
    spec ~name:"ecg-local" ~locality:0.9 "ECG";
    spec ~name:"ecg-global" ~locality:0.15 "ECG";
    spec ~name:"vga-macro" ~macros:6 "VGA";
    spec ~name:"rocket" "Rocket";
    spec ~name:"rocket-macro" ~macros:8 "Rocket";
  ]

let find name =
  let lc = String.lowercase_ascii name in
  List.find (fun s -> String.lowercase_ascii s.sp_name = lc) designs

let scaled m s = { s with sp_scale = s.sp_scale *. m }
let reseeded seed s = { s with sp_seed = seed }

(* Generated SRAM stack for the macro-density axis: three footprint
   classes cycled deterministically, roughly the Rocket cache/TLB
   range. *)
let corpus_macros n =
  List.init n (fun i ->
      let w, h =
        match i mod 3 with 0 -> (8.0, 6.0) | 1 -> (6.0, 4.0) | _ -> (4.0, 3.0)
      in
      (Printf.sprintf "CORPUS_SRAM%d" i, w, h))

let to_profile s =
  let base = Gen.profile s.sp_base in
  let value d = function Some v -> v | None -> d in
  {
    base with
    Gen.name = s.sp_name;
    seq_fraction = value base.Gen.seq_fraction s.sp_seq_fraction;
    depth = value base.Gen.depth s.sp_depth;
    hub_fraction = value base.Gen.hub_fraction s.sp_hub_fraction;
    locality = value base.Gen.locality s.sp_locality;
    macros =
      (match s.sp_macros with
      | Some n -> corpus_macros n
      | None -> base.Gen.macros);
  }

let generate s = Gen.generate ~scale:s.sp_scale ~seed:s.sp_seed (to_profile s)

(* A generated netlist is a pure function of its spec with no sharing
   tricks, so structurally identical netlists marshal to identical
   bytes — across processes and at any DCO3D_JOBS. *)
let netlist_digest nl = Digest.to_hex (Digest.string (Marshal.to_string nl []))

(* ------------------------------------------------------------------ *)
(* Flow configs and PPA rows                                           *)
(* ------------------------------------------------------------------ *)

type variant = Pin3d | Cong

type flow_config = {
  fc_name : string;
  fc_variant : variant;
  fc_gcell : int;
  fc_util : float;
}

let flow_config ?(gcell = 48) ?(util = 0.55) ?(variant = Pin3d) name =
  { fc_name = name; fc_variant = variant; fc_gcell = gcell; fc_util = util }

let default_configs =
  [ flow_config "base"; flow_config ~variant:Cong "cong" ]

type row = {
  r_design : string;
  r_digest : string;
  r_config : string;
  r_seed : int;
  r_cells : int;
  r_nets : int;
  r_overflow : int;
  r_ovf_pct : float;
  r_wirelength_um : float;
  r_wns_ps : float;
  r_tns_ps : float;
  r_power_mw : float;
  r_peak_c : float;
  r_avg_c : float;
  r_gen_ms : float;
  r_calib_ms : float;
  r_flow_ms : float;
}

let add_int buf i = Buffer.add_string buf (Printf.sprintf " %d" i)

(* exact bit pattern — "%g"-style rounding could alias two rows *)
let add_float buf f =
  Buffer.add_string buf (Printf.sprintf " %Lx" (Int64.bits_of_float f))

let row_digest r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf r.r_design;
  Buffer.add_char buf '|';
  Buffer.add_string buf r.r_digest;
  Buffer.add_char buf '|';
  Buffer.add_string buf r.r_config;
  add_int buf r.r_seed;
  add_int buf r.r_cells;
  add_int buf r.r_nets;
  add_int buf r.r_overflow;
  add_float buf r.r_ovf_pct;
  add_float buf r.r_wirelength_um;
  add_float buf r.r_wns_ps;
  add_float buf r.r_tns_ps;
  add_float buf r.r_power_mw;
  add_float buf r.r_peak_c;
  add_float buf r.r_avg_c;
  (* wall times excluded: reruns are bit-identical in every metric *)
  Digest.to_hex (Digest.string (Buffer.contents buf))

let store_key ~netlist_digest ~seed fc =
  let buf = Buffer.create 128 in
  Buffer.add_string buf netlist_digest;
  Buffer.add_char buf '|';
  Buffer.add_string buf fc.fc_name;
  add_int buf (match fc.fc_variant with Pin3d -> 0 | Cong -> 1);
  add_int buf fc.fc_gcell;
  add_float buf fc.fc_util;
  add_int buf seed;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* ------------------------------------------------------------------ *)
(* On-disk PPA store                                                   *)
(* ------------------------------------------------------------------ *)

module Store = struct
  type t = { dir : string; max_entries : int }

  let magic = "DCO3D-CORPUS-V1"
  let suffix = ".ppa"

  let default_max_entries () =
    match int_of_string_opt (Sys.getenv "DCO3D_CORPUS_CACHE_CAP") with
    | Some n when n > 0 -> n
    | Some _ | None -> 4096
    | exception Not_found -> 4096

  let create ?max_entries dir =
    Framing.mkdir_p dir;
    let max_entries =
      match max_entries with
      | Some n when n > 0 -> n
      | Some _ | None -> default_max_entries ()
    in
    { dir; max_entries }

  let dir t = t.dir
  let max_entries t = t.max_entries

  (* Jobs-invariant: all three are functions of the request stream. *)
  let c_hit = Obs.counter "corpus/cache_hit"
  let c_miss = Obs.counter "corpus/cache_miss"
  let c_evicted = Obs.counter "corpus/cache_evicted"

  let find t ~key =
    let path = Framing.path_of ~dir:t.dir ~suffix key in
    let result =
      match Framing.read_file ~magic ~path with
      | None -> None
      | Some body -> (
          match (Marshal.from_string body 0 : string * row) with
          | stored_key, r when stored_key = key ->
              Framing.touch path;
              Some r
          | _ ->
              (* digest-valid but colliding/stale key *)
              Framing.discard path;
              None
          | exception Failure _ ->
              Framing.discard path;
              None)
    in
    (match result with Some _ -> Obs.incr c_hit | None -> Obs.incr c_miss);
    result

  let put t ~key r =
    let body = Marshal.to_string (key, r) [] in
    let ok =
      Framing.write_file ~magic
        ~path:(Framing.path_of ~dir:t.dir ~suffix key)
        ~body
    in
    let evicted =
      Framing.evict_lru ~dir:t.dir ~suffix ~max_entries:t.max_entries
    in
    if evicted > 0 then Obs.incr ~by:evicted c_evicted;
    ok

  let count t = Framing.count_entries ~dir:t.dir ~suffix
end

(* ------------------------------------------------------------------ *)
(* Matrix runner                                                       *)
(* ------------------------------------------------------------------ *)

let now_ms () = Unix.gettimeofday () *. 1e3

let context_of ?route_cache ~seed nl fc =
  Flow.make_context ~seed ~utilization:fc.fc_util ~gcell_nx:fc.fc_gcell
    ~gcell_ny:fc.fc_gcell ?route_cache nl

let run_cell ?store ?route_cache s fc =
  Obs.with_span "corpus/cell"
    ~args:[ ("design", s.sp_name); ("config", fc.fc_name) ]
  @@ fun () ->
  let t0 = now_ms () in
  let nl = generate s in
  let dg = netlist_digest nl in
  let t1 = now_ms () in
  let key = store_key ~netlist_digest:dg ~seed:s.sp_seed fc in
  match Option.bind store (fun st -> Store.find st ~key) with
  | Some r -> r
  | None ->
      let ctx = context_of ?route_cache ~seed:s.sp_seed nl fc in
      let t2 = now_ms () in
      let fr =
        match fc.fc_variant with
        | Pin3d -> Flow.run_pin3d ctx
        | Cong -> Flow.run_pin3d_cong ctx
      in
      let t3 = now_ms () in
      let r =
        {
          r_design = s.sp_name;
          r_digest = dg;
          r_config = fc.fc_name;
          r_seed = s.sp_seed;
          r_cells = Nl.n_cells nl;
          r_nets = Nl.n_nets nl;
          r_overflow = fr.Flow.place_stage.Flow.overflow;
          r_ovf_pct = fr.Flow.place_stage.Flow.ovf_gcell_pct;
          r_wirelength_um = fr.Flow.signoff.Flow.wirelength_um;
          r_wns_ps = fr.Flow.signoff.Flow.wns_ps;
          r_tns_ps = fr.Flow.signoff.Flow.tns_ps;
          r_power_mw = fr.Flow.signoff.Flow.power_mw;
          r_peak_c = fr.Flow.signoff.Flow.peak_temp_c;
          r_avg_c = fr.Flow.signoff.Flow.avg_temp_c;
          r_gen_ms = t1 -. t0;
          r_calib_ms = t2 -. t1;
          r_flow_ms = t3 -. t2;
        }
      in
      (match store with
      | Some st -> ignore (Store.put st ~key r : bool)
      | None -> ());
      r

let run_matrix ?store ?route_cache ~specs ~configs () =
  List.concat_map
    (fun s -> List.map (fun fc -> run_cell ?store ?route_cache s fc) configs)
    specs

let build_dataset ?n_samples ?route_cache s fc =
  let nl = generate s in
  let ctx = context_of ?route_cache ~seed:s.sp_seed nl fc in
  Dataset.build ?n_samples ~seed:s.sp_seed ?route_cache
    ~route_cfg:ctx.Flow.route_cfg nl ctx.Flow.fp

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let json_of_row r =
  Printf.sprintf
    "{\"design\":%S,\"digest\":%S,\"config\":%S,\"seed\":%d,\"cells\":%d,\"nets\":%d,\"overflow\":%d,\"ovf_gcell_pct\":%.4f,\"wirelength_um\":%.3f,\"wns_ps\":%.3f,\"tns_ps\":%.3f,\"power_mw\":%.4f,\"peak_c\":%.3f,\"avg_c\":%.3f,\"gen_ms\":%.1f,\"calib_ms\":%.1f,\"flow_ms\":%.1f,\"row_digest\":%S}"
    r.r_design r.r_digest r.r_config r.r_seed r.r_cells r.r_nets r.r_overflow
    r.r_ovf_pct r.r_wirelength_um r.r_wns_ps r.r_tns_ps r.r_power_mw r.r_peak_c
    r.r_avg_c r.r_gen_ms r.r_calib_ms r.r_flow_ms (row_digest r)

let write_json path rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      List.iter (fun r -> output_string oc (json_of_row r ^ "\n")) rows)

let pp_matrix ppf rows =
  Format.fprintf ppf
    "%-14s %-6s %8s %8s | %7s %6s | %10s %8s %10s %7s %5s/%5s | %8s@\n"
    "design" "config" "cells" "nets" "ovf" "ovf%" "WL um" "WNS ps" "TNS ps"
    "mW" "Tpk" "Tavg" "flow ms";
  List.iter
    (fun r ->
      Format.fprintf ppf
        "%-14s %-6s %8d %8d | %7d %5.2f%% | %10.1f %8.2f %10.1f %7.2f %5.1f/%5.1f | %8.1f@\n"
        r.r_design r.r_config r.r_cells r.r_nets r.r_overflow r.r_ovf_pct
        r.r_wirelength_um r.r_wns_ps r.r_tns_ps r.r_power_mw r.r_peak_c
        r.r_avg_c r.r_flow_ms)
    rows
