module Nl = Dco3d_netlist.Netlist
module Cl = Dco3d_netlist.Cell_lib
module Fp = Dco3d_place.Floorplan
module Pl = Dco3d_place.Placement
module Placer = Dco3d_place.Placer
module Params = Dco3d_place.Params
module Router = Dco3d_route.Router
module Route_cache = Dco3d_route.Route_cache
module Sta = Dco3d_sta.Sta
module Cts = Dco3d_cts.Cts
module Bo = Dco3d_bayesopt.Bayesopt
module Thermal = Dco3d_thermal.Thermal
module Obs = Dco3d_obs.Obs

let log_src = Logs.Src.create "dco3d.flow" ~doc:"Pin-3D flow emulation"

module Log = (val Logs.src_log log_src : Logs.LOG)

type context = {
  nl : Nl.t;
  fp : Fp.t;
  route_cfg : Router.config;
  clock_period_ps : float;
  seed : int;
  route_cache : Route_cache.t option;
  mutable last_route : (Router.result * Pl.t) option;
}

type place_stage = {
  overflow : int;
  ovf_gcell_pct : float;
  ovf_h : int;
  ovf_v : int;
  place_hpwl : float;
}

type signoff = {
  wns_ps : float;
  tns_ps : float;
  power_mw : float;
  wirelength_um : float;
  upsized_cells : int;
  clock_skew_ps : float;
  peak_temp_c : float;
  avg_temp_c : float;
}

type result = {
  flow_name : string;
  placement : Pl.t;
  route : Router.result;
  place_stage : place_stage;
  signoff : signoff;
  params : Params.t;
}

let net_is_3d_fn (p : Pl.t) nid = Pl.net_is_3d p p.Pl.nl.Nl.nets.(nid)

let make_context ?(seed = 1) ?(utilization = 0.55) ?(gcell_nx = 48)
    ?(gcell_ny = 48) ?route_cache nl =
  Obs.with_span "flow/calibrate" @@ fun () ->
  let fp = Fp.create ~utilization ~gcell_nx ~gcell_ny nl in
  (* calibrate the routing fabric and the clock on the Pin-3D baseline *)
  let base = Placer.global_place ~seed ~params:Params.default nl fp in
  let route_cfg = Router.calibrated_config base in
  let r = Route_cache.find_or_route ?cache:route_cache ~config:route_cfg base in
  let clock_period_ps =
    Sta.suggest_period nl ~net_length:r.Router.net_length
      ~net_is_3d:(net_is_3d_fn base)
  in
  {
    nl;
    fp;
    route_cfg;
    clock_period_ps;
    seed;
    route_cache;
    last_route = Some (r, base);
  }

(* ------------------------------------------------------------------ *)
(* Signoff ECO sizing                                                  *)
(* ------------------------------------------------------------------ *)

let signoff_optimize ctx nl ~net_length ~net_is_3d =
  let cfg = Sta.default_config ~clock_period_ps:ctx.clock_period_ps in
  let upsized = ref 0 in
  let continue_ = ref true in
  let rounds = ref 0 in
  (* the load each cell drives: upsizing pays off when the cell's own
     drive resistance into that load dominates its stage delay *)
  let drive_score c =
    let out = nl.Nl.cell_fanout.(c) in
    if out < 0 || nl.Nl.nets.(out).Nl.is_clock then 0.
    else begin
      let net = nl.Nl.nets.(out) in
      let load =
        (0.22 *. net_length.(out))
        +. Array.fold_left
             (fun acc e ->
               match e with
               | Nl.Cell k -> acc +. nl.Nl.masters.(k).Cl.input_cap
               | Nl.Io _ -> acc +. 2.0)
             0. net.Nl.sinks
      in
      nl.Nl.masters.(c).Cl.drive_res *. load
    end
  in
  let tns_of () = (Sta.analyze cfg nl ~net_length ~net_is_3d).Sta.tns in
  let prev_tns = ref (tns_of ()) in
  while !continue_ && !rounds < 8 do
    incr rounds;
    let t = Sta.analyze cfg nl ~net_length ~net_is_3d in
    if t.Sta.wns >= 0. then continue_ := false
    else begin
      (* candidates: violating cells whose stage delay is drive-limited *)
      let victims = ref [] in
      Array.iteri
        (fun c slack ->
          if slack < 0. then victims := (drive_score c, c) :: !victims)
        t.Sta.cell_slack;
      let victims =
        List.sort (fun (a, _) (b, _) -> compare b a) !victims
      in
      let budget = max 8 (List.length victims / 4) in
      let snapshot = Array.copy nl.Nl.masters in
      let changed = ref 0 in
      List.iteri
        (fun i (_, c) ->
          if i < budget then
            match Cl.upsize nl.Nl.masters.(c) with
            | Some m ->
                nl.Nl.masters.(c) <- m;
                incr changed
            | None -> ())
        victims;
      if !changed = 0 then continue_ := false
      else begin
        (* accept-if-improves, like any production ECO loop *)
        let tns = tns_of () in
        if tns <= !prev_tns then begin
          Array.blit snapshot 0 nl.Nl.masters 0 (Array.length snapshot);
          continue_ := false
        end
        else begin
          prev_tns := tns;
          upsized := !upsized + !changed
        end
      end
    end
  done;
  !upsized

(* ------------------------------------------------------------------ *)
(* Flow driver                                                         *)
(* ------------------------------------------------------------------ *)

(* The public entry points ({!run_with_params}, {!run_with_placement})
   open the "flow" root span; this internal driver does not, so the
   stage tree has a single flow root (flow/place, flow/route, ...). *)
let run_with_placement_internal ctx ~name ~params (p : Pl.t) =
  (* placement-stage congestion evaluation (global route), replayed
     from the shared route cache when this binned placement has been
     routed before (bit-identical, so flow metrics are unchanged);
     otherwise warm-started from the context's previous full-config
     route — successive ground-truth evaluations (Algorithm-2 inner
     loop, Table-III sweeps) pay only for their placement delta.  Only
     full-config routes thread through [last_route]: BO probes run a
     reduced-budget config and a cross-config warm start would be
     rejected by the router. *)
  let reused0 = Obs.counter_value "route/warm/reused" in
  let ripped0 = Obs.counter_value "route/warm/ripped" in
  let route =
    Route_cache.find_or_route ?cache:ctx.route_cache
      ?warm_start:ctx.last_route ~config:ctx.route_cfg p
  in
  ctx.last_route <- Some (route, p);
  Log.debug (fun m ->
      m "%s: warm route reused %d / ripped %d nets" name
        (Obs.counter_value "route/warm/reused" - reused0)
        (Obs.counter_value "route/warm/ripped" - ripped0));
  let place_stage =
    {
      overflow = route.Router.overflow_total;
      ovf_gcell_pct = route.Router.overflow_gcell_pct;
      ovf_h = route.Router.overflow_h;
      ovf_v = route.Router.overflow_v;
      place_hpwl = Pl.hpwl p;
    }
  in
  Log.debug (fun m ->
      m "%s: placement-stage overflow %d (%.1f%% gcells)" name
        place_stage.overflow place_stage.ovf_gcell_pct);
  (* CTS *)
  let clock = Obs.with_span "cts" (fun () -> Cts.synthesize p) in
  (* signoff ECO sizing on a private copy of the netlist *)
  let nl = Nl.copy ctx.nl in
  let net_is_3d = net_is_3d_fn p in
  let upsized =
    Obs.with_span "signoff" (fun () ->
        signoff_optimize ctx nl ~net_length:route.Router.net_length ~net_is_3d)
  in
  let cfg = Sta.default_config ~clock_period_ps:ctx.clock_period_ps in
  let t = Sta.analyze cfg nl ~net_length:route.Router.net_length ~net_is_3d in
  let pw =
    Sta.estimate_power cfg nl ~net_length:route.Router.net_length
      ~clock_wirelength:clock.Cts.wirelength
      ~clock_buffers:clock.Cts.n_buffers ()
  in
  (* steady-state thermal map from the signoff power (routed net
     lengths, CTS clock tree) on the floorplan's GCell grid *)
  let therm =
    Obs.with_span "thermal" (fun () ->
        Thermal.solve_power ~nx:ctx.fp.Fp.gcell_nx ~ny:ctx.fp.Fp.gcell_ny p pw)
  in
  (match therm.Thermal.cg_status with
  | Dco3d_tensor.Linalg.Converged -> ()
  | s ->
      Log.warn (fun m ->
          m "%s: thermal solve ended with %s after %d iters" name
            (Dco3d_tensor.Linalg.string_of_cg_status s)
            therm.Thermal.cg_iters));
  let signoff =
    {
      wns_ps = t.Sta.wns;
      tns_ps = t.Sta.tns;
      power_mw = pw.Sta.total_mw;
      wirelength_um = route.Router.wirelength +. clock.Cts.wirelength;
      upsized_cells = upsized;
      clock_skew_ps = clock.Cts.skew_ps;
      peak_temp_c = therm.Thermal.peak_c;
      avg_temp_c = therm.Thermal.avg_c;
    }
  in
  { flow_name = name; placement = p; route; place_stage; signoff; params }

let run_with_params ctx ~name params =
  Obs.with_span "flow" ~args:[ ("name", name) ] @@ fun () ->
  let p = Placer.global_place ~seed:ctx.seed ~params ctx.nl ctx.fp in
  run_with_placement_internal ctx ~name ~params p

let run_with_placement ctx ~name p =
  Obs.with_span "flow" ~args:[ ("name", name) ] @@ fun () ->
  run_with_placement_internal ctx ~name ~params:Params.default p

let run_pin3d ctx = run_with_params ctx ~name:"Pin3D" Params.default

let run_pin3d_cong ctx =
  run_with_params ctx ~name:"Pin3D + Cong." Params.congestion_focused

let run_pin3d_bo ?(iterations = 12) ?(bo_seed = 7) ctx =
  let bo = Bo.create ~seed:bo_seed ~dim:Params.dimensions () in
  (* cheap objective: placement-stage routed overflow with a reduced
     repair budget (BO probes many points) *)
  let probe_cfg = { ctx.route_cfg with Router.max_iterations = 1 } in
  let evaluate v =
    let params = Params.of_vector v in
    let p = Placer.global_place ~seed:ctx.seed ~params ctx.nl ctx.fp in
    (* probes key under probe_cfg (reduced repair budget), so they can
       never collide with full-budget entries *)
    let r = Route_cache.find_or_route ?cache:ctx.route_cache ~config:probe_cfg p in
    float_of_int r.Router.overflow_total
  in
  let best_v, best_y = Bo.minimize ~iterations ~init:4 bo evaluate in
  Log.debug (fun m -> m "BO best probe overflow: %.0f" best_y);
  run_with_params ctx ~name:"Pin3D + BO" (Params.of_vector best_v)

let pp_result ppf r =
  Format.fprintf ppf
    "%-14s | ovf %6d (%5.2f%% gcells, H %6d, V %6d) | wns %8.2f ps | tns %10.1f ps | %7.2f mW | WL %10.1f um | T %5.1f/%5.1f C"
    r.flow_name r.place_stage.overflow r.place_stage.ovf_gcell_pct
    r.place_stage.ovf_h r.place_stage.ovf_v r.signoff.wns_ps r.signoff.tns_ps
    r.signoff.power_mw r.signoff.wirelength_um r.signoff.peak_temp_c
    r.signoff.avg_temp_c
