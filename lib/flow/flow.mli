(** The Pin-3D physical-design flow emulation (Fig. 1) and the baseline
    variants of Table III.

    Stages per run: 3D global placement, placement-stage global routing
    (the "after 3D placement optimization" columns), clock-tree
    synthesis, signoff ECO sizing against the design's clock, and final
    reporting (the "after signoff optimization" columns).

    A {!context} pins everything the paper holds constant across the
    four flows of one design: the netlist, the floorplan, the routing
    fabric (capacities calibrated once on the Pin-3D baseline
    placement), the clock period, and the tool seed ("the exact same
    ICC2 seed across all experiments"). *)

type context = {
  nl : Dco3d_netlist.Netlist.t;
  fp : Dco3d_place.Floorplan.t;
  route_cfg : Dco3d_route.Router.config;
  clock_period_ps : float;
  seed : int;
  route_cache : Dco3d_route.Route_cache.t option;
      (** when present, every route the flow runs (calibration, the
          placement-stage route, BO probes) goes through the
          content-addressed cache — replays are bit-identical, so flow
          metrics are unchanged whether a route hits or misses *)
  mutable last_route :
    (Dco3d_route.Router.result * Dco3d_place.Placement.t) option;
      (** the context's most recent full-config route (seeded with the
          calibration route): successive flow runs on one context
          warm-start from it ({!Dco3d_route.Router.route}'s
          [?warm_start]) instead of cold-routing, so Algorithm-2
          ground-truth evaluations pay only for their placement delta.
          The [route/warm/{reused,ripped}] counters in the stage
          profile report the split.  BO probes (reduced repair budget)
          neither read nor update it. *)
}

val make_context :
  ?seed:int ->
  ?utilization:float ->
  ?gcell_nx:int ->
  ?gcell_ny:int ->
  ?route_cache:Dco3d_route.Route_cache.t ->
  Dco3d_netlist.Netlist.t ->
  context
(** Builds the shared environment: floorplans the netlist, runs the
    Pin-3D baseline placement once to calibrate routing capacities and
    pick a clock period slightly tighter than that baseline's critical
    path (so signoff starts with violations to burn down, as in every
    Table-III design). *)

type place_stage = {
  overflow : int;
  ovf_gcell_pct : float;
  ovf_h : int;
  ovf_v : int;
  place_hpwl : float;
}
(** The "after 3D placement optimization" columns of Table III. *)

type signoff = {
  wns_ps : float;
  tns_ps : float;
  power_mw : float;
  wirelength_um : float;
  upsized_cells : int;  (** ECO repairs spent *)
  clock_skew_ps : float;
  peak_temp_c : float;
      (** hottest GCell of the steady-state thermal map solved from the
          signoff power (routed wirelength + CTS clock tree) *)
  avg_temp_c : float;  (** mean GCell temperature, deg C *)
}
(** The "after signoff optimization (end-of-flow)" columns, plus the
    thermal metrics (peak/avg temperature). *)

type result = {
  flow_name : string;
  placement : Dco3d_place.Placement.t;
  route : Dco3d_route.Router.result;
  place_stage : place_stage;
  signoff : signoff;
  params : Dco3d_place.Params.t;  (** the placement knobs that ran *)
}

val run_with_params :
  context -> name:string -> Dco3d_place.Params.t -> result
(** Place with the given Table-I knobs, then finish the flow. *)

val run_with_placement :
  context -> name:string -> Dco3d_place.Placement.t -> result
(** Finish the flow from an externally produced 3D placement — the
    entry point the DCO-3D optimizer uses (its TCL-guided placement
    replaces the placement stage, everything downstream is identical). *)

val run_pin3d : context -> result
(** The Pin-3D baseline (default knobs). *)

val run_pin3d_cong : context -> result
(** "Pin-3D + Cong.": ICC2 congestion-driven placement at the highest
    effort. *)

val run_pin3d_bo :
  ?iterations:int -> ?bo_seed:int -> context -> result
(** "Pin-3D + BO": Bayesian optimization (GP + expected improvement)
    over the 16 Table-I knobs, minimizing placement-stage routed
    overflow (default 12 evaluations), then the full flow on the best
    knobs found. *)

val signoff_optimize :
  context ->
  Dco3d_netlist.Netlist.t ->
  net_length:float array ->
  net_is_3d:(int -> bool) ->
  int
(** The ECO sizing loop used inside the flows: repeatedly upsize cells
    on violating paths until timing converges or sizes run out.
    Mutates the netlist's masters in place; returns the number of
    upsized cells.  Exposed for tests. *)

val pp_result : Format.formatter -> result -> unit
(** One Table-III-style row. *)
