(** Dense row-major float tensors.

    This module is the numerical substrate for the whole reproduction:
    congestion maps are rank-2 tensors [[h; w]], per-die feature stacks
    are rank-3 tensors [[c; h; w]] (channels first, matching the paper's
    7-channel inputs), convolution weights are rank-4 [[co; ci; kh; kw]],
    and GNN activations are rank-2 [[n; f]].  All neural-network kernels
    (convolution, transposed convolution, pooling, nearest-neighbour
    resize) live here so that {!module:Dco3d_autodiff} can wrap each
    forward kernel with its hand-written adjoint. *)

type t = private { shape : int array; data : float array }
(** A tensor.  [data] is row-major; the type is private so that all
    construction goes through the checked builders below, but kernels
    may still read fields directly. *)

(** {1 Construction} *)

val make : int array -> float array -> t
(** [make shape data] checks that [data] has exactly the implied number
    of elements.  [data] is owned by the result (not copied): the caller
    must not mutate it afterwards except through the tensor.  [shape] is
    copied defensively. *)

val zeros : int array -> t
val ones : int array -> t
val full : int array -> float -> t

val init : int array -> (int array -> float) -> t
(** [init shape f] tabulates [f] over multi-indices in row-major order. *)

val scalar : float -> t
(** Rank-0 tensor. *)

val of_array1 : float array -> t
(** Rank-1 view of a fresh copy of the array. *)

val of_array2 : float array array -> t
(** Rank-2 tensor from rows; all rows must share a length. *)

val copy : t -> t

val rand_uniform : Rng.t -> ?lo:float -> ?hi:float -> int array -> t
val randn : Rng.t -> ?mu:float -> ?sigma:float -> int array -> t

val kaiming : Rng.t -> fan_in:int -> int array -> t
(** He-normal initialization: stddev [sqrt (2 / fan_in)]. *)

(** {1 Shape accessors} *)

val shape : t -> int array
val numel : t -> int
val rank : t -> int
val dim : t -> int -> int
val same_shape : t -> t -> bool
val reshape : t -> int array -> t
(** [reshape t shape] returns a view with a new shape; the element count
    must be preserved.

    {b Warning: the result aliases [t]'s data array} — writing through
    either tensor is visible in the other.  This is intentional (the
    autodiff layer reshapes large activations without copying), but it
    means [reshape] does {e not} confer ownership the way {!make} /
    {!copy} results do.  Use {!reshape_copy} when an independently owned
    tensor is required.  The [shape] array itself is copied
    defensively. *)

val reshape_copy : t -> int array -> t
(** Like {!reshape} but the result owns a fresh copy of the data: later
    writes to [t] never leak into the result, and vice versa. *)

(** {1 Element access} *)

val get : t -> int array -> float
val set : t -> int array -> float -> unit
val get_flat : t -> int -> float
val set_flat : t -> int -> float -> unit

val get2 : t -> int -> int -> float
(** Rank-2 convenience accessor. *)

val set2 : t -> int -> int -> float -> unit

val get3 : t -> int -> int -> int -> float
(** Rank-3 convenience accessor. *)

val set3 : t -> int -> int -> int -> float -> unit

(** {1 Elementwise operations} *)

val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t
val iteri_flat : (int -> float -> unit) -> t -> unit

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val scale : float -> t -> t
val add_scalar : float -> t -> t
val relu : t -> t
val sigmoid : t -> t
val tanh_ : t -> t
val exp_ : t -> t
val log_ : t -> t
val sqrt_ : t -> t
val sqr : t -> t
val clip : lo:float -> hi:float -> t -> t

val axpy : alpha:float -> t -> t -> unit
(** [axpy ~alpha x y] performs [y <- alpha*x + y] in place. *)

val fill : t -> float -> unit

(** {1 Reductions} *)

val sum : t -> float
val mean : t -> float
val max_elt : t -> float
val min_elt : t -> float
val fold : ('a -> float -> 'a) -> 'a -> t -> 'a
val dot : t -> t -> float
val frobenius : t -> float
(** L2 norm of all elements. *)

(** {1 Linear algebra (rank 2)} *)

val matmul : t -> t -> t
(** [[m; k]] x [[k; n]] -> [[m; n]]. *)

val transpose2 : t -> t

val matvec : t -> t -> t
(** [[m; k]] x [[k]] -> [[m]]. *)

(** {1 Convolution kernels (rank 3 activations [[c; h; w]])} *)

type conv_engine = [ `Auto | `Direct | `Gemm ]
(** Implementation selector for the convolution family.  [`Direct] is
    the reference loop nest; [`Gemm] lowers onto an im2col + packed
    GEMM pipeline that reuses {!module:Workspace} scratch.  The two are
    bit-identical for every shape, stride, and padding — the engine is
    purely a performance choice — and [`Auto] (the default) picks
    [`Gemm] once the kernel is large enough to amortize packing. *)

val conv2d :
  ?stride:int -> ?pad:int -> ?engine:conv_engine -> t -> weight:t ->
  bias:t option -> t
(** [conv2d x ~weight ~bias] with [x : [ci; h; w]],
    [weight : [co; ci; kh; kw]], [bias : [co]] option. *)

val conv2d_backward_input :
  ?stride:int -> ?pad:int -> ?engine:conv_engine -> input_shape:int array ->
  weight:t -> t -> t
(** Adjoint of {!conv2d} with respect to its input: maps the gradient of
    the output back to the gradient of the input. *)

val conv2d_backward_weight :
  ?stride:int -> ?pad:int -> ?engine:conv_engine -> input:t ->
  weight_shape:int array -> t -> t
(** Adjoint of {!conv2d} with respect to the weight. *)

val conv2d_transpose :
  ?stride:int -> ?pad:int -> ?engine:conv_engine -> t -> weight:t ->
  bias:t option -> t
(** Transposed convolution (a.k.a. deconvolution), used by the UNet
    decoder.  [x : [ci; h; w]], [weight : [ci; co; kh; kw]]; output has
    spatial size [(h-1)*stride - 2*pad + kh]. *)

val maxpool2 : t -> t * int array
(** 2x2, stride-2 max pooling.  Also returns the flat argmax index into
    the input for each output element (for the backward pass).  Requires
    even spatial dimensions. *)

val maxpool2_backward : input_shape:int array -> int array -> t -> t
(** [maxpool2_backward ~input_shape argmax gout] scatters [gout] back
    through the recorded argmax indices. *)

val avgpool2 : t -> t
val upsample_nearest2 : t -> t
(** 2x nearest-neighbour upsampling of a rank-3 tensor. *)

(** {1 Batched kernels (rank 4 activations [[n; c; h; w]])}

    Inference-time batching for the serve micro-batcher: a batch of [n]
    samples runs as {e one} kernel call, so the im2col/GEMM engine packs
    the weight matrix once and its parallel region covers [n] times the
    work.  Every batched kernel is bit-identical to [n] independent
    per-sample calls — batching adds GEMM columns, it never reorders a
    floating-point accumulation. *)

val stack : t array -> t
(** [stack [|t0; ...; t_{n-1}|]] concatenates [n] same-shaped tensors
    into a tensor of shape [n :: shape t0] (fresh storage).
    @raise Invalid_argument on an empty array or a shape mismatch. *)

val unstack : t -> t array
(** Inverse of {!stack}: split the leading axis into [n] independently
    owned tensors. *)

val conv2d_batch :
  ?stride:int -> ?pad:int -> ?engine:conv_engine -> t -> weight:t ->
  bias:t option -> t
(** {!conv2d} over a batch: [x : [n; ci; h; w]] -> [[n; co; oh; ow]].
    Under [`Auto]/[`Gemm] the whole batch is lowered to a single
    im2col/GEMM with [n * oh * ow] columns. *)

val conv2d_transpose_batch :
  ?stride:int -> ?pad:int -> ?engine:conv_engine -> t -> weight:t ->
  bias:t option -> t
(** {!conv2d_transpose} over a batch ([x : [n; ci; h; w]]). *)

val maxpool2_batch : t -> t
(** 2x2, stride-2 max pooling over a rank-4 batch (no argmax — this is
    an inference-only kernel). *)

val concat_channels_batch : t list -> t
(** Concatenate rank-4 tensors along the channel axis; batch and
    spatial dimensions must agree. *)

(** {1 Quantized int8 inference kernels}

    An opt-in low-precision forward path: weights are quantized once,
    per output channel, to symmetric int8 (scale [max|W[o]|/127], zero
    point 0); activations are quantized per {e sample} at call time.
    The int8xint8 products accumulate in exact integer arithmetic
    (three consecutive k-elements lane-packed per native word; one
    integer multiply of a forward-packed weight word against a
    reverse-packed activation word lands their 3-term dot product in a
    single lane) and requantize to float32 per output element, so
    results are bit-identical at every [DCO3D_JOBS] value and a
    sample's result never depends on which batch it was coalesced
    into. *)

type qweight
(** A packed per-channel-quantized convolution weight: biased int8
    bytes, one float scale and one precomputed byte-sum per output
    channel. *)

val quantize_weight : t -> qweight
(** [quantize_weight w] quantizes a rank-4 [[co; ci; kh; kw]] weight.
    Zero weights map to exact zero; the representable range is
    symmetric ([-127 .. 127], never [-128]).
    @raise Invalid_argument unless [w] is rank 4. *)

val dequantize_weight : qweight -> t
(** Reconstruct the float weight [q . scale] (the "fake-quantized"
    tensor the int8 path effectively convolves with). *)

val qweight_shape : qweight -> int array
val qweight_scales : qweight -> float array

val qweight_bytes : qweight -> Bytes.t
(** Copy of the biased int8 payload (row-major [[co; ci*kh*kw]], byte =
    [q + 128]) — what persistence layers store and fingerprints
    digest. *)

val qweight_of_parts :
  shape:int array -> data:Bytes.t -> scales:float array -> qweight
(** Rebuild a {!qweight} from its persisted parts, revalidating shape
    agreement, scale positivity and the symmetric byte range.
    @raise Invalid_argument on any inconsistency. *)

val conv2d_batch_i8 :
  ?stride:int -> ?pad:int -> ?act:[ `None | `Relu | `Leaky of float ] ->
  t -> qweight:qweight -> bias:t option -> t
(** {!conv2d_batch} on the int8 path: float [[n; ci; h; w]] in, float
    [[n; co; oh; ow]] out, int8 im2col/GEMM inside with bias and the
    optional activation fused into the requantizing epilogue.
    Per-sample activation quantization makes element [b] of the result
    bit-identical to a singleton call on sample [b] alone. *)

val quantize_weight_transposed : t -> qweight
(** Quantize a {e transposed}-convolution weight ([[ci; co; kh; kw]])
    into the equivalent forward kernel (output-channel-major,
    spatially flipped), with per-output-channel scales, for use with
    {!conv2d_transpose_batch_i8}.
    @raise Invalid_argument unless the weight is rank 4. *)

val conv2d_transpose_batch_i8 :
  ?stride:int -> ?pad:int -> ?act:[ `None | `Relu | `Leaky of float ] ->
  t -> qweight:qweight -> bias:t option -> t
(** {!conv2d_transpose_batch} on the int8 path: runs the stride-1
    quantized convolution of a {!quantize_weight_transposed} kernel
    over the zero-stuffed input.  Same determinism and per-sample
    guarantees as {!conv2d_batch_i8}.
    @raise Invalid_argument if [pad >= kh] or [pad >= kw]. *)

val gemm_i8_exact : m:int -> k:int -> n:int -> Bytes.t -> Bytes.t -> int array
(** [gemm_i8_exact ~m ~k ~n a b] multiplies biased-int8 matrices
    [a : m x k] and [b : k x n] (row-major bytes, byte = value + 128)
    through the lane-packed microkernel and returns the raw integer
    dot products [sum_p qa(i,p) . qb(p,j)] — the int32 accumulator
    contents, exposed for eps=0 property tests against a reference
    loop.
    @raise Invalid_argument on size mismatches. *)

(** {1 Map utilities (rank 2 and 3)} *)

val resize_nearest : t -> int -> int -> t
(** [resize_nearest m h w] resizes a rank-2 map with nearest-neighbour
    interpolation, preserving pixel magnitudes (paper, section
    III-B3). *)

val concat_channels : t list -> t
(** Stack rank-3 tensors along the channel axis (spatial dims must
    agree); rank-2 inputs are treated as single channels. *)

val slice_channels : t -> int -> int -> t
(** [slice_channels x lo n] extracts channels [lo..lo+n-1] as a copy. *)

val channel : t -> int -> t
(** [channel x c] extracts channel [c] of a rank-3 tensor as a rank-2
    map (copy). *)

val pad2d : t -> int -> t
(** Zero-pad the two trailing spatial dimensions by [p] on each side. *)

val rot90 : t -> t
(** Rotate a rank-2 map counter-clockwise by 90 degrees; for rank-3,
    rotates every channel. *)

val flip_h : t -> t
(** Mirror the last (width) axis. *)

val flip_v : t -> t
(** Mirror the height axis. *)

(** {1 Comparison and printing} *)

val approx_equal : ?eps:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
