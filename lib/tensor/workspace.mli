(** Grow-only, per-domain scratch arena for kernel workspaces.

    Hot kernels (packed GEMM tiles, im2col column blocks, RUDY partial
    congestion maps) borrow float buffers here instead of allocating
    fresh arrays per call.  Each domain owns a private arena
    ([Domain.DLS]), so borrowing is lock-free and pool workers never
    contend; buffers only ever grow, so steady-state workloads — the
    [Predictor.train] epoch loop re-running the same convolution shapes
    every step — perform zero scratch allocations.

    Borrowed buffers may be {e larger} than requested (capacities round
    up to powers of two) and contain stale data; callers must write
    before reading, or use {!with_zeroed}.  Borrows nest: each
    [with_floats] gets a distinct slot. *)

val with_floats : int -> (float array -> 'a) -> 'a
(** [with_floats n f] calls [f buf] with a scratch buffer of at least
    [n] floats and returns the result; the buffer returns to the arena
    afterwards (also on exception).  Contents are unspecified — write
    before reading.  The buffer must not escape [f].
    @raise Invalid_argument on negative [n]. *)

val with_zeroed : int -> (float array -> 'a) -> 'a
(** Like {!with_floats} but indices [0 .. n-1] are zeroed first. *)

val with_bytes : int -> (Bytes.t -> 'a) -> 'a
(** [with_bytes n f] borrows a scratch byte buffer of at least [n]
    bytes — the int8 engine's quantized activations and im2col scan
    lines.  Same lifecycle and caveats as {!with_floats}: contents are
    unspecified, the buffer must not escape [f].
    @raise Invalid_argument on negative [n]. *)

val with_ints : int -> (int array -> 'a) -> 'a
(** [with_ints n f] borrows a scratch int buffer of at least [n]
    words — the int8 GEMM's lane-packed tiles and column sums.  Same
    lifecycle and caveats as {!with_floats}.
    @raise Invalid_argument on negative [n]. *)

val live_floats : unit -> int
(** Floats currently retained by this domain's arena (capacity, whether
    borrowed or free). *)

val live_scratch_bytes : unit -> int
(** Total bytes retained by this domain's arena across all three pools
    (float, byte and int slots). *)

val borrows : unit -> int
(** Borrows served on this domain since the last {!reset}. *)

val grows : unit -> int
(** Borrows that had to allocate or grow a slot — in steady state this
    stops increasing while {!borrows} keeps counting. *)

val reset : unit -> unit
(** Drop this domain's retained buffers (e.g. after a one-off huge
    kernel).  @raise Invalid_argument if a buffer is still borrowed. *)
