(** Small dense / matrix-free linear algebra.

    Used by the quadratic placer (conjugate gradient on the star-model
    Laplacian) and by the Gaussian-process regressor behind the
    Pin-3D+BO baseline (Cholesky factorization of the kernel matrix). *)

val cholesky : Tensor.t -> Tensor.t
(** [cholesky a] returns the lower-triangular [l] with [l l^T = a] for a
    symmetric positive-definite rank-2 tensor.
    @raise Failure if [a] is not positive definite. *)

val solve_lower : Tensor.t -> Tensor.t -> Tensor.t
(** [solve_lower l b] solves [l x = b] by forward substitution
    ([l] lower-triangular, [b] rank 1). *)

val solve_upper : Tensor.t -> Tensor.t -> Tensor.t
(** [solve_upper u b] solves [u x = b] by back substitution
    ([u] upper-triangular, [b] rank 1). *)

val solve_lower_transposed : Tensor.t -> Tensor.t -> Tensor.t
(** [solve_lower_transposed l b] solves [l^T x = b] by back
    substitution, reading [l] (lower-triangular) column-wise instead of
    materializing its transpose.  Equivalent to
    [solve_upper (Tensor.transpose2 l) b] without the allocation. *)

val cholesky_solve : Tensor.t -> Tensor.t -> Tensor.t
(** [cholesky_solve l b] solves [a x = b] given [l = cholesky a].
    Uses {!solve_lower} then {!solve_lower_transposed}; no transpose is
    allocated, so repeated small solves (thermal boundary blocks, the
    BO regressor) stay allocation-light. *)

type cg_status =
  | Converged  (** residual dropped below the tolerance *)
  | Max_iter  (** iteration budget exhausted, residual still above tol *)
  | Breakdown
      (** [p·Ap <= 0] — the operator is not positive definite along the
          current search direction; the iterate up to that point is
          returned *)

val string_of_cg_status : cg_status -> string

val conjugate_gradient :
  ?max_iter:int ->
  ?tol:float ->
  ?iterations_out:int ref ->
  ?status_out:cg_status ref ->
  (float array -> float array) ->
  float array ->
  float array ->
  float array
(** [conjugate_gradient matvec b x0] solves the SPD system
    [a x = b] where [a] is only available as a matrix-vector product.
    Returns the (possibly early-stopped) iterate.  [x0] is the starting
    point and is not mutated.  Defaults: [max_iter = 200],
    [tol = 1e-8] on the residual norm relative to [||b||].  When
    [iterations_out] is given, the number of iterations actually run is
    stored into it (callers use this to export solver telemetry); a
    breakdown after [k] steps reports [k], not [max_iter].  When
    [status_out] is given, it receives {!Converged}, {!Max_iter}, or
    {!Breakdown} so callers can distinguish "lost positive-definiteness
    after 3 iters" from "ran out of iterations". *)
