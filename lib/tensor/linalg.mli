(** Small dense / matrix-free linear algebra.

    Used by the quadratic placer (conjugate gradient on the star-model
    Laplacian) and by the Gaussian-process regressor behind the
    Pin-3D+BO baseline (Cholesky factorization of the kernel matrix). *)

val cholesky : Tensor.t -> Tensor.t
(** [cholesky a] returns the lower-triangular [l] with [l l^T = a] for a
    symmetric positive-definite rank-2 tensor.
    @raise Failure if [a] is not positive definite. *)

val solve_lower : Tensor.t -> Tensor.t -> Tensor.t
(** [solve_lower l b] solves [l x = b] by forward substitution
    ([l] lower-triangular, [b] rank 1). *)

val solve_upper : Tensor.t -> Tensor.t -> Tensor.t
(** [solve_upper u b] solves [u x = b] by back substitution
    ([u] upper-triangular, [b] rank 1). *)

val cholesky_solve : Tensor.t -> Tensor.t -> Tensor.t
(** [cholesky_solve l b] solves [a x = b] given [l = cholesky a]. *)

val conjugate_gradient :
  ?max_iter:int ->
  ?tol:float ->
  ?iterations_out:int ref ->
  (float array -> float array) ->
  float array ->
  float array ->
  float array
(** [conjugate_gradient matvec b x0] solves the SPD system
    [a x = b] where [a] is only available as a matrix-vector product.
    Returns the (possibly early-stopped) iterate.  [x0] is the starting
    point and is not mutated.  Defaults: [max_iter = 200],
    [tol = 1e-8] on the residual norm relative to [||b||].  When
    [iterations_out] is given, the number of iterations actually run is
    stored into it (callers use this to export solver telemetry). *)
