(** Deterministic pseudo-random number generation.

    All stochastic components of the reproduction (netlist generators,
    placement-parameter sampling, weight initialization, data
    augmentation, Bayesian-optimization proposals) draw from this module
    so that every experiment is reproducible from a single integer
    seed.  The generator is SplitMix64, which is trivially splittable:
    independent substreams are derived with {!split} so that changing
    the number of draws in one subsystem does not perturb another. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from an integer seed. *)

val split : t -> t
(** [split t] derives an independent generator; [t] advances once. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing [t]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Requires [n > 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val uniform : t -> float
(** Uniform in [\[0, 1)]. *)

val range : t -> float -> float -> float
(** [range t lo hi] is uniform in [\[lo, hi)]. *)

val bool : t -> bool
(** Fair coin flip. *)

val gaussian : ?mu:float -> ?sigma:float -> t -> float
(** Normal deviate via Box-Muller ([mu = 0.], [sigma = 1.] by default).

    {b Stream-layout guarantee.}  Each call consumes exactly two
    uniforms in a fixed, explicitly sequenced order: first the
    rejection-sampled magnitude draw (re-drawn while [<= 1e-300], which
    in practice never recurs), then the phase draw.  The layout is part
    of this module's interface — seeded placements and datasets depend
    on it bit-for-bit — and is pinned by a regression test, so it must
    not change across compilers, flambda settings, or refactors. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniformly random element. Requires a non-empty array. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniformly random permutation of [0..n-1]. *)
