type t = { shape : int array; data : float array }

module Pool = Dco3d_parallel.Pool

(* Per-kernel parallel thresholds, in scalar multiply-adds (MACs).
   A kernel below its threshold stays on the calling domain: pool-v2
   dispatch costs a couple of microseconds (two atomic writes plus a
   worker wake-up), so a region is only worth opening when every helper
   gets well over that in work.  The crossovers were calibrated per
   kernel against the PR 1 bench shapes (BENCH_kernels.json): the
   packed GEMM amortizes dispatch fastest (dense FMAs), the conv
   kernels pay an extra im2col pass first, and matvec is memory-bound
   (one float of traffic per MAC leaves little for extra cores), so
   each gets its own floor instead of PR 1's single global
   par_threshold = 1 lsl 16, which sent sub-crossover shapes to the
   pool at a loss.

     kernel                  threshold (MACs)  first clearly-winning shape
     matmul / packed GEMM    1 lsl 17          128 x 128 x 128
     conv2d family           1 lsl 17          8ch 32x32, 3x3 kernel
     matvec                  1 lsl 18          512 x 512

   The guards depend only on the problem size — never on the job
   count — so the sequential and pooled paths agree bit-for-bit at
   every DCO3D_JOBS value. *)
let matmul_par_macs = 1 lsl 17
let conv_par_macs = 1 lsl 17
let matvec_par_macs = 1 lsl 18

(* Below this many MACs a convolution skips the im2col/GEMM lowering:
   packing would cost more than the arithmetic it feeds.  The two conv
   paths are bit-identical, so the switch is invisible to callers. *)
let conv_gemm_min_macs = 4096

let numel_of_shape shape = Array.fold_left ( * ) 1 shape

let make shape data =
  let n = numel_of_shape shape in
  if Array.length data <> n then
    invalid_arg
      (Printf.sprintf "Tensor.make: shape implies %d elements, got %d" n
         (Array.length data));
  Array.iter
    (fun d -> if d < 0 then invalid_arg "Tensor.make: negative dimension")
    shape;
  { shape = Array.copy shape; data }

let zeros shape = make shape (Array.make (numel_of_shape shape) 0.)
let ones shape = make shape (Array.make (numel_of_shape shape) 1.)
let full shape v = make shape (Array.make (numel_of_shape shape) v)
let scalar v = make [||] [| v |]
let of_array1 a = make [| Array.length a |] (Array.copy a)

let of_array2 rows =
  let m = Array.length rows in
  if m = 0 then make [| 0; 0 |] [||]
  else begin
    let n = Array.length rows.(0) in
    Array.iter
      (fun r ->
        if Array.length r <> n then
          invalid_arg "Tensor.of_array2: ragged rows")
      rows;
    let data = Array.make (m * n) 0. in
    for i = 0 to m - 1 do
      Array.blit rows.(i) 0 data (i * n) n
    done;
    make [| m; n |] data
  end

let shape t = Array.copy t.shape
let numel t = Array.length t.data
let rank t = Array.length t.shape
let dim t i = t.shape.(i)
let copy t = { shape = Array.copy t.shape; data = Array.copy t.data }
let same_shape a b = a.shape = b.shape

let reshape t shape =
  let n = numel_of_shape shape in
  if n <> Array.length t.data then
    invalid_arg "Tensor.reshape: element count mismatch";
  (* the data array is deliberately aliased (see the interface); the
     shape array is copied so a caller mutating its own array cannot
     corrupt the tensor *)
  { shape = Array.copy shape; data = t.data }

let reshape_copy t shape =
  let n = numel_of_shape shape in
  if n <> Array.length t.data then
    invalid_arg "Tensor.reshape_copy: element count mismatch";
  { shape = Array.copy shape; data = Array.copy t.data }

(* Row-major flat offset of a multi-index. *)
let offset t idx =
  let r = Array.length t.shape in
  if Array.length idx <> r then invalid_arg "Tensor: index rank mismatch";
  let off = ref 0 in
  for k = 0 to r - 1 do
    let i = idx.(k) in
    if i < 0 || i >= t.shape.(k) then invalid_arg "Tensor: index out of bounds";
    off := (!off * t.shape.(k)) + i
  done;
  !off

let init shape f =
  let n = numel_of_shape shape in
  let r = Array.length shape in
  let idx = Array.make r 0 in
  let data =
    Array.init n (fun _ ->
        let v = f idx in
        (* advance the multi-index (row-major). *)
        let k = ref (r - 1) in
        let carry = ref true in
        while !carry && !k >= 0 do
          idx.(!k) <- idx.(!k) + 1;
          if idx.(!k) >= shape.(!k) then begin
            idx.(!k) <- 0;
            decr k
          end
          else carry := false
        done;
        v)
  in
  make shape data

let get t idx = t.data.(offset t idx)
let set t idx v = t.data.(offset t idx) <- v
let get_flat t i = t.data.(i)
let set_flat t i v = t.data.(i) <- v

let get2 t i j = t.data.((i * t.shape.(1)) + j)
let set2 t i j v = t.data.((i * t.shape.(1)) + j) <- v

let get3 t c i j =
  let h = t.shape.(1) and w = t.shape.(2) in
  t.data.((((c * h) + i) * w) + j)

let set3 t c i j v =
  let h = t.shape.(1) and w = t.shape.(2) in
  t.data.((((c * h) + i) * w) + j) <- v

let rand_uniform rng ?(lo = 0.) ?(hi = 1.) shape =
  let n = numel_of_shape shape in
  make shape (Array.init n (fun _ -> Rng.range rng lo hi))

let randn rng ?(mu = 0.) ?(sigma = 1.) shape =
  let n = numel_of_shape shape in
  make shape (Array.init n (fun _ -> Rng.gaussian ~mu ~sigma rng))

let kaiming rng ~fan_in shape =
  if fan_in <= 0 then invalid_arg "Tensor.kaiming: fan_in must be positive";
  randn rng ~sigma:(sqrt (2. /. float_of_int fan_in)) shape

let map f t = { shape = t.shape; data = Array.map f t.data }

let map2 f a b =
  if not (same_shape a b) then invalid_arg "Tensor.map2: shape mismatch";
  let n = Array.length a.data in
  let data = Array.make n 0. in
  for i = 0 to n - 1 do
    Array.unsafe_set data i
      (f (Array.unsafe_get a.data i) (Array.unsafe_get b.data i))
  done;
  { shape = a.shape; data }

let iteri_flat f t = Array.iteri f t.data

let add a b = map2 ( +. ) a b
let sub a b = map2 ( -. ) a b
let mul a b = map2 ( *. ) a b
let div a b = map2 ( /. ) a b
let neg t = map (fun x -> -.x) t
let scale s t = map (fun x -> s *. x) t
let add_scalar s t = map (fun x -> s +. x) t
let relu t = map (fun x -> if x > 0. then x else 0.) t
let sigmoid t = map (fun x -> 1. /. (1. +. exp (-.x))) t
let tanh_ t = map tanh t
let exp_ t = map exp t
let log_ t = map log t
let sqrt_ t = map sqrt t
let sqr t = map (fun x -> x *. x) t

let clip ~lo ~hi t =
  map (fun x -> if x < lo then lo else if x > hi then hi else x) t

let axpy ~alpha x y =
  if not (same_shape x y) then invalid_arg "Tensor.axpy: shape mismatch";
  let n = Array.length x.data in
  for i = 0 to n - 1 do
    Array.unsafe_set y.data i
      (Array.unsafe_get y.data i +. (alpha *. Array.unsafe_get x.data i))
  done

let fill t v = Array.fill t.data 0 (Array.length t.data) v

let sum t = Array.fold_left ( +. ) 0. t.data

let mean t =
  let n = Array.length t.data in
  if n = 0 then 0. else sum t /. float_of_int n

let max_elt t = Array.fold_left Float.max neg_infinity t.data
let min_elt t = Array.fold_left Float.min infinity t.data
let fold f acc t = Array.fold_left f acc t.data

let dot a b =
  if not (same_shape a b) then invalid_arg "Tensor.dot: shape mismatch";
  let acc = ref 0. in
  for i = 0 to Array.length a.data - 1 do
    acc := !acc +. (Array.unsafe_get a.data i *. Array.unsafe_get b.data i)
  done;
  !acc

let frobenius t = sqrt (dot t t)

(* ------------------------------------------------------------------ *)
(* Packed GEMM engine.                                                 *)
(*                                                                     *)
(* C (m x n) += A (m x k) . B (k x n), with B pre-packed into quads of *)
(* four columns so the register-tiled micro-kernel streams it with     *)
(* unit stride.  Bit-exactness contract: for every output element the  *)
(* inner index [p] is accumulated in strictly ascending order in one   *)
(* continuous left-to-right chain, which is exactly the order of the   *)
(* direct reference loops — so the GEMM path, the direct path, and     *)
(* any row-banding across domains all produce identical bits.         *)
(* ------------------------------------------------------------------ *)

(* Packed layout of a (k x n) B: full quads first — quad q holds        *)
(* columns 4q..4q+3, element (p, 4q+t) at q*4k + 4p + t — then a tail   *)
(* block of r = n mod 4 columns with element (p, j) at nq*4k + p*r +    *)
(* (j - 4*nq).                                                          *)

(* Copy logical row [p] of B (given contiguously in [src] at            *)
(* [src_off .. src_off+n-1]) into the packed buffer [pb]. *)
let pack_row ~k ~n pb p src src_off =
  let nq = n lsr 2 in
  let r = n - (nq lsl 2) in
  let k4 = k lsl 2 in
  let p4 = p lsl 2 in
  for q = 0 to nq - 1 do
    let dst = (q * k4) + p4 in
    let s = src_off + (q lsl 2) in
    Array.unsafe_set pb dst (Array.unsafe_get src s);
    Array.unsafe_set pb (dst + 1) (Array.unsafe_get src (s + 1));
    Array.unsafe_set pb (dst + 2) (Array.unsafe_get src (s + 2));
    Array.unsafe_set pb (dst + 3) (Array.unsafe_get src (s + 3))
  done;
  if r > 0 then begin
    let dst = (nq * k4) + (p * r) in
    let s = src_off + (nq lsl 2) in
    for t = 0 to r - 1 do
      Array.unsafe_set pb (dst + t) (Array.unsafe_get src (s + t))
    done
  end

(* Row band [i0, i1) of C.  Four independent accumulator chains per     *)
(* column quad keep the FP adder pipeline full (one serial add chain    *)
(* per output element was the old kernel's bottleneck); each chain      *)
(* still sums its p-terms in ascending order starting from C's current  *)
(* value, preserving the reference bit pattern.  The 4k-float quad      *)
(* block stays L1-resident across the band's rows. *)
let gemm_band ~k ~n ad pb out i0 i1 =
  let nq = n lsr 2 in
  let r = n - (nq lsl 2) in
  let k4 = k lsl 2 in
  for q = 0 to nq - 1 do
    let base = q * k4 in
    let jcol = q lsl 2 in
    for i = i0 to i1 - 1 do
      let arow = i * k in
      let orow = (i * n) + jcol in
      let acc0 = ref (Array.unsafe_get out orow) in
      let acc1 = ref (Array.unsafe_get out (orow + 1)) in
      let acc2 = ref (Array.unsafe_get out (orow + 2)) in
      let acc3 = ref (Array.unsafe_get out (orow + 3)) in
      for p = 0 to k - 1 do
        let av = Array.unsafe_get ad (arow + p) in
        let bb = base + (p lsl 2) in
        acc0 := !acc0 +. (av *. Array.unsafe_get pb bb);
        acc1 := !acc1 +. (av *. Array.unsafe_get pb (bb + 1));
        acc2 := !acc2 +. (av *. Array.unsafe_get pb (bb + 2));
        acc3 := !acc3 +. (av *. Array.unsafe_get pb (bb + 3))
      done;
      Array.unsafe_set out orow !acc0;
      Array.unsafe_set out (orow + 1) !acc1;
      Array.unsafe_set out (orow + 2) !acc2;
      Array.unsafe_set out (orow + 3) !acc3
    done
  done;
  if r > 0 then begin
    let base = nq * k4 in
    let jcol = nq lsl 2 in
    for i = i0 to i1 - 1 do
      let arow = i * k in
      let orow = (i * n) + jcol in
      for t = 0 to r - 1 do
        let acc = ref (Array.unsafe_get out (orow + t)) in
        for p = 0 to k - 1 do
          acc :=
            !acc
            +. (Array.unsafe_get ad (arow + p)
               *. Array.unsafe_get pb (base + (p * r) + t))
        done;
        Array.unsafe_set out (orow + t) !acc
      done
    done
  end

(* [out] must hold the addend (usually zeros).  Row banding never       *)
(* changes result bits, so the parallel split is free to follow the     *)
(* machine. *)
let gemm ?(par_macs = matmul_par_macs) ~m ~k ~n ad pb out =
  if m > 0 && n > 0 && k > 0 then
    if m * n * k < par_macs then gemm_band ~k ~n ad pb out 0 m
    else
      Pool.for_chunks
        ~chunk:(max 1 ((m + 63) / 64))
        0 m
        (fun i0 i1 -> gemm_band ~k ~n ad pb out i0 i1)

let matmul a b =
  if rank a <> 2 || rank b <> 2 then invalid_arg "Tensor.matmul: rank-2 only";
  let m = a.shape.(0) and k = a.shape.(1) in
  let k' = b.shape.(0) and n = b.shape.(1) in
  if k <> k' then invalid_arg "Tensor.matmul: inner dimension mismatch";
  let out = Array.make (m * n) 0. in
  if m > 0 && n > 0 && k > 0 then
    Workspace.with_floats (k * n) (fun pb ->
        let bd = b.data in
        for p = 0 to k - 1 do
          pack_row ~k ~n pb p bd (p * n)
        done;
        gemm ~m ~k ~n a.data pb out);
  make [| m; n |] out

let transpose2 t =
  if rank t <> 2 then invalid_arg "Tensor.transpose2: rank-2 only";
  let m = t.shape.(0) and n = t.shape.(1) in
  let out = Array.make (m * n) 0. in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      Array.unsafe_set out ((j * m) + i) (Array.unsafe_get t.data ((i * n) + j))
    done
  done;
  make [| n; m |] out

let matvec a x =
  if rank a <> 2 || rank x <> 1 then invalid_arg "Tensor.matvec: bad ranks";
  let m = a.shape.(0) and k = a.shape.(1) in
  if x.shape.(0) <> k then invalid_arg "Tensor.matvec: dimension mismatch";
  let out = Array.make m 0. in
  let row_dot i =
    let row = i * k in
    let acc = ref 0. in
    for j = 0 to k - 1 do
      acc :=
        !acc +. (Array.unsafe_get a.data (row + j) *. Array.unsafe_get x.data j)
    done;
    out.(i) <- !acc
  in
  if m * k < matvec_par_macs then
    for i = 0 to m - 1 do
      row_dot i
    done
  else Pool.parallel_for 0 m row_dot;
  make [| m |] out

(* ------------------------------------------------------------------ *)
(* Convolution kernels.                                                *)
(*                                                                     *)
(* Each kernel has two bit-identical implementations: a direct loop    *)
(* nest (the reference, kept for tiny shapes and for property tests)   *)
(* and an im2col/GEMM lowering onto the packed micro-kernel above.     *)
(* The lowering is bit-exact because for every output element the      *)
(* im2col inner index enumerates contributions in exactly the order    *)
(* the direct loops visit them, and the zeros it substitutes for       *)
(* padding (or for skipped zero coefficients) are exact no-ops:        *)
(* adding +/-0. never changes a finite float's bits.                   *)
(* ------------------------------------------------------------------ *)

type conv_engine = [ `Auto | `Direct | `Gemm ]

let check_rank3 name t =
  if rank t <> 3 then invalid_arg (name ^ ": expected a rank-3 tensor")

let gemm_selected (engine : conv_engine) macs =
  match engine with
  | `Gemm -> true
  | `Direct -> false
  | `Auto -> macs >= conv_gemm_min_macs

(* For the two kernels whose im2col walks *input-pixel* geometry
   (backward_input, transpose), a stride of s leaves only 1/s^2 of the
   column entries structurally nonzero: the GEMM grinds through the
   zeros while the direct loop never visits them.  [`Auto] therefore
   keeps dilated shapes on the direct path; [`Gemm] still honours an
   explicit request (it is bit-identical, just slower). *)
let gemm_selected_dilated (engine : conv_engine) ~stride macs =
  match engine with
  | `Gemm -> true
  | `Direct -> false
  | `Auto -> stride = 1 && macs >= conv_gemm_min_macs

(* Bias goes in after the full contraction, matching the direct paths
   (which also add it last, once per output channel). *)
let add_channel_bias out ~n bias =
  match bias with
  | None -> ()
  | Some b ->
      for o = 0 to Array.length b.data - 1 do
        let bv = Array.unsafe_get b.data o in
        let base = o * n in
        for i = 0 to n - 1 do
          Array.unsafe_set out (base + i)
            (Array.unsafe_get out (base + i) +. bv)
        done
      done

(* One im2col scan line at stride 1: destination index [j] reads source
   index [j + shift], so the line is a zero prefix, one contiguous
   blit, and a zero suffix — no per-element bounds tests. *)
let fill_line_s1 row pos src srow ~shift ~len_src ~len_dst =
  let lo = min len_dst (max 0 (-shift)) in
  let hi = min (len_dst - 1) (len_src - 1 - shift) in
  if hi >= lo then begin
    if lo > 0 then Array.fill row pos lo 0.;
    Array.blit src (srow + lo + shift) row (pos + lo) (hi - lo + 1);
    if hi < len_dst - 1 then Array.fill row (pos + hi + 1) (len_dst - 1 - hi) 0.
  end
  else Array.fill row pos len_dst 0.

(* Forward lowering: A = weight as (co x ci*kh*kw) — its natural
   layout — and B(p, (oy,ox)) = x[c, oy*s + ky - pad, ox*s + kx - pad]
   (or 0. outside the input) for p = (c, ky, kx).  The inner index p
   ascends exactly like the direct loop's (c, ky, kx) nest. *)
let conv2d_gemm ~stride ~pad ~ci ~h ~w ~co ~kh ~kw ~oh ~ow xd wd bias =
  let kdim = ci * kh * kw in
  let ncol = oh * ow in
  let out = Array.make (co * ncol) 0. in
  Workspace.with_floats (kdim * ncol) (fun pb ->
      Workspace.with_floats ncol (fun row ->
          for p = 0 to kdim - 1 do
            let c = p / (kh * kw) in
            let rem = p mod (kh * kw) in
            let ky = rem / kw and kx = rem mod kw in
            let xbase = c * h * w in
            let pos = ref 0 in
            for oy = 0 to oh - 1 do
              let iy = (oy * stride) + ky - pad in
              if iy < 0 || iy >= h then begin
                Array.fill row !pos ow 0.;
                pos := !pos + ow
              end
              else begin
                let xrow = xbase + (iy * w) in
                if stride = 1 then begin
                  fill_line_s1 row !pos xd xrow ~shift:(kx - pad) ~len_src:w
                    ~len_dst:ow;
                  pos := !pos + ow
                end
                else
                  for ox = 0 to ow - 1 do
                    let ix = (ox * stride) + kx - pad in
                    Array.unsafe_set row !pos
                      (if ix >= 0 && ix < w then Array.unsafe_get xd (xrow + ix)
                       else 0.);
                    incr pos
                  done
              end
            done;
            pack_row ~k:kdim ~n:ncol pb p row 0
          done);
      gemm ~par_macs:conv_par_macs ~m:co ~k:kdim ~n:ncol wd pb out);
  add_channel_bias out ~n:ncol bias;
  out

(* Input-gradient lowering.  A plain col2im scatter would re-associate
   the sums, so instead the gradient is computed as a second GEMM over
   *input* pixels: A2[c, (o,ky,kx)] = w[o,c,ky,kx] and
   B2[(o,ky,kx), (iy,ix)] = gout[o, (iy+pad-ky)/s, (ix+pad-kx)/s] when
   that division is exact and in range, else 0.  For a fixed input
   pixel the direct path accumulates over (o, ky, kx) ascending — the
   same order p ascends here. *)
let conv2d_backward_input_gemm ~stride ~pad ~ci ~h ~w ~co ~kh ~kw ~oh ~ow gd wd
    =
  let kdim = co * kh * kw in
  let ncol = h * w in
  let gin = Array.make (ci * ncol) 0. in
  Workspace.with_floats (ci * kdim) (fun a2 ->
      for c = 0 to ci - 1 do
        let abase = c * kdim in
        for o = 0 to co - 1 do
          let wbase = ((o * ci) + c) * kh * kw in
          let dst = abase + (o * kh * kw) in
          for t = 0 to (kh * kw) - 1 do
            Array.unsafe_set a2 (dst + t) (Array.unsafe_get wd (wbase + t))
          done
        done
      done;
      Workspace.with_floats (kdim * ncol) (fun pb ->
          Workspace.with_floats ncol (fun row ->
              for p = 0 to kdim - 1 do
                let o = p / (kh * kw) in
                let rem = p mod (kh * kw) in
                let ky = rem / kw and kx = rem mod kw in
                let gbase = o * oh * ow in
                let pos = ref 0 in
                for iy = 0 to h - 1 do
                  let ty = iy + pad - ky in
                  let oy = ty / stride in
                  if ty >= 0 && ty mod stride = 0 && oy < oh then begin
                    let grow = gbase + (oy * ow) in
                    if stride = 1 then begin
                      fill_line_s1 row !pos gd grow ~shift:(pad - kx)
                        ~len_src:ow ~len_dst:w;
                      pos := !pos + w
                    end
                    else
                      for ix = 0 to w - 1 do
                        let tx = ix + pad - kx in
                        let ox = tx / stride in
                        Array.unsafe_set row !pos
                          (if tx >= 0 && tx mod stride = 0 && ox < ow then
                             Array.unsafe_get gd (grow + ox)
                           else 0.);
                        incr pos
                      done
                  end
                  else begin
                    Array.fill row !pos w 0.;
                    pos := !pos + w
                  end
                done;
                pack_row ~k:kdim ~n:ncol pb p row 0
              done);
          gemm ~par_macs:conv_par_macs ~m:ci ~k:kdim ~n:ncol a2 pb gin));
  gin

(* Weight-gradient lowering: A = gout as (co x oh*ow) — its natural
   layout — and B[(oy,ox), (c,ky,kx)] = x[c, oy*s+ky-pad, ox*s+kx-pad]
   or 0.  The direct path reduces each weight cell over (oy, ox)
   ascending, which is exactly how p ascends here. *)
let conv2d_backward_weight_gemm ~stride ~pad ~ci ~h ~w ~co ~kh ~kw ~oh ~ow gd
    xd =
  let kdim = oh * ow in
  let ncol = ci * kh * kw in
  let gw = Array.make (co * ncol) 0. in
  Workspace.with_floats (kdim * ncol) (fun pb ->
      Workspace.with_floats ncol (fun row ->
          for p = 0 to kdim - 1 do
            let oy = p / ow and ox = p mod ow in
            let pos = ref 0 in
            for c = 0 to ci - 1 do
              let xbase = c * h * w in
              for ky = 0 to kh - 1 do
                let iy = (oy * stride) + ky - pad in
                if iy < 0 || iy >= h then begin
                  Array.fill row !pos kw 0.;
                  pos := !pos + kw
                end
                else begin
                  let xrow = xbase + (iy * w) in
                  for kx = 0 to kw - 1 do
                    let ix = (ox * stride) + kx - pad in
                    Array.unsafe_set row !pos
                      (if ix >= 0 && ix < w then Array.unsafe_get xd (xrow + ix)
                       else 0.);
                    incr pos
                  done
                end
              done
            done;
            pack_row ~k:kdim ~n:ncol pb p row 0
          done);
      gemm ~par_macs:conv_par_macs ~m:co ~k:kdim ~n:ncol gd pb gw);
  gw

(* Transpose lowering: a transposed convolution is a stride-dilated
   correlation with the kernel flipped, so A3[o, (c,qy,qx)] =
   w[c, o, kh-1-qy, kw-1-qx] and B3[(c,qy,qx), (oy,ox)] = x[c, iy, ix]
   where iy = (oy + pad - (kh-1-qy)) / s when exact and in range, else
   0.  Flipping inside A3 makes p = (c, qy, qx) ascend in the same
   order the direct scatter visits contributions for a fixed output
   pixel: c ascending, then iy, then ix. *)
let conv2d_transpose_gemm ~stride ~pad ~ci ~h ~w ~co ~kh ~kw ~oh ~ow xd wd
    bias =
  let kdim = ci * kh * kw in
  let ncol = oh * ow in
  let out = Array.make (co * ncol) 0. in
  Workspace.with_floats (co * kdim) (fun a3 ->
      for o = 0 to co - 1 do
        let abase = o * kdim in
        for c = 0 to ci - 1 do
          let wbase = ((c * co) + o) * kh * kw in
          let dst = abase + (c * kh * kw) in
          for qy = 0 to kh - 1 do
            let wrow = wbase + ((kh - 1 - qy) * kw) in
            let drow = dst + (qy * kw) in
            for qx = 0 to kw - 1 do
              Array.unsafe_set a3 (drow + qx)
                (Array.unsafe_get wd (wrow + (kw - 1 - qx)))
            done
          done
        done
      done;
      Workspace.with_floats (kdim * ncol) (fun pb ->
          Workspace.with_floats ncol (fun row ->
              for p = 0 to kdim - 1 do
                let c = p / (kh * kw) in
                let rem = p mod (kh * kw) in
                let qy = rem / kw and qx = rem mod kw in
                let ky = kh - 1 - qy and kx = kw - 1 - qx in
                let xbase = c * h * w in
                let pos = ref 0 in
                for oy = 0 to oh - 1 do
                  let ty = oy + pad - ky in
                  let iy = ty / stride in
                  if ty >= 0 && ty mod stride = 0 && iy < h then begin
                    let xrow = xbase + (iy * w) in
                    for ox = 0 to ow - 1 do
                      let tx = ox + pad - kx in
                      let ix = tx / stride in
                      Array.unsafe_set row !pos
                        (if tx >= 0 && tx mod stride = 0 && ix < w then
                           Array.unsafe_get xd (xrow + ix)
                         else 0.);
                      incr pos
                    done
                  end
                  else begin
                    Array.fill row !pos ow 0.;
                    pos := !pos + ow
                  end
                done;
                pack_row ~k:kdim ~n:ncol pb p row 0
              done);
          gemm ~par_macs:conv_par_macs ~m:co ~k:kdim ~n:ncol a3 pb out));
  add_channel_bias out ~n:ncol bias;
  out

let conv2d ?(stride = 1) ?(pad = 0) ?(engine = `Auto) x ~weight ~bias =
  check_rank3 "Tensor.conv2d" x;
  if rank weight <> 4 then invalid_arg "Tensor.conv2d: weight must be rank 4";
  let ci = x.shape.(0) and h = x.shape.(1) and w = x.shape.(2) in
  let co = weight.shape.(0) in
  if weight.shape.(1) <> ci then
    invalid_arg "Tensor.conv2d: channel mismatch between input and weight";
  let kh = weight.shape.(2) and kw = weight.shape.(3) in
  let oh = ((h + (2 * pad) - kh) / stride) + 1 in
  let ow = ((w + (2 * pad) - kw) / stride) + 1 in
  if oh <= 0 || ow <= 0 then invalid_arg "Tensor.conv2d: empty output";
  if stride >= 1 && gemm_selected engine (co * ci * kh * kw * oh * ow) then
    make [| co; oh; ow |]
      (conv2d_gemm ~stride ~pad ~ci ~h ~w ~co ~kh ~kw ~oh ~ow x.data
         weight.data bias)
  else begin
    let out = Array.make (co * oh * ow) 0. in
    let xd = x.data and wd = weight.data in
    (* each output channel writes only its own [out] slice, so channels
       distribute freely across domains without changing any result bit *)
    let per_out_channel o =
      let wbase_o = o * ci * kh * kw in
      let obase_o = o * oh * ow in
      for c = 0 to ci - 1 do
        let wbase = wbase_o + (c * kh * kw) in
        let xbase = c * h * w in
        for ky = 0 to kh - 1 do
          for kx = 0 to kw - 1 do
            let wv = Array.unsafe_get wd (wbase + (ky * kw) + kx) in
            if wv <> 0. then
              for oy = 0 to oh - 1 do
                let iy = (oy * stride) + ky - pad in
                if iy >= 0 && iy < h then begin
                  let orow = obase_o + (oy * ow) in
                  let xrow = xbase + (iy * w) in
                  for ox = 0 to ow - 1 do
                    let ix = (ox * stride) + kx - pad in
                    if ix >= 0 && ix < w then
                      Array.unsafe_set out (orow + ox)
                        (Array.unsafe_get out (orow + ox)
                        +. (wv *. Array.unsafe_get xd (xrow + ix)))
                  done
                end
              done
          done
        done
      done;
      match bias with
      | Some b ->
          let bv = b.data.(o) in
          for i = 0 to (oh * ow) - 1 do
            Array.unsafe_set out (obase_o + i)
              (Array.unsafe_get out (obase_o + i) +. bv)
          done
      | None -> ()
    in
    if co * ci * kh * kw * oh * ow < conv_par_macs then
      for o = 0 to co - 1 do
        per_out_channel o
      done
    else Pool.parallel_for ~chunk:1 0 co per_out_channel;
    make [| co; oh; ow |] out
  end

let conv2d_backward_input ?(stride = 1) ?(pad = 0) ?(engine = `Auto)
    ~input_shape ~weight gout =
  check_rank3 "Tensor.conv2d_backward_input" gout;
  let ci = input_shape.(0) and h = input_shape.(1) and w = input_shape.(2) in
  let co = weight.shape.(0) in
  let kh = weight.shape.(2) and kw = weight.shape.(3) in
  let oh = gout.shape.(1) and ow = gout.shape.(2) in
  if
    stride >= 1
    && gemm_selected_dilated engine ~stride (co * ci * kh * kw * oh * ow)
  then
    make input_shape
      (conv2d_backward_input_gemm ~stride ~pad ~ci ~h ~w ~co ~kh ~kw ~oh ~ow
         gout.data weight.data)
  else begin
    let gin = Array.make (ci * h * w) 0. in
    let gd = gout.data and wd = weight.data in
    (* input channels own disjoint [gin] slices; within a channel the
       output channels accumulate in ascending order, a fixed reduction
       order at any job count *)
    let per_in_channel c =
      let ibase = c * h * w in
      for o = 0 to co - 1 do
        let wbase = ((o * ci) + c) * kh * kw in
        let gbase_o = o * oh * ow in
        for ky = 0 to kh - 1 do
          for kx = 0 to kw - 1 do
            let wv = Array.unsafe_get wd (wbase + (ky * kw) + kx) in
            if wv <> 0. then
              for oy = 0 to oh - 1 do
                let iy = (oy * stride) + ky - pad in
                if iy >= 0 && iy < h then begin
                  let grow = gbase_o + (oy * ow) in
                  let irow = ibase + (iy * w) in
                  for ox = 0 to ow - 1 do
                    let ix = (ox * stride) + kx - pad in
                    if ix >= 0 && ix < w then
                      Array.unsafe_set gin (irow + ix)
                        (Array.unsafe_get gin (irow + ix)
                        +. (wv *. Array.unsafe_get gd (grow + ox)))
                  done
                end
              done
          done
        done
      done
    in
    if co * ci * kh * kw * oh * ow < conv_par_macs then
      for c = 0 to ci - 1 do
        per_in_channel c
      done
    else Pool.parallel_for ~chunk:1 0 ci per_in_channel;
    make input_shape gin
  end

let conv2d_backward_weight ?(stride = 1) ?(pad = 0) ?(engine = `Auto) ~input
    ~weight_shape gout =
  check_rank3 "Tensor.conv2d_backward_weight" gout;
  let ci = input.shape.(0) and h = input.shape.(1) and w = input.shape.(2) in
  let co = weight_shape.(0) in
  let kh = weight_shape.(2) and kw = weight_shape.(3) in
  let oh = gout.shape.(1) and ow = gout.shape.(2) in
  if stride >= 1 && gemm_selected engine (co * ci * kh * kw * oh * ow) then
    make weight_shape
      (conv2d_backward_weight_gemm ~stride ~pad ~ci ~h ~w ~co ~kh ~kw ~oh ~ow
         gout.data input.data)
  else begin
    let gw = Array.make (co * ci * kh * kw) 0. in
    let gd = gout.data and xd = input.data in
    let per_out_channel o =
      let gbase_o = o * oh * ow in
      let wbase_o = o * ci * kh * kw in
      for c = 0 to ci - 1 do
        let xbase = c * h * w in
        let wbase = wbase_o + (c * kh * kw) in
        for ky = 0 to kh - 1 do
          for kx = 0 to kw - 1 do
            let acc = ref 0. in
            for oy = 0 to oh - 1 do
              let iy = (oy * stride) + ky - pad in
              if iy >= 0 && iy < h then begin
                let grow = gbase_o + (oy * ow) in
                let xrow = xbase + (iy * w) in
                for ox = 0 to ow - 1 do
                  let ix = (ox * stride) + kx - pad in
                  if ix >= 0 && ix < w then
                    acc :=
                      !acc
                      +. Array.unsafe_get gd (grow + ox)
                         *. Array.unsafe_get xd (xrow + ix)
                done
              end
            done;
            gw.(wbase + (ky * kw) + kx) <- !acc
          done
        done
      done
    in
    if co * ci * kh * kw * oh * ow < conv_par_macs then
      for o = 0 to co - 1 do
        per_out_channel o
      done
    else Pool.parallel_for ~chunk:1 0 co per_out_channel;
    make weight_shape gw
  end

let conv2d_transpose ?(stride = 1) ?(pad = 0) ?(engine = `Auto) x ~weight
    ~bias =
  check_rank3 "Tensor.conv2d_transpose" x;
  if rank weight <> 4 then
    invalid_arg "Tensor.conv2d_transpose: weight must be rank 4";
  let ci = x.shape.(0) and h = x.shape.(1) and w = x.shape.(2) in
  if weight.shape.(0) <> ci then
    invalid_arg "Tensor.conv2d_transpose: channel mismatch";
  let co = weight.shape.(1) in
  let kh = weight.shape.(2) and kw = weight.shape.(3) in
  let oh = ((h - 1) * stride) - (2 * pad) + kh in
  let ow = ((w - 1) * stride) - (2 * pad) + kw in
  if oh <= 0 || ow <= 0 then invalid_arg "Tensor.conv2d_transpose: empty output";
  if
    stride >= 1
    && gemm_selected_dilated engine ~stride (ci * co * kh * kw * h * w)
  then
    make [| co; oh; ow |]
      (conv2d_transpose_gemm ~stride ~pad ~ci ~h ~w ~co ~kh ~kw ~oh ~ow x.data
         weight.data bias)
  else begin
    let out = Array.make (co * oh * ow) 0. in
    let xd = x.data and wd = weight.data in
    (* output channels own disjoint [out] slices; within one, input
       channels scatter in ascending order — a fixed accumulation order *)
    let per_out_channel o =
      let obase = o * oh * ow in
      for c = 0 to ci - 1 do
        let xbase = c * h * w in
        let wbase = ((c * co) + o) * kh * kw in
        for iy = 0 to h - 1 do
          let xrow = xbase + (iy * w) in
          for ix = 0 to w - 1 do
            let xv = Array.unsafe_get xd (xrow + ix) in
            if xv <> 0. then
              for ky = 0 to kh - 1 do
                let oy = (iy * stride) + ky - pad in
                if oy >= 0 && oy < oh then begin
                  let orow = obase + (oy * ow) in
                  let wrow = wbase + (ky * kw) in
                  for kx = 0 to kw - 1 do
                    let ox = (ix * stride) + kx - pad in
                    if ox >= 0 && ox < ow then
                      Array.unsafe_set out (orow + ox)
                        (Array.unsafe_get out (orow + ox)
                        +. (xv *. Array.unsafe_get wd (wrow + kx)))
                  done
                end
              done
          done
        done
      done;
      match bias with
      | Some b ->
          let bv = b.data.(o) in
          for i = 0 to (oh * ow) - 1 do
            Array.unsafe_set out (obase + i)
              (Array.unsafe_get out (obase + i) +. bv)
          done
      | None -> ()
    in
    if ci * co * kh * kw * h * w < conv_par_macs then
      for o = 0 to co - 1 do
        per_out_channel o
      done
    else Pool.parallel_for ~chunk:1 0 co per_out_channel;
    make [| co; oh; ow |] out
  end

let maxpool2 x =
  check_rank3 "Tensor.maxpool2" x;
  let c = x.shape.(0) and h = x.shape.(1) and w = x.shape.(2) in
  if h mod 2 <> 0 || w mod 2 <> 0 then
    invalid_arg "Tensor.maxpool2: spatial dimensions must be even";
  let oh = h / 2 and ow = w / 2 in
  let out = Array.make (c * oh * ow) 0. in
  let arg = Array.make (c * oh * ow) 0 in
  for ch = 0 to c - 1 do
    let xbase = ch * h * w in
    let obase = ch * oh * ow in
    for oy = 0 to oh - 1 do
      for ox = 0 to ow - 1 do
        let i0 = xbase + (2 * oy * w) + (2 * ox) in
        let candidates = [| i0; i0 + 1; i0 + w; i0 + w + 1 |] in
        let best = ref candidates.(0) in
        let bestv = ref x.data.(candidates.(0)) in
        for k = 1 to 3 do
          let i = candidates.(k) in
          if x.data.(i) > !bestv then begin
            best := i;
            bestv := x.data.(i)
          end
        done;
        out.(obase + (oy * ow) + ox) <- !bestv;
        arg.(obase + (oy * ow) + ox) <- !best
      done
    done
  done;
  (make [| c; oh; ow |] out, arg)

let maxpool2_backward ~input_shape argmax gout =
  let gin = Array.make (numel_of_shape input_shape) 0. in
  Array.iteri (fun i src -> gin.(src) <- gin.(src) +. gout.data.(i)) argmax;
  make input_shape gin

let avgpool2 x =
  check_rank3 "Tensor.avgpool2" x;
  let c = x.shape.(0) and h = x.shape.(1) and w = x.shape.(2) in
  if h mod 2 <> 0 || w mod 2 <> 0 then
    invalid_arg "Tensor.avgpool2: spatial dimensions must be even";
  let oh = h / 2 and ow = w / 2 in
  let out = Array.make (c * oh * ow) 0. in
  for ch = 0 to c - 1 do
    let xbase = ch * h * w in
    let obase = ch * oh * ow in
    for oy = 0 to oh - 1 do
      for ox = 0 to ow - 1 do
        let i0 = xbase + (2 * oy * w) + (2 * ox) in
        out.(obase + (oy * ow) + ox) <-
          0.25
          *. (x.data.(i0) +. x.data.(i0 + 1) +. x.data.(i0 + w)
             +. x.data.(i0 + w + 1))
      done
    done
  done;
  make [| c; oh; ow |] out

let upsample_nearest2 x =
  check_rank3 "Tensor.upsample_nearest2" x;
  let c = x.shape.(0) and h = x.shape.(1) and w = x.shape.(2) in
  let oh = 2 * h and ow = 2 * w in
  let out = Array.make (c * oh * ow) 0. in
  for ch = 0 to c - 1 do
    let xbase = ch * h * w in
    let obase = ch * oh * ow in
    for oy = 0 to oh - 1 do
      let iy = oy / 2 in
      for ox = 0 to ow - 1 do
        out.(obase + (oy * ow) + ox) <- x.data.(xbase + (iy * w) + (ox / 2))
      done
    done
  done;
  make [| c; oh; ow |] out

(* ------------------------------------------------------------------ *)
(* Batched kernels (rank-4 [n; c; h; w]).                              *)
(*                                                                     *)
(* The batched forward convolution folds the whole batch into one      *)
(* im2col/GEMM call (kdim x n*oh*ow columns), so weight packing and    *)
(* the parallel-region dispatch amortize over the batch — the payoff   *)
(* the serve micro-batcher is built on.  Bit-exactness with the        *)
(* per-sample kernels is preserved because each output element is      *)
(* still one ascending-p dot chain: batching only adds columns to the  *)
(* GEMM, never reorders an accumulation.                               *)
(* ------------------------------------------------------------------ *)

let check_rank4 name t =
  if rank t <> 4 then invalid_arg (name ^ ": expected a rank-4 tensor")

let stack ts =
  if Array.length ts = 0 then invalid_arg "Tensor.stack: empty batch";
  let s0 = ts.(0).shape in
  Array.iter
    (fun t ->
      if t.shape <> s0 then invalid_arg "Tensor.stack: shape mismatch")
    ts;
  let per = Array.length ts.(0).data in
  let n = Array.length ts in
  let out = Array.make (n * per) 0. in
  Array.iteri (fun i t -> Array.blit t.data 0 out (i * per) per) ts;
  make (Array.append [| n |] s0) out

let unstack t =
  if rank t < 1 then invalid_arg "Tensor.unstack: rank must be >= 1";
  let n = t.shape.(0) in
  let rest = Array.sub t.shape 1 (rank t - 1) in
  let per = numel_of_shape rest in
  Array.init n (fun i -> make rest (Array.sub t.data (i * per) per))

let conv2d_batch ?(stride = 1) ?(pad = 0) ?(engine = `Auto) x ~weight ~bias =
  check_rank4 "Tensor.conv2d_batch" x;
  if rank weight <> 4 then
    invalid_arg "Tensor.conv2d_batch: weight must be rank 4";
  let n = x.shape.(0) and ci = x.shape.(1) in
  let h = x.shape.(2) and w = x.shape.(3) in
  let co = weight.shape.(0) in
  if weight.shape.(1) <> ci then
    invalid_arg "Tensor.conv2d_batch: channel mismatch between input and weight";
  let kh = weight.shape.(2) and kw = weight.shape.(3) in
  let oh = ((h + (2 * pad) - kh) / stride) + 1 in
  let ow = ((w + (2 * pad) - kw) / stride) + 1 in
  if oh <= 0 || ow <= 0 then invalid_arg "Tensor.conv2d_batch: empty output";
  let sample_macs = co * ci * kh * kw * oh * ow in
  if n > 0 && stride >= 1 && gemm_selected engine (n * sample_macs) then begin
    (* One GEMM for the whole batch: column j = (b, oy, ox). *)
    let kdim = ci * kh * kw in
    let ohw = oh * ow in
    let ncol = n * ohw in
    let g = Array.make (co * ncol) 0. in
    let xd = x.data in
    Workspace.with_floats (kdim * ncol) (fun pb ->
        Workspace.with_floats ncol (fun row ->
            for p = 0 to kdim - 1 do
              let c = p / (kh * kw) in
              let rem = p mod (kh * kw) in
              let ky = rem / kw and kx = rem mod kw in
              let pos = ref 0 in
              for b = 0 to n - 1 do
                let xbase = (((b * ci) + c) * h) * w in
                for oy = 0 to oh - 1 do
                  let iy = (oy * stride) + ky - pad in
                  if iy < 0 || iy >= h then begin
                    Array.fill row !pos ow 0.;
                    pos := !pos + ow
                  end
                  else begin
                    let xrow = xbase + (iy * w) in
                    if stride = 1 then begin
                      fill_line_s1 row !pos xd xrow ~shift:(kx - pad)
                        ~len_src:w ~len_dst:ow;
                      pos := !pos + ow
                    end
                    else
                      for ox = 0 to ow - 1 do
                        let ix = (ox * stride) + kx - pad in
                        Array.unsafe_set row !pos
                          (if ix >= 0 && ix < w then
                             Array.unsafe_get xd (xrow + ix)
                           else 0.);
                        incr pos
                      done
                  end
                done
              done;
              pack_row ~k:kdim ~n:ncol pb p row 0
            done);
        gemm ~par_macs:conv_par_macs ~m:co ~k:kdim ~n:ncol weight.data pb g);
    add_channel_bias g ~n:ncol bias;
    (* [co; n; oh*ow] -> [n; co; oh*ow] *)
    let out = Array.make (n * co * ohw) 0. in
    for o = 0 to co - 1 do
      let grow = o * ncol in
      for b = 0 to n - 1 do
        Array.blit g (grow + (b * ohw)) out ((((b * co) + o) * ohw)) ohw
      done
    done;
    make [| n; co; oh; ow |] out
  end
  else begin
    let sample_in = ci * h * w in
    let sample_out = co * oh * ow in
    let out = Array.make (n * sample_out) 0. in
    for b = 0 to n - 1 do
      let xb = make [| ci; h; w |] (Array.sub x.data (b * sample_in) sample_in) in
      let yb = conv2d ~stride ~pad ~engine xb ~weight ~bias in
      Array.blit yb.data 0 out (b * sample_out) sample_out
    done;
    make [| n; co; oh; ow |] out
  end

(* Per-sample dispatch: the decoder's stride-2 up-convolutions live on
   the direct path anyway (see [gemm_selected_dilated]), so there is no
   batched lowering to win — correctness and bit-identity come free. *)
let conv2d_transpose_batch ?(stride = 1) ?(pad = 0) ?(engine = `Auto) x
    ~weight ~bias =
  check_rank4 "Tensor.conv2d_transpose_batch" x;
  if rank weight <> 4 then
    invalid_arg "Tensor.conv2d_transpose_batch: weight must be rank 4";
  let n = x.shape.(0) and ci = x.shape.(1) in
  let h = x.shape.(2) and w = x.shape.(3) in
  if weight.shape.(0) <> ci then
    invalid_arg "Tensor.conv2d_transpose_batch: channel mismatch";
  let co = weight.shape.(1) in
  let kh = weight.shape.(2) and kw = weight.shape.(3) in
  let oh = ((h - 1) * stride) - (2 * pad) + kh in
  let ow = ((w - 1) * stride) - (2 * pad) + kw in
  if oh <= 0 || ow <= 0 then
    invalid_arg "Tensor.conv2d_transpose_batch: empty output";
  let sample_in = ci * h * w in
  let sample_out = co * oh * ow in
  let out = Array.make (n * sample_out) 0. in
  for b = 0 to n - 1 do
    let xb = make [| ci; h; w |] (Array.sub x.data (b * sample_in) sample_in) in
    let yb = conv2d_transpose ~stride ~pad ~engine xb ~weight ~bias in
    Array.blit yb.data 0 out (b * sample_out) sample_out
  done;
  make [| n; co; oh; ow |] out

let maxpool2_batch x =
  check_rank4 "Tensor.maxpool2_batch" x;
  let n = x.shape.(0) and c = x.shape.(1) in
  let h = x.shape.(2) and w = x.shape.(3) in
  (* pooling is per channel, so the batch and channel axes fold *)
  let y, _ = maxpool2 (reshape x [| n * c; h; w |]) in
  reshape y [| n; c; h / 2; w / 2 |]

let concat_channels_batch ts =
  match ts with
  | [] -> invalid_arg "Tensor.concat_channels_batch: empty list"
  | first :: _ ->
      List.iter (check_rank4 "Tensor.concat_channels_batch") ts;
      let n = first.shape.(0) in
      let h = first.shape.(2) and w = first.shape.(3) in
      List.iter
        (fun t ->
          if t.shape.(0) <> n || t.shape.(2) <> h || t.shape.(3) <> w then
            invalid_arg "Tensor.concat_channels_batch: batch/spatial mismatch")
        ts;
      let ctot = List.fold_left (fun acc t -> acc + t.shape.(1)) 0 ts in
      let hw = h * w in
      let out = Array.make (n * ctot * hw) 0. in
      for b = 0 to n - 1 do
        let pos = ref (b * ctot * hw) in
        List.iter
          (fun t ->
            let span = t.shape.(1) * hw in
            Array.blit t.data (b * span) out !pos span;
            pos := !pos + span)
          ts
      done;
      make [| n; ctot; h; w |] out

(* ------------------------------------------------------------------ *)
(* Quantized int8 inference kernels.                                   *)
(*                                                                     *)
(* Weights are quantized per output channel to symmetric int8           *)
(* (scale_o = max|W[o]|/127, zero point 0) and stored biased by +128    *)
(* as unsigned bytes.  Activations are quantized per *sample* at call   *)
(* time with the same symmetric scheme — per sample, not per batch, so  *)
(* a sample's int8 result is bit-identical whatever batch the serve     *)
(* micro-batcher happened to coalesce it into (the same contract the    *)
(* float path gives the result cache).                                  *)
(*                                                                     *)
(* The microkernel packs three consecutive *k*-elements per 63-bit      *)
(* word (lanes at bits 0/21/42): weight triples forward                 *)
(* (a0 + a1<<21 + a2<<42) and activation triples reversed               *)
(* (b2 + b1<<21 + b0<<42).  One integer multiply then lands             *)
(* a0b0 + a1b1 + a2b2 — a three-term dot product — in the bit-42 lane:  *)
(* the cross terms fall at lanes 0 and 21 below it, or at bits 63/84    *)
(* where they wrap off the top of OCaml's 63-bit (mod-2^63) integers.   *)
(* Up to 10 products accumulate before any lane can overflow            *)
(* (10 . 3 . 255^2 < 2^21), so one shift recovers 30 exact MACs.  All   *)
(* accumulation is exact integer arithmetic, so results are             *)
(* bit-identical at any DCO3D_JOBS split by construction; the float     *)
(* work (requantize scale, bias, activation) happens once per output    *)
(* element, in a fixed per-element order.                               *)
(*                                                                     *)
(* Bias correction: with ua = qa + 128 and ub = qb + 128,               *)
(*   sum_p qa.qb = sum_p ua.ub - 128.rowsum_a - 128.colsum_b + k.2^14   *)
(* rowsums are precomputed at weight-quantization time, colsums fall    *)
(* out of packing.                                                      *)
(* ------------------------------------------------------------------ *)

type qweight = {
  qw_shape : int array;  (* [co; ci; kh; kw] *)
  qw_data : Bytes.t;  (* co x (ci*kh*kw), biased: byte = q + 128 *)
  qw_scales : float array;  (* per output channel *)
  qw_rowsum : int array;  (* per output channel, sum of biased bytes *)
}

let qweight_shape qw = Array.copy qw.qw_shape
let qweight_scales qw = Array.copy qw.qw_scales
let qweight_bytes qw = Bytes.copy qw.qw_data

(* Round-half-away-from-zero without the [Float.round] C call: truncate
   after nudging by +-0.5.  The exact expression is part of the int8
   path's determinism contract (the parity tests replicate it). *)
let quantize_clamped v inv =
  let x = v *. inv in
  let q = int_of_float (if x >= 0. then x +. 0.5 else x -. 0.5) in
  if q > 127 then 127 else if q < -127 then -127 else q

(* Affine variant for activations: [clamp (round (v * inv) + z)].
   Same rounding expression as [quantize_clamped], shifted by the
   per-sample zero-point before the clamp. *)
let quantize_affine v inv z =
  let x = v *. inv in
  let q = z + int_of_float (if x >= 0. then x +. 0.5 else x -. 0.5) in
  if q > 127 then 127 else if q < -127 then -127 else q

let quantize_weight w =
  if rank w <> 4 then invalid_arg "Tensor.quantize_weight: weight must be rank 4";
  let co = w.shape.(0) in
  let kdim = w.shape.(1) * w.shape.(2) * w.shape.(3) in
  let data = Bytes.create (co * kdim) in
  let scales = Array.make co 1. in
  let rowsum = Array.make co 0 in
  let wd = w.data in
  for o = 0 to co - 1 do
    let base = o * kdim in
    let m = ref 0. in
    for p = 0 to kdim - 1 do
      let v = Float.abs (Array.unsafe_get wd (base + p)) in
      if v > !m then m := v
    done;
    let s = if !m > 0. then !m /. 127. else 1. in
    scales.(o) <- s;
    let inv = 1. /. s in
    let rs = ref 0 in
    for p = 0 to kdim - 1 do
      let q = quantize_clamped (Array.unsafe_get wd (base + p)) inv in
      Bytes.unsafe_set data (base + p) (Char.unsafe_chr (q + 128));
      rs := !rs + (q + 128)
    done;
    rowsum.(o) <- !rs
  done;
  { qw_shape = Array.copy w.shape; qw_data = data; qw_scales = scales;
    qw_rowsum = rowsum }

let dequantize_weight qw =
  let n = Bytes.length qw.qw_data in
  let co = qw.qw_shape.(0) in
  let kdim = n / max 1 co in
  let out = Array.make n 0. in
  for o = 0 to co - 1 do
    let s = qw.qw_scales.(o) in
    let base = o * kdim in
    for p = 0 to kdim - 1 do
      let q = Char.code (Bytes.unsafe_get qw.qw_data (base + p)) - 128 in
      Array.unsafe_set out (base + p) (float_of_int q *. s)
    done
  done;
  make (Array.copy qw.qw_shape) out

let qweight_of_parts ~shape ~data ~scales =
  if Array.length shape <> 4 then
    invalid_arg "Tensor.qweight_of_parts: shape must be rank 4";
  let co = shape.(0) in
  let kdim = shape.(1) * shape.(2) * shape.(3) in
  if co < 1 || kdim < 1 then
    invalid_arg "Tensor.qweight_of_parts: empty weight";
  if Bytes.length data <> co * kdim then
    invalid_arg "Tensor.qweight_of_parts: data length disagrees with shape";
  if Array.length scales <> co then
    invalid_arg "Tensor.qweight_of_parts: one scale per output channel required";
  Array.iter
    (fun s ->
      if not (Float.is_finite s) || s <= 0. then
        invalid_arg "Tensor.qweight_of_parts: scales must be finite and positive")
    scales;
  Bytes.iter
    (fun c ->
      if Char.code c < 1 then
        invalid_arg "Tensor.qweight_of_parts: byte outside the symmetric range")
    data;
  let rowsum = Array.make co 0 in
  for o = 0 to co - 1 do
    let base = o * kdim in
    let rs = ref 0 in
    for p = 0 to kdim - 1 do
      rs := !rs + Char.code (Bytes.unsafe_get data (base + p))
    done;
    rowsum.(o) <- !rs
  done;
  { qw_shape = Array.copy shape; qw_data = Bytes.copy data;
    qw_scales = Array.copy scales; qw_rowsum = rowsum }

(* ---- k-SWAR microkernel workers ----------------------------------- *)
(* Top-level tail-recursive loops keep every accumulator in a           *)
(* register: OCaml's amd64 convention passes ten int arguments in       *)
(* registers, where closure-captured refs would round-trip through      *)
(* stack slots on every iteration.  Each call runs [rem] <= 10 packed   *)
(* k-triples of one/two weight rows against one/two activation          *)
(* columns; the caller recovers each 3-term-dot lane with one shift.    *)

let rec qk2x2 wpb xcol iw ix ix2 rem s00 s01 s10 s11 =
  if rem <= 0 then (s00, s01, s10, s11)
  else
    let w0 = Array.unsafe_get wpb iw in
    let w1 = Array.unsafe_get wpb (iw + 1) in
    let x0 = Array.unsafe_get xcol ix in
    let x1 = Array.unsafe_get xcol ix2 in
    qk2x2 wpb xcol (iw + 2) (ix + 1) (ix2 + 1) (rem - 1) (s00 + (w0 * x0))
      (s01 + (w0 * x1)) (s10 + (w1 * x0)) (s11 + (w1 * x1))

let rec qk2x1 wpb xcol iw ix rem s0 s1 =
  if rem <= 0 then (s0, s1)
  else
    let w0 = Array.unsafe_get wpb iw in
    let w1 = Array.unsafe_get wpb (iw + 1) in
    let x0 = Array.unsafe_get xcol ix in
    qk2x1 wpb xcol (iw + 2) (ix + 1) (rem - 1) (s0 + (w0 * x0))
      (s1 + (w1 * x0))

(* Two-words-per-step unrolling of [qk2x2]; [rem] counts double
   steps.  Callers only use it for full 10-word spill blocks, so the
   odd tail never reaches it. *)
let rec qk2x2u wpb xcol iw ix ix2 rem s00 s01 s10 s11 =
  if rem <= 0 then (s00, s01, s10, s11)
  else
    let w0 = Array.unsafe_get wpb iw in
    let w1 = Array.unsafe_get wpb (iw + 1) in
    let w2 = Array.unsafe_get wpb (iw + 2) in
    let w3 = Array.unsafe_get wpb (iw + 3) in
    let x0 = Array.unsafe_get xcol ix in
    let x1 = Array.unsafe_get xcol ix2 in
    let x2 = Array.unsafe_get xcol (ix + 1) in
    let x3 = Array.unsafe_get xcol (ix2 + 1) in
    qk2x2u wpb xcol (iw + 4) (ix + 2) (ix2 + 2) (rem - 1)
      (s00 + (w0 * x0) + (w2 * x2))
      (s01 + (w0 * x1) + (w2 * x3))
      (s10 + (w1 * x0) + (w3 * x2))
      (s11 + (w1 * x1) + (w3 * x3))

(* Full-k dots for a 2x2 (rows x columns) tile, spilling the bit-42
   lane every 10 words: 10 . 3 . 255^2 < 2^21 keeps the dot lane from
   overflowing bit 62 and the cross-term lanes from carrying into it.
   Full blocks run the unrolled worker (5 double steps); the final
   partial block falls back to the single-step worker. *)
let qtile_2x2 wpb xcol wbase x0 x1 glen =
  let d00 = ref 0 and d01 = ref 0 and d10 = ref 0 and d11 = ref 0 in
  let g = ref 0 in
  while glen - !g >= 10 do
    let s00, s01, s10, s11 =
      qk2x2u wpb xcol (wbase + (2 * !g)) (x0 + !g) (x1 + !g) 5 0 0 0 0
    in
    d00 := !d00 + (s00 lsr 42);
    d01 := !d01 + (s01 lsr 42);
    d10 := !d10 + (s10 lsr 42);
    d11 := !d11 + (s11 lsr 42);
    g := !g + 10
  done;
  if !g < glen then begin
    let s00, s01, s10, s11 =
      qk2x2 wpb xcol (wbase + (2 * !g)) (x0 + !g) (x1 + !g) (glen - !g) 0 0 0 0
    in
    d00 := !d00 + (s00 lsr 42);
    d01 := !d01 + (s01 lsr 42);
    d10 := !d10 + (s10 lsr 42);
    d11 := !d11 + (s11 lsr 42)
  end;
  (!d00, !d01, !d10, !d11)

let qtile_2x1 wpb xcol wbase x0 glen =
  let d0 = ref 0 and d1 = ref 0 in
  let g = ref 0 in
  while !g < glen do
    let gb = min 10 (glen - !g) in
    let s0, s1 = qk2x1 wpb xcol (wbase + (2 * !g)) (x0 + !g) gb 0 0 in
    d0 := !d0 + (s0 lsr 42);
    d1 := !d1 + (s1 lsr 42);
    g := !g + gb
  done;
  (!d0, !d1)

(* Pack A rows k-wise forward, rows interleaved in pairs so the 2x2
   tile loads both rows' words from adjacent slots.  K-tail elements
   and the dummy row of an odd pairing pack as 128 (the biased zero);
   the bias correction accounts for the pad exactly. *)
let qpack_rows ~co ~kdim getb =
  let glen = (kdim + 2) / 3 in
  let pairs = (co + 1) / 2 in
  let wpb = Array.make (pairs * glen * 2) 0 in
  let byte o p = if o < co && p < kdim then getb o p else 128 in
  for pr = 0 to pairs - 1 do
    let o0 = 2 * pr in
    for g = 0 to glen - 1 do
      let p = 3 * g in
      let idx = ((pr * glen) + g) * 2 in
      wpb.(idx) <-
        byte o0 p lor (byte o0 (p + 1) lsl 21) lor (byte o0 (p + 2) lsl 42);
      wpb.(idx + 1) <-
        byte (o0 + 1) p
        lor (byte (o0 + 1) (p + 1) lsl 21)
        lor (byte (o0 + 1) (p + 2) lsl 42)
    done
  done;
  wpb

(* Per-row half of the bias correction over the padded length [k3]:
   qdot = D - 128.rowsum' - 128.colsum' + k3.2^14, where both sums
   count the pad bytes (128 on both sides). *)
let qcrow ~co ~kdim ~k3 rowsum =
  Array.init co (fun o ->
      (k3 * 16384) - (128 * (rowsum.(o) + ((k3 - kdim) * 128))))

(* Pack one activation column into [xcol] at [base]: [glen] reversed
   k-triples read through the offset table (index = colbase + off[p]),
   the k-tail packing 128.  Returns the column's biased-byte sum
   (pad included) read off the packed words themselves — whole words
   accumulate all three lanes at once, split once per 4096 words
   (lanes hold bare bytes: 255 . 4096 < 2^21). *)
let qpack_col xq off ~kdim ~glen xcol base cb =
  let gf = kdim / 3 in
  let sum = ref 0 in
  let g0 = ref 0 in
  while !g0 < gf do
    let gend = min gf (!g0 + 4096) in
    let acc = ref 0 in
    for g = !g0 to gend - 1 do
      let p = 3 * g in
      let b0 = Char.code (Bytes.unsafe_get xq (cb + Array.unsafe_get off p)) in
      let b1 =
        Char.code (Bytes.unsafe_get xq (cb + Array.unsafe_get off (p + 1)))
      in
      let b2 =
        Char.code (Bytes.unsafe_get xq (cb + Array.unsafe_get off (p + 2)))
      in
      let wd = b2 lor (b1 lsl 21) lor (b0 lsl 42) in
      Array.unsafe_set xcol (base + g) wd;
      acc := !acc + wd
    done;
    sum :=
      !sum
      + (!acc land 0x1FFFFF)
      + ((!acc lsr 21) land 0x1FFFFF)
      + (!acc lsr 42);
    g0 := gend
  done;
  if gf < glen then begin
    let p = 3 * gf in
    let b0 = Char.code (Bytes.unsafe_get xq (cb + Array.unsafe_get off p)) in
    let b1 =
      if p + 1 < kdim then
        Char.code (Bytes.unsafe_get xq (cb + Array.unsafe_get off (p + 1)))
      else 128
    in
    Array.unsafe_set xcol (base + gf) (128 lor (b1 lsl 21) lor (b0 lsl 42));
    sum := !sum + b0 + b1 + 128
  end;
  !sum

(* Exact-dot entry for property tests: biased bytes in, the int-exact
   signed-dot accumulator values out (no requantization). *)
let gemm_i8_exact ~m ~k ~n a b =
  if Bytes.length a <> m * k then invalid_arg "Tensor.gemm_i8_exact: bad A size";
  if Bytes.length b <> k * n then invalid_arg "Tensor.gemm_i8_exact: bad B size";
  let glen = (k + 2) / 3 in
  let k3 = 3 * glen in
  let wpb =
    qpack_rows ~co:m ~kdim:k (fun o p ->
        Char.code (Bytes.unsafe_get a ((o * k) + p)))
  in
  let rowsum =
    Array.init m (fun o ->
        let rs = ref 0 in
        for p = 0 to k - 1 do
          rs := !rs + Char.code (Bytes.unsafe_get a ((o * k) + p))
        done;
        !rs)
  in
  let crow = qcrow ~co:m ~kdim:k ~k3 rowsum in
  let off = Array.init k (fun p -> p * n) in
  let out = Array.make (m * n) 0 in
  let xcol = Array.make glen 0 in
  let pairs = (m + 1) / 2 in
  for j = 0 to n - 1 do
    let cs = qpack_col b off ~kdim:k ~glen xcol 0 j in
    for pr = 0 to pairs - 1 do
      let d0, d1 = qtile_2x1 wpb xcol (pr * glen * 2) 0 glen in
      let o0 = 2 * pr in
      out.((o0 * n) + j) <- d0 + crow.(o0) - (128 * cs);
      if o0 + 1 < m then
        out.(((o0 + 1) * n) + j) <- d1 + crow.(o0 + 1) - (128 * cs)
    done
  done;
  out

let act_slope = function `None -> 1. | `Relu -> 0. | `Leaky a -> a

(* Shared driver for the quantized convolutions: a stride-[stride]
   valid convolution of the packed weights over the padded biased image
   [xq] (n x ci x ph x pw bytes — callers bake padding or transpose
   zero-stuffing into the image, so the inner loops see no boundary
   tests at all).  Requantization, bias and activation fuse into the
   output store, writing [n; co; oh; ow] directly.  [slope] is the
   negative-side slope: 1.0 = identity, 0.0 = relu, a = leaky.
   Parallelism splits output columns; every output element is one fixed
   ascending dot chain of exact integer arithmetic, so any split (and
   any pair/tail tiling) is bit-identical. *)
let qconv_core ~n ~ci ~ph ~pw ~stride ~oh ~ow qw xscales zpoints bias slope xq
    out =
  let co = qw.qw_shape.(0) in
  let kh = qw.qw_shape.(2) and kw = qw.qw_shape.(3) in
  let kdim = ci * kh * kw in
  let glen = (kdim + 2) / 3 in
  let k3 = 3 * glen in
  let ohw = oh * ow in
  let ncol = n * ohw in
  let off = Array.make kdim 0 in
  for p = 0 to kdim - 1 do
    let c = p / (kh * kw) in
    let r = p mod (kh * kw) in
    off.(p) <- (((c * ph) + (r / kw)) * pw) + (r mod kw)
  done;
  let wpb =
    qpack_rows ~co ~kdim (fun o p ->
        Char.code (Bytes.unsafe_get qw.qw_data ((o * kdim) + p)))
  in
  let crow = qcrow ~co ~kdim ~k3 qw.qw_rowsum in
  (* true signed weight rowsums: the affine zero-point correction
     subtracts z * srow(o), cancelling both the pad bytes' contribution
     (their q is exactly z) and the interior offset in one term *)
  let srow = Array.map (fun rs -> rs - (128 * kdim)) qw.qw_rowsum in
  let biasv =
    match bias with
    | None -> Array.make co 0.
    | Some bt ->
        if Array.length bt.data <> co then
          invalid_arg "Tensor: bias length disagrees with output channels";
        Array.copy bt.data
  in
  let wscales = qw.qw_scales in
  let sample_q = ci * ph * pw in
  let pairs = (co + 1) / 2 in
  let run j0 j1 =
    let xcol = Array.make (2 * glen) 0 in
    let b = ref (j0 / ohw) in
    let rem0 = j0 - (!b * ohw) in
    let oy = ref (rem0 / ow) in
    let ox = ref (rem0 - (!oy * ow)) in
    let j = ref j0 in
    while !j < j1 do
      let cb =
        (!b * sample_q) + (!oy * stride * pw) + (!ox * stride)
      in
      let xs = Array.unsafe_get xscales !b in
      let z = Array.unsafe_get zpoints !b in
      let oidx = ((!b * co) * ohw) + (!oy * ow) + !ox in
      let took =
        if !j + 1 < j1 && !ox + 1 < ow then begin
          let cs0 = qpack_col xq off ~kdim ~glen xcol 0 cb in
          let cs1 = qpack_col xq off ~kdim ~glen xcol glen (cb + stride) in
          let e0 = -128 * cs0 and e1 = -128 * cs1 in
          for pr = 0 to pairs - 1 do
            let d00, d01, d10, d11 =
              qtile_2x2 wpb xcol (pr * glen * 2) 0 glen glen
            in
            let o0 = 2 * pr in
            let c0 =
              Array.unsafe_get crow o0 - (z * Array.unsafe_get srow o0)
            in
            let s0 = Array.unsafe_get wscales o0 *. xs in
            let b0 = Array.unsafe_get biasv o0 in
            let f00 = (float_of_int (d00 + e0 + c0) *. s0) +. b0 in
            let f01 = (float_of_int (d01 + e1 + c0) *. s0) +. b0 in
            let at0 = oidx + (o0 * ohw) in
            Array.unsafe_set out at0
              (if f00 < 0. then f00 *. slope else f00);
            Array.unsafe_set out (at0 + 1)
              (if f01 < 0. then f01 *. slope else f01);
            if o0 + 1 < co then begin
              let c1 =
                Array.unsafe_get crow (o0 + 1)
                - (z * Array.unsafe_get srow (o0 + 1))
              in
              let s1 = Array.unsafe_get wscales (o0 + 1) *. xs in
              let b1 = Array.unsafe_get biasv (o0 + 1) in
              let f10 = (float_of_int (d10 + e0 + c1) *. s1) +. b1 in
              let f11 = (float_of_int (d11 + e1 + c1) *. s1) +. b1 in
              let at1 = at0 + ohw in
              Array.unsafe_set out at1
                (if f10 < 0. then f10 *. slope else f10);
              Array.unsafe_set out (at1 + 1)
                (if f11 < 0. then f11 *. slope else f11)
            end
          done;
          2
        end
        else begin
          let cs0 = qpack_col xq off ~kdim ~glen xcol 0 cb in
          let e0 = -128 * cs0 in
          for pr = 0 to pairs - 1 do
            let d0, d1 = qtile_2x1 wpb xcol (pr * glen * 2) 0 glen in
            let o0 = 2 * pr in
            let c0 =
              Array.unsafe_get crow o0 - (z * Array.unsafe_get srow o0)
            in
            let s0 = Array.unsafe_get wscales o0 *. xs in
            let b0 = Array.unsafe_get biasv o0 in
            let f0 = (float_of_int (d0 + e0 + c0) *. s0) +. b0 in
            Array.unsafe_set out (oidx + (o0 * ohw))
              (if f0 < 0. then f0 *. slope else f0);
            if o0 + 1 < co then begin
              let c1 =
                Array.unsafe_get crow (o0 + 1)
                - (z * Array.unsafe_get srow (o0 + 1))
              in
              let s1 = Array.unsafe_get wscales (o0 + 1) *. xs in
              let b1 = Array.unsafe_get biasv (o0 + 1) in
              let f1 = (float_of_int (d1 + e0 + c1) *. s1) +. b1 in
              Array.unsafe_set out (oidx + ((o0 + 1) * ohw))
                (if f1 < 0. then f1 *. slope else f1)
            end
          done;
          1
        end
      in
      j := !j + took;
      ox := !ox + took;
      if !ox >= ow then begin
        ox := 0;
        incr oy;
        if !oy >= oh then begin
          oy := 0;
          incr b
        end
      end
    done
  in
  if ncol > 0 then
    if co * k3 * ncol < conv_par_macs then run 0 ncol
    else Pool.for_chunks ~chunk:(max 8 ((ncol + 127) / 128)) 0 ncol run

(* Per-sample affine activation quantization over the raw input:
   [x ~ s * (q - z)] with the scale spanning [min(x, 0) .. max(x, 0)],
   so zero is always exactly representable (the pad and zero-stuffing
   bytes encode it as [z + 128]) and one-sided distributions — every
   post-relu/leaky activation in the network — get the full 255-level
   range instead of half of it.  A symmetric sample degenerates to
   [z = 0], the plain symmetric scheme.  A sample's quantized image —
   and therefore its reply — never depends on its batchmates (the
   contract the serve result cache relies on). *)
let quantize_samples xd ~n ~sample xscales zpoints store =
  for b = 0 to n - 1 do
    let base = b * sample in
    let mn = ref 0. and mx = ref 0. in
    for idx = base to base + sample - 1 do
      let v = Array.unsafe_get xd idx in
      if v < !mn then mn := v;
      if v > !mx then mx := v
    done;
    let range = !mx -. !mn in
    let s = if range > 0. then range /. 254. else 1. in
    let z =
      (* mn <= 0, so the half-away nudge is always downward *)
      -127 - int_of_float ((!mn /. s) -. 0.5)
    in
    xscales.(b) <- s;
    zpoints.(b) <- z;
    store b (1. /. s) z
  done

let conv2d_batch_i8 ?(stride = 1) ?(pad = 0) ?(act = `None) x ~qweight:qw
    ~bias =
  check_rank4 "Tensor.conv2d_batch_i8" x;
  let n = x.shape.(0) and ci = x.shape.(1) in
  let h = x.shape.(2) and w = x.shape.(3) in
  if qw.qw_shape.(1) <> ci then
    invalid_arg "Tensor.conv2d_batch_i8: channel mismatch between input and weight";
  let co = qw.qw_shape.(0) in
  let kh = qw.qw_shape.(2) and kw = qw.qw_shape.(3) in
  if stride < 1 then invalid_arg "Tensor.conv2d_batch_i8: stride must be >= 1";
  let oh = ((h + (2 * pad) - kh) / stride) + 1 in
  let ow = ((w + (2 * pad) - kw) / stride) + 1 in
  if oh <= 0 || ow <= 0 then invalid_arg "Tensor.conv2d_batch_i8: empty output";
  let ph = h + (2 * pad) and pw = w + (2 * pad) in
  let out = Array.make (n * co * oh * ow) 0. in
  if n > 0 then begin
    let xd = x.data in
    let sample = ci * h * w in
    let sample_q = ci * ph * pw in
    let xscales = Array.make n 1. in
    let zpoints = Array.make n 0 in
    Workspace.with_bytes (n * sample_q) (fun xq ->
        quantize_samples xd ~n ~sample xscales zpoints (fun b inv z ->
            (* the border padding encodes x = 0, which the affine
               scheme represents as the sample's zero-point *)
            Bytes.fill xq (b * sample_q) sample_q (Char.unsafe_chr (z + 128));
            for c = 0 to ci - 1 do
              for y = 0 to h - 1 do
                let src = ((((b * ci) + c) * h) + y) * w in
                let dst = (((((b * ci) + c) * ph) + (y + pad)) * pw) + pad in
                for xx = 0 to w - 1 do
                  Bytes.unsafe_set xq (dst + xx)
                    (Char.unsafe_chr
                       (quantize_affine (Array.unsafe_get xd (src + xx)) inv z
                       + 128))
                done
              done
            done);
        qconv_core ~n ~ci ~ph ~pw ~stride ~oh ~ow qw xscales zpoints bias
          (act_slope act) xq out)
  end;
  make [| n; co; oh; ow |] out

(* Quantize a transposed-convolution weight ([ci; co; kh; kw]) into the
   equivalent *forward* kernel: output-channel-major, spatially flipped
   — a stride-1 convolution of this kernel over the zero-stuffed input
   is exactly the transposed convolution.  Scales are per output
   channel of the transposed conv. *)
let quantize_weight_transposed w =
  if rank w <> 4 then
    invalid_arg "Tensor.quantize_weight_transposed: weight must be rank 4";
  let ci = w.shape.(0) and co = w.shape.(1) in
  let kh = w.shape.(2) and kw = w.shape.(3) in
  let kdim = ci * kh * kw in
  let data = Bytes.create (co * kdim) in
  let scales = Array.make co 1. in
  let rowsum = Array.make co 0 in
  let wd = w.data in
  let src c o ky kx =
    Array.unsafe_get wd (((((c * co) + o) * kh) + ky) * kw + kx)
  in
  for o = 0 to co - 1 do
    let m = ref 0. in
    for c = 0 to ci - 1 do
      for ky = 0 to kh - 1 do
        for kx = 0 to kw - 1 do
          let v = Float.abs (src c o ky kx) in
          if v > !m then m := v
        done
      done
    done;
    let s = if !m > 0. then !m /. 127. else 1. in
    scales.(o) <- s;
    let inv = 1. /. s in
    let rs = ref 0 in
    for c = 0 to ci - 1 do
      for ky = 0 to kh - 1 do
        for kx = 0 to kw - 1 do
          let q = quantize_clamped (src c o (kh - 1 - ky) (kw - 1 - kx)) inv in
          Bytes.unsafe_set data
            ((o * kdim) + (((c * kh) + ky) * kw) + kx)
            (Char.unsafe_chr (q + 128));
          rs := !rs + (q + 128)
        done
      done
    done;
    rowsum.(o) <- !rs
  done;
  { qw_shape = [| co; ci; kh; kw |]; qw_data = data; qw_scales = scales;
    qw_rowsum = rowsum }

let conv2d_transpose_batch_i8 ?(stride = 1) ?(pad = 0) ?(act = `None) x
    ~qweight:qw ~bias =
  check_rank4 "Tensor.conv2d_transpose_batch_i8" x;
  let n = x.shape.(0) and ci = x.shape.(1) in
  let h = x.shape.(2) and w = x.shape.(3) in
  if qw.qw_shape.(1) <> ci then
    invalid_arg
      "Tensor.conv2d_transpose_batch_i8: channel mismatch between input and weight";
  let co = qw.qw_shape.(0) in
  let kh = qw.qw_shape.(2) and kw = qw.qw_shape.(3) in
  if stride < 1 then
    invalid_arg "Tensor.conv2d_transpose_batch_i8: stride must be >= 1";
  if pad > kh - 1 || pad > kw - 1 then
    invalid_arg "Tensor.conv2d_transpose_batch_i8: pad must be < kernel size";
  let oh = ((h - 1) * stride) + kh - (2 * pad) in
  let ow = ((w - 1) * stride) + kw - (2 * pad) in
  if oh <= 0 || ow <= 0 then
    invalid_arg "Tensor.conv2d_transpose_batch_i8: empty output";
  let eh = kh - 1 - pad and ew = kw - 1 - pad in
  let ph = ((h - 1) * stride) + 1 + (2 * eh) in
  let pw = ((w - 1) * stride) + 1 + (2 * ew) in
  let out = Array.make (n * co * oh * ow) 0. in
  if n > 0 && stride > 1 && kh = stride && kw = stride && pad = 0 then begin
    (* Exact fast path for the stride = kernel, pad = 0 case (the
       UNet's 2x2/stride-2 up-convolutions): in the zero-stuffed
       formulation every output pixel overlaps exactly one real input
       pixel — the other kh*kw - 1 taps read stuffed bytes, which
       encode the sample's zero-point and so contribute exactly zero
       to the debiased integer dot.  Dropping them changes nothing but
       the work: the whole transposed convolution collapses to one
       stride-1 1x1 convolution with stride^2 * co output rows (one
       per output-parity class, each holding that class's kernel tap
       slice), then a strided scatter.  Same integer accumulators,
       same float epilogue in the same order — bit-identical to the
       general path below, at 1/(stride^2) of the MACs and none of
       the stuffed-image traffic. *)
    let s = stride in
    let f = s * s * co in
    let kdim_full = ci * kh * kw in
    let fdata = Bytes.create (f * ci) in
    let fscales = Array.make f 1. in
    let frowsum = Array.make f 0 in
    for a = 0 to s - 1 do
      for bb = 0 to s - 1 do
        (* output parity (a, bb) reads flipped-kernel tap
           (s-1-a, s-1-bb): real pixels sit at (s-1) + s*y in the
           stuffed image, so oy + ky = (s-1) + s*y forces ky there *)
        let ky = s - 1 - a and kx = s - 1 - bb in
        for o = 0 to co - 1 do
          let fr = (((a * s) + bb) * co) + o in
          fscales.(fr) <- qw.qw_scales.(o);
          let rs = ref 0 in
          for c = 0 to ci - 1 do
            let byte =
              Bytes.unsafe_get qw.qw_data
                ((o * kdim_full) + ((((c * kh) + ky) * kw) + kx))
            in
            Bytes.unsafe_set fdata ((fr * ci) + c) byte;
            rs := !rs + Char.code byte
          done;
          frowsum.(fr) <- !rs
        done
      done
    done;
    let fqw =
      { qw_shape = [| f; ci; 1; 1 |]; qw_data = fdata; qw_scales = fscales;
        qw_rowsum = frowsum }
    in
    let fbias =
      match bias with
      | None -> None
      | Some bt ->
          if Array.length bt.data <> co then
            invalid_arg
              "Tensor.conv2d_transpose_batch_i8: bias length disagrees with \
               output channels";
          Some (make [| f |] (Array.init f (fun fr -> bt.data.(fr mod co))))
    in
    let xd = x.data in
    let sample = ci * h * w in
    let xscales = Array.make n 1. in
    let zpoints = Array.make n 0 in
    let tmp = Array.make (n * f * h * w) 0. in
    Workspace.with_bytes (n * sample) (fun xq ->
        quantize_samples xd ~n ~sample xscales zpoints (fun b inv z ->
            let base = b * sample in
            for idx = 0 to sample - 1 do
              Bytes.unsafe_set xq (base + idx)
                (Char.unsafe_chr
                   (quantize_affine (Array.unsafe_get xd (base + idx)) inv z
                   + 128))
            done);
        qconv_core ~n ~ci ~ph:h ~pw:w ~stride:1 ~oh:h ~ow:w fqw xscales
          zpoints fbias (act_slope act) xq tmp);
    let hw = h * w in
    for b = 0 to n - 1 do
      for a = 0 to s - 1 do
        for bb = 0 to s - 1 do
          for o = 0 to co - 1 do
            let fr = (((a * s) + bb) * co) + o in
            let src = ((b * f) + fr) * hw in
            let dst = ((b * co) + o) * oh * ow in
            for y = 0 to h - 1 do
              let srow = src + (y * w) in
              let drow = dst + ((((y * s) + a) * ow) + bb) in
              for xx = 0 to w - 1 do
                Array.unsafe_set out (drow + (xx * s))
                  (Array.unsafe_get tmp (srow + xx))
              done
            done
          done
        done
      done
    done
  end
  else if n > 0 then begin
    let xd = x.data in
    let sample = ci * h * w in
    let sample_q = ci * ph * pw in
    let xscales = Array.make n 1. in
    let zpoints = Array.make n 0 in
    Workspace.with_bytes (n * sample_q) (fun xq ->
        quantize_samples xd ~n ~sample xscales zpoints (fun b inv z ->
            (* stuffed zeros and the border extension both encode
               x = 0 — the sample's zero-point under the affine scheme *)
            Bytes.fill xq (b * sample_q) sample_q (Char.unsafe_chr (z + 128));
            for c = 0 to ci - 1 do
              for y = 0 to h - 1 do
                let src = ((((b * ci) + c) * h) + y) * w in
                let dst =
                  ((((((b * ci) + c) * ph) + eh + (y * stride)) * pw) + ew)
                in
                for xx = 0 to w - 1 do
                  Bytes.unsafe_set xq (dst + (xx * stride))
                    (Char.unsafe_chr
                       (quantize_affine (Array.unsafe_get xd (src + xx)) inv z
                       + 128))
                done
              done
            done);
        qconv_core ~n ~ci ~ph ~pw ~stride:1 ~oh ~ow qw xscales zpoints bias
          (act_slope act) xq out)
  end;
  make [| n; co; oh; ow |] out

(* ------------------------------------------------------------------ *)
(* Map utilities.                                                      *)
(* ------------------------------------------------------------------ *)

let resize_nearest m oh ow =
  if rank m <> 2 then invalid_arg "Tensor.resize_nearest: rank-2 only";
  if oh <= 0 || ow <= 0 then invalid_arg "Tensor.resize_nearest: empty target";
  let h = m.shape.(0) and w = m.shape.(1) in
  let out = Array.make (oh * ow) 0. in
  for oy = 0 to oh - 1 do
    let iy = min (h - 1) (oy * h / oh) in
    for ox = 0 to ow - 1 do
      let ix = min (w - 1) (ox * w / ow) in
      out.((oy * ow) + ox) <- m.data.((iy * w) + ix)
    done
  done;
  make [| oh; ow |] out

let as_rank3 t =
  match rank t with
  | 3 -> t
  | 2 -> reshape t [| 1; t.shape.(0); t.shape.(1) |]
  | _ -> invalid_arg "Tensor: expected a rank-2 or rank-3 tensor"

let concat_channels ts =
  match List.map as_rank3 ts with
  | [] -> invalid_arg "Tensor.concat_channels: empty list"
  | first :: _ as ts ->
      let h = first.shape.(1) and w = first.shape.(2) in
      List.iter
        (fun t ->
          if t.shape.(1) <> h || t.shape.(2) <> w then
            invalid_arg "Tensor.concat_channels: spatial mismatch")
        ts;
      let c = List.fold_left (fun acc t -> acc + t.shape.(0)) 0 ts in
      let out = Array.make (c * h * w) 0. in
      let pos = ref 0 in
      List.iter
        (fun t ->
          Array.blit t.data 0 out !pos (Array.length t.data);
          pos := !pos + Array.length t.data)
        ts;
      make [| c; h; w |] out

let slice_channels t lo n =
  let t = as_rank3 t in
  let c = t.shape.(0) and h = t.shape.(1) and w = t.shape.(2) in
  if lo < 0 || n < 0 || lo + n > c then
    invalid_arg "Tensor.slice_channels: out of range";
  let out = Array.make (n * h * w) 0. in
  Array.blit t.data (lo * h * w) out 0 (n * h * w);
  make [| n; h; w |] out

let channel t c =
  let s = slice_channels t c 1 in
  reshape s [| s.shape.(1); s.shape.(2) |]

let pad2d t p =
  if p < 0 then invalid_arg "Tensor.pad2d: negative padding";
  let t3 = as_rank3 t in
  let c = t3.shape.(0) and h = t3.shape.(1) and w = t3.shape.(2) in
  let oh = h + (2 * p) and ow = w + (2 * p) in
  let out = Array.make (c * oh * ow) 0. in
  for ch = 0 to c - 1 do
    for i = 0 to h - 1 do
      Array.blit t3.data ((ch * h * w) + (i * w)) out
        ((ch * oh * ow) + ((i + p) * ow) + p)
        w
    done
  done;
  let res = make [| c; oh; ow |] out in
  if rank t = 2 then reshape res [| oh; ow |] else res

let rot90_2 m =
  let h = m.shape.(0) and w = m.shape.(1) in
  (* counter-clockwise: out[w-1-j][i] = in[i][j] -> out has shape [w; h] *)
  let out = Array.make (w * h) 0. in
  for i = 0 to h - 1 do
    for j = 0 to w - 1 do
      out.(((w - 1 - j) * h) + i) <- m.data.((i * w) + j)
    done
  done;
  make [| w; h |] out

let rot90 t =
  match rank t with
  | 2 -> rot90_2 t
  | 3 ->
      let c = t.shape.(0) in
      concat_channels (List.init c (fun ch -> rot90_2 (channel t ch)))
  | _ -> invalid_arg "Tensor.rot90: rank-2 or rank-3 only"

let flip_last_axis t =
  let r = rank t in
  let w = t.shape.(r - 1) in
  let rows = Array.length t.data / w in
  let out = Array.make (Array.length t.data) 0. in
  for i = 0 to rows - 1 do
    for j = 0 to w - 1 do
      out.((i * w) + (w - 1 - j)) <- t.data.((i * w) + j)
    done
  done;
  make (Array.copy t.shape) out

let flip_h t =
  match rank t with
  | 2 | 3 -> flip_last_axis t
  | _ -> invalid_arg "Tensor.flip_h: rank-2 or rank-3 only"

let flip_v t =
  let flip2 m =
    let h = m.shape.(0) and w = m.shape.(1) in
    let out = Array.make (h * w) 0. in
    for i = 0 to h - 1 do
      Array.blit m.data (i * w) out ((h - 1 - i) * w) w
    done;
    make [| h; w |] out
  in
  match rank t with
  | 2 -> flip2 t
  | 3 ->
      let c = t.shape.(0) in
      concat_channels (List.init c (fun ch -> flip2 (channel t ch)))
  | _ -> invalid_arg "Tensor.flip_v: rank-2 or rank-3 only"

let approx_equal ?(eps = 1e-9) a b =
  same_shape a b
  &&
  let ok = ref true in
  for i = 0 to Array.length a.data - 1 do
    if abs_float (a.data.(i) -. b.data.(i)) > eps then ok := false
  done;
  !ok

let pp ppf t =
  let shape_s =
    t.shape |> Array.to_list |> List.map string_of_int |> String.concat "x"
  in
  let n = Array.length t.data in
  let preview = Array.sub t.data 0 (min n 8) in
  Format.fprintf ppf "tensor[%s](%a%s)" shape_s
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf v -> Format.fprintf ppf "%.4g" v))
    (Array.to_list preview)
    (if n > 8 then ", ..." else "")
