type t = { shape : int array; data : float array }

module Pool = Dco3d_parallel.Pool

(* Kernels below this many scalar multiply-adds stay on the calling
   domain: region setup would dominate.  The guard depends only on the
   problem size, so the sequential and pooled paths agree bit-for-bit
   at every DCO3D_JOBS value. *)
let par_threshold = 1 lsl 16

let numel_of_shape shape = Array.fold_left ( * ) 1 shape

let make shape data =
  let n = numel_of_shape shape in
  if Array.length data <> n then
    invalid_arg
      (Printf.sprintf "Tensor.make: shape implies %d elements, got %d" n
         (Array.length data));
  Array.iter
    (fun d -> if d < 0 then invalid_arg "Tensor.make: negative dimension")
    shape;
  { shape = Array.copy shape; data }

let zeros shape = make shape (Array.make (numel_of_shape shape) 0.)
let ones shape = make shape (Array.make (numel_of_shape shape) 1.)
let full shape v = make shape (Array.make (numel_of_shape shape) v)
let scalar v = make [||] [| v |]
let of_array1 a = make [| Array.length a |] (Array.copy a)

let of_array2 rows =
  let m = Array.length rows in
  if m = 0 then make [| 0; 0 |] [||]
  else begin
    let n = Array.length rows.(0) in
    Array.iter
      (fun r ->
        if Array.length r <> n then
          invalid_arg "Tensor.of_array2: ragged rows")
      rows;
    let data = Array.make (m * n) 0. in
    for i = 0 to m - 1 do
      Array.blit rows.(i) 0 data (i * n) n
    done;
    make [| m; n |] data
  end

let shape t = Array.copy t.shape
let numel t = Array.length t.data
let rank t = Array.length t.shape
let dim t i = t.shape.(i)
let copy t = { shape = Array.copy t.shape; data = Array.copy t.data }
let same_shape a b = a.shape = b.shape

let reshape t shape =
  let n = numel_of_shape shape in
  if n <> Array.length t.data then
    invalid_arg "Tensor.reshape: element count mismatch";
  (* the data array is deliberately aliased (see the interface); the
     shape array is copied so a caller mutating its own array cannot
     corrupt the tensor *)
  { shape = Array.copy shape; data = t.data }

let reshape_copy t shape =
  let n = numel_of_shape shape in
  if n <> Array.length t.data then
    invalid_arg "Tensor.reshape_copy: element count mismatch";
  { shape = Array.copy shape; data = Array.copy t.data }

(* Row-major flat offset of a multi-index. *)
let offset t idx =
  let r = Array.length t.shape in
  if Array.length idx <> r then invalid_arg "Tensor: index rank mismatch";
  let off = ref 0 in
  for k = 0 to r - 1 do
    let i = idx.(k) in
    if i < 0 || i >= t.shape.(k) then invalid_arg "Tensor: index out of bounds";
    off := (!off * t.shape.(k)) + i
  done;
  !off

let init shape f =
  let n = numel_of_shape shape in
  let r = Array.length shape in
  let idx = Array.make r 0 in
  let data =
    Array.init n (fun _ ->
        let v = f idx in
        (* advance the multi-index (row-major). *)
        let k = ref (r - 1) in
        let carry = ref true in
        while !carry && !k >= 0 do
          idx.(!k) <- idx.(!k) + 1;
          if idx.(!k) >= shape.(!k) then begin
            idx.(!k) <- 0;
            decr k
          end
          else carry := false
        done;
        v)
  in
  make shape data

let get t idx = t.data.(offset t idx)
let set t idx v = t.data.(offset t idx) <- v
let get_flat t i = t.data.(i)
let set_flat t i v = t.data.(i) <- v

let get2 t i j = t.data.((i * t.shape.(1)) + j)
let set2 t i j v = t.data.((i * t.shape.(1)) + j) <- v

let get3 t c i j =
  let h = t.shape.(1) and w = t.shape.(2) in
  t.data.((((c * h) + i) * w) + j)

let set3 t c i j v =
  let h = t.shape.(1) and w = t.shape.(2) in
  t.data.((((c * h) + i) * w) + j) <- v

let rand_uniform rng ?(lo = 0.) ?(hi = 1.) shape =
  let n = numel_of_shape shape in
  make shape (Array.init n (fun _ -> Rng.range rng lo hi))

let randn rng ?(mu = 0.) ?(sigma = 1.) shape =
  let n = numel_of_shape shape in
  make shape (Array.init n (fun _ -> Rng.gaussian ~mu ~sigma rng))

let kaiming rng ~fan_in shape =
  if fan_in <= 0 then invalid_arg "Tensor.kaiming: fan_in must be positive";
  randn rng ~sigma:(sqrt (2. /. float_of_int fan_in)) shape

let map f t = { shape = t.shape; data = Array.map f t.data }

let map2 f a b =
  if not (same_shape a b) then invalid_arg "Tensor.map2: shape mismatch";
  let n = Array.length a.data in
  let data = Array.make n 0. in
  for i = 0 to n - 1 do
    Array.unsafe_set data i
      (f (Array.unsafe_get a.data i) (Array.unsafe_get b.data i))
  done;
  { shape = a.shape; data }

let iteri_flat f t = Array.iteri f t.data

let add a b = map2 ( +. ) a b
let sub a b = map2 ( -. ) a b
let mul a b = map2 ( *. ) a b
let div a b = map2 ( /. ) a b
let neg t = map (fun x -> -.x) t
let scale s t = map (fun x -> s *. x) t
let add_scalar s t = map (fun x -> s +. x) t
let relu t = map (fun x -> if x > 0. then x else 0.) t
let sigmoid t = map (fun x -> 1. /. (1. +. exp (-.x))) t
let tanh_ t = map tanh t
let exp_ t = map exp t
let log_ t = map log t
let sqrt_ t = map sqrt t
let sqr t = map (fun x -> x *. x) t

let clip ~lo ~hi t =
  map (fun x -> if x < lo then lo else if x > hi then hi else x) t

let axpy ~alpha x y =
  if not (same_shape x y) then invalid_arg "Tensor.axpy: shape mismatch";
  let n = Array.length x.data in
  for i = 0 to n - 1 do
    Array.unsafe_set y.data i
      (Array.unsafe_get y.data i +. (alpha *. Array.unsafe_get x.data i))
  done

let fill t v = Array.fill t.data 0 (Array.length t.data) v

let sum t = Array.fold_left ( +. ) 0. t.data

let mean t =
  let n = Array.length t.data in
  if n = 0 then 0. else sum t /. float_of_int n

let max_elt t = Array.fold_left Float.max neg_infinity t.data
let min_elt t = Array.fold_left Float.min infinity t.data
let fold f acc t = Array.fold_left f acc t.data

let dot a b =
  if not (same_shape a b) then invalid_arg "Tensor.dot: shape mismatch";
  let acc = ref 0. in
  for i = 0 to Array.length a.data - 1 do
    acc := !acc +. (Array.unsafe_get a.data i *. Array.unsafe_get b.data i)
  done;
  !acc

let frobenius t = sqrt (dot t t)

(* Cache-blocked row-band kernel: for each (kc x jc) tile of [b] the
   band's rows stream over it while it is hot.  For a fixed output
   element the inner-dimension index [p] is always visited in ascending
   order, so the accumulation order — hence the result bits — does not
   depend on how rows are banded across domains. *)
let matmul_rows ~k ~n ad bd out i0 i1 =
  let kc = 64 and jc = 128 in
  let p0 = ref 0 in
  while !p0 < k do
    let p1 = min k (!p0 + kc) in
    let j0 = ref 0 in
    while !j0 < n do
      let j1 = min n (!j0 + jc) in
      for i = i0 to i1 - 1 do
        let arow = i * k and orow = i * n in
        for p = !p0 to p1 - 1 do
          let av = Array.unsafe_get ad (arow + p) in
          if av <> 0. then begin
            let brow = p * n in
            for j = !j0 to j1 - 1 do
              Array.unsafe_set out (orow + j)
                (Array.unsafe_get out (orow + j)
                +. (av *. Array.unsafe_get bd (brow + j)))
            done
          end
        done
      done;
      j0 := j1
    done;
    p0 := p1
  done

let matmul a b =
  if rank a <> 2 || rank b <> 2 then invalid_arg "Tensor.matmul: rank-2 only";
  let m = a.shape.(0) and k = a.shape.(1) in
  let k' = b.shape.(0) and n = b.shape.(1) in
  if k <> k' then invalid_arg "Tensor.matmul: inner dimension mismatch";
  let out = Array.make (m * n) 0. in
  let ad = a.data and bd = b.data in
  if m * n * k < par_threshold then matmul_rows ~k ~n ad bd out 0 m
  else
    Pool.for_chunks
      ~chunk:(max 4 ((m + 31) / 32))
      0 m
      (fun i0 i1 -> matmul_rows ~k ~n ad bd out i0 i1);
  make [| m; n |] out

let transpose2 t =
  if rank t <> 2 then invalid_arg "Tensor.transpose2: rank-2 only";
  let m = t.shape.(0) and n = t.shape.(1) in
  let out = Array.make (m * n) 0. in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      Array.unsafe_set out ((j * m) + i) (Array.unsafe_get t.data ((i * n) + j))
    done
  done;
  make [| n; m |] out

let matvec a x =
  if rank a <> 2 || rank x <> 1 then invalid_arg "Tensor.matvec: bad ranks";
  let m = a.shape.(0) and k = a.shape.(1) in
  if x.shape.(0) <> k then invalid_arg "Tensor.matvec: dimension mismatch";
  let out = Array.make m 0. in
  let row_dot i =
    let row = i * k in
    let acc = ref 0. in
    for j = 0 to k - 1 do
      acc :=
        !acc +. (Array.unsafe_get a.data (row + j) *. Array.unsafe_get x.data j)
    done;
    out.(i) <- !acc
  in
  if m * k < par_threshold then
    for i = 0 to m - 1 do
      row_dot i
    done
  else Pool.parallel_for 0 m row_dot;
  make [| m |] out

(* ------------------------------------------------------------------ *)
(* Convolution kernels.                                                *)
(* ------------------------------------------------------------------ *)

let check_rank3 name t =
  if rank t <> 3 then invalid_arg (name ^ ": expected a rank-3 tensor")

let conv2d ?(stride = 1) ?(pad = 0) x ~weight ~bias =
  check_rank3 "Tensor.conv2d" x;
  if rank weight <> 4 then invalid_arg "Tensor.conv2d: weight must be rank 4";
  let ci = x.shape.(0) and h = x.shape.(1) and w = x.shape.(2) in
  let co = weight.shape.(0) in
  if weight.shape.(1) <> ci then
    invalid_arg "Tensor.conv2d: channel mismatch between input and weight";
  let kh = weight.shape.(2) and kw = weight.shape.(3) in
  let oh = ((h + (2 * pad) - kh) / stride) + 1 in
  let ow = ((w + (2 * pad) - kw) / stride) + 1 in
  if oh <= 0 || ow <= 0 then invalid_arg "Tensor.conv2d: empty output";
  let out = Array.make (co * oh * ow) 0. in
  let xd = x.data and wd = weight.data in
  (* each output channel writes only its own [out] slice, so channels
     distribute freely across domains without changing any result bit *)
  let per_out_channel o =
    let wbase_o = o * ci * kh * kw in
    let obase_o = o * oh * ow in
    for c = 0 to ci - 1 do
      let wbase = wbase_o + (c * kh * kw) in
      let xbase = c * h * w in
      for ky = 0 to kh - 1 do
        for kx = 0 to kw - 1 do
          let wv = Array.unsafe_get wd (wbase + (ky * kw) + kx) in
          if wv <> 0. then
            for oy = 0 to oh - 1 do
              let iy = (oy * stride) + ky - pad in
              if iy >= 0 && iy < h then begin
                let orow = obase_o + (oy * ow) in
                let xrow = xbase + (iy * w) in
                for ox = 0 to ow - 1 do
                  let ix = (ox * stride) + kx - pad in
                  if ix >= 0 && ix < w then
                    Array.unsafe_set out (orow + ox)
                      (Array.unsafe_get out (orow + ox)
                      +. (wv *. Array.unsafe_get xd (xrow + ix)))
                done
              end
            done
        done
      done
    done;
    match bias with
    | Some b ->
        let bv = b.data.(o) in
        for i = 0 to (oh * ow) - 1 do
          Array.unsafe_set out (obase_o + i)
            (Array.unsafe_get out (obase_o + i) +. bv)
        done
    | None -> ()
  in
  if co * ci * kh * kw * oh * ow < par_threshold then
    for o = 0 to co - 1 do
      per_out_channel o
    done
  else Pool.parallel_for ~chunk:1 0 co per_out_channel;
  make [| co; oh; ow |] out

let conv2d_backward_input ?(stride = 1) ?(pad = 0) ~input_shape ~weight gout =
  check_rank3 "Tensor.conv2d_backward_input" gout;
  let ci = input_shape.(0) and h = input_shape.(1) and w = input_shape.(2) in
  let co = weight.shape.(0) in
  let kh = weight.shape.(2) and kw = weight.shape.(3) in
  let oh = gout.shape.(1) and ow = gout.shape.(2) in
  let gin = Array.make (ci * h * w) 0. in
  let gd = gout.data and wd = weight.data in
  (* input channels own disjoint [gin] slices; within a channel the
     output channels accumulate in ascending order, a fixed reduction
     order at any job count *)
  let per_in_channel c =
    let ibase = c * h * w in
    for o = 0 to co - 1 do
      let wbase = (((o * ci) + c) * kh * kw) in
      let gbase_o = o * oh * ow in
      for ky = 0 to kh - 1 do
        for kx = 0 to kw - 1 do
          let wv = Array.unsafe_get wd (wbase + (ky * kw) + kx) in
          if wv <> 0. then
            for oy = 0 to oh - 1 do
              let iy = (oy * stride) + ky - pad in
              if iy >= 0 && iy < h then begin
                let grow = gbase_o + (oy * ow) in
                let irow = ibase + (iy * w) in
                for ox = 0 to ow - 1 do
                  let ix = (ox * stride) + kx - pad in
                  if ix >= 0 && ix < w then
                    Array.unsafe_set gin (irow + ix)
                      (Array.unsafe_get gin (irow + ix)
                      +. (wv *. Array.unsafe_get gd (grow + ox)))
                done
              end
            done
        done
      done
    done
  in
  if co * ci * kh * kw * oh * ow < par_threshold then
    for c = 0 to ci - 1 do
      per_in_channel c
    done
  else Pool.parallel_for ~chunk:1 0 ci per_in_channel;
  make input_shape gin

let conv2d_backward_weight ?(stride = 1) ?(pad = 0) ~input ~weight_shape gout =
  check_rank3 "Tensor.conv2d_backward_weight" gout;
  let ci = input.shape.(0) and h = input.shape.(1) and w = input.shape.(2) in
  let co = weight_shape.(0) in
  let kh = weight_shape.(2) and kw = weight_shape.(3) in
  let oh = gout.shape.(1) and ow = gout.shape.(2) in
  let gw = Array.make (co * ci * kh * kw) 0. in
  let gd = gout.data and xd = input.data in
  let per_out_channel o =
    let gbase_o = o * oh * ow in
    let wbase_o = o * ci * kh * kw in
    for c = 0 to ci - 1 do
      let xbase = c * h * w in
      let wbase = wbase_o + (c * kh * kw) in
      for ky = 0 to kh - 1 do
        for kx = 0 to kw - 1 do
          let acc = ref 0. in
          for oy = 0 to oh - 1 do
            let iy = (oy * stride) + ky - pad in
            if iy >= 0 && iy < h then begin
              let grow = gbase_o + (oy * ow) in
              let xrow = xbase + (iy * w) in
              for ox = 0 to ow - 1 do
                let ix = (ox * stride) + kx - pad in
                if ix >= 0 && ix < w then
                  acc :=
                    !acc
                    +. Array.unsafe_get gd (grow + ox)
                       *. Array.unsafe_get xd (xrow + ix)
              done
            end
          done;
          gw.(wbase + (ky * kw) + kx) <- !acc
        done
      done
    done
  in
  if co * ci * kh * kw * oh * ow < par_threshold then
    for o = 0 to co - 1 do
      per_out_channel o
    done
  else Pool.parallel_for ~chunk:1 0 co per_out_channel;
  make weight_shape gw

let conv2d_transpose ?(stride = 1) ?(pad = 0) x ~weight ~bias =
  check_rank3 "Tensor.conv2d_transpose" x;
  if rank weight <> 4 then
    invalid_arg "Tensor.conv2d_transpose: weight must be rank 4";
  let ci = x.shape.(0) and h = x.shape.(1) and w = x.shape.(2) in
  if weight.shape.(0) <> ci then
    invalid_arg "Tensor.conv2d_transpose: channel mismatch";
  let co = weight.shape.(1) in
  let kh = weight.shape.(2) and kw = weight.shape.(3) in
  let oh = ((h - 1) * stride) - (2 * pad) + kh in
  let ow = ((w - 1) * stride) - (2 * pad) + kw in
  if oh <= 0 || ow <= 0 then invalid_arg "Tensor.conv2d_transpose: empty output";
  let out = Array.make (co * oh * ow) 0. in
  let xd = x.data and wd = weight.data in
  (* output channels own disjoint [out] slices; within one, input
     channels scatter in ascending order — a fixed accumulation order *)
  let per_out_channel o =
    let obase = o * oh * ow in
    for c = 0 to ci - 1 do
      let xbase = c * h * w in
      let wbase = (((c * co) + o) * kh * kw) in
      for iy = 0 to h - 1 do
        let xrow = xbase + (iy * w) in
        for ix = 0 to w - 1 do
          let xv = Array.unsafe_get xd (xrow + ix) in
          if xv <> 0. then
            for ky = 0 to kh - 1 do
              let oy = (iy * stride) + ky - pad in
              if oy >= 0 && oy < oh then begin
                let orow = obase + (oy * ow) in
                let wrow = wbase + (ky * kw) in
                for kx = 0 to kw - 1 do
                  let ox = (ix * stride) + kx - pad in
                  if ox >= 0 && ox < ow then
                    Array.unsafe_set out (orow + ox)
                      (Array.unsafe_get out (orow + ox)
                      +. (xv *. Array.unsafe_get wd (wrow + kx)))
                done
              end
            done
        done
      done
    done;
    match bias with
    | Some b ->
        let bv = b.data.(o) in
        for i = 0 to (oh * ow) - 1 do
          Array.unsafe_set out (obase + i)
            (Array.unsafe_get out (obase + i) +. bv)
        done
    | None -> ()
  in
  if ci * co * kh * kw * h * w < par_threshold then
    for o = 0 to co - 1 do
      per_out_channel o
    done
  else Pool.parallel_for ~chunk:1 0 co per_out_channel;
  make [| co; oh; ow |] out

let maxpool2 x =
  check_rank3 "Tensor.maxpool2" x;
  let c = x.shape.(0) and h = x.shape.(1) and w = x.shape.(2) in
  if h mod 2 <> 0 || w mod 2 <> 0 then
    invalid_arg "Tensor.maxpool2: spatial dimensions must be even";
  let oh = h / 2 and ow = w / 2 in
  let out = Array.make (c * oh * ow) 0. in
  let arg = Array.make (c * oh * ow) 0 in
  for ch = 0 to c - 1 do
    let xbase = ch * h * w in
    let obase = ch * oh * ow in
    for oy = 0 to oh - 1 do
      for ox = 0 to ow - 1 do
        let i0 = xbase + (2 * oy * w) + (2 * ox) in
        let candidates = [| i0; i0 + 1; i0 + w; i0 + w + 1 |] in
        let best = ref candidates.(0) in
        let bestv = ref x.data.(candidates.(0)) in
        for k = 1 to 3 do
          let i = candidates.(k) in
          if x.data.(i) > !bestv then begin
            best := i;
            bestv := x.data.(i)
          end
        done;
        out.(obase + (oy * ow) + ox) <- !bestv;
        arg.(obase + (oy * ow) + ox) <- !best
      done
    done
  done;
  (make [| c; oh; ow |] out, arg)

let maxpool2_backward ~input_shape argmax gout =
  let gin = Array.make (numel_of_shape input_shape) 0. in
  Array.iteri (fun i src -> gin.(src) <- gin.(src) +. gout.data.(i)) argmax;
  make input_shape gin

let avgpool2 x =
  check_rank3 "Tensor.avgpool2" x;
  let c = x.shape.(0) and h = x.shape.(1) and w = x.shape.(2) in
  if h mod 2 <> 0 || w mod 2 <> 0 then
    invalid_arg "Tensor.avgpool2: spatial dimensions must be even";
  let oh = h / 2 and ow = w / 2 in
  let out = Array.make (c * oh * ow) 0. in
  for ch = 0 to c - 1 do
    let xbase = ch * h * w in
    let obase = ch * oh * ow in
    for oy = 0 to oh - 1 do
      for ox = 0 to ow - 1 do
        let i0 = xbase + (2 * oy * w) + (2 * ox) in
        out.(obase + (oy * ow) + ox) <-
          0.25
          *. (x.data.(i0) +. x.data.(i0 + 1) +. x.data.(i0 + w)
             +. x.data.(i0 + w + 1))
      done
    done
  done;
  make [| c; oh; ow |] out

let upsample_nearest2 x =
  check_rank3 "Tensor.upsample_nearest2" x;
  let c = x.shape.(0) and h = x.shape.(1) and w = x.shape.(2) in
  let oh = 2 * h and ow = 2 * w in
  let out = Array.make (c * oh * ow) 0. in
  for ch = 0 to c - 1 do
    let xbase = ch * h * w in
    let obase = ch * oh * ow in
    for oy = 0 to oh - 1 do
      let iy = oy / 2 in
      for ox = 0 to ow - 1 do
        out.(obase + (oy * ow) + ox) <- x.data.(xbase + (iy * w) + (ox / 2))
      done
    done
  done;
  make [| c; oh; ow |] out

(* ------------------------------------------------------------------ *)
(* Map utilities.                                                      *)
(* ------------------------------------------------------------------ *)

let resize_nearest m oh ow =
  if rank m <> 2 then invalid_arg "Tensor.resize_nearest: rank-2 only";
  if oh <= 0 || ow <= 0 then invalid_arg "Tensor.resize_nearest: empty target";
  let h = m.shape.(0) and w = m.shape.(1) in
  let out = Array.make (oh * ow) 0. in
  for oy = 0 to oh - 1 do
    let iy = min (h - 1) (oy * h / oh) in
    for ox = 0 to ow - 1 do
      let ix = min (w - 1) (ox * w / ow) in
      out.((oy * ow) + ox) <- m.data.((iy * w) + ix)
    done
  done;
  make [| oh; ow |] out

let as_rank3 t =
  match rank t with
  | 3 -> t
  | 2 -> reshape t [| 1; t.shape.(0); t.shape.(1) |]
  | _ -> invalid_arg "Tensor: expected a rank-2 or rank-3 tensor"

let concat_channels ts =
  match List.map as_rank3 ts with
  | [] -> invalid_arg "Tensor.concat_channels: empty list"
  | first :: _ as ts ->
      let h = first.shape.(1) and w = first.shape.(2) in
      List.iter
        (fun t ->
          if t.shape.(1) <> h || t.shape.(2) <> w then
            invalid_arg "Tensor.concat_channels: spatial mismatch")
        ts;
      let c = List.fold_left (fun acc t -> acc + t.shape.(0)) 0 ts in
      let out = Array.make (c * h * w) 0. in
      let pos = ref 0 in
      List.iter
        (fun t ->
          Array.blit t.data 0 out !pos (Array.length t.data);
          pos := !pos + Array.length t.data)
        ts;
      make [| c; h; w |] out

let slice_channels t lo n =
  let t = as_rank3 t in
  let c = t.shape.(0) and h = t.shape.(1) and w = t.shape.(2) in
  if lo < 0 || n < 0 || lo + n > c then
    invalid_arg "Tensor.slice_channels: out of range";
  let out = Array.make (n * h * w) 0. in
  Array.blit t.data (lo * h * w) out 0 (n * h * w);
  make [| n; h; w |] out

let channel t c =
  let s = slice_channels t c 1 in
  reshape s [| s.shape.(1); s.shape.(2) |]

let pad2d t p =
  if p < 0 then invalid_arg "Tensor.pad2d: negative padding";
  let t3 = as_rank3 t in
  let c = t3.shape.(0) and h = t3.shape.(1) and w = t3.shape.(2) in
  let oh = h + (2 * p) and ow = w + (2 * p) in
  let out = Array.make (c * oh * ow) 0. in
  for ch = 0 to c - 1 do
    for i = 0 to h - 1 do
      Array.blit t3.data ((ch * h * w) + (i * w)) out
        ((ch * oh * ow) + ((i + p) * ow) + p)
        w
    done
  done;
  let res = make [| c; oh; ow |] out in
  if rank t = 2 then reshape res [| oh; ow |] else res

let rot90_2 m =
  let h = m.shape.(0) and w = m.shape.(1) in
  (* counter-clockwise: out[w-1-j][i] = in[i][j] -> out has shape [w; h] *)
  let out = Array.make (w * h) 0. in
  for i = 0 to h - 1 do
    for j = 0 to w - 1 do
      out.(((w - 1 - j) * h) + i) <- m.data.((i * w) + j)
    done
  done;
  make [| w; h |] out

let rot90 t =
  match rank t with
  | 2 -> rot90_2 t
  | 3 ->
      let c = t.shape.(0) in
      concat_channels (List.init c (fun ch -> rot90_2 (channel t ch)))
  | _ -> invalid_arg "Tensor.rot90: rank-2 or rank-3 only"

let flip_last_axis t =
  let r = rank t in
  let w = t.shape.(r - 1) in
  let rows = Array.length t.data / w in
  let out = Array.make (Array.length t.data) 0. in
  for i = 0 to rows - 1 do
    for j = 0 to w - 1 do
      out.((i * w) + (w - 1 - j)) <- t.data.((i * w) + j)
    done
  done;
  make (Array.copy t.shape) out

let flip_h t =
  match rank t with
  | 2 | 3 -> flip_last_axis t
  | _ -> invalid_arg "Tensor.flip_h: rank-2 or rank-3 only"

let flip_v t =
  let flip2 m =
    let h = m.shape.(0) and w = m.shape.(1) in
    let out = Array.make (h * w) 0. in
    for i = 0 to h - 1 do
      Array.blit m.data (i * w) out ((h - 1 - i) * w) w
    done;
    make [| h; w |] out
  in
  match rank t with
  | 2 -> flip2 t
  | 3 ->
      let c = t.shape.(0) in
      concat_channels (List.init c (fun ch -> flip2 (channel t ch)))
  | _ -> invalid_arg "Tensor.flip_v: rank-2 or rank-3 only"

let approx_equal ?(eps = 1e-9) a b =
  same_shape a b
  &&
  let ok = ref true in
  for i = 0 to Array.length a.data - 1 do
    if abs_float (a.data.(i) -. b.data.(i)) > eps then ok := false
  done;
  !ok

let pp ppf t =
  let shape_s =
    t.shape |> Array.to_list |> List.map string_of_int |> String.concat "x"
  in
  let n = Array.length t.data in
  let preview = Array.sub t.data 0 (min n 8) in
  Format.fprintf ppf "tensor[%s](%a%s)" shape_s
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf v -> Format.fprintf ppf "%.4g" v))
    (Array.to_list preview)
    (if n > 8 then ", ..." else "")
