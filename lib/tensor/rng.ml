(* SplitMix64: fast, high-quality, splittable. Reference: Steele,
   Lea & Flood, "Fast splittable pseudorandom number generators",
   OOPSLA 2014. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }

let copy t = { state = t.state }

(* Top 53 bits give a uniform float in [0, 1). *)
let uniform t =
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. 0x1p-53

let float t x = uniform t *. x

let range t lo hi = lo +. (uniform t *. (hi -. lo))

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for our purposes: modulo bias is negligible for
     n << 2^62 and determinism is what we actually need.  Keep only 62
     low bits so the value stays non-negative in OCaml's 63-bit int. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod n

let bool t = Int64.logand (bits64 t) 1L = 1L

let gaussian ?(mu = 0.) ?(sigma = 1.) t =
  (* Box-Muller; we regenerate rather than caching the second deviate to
     keep the stream layout simple and splittable. *)
  let rec draw () =
    let u1 = uniform t in
    if u1 <= 1e-300 then draw () else u1
  in
  (* Sequenced [let .. in], not [let .. and ..]: the evaluation order of
     [and]-bound expressions is unspecified, and both draws advance [t],
     so the stream layout would depend on the compiler.  The guarantee
     (see the interface) is: u1's rejection loop first, then u2. *)
  let u1 = draw () in
  let u2 = uniform t in
  let r = sqrt (-2. *. log u1) in
  mu +. (sigma *. r *. cos (2. *. Float.pi *. u2))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a
