(* Grow-only, per-domain scratch arena.

   The kernel engine needs short-lived float buffers on every call: the
   packed-B tile of a GEMM, an im2col column block, RUDY's per-chunk
   partial congestion maps.  Allocating them fresh each time made every
   training step and every RUDY evaluation pay minor-heap churn and
   major-GC pressure proportional to the scratch footprint (PR 1's
   rudy_map spent more time allocating partial maps than accumulating
   into them on small grids).

   Each domain owns a private list of slots (so borrowing never takes a
   lock and pool workers cannot contend); a slot is a float array that
   is handed out, used, and returned, and is only ever replaced by a
   bigger one.  Capacities are rounded up to powers of two so that
   nearby request sizes reuse one slot instead of growing a ladder of
   near-duplicates.  Steady state — e.g. the Predictor.train epoch loop
   calling the same convolution shapes every step — performs zero
   scratch allocations. *)

type slot = { mutable buf : float array; mutable in_use : bool }

(* The int8 inference path borrows byte buffers (quantized activations,
   im2col scan lines) and word buffers (lane-packed GEMM tiles, column
   sums) with exactly the float pool's lifecycle, so each gets its own
   grow-only slot list in the same per-domain arena. *)
type bslot = { mutable bbuf : Bytes.t; mutable b_in_use : bool }
type islot = { mutable ibuf : int array; mutable i_in_use : bool }

type arena = {
  mutable slots : slot list;
  mutable bslots : bslot list;
  mutable islots : islot list;
  mutable borrows : int;  (* with_* calls served *)
  mutable grows : int;  (* calls that had to allocate or grow a slot *)
}

let key =
  Domain.DLS.new_key (fun () ->
      { slots = []; bslots = []; islots = []; borrows = 0; grows = 0 })

let round_capacity n =
  let c = ref 16 in
  while !c < n do
    c := !c * 2
  done;
  !c

(* Smallest free slot that fits, so a small request does not pin the
   big GEMM slot while a nested borrow is live. *)
let acquire arena n =
  arena.borrows <- arena.borrows + 1;
  let best = ref None in
  List.iter
    (fun s ->
      if (not s.in_use) && Array.length s.buf >= n then
        match !best with
        | Some b when Array.length b.buf <= Array.length s.buf -> ()
        | _ -> best := Some s)
    arena.slots;
  match !best with
  | Some s ->
      s.in_use <- true;
      s
  | None ->
      arena.grows <- arena.grows + 1;
      (* grow the largest free slot rather than adding one, so the
         arena converges to a few big buffers instead of accumulating
         every size ever requested *)
      let grown = ref None in
      List.iter
        (fun s ->
          if not s.in_use then
            match !grown with
            | Some b when Array.length b.buf >= Array.length s.buf -> ()
            | _ -> grown := Some s)
        arena.slots;
      let cap = round_capacity n in
      (match !grown with
      | Some s ->
          s.buf <- Array.make cap 0.;
          s.in_use <- true;
          s
      | None ->
          let s = { buf = Array.make cap 0.; in_use = true } in
          arena.slots <- s :: arena.slots;
          s)

let with_floats n f =
  if n < 0 then invalid_arg "Workspace.with_floats: negative size";
  let arena = Domain.DLS.get key in
  let s = acquire arena n in
  Fun.protect ~finally:(fun () -> s.in_use <- false) (fun () -> f s.buf)

let with_zeroed n f =
  with_floats n (fun buf ->
      Array.fill buf 0 n 0.;
      f buf)

(* Same policy as [acquire], over the byte pool. *)
let acquire_bytes arena n =
  arena.borrows <- arena.borrows + 1;
  let best = ref None in
  List.iter
    (fun s ->
      if (not s.b_in_use) && Bytes.length s.bbuf >= n then
        match !best with
        | Some b when Bytes.length b.bbuf <= Bytes.length s.bbuf -> ()
        | _ -> best := Some s)
    arena.bslots;
  match !best with
  | Some s ->
      s.b_in_use <- true;
      s
  | None ->
      arena.grows <- arena.grows + 1;
      let grown = ref None in
      List.iter
        (fun s ->
          if not s.b_in_use then
            match !grown with
            | Some b when Bytes.length b.bbuf >= Bytes.length s.bbuf -> ()
            | _ -> grown := Some s)
        arena.bslots;
      let cap = round_capacity n in
      (match !grown with
      | Some s ->
          s.bbuf <- Bytes.create cap;
          s.b_in_use <- true;
          s
      | None ->
          let s = { bbuf = Bytes.create cap; b_in_use = true } in
          arena.bslots <- s :: arena.bslots;
          s)

let with_bytes n f =
  if n < 0 then invalid_arg "Workspace.with_bytes: negative size";
  let arena = Domain.DLS.get key in
  let s = acquire_bytes arena n in
  Fun.protect ~finally:(fun () -> s.b_in_use <- false) (fun () -> f s.bbuf)

(* Same policy as [acquire], over the int-word pool. *)
let acquire_ints arena n =
  arena.borrows <- arena.borrows + 1;
  let best = ref None in
  List.iter
    (fun s ->
      if (not s.i_in_use) && Array.length s.ibuf >= n then
        match !best with
        | Some b when Array.length b.ibuf <= Array.length s.ibuf -> ()
        | _ -> best := Some s)
    arena.islots;
  match !best with
  | Some s ->
      s.i_in_use <- true;
      s
  | None ->
      arena.grows <- arena.grows + 1;
      let grown = ref None in
      List.iter
        (fun s ->
          if not s.i_in_use then
            match !grown with
            | Some b when Array.length b.ibuf >= Array.length s.ibuf -> ()
            | _ -> grown := Some s)
        arena.islots;
      let cap = round_capacity n in
      (match !grown with
      | Some s ->
          s.ibuf <- Array.make cap 0;
          s.i_in_use <- true;
          s
      | None ->
          let s = { ibuf = Array.make cap 0; i_in_use = true } in
          arena.islots <- s :: arena.islots;
          s)

let with_ints n f =
  if n < 0 then invalid_arg "Workspace.with_ints: negative size";
  let arena = Domain.DLS.get key in
  let s = acquire_ints arena n in
  Fun.protect ~finally:(fun () -> s.i_in_use <- false) (fun () -> f s.ibuf)

let live_floats () =
  let arena = Domain.DLS.get key in
  List.fold_left (fun acc s -> acc + Array.length s.buf) 0 arena.slots

let live_scratch_bytes () =
  let arena = Domain.DLS.get key in
  (8 * live_floats ())
  + List.fold_left (fun acc s -> acc + Bytes.length s.bbuf) 0 arena.bslots
  + List.fold_left (fun acc s -> acc + (8 * Array.length s.ibuf)) 0 arena.islots

let borrows () = (Domain.DLS.get key).borrows
let grows () = (Domain.DLS.get key).grows

let reset () =
  let arena = Domain.DLS.get key in
  if
    List.exists (fun s -> s.in_use) arena.slots
    || List.exists (fun s -> s.b_in_use) arena.bslots
    || List.exists (fun s -> s.i_in_use) arena.islots
  then invalid_arg "Workspace.reset: a buffer is still borrowed";
  arena.slots <- [];
  arena.bslots <- [];
  arena.islots <- [];
  arena.borrows <- 0;
  arena.grows <- 0
