(* Grow-only, per-domain scratch arena.

   The kernel engine needs short-lived float buffers on every call: the
   packed-B tile of a GEMM, an im2col column block, RUDY's per-chunk
   partial congestion maps.  Allocating them fresh each time made every
   training step and every RUDY evaluation pay minor-heap churn and
   major-GC pressure proportional to the scratch footprint (PR 1's
   rudy_map spent more time allocating partial maps than accumulating
   into them on small grids).

   Each domain owns a private list of slots (so borrowing never takes a
   lock and pool workers cannot contend); a slot is a float array that
   is handed out, used, and returned, and is only ever replaced by a
   bigger one.  Capacities are rounded up to powers of two so that
   nearby request sizes reuse one slot instead of growing a ladder of
   near-duplicates.  Steady state — e.g. the Predictor.train epoch loop
   calling the same convolution shapes every step — performs zero
   scratch allocations. *)

type slot = { mutable buf : float array; mutable in_use : bool }

type arena = {
  mutable slots : slot list;
  mutable borrows : int;  (* with_floats calls served *)
  mutable grows : int;  (* calls that had to allocate or grow a slot *)
}

let key =
  Domain.DLS.new_key (fun () -> { slots = []; borrows = 0; grows = 0 })

let round_capacity n =
  let c = ref 16 in
  while !c < n do
    c := !c * 2
  done;
  !c

(* Smallest free slot that fits, so a small request does not pin the
   big GEMM slot while a nested borrow is live. *)
let acquire arena n =
  arena.borrows <- arena.borrows + 1;
  let best = ref None in
  List.iter
    (fun s ->
      if (not s.in_use) && Array.length s.buf >= n then
        match !best with
        | Some b when Array.length b.buf <= Array.length s.buf -> ()
        | _ -> best := Some s)
    arena.slots;
  match !best with
  | Some s ->
      s.in_use <- true;
      s
  | None ->
      arena.grows <- arena.grows + 1;
      (* grow the largest free slot rather than adding one, so the
         arena converges to a few big buffers instead of accumulating
         every size ever requested *)
      let grown = ref None in
      List.iter
        (fun s ->
          if not s.in_use then
            match !grown with
            | Some b when Array.length b.buf >= Array.length s.buf -> ()
            | _ -> grown := Some s)
        arena.slots;
      let cap = round_capacity n in
      (match !grown with
      | Some s ->
          s.buf <- Array.make cap 0.;
          s.in_use <- true;
          s
      | None ->
          let s = { buf = Array.make cap 0.; in_use = true } in
          arena.slots <- s :: arena.slots;
          s)

let with_floats n f =
  if n < 0 then invalid_arg "Workspace.with_floats: negative size";
  let arena = Domain.DLS.get key in
  let s = acquire arena n in
  Fun.protect ~finally:(fun () -> s.in_use <- false) (fun () -> f s.buf)

let with_zeroed n f =
  with_floats n (fun buf ->
      Array.fill buf 0 n 0.;
      f buf)

let live_floats () =
  let arena = Domain.DLS.get key in
  List.fold_left (fun acc s -> acc + Array.length s.buf) 0 arena.slots

let borrows () = (Domain.DLS.get key).borrows
let grows () = (Domain.DLS.get key).grows

let reset () =
  let arena = Domain.DLS.get key in
  if List.exists (fun s -> s.in_use) arena.slots then
    invalid_arg "Workspace.reset: a buffer is still borrowed";
  arena.slots <- [];
  arena.borrows <- 0;
  arena.grows <- 0
