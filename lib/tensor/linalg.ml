let cholesky a =
  if Tensor.rank a <> 2 || Tensor.dim a 0 <> Tensor.dim a 1 then
    invalid_arg "Linalg.cholesky: square rank-2 tensor expected";
  let n = Tensor.dim a 0 in
  let l = Tensor.zeros [| n; n |] in
  for i = 0 to n - 1 do
    for j = 0 to i do
      let s = ref (Tensor.get2 a i j) in
      for k = 0 to j - 1 do
        s := !s -. (Tensor.get2 l i k *. Tensor.get2 l j k)
      done;
      if i = j then begin
        if !s <= 0. then failwith "Linalg.cholesky: matrix not positive definite";
        Tensor.set2 l i j (sqrt !s)
      end
      else Tensor.set2 l i j (!s /. Tensor.get2 l j j)
    done
  done;
  l

let solve_lower l b =
  let n = Tensor.dim l 0 in
  let x = Array.make n 0. in
  for i = 0 to n - 1 do
    let s = ref (Tensor.get_flat b i) in
    for k = 0 to i - 1 do
      s := !s -. (Tensor.get2 l i k *. x.(k))
    done;
    x.(i) <- !s /. Tensor.get2 l i i
  done;
  Tensor.of_array1 x

let solve_upper u b =
  let n = Tensor.dim u 0 in
  let x = Array.make n 0. in
  for i = n - 1 downto 0 do
    let s = ref (Tensor.get_flat b i) in
    for k = i + 1 to n - 1 do
      s := !s -. (Tensor.get2 u i k *. x.(k))
    done;
    x.(i) <- !s /. Tensor.get2 u i i
  done;
  Tensor.of_array1 x

let solve_lower_transposed l b =
  let n = Tensor.dim l 0 in
  let x = Array.make n 0. in
  for i = n - 1 downto 0 do
    let s = ref (Tensor.get_flat b i) in
    for k = i + 1 to n - 1 do
      s := !s -. (Tensor.get2 l k i *. x.(k))
    done;
    x.(i) <- !s /. Tensor.get2 l i i
  done;
  Tensor.of_array1 x

let cholesky_solve l b =
  let y = solve_lower l b in
  solve_lower_transposed l y

type cg_status = Converged | Max_iter | Breakdown

let string_of_cg_status = function
  | Converged -> "converged"
  | Max_iter -> "max_iter"
  | Breakdown -> "breakdown"

let conjugate_gradient ?(max_iter = 200) ?(tol = 1e-8) ?iterations_out
    ?status_out matvec b x0 =
  let n = Array.length b in
  let x = Array.copy x0 in
  let ax = matvec x in
  let r = Array.init n (fun i -> b.(i) -. ax.(i)) in
  let p = Array.copy r in
  let dot u v =
    let acc = ref 0. in
    for i = 0 to n - 1 do
      acc := !acc +. (u.(i) *. v.(i))
    done;
    !acc
  in
  let bnorm = sqrt (dot b b) in
  let target = tol *. Float.max bnorm 1e-30 in
  let rs = ref (dot r r) in
  let iter = ref 0 in
  let broke_down = ref false in
  while (not !broke_down) && !iter < max_iter && sqrt !rs > target do
    let ap = matvec p in
    let denom = dot p ap in
    if denom <= 0. then broke_down := true (* lost positive-definiteness *)
    else begin
      let alpha = !rs /. denom in
      for i = 0 to n - 1 do
        x.(i) <- x.(i) +. (alpha *. p.(i));
        r.(i) <- r.(i) -. (alpha *. ap.(i))
      done;
      let rs' = dot r r in
      let beta = rs' /. !rs in
      for i = 0 to n - 1 do
        p.(i) <- r.(i) +. (beta *. p.(i))
      done;
      rs := rs';
      incr iter
    end
  done;
  let status =
    if !broke_down then Breakdown
    else if sqrt !rs <= target then Converged
    else Max_iter
  in
  (match iterations_out with Some r -> r := !iter | None -> ());
  (match status_out with Some s -> s := status | None -> ());
  x
