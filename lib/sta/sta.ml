module T = Dco3d_tensor.Tensor
module Nl = Dco3d_netlist.Netlist
module Cl = Dco3d_netlist.Cell_lib
module Obs = Dco3d_obs.Obs

type config = {
  clock_period_ps : float;
  wire_res : float;
  wire_cap : float;
  via_delay_ps : float;
  setup_ps : float;
  clk_to_q_ps : float;
  voltage : float;
  pi_activity : float;
}

let default_config ~clock_period_ps =
  {
    clock_period_ps;
    wire_res = 0.8;  (* kOhm / um: thin 3nm wires are resistive *)
    wire_cap = 0.22;  (* fF / um *)
    via_delay_ps = 2.5;
    setup_ps = 8.0;
    clk_to_q_ps = 22.0;
    voltage = 0.7;
    pi_activity = 0.18;
  }

type timing = {
  wns : float;
  tns : float;
  n_violations : int;
  critical_delay : float;
  cell_slack : float array;
  cell_in_slew : float array;
  cell_out_slew : float array;
  cell_arrival : float array;
}

(* pin capacitance seen by a net: sum over its sink pins *)
let sink_cap nl (net : Nl.net) =
  Array.fold_left
    (fun acc e ->
      match e with
      | Nl.Cell c -> acc +. nl.Nl.masters.(c).Cl.input_cap
      | Nl.Io _ -> acc +. 2.0 (* pad cap *))
    0. net.Nl.sinks

let net_load cfg nl ~net_length (net : Nl.net) =
  let l = net_length.(net.Nl.net_id) in
  (cfg.wire_cap *. l) +. sink_cap nl net

(* High-fanout nets are implicitly buffered (every signoff flow does
   this): the driver sees at most [buffered_load_cap] of capacitance,
   and the tree contributes a logarithmic stage delay instead of the
   raw RC of the full load. *)
let buffered_load_cap = 24.0
let buffer_stage_ps = 9.0

let net_delay cfg nl ~net_length ~net_is_3d (net : Nl.net) r_drv =
  let l = net_length.(net.Nl.net_id) in
  let c_wire = cfg.wire_cap *. l in
  let r_wire = cfg.wire_res *. l in
  let c_total = c_wire +. sink_cap nl net in
  let fanout = Array.length net.Nl.sinks in
  let tree_delay =
    if c_total > buffered_load_cap then
      buffer_stage_ps
      *. Float.max 1. (log (c_total /. buffered_load_cap) /. log 2.)
    else 0.
  in
  (r_drv *. Float.min c_total buffered_load_cap)
  +. tree_delay
  +. (0.5 *. r_wire *. Float.min c_wire buffered_load_cap
      *. (1. +. (0.1 *. log (1. +. float_of_int fanout))))
  +. if net_is_3d net.Nl.net_id then cfg.via_delay_ps else 0.

let topo_cells nl =
  match Nl.levelize nl with
  | None -> invalid_arg "Sta.analyze: combinational cycle"
  | Some levels ->
      let order = Array.init (Nl.n_cells nl) Fun.id in
      Array.sort (fun a b -> compare levels.(a) levels.(b)) order;
      order

let c_analyses = Obs.counter "sta/analyses"

let analyze cfg nl ~net_length ~net_is_3d =
  Obs.with_span "sta" @@ fun () ->
  Obs.incr c_analyses;
  let n = Nl.n_cells nl in
  let nn = Nl.n_nets nl in
  let order = topo_cells nl in
  let cell_arrival = Array.make n 0. in
  let cell_out_slew = Array.make n 0. in
  let cell_in_slew = Array.make n 0. in
  (* arrival time and slew at every net's sink pins *)
  let net_arrival = Array.make nn 0. in
  let net_slew = Array.make nn 0. in
  let is_source c = nl.Nl.masters.(c).Cl.is_seq || Nl.is_macro nl c in
  (* forward propagation in level order *)
  Array.iter
    (fun c ->
      let m = nl.Nl.masters.(c) in
      let in_arrival = ref 0. and in_slew = ref 0. in
      if not (is_source c) then
        Array.iter
          (fun nid ->
            if not nl.Nl.nets.(nid).Nl.is_clock then begin
              if net_arrival.(nid) > !in_arrival then
                in_arrival := net_arrival.(nid);
              if net_slew.(nid) > !in_slew then in_slew := net_slew.(nid)
            end)
          nl.Nl.cell_fanin.(c);
      cell_in_slew.(c) <- !in_slew;
      let launch =
        if is_source c then cfg.clk_to_q_ps
        else !in_arrival +. m.Cl.intrinsic_delay +. (0.1 *. !in_slew)
      in
      cell_arrival.(c) <- launch;
      let out = nl.Nl.cell_fanout.(c) in
      if out >= 0 && not nl.Nl.nets.(out).Nl.is_clock then begin
        let net = nl.Nl.nets.(out) in
        let d = net_delay cfg nl ~net_length ~net_is_3d net m.Cl.drive_res in
        net_arrival.(out) <- launch +. d;
        let slew =
          2.2 *. m.Cl.drive_res
          *. Float.min buffered_load_cap (net_load cfg nl ~net_length net)
        in
        net_slew.(out) <- slew;
        cell_out_slew.(c) <- slew
      end)
    order;
  (* primary-input nets launch at t = 0 with a pad drive *)
  Array.iter
    (fun (net : Nl.net) ->
      match net.Nl.driver with
      | Nl.Io _ when not net.Nl.is_clock ->
          let r_pad = 1.0 in
          net_arrival.(net.Nl.net_id) <-
            net_delay cfg nl ~net_length ~net_is_3d net r_pad;
          net_slew.(net.Nl.net_id) <-
            2.2 *. r_pad
            *. Float.min buffered_load_cap (net_load cfg nl ~net_length net)
      | Nl.Io _ | Nl.Cell _ -> ())
    nl.Nl.nets;
  (* endpoint slacks: flip-flop / macro data pins and primary outputs *)
  let wns = ref 0. and tns = ref 0. and n_violations = ref 0 in
  let critical = ref 0. in
  let endpoint_slacks = Array.make nn infinity in
  let record_endpoint arrival =
    let slack = cfg.clock_period_ps -. cfg.setup_ps -. arrival in
    if arrival > !critical then critical := arrival;
    if slack < 0. then begin
      incr n_violations;
      tns := !tns +. slack;
      if slack < !wns then wns := slack
    end;
    slack
  in
  Array.iteri
    (fun nid (net : Nl.net) ->
      if not net.Nl.is_clock then begin
        let arr = net_arrival.(nid) in
        let has_endpoint =
          Array.exists
            (fun e ->
              match e with
              | Nl.Cell c -> is_source c
              | Nl.Io i -> nl.Nl.ios.(i).Nl.dir = Nl.Out)
            net.Nl.sinks
        in
        if has_endpoint then
          endpoint_slacks.(nid) <- record_endpoint arr
      end)
    nl.Nl.nets;
  (* per-cell worst slack: backward propagation of required times *)
  let cell_slack = Array.make n infinity in
  let net_required = Array.make nn infinity in
  Array.iteri
    (fun nid s -> if s < infinity then net_required.(nid) <- net_arrival.(nid) +. s)
    endpoint_slacks;
  (* reverse level order *)
  let rev = Array.copy order in
  let len = Array.length rev in
  for i = 0 to (len / 2) - 1 do
    let t = rev.(i) in
    rev.(i) <- rev.(len - 1 - i);
    rev.(len - 1 - i) <- t
  done;
  Array.iter
    (fun c ->
      let out = nl.Nl.cell_fanout.(c) in
      let req_out =
        if out >= 0 && not nl.Nl.nets.(out).Nl.is_clock then net_required.(out)
        else infinity
      in
      (* slack through this cell *)
      let slack =
        if req_out = infinity then infinity
        else begin
          (* time of signal at this cell's output net sinks *)
          let arr = if out >= 0 then cell_arrival.(c) else 0. in
          req_out
          -. arr
          -.
          match out >= 0 with
          | true ->
              let m = nl.Nl.masters.(c) in
              net_delay cfg nl ~net_length ~net_is_3d nl.Nl.nets.(out)
                m.Cl.drive_res
          | false -> 0.
        end
      in
      cell_slack.(c) <- slack;
      (* propagate required into fanin nets *)
      if (not (is_source c)) && slack < infinity then begin
        let m = nl.Nl.masters.(c) in
        Array.iter
          (fun nid ->
            if not nl.Nl.nets.(nid).Nl.is_clock then begin
              let req_in = cell_arrival.(c) +. slack -. m.Cl.intrinsic_delay in
              if req_in < net_required.(nid) then net_required.(nid) <- req_in
            end)
          nl.Nl.cell_fanin.(c)
      end)
    rev;
  (* slack defaults for cells off any constrained path *)
  for c = 0 to n - 1 do
    if cell_slack.(c) = infinity then
      cell_slack.(c) <- cfg.clock_period_ps
  done;
  {
    wns = !wns;
    tns = !tns;
    n_violations = !n_violations;
    critical_delay = !critical;
    cell_slack;
    cell_in_slew;
    cell_out_slew;
    cell_arrival;
  }

let critical_path nl (t : timing) =
  let n = Nl.n_cells nl in
  if n = 0 then []
  else begin
    let is_source c = nl.Nl.masters.(c).Cl.is_seq || Nl.is_macro nl c in
    (* latest-arriving cell *)
    let endpoint = ref 0 in
    for c = 1 to n - 1 do
      if t.cell_arrival.(c) > t.cell_arrival.(!endpoint) then endpoint := c
    done;
    let rec walk c acc guard =
      let acc = c :: acc in
      if is_source c || guard <= 0 then acc
      else begin
        (* the fanin driver with the latest arrival dominates the stage *)
        let best = ref None in
        Array.iter
          (fun nid ->
            let net = nl.Nl.nets.(nid) in
            if not net.Nl.is_clock then
              match net.Nl.driver with
              | Nl.Cell d -> (
                  match !best with
                  | Some b when t.cell_arrival.(b) >= t.cell_arrival.(d) -> ()
                  | _ -> best := Some d)
              | Nl.Io _ -> ())
          nl.Nl.cell_fanin.(c);
        match !best with
        | Some d -> walk d acc (guard - 1)
        | None -> acc
      end
    in
    walk !endpoint [] (n + 1)
  end

let suggest_period nl ~net_length ~net_is_3d =
  let cfg = default_config ~clock_period_ps:1e9 in
  let t = analyze cfg nl ~net_length ~net_is_3d in
  (* tighter than critical: signoff starts with violations to fix *)
  0.72 *. (t.critical_delay +. cfg.setup_ps)

type power = {
  switching_mw : float;
  internal_mw : float;
  leakage_mw : float;
  clock_mw : float;
  total_mw : float;
  net_switch_mw : float array;
  cell_internal_mw : float array;
  activity : float array;
}

let estimate_power cfg nl ~net_length ?(clock_wirelength = 0.)
    ?(clock_buffers = 0) () =
  let n = Nl.n_cells nl in
  let nn = Nl.n_nets nl in
  let freq_ghz = 1000. /. cfg.clock_period_ps in
  let v2 = cfg.voltage *. cfg.voltage in
  let order = topo_cells nl in
  let activity = Array.make nn 0. in
  let is_source c = nl.Nl.masters.(c).Cl.is_seq || Nl.is_macro nl c in
  (* primary inputs toggle at pi_activity *)
  Array.iter
    (fun (net : Nl.net) ->
      match net.Nl.driver with
      | Nl.Io _ when not net.Nl.is_clock ->
          activity.(net.Nl.net_id) <- cfg.pi_activity
      | Nl.Io _ | Nl.Cell _ -> ())
    nl.Nl.nets;
  (* Seed every source-driven net (FF / macro outputs) BEFORE the
     propagation walk.  Sources sit at level 0 alongside combinational
     cells, so assigning their outputs inside the level-order loop
     would let a level-0 comb cell read a sibling source's output as 0.
     or 0.20 depending on cell-array position — the result would leak
     the netlist's array ordering.  With all sources (and PIs, above)
     pre-seeded, comb→comb arcs strictly increase level and the walk
     below is order-independent. *)
  Array.iter
    (fun c ->
      let out = nl.Nl.cell_fanout.(c) in
      if out >= 0 && (not nl.Nl.nets.(out).Nl.is_clock) && is_source c then
        activity.(out) <- 0.20)
    order;
  Array.iter
    (fun c ->
      let out = nl.Nl.cell_fanout.(c) in
      if out >= 0 && not nl.Nl.nets.(out).Nl.is_clock then
        if is_source c then ()
        else begin
          (* logic attenuates toggling *)
          let fanin = nl.Nl.cell_fanin.(c) in
          let acc = ref 0. and k = ref 0 in
          Array.iter
            (fun nid ->
              if not nl.Nl.nets.(nid).Nl.is_clock then begin
                acc := !acc +. activity.(nid);
                incr k
              end)
            fanin;
          let avg = if !k = 0 then cfg.pi_activity else !acc /. float_of_int !k in
          activity.(out) <- 0.85 *. avg
        end)
    order;
  let net_switch_mw = Array.make nn 0. in
  let switching = ref 0. in
  Array.iteri
    (fun nid (net : Nl.net) ->
      if not net.Nl.is_clock then begin
        let c_total =
          (cfg.wire_cap *. net_length.(nid)) +. sink_cap nl net
        in
        (* fF * V^2 * GHz = uW *)
        let p_uw = 0.5 *. activity.(nid) *. c_total *. v2 *. freq_ghz in
        net_switch_mw.(nid) <- p_uw /. 1000.;
        switching := !switching +. (p_uw /. 1000.)
      end)
    nl.Nl.nets;
  let cell_internal_mw = Array.make n 0. in
  let internal_ = ref 0. and leakage = ref 0. in
  for c = 0 to n - 1 do
    let m = nl.Nl.masters.(c) in
    let out = nl.Nl.cell_fanout.(c) in
    let a =
      if out >= 0 && not nl.Nl.nets.(out).Nl.is_clock then activity.(out)
      else if m.Cl.is_seq then 0.20
      else 0.05
    in
    let p_uw = a *. m.Cl.internal_energy *. freq_ghz in
    cell_internal_mw.(c) <- p_uw /. 1000.;
    internal_ := !internal_ +. (p_uw /. 1000.);
    leakage := !leakage +. (m.Cl.leakage /. 1e6)
    (* nW -> mW *)
  done;
  (* clock network: full-swing toggling every cycle (activity 1) *)
  let n_ff =
    Array.fold_left (fun a m -> if m.Cl.is_seq then a + 1 else a) 0 nl.Nl.masters
  in
  let clk_cap =
    (cfg.wire_cap *. clock_wirelength)
    +. (float_of_int n_ff *. 0.9)
    +. (float_of_int clock_buffers *. 1.2)
  in
  let clock_mw = 0.5 *. 2.0 *. clk_cap *. v2 *. freq_ghz /. 1000. in
  {
    switching_mw = !switching;
    internal_mw = !internal_;
    leakage_mw = !leakage;
    clock_mw;
    total_mw = !switching +. !internal_ +. !leakage +. clock_mw;
    net_switch_mw;
    cell_internal_mw;
    activity;
  }

let node_features nl (t : timing) (p : power) =
  let n = Nl.n_cells nl in
  T.init [| n; 8 |] (fun idx ->
      let c = idx.(0) in
      let m = nl.Nl.masters.(c) in
      let out = nl.Nl.cell_fanout.(c) in
      match idx.(1) with
      | 0 ->
          (* worst slack, scaled; clamp the off-path +period default *)
          Float.max (-5.) (Float.min 5. (t.cell_slack.(c) /. 100.))
      | 1 -> Float.min 5. (t.cell_out_slew.(c) /. 50.)
      | 2 -> Float.min 5. (t.cell_in_slew.(c) /. 50.)
      | 3 -> if out >= 0 then p.net_switch_mw.(out) *. 1e3 else 0.
      | 4 -> p.cell_internal_mw.(c) *. 1e3
      | 5 -> m.Cl.leakage /. 10.
      | 6 -> m.Cl.width /. 0.3
      | 7 -> m.Cl.height /. 0.3
      | _ -> assert false)
