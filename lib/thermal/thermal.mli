(** Steady-state thermal analysis for the two-tier F2F stack.

    HotSpot-style grid model in the spirit of TaiWei (PAPERS.md): the
    activity-based power estimate ({!Dco3d_sta.Sta.estimate_power}) is
    binned onto the congestion GCell grid per tier, and the steady-state
    heat equation is solved on that grid with a 5-point lateral Laplacian
    per tier, an inter-tier coupling term for the hybrid-bonded
    face-to-face interface, and a heat-sink path from the bottom die.
    The discrete system is a weighted graph Laplacian plus a positive
    sink diagonal — symmetric positive definite — so it is solved
    matrix-free with {!Dco3d_tensor.Linalg.conjugate_gradient}.  The
    matvec is parallelized over grid rows on the domain pool; each
    output element has exactly one writer, so the solve is bit-identical
    at any [DCO3D_JOBS].

    Physical picture (paper section V): the bottom die (tier 0) is
    attached to the heat sink, the top die (tier 1) only cools through
    the F2F interface, so top-die cells run hotter — which is what the
    thermal penalty in the spreading loss exploits to pull hot cells
    down a tier or apart laterally. *)

type config = {
  k_lateral : float;  (** lateral conductance between GCell neighbors, mW/K *)
  k_vertical : float;  (** F2F inter-tier conductance per GCell, mW/K *)
  h_sink : float;  (** bottom-die heat-sink conductance per GCell, mW/K *)
  ambient_c : float;  (** ambient / heat-sink temperature, deg C *)
  max_iter : int;  (** CG iteration budget *)
  tol : float;  (** CG relative-residual tolerance *)
}

val default_config : config
(** [k_lateral = 0.02], [k_vertical = 0.08], [h_sink = 0.05],
    [ambient_c = 25.], [max_iter = 600], [tol = 1e-7]. *)

type result = {
  grid : Dco3d_tensor.Tensor.t;
      (** temperatures, deg C, shape [\[2; ny; nx\]] (tier 0 = bottom) *)
  peak_c : float;  (** hottest node, deg C *)
  avg_c : float;  (** mean node temperature, deg C *)
  cg_iters : int;  (** CG iterations spent *)
  cg_status : Dco3d_tensor.Linalg.cg_status;
      (** solver terminal status; {!Dco3d_tensor.Linalg.Breakdown} means
          the discretization lost positive-definiteness (a config bug —
          surfaced, never silently misreported as non-convergence) *)
}

val placement_power : Dco3d_place.Placement.t -> Dco3d_sta.Sta.power
(** Pre-route power estimate from HPWL net lengths (the spreading
    loop's view: no routed wirelength, no CTS clock tree). *)

val cell_power :
  Dco3d_place.Placement.t ->
  power:Dco3d_sta.Sta.power ->
  float array
(** Per-cell power attribution, mW: internal + leakage + the switching
    power of the net the cell drives (IO-driven nets split evenly over
    their sink cells) + an equal flip-flop share of the clock power.
    This is the vector {!power_density} bins; the spreading loss bins
    it at the {e soft} cell positions instead. *)

val power_density :
  Dco3d_place.Placement.t ->
  power:Dco3d_sta.Sta.power ->
  nx:int ->
  ny:int ->
  Dco3d_tensor.Tensor.t
(** Per-tier power map, mW per GCell, shape [\[2; ny; nx\]].  Each
    cell contributes its internal + leakage power plus the switching
    power of the net it drives, binned at the cell's location; nets
    driven by IO pads split their switching power evenly over their
    sink cells.  Clock power ([power.clock_mw]) is smeared over the
    clock tree's sinks: distributed per tier proportionally to the
    flip-flop population of each GCell (uniformly if the design has no
    flip-flops). *)

val solve :
  ?config:config -> power_grid:Dco3d_tensor.Tensor.t -> unit -> result
(** Solve steady state for a [\[2; ny; nx\]] power map (mW per GCell).
    Deterministic at any [DCO3D_JOBS]. *)

val solve_placement :
  ?config:config ->
  ?nx:int ->
  ?ny:int ->
  Dco3d_place.Placement.t ->
  result
(** One-call convenience for the placement loop: estimate power from
    HPWL net lengths (pre-route, no CTS — clock power excluded), bin,
    and solve.  Grid defaults to the floorplan's GCell grid. *)

val solve_power :
  ?config:config ->
  nx:int ->
  ny:int ->
  Dco3d_place.Placement.t ->
  Dco3d_sta.Sta.power ->
  result
(** [solve_power ~nx ~ny p power] bins an externally computed power
    estimate (e.g. the signoff one with routed wirelength and CTS clock
    power) and solves — the flow's Table-III path. *)
