module T = Dco3d_tensor.Tensor
module Linalg = Dco3d_tensor.Linalg
module Pool = Dco3d_parallel.Pool
module Obs = Dco3d_obs.Obs
module Nl = Dco3d_netlist.Netlist
module Cl = Dco3d_netlist.Cell_lib
module Pl = Dco3d_place.Placement
module Sta = Dco3d_sta.Sta

type config = {
  k_lateral : float;
  k_vertical : float;
  h_sink : float;
  ambient_c : float;
  max_iter : int;
  tol : float;
}

(* The sink is the dominant escape path (as in any real package: almost
   all heat leaves through the heat sink, not sideways through the die
   edge).  h_sink >= k_lateral keeps the lateral diffusion length around
   one GCell, so hotspots stay localized and placement can actually move
   them; a weak sink would flatten the field until the two tiers are
   near-isothermal and the thermal penalty has nothing to push on. *)
let default_config =
  {
    k_lateral = 0.02;
    k_vertical = 0.08;
    h_sink = 0.05;
    ambient_c = 25.;
    max_iter = 600;
    tol = 1e-7;
  }

type result = {
  grid : T.t;
  peak_c : float;
  avg_c : float;
  cg_iters : int;
  cg_status : Linalg.cg_status;
}

let c_solves = Obs.counter "thermal/solves"
let c_cg_iters = Obs.counter "thermal/cg_iters"
let c_breakdowns = Obs.counter "thermal/cg_breakdowns"

(* ------------------------------------------------------------------ *)
(* Power binning                                                       *)
(* ------------------------------------------------------------------ *)

let bin_of extent n coord =
  let b = int_of_float (coord /. extent *. float_of_int n) in
  if b < 0 then 0 else if b > n - 1 then n - 1 else b

let cell_power (p : Pl.t) ~(power : Sta.power) =
  let nl = p.Pl.nl in
  let n = Nl.n_cells nl in
  (* per-cell power: internal + leakage + switching of the nets the
     cell is responsible for *)
  let cell_mw = Array.make n 0. in
  for c = 0 to n - 1 do
    cell_mw.(c) <-
      power.Sta.cell_internal_mw.(c)
      +. (nl.Nl.masters.(c).Cl.leakage /. 1e6)
  done;
  Array.iter
    (fun (net : Nl.net) ->
      if not net.Nl.is_clock then
        let mw = power.Sta.net_switch_mw.(net.Nl.net_id) in
        if mw > 0. then
          match net.Nl.driver with
          | Nl.Cell c -> cell_mw.(c) <- cell_mw.(c) +. mw
          | Nl.Io _ ->
              (* a pad drives it: charge the on-die receivers evenly so
                 no power is dropped from the map *)
              let cells =
                Array.fold_left
                  (fun acc ep ->
                    match ep with Nl.Cell _ -> acc + 1 | Nl.Io _ -> acc)
                  0 net.Nl.sinks
              in
              if cells > 0 then begin
                let share = mw /. float_of_int cells in
                Array.iter
                  (function
                    | Nl.Cell c -> cell_mw.(c) <- cell_mw.(c) +. share
                    | Nl.Io _ -> ())
                  net.Nl.sinks
              end)
    nl.Nl.nets;
  (* clock-tree power: CTS reports wire + buffer totals without
     geometry, so smear it over the tree's sinks — an equal share per
     flip-flop (the buffers sit at sink centroids, so this tracks the
     wiring closely enough for a thermal map).  A design with no
     flip-flops keeps the clock power out of the per-cell vector; the
     binning below spreads it uniformly instead. *)
  let n_ff =
    Array.fold_left
      (fun a (m : Cl.master) -> if m.Cl.is_seq then a + 1 else a)
      0 nl.Nl.masters
  in
  if power.Sta.clock_mw > 0. && n_ff > 0 then begin
    let per_ff = power.Sta.clock_mw /. float_of_int n_ff in
    for c = 0 to n - 1 do
      if nl.Nl.masters.(c).Cl.is_seq then
        cell_mw.(c) <- cell_mw.(c) +. per_ff
    done
  end;
  cell_mw

let power_density (p : Pl.t) ~(power : Sta.power) ~nx ~ny =
  let nl = p.Pl.nl in
  let n = Nl.n_cells nl in
  let w = p.Pl.fp.Dco3d_place.Floorplan.width in
  let h = p.Pl.fp.Dco3d_place.Floorplan.height in
  let cell_mw = cell_power p ~power in
  let grid = T.zeros [| 2; ny; nx |] in
  let add tier y x mw = T.set3 grid tier y x (T.get3 grid tier y x +. mw) in
  for c = 0 to n - 1 do
    let bx = bin_of w nx p.Pl.x.(c) in
    let by = bin_of h ny p.Pl.y.(c) in
    add p.Pl.tier.(c) by bx cell_mw.(c)
  done;
  let n_ff =
    Array.fold_left
      (fun a (m : Cl.master) -> if m.Cl.is_seq then a + 1 else a)
      0 nl.Nl.masters
  in
  if power.Sta.clock_mw > 0. && n_ff = 0 then begin
    let per_node = power.Sta.clock_mw /. float_of_int (2 * ny * nx) in
    for tier = 0 to 1 do
      for y = 0 to ny - 1 do
        for x = 0 to nx - 1 do
          add tier y x per_node
        done
      done
    done
  end;
  grid

(* ------------------------------------------------------------------ *)
(* Steady-state solve                                                  *)
(* ------------------------------------------------------------------ *)

let solve ?(config = default_config) ~power_grid () =
  let shape = T.shape power_grid in
  if Array.length shape <> 3 || shape.(0) <> 2 then
    invalid_arg "Thermal.solve: power grid must be [2; ny; nx]";
  let ny = shape.(1) and nx = shape.(2) in
  let nv = 2 * ny * nx in
  let idx tier y x = ((tier * ny) + y) * nx + x in
  let kl = config.k_lateral
  and kz = config.k_vertical
  and hs = config.h_sink in
  (* diagonal = sum of incident conductances (+ sink on the bottom
     die); with hs > 0 the system is an SPD weighted Laplacian *)
  let diag = Array.make nv 0. in
  for tier = 0 to 1 do
    for y = 0 to ny - 1 do
      for x = 0 to nx - 1 do
        let nbrs =
          (if x > 0 then 1 else 0)
          + (if x < nx - 1 then 1 else 0)
          + (if y > 0 then 1 else 0)
          + if y < ny - 1 then 1 else 0
        in
        diag.(idx tier y x) <-
          (kl *. float_of_int nbrs) +. kz +. (if tier = 0 then hs else 0.)
      done
    done
  done;
  (* matrix-free A*v, parallel over the 2*ny grid rows: each output
     element is written by exactly one row task, so the product (and
     the whole CG trajectory built from it) is bit-identical at any
     DCO3D_JOBS *)
  let matvec v =
    let out = Array.make nv 0. in
    Pool.parallel_for 0 (2 * ny) (fun row ->
        let tier = row / ny in
        let y = row mod ny in
        let other = 1 - tier in
        let base = row * nx in
        for x = 0 to nx - 1 do
          let i = base + x in
          let acc = ref (diag.(i) *. v.(i)) in
          if x > 0 then acc := !acc -. (kl *. v.(i - 1));
          if x < nx - 1 then acc := !acc -. (kl *. v.(i + 1));
          if y > 0 then acc := !acc -. (kl *. v.(i - nx));
          if y < ny - 1 then acc := !acc -. (kl *. v.(i + nx));
          acc := !acc -. (kz *. v.(idx other y x));
          out.(i) <- !acc
        done);
    out
  in
  let b = Array.make nv 0. in
  for tier = 0 to 1 do
    for y = 0 to ny - 1 do
      for x = 0 to nx - 1 do
        b.(idx tier y x) <- T.get3 power_grid tier y x
      done
    done
  done;
  let iters = ref 0 in
  let status = ref Linalg.Converged in
  let rise =
    Obs.with_span "thermal_solve" (fun () ->
        Linalg.conjugate_gradient ~max_iter:config.max_iter ~tol:config.tol
          ~iterations_out:iters ~status_out:status matvec b
          (Array.make nv 0.))
  in
  Obs.incr c_solves;
  Obs.incr ~by:!iters c_cg_iters;
  (match !status with
  | Linalg.Breakdown -> Obs.incr c_breakdowns
  | Linalg.Converged | Linalg.Max_iter -> ());
  let data = Array.map (fun t -> t +. config.ambient_c) rise in
  let grid = T.make [| 2; ny; nx |] data in
  let peak = Array.fold_left Float.max neg_infinity data in
  let avg = Array.fold_left ( +. ) 0. data /. float_of_int nv in
  {
    grid;
    peak_c = peak;
    avg_c = avg;
    cg_iters = !iters;
    cg_status = !status;
  }

let solve_power ?config ~nx ~ny (p : Pl.t) power =
  let power_grid = power_density p ~power ~nx ~ny in
  solve ?config ~power_grid ()

let placement_power (p : Pl.t) =
  let nl = p.Pl.nl in
  let net_length =
    Array.map
      (fun (net : Nl.net) ->
        let x0, y0, x1, y1 = Pl.net_bbox p net in
        Float.max 0.5 (x1 -. x0 +. (y1 -. y0)))
      nl.Nl.nets
  in
  let cfg = Sta.default_config ~clock_period_ps:500. in
  Sta.estimate_power cfg nl ~net_length ()

let solve_placement ?config ?nx ?ny (p : Pl.t) =
  let fp = p.Pl.fp in
  let nx = Option.value nx ~default:fp.Dco3d_place.Floorplan.gcell_nx in
  let ny = Option.value ny ~default:fp.Dco3d_place.Floorplan.gcell_ny in
  solve_power ?config ~nx ~ny p (placement_power p)
