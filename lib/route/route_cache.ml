(* Content-addressed disk cache of full routing results.

   Routing is a pure function of (netlist structure, GCell-binned
   placement, grid geometry, config) — the router's sort keys, pin
   densities and traces all read the placement through `Fp.gcell_of`
   (see [Router.endpoint_bins]) — so those inputs hash to the cache
   key and a hit replays the stored result bit-identically (the
   determinism digest of a replay equals the cold route's).

   One file per key under the cache dir, shared [Framing] layout:

     "DCO3D-ROUTE-V1" | 16-byte MD5(body) | body

   with body = Marshal of (key, flattened result).  The stored key is
   re-checked after unmarshalling, so an MD5 filename collision or a
   foreign file can never serve the wrong layout.  Writes are
   temp-file + rename, so shard daemons and parallel dataset workers
   can share one cache directory; all IO is best-effort. *)

module T = Dco3d_tensor.Tensor
module Nl = Dco3d_netlist.Netlist
module Fp = Dco3d_place.Floorplan
module Pl = Dco3d_place.Placement
module Obs = Dco3d_obs.Obs
module Framing = Dco3d_framing.Framing

type t = { dir : string; max_entries : int }

let magic = "DCO3D-ROUTE-V1"
let suffix = ".route"

let default_max_entries () =
  match int_of_string_opt (Sys.getenv "DCO3D_ROUTE_CACHE_CAP") with
  | Some n when n > 0 -> n
  | Some _ | None -> 4096
  | exception Not_found -> 4096

let create ?max_entries dir =
  Framing.mkdir_p dir;
  let max_entries =
    match max_entries with
    | Some n when n > 0 -> n
    | Some _ | None -> default_max_entries ()
  in
  { dir; max_entries }

let dir t = t.dir
let max_entries t = t.max_entries

(* Hits and misses are functions of the request stream alone, so both
   counters are jobs-invariant; so is [evicted] (writes beyond the cap
   are too). *)
let c_hit = Obs.counter "route/cache_hit"
let c_miss = Obs.counter "route/cache_miss"
let c_evicted = Obs.counter "route/cache_evicted"

let add_int buf i = Buffer.add_string buf (Printf.sprintf " %d" i)

(* exact bit pattern — "%g"-style rounding could alias two configs *)
let add_float buf f =
  Buffer.add_string buf (Printf.sprintf " %Lx" (Int64.bits_of_float f))

let key ~(config : Router.config) (p : Pl.t) =
  let buf = Buffer.create 65536 in
  let nl = p.Pl.nl and fp = p.Pl.fp in
  let add_endpoint e =
    match e with
    | Nl.Cell c ->
        add_int buf 0;
        add_int buf c
    | Nl.Io i ->
        add_int buf 1;
        add_int buf i
  in
  (* netlist structure, in net order (signal_nets derives from it);
     masters are excluded — routing never reads them *)
  Buffer.add_string buf nl.Nl.design;
  add_int buf (Nl.n_cells nl);
  add_int buf (Nl.n_ios nl);
  Array.iter
    (fun (net : Nl.net) ->
      add_int buf net.Nl.net_id;
      add_int buf (if net.Nl.is_clock then 1 else 0);
      add_endpoint net.Nl.driver;
      add_int buf (Array.length net.Nl.sinks);
      Array.iter add_endpoint net.Nl.sinks)
    nl.Nl.nets;
  (* grid geometry (gcell_w/gcell_h derive from these) *)
  add_int buf fp.Fp.gcell_nx;
  add_int buf fp.Fp.gcell_ny;
  add_float buf fp.Fp.width;
  add_float buf fp.Fp.height;
  (* GCell-binned placement: every signal-net endpoint's (gx, gy, tier)
     — sub-GCell moves leave the key (and the routing) unchanged *)
  List.iter
    (fun (net : Nl.net) ->
      let bin e =
        let x, y, tier = Pl.endpoint_position p e in
        let gx, gy = Fp.gcell_of fp x y in
        add_int buf gx;
        add_int buf gy;
        add_int buf tier
      in
      bin net.Nl.driver;
      Array.iter bin net.Nl.sinks)
    (Nl.signal_nets nl);
  (* full config *)
  add_int buf config.Router.cap_h;
  add_int buf config.Router.cap_v;
  add_int buf config.Router.cap_via;
  add_int buf config.Router.max_iterations;
  add_float buf config.Router.history_weight;
  add_float buf config.Router.overflow_penalty;
  add_float buf config.Router.pin_blockage;
  add_float buf config.Router.pin_saturation;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* Tensors are flattened to (shape, data) pairs so the Marshal image
   stays independent of the Tensor module's internals (same idiom as
   the dataset files). *)
type flat = {
  x_overflow_total : int;
  x_overflow_h : int;
  x_overflow_v : int;
  x_overflow_via : int;
  x_overflow_gcell_pct : float;
  x_wirelength : float;
  x_congestion : (int array * float array) array;
  x_utilization : (int array * float array) array;
  x_net_length : float array;
  x_iterations_run : int;
  x_net_edges : int array array;
  x_history : float array;
  x_config : Router.config;
}

let flatten_tensor t = (T.shape t, Array.init (T.numel t) (T.get_flat t))
let unflatten (shape, data) = T.make shape data

let flat_of_result (r : Router.result) =
  {
    x_overflow_total = r.Router.overflow_total;
    x_overflow_h = r.Router.overflow_h;
    x_overflow_v = r.Router.overflow_v;
    x_overflow_via = r.Router.overflow_via;
    x_overflow_gcell_pct = r.Router.overflow_gcell_pct;
    x_wirelength = r.Router.wirelength;
    x_congestion = Array.map flatten_tensor r.Router.congestion;
    x_utilization = Array.map flatten_tensor r.Router.utilization;
    x_net_length = r.Router.net_length;
    x_iterations_run = r.Router.iterations_run;
    x_net_edges = r.Router.net_edges;
    x_history = r.Router.history;
    x_config = r.Router.config;
  }

let result_of_flat f : Router.result =
  {
    Router.overflow_total = f.x_overflow_total;
    overflow_h = f.x_overflow_h;
    overflow_v = f.x_overflow_v;
    overflow_via = f.x_overflow_via;
    overflow_gcell_pct = f.x_overflow_gcell_pct;
    wirelength = f.x_wirelength;
    congestion = Array.map unflatten f.x_congestion;
    utilization = Array.map unflatten f.x_utilization;
    net_length = f.x_net_length;
    iterations_run = f.x_iterations_run;
    net_edges = f.x_net_edges;
    history = f.x_history;
    config = f.x_config;
  }

let find t ~config p =
  let k = key ~config p in
  let path = Framing.path_of ~dir:t.dir ~suffix k in
  let result =
    match Framing.read_file ~magic ~path with
    | None -> None
    | Some body -> (
        match (Marshal.from_string body 0 : string * flat) with
        | stored_key, f when stored_key = k ->
            Framing.touch path;
            Some (result_of_flat f)
        | _ ->
            (* digest-valid but colliding/stale key *)
            Framing.discard path;
            None
        | exception Failure _ ->
            Framing.discard path;
            None)
  in
  (match result with Some _ -> Obs.incr c_hit | None -> Obs.incr c_miss);
  result

let put t ~config p (r : Router.result) =
  let k = key ~config p in
  let body = Marshal.to_string (k, flat_of_result r) [] in
  let ok =
    Framing.write_file ~magic ~path:(Framing.path_of ~dir:t.dir ~suffix k) ~body
  in
  let evicted =
    Framing.evict_lru ~dir:t.dir ~suffix ~max_entries:t.max_entries
  in
  if evicted > 0 then Obs.incr ~by:evicted c_evicted;
  ok

let count t = Framing.count_entries ~dir:t.dir ~suffix

let find_or_route ?cache ?(validate = false) ?warm_start ~config p =
  match cache with
  | None -> Router.route ~config ~validate ?warm_start p
  | Some t -> (
      match find t ~config p with
      | Some r -> r
      | None ->
          let r = Router.route ~config ~validate ?warm_start p in
          (* A warm-started result is a function of its predecessor
             chain, not of the content key alone, so persisting it
             would poison the cache's cold-replay contract. *)
          if Option.is_none warm_start then ignore (put t ~config p r : bool);
          r)
