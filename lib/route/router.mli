(** Two-tier global router — the stand-in for ICC2's global routing
    that produces the paper's ground-truth congestion labels and the
    Table-III routing columns.

    Model: each die is an [nx x ny] GCell grid with horizontal and
    vertical edge capacities (the metal stack is H-richer than V, which
    reproduces the paper's V-dominated overflow); hybrid-bond via edges
    connect the dies at every GCell.  Nets are decomposed into two-pin
    connections (Prim order over pin GCells), first routed with
    congestion-aware L/Z pattern routing, then repaired by
    negotiated-congestion rip-up-and-reroute (PathFinder-style history
    costs) with A* maze routing.

    The repair passes are parallel and deterministic: each pass
    partitions the victim nets into waves whose A* search windows
    (bounding box plus detour margin) are pairwise disjoint, routes
    each wave's nets concurrently on the domain pool with per-domain
    scratch (no shared writes — demand deltas commit afterwards in
    fixed net order), and the wave construction depends only on the
    victim set, never on [DCO3D_JOBS].  Routing results are
    bit-identical at any job count.

    Clock nets are excluded (CTS owns them). *)

type config = {
  cap_h : int;  (** horizontal tracks per GCell boundary *)
  cap_v : int;  (** vertical tracks per GCell boundary *)
  cap_via : int;  (** hybrid bonds per GCell *)
  max_iterations : int;  (** rip-up-and-reroute rounds *)
  history_weight : float;  (** PathFinder history increment *)
  overflow_penalty : float;  (** cost multiplier per unit of overuse *)
  pin_blockage : float;
  (** fraction of tracks lost to pin access in a fully pin-saturated
      GCell.  This is the dominant sub-10nm congestion mechanism: dense
      cell/pin clusters consume routing resources locally, which is
      precisely why cell spreading (2D or 3D) relieves congestion. *)
  pin_saturation : float;  (** pin density (pins/um^2) treated as saturated *)
}

val default_config : Dco3d_place.Floorplan.t -> config
(** Capacities derived from GCell geometry at a 3nm-like track pitch. *)

val calibrated_config :
  ?target_util_h:float -> ?target_util_v:float -> Dco3d_place.Placement.t ->
  config
(** Capacities provisioned for the design's own demand, the way a real
    backend sizes die and metal stack for routability: the average
    HPWL-based demand per edge is divided by a target utilization
    (defaults: H 0.62, V 0.78 — the V-poorer stack drives the paper's
    V-dominated overflow).  Call this once on the {e baseline}
    placement of a design and reuse the config for every flow variant,
    so comparisons share one routing fabric. *)

type result = {
  overflow_total : int;  (** sum of (demand - capacity)+ over all edges *)
  overflow_h : int;
  overflow_v : int;
  overflow_via : int;
  overflow_gcell_pct : float;  (** percentage of GCells with any overflow *)
  wirelength : float;  (** routed wirelength, um (via stubs included) *)
  congestion : Dco3d_tensor.Tensor.t array;
  (** per-tier [ny; nx] overflow maps — the training labels *)
  utilization : Dco3d_tensor.Tensor.t array;
  (** per-tier [ny; nx] demand/capacity maps (Fig. 6 visuals) *)
  net_length : float array;
  (** routed length per net id, um; 0 for unrouted/clock nets *)
  iterations_run : int;
  net_edges : int array array;
  (** committed edge-id path per signal net, indexed by position in
      [Netlist.signal_nets] order — what a warm start reuses *)
  history : float array;
  (** final per-edge PathFinder history — carried forward by a warm
      start so repair resumes from the negotiated costs *)
  config : config;  (** the config this result was routed under *)
}

val route :
  ?config:config ->
  ?validate:bool ->
  ?warm_start:result * Dco3d_place.Placement.t ->
  Dco3d_place.Placement.t ->
  result
(** Route all signal nets of a placement.  Deterministic, including
    across [DCO3D_JOBS] values.  [~validate:true] additionally checks
    the router's internal invariants after routing — the demand array
    must equal the per-edge sum over committed net paths, and the
    edge→net incidence index must agree — raising [Failure] on any
    violation (used by tests; default off).

    [~warm_start:(prev, prev_p)] routes incrementally against a prior
    result: nets whose every pin kept its GCell (comparing [prev_p] to
    the new placement) keep their path trees verbatim; only dirty nets
    are re-traced, with [prev.history] carried forward so repair
    converges in fewer passes.  Kept paths crossing newly overflowed
    edges are ripped up by the normal repair waves.  If no pin changed
    its GCell the previous result is returned as-is (it {e is} the cold
    result — capacities, sort keys and traces are all functions of the
    pin bins).  Still deterministic at any [DCO3D_JOBS]; counters
    [route/warm/reused] and [route/warm/ripped] report the split.
    @raise Invalid_argument if [prev] comes from a different netlist,
    GCell grid, or config. *)

val digest : result -> string
(** Hex content digest of a result (overflow totals, wirelength,
    per-net lengths, congestion and utilization maps).  Two results
    digest equal iff they are bit-identical — the property the
    determinism tests and the bench gate compare across job counts. *)

(** Binary min-heap keyed by float, used by the A* search.  Exposed for
    unit tests. *)
module Heap : sig
  type t

  val create : unit -> t
  val clear : t -> unit
  val is_empty : t -> bool
  val push : t -> float -> int -> unit

  val pop : t -> float * int
  (** Smallest key with its value.
      @raise Invalid_argument on an empty heap. *)

  val pop_min : t -> int
  (** Value of the smallest key, without allocating the pair.
      @raise Invalid_argument on an empty heap. *)
end
