module T = Dco3d_tensor.Tensor
module Nl = Dco3d_netlist.Netlist
module Obs = Dco3d_obs.Obs
module Pl = Dco3d_place.Placement
module Fp = Dco3d_place.Floorplan
module Pool = Dco3d_parallel.Pool

type config = {
  cap_h : int;
  cap_v : int;
  cap_via : int;
  max_iterations : int;
  history_weight : float;
  overflow_penalty : float;
  pin_blockage : float;
  (** fraction of tracks lost to pin access in a fully pin-saturated
      GCell — the sub-10nm effect that makes cell spreading relieve
      congestion *)
  pin_saturation : float;  (** pins per um^2 that count as saturated *)
}

let default_config fp =
  (* Track counts from GCell geometry at a 3nm-like signal-routing
     pitch (~30 nm) over a stack with three horizontal and two vertical
     signal layers; the H-richer stack is what skews overflow toward V,
     as in most of Table III. *)
  let pitch = 0.025 in
  let tracks span layers =
    max 2 (int_of_float (span /. pitch)) * layers
  in
  {
    cap_h = tracks (Fp.gcell_h fp) 3;
    cap_v = tracks (Fp.gcell_w fp) 2;
    cap_via = max 4 (int_of_float (Fp.gcell_w fp *. Fp.gcell_h fp /. 0.25));
    max_iterations = 3;
    history_weight = 0.4;
    overflow_penalty = 3.0;
    pin_blockage = 0.75;
    pin_saturation = 45.0;
  }

(* Per-GCell pin densities (pins / um^2), per tier. *)
let pin_density_bins (p : Pl.t) =
  let fp = p.Pl.fp in
  let nx = fp.Fp.gcell_nx and ny = fp.Fp.gcell_ny in
  let bw = Fp.gcell_w fp and bh = Fp.gcell_h fp in
  let bins = Array.init 2 (fun _ -> Array.make_matrix ny nx 0.) in
  let add e =
    let x, y, tier = Pl.endpoint_position p e in
    let gx = max 0 (min (nx - 1) (int_of_float (x /. bw))) in
    let gy = max 0 (min (ny - 1) (int_of_float (y /. bh))) in
    bins.(tier).(gy).(gx) <- bins.(tier).(gy).(gx) +. 1.
  in
  List.iter
    (fun (net : Nl.net) ->
      add net.Nl.driver;
      Array.iter add net.Nl.sinks)
    (Nl.signal_nets p.Pl.nl);
  let area = bw *. bh in
  Array.iter
    (fun tier_bins ->
      Array.iter
        (fun row ->
          Array.iteri (fun i v -> row.(i) <- v /. area) row)
        tier_bins)
    bins;
  bins

let calibrated_config ?(target_util_h = 0.52) ?(target_util_v = 0.66) p =
  let fp = p.Pl.fp in
  let base = default_config fp in
  let gw = Fp.gcell_w fp and gh = Fp.gcell_h fp in
  let demand_h = ref 0. and demand_v = ref 0. in
  List.iter
    (fun net ->
      let x0, y0, x1, y1 = Pl.net_bbox p net in
      demand_h := !demand_h +. ((x1 -. x0) /. gw);
      demand_v := !demand_v +. ((y1 -. y0) /. gh))
    (Nl.signal_nets p.Pl.nl);
  let nx = fp.Fp.gcell_nx and ny = fp.Fp.gcell_ny in
  let n_h = float_of_int (2 * ny * (nx - 1)) in
  let n_v = float_of_int (2 * (ny - 1) * nx) in
  (* pin-blockage saturation relative to this design's own mean pin
     density, so only genuinely dense clusters lose tracks; then
     compensate the nominal capacities for the average derating so the
     target utilizations still hold on average *)
  let bins = pin_density_bins p in
  let mean_density =
    let acc = ref 0. and k = ref 0 in
    Array.iter
      (Array.iter (Array.iter (fun v -> acc := !acc +. v; incr k)))
      bins;
    if !k = 0 then 1. else !acc /. float_of_int !k
  in
  let pin_saturation = Float.max 1e-6 (1.8 *. mean_density) in
  let mean_derate =
    let acc = ref 0. and k = ref 0 in
    Array.iter
      (Array.iter
         (Array.iter (fun v ->
              acc :=
                !acc
                +. Float.max 0.15
                     (1. -. (base.pin_blockage *. (v /. pin_saturation)));
              incr k)))
      bins;
    if !k = 0 then 1. else !acc /. float_of_int !k
  in
  (* hybrid-bond capacity: each die-crossing net lands ~1-2 bonds; size
     the per-GCell bond count so average via utilization sits near the
     H target *)
  let n_3d =
    List.fold_left
      (fun acc net -> if Pl.net_is_3d p net then acc + 1 else acc)
      0 (Nl.signal_nets p.Pl.nl)
  in
  let n_bins = float_of_int (fp.Fp.gcell_nx * fp.Fp.gcell_ny) in
  {
    base with
    pin_saturation;
    cap_h =
      max 4
        (int_of_float
           (Float.round (!demand_h /. n_h /. target_util_h /. mean_derate)));
    cap_v =
      max 4
        (int_of_float
           (Float.round (!demand_v /. n_v /. target_util_v /. mean_derate)));
    cap_via =
      max 4
        (int_of_float
           (Float.round (1.5 *. float_of_int n_3d /. n_bins /. target_util_h)));
  }

type result = {
  overflow_total : int;
  overflow_h : int;
  overflow_v : int;
  overflow_via : int;
  overflow_gcell_pct : float;
  wirelength : float;
  congestion : T.t array;
  utilization : T.t array;
  net_length : float array;
  iterations_run : int;
  net_edges : int array array;
  history : float array;
  config : config;
}

(* ------------------------------------------------------------------ *)
(* Binary min-heap for A*                                              *)
(* ------------------------------------------------------------------ *)

module Heap = struct
  type t = {
    mutable keys : float array;
    mutable vals : int array;
    mutable len : int;
  }

  let create () = { keys = Array.make 256 0.; vals = Array.make 256 0; len = 0 }
  let clear h = h.len <- 0
  let is_empty h = h.len = 0

  let push h k v =
    if h.len = Array.length h.keys then begin
      let keys = Array.make (2 * h.len) 0. and vals = Array.make (2 * h.len) 0 in
      Array.blit h.keys 0 keys 0 h.len;
      Array.blit h.vals 0 vals 0 h.len;
      h.keys <- keys;
      h.vals <- vals
    end;
    (* sift indices stay below [len] <= capacity, so the sift loops
       use unchecked accesses (this and [pop_min] are the A* loop's
       biggest single cost) *)
    let keys = h.keys and vals = h.vals in
    let i = ref h.len in
    h.len <- h.len + 1;
    Array.unsafe_set keys !i k;
    Array.unsafe_set vals !i v;
    let continue_ = ref true in
    while !continue_ && !i > 0 do
      let parent = (!i - 1) / 2 in
      let kp = Array.unsafe_get keys parent in
      if kp > Array.unsafe_get keys !i then begin
        let tv = Array.unsafe_get vals parent in
        Array.unsafe_set keys parent (Array.unsafe_get keys !i);
        Array.unsafe_set vals parent (Array.unsafe_get vals !i);
        Array.unsafe_set keys !i kp;
        Array.unsafe_set vals !i tv;
        i := parent
      end
      else continue_ := false
    done

  (* [pop_min] returns the value alone: the A* loop discards the key,
     and skipping it keeps the million-pop hot path allocation-free
     (the [(key, value)] pair of [pop] is two heap blocks per call). *)
  let pop_min h =
    if h.len = 0 then invalid_arg "Heap.pop: empty heap";
    let keys = h.keys and vals = h.vals in
    let v = Array.unsafe_get vals 0 in
    h.len <- h.len - 1;
    let len = h.len in
    if len > 0 then begin
      Array.unsafe_set keys 0 (Array.unsafe_get keys len);
      Array.unsafe_set vals 0 (Array.unsafe_get vals len);
      let i = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < len && Array.unsafe_get keys l < Array.unsafe_get keys !smallest
        then smallest := l;
        if r < len && Array.unsafe_get keys r < Array.unsafe_get keys !smallest
        then smallest := r;
        if !smallest <> !i then begin
          let tk = Array.unsafe_get keys !smallest in
          let tv = Array.unsafe_get vals !smallest in
          Array.unsafe_set keys !smallest (Array.unsafe_get keys !i);
          Array.unsafe_set vals !smallest (Array.unsafe_get vals !i);
          Array.unsafe_set keys !i tk;
          Array.unsafe_set vals !i tv;
          i := !smallest
        end
        else continue_ := false
      done
    end;
    v

  let pop h =
    if h.len = 0 then invalid_arg "Heap.pop: empty heap";
    let k = h.keys.(0) in
    let v = pop_min h in
    (k, v)
end

(* ------------------------------------------------------------------ *)
(* Routing state                                                       *)
(* ------------------------------------------------------------------ *)

type state = {
  cfg : config;
  nx : int;
  ny : int;
  gw : float;  (** GCell width, um *)
  gh : float;
  n_h : int;  (** H edges per tier *)
  n_v : int;
  n_edges : int;
  cap : int array;
  demand : int array;
  history : float array;
  base_cost : float array;  (** routing cost units *)
  pass_cost : float array;
      (** [base_cost.(e) *. (1. +. history.(e))], refreshed once per
          repair pass — the history term only moves between passes, so
          hoisting it keeps the A* inner loop (millions of pops) to one
          load plus the overflow term *)
  phys_len : float array;  (** physical length, um *)
  node_tier : int array;
      (** per-node coordinate tables: the A* loop decodes every popped
          node and each of its neighbours, and the div/mod decode
          against non-constant grid dims costs more than the rest of
          the expansion — three L1-resident lookups replace it *)
  node_gy : int array;
  node_gx : int array;
}

let refresh_pass_cost st =
  for e = 0 to st.n_edges - 1 do
    st.pass_cost.(e) <- st.base_cost.(e) *. (1. +. st.history.(e))
  done

let make_state cfg fp (p : Pl.t) =
  let pin_density = pin_density_bins p in
  let derate tier gy gx =
    let d = pin_density.(tier).(gy).(gx) /. cfg.pin_saturation in
    (* unbounded up to an 85 % track loss: packing far beyond the
       saturation knee keeps getting more expensive, as pin access does
       in reality *)
    Float.max 0.15 (1. -. (cfg.pin_blockage *. d))
  in
  let nx = fp.Fp.gcell_nx and ny = fp.Fp.gcell_ny in
  let n_h = ny * (nx - 1) in
  let n_v = (ny - 1) * nx in
  let n_via = ny * nx in
  let n_edges = (2 * n_h) + (2 * n_v) + n_via in
  let cap = Array.make n_edges 0 in
  let base_cost = Array.make n_edges 1. in
  let phys_len = Array.make n_edges 0. in
  let gw = Fp.gcell_w fp and gh = Fp.gcell_h fp in
  (* H edges: derated by the two bins they connect *)
  for tier = 0 to 1 do
    for gy = 0 to ny - 1 do
      for gx = 0 to nx - 2 do
        let e = (((tier * ny) + gy) * (nx - 1)) + gx in
        let f = 0.5 *. (derate tier gy gx +. derate tier gy (gx + 1)) in
        cap.(e) <- max 2 (int_of_float (Float.round (float_of_int cfg.cap_h *. f)));
        base_cost.(e) <- 1.0;
        phys_len.(e) <- gw
      done
    done
  done;
  for tier = 0 to 1 do
    for gy = 0 to ny - 2 do
      for gx = 0 to nx - 1 do
        let e = (2 * n_h) + (((tier * (ny - 1)) + gy) * nx) + gx in
        let f = 0.5 *. (derate tier gy gx +. derate tier (gy + 1) gx) in
        cap.(e) <- max 2 (int_of_float (Float.round (float_of_int cfg.cap_v *. f)));
        base_cost.(e) <- 1.0;
        phys_len.(e) <- gh
      done
    done
  done;
  for k = 0 to n_via - 1 do
    let e = (2 * n_h) + (2 * n_v) + k in
    cap.(e) <- cfg.cap_via;
    base_cost.(e) <- 0.4;
    phys_len.(e) <- 0.5 (* hybrid-bond stub *)
  done;
  let n_nodes = 2 * ny * nx in
  let node_tier = Array.make n_nodes 0 in
  let node_gy = Array.make n_nodes 0 in
  let node_gx = Array.make n_nodes 0 in
  for n = 0 to n_nodes - 1 do
    node_tier.(n) <- n / (ny * nx);
    node_gy.(n) <- n mod (ny * nx) / nx;
    node_gx.(n) <- n mod nx
  done;
  let st =
    {
      cfg; nx; ny; gw; gh; n_h; n_v; n_edges; cap;
      demand = Array.make n_edges 0;
      history = Array.make n_edges 0.;
      base_cost;
      pass_cost = Array.make n_edges 0.;
      phys_len;
      node_tier; node_gy; node_gx;
    }
  in
  refresh_pass_cost st;
  st

let h_edge st tier gy gx = (((tier * st.ny) + gy) * (st.nx - 1)) + gx
let v_edge st tier gy gx = (2 * st.n_h) + (((tier * (st.ny - 1)) + gy) * st.nx) + gx
let via_edge st gy gx = (2 * st.n_h) + (2 * st.n_v) + (gy * st.nx) + gx

let node_of st tier gy gx = (((tier * st.ny) + gy) * st.nx) + gx
let tier_of_node st n = st.node_tier.(n)
let gy_of_node st n = st.node_gy.(n)
let gx_of_node st n = st.node_gx.(n)

(* Edges already used by the net being routed are marked with the
   current generation in [net_mark]: reuse is free because demand is
   per-net. *)
type net_marks = { mark : int array; mutable gen : int }

let make_marks st = { mark = Array.make st.n_edges (-1); gen = 0 }

(* Congestion-aware edge cost.  [pass_cost] already folds in the
   history term (bit-identically: it is the same product, computed once
   per pass instead of once per query).  Unchecked accesses as in the
   tensor kernels: [e] comes from the edge-id formulas over in-range
   coordinates, and this runs ~5x per A* pop. *)
let edge_cost st marks e =
  if Array.unsafe_get marks.mark e = marks.gen then 0.001
  else begin
    let over = Array.unsafe_get st.demand e + 1 - Array.unsafe_get st.cap e in
    Array.unsafe_get st.pass_cost e
    +. (if over > 0 then st.cfg.overflow_penalty *. float_of_int over else 0.)
  end

(* ------------------------------------------------------------------ *)
(* Pattern routing                                                     *)
(* ------------------------------------------------------------------ *)

(* straight horizontal run on a tier: edges between x0 and x1 at gy *)
let h_run st tier gy x0 x1 acc =
  let lo = min x0 x1 and hi = max x0 x1 in
  let edges = ref acc in
  for gx = lo to hi - 1 do
    edges := h_edge st tier gy gx :: !edges
  done;
  !edges

let v_run st tier gx y0 y1 acc =
  let lo = min y0 y1 and hi = max y0 y1 in
  let edges = ref acc in
  for gy = lo to hi - 1 do
    edges := v_edge st tier gy gx :: !edges
  done;
  !edges

(* Cost of a straight run, evaluated without materializing the path. *)
let h_run_cost st marks tier gy x0 x1 =
  let lo = min x0 x1 and hi = max x0 x1 in
  let acc = ref 0. in
  for gx = lo to hi - 1 do
    acc := !acc +. edge_cost st marks (h_edge st tier gy gx)
  done;
  !acc

let v_run_cost st marks tier gx y0 y1 =
  let lo = min y0 y1 and hi = max y0 y1 in
  let acc = ref 0. in
  for gy = lo to hi - 1 do
    acc := !acc +. edge_cost st marks (v_edge st tier gy gx)
  done;
  !acc

(* A monotone same-tier candidate is fully described by its bend
   coordinate: horizontal-first through (xm, -) or vertical-first
   through (-, ym).  We score both Ls and two Zs and remember only the
   winner's descriptor. *)
type bend = H_first of int (* xm *) | V_first of int (* ym *)

let best_same_tier st marks tier (x0, y0) (x1, y1) =
  let score_h xm =
    h_run_cost st marks tier y0 x0 xm
    +. v_run_cost st marks tier xm y0 y1
    +. h_run_cost st marks tier y1 xm x1
  in
  let score_v ym =
    v_run_cost st marks tier x0 y0 ym
    +. h_run_cost st marks tier ym x0 x1
    +. v_run_cost st marks tier x1 ym y1
  in
  let best = ref (score_h x1, H_first x1) in
  let try_ cost bend = if cost < fst !best then best := (cost, bend) in
  try_ (score_h x0) (H_first x0);
  try_ (score_v y0) (V_first y0);
  try_ (score_v y1) (V_first y1);
  if abs (x1 - x0) >= 2 then begin
    let xm = (x0 + x1) / 2 in
    try_ (score_h xm) (H_first xm)
  end;
  if abs (y1 - y0) >= 2 then begin
    let ym = (y0 + y1) / 2 in
    try_ (score_v ym) (V_first ym)
  end;
  !best

let materialize_same_tier st tier (x0, y0) (x1, y1) bend acc =
  match bend with
  | H_first xm ->
      h_run st tier y0 x0 xm
        (v_run st tier xm y0 y1 (h_run st tier y1 xm x1 acc))
  | V_first ym ->
      v_run st tier x0 y0 ym
        (h_run st tier ym x0 x1 (v_run st tier x1 ym y1 acc))

let pattern_route st marks src dst =
  let t0 = tier_of_node st src and t1 = tier_of_node st dst in
  let p0 = (gx_of_node st src, gy_of_node st src) in
  let p1 = (gx_of_node st dst, gy_of_node st dst) in
  if t0 = t1 then begin
    let _, bend = best_same_tier st marks t0 p0 p1 in
    materialize_same_tier st t0 p0 p1 bend []
  end
  else begin
    (* via at source, destination, or midpoint: score each composite,
       materialize only the winner *)
    let x0, y0 = p0 and x1, y1 = p1 in
    let score (vx, vy) =
      let c0, b0 = best_same_tier st marks t0 p0 (vx, vy) in
      let c1, b1 = best_same_tier st marks t1 (vx, vy) p1 in
      (c0 +. edge_cost st marks (via_edge st vy vx) +. c1, b0, b1)
    in
    let vias = [ (x0, y0); (x1, y1); ((x0 + x1) / 2, (y0 + y1) / 2) ] in
    let best = ref None in
    List.iter
      (fun v ->
        let c, b0, b1 = score v in
        match !best with
        | Some (bc, _, _, _) when bc <= c -> ()
        | _ -> best := Some (c, v, b0, b1))
      vias;
    match !best with
    | None -> []
    | Some (_, (vx, vy), b0, b1) ->
        materialize_same_tier st t0 p0 (vx, vy) b0
          (via_edge st vy vx
          :: materialize_same_tier st t1 (vx, vy) p1 b1 [])
  end

(* ------------------------------------------------------------------ *)
(* A* maze routing                                                     *)
(* ------------------------------------------------------------------ *)

type astar = {
  heap : Heap.t;
  gscore : float array;
  stamp : int array;
  closed : int array;  (** generation-stamped closed set *)
  parent_node : int array;
  parent_edge : int array;
  mutable generation : int;
}

let make_astar st =
  let n = 2 * st.ny * st.nx in
  {
    heap = Heap.create ();
    gscore = Array.make n infinity;
    stamp = Array.make n (-1);
    closed = Array.make n (-1);
    parent_node = Array.make n (-1);
    parent_edge = Array.make n (-1);
    generation = 0;
  }

(* Totals are a function of the routing problem (net order and cost
   surfaces are deterministic), so they are jobs-invariant. *)
let c_astar_pops = Obs.counter "route/astar_pops"
let c_ripup_rounds = Obs.counter "route/ripup_rounds"
let c_ripped_nets = Obs.counter "route/ripped_nets"
let h_overflow_pass = Obs.histogram "route/overflow_per_pass"

(* Wave structure is a function of the victim set alone, so both
   histograms are jobs-invariant. *)
let h_waves_per_pass = Obs.histogram "route/waves_per_pass"
let h_wave_size = Obs.histogram "route/wave_size"

(* Warm-start accounting: nets whose previous path trees were kept
   verbatim vs nets re-traced because a pin changed its GCell.  Both
   are functions of the two binned placements alone, so they are
   jobs-invariant. *)
let c_warm_reused = Obs.counter "route/warm/reused"
let c_warm_ripped = Obs.counter "route/warm/ripped"

let astar_route st az marks src dst =
  az.generation <- az.generation + 1;
  let gen = az.generation in
  Heap.clear az.heap;
  let dx1 = gx_of_node st dst and dy1 = gy_of_node st dst in
  let sx = gx_of_node st src and sy = gy_of_node st src in
  (* restrict the search to the pair's bounding box plus a detour
     margin — the standard global-router window, which caps expansion
     cost on large grids *)
  let margin = 2 + (max st.nx st.ny / 6) in
  let wx0 = max 0 (min sx dx1 - margin) and wx1 = min (st.nx - 1) (max sx dx1 + margin) in
  let wy0 = max 0 (min sy dy1 - margin) and wy1 = min (st.ny - 1) (max sy dy1 + margin) in
  (* node ids are in range by construction (they come from [node_of]
     over clamped coordinates), so the per-pop decode and the visit
     bookkeeping use unchecked accesses, as in the tensor kernels *)
  let node_gx = st.node_gx and node_gy = st.node_gy in
  let in_window n =
    let gx = Array.unsafe_get node_gx n and gy = Array.unsafe_get node_gy n in
    gx >= wx0 && gx <= wx1 && gy >= wy0 && gy <= wy1
  in
  (* mildly weighted heuristic: faster, near-optimal *)
  let heuristic n =
    1.15
    *. float_of_int
         (abs (Array.unsafe_get node_gx n - dx1)
         + abs (Array.unsafe_get node_gy n - dy1))
  in
  let visit n g pn pe =
    if
      in_window n
      && (Array.unsafe_get az.stamp n <> gen
         || g < Array.unsafe_get az.gscore n)
    then begin
      Array.unsafe_set az.stamp n gen;
      Array.unsafe_set az.gscore n g;
      Array.unsafe_set az.parent_node n pn;
      Array.unsafe_set az.parent_edge n pe;
      Heap.push az.heap (g +. heuristic n) n
    end
  in
  visit src 0. (-1) (-1);
  let found = ref false in
  let pops = ref 0 in
  while (not !found) && not (Heap.is_empty az.heap) do
    let n = Heap.pop_min az.heap in
    incr pops;
    if n = dst then found := true
    else if Array.unsafe_get az.closed n <> gen then begin
      Array.unsafe_set az.closed n gen;
      let g = Array.unsafe_get az.gscore n in
      let t = tier_of_node st n in
      let gy = Array.unsafe_get node_gy n and gx = Array.unsafe_get node_gx n in
      let try_edge e n' = visit n' (g +. edge_cost st marks e) n e in
      if gx > 0 then try_edge (h_edge st t gy (gx - 1)) (node_of st t gy (gx - 1));
      if gx < st.nx - 1 then try_edge (h_edge st t gy gx) (node_of st t gy (gx + 1));
      if gy > 0 then try_edge (v_edge st t (gy - 1) gx) (node_of st t (gy - 1) gx);
      if gy < st.ny - 1 then try_edge (v_edge st t gy gx) (node_of st t (gy + 1) gx);
      try_edge (via_edge st gy gx) (node_of st (1 - t) gy gx)
    end
  done;
  (* one flush per call keeps the per-pop cost to a local increment *)
  Obs.incr ~by:!pops c_astar_pops;
  if not !found then None
  else begin
    (* walk parents back to the source *)
    let edges = ref [] in
    let n = ref dst in
    while !n <> src do
      edges := az.parent_edge.(!n) :: !edges;
      n := az.parent_node.(!n)
    done;
    Some !edges
  end

(* ------------------------------------------------------------------ *)
(* Net decomposition and full routing                                  *)
(* ------------------------------------------------------------------ *)

let net_nodes st (p : Pl.t) (net : Nl.net) =
  let fp = p.Pl.fp in
  let node_of_endpoint e =
    let x, y, tier = Pl.endpoint_position p e in
    let gx, gy = Fp.gcell_of fp x y in
    node_of st tier gy gx
  in
  let tbl = Hashtbl.create 8 in
  let add e =
    let n = node_of_endpoint e in
    if not (Hashtbl.mem tbl n) then Hashtbl.add tbl n ()
  in
  add net.Nl.driver;
  Array.iter add net.Nl.sinks;
  Hashtbl.fold (fun n () acc -> n :: acc) tbl []
  |> List.sort compare

(* Prim order: connect each pin GCell to the closest already-connected
   pin GCell (cheap Steiner approximation). *)
let prim_pairs st nodes =
  match nodes with
  | [] | [ _ ] -> []
  | first :: rest ->
      (* classic O(k^2) Prim: cache each remaining pin's nearest
         already-connected node and relax after every addition *)
      let dist a b =
        abs (gx_of_node st a - gx_of_node st b)
        + abs (gy_of_node st a - gy_of_node st b)
        + abs (tier_of_node st a - tier_of_node st b)
      in
      let remaining = Array.of_list rest in
      let k = Array.length remaining in
      let best_dist = Array.map (dist first) remaining in
      let best_from = Array.make k first in
      let len = ref k in
      let pairs = ref [] in
      while !len > 0 do
        let bi = ref 0 in
        for i = 1 to !len - 1 do
          if best_dist.(i) < best_dist.(!bi) then bi := i
        done;
        let r = remaining.(!bi) in
        pairs := (best_from.(!bi), r) :: !pairs;
        remaining.(!bi) <- remaining.(!len - 1);
        best_dist.(!bi) <- best_dist.(!len - 1);
        best_from.(!bi) <- best_from.(!len - 1);
        decr len;
        for i = 0 to !len - 1 do
          let d = dist r remaining.(i) in
          if d < best_dist.(i) then begin
            best_dist.(i) <- d;
            best_from.(i) <- r
          end
        done
      done;
      List.rev !pairs

(* Routing a net touches shared state in two phases: [trace_net]
   computes the net's deduplicated edge set reading (but never writing)
   [st.demand], and [apply_net] / [rip_up_net] commit or retract the
   demand deltas and keep the edge→net incidence index in sync.  The
   split is what lets a repair wave route window-disjoint nets
   concurrently and still commit in fixed net order.

   Note that deferring the demand writes cannot change a net's own
   routing: edges the net has already committed are generation-marked,
   and marked edges cost a flat 0.001 regardless of demand, so a net
   never observes its own increments. *)

(* Unordered growable int bag — the per-edge incidence set.  Swap
   removal keeps both maintenance directions allocation-free on the
   hot rip-up/commit path (victim collection sorts, so the order in a
   bag never reaches a result). *)
type bag = { mutable data : int array; mutable len : int }

let bag_add b k =
  if b.len = Array.length b.data then begin
    let d = Array.make (max 4 (2 * b.len)) 0 in
    Array.blit b.data 0 d 0 b.len;
    b.data <- d
  end;
  b.data.(b.len) <- k;
  b.len <- b.len + 1

let bag_remove b k =
  let i = ref 0 in
  while b.data.(!i) <> k do
    incr i
  done;
  b.len <- b.len - 1;
  b.data.(!i) <- b.data.(b.len)

let apply_net st idx k path =
  Array.iter
    (fun e ->
      st.demand.(e) <- st.demand.(e) + 1;
      bag_add idx.(e) k)
    path

let rip_up_net st idx k path =
  Array.iter
    (fun e ->
      st.demand.(e) <- st.demand.(e) - 1;
      bag_remove idx.(e) k)
    path

(* Two-pin decomposition of a net's pin GCells.  Same-tier nets with a
   handful of pins get a rectilinear Steiner topology (shorter trees);
   cross-tier and large nets fall back to Prim order. *)
let decompose st nodes =
  match nodes with
  | [] | [ _ ] -> []
  | first :: rest ->
      let tier0 = tier_of_node st first in
      let same_tier = List.for_all (fun n -> tier_of_node st n = tier0) rest in
      let k = List.length nodes in
      if same_tier && k >= 3 && k <= 10 then begin
        let pins =
          List.map
            (fun n -> { Steiner.x = gx_of_node st n; y = gy_of_node st n })
            nodes
        in
        List.map
          (fun (a, b) ->
            (node_of st tier0 a.Steiner.y a.Steiner.x,
             node_of st tier0 b.Steiner.y b.Steiner.x))
          (Steiner.build pins)
      end
      else prim_pairs st nodes

(* Per-domain routing scratch: the A* state, heap and net marks are
   mutable and net-sized, so each domain executing repair-wave chunks
   owns its own set (all fields are generation-stamped — a reused
   scratch can never leak state into a result). *)
type scratch = { az : astar; marks : net_marks }

let make_scratch st = { az = make_astar st; marks = make_marks st }

(* Route one net against the current demand without mutating anything
   shared; returns the deduplicated edge array in discovery order. *)
let trace_net st sc ~maze (p : Pl.t) net =
  let marks = sc.marks in
  marks.gen <- marks.gen + 1;
  let nodes = net_nodes st p net in
  let pairs = decompose st nodes in
  let acc = ref [] and n = ref 0 in
  List.iter
    (fun (a, b) ->
      let path =
        if maze then
          match astar_route st sc.az marks a b with
          | Some path -> path
          | None -> pattern_route st marks a b
        else pattern_route st marks a b
      in
      List.iter
        (fun e ->
          if marks.mark.(e) <> marks.gen then begin
            marks.mark.(e) <- marks.gen;
            acc := e :: !acc;
            incr n
          end)
        path)
    pairs;
  let arr = Array.make !n (-1) in
  List.iteri (fun i e -> arr.(!n - 1 - i) <- e) !acc;
  arr

let overflow_of st e = max 0 (st.demand.(e) - st.cap.(e))

(* ------------------------------------------------------------------ *)
(* Repair waves                                                        *)
(* ------------------------------------------------------------------ *)

(* A net's search window: its pin-GCell bounding box plus the A* detour
   margin (same formula as [astar_route]).  Every edge the net can ever
   commit — pattern or maze, any pass — has both endpoints inside the
   window, so two nets with disjoint windows never read or write the
   same edge.  That independence relation is what a repair wave
   exploits. *)
let net_window st fp (p : Pl.t) net =
  let x0 = ref max_int and y0 = ref max_int in
  let x1 = ref min_int and y1 = ref min_int in
  let add e =
    let x, y, _ = Pl.endpoint_position p e in
    let gx, gy = Fp.gcell_of fp x y in
    if gx < !x0 then x0 := gx;
    if gx > !x1 then x1 := gx;
    if gy < !y0 then y0 := gy;
    if gy > !y1 then y1 := gy
  in
  add net.Nl.driver;
  Array.iter add net.Nl.sinks;
  let margin = 2 + (max st.nx st.ny / 6) in
  ( max 0 (!x0 - margin),
    max 0 (!y0 - margin),
    min (st.nx - 1) (!x1 + margin),
    min (st.ny - 1) (!y1 + margin) )

(* Greedy first-fit partition of the victim list into waves of pairwise
   window-disjoint nets.  A pure function of the victim order and the
   windows — never of DCO3D_JOBS — so the wave structure, and with it
   the routing result, is identical at any job count (executing a wave
   concurrently is equivalent to executing it sequentially, precisely
   because its members touch disjoint edge sets). *)
type wave_acc = {
  mutable rects : int array;  (** 4 ints (x0 y0 x1 y1) per member *)
  mutable members : int array;
  mutable n : int;
}

let partition_waves windows victims =
  let nv = List.length victims in
  let waves =
    Array.init (max 1 nv) (fun _ -> { rects = [||]; members = [||]; n = 0 })
  in
  let n_waves = ref 0 in
  List.iter
    (fun k ->
      let x0, y0, x1, y1 = windows.(k) in
      (* first wave whose members' windows all miss this one; the scan
         is flat int comparisons, no allocation *)
      let w = ref 0 in
      let placed = ref false in
      while not !placed do
        if !w = !n_waves then begin
          incr n_waves;
          placed := true
        end
        else begin
          let wv = waves.(!w) in
          let r = wv.rects in
          let n4 = 4 * wv.n in
          let conflict = ref false in
          let i = ref 0 in
          while (not !conflict) && !i < n4 do
            if
              x0 <= r.(!i + 2) && r.(!i) <= x1 && y0 <= r.(!i + 3)
              && r.(!i + 1) <= y1
            then conflict := true
            else i := !i + 4
          done;
          if !conflict then incr w else placed := true
        end
      done;
      let wv = waves.(!w) in
      if 4 * wv.n = Array.length wv.rects then begin
        let cap = max 4 (2 * wv.n) in
        let rects = Array.make (4 * cap) 0 and members = Array.make cap 0 in
        Array.blit wv.rects 0 rects 0 (4 * wv.n);
        Array.blit wv.members 0 members 0 wv.n;
        wv.rects <- rects;
        wv.members <- members
      end;
      let b = 4 * wv.n in
      wv.rects.(b) <- x0;
      wv.rects.(b + 1) <- y0;
      wv.rects.(b + 2) <- x1;
      wv.rects.(b + 3) <- y1;
      wv.members.(wv.n) <- k;
      wv.n <- wv.n + 1)
    victims;
  Array.init !n_waves (fun w -> Array.sub waves.(w).members 0 waves.(w).n)

(* Per-endpoint GCell bins of a net, in endpoint order (driver first,
   then sinks in netlist order).  Together with the netlist and the
   config these fully determine the routing result: every quantity the
   router reads off the placement — pin densities, pin nodes, search
   windows, sort keys — is a function of the bins, never of sub-GCell
   coordinates.  The warm-start dirty test and the route cache key both
   rest on that property. *)
let endpoint_bins (p : Pl.t) (net : Nl.net) =
  let fp = p.Pl.fp in
  let bin e =
    let x, y, tier = Pl.endpoint_position p e in
    let gx, gy = Fp.gcell_of fp x y in
    (gx, gy, tier)
  in
  let n_sinks = Array.length net.Nl.sinks in
  Array.init (n_sinks + 1) (fun i ->
      if i = 0 then bin net.Nl.driver else bin net.Nl.sinks.(i - 1))

let route ?config ?(validate = false) ?warm_start (p : Pl.t) =
  Obs.with_span "route" @@ fun () ->
  let fp = p.Pl.fp in
  let cfg = match config with Some c -> c | None -> default_config fp in
  let st = make_state cfg fp p in
  let nets = Array.of_list (Nl.signal_nets p.Pl.nl) in
  let n_nets = Array.length nets in
  let bins = Array.map (endpoint_bins p) nets in
  (* small nets first: they have the least routing freedom.  The keys
     are the GCell-quantized half-perimeters with the net index as
     tie-break — a total order, so the sort is deterministic (the
     library sort is not stable) and insensitive to sub-GCell jitter,
     which is what lets a cache key ignore exact coordinates. *)
  let order = Array.init n_nets Fun.id in
  let half_perim =
    Array.map
      (fun bs ->
        let x0 = ref max_int and y0 = ref max_int in
        let x1 = ref min_int and y1 = ref min_int in
        Array.iter
          (fun (gx, gy, _) ->
            if gx < !x0 then x0 := gx;
            if gx > !x1 then x1 := gx;
            if gy < !y0 then y0 := gy;
            if gy > !y1 then y1 := gy)
          bs;
        !x1 - !x0 + (!y1 - !y0))
      bins
  in
  Array.sort
    (fun a b ->
      let c = compare half_perim.(a) half_perim.(b) in
      if c <> 0 then c else compare a b)
    order;
  (* Warm start: a net is clean iff every endpoint stayed in its GCell.
     An all-clean placement has identical pin densities (hence
     capacities), sort keys and traces, so the previous result is the
     cold result and is returned verbatim. *)
  let keep =
    match warm_start with
    | None -> None
    | Some (prev, prev_p) ->
        if Array.length prev.net_edges <> n_nets then
          invalid_arg "Router.route: warm_start from a different netlist";
        let pfp = prev_p.Pl.fp in
        if
          pfp.Fp.gcell_nx <> fp.Fp.gcell_nx
          || pfp.Fp.gcell_ny <> fp.Fp.gcell_ny
        then invalid_arg "Router.route: warm_start from a different grid";
        if prev.config <> cfg then
          invalid_arg "Router.route: warm_start under a different config";
        let clean =
          Array.init n_nets (fun k ->
              endpoint_bins prev_p nets.(k) = bins.(k))
        in
        Some (prev, clean)
  in
  match keep with
  | Some (prev, clean) when Array.for_all Fun.id clean ->
      Obs.incr ~by:n_nets c_warm_reused;
      prev
  | _ ->
  let spool = Pool.scratch_pool (fun () -> make_scratch st) in
  (* edge→net incidence: which nets currently commit each edge.  Kept
     in sync by [apply_net]/[rip_up_net] so each repair pass collects
     its victims from the overflowed edges alone instead of scanning
     every net's full edge list. *)
  let idx = Array.init st.n_edges (fun _ -> { data = [||]; len = 0 }) in
  let net_edges = Array.make n_nets [||] in
  Obs.with_span "initial" (fun () ->
      match keep with
      | None ->
          Pool.with_scratch spool (fun sc ->
              Array.iter
                (fun k ->
                  let path = trace_net st sc ~maze:false p nets.(k) in
                  net_edges.(k) <- path;
                  apply_net st idx k path)
                order)
      | Some (prev, clean) ->
          (* carry the negotiated history forward so repair resumes
             from the prior run's costs instead of rediscovering them *)
          Array.iteri
            (fun e h -> st.history.(e) <- 0.25 *. h)
            prev.history;
          refresh_pass_cost st;
          let reused = ref 0 and ripped = ref 0 in
          Array.iter
            (fun k ->
              if clean.(k) then begin
                incr reused;
                net_edges.(k) <- prev.net_edges.(k);
                apply_net st idx k prev.net_edges.(k)
              end)
            order;
          (* dirty nets re-trace sequentially in sort order against the
             kept demand — congestion-aware (maze) rather than the cold
             pass's blind pattern route, so they steer around the kept
             paths instead of manufacturing overflow the repair waves
             would then have to undo.  Sequential in a fixed order, so
             the result stays jobs-invariant.  Kept paths crossing edges
             the new demand pushes past their baseline are still ripped
             up by the repair waves below. *)
          Pool.with_scratch spool (fun sc ->
              Array.iter
                (fun k ->
                  if not clean.(k) then begin
                    incr ripped;
                    let path = trace_net st sc ~maze:true p nets.(k) in
                    net_edges.(k) <- path;
                    apply_net st idx k path
                  end)
                order);
          Obs.incr ~by:!reused c_warm_reused;
          Obs.incr ~by:!ripped c_warm_ripped);
  (* negotiated-congestion repair: each pass bumps history, collects
     the victim nets, partitions them into waves of window-disjoint
     nets, and routes each wave's nets concurrently against a frozen
     demand surface — deltas commit in fixed net order afterwards, so
     the result is bit-identical at DCO3D_JOBS=1 and N *)
  let windows = Array.map (net_window st fp p) nets in
  let seen = Array.make n_nets (-1) in
  (* Incremental runs stop negotiating once overflow is clearly at or
     below the warm-start's converged residual: the prior result
     already spent its whole repair budget to reach that level, so
     further waves would re-negotiate paths the placement delta never
     touched.  The floor sits slightly *under* the residual (0.95x)
     because the cold re-route of the perturbed placement — the parity
     reference of the incremental contract (bench gate,
     `route --warm-check`) — can come out a little better than the
     warm start when the perturbation eases congestion; stopping at
     1.0x could strand the warm result outside the 5% parity band.
     Cold runs keep the floor at 0 (repair until clean or out of
     budget). *)
  let overflow_floor =
    match keep with
    | Some (prev, _) -> int_of_float (0.95 *. float_of_int prev.overflow_total)
    | None -> 0
  in
  (* Per-edge overflow the warm start had already accepted (its demand
     replayed against this run's capacities).  Warm repair only rips
     nets crossing edges that got *worse* than this baseline — residual
     congestion far from the placement delta keeps its negotiated
     paths.  Empty for cold runs: every overflowed edge collects. *)
  let baseline_ov =
    match keep with
    | None -> [||]
    | Some (prev, _) ->
        let d = Array.make st.n_edges 0 in
        Array.iter (Array.iter (fun e -> d.(e) <- d.(e) + 1)) prev.net_edges;
        Array.mapi (fun e de -> max 0 (de - st.cap.(e))) d
  in
  let iterations_run = ref 0 in
  let continue_ = ref true in
  while !continue_ && !iterations_run < cfg.max_iterations do
    incr iterations_run;
    Obs.with_span (Printf.sprintf "repair:%d" !iterations_run) (fun () ->
    (* bump history on overflowed edges, collecting the nets that
       cross them in the same sweep *)
    let total_overflow = ref 0 in
    let victims = ref [] and n_victims = ref 0 in
    let pass = !iterations_run in
    for e = 0 to st.n_edges - 1 do
      let ov = overflow_of st e in
      if ov > 0 then begin
        total_overflow := !total_overflow + ov;
        st.history.(e) <- st.history.(e) +. (cfg.history_weight *. float_of_int ov);
        (* The warm baseline protection decays to nothing on the final
           pass: if the placement delta genuinely eased congestion,
           a full-collection last pass lets negotiation reach the cold
           route's quality instead of locking in a stale residual.
           Earlier passes stay cheap — only edges *worse* than the
           baseline collect victims. *)
        let protected_ =
          Array.length baseline_ov > 0 && pass < cfg.max_iterations
        in
        if (not protected_) || ov > baseline_ov.(e) then begin
          let b = idx.(e) in
          for j = 0 to b.len - 1 do
            let k = b.data.(j) in
            if seen.(k) <> pass then begin
              seen.(k) <- pass;
              incr n_victims;
              victims := k :: !victims
            end
          done
        end
      end
    done;
    refresh_pass_cost st;
    if Obs.enabled () then
      Obs.observe h_overflow_pass (float_of_int !total_overflow);
    if !total_overflow <= overflow_floor || !n_victims = 0 then
      continue_ := false
    else begin
      (* rip up and reroute every net crossing an overflowed edge *)
      Obs.incr c_ripup_rounds;
      Obs.incr ~by:!n_victims c_ripped_nets;
      let victims = List.sort (fun a b -> compare b a) !victims in
      let waves = Obs.with_span "partition" (fun () -> partition_waves windows victims) in
      if Obs.enabled () then begin
        Obs.observe h_waves_per_pass (float_of_int (Array.length waves));
        Array.iter
          (fun w -> Obs.observe h_wave_size (float_of_int (Array.length w)))
          waves
      end;
      Obs.with_span "waves" (fun () -> Array.iter
        (fun wave ->
          Array.iter (fun k -> rip_up_net st idx k net_edges.(k)) wave;
          let paths = Array.make (Array.length wave) [||] in
          Pool.parallel_for ~chunk:1 0 (Array.length wave) (fun i ->
              Pool.with_scratch spool (fun sc ->
                  paths.(i) <- trace_net st sc ~maze:true p nets.(wave.(i))));
          Array.iteri
            (fun i k ->
              net_edges.(k) <- paths.(i);
              apply_net st idx k paths.(i))
            wave)
        waves)
    end)
  done;
  if validate then begin
    (* conservation: demand must equal the per-edge sum over committed
       paths (and the incidence index must agree) *)
    let expect = Array.make st.n_edges 0 in
    Array.iter (Array.iter (fun e -> expect.(e) <- expect.(e) + 1)) net_edges;
    for e = 0 to st.n_edges - 1 do
      if expect.(e) <> st.demand.(e) then
        failwith
          (Printf.sprintf
             "Router.route: demand conservation violated at edge %d: demand \
              %d, committed %d"
             e st.demand.(e) expect.(e));
      if idx.(e).len <> expect.(e) then
        failwith
          (Printf.sprintf
             "Router.route: incidence index inconsistent at edge %d: %d nets \
              indexed, %d committed"
             e idx.(e).len expect.(e))
    done
  end;
  (* ---------------- results ---------------- *)
  let overflow_h = ref 0 and overflow_v = ref 0 and overflow_via = ref 0 in
  for e = 0 to st.n_edges - 1 do
    let ov = overflow_of st e in
    if ov > 0 then
      if e < 2 * st.n_h then overflow_h := !overflow_h + ov
      else if e < (2 * st.n_h) + (2 * st.n_v) then overflow_v := !overflow_v + ov
      else overflow_via := !overflow_via + ov
  done;
  let congestion =
    Array.init 2 (fun tier ->
        let m = T.zeros [| st.ny; st.nx |] in
        (* attribute each edge's overflow to its low-side GCell *)
        for gy = 0 to st.ny - 1 do
          for gx = 0 to st.nx - 2 do
            let ov = overflow_of st (h_edge st tier gy gx) in
            if ov > 0 then T.set2 m gy gx (T.get2 m gy gx +. float_of_int ov)
          done
        done;
        for gy = 0 to st.ny - 2 do
          for gx = 0 to st.nx - 1 do
            let ov = overflow_of st (v_edge st tier gy gx) in
            if ov > 0 then T.set2 m gy gx (T.get2 m gy gx +. float_of_int ov)
          done
        done;
        m)
  in
  let utilization =
    Array.init 2 (fun tier ->
        let m = T.zeros [| st.ny; st.nx |] in
        for gy = 0 to st.ny - 1 do
          for gx = 0 to st.nx - 1 do
            let u = ref 0. and k = ref 0 in
            let edge e =
              u := !u +. (float_of_int st.demand.(e) /. float_of_int (max 1 st.cap.(e)));
              incr k
            in
            if gx < st.nx - 1 then edge (h_edge st tier gy gx);
            if gx > 0 then edge (h_edge st tier gy (gx - 1));
            if gy < st.ny - 1 then edge (v_edge st tier gy gx);
            if gy > 0 then edge (v_edge st tier (gy - 1) gx);
            T.set2 m gy gx (!u /. float_of_int (max 1 !k))
          done
        done;
        m)
  in
  let overflow_cells = ref 0 in
  for tier = 0 to 1 do
    T.iteri_flat
      (fun _ v -> if v > 0. then incr overflow_cells)
      congestion.(tier)
  done;
  let total_cells = 2 * st.nx * st.ny in
  let net_length = Array.make (Nl.n_nets p.Pl.nl) 0. in
  let wirelength = ref 0. in
  Array.iteri
    (fun k edges ->
      let len = Array.fold_left (fun acc e -> acc +. st.phys_len.(e)) 0. edges in
      (* single-GCell nets still have a local stub *)
      let len = if len = 0. then 0.5 *. (st.gw +. st.gh) else len in
      net_length.(nets.(k).Nl.net_id) <- len;
      wirelength := !wirelength +. len)
    net_edges;
  {
    overflow_total = !overflow_h + !overflow_v + !overflow_via;
    overflow_h = !overflow_h;
    overflow_v = !overflow_v;
    overflow_via = !overflow_via;
    overflow_gcell_pct = 100. *. float_of_int !overflow_cells /. float_of_int total_cells;
    wirelength = !wirelength;
    congestion;
    utilization;
    net_length;
    iterations_run = !iterations_run;
    net_edges;
    history = st.history;
    config = cfg;
  }

(* Content digest of everything a routing result asserts: overflow
   totals, wirelength, per-net lengths and the congestion/utilization
   maps.  Used by the determinism tests and the bench gate to compare
   runs across DCO3D_JOBS values bit-for-bit. *)
let digest (r : result) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "%d %d %d %d %.17g %.17g %d" r.overflow_total r.overflow_h
       r.overflow_v r.overflow_via r.overflow_gcell_pct r.wirelength
       r.iterations_run);
  Array.iter
    (fun l -> Buffer.add_string buf (Printf.sprintf " %.17g" l))
    r.net_length;
  let add_maps ms =
    Array.iter
      (fun m ->
        Buffer.add_string buf
          (Marshal.to_string
             (T.shape m, Array.init (T.numel m) (T.get_flat m))
             []))
      ms
  in
  add_maps r.congestion;
  add_maps r.utilization;
  Digest.to_hex (Digest.string (Buffer.contents buf))
