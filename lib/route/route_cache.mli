(** Content-addressed disk cache of full routing results.

    Routing is a pure function of the netlist structure, the
    GCell-binned placement, the grid geometry and the router config —
    every placement read in {!Router.route} goes through
    [Floorplan.gcell_of] — so a result is keyed by
    [MD5(netlist digest x binned placement x config)] and a hit replays
    it {e bit-identically}: [Router.digest] of a replay equals the cold
    route's.  Sub-GCell placement jitter maps to the same key.

    Entries share the {!Dco3d_framing.Framing} on-disk layout
    ("DCO3D-ROUTE-V1" + MD5(body) + Marshal of (key, value)) with
    temp-file + rename writes, so shard daemons, parallel dataset
    workers and repeated sweeps can all share one cache directory.
    Corrupt, truncated or foreign files are deleted and treated as
    misses; all IO is best-effort.  Counters [route/cache_hit] and
    [route/cache_miss] report effectiveness. *)

type t

val create : string -> t
(** [create dir] opens a cache rooted at [dir], creating it (and
    parents) if missing.
    @raise Unix.Unix_error if the directory cannot be created. *)

val dir : t -> string

val key : config:Router.config -> Dco3d_place.Placement.t -> string
(** The content key (hex MD5) a placement routes under — exposed for
    tests and diagnostics. *)

val find : t -> config:Router.config -> Dco3d_place.Placement.t ->
  Router.result option
(** Cached result for this (netlist, binned placement, config), if
    present and intact. *)

val put : t -> config:Router.config -> Dco3d_place.Placement.t ->
  Router.result -> bool
(** Persist a result; [false] if the write failed (disk full, …). *)

val count : t -> int
(** Number of [.route] entries currently on disk (for stats). *)

val find_or_route :
  ?cache:t ->
  ?validate:bool ->
  config:Router.config ->
  Dco3d_place.Placement.t ->
  Router.result
(** Cache-through routing: look up, route on miss, persist the fresh
    result (best-effort).  With [?cache] absent this is exactly
    [Router.route ~config]. *)
