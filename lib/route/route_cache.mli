(** Content-addressed disk cache of full routing results.

    Routing is a pure function of the netlist structure, the
    GCell-binned placement, the grid geometry and the router config —
    every placement read in {!Router.route} goes through
    [Floorplan.gcell_of] — so a result is keyed by
    [MD5(netlist digest x binned placement x config)] and a hit replays
    it {e bit-identically}: [Router.digest] of a replay equals the cold
    route's.  Sub-GCell placement jitter maps to the same key.

    Entries share the {!Dco3d_framing.Framing} on-disk layout
    ("DCO3D-ROUTE-V1" + MD5(body) + Marshal of (key, value)) with
    temp-file + rename writes, so shard daemons, parallel dataset
    workers and repeated sweeps can all share one cache directory.
    Corrupt, truncated or foreign files are deleted and treated as
    misses; all IO is best-effort.  Counters [route/cache_hit] and
    [route/cache_miss] report effectiveness. *)

type t

val create : ?max_entries:int -> string -> t
(** [create dir] opens a cache rooted at [dir], creating it (and
    parents) if missing.  The cache is bounded: once more than
    [max_entries] [.route] files exist, the oldest-by-mtime entries
    are evicted after each write (read hits bump the mtime, so this is
    LRU; corrupt survivors age out like any other file).  The cap
    defaults to [DCO3D_ROUTE_CACHE_CAP] (else 4096) and is clamped to
    >= 1.  Evictions are reported on the [route/cache_evicted]
    counter.
    @raise Unix.Unix_error if the directory cannot be created. *)

val dir : t -> string

val max_entries : t -> int
(** The entry cap this cache enforces. *)

val key : config:Router.config -> Dco3d_place.Placement.t -> string
(** The content key (hex MD5) a placement routes under — exposed for
    tests and diagnostics. *)

val find : t -> config:Router.config -> Dco3d_place.Placement.t ->
  Router.result option
(** Cached result for this (netlist, binned placement, config), if
    present and intact. *)

val put : t -> config:Router.config -> Dco3d_place.Placement.t ->
  Router.result -> bool
(** Persist a result; [false] if the write failed (disk full, …). *)

val count : t -> int
(** Number of [.route] entries currently on disk (for stats). *)

val find_or_route :
  ?cache:t ->
  ?validate:bool ->
  ?warm_start:Router.result * Dco3d_place.Placement.t ->
  config:Router.config ->
  Dco3d_place.Placement.t ->
  Router.result
(** Cache-through routing: look up, route on miss, persist the fresh
    result (best-effort).  With [?cache] absent this is exactly
    [Router.route ~config].  [?warm_start] is forwarded to
    {!Router.route} on a miss; a warm-started result is {e not}
    persisted — it depends on the predecessor chain rather than the
    content key alone, and caching it would break the cache's
    cold-replay bit-identity contract. *)
