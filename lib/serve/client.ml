module P = Protocol

type t = {
  mutable fd : Unix.file_descr;
  mutable open_ : bool;
  redial : (unit -> Unix.file_descr) option;
      (* how to re-establish this connection after the peer vanishes;
         present for [connect]ed clients, absent for [of_fd] *)
}

exception Error of string

let dial (addr : Server.address) =
  let fd, sockaddr =
    match addr with
    | Server.Unix_path path ->
        (Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0, Unix.ADDR_UNIX path)
    | Server.Tcp (host, port) ->
        ( Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0,
          Unix.ADDR_INET (Unix.inet_addr_of_string host, port) )
  in
  (try Unix.connect fd sockaddr
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

let connect (addr : Server.address) =
  (* A daemon that dies mid-request must surface as an exception on
     this connection, not as a process-killing SIGPIPE. *)
  if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  { fd = dial addr; open_ = true; redial = Some (fun () -> dial addr) }

let of_fd fd = { fd; open_ = true; redial = None }

let close c =
  if c.open_ then begin
    c.open_ <- false;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end

(* Try to re-establish a dropped connection.  True on success. *)
let reconnect c =
  match c.redial with
  | None -> false
  | Some f -> (
      close c;
      match f () with
      | fd ->
          c.fd <- fd;
          c.open_ <- true;
          true
      | exception _ -> false)

exception Lost_connection

let roundtrip c req timeout_ms =
  if not c.open_ then raise (Error "client closed");
  try
    P.send_request c.fd { P.req; timeout_ms };
    P.recv_reply c.fd
  with
  | End_of_file
  | P.Protocol_error _
  | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) ->
      (* The peer vanished (shard crash, balancer restart) or the frame
         was cut mid-flight.  The connection is unusable either way. *)
      close c;
      raise Lost_connection

let fail_reply what = function
  | P.Server_error msg -> raise (Error (what ^ ": server error: " ^ msg))
  | _ -> raise (Error (what ^ ": unexpected reply"))

let ping c =
  match roundtrip c P.Ping None with
  | P.Pong -> ()
  | r -> fail_reply "ping" r

let hello ?(want = P.Want_any) c =
  match roundtrip c (P.Hello want) None with
  | P.Hello_reply { h_fingerprint; h_shard; h_numeric } ->
      (h_fingerprint, h_shard, h_numeric)
  | r -> fail_reply "hello" r

type predict_outcome =
  | Ok of {
      c_bottom : Dco3d_tensor.Tensor.t;
      c_top : Dco3d_tensor.Tensor.t;
      cache_hit : bool;
    }
  | Overloaded of { queue_len : int; capacity : int }
  | Timed_out
  | Disconnected

let predict ?timeout_ms c f_bottom f_top =
  match roundtrip c (P.Predict { P.f_bottom; f_top }) timeout_ms with
  | P.Predicted { c_bottom; c_top; cache_hit } ->
      Ok { c_bottom; c_top; cache_hit }
  | P.Overloaded { queue_len; capacity } -> Overloaded { queue_len; capacity }
  | P.Timed_out -> Timed_out
  | r -> fail_reply "predict" r
  | exception Lost_connection -> Disconnected

(* Jittered exponential backoff around [predict].  [Overloaded] and
   [Timed_out] are transient backpressure — the queue drains in
   milliseconds — so a bounded retry loop turns them into successes
   without hammering the daemon: the k-th wait is [base * 2^k] scaled
   by a uniform jitter in [0.5, 1), which decorrelates competing
   clients (all-full-delay retries would re-collide exactly like the
   original burst).  [Disconnected] is treated the same way when the
   client knows how to redial (it came from [connect]): behind a
   balancer, a crashed shard is replaced within a health-check period,
   so redial-and-retry turns a mid-request crash into a success.  A
   [deadline_s] budget caps the whole loop, sleeps are clamped to the
   time remaining, and the last daemon outcome is returned verbatim
   once attempts or budget run out. *)
let retry ?(attempts = 5) ?(base_delay_s = 0.01) ?(max_delay_s = 0.5)
    ?deadline_s ?(seed = 0) ?timeout_ms c f_bottom f_top =
  if attempts < 1 then invalid_arg "Client.retry: attempts < 1";
  let rng = Dco3d_tensor.Rng.create (seed lxor 0x5e7) in
  let started = Unix.gettimeofday () in
  let remaining () =
    match deadline_s with
    | None -> infinity
    | Some budget -> budget -. (Unix.gettimeofday () -. started)
  in
  let rec go k =
    let outcome =
      if c.open_ then predict ?timeout_ms c f_bottom f_top else Disconnected
    in
    match outcome with
    | Ok _ -> outcome
    | Overloaded _ | Timed_out | Disconnected ->
        if k + 1 >= attempts then outcome
        else begin
          let expo = base_delay_s *. (2. ** float_of_int k) in
          let jitter = Dco3d_tensor.Rng.range rng 0.5 1.0 in
          let delay = Float.min max_delay_s expo *. jitter in
          let left = remaining () in
          if left <= 0. then outcome
          else begin
            Thread.delay (Float.min delay left);
            if remaining () <= 0. then outcome
            else begin
              (* A dead connection must be re-established before the
                 next attempt; if the redial fails (fleet mid-restart),
                 keep backing off until attempts run out. *)
              if not c.open_ then ignore (reconnect c);
              go (k + 1)
            end
          end
        end
  in
  go 0

let submit_flow c spec =
  match roundtrip c (P.Flow_submit spec) None with
  | P.Accepted id -> id
  | r -> fail_reply "submit_flow" r

let poll_flow c id =
  match roundtrip c (P.Flow_poll id) None with
  | P.Status s -> s
  | r -> fail_reply "poll_flow" r

let wait_flow ?(poll_interval_s = 0.05) c id =
  let rec go () =
    match poll_flow c id with
    | P.Job_done summary -> summary
    | P.Job_failed msg ->
        raise (Error (Printf.sprintf "flow job %d failed: %s" id msg))
    | P.Job_queued | P.Job_running ->
        Thread.delay poll_interval_s;
        go ()
  in
  go ()

let submit_corpus c req =
  match roundtrip c (P.Corpus_submit req) None with
  | P.Accepted id -> id
  | r -> fail_reply "submit_corpus" r

let poll_corpus c id =
  match roundtrip c (P.Corpus_poll id) None with
  | P.Corpus_status s -> s
  | r -> fail_reply "poll_corpus" r

let wait_corpus ?(poll_interval_s = 0.05) c id =
  let rec go () =
    match poll_corpus c id with
    | P.Corpus_done result -> result
    | P.Corpus_failed msg ->
        raise (Error (Printf.sprintf "corpus job %d failed: %s" id msg))
    | P.Corpus_queued | P.Corpus_running ->
        Thread.delay poll_interval_s;
        go ()
  in
  go ()

let stats c =
  match roundtrip c P.Stats None with
  | P.Stats_reply kv -> kv
  | r -> fail_reply "stats" r
