(** A string-keyed LRU map — the serve daemon's result cache.

    Plain mutable structure, {e not} thread-safe: the server guards it
    with its own state lock, so the cache itself stays free of locking
    policy.  [find] promotes the entry it returns to most-recently-used;
    [put] evicts the least-recently-used entry once [capacity] entries
    are resident.  A capacity of [0] disables the cache ([find] always
    misses, [put] is a no-op). *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity < 0]. *)

val capacity : 'a t -> int
val length : 'a t -> int

val find : 'a t -> string -> 'a option
(** Lookup; a hit becomes the most-recently-used entry. *)

val put : 'a t -> string -> 'a -> unit
(** Insert or replace; the entry becomes most-recently-used.  Evicts
    the least-recently-used entry when the cache is full. *)

val mem : 'a t -> string -> bool
(** Membership without promotion. *)

val set_on_evict : 'a t -> (string -> 'a -> unit) -> unit
(** Install the eviction hook.  Every {e capacity} eviction (an entry
    pushed out by [put] on a full cache) calls it with the departing
    key and value — the serve daemon points it at the disk spill.
    [clear] does not fire it.  Exceptions from the hook propagate to
    the [put] that triggered the eviction. *)

val iter : 'a t -> (string -> 'a -> unit) -> unit
(** Iterate entries from most- to least-recently-used, without
    promoting anything.  Used to flush the live hot set to disk on
    graceful drain. *)

val clear : 'a t -> unit
