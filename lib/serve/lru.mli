(** A string-keyed LRU map — the serve daemon's result cache.

    Plain mutable structure, {e not} thread-safe: the server guards it
    with its own state lock, so the cache itself stays free of locking
    policy.  [find] promotes the entry it returns to most-recently-used;
    [put] evicts the least-recently-used entry once [capacity] entries
    are resident.  A capacity of [0] disables the cache ([find] always
    misses, [put] is a no-op). *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity < 0]. *)

val capacity : 'a t -> int
val length : 'a t -> int

val find : 'a t -> string -> 'a option
(** Lookup; a hit becomes the most-recently-used entry. *)

val put : 'a t -> string -> 'a -> unit
(** Insert or replace; the entry becomes most-recently-used.  Evicts
    the least-recently-used entry when the cache is full. *)

val mem : 'a t -> string -> bool
(** Membership without promotion. *)

val clear : 'a t -> unit
