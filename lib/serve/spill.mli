(** Persistent spill for evicted result-cache entries.

    When a shard's LRU evicts an entry, the server writes it here; when
    a (possibly restarted) shard misses in memory, it read-through
    checks the spill before running the forward pass — so restarts and
    rolling swaps keep the hot set warm.  Entries use the same
    magic+digest framing as the model files ("DCO3D-SPILL-V1" +
    MD5(body)), store their own cache key for verification, and are
    written via temp-file + rename.  Cache keys embed the numeric-aware
    model fingerprint, so a stale spill dir can never serve maps from a
    different model.

    All operations are best-effort and never raise on IO failure:
    [put] reports success as a bool, [find] deletes any corrupt file it
    encounters and returns [None]. *)

type t

val create : dir:string -> t
(** Creates [dir] (and parents) if missing.
    @raise Unix.Unix_error if the directory cannot be created. *)

val dir : t -> string

val put : t -> string -> Dco3d_tensor.Tensor.t * Dco3d_tensor.Tensor.t -> bool
(** Persist one entry; [false] if the write failed (disk full, …). *)

val find : t -> string -> (Dco3d_tensor.Tensor.t * Dco3d_tensor.Tensor.t) option
(** Load an entry.  Digest and stored-key verified; a file that fails
    either check is deleted and reported as a miss. *)

val count : t -> int
(** Number of [.spill] entries currently on disk (for stats). *)
