(** The [dco3d balance] front process: an fd-passing balancer over a
    pool of shard daemons.

    {v
                         clients
                            │ connect + first frame
                      ┌─────▼──────┐
                      │  balancer  │  public socket (Unix path or TCP)
                      │ route+pass │
                      └─┬───┬────┬─┘
             SCM_RIGHTS │   │    │ control channel (ctl socket)
                 ┌──────▼┐ ┌▼─────┐  … one [Server.start_detached]
                 │shard 0│ │shard 1│    per slot, own batcher + LRU
                 └───┬───┘ └──┬───┘
                     └───┬────┘
                   spill dir (per shard)
    v}

    The balancer reads exactly one request frame per new connection to
    pick a shard (by model fingerprint for [Hello], by predict-key hash
    affinity within the primary model group otherwise), then passes the
    accepted descriptor — plus the consumed frame bytes, which the
    shard replays — over the control channel.  Steady-state traffic
    never touches the balancer again: zero proxying.

    Shards are supervised child processes: crashed ones are reaped and
    respawned (clients ride through via [Client.retry]'s redial), hung
    ones are killed after a ping timeout, and {!drain_shard} /
    {!rolling_restart} cycle shards gracefully — each drains its queue,
    spills its hot LRU set to disk, and exits; the respawned process
    warms back up from the spill.  That is the rolling model swap:
    update the model file, [rolling_restart], no downtime. *)

type config = {
  address : Server.address;  (** public endpoint clients connect to *)
  ctl_path : string;  (** Unix path of the shard control socket *)
  n_shards : int;
  health_period_s : float;  (** supervision cadence (default 0.25) *)
  health_timeout_s : float;  (** ping reply budget before a shard is
                                 declared hung (default 5.0) *)
  restart_backoff_s : float;  (** delay before respawning a dead shard
                                  (default 0.2) *)
}

val default_config :
  address:Server.address -> ctl_path:string -> n_shards:int -> config

type t

type slot_info = {
  si_idx : int;
  si_state : string;  (** "starting" | "live" | "draining" | "dead" *)
  si_pid : int;
  si_fingerprint : string;
  si_numeric : string;
  si_restarts : int;
}

val start : config -> argv_of:(int -> string array) -> t
(** Bind the public and control sockets and spawn the [n_shards] shard
    processes, slot [i] running the command [argv_of i] (typically
    [dco3d serve --shard-of CTL --shard-id i …]).  Returns once the
    sockets are listening; use {!await_live} to wait for shards.
    @raise Unix.Unix_error if an address cannot be bound. *)

val bound_addr : t -> Server.address
(** Public address actually bound (TCP port 0 resolved). *)

val await_live : ?timeout_s:float -> t -> int -> bool
(** [await_live t n] blocks until at least [n] shards are live (false
    on timeout, default 60 s). *)

val n_live : t -> int

val slots : t -> slot_info list
(** Snapshot of every slot, in index order. *)

val drain_shard : t -> int -> unit
(** Ask one shard to drain and exit (its routed connections finish,
    its hot set spills); the health loop respawns it.  No-op unless
    the slot is live.  @raise Invalid_argument on a bad index. *)

val rolling_restart : ?timeout_s:float -> t -> bool
(** Drain-and-respawn every shard, one at a time, waiting for each to
    come back live before touching the next — a zero-downtime model
    swap.  False if any slot missed the per-slot [timeout_s] (default
    120 s). *)

val request_stop : t -> unit
(** Begin shutdown: stop accepting and supervising.  Idempotent. *)

val wait : t -> unit
(** Block until shutdown completes: every shard is asked to drain,
    reaped (escalating to SIGKILL after 30 s), and both sockets are
    closed and unlinked. *)

val stop : t -> unit
(** [request_stop] then [wait]. *)
