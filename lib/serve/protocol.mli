(** Wire protocol of the [dco3d serve] daemon.

    Every message travels as one length-prefixed binary frame, mirroring
    the framing discipline of the on-disk model files (magic + version +
    digest + Marshal payload):

    {v
    "DCO3D-SERVE-V1" | u8 version | u32_be payload length
                     | 16-byte MD5(payload) | payload
    v}

    The digest makes truncated or corrupted frames fail loudly at the
    receiver instead of Marshal-decoding garbage; for [Predict] requests
    the {e content} digest ({!predict_key}) doubles as the daemon's
    result-cache key.  Frames are capped at {!max_frame_bytes}. *)

type predict_payload = {
  f_bottom : Dco3d_tensor.Tensor.t;  (** raw [[7; ny; nx]] stack, bottom die *)
  f_top : Dco3d_tensor.Tensor.t;
}

type flow_variant = Pin3d | Pin3d_cong

type flow_spec = {
  fl_design : string;  (** benchmark name, e.g. "DMA" *)
  fl_scale : float;
  fl_seed : int;
  fl_gcell : int;
  fl_variant : flow_variant;
}

type route_want =
  | Want_any  (** any live shard *)
  | Want_numeric of string  (** a shard serving this numeric path ("f32"/"i8") *)
  | Want_fingerprint of string  (** a shard with exactly this model fingerprint *)

(** The third async request class: corpus PPA cells and corpus dataset
    builds, deduped in-flight by {!corpus_key} and cached on disk by
    [(netlist digest, flow config, seed)]. *)
type corpus_kind =
  | Corpus_ppa  (** run the full flow, report the PPA row *)
  | Corpus_dataset of int
      (** build an [n_samples] congestion dataset on the corpus
          design (warms the fleet's shared route cache), report its
          content digest *)

type corpus_req = {
  cr_spec : Dco3d_corpus.Corpus.spec;
  cr_config : Dco3d_corpus.Corpus.flow_config;
  cr_kind : corpus_kind;
}

type request =
  | Ping
  | Predict of predict_payload
  | Flow_submit of flow_spec
  | Flow_poll of int
  | Stats
  | Hello of route_want
      (** optional first request on a balanced connection: pins the
          route before the fd is handed to a shard.  New constructors
          are appended so Marshal tags of older ones never shift. *)
  | Corpus_submit of corpus_req
  | Corpus_poll of int

type envelope = {
  req : request;
  timeout_ms : float option;
      (** per-request deadline, measured by the server from arrival;
          a request still queued past it is answered [Timed_out] *)
}

type flow_summary = {
  fs_name : string;
  fs_overflow : int;
  fs_wirelength_um : float;
  fs_wns_ps : float;
  fs_tns_ps : float;
  fs_power_mw : float;
}

type job_status =
  | Job_queued
  | Job_running
  | Job_done of flow_summary
  | Job_failed of string

type corpus_result =
  | Corpus_row of Dco3d_corpus.Corpus.row
  | Corpus_dataset_built of {
      cd_design : string;
      cd_samples : int;
      cd_digest : string;  (** {!Dco3d_core.Dataset.digest} *)
    }

type corpus_status =
  | Corpus_queued
  | Corpus_running
  | Corpus_done of corpus_result
  | Corpus_failed of string

type reply =
  | Pong
  | Predicted of {
      c_bottom : Dco3d_tensor.Tensor.t;
      c_top : Dco3d_tensor.Tensor.t;
      cache_hit : bool;
    }
  | Accepted of int  (** flow job id *)
  | Status of job_status
  | Stats_reply of (string * float) list
  | Overloaded of { queue_len : int; capacity : int }
      (** backpressure: the predict queue is past its high-water mark *)
  | Timed_out
  | Server_error of string
  | Hello_reply of { h_fingerprint : string; h_shard : int; h_numeric : string }
      (** answer to [Hello]: which shard the connection landed on *)
  | Corpus_status of corpus_status
      (** answer to [Corpus_submit] is [Accepted id]; this answers
          [Corpus_poll] *)

exception Protocol_error of string
(** Bad magic, unsupported version, oversized frame, or digest
    mismatch. *)

val max_frame_bytes : int

val write_all : Unix.file_descr -> Bytes.t -> int -> int -> unit
val read_all : Unix.file_descr -> Bytes.t -> int -> int -> unit
(** Short-transfer/EINTR-safe loops, shared with the control channel.
    [read_all] raises [End_of_file] if the peer closes mid-read. *)

val send_frame : Unix.file_descr -> string -> unit
val recv_frame : Unix.file_descr -> string
(** Raw framed payloads.  The balancer uses [recv_frame] to pull one
    request off a fresh connection without consuming anything else,
    then forwards the exact bytes to the chosen shard. *)

val send_request : Unix.file_descr -> envelope -> unit
val recv_request : Unix.file_descr -> envelope
(** @raise End_of_file on a clean peer disconnect before any byte of a
    frame; {!Protocol_error} on a malformed frame. *)

val send_reply : Unix.file_descr -> reply -> unit
val recv_reply : Unix.file_descr -> reply

val predict_key : predict_payload -> string
(** Hex digest of the feature-map content alone (no envelope fields),
    combined by the server with the model fingerprint to key the result
    cache. *)

val corpus_key : corpus_req -> string
(** Hex digest of a corpus request's full content — the server's
    in-flight dedup identity: concurrent submits of the same request
    share one job id. *)

val decode_request : string -> envelope
(** Decode a raw frame payload (from {!recv_frame}) into an envelope.
    @raise Protocol_error if the payload does not unmarshal. *)

(** Announcement a shard sends over the balancer's control channel when
    it registers. *)
type shard_hello = {
  sh_pid : int;
  sh_shard : int;
  sh_fingerprint : string;
  sh_numeric : string;
}

val encode_shard_hello : shard_hello -> string
val decode_shard_hello : string -> shard_hello
