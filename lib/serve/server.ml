module P = Protocol
module Obs = Dco3d_obs.Obs
module Predictor = Dco3d_core.Predictor
module T = Dco3d_tensor.Tensor

type address = Unix_path of string | Tcp of string * int

type config = {
  address : address;
  queue_capacity : int;
  max_batch : int;
  batch_linger_ms : float;
  cache_capacity : int;
  numeric : [ `F32 | `I8 ];
  spill_dir : string option;
  route_cache_dir : string option;
  corpus_dir : string option;
      (* PPA row store; defaults to <route_cache_dir>/corpus *)
  shard_id : int;
}

let default_config address =
  {
    address;
    queue_capacity = 64;
    max_batch = 8;
    batch_linger_ms = 2.0;
    cache_capacity = 128;
    numeric = `F32;
    spill_dir = None;
    route_cache_dir = None;
    corpus_dir = None;
    shard_id = 0;
  }

let numeric_name = function `F32 -> "f32" | `I8 -> "i8"

(* Obs probes (interning is idempotent, handles live at module level). *)
let c_requests = Obs.counter "serve/requests"
let c_cache_hit = Obs.counter "serve/cache_hit"
let c_cache_miss = Obs.counter "serve/cache_miss"
let c_overloaded = Obs.counter "serve/overloaded"
let c_timeout = Obs.counter "serve/timeout"
let c_epipe = Obs.counter "serve/epipe"
let c_spill_hit = Obs.counter "serve/spill_hit"
let c_spill_write = Obs.counter "serve/spill_write"
let g_queue_depth = Obs.gauge "serve/queue_depth"
let h_batch_size = Obs.histogram "serve/batch_size"

(* A predict request parked between its connection handler and the
   batcher.  The handler blocks on [cv] until the batcher (or the
   cache, or the deadline) fills [outcome]. *)
type pending = {
  payload : P.predict_payload;
  key : string;
  deadline : float option;  (** absolute, [Unix.gettimeofday] clock *)
  mutable outcome : P.reply option;
  pm : Mutex.t;
  pcv : Condition.t;
}

type stats_acc = {
  mutable n_requests : int;
  mutable n_cache_hits : int;
  mutable n_cache_misses : int;
  mutable n_overloaded : int;
  mutable n_timeouts : int;
  mutable n_batches : int;
  mutable max_batch_seen : int;
  mutable n_epipe : int;
  mutable jobs_submitted : int;
  mutable jobs_done : int;
  mutable jobs_failed : int;
  mutable n_spill_hits : int;
  mutable n_spill_writes : int;
  mutable corpus_submitted : int;
  mutable corpus_dedup : int;  (* submits answered with an in-flight id *)
  mutable corpus_done : int;
  mutable corpus_failed : int;
}

type t = {
  cfg : config;
  predictor : Predictor.t;
  fingerprint : string;
  listen : Unix.file_descr option;  (* absent for detached (shard) servers *)
  bound : address;
  (* Self-pipe: [request_stop] writes one byte so the accept loop's
     blocking select wakes immediately instead of on a poll tick. *)
  stop_rd : Unix.file_descr;
  stop_wr : Unix.file_descr;
  spill : Spill.t option;
  started_at : float;
  (* All mutable server state below is guarded by [m]. *)
  m : Mutex.t;
  queue_cv : Condition.t;  (* batcher wakeup *)
  flow_cv : Condition.t;  (* flow-worker wakeup *)
  corpus_cv : Condition.t;  (* corpus-worker wakeup *)
  queue : pending Queue.t;
  cache : (T.t * T.t) Lru.t;
  jobs : (int, P.job_status) Hashtbl.t;
  flow_queue : (int * P.flow_spec) Queue.t;
  corpus_jobs : (int, P.corpus_status) Hashtbl.t;
  corpus_queue : (int * string * P.corpus_req) Queue.t;  (* id, dedup key *)
  (* dedup key -> job id for queued/running corpus jobs: a duplicate
     submit joins the in-flight job instead of queueing a second run *)
  corpus_inflight : (string, int) Hashtbl.t;
  mutable next_job_id : int;
  mutable stopping : bool;
  mutable conns : Unix.file_descr list;  (* live connection sockets *)
  stats : stats_acc;
  mutable accept_thread : Thread.t option;
  mutable batcher_thread : Thread.t option;
  mutable flow_thread : Thread.t option;
  mutable corpus_thread : Thread.t option;
  mutable handler_threads : Thread.t list;
}

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let now () = Unix.gettimeofday ()

let deadline_of arrival = function
  | None -> None
  | Some ms -> Some (arrival +. (ms /. 1000.))

let expired deadline = match deadline with Some d -> now () > d | None -> false

let resolve_pending p reply =
  Mutex.lock p.pm;
  p.outcome <- Some reply;
  Condition.signal p.pcv;
  Mutex.unlock p.pm

let await_pending p =
  Mutex.lock p.pm;
  while p.outcome = None do
    Condition.wait p.pcv p.pm
  done;
  let r = Option.get p.outcome in
  Mutex.unlock p.pm;
  r

(* ------------------------------------------------------------------ *)
(* Micro-batcher                                                       *)
(* ------------------------------------------------------------------ *)

(* Pop up to [max_batch] pending requests.  Called with [t.m] held and
   the queue non-empty. *)
let take_batch t =
  let n = min t.cfg.max_batch (Queue.length t.queue) in
  let batch = Array.init n (fun _ -> Queue.pop t.queue) in
  Obs.set_gauge g_queue_depth (float_of_int (Queue.length t.queue));
  batch

let run_batch t batch =
  (* Late cache check: an identical request may have been answered (and
     cached) since this one queued; and identical requests inside one
     batch should run the forward pass once. *)
  let misses = ref [] in
  let by_key : (string, pending list) Hashtbl.t = Hashtbl.create 8 in
  locked t (fun () ->
      Array.iter
        (fun p ->
          if expired p.deadline then begin
            t.stats.n_timeouts <- t.stats.n_timeouts + 1;
            Obs.incr c_timeout;
            resolve_pending p P.Timed_out
          end
          else
            match Lru.find t.cache p.key with
            | Some (cb, ct) ->
                t.stats.n_cache_hits <- t.stats.n_cache_hits + 1;
                Obs.incr c_cache_hit;
                resolve_pending p
                  (P.Predicted { c_bottom = cb; c_top = ct; cache_hit = true })
            | None ->
                if not (Hashtbl.mem by_key p.key) then misses := p :: !misses;
                Hashtbl.replace by_key p.key
                  (p :: Option.value ~default:[] (Hashtbl.find_opt by_key p.key)))
        batch);
  let misses = Array.of_list (List.rev !misses) in
  let n = Array.length misses in
  if n > 0 then begin
    Obs.observe h_batch_size (float_of_int n);
    (* the forward pass must not be able to kill the batcher thread: a
       malformed payload (wrong channel count, bad shape) raising out
       of here would leave every queued and future request waiting on
       [cv] forever.  Fail the affected requests, keep the loop. *)
    let results =
      try
        Ok
          (Obs.with_span "serve/batch"
             ~args:[ ("size", string_of_int n) ]
             (fun () ->
               Predictor.predict_batch ~numeric:t.cfg.numeric t.predictor
                 (Array.map
                    (fun p -> (p.payload.P.f_bottom, p.payload.P.f_top))
                    misses)))
      with e -> Error (Printexc.to_string e)
    in
    match results with
    | Error msg ->
        locked t (fun () ->
            Array.iter
              (fun p ->
                List.iter
                  (fun q ->
                    resolve_pending q
                      (P.Server_error ("predict failed: " ^ msg)))
                  (Hashtbl.find by_key p.key))
              misses)
    | Ok results ->
    locked t (fun () ->
        t.stats.n_batches <- t.stats.n_batches + 1;
        if n > t.stats.max_batch_seen then t.stats.max_batch_seen <- n;
        Array.iteri
          (fun i p ->
            let cb, ct = results.(i) in
            Lru.put t.cache p.key (cb, ct);
            t.stats.n_cache_misses <-
              t.stats.n_cache_misses + List.length (Hashtbl.find by_key p.key);
            List.iter
              (fun q ->
                Obs.incr c_cache_miss;
                resolve_pending q
                  (P.Predicted { c_bottom = cb; c_top = ct; cache_hit = false }))
              (Hashtbl.find by_key p.key))
          misses)
  end

let batcher_loop t =
  let running = ref true in
  while !running do
    let batch =
      locked t (fun () ->
          while Queue.is_empty t.queue && not t.stopping do
            Condition.wait t.queue_cv t.m
          done;
          if Queue.is_empty t.queue then begin
            running := false;
            [||]
          end
          else if
            Queue.length t.queue < t.cfg.max_batch
            && t.cfg.batch_linger_ms > 0. && not t.stopping
          then [||] (* linger outside the lock, then retry *)
          else take_batch t)
    in
    if !running then
      if Array.length batch = 0 then begin
        (* Linger: give concurrent clients a moment to pile on, then
           take whatever is there.  OCaml's [Condition] has no timed
           wait, so this is a plain sleep. *)
        Thread.delay (t.cfg.batch_linger_ms /. 1000.);
        let batch =
          locked t (fun () ->
              if Queue.is_empty t.queue then [||] else take_batch t)
        in
        if Array.length batch > 0 then run_batch t batch
      end
      else run_batch t batch
  done

(* ------------------------------------------------------------------ *)
(* Flow worker                                                         *)
(* ------------------------------------------------------------------ *)

let run_flow_spec ?route_cache (spec : P.flow_spec) =
  let profile = Dco3d_netlist.Generator.profile spec.P.fl_design in
  let nl = Dco3d_netlist.Generator.generate ~scale:spec.P.fl_scale ~seed:spec.P.fl_seed profile in
  let ctx =
    Dco3d_flow.Flow.make_context ~seed:spec.P.fl_seed ~gcell_nx:spec.P.fl_gcell
      ~gcell_ny:spec.P.fl_gcell ?route_cache nl
  in
  let result =
    match spec.P.fl_variant with
    | P.Pin3d -> Dco3d_flow.Flow.run_pin3d ctx
    | P.Pin3d_cong -> Dco3d_flow.Flow.run_pin3d_cong ctx
  in
  {
    P.fs_name = result.Dco3d_flow.Flow.flow_name;
    fs_overflow = result.place_stage.overflow;
    fs_wirelength_um = result.signoff.wirelength_um;
    fs_wns_ps = result.signoff.wns_ps;
    fs_tns_ps = result.signoff.tns_ps;
    fs_power_mw = result.signoff.power_mw;
  }

let flow_loop t =
  (* Shards pass one shared directory, so repeated sweeps and sibling
     daemons replay each other's routed corpus (Framing's temp+rename
     writes make concurrent producers safe). *)
  let route_cache =
    Option.map
      (fun d -> Dco3d_route.Route_cache.create d)
      t.cfg.route_cache_dir
  in
  let running = ref true in
  while !running do
    let job =
      locked t (fun () ->
          while Queue.is_empty t.flow_queue && not t.stopping do
            Condition.wait t.flow_cv t.m
          done;
          if Queue.is_empty t.flow_queue then begin
            running := false;
            None
          end
          else Some (Queue.pop t.flow_queue))
    in
    match job with
    | None -> ()
    | Some (id, spec) ->
        locked t (fun () -> Hashtbl.replace t.jobs id P.Job_running);
        let status =
          try
            let summary =
              Obs.with_span "serve/flow_job"
                ~args:[ ("design", spec.P.fl_design) ]
                (fun () -> run_flow_spec ?route_cache spec)
            in
            P.Job_done summary
          with
          | Not_found ->
              P.Job_failed (Printf.sprintf "unknown design %S" spec.P.fl_design)
          | e -> P.Job_failed (Printexc.to_string e)
        in
        locked t (fun () ->
            Hashtbl.replace t.jobs id status;
            match status with
            | P.Job_done _ -> t.stats.jobs_done <- t.stats.jobs_done + 1
            | _ -> t.stats.jobs_failed <- t.stats.jobs_failed + 1)
  done

(* ------------------------------------------------------------------ *)
(* Corpus worker                                                       *)
(* ------------------------------------------------------------------ *)

module Corpus = Dco3d_corpus.Corpus
module Dataset = Dco3d_core.Dataset

let c_corpus_dedup = Obs.counter "serve/corpus_dedup"

let run_corpus_req ?store ?route_cache (req : P.corpus_req) =
  match req.P.cr_kind with
  | P.Corpus_ppa ->
      P.Corpus_row
        (Corpus.run_cell ?store ?route_cache req.P.cr_spec req.P.cr_config)
  | P.Corpus_dataset n_samples ->
      let d =
        Corpus.build_dataset ~n_samples ?route_cache req.P.cr_spec
          req.P.cr_config
      in
      P.Corpus_dataset_built
        {
          cd_design = d.Dataset.design;
          cd_samples = Array.length d.Dataset.samples;
          cd_digest = Dataset.digest d;
        }

let corpus_loop t =
  (* The PPA store sits next to the route cache (one layout corpus per
     fleet): an explicit --corpus-cache wins, else <route cache>/corpus,
     else no persistence (jobs still run). *)
  let route_cache =
    Option.map
      (fun d -> Dco3d_route.Route_cache.create d)
      t.cfg.route_cache_dir
  in
  let store_dir =
    match (t.cfg.corpus_dir, t.cfg.route_cache_dir) with
    | Some d, _ -> Some d
    | None, Some rc -> Some (Filename.concat rc "corpus")
    | None, None -> None
  in
  let store = Option.map (fun d -> Corpus.Store.create d) store_dir in
  let running = ref true in
  while !running do
    let job =
      locked t (fun () ->
          while Queue.is_empty t.corpus_queue && not t.stopping do
            Condition.wait t.corpus_cv t.m
          done;
          if Queue.is_empty t.corpus_queue then begin
            running := false;
            None
          end
          else Some (Queue.pop t.corpus_queue))
    in
    match job with
    | None -> ()
    | Some (id, key, req) ->
        locked t (fun () -> Hashtbl.replace t.corpus_jobs id P.Corpus_running);
        let status =
          try
            let result =
              Obs.with_span "serve/corpus_job"
                ~args:
                  [
                    ("design", req.P.cr_spec.Corpus.sp_name);
                    ("config", req.P.cr_config.Corpus.fc_name);
                  ]
                (fun () -> run_corpus_req ?store ?route_cache req)
            in
            P.Corpus_done result
          with
          | Not_found ->
              P.Corpus_failed
                (Printf.sprintf "unknown base profile %S"
                   req.P.cr_spec.Corpus.sp_base)
          | e -> P.Corpus_failed (Printexc.to_string e)
        in
        locked t (fun () ->
            Hashtbl.replace t.corpus_jobs id status;
            Hashtbl.remove t.corpus_inflight key;
            match status with
            | P.Corpus_done _ -> t.stats.corpus_done <- t.stats.corpus_done + 1
            | _ -> t.stats.corpus_failed <- t.stats.corpus_failed + 1)
  done

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let stats_snapshot t =
  locked t (fun () ->
      let s = t.stats in
      [
        ("queue_depth", float_of_int (Queue.length t.queue));
        ("queue_capacity", float_of_int t.cfg.queue_capacity);
        ("cache_len", float_of_int (Lru.length t.cache));
        ("cache_capacity", float_of_int (Lru.capacity t.cache));
        ("requests", float_of_int s.n_requests);
        ("cache_hits", float_of_int s.n_cache_hits);
        ("cache_misses", float_of_int s.n_cache_misses);
        ("overloaded", float_of_int s.n_overloaded);
        ("timeouts", float_of_int s.n_timeouts);
        ("batches", float_of_int s.n_batches);
        ("max_batch", float_of_int s.max_batch_seen);
        ("epipe", float_of_int s.n_epipe);
        ("jobs_submitted", float_of_int s.jobs_submitted);
        ("jobs_done", float_of_int s.jobs_done);
        ("jobs_failed", float_of_int s.jobs_failed);
        ("spill_hits", float_of_int s.n_spill_hits);
        ("spill_writes", float_of_int s.n_spill_writes);
        ("corpus_submitted", float_of_int s.corpus_submitted);
        ("corpus_dedup", float_of_int s.corpus_dedup);
        ("corpus_done", float_of_int s.corpus_done);
        ("corpus_failed", float_of_int s.corpus_failed);
        (* store/cache effectiveness, readable fleet-wide over the wire *)
        ( "corpus_cache_hits",
          float_of_int (Obs.counter_value "corpus/cache_hit") );
        ( "corpus_cache_misses",
          float_of_int (Obs.counter_value "corpus/cache_miss") );
        ( "corpus_cache_evicted",
          float_of_int (Obs.counter_value "corpus/cache_evicted") );
        ("shard_id", float_of_int t.cfg.shard_id);
        ("uptime_s", now () -. t.started_at);
      ])

let stats = stats_snapshot

(* ------------------------------------------------------------------ *)
(* Connection handling                                                 *)
(* ------------------------------------------------------------------ *)

let handle_predict t payload timeout_ms =
  let key = P.predict_key payload ^ ":" ^ t.fingerprint in
  let arrival = now () in
  let cached =
    locked t (fun () ->
        match Lru.find t.cache key with
        | Some (cb, ct) ->
            (* Fast path: answered from the cache on the connection
               thread, no queueing, no forward pass. *)
            t.stats.n_cache_hits <- t.stats.n_cache_hits + 1;
            Obs.incr c_cache_hit;
            Some (P.Predicted { c_bottom = cb; c_top = ct; cache_hit = true })
        | None -> None)
  in
  match cached with
  | Some r -> r
  | None ->
  (* Read-through to the spill before paying for a forward pass, so a
     restarted shard serves its predecessor's hot set.  The disk read
     runs outside the state lock; a racing duplicate at worst reads the
     same file twice. *)
  match
    match t.spill with Some sp -> Spill.find sp key | None -> None
  with
  | Some (cb, ct) ->
      locked t (fun () ->
          Lru.put t.cache key (cb, ct);
          t.stats.n_cache_hits <- t.stats.n_cache_hits + 1;
          t.stats.n_spill_hits <- t.stats.n_spill_hits + 1);
      Obs.incr c_cache_hit;
      Obs.incr c_spill_hit;
      P.Predicted { c_bottom = cb; c_top = ct; cache_hit = true }
  | None ->
  let action =
    locked t (fun () ->
        match Lru.find t.cache key with
        | Some (cb, ct) ->
            (* A racing duplicate landed while we probed the spill. *)
            t.stats.n_cache_hits <- t.stats.n_cache_hits + 1;
            Obs.incr c_cache_hit;
            `Reply (P.Predicted { c_bottom = cb; c_top = ct; cache_hit = true })
        | None ->
            if t.stopping then `Reply (P.Server_error "server shutting down")
            else if Queue.length t.queue >= t.cfg.queue_capacity then begin
              t.stats.n_overloaded <- t.stats.n_overloaded + 1;
              Obs.incr c_overloaded;
              `Reply
                (P.Overloaded
                   {
                     queue_len = Queue.length t.queue;
                     capacity = t.cfg.queue_capacity;
                   })
            end
            else begin
              let p =
                {
                  payload;
                  key;
                  deadline = deadline_of arrival timeout_ms;
                  outcome = None;
                  pm = Mutex.create ();
                  pcv = Condition.create ();
                }
              in
              Queue.push p t.queue;
              Obs.set_gauge g_queue_depth (float_of_int (Queue.length t.queue));
              Condition.signal t.queue_cv;
              `Wait p
            end)
  in
  match action with `Reply r -> r | `Wait p -> await_pending p

let handle_request t (env : P.envelope) =
  locked t (fun () -> t.stats.n_requests <- t.stats.n_requests + 1);
  Obs.incr c_requests;
  match env.P.req with
  | P.Ping -> P.Pong
  | P.Stats -> P.Stats_reply (stats_snapshot t)
  | P.Predict payload -> handle_predict t payload env.P.timeout_ms
  | P.Flow_submit spec ->
      let id =
        locked t (fun () ->
            if t.stopping then -1
            else begin
              let id = t.next_job_id in
              t.next_job_id <- id + 1;
              Hashtbl.replace t.jobs id P.Job_queued;
              Queue.push (id, spec) t.flow_queue;
              t.stats.jobs_submitted <- t.stats.jobs_submitted + 1;
              Condition.signal t.flow_cv;
              id
            end)
      in
      if id < 0 then P.Server_error "server shutting down" else P.Accepted id
  | P.Flow_poll id -> (
      match locked t (fun () -> Hashtbl.find_opt t.jobs id) with
      | Some status -> P.Status status
      | None -> P.Server_error (Printf.sprintf "unknown job id %d" id))
  | P.Hello _ ->
      (* Normally consumed by the balancer; answered here too so a
         client talking straight to a shard gets the same handshake. *)
      P.Hello_reply
        {
          h_fingerprint = t.fingerprint;
          h_shard = t.cfg.shard_id;
          h_numeric = numeric_name t.cfg.numeric;
        }
  | P.Corpus_submit req ->
      let key = P.corpus_key req in
      let id =
        locked t (fun () ->
            if t.stopping then -1
            else
              match Hashtbl.find_opt t.corpus_inflight key with
              | Some id ->
                  (* identical request already queued or running: join it *)
                  t.stats.corpus_dedup <- t.stats.corpus_dedup + 1;
                  Obs.incr c_corpus_dedup;
                  id
              | None ->
                  let id = t.next_job_id in
                  t.next_job_id <- id + 1;
                  Hashtbl.replace t.corpus_jobs id P.Corpus_queued;
                  Hashtbl.replace t.corpus_inflight key id;
                  Queue.push (id, key, req) t.corpus_queue;
                  t.stats.corpus_submitted <- t.stats.corpus_submitted + 1;
                  Condition.signal t.corpus_cv;
                  id)
      in
      if id < 0 then P.Server_error "server shutting down" else P.Accepted id
  | P.Corpus_poll id -> (
      match locked t (fun () -> Hashtbl.find_opt t.corpus_jobs id) with
      | Some status -> P.Corpus_status status
      | None -> P.Server_error (Printf.sprintf "unknown corpus job id %d" id))

(* [initial] is a raw frame payload the balancer already read off this
   connection to pick the route; the handler replays it before touching
   the socket so the client's first request is never lost. *)
let handler_loop t ?initial fd =
  let finished = ref false in
  let replay = ref initial in
  let next () =
    match !replay with
    | Some payload ->
        replay := None;
        P.decode_request payload
    | None -> P.recv_request fd
  in
  (try
     while not !finished do
       match next () with
       | env -> (
           let reply =
             try handle_request t env
             with e -> P.Server_error (Printexc.to_string e)
           in
           try P.send_reply fd reply with
           | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
               (* The client went away mid-reply: a per-connection
                  error, not a daemon failure (SIGPIPE is ignored). *)
               locked t (fun () -> t.stats.n_epipe <- t.stats.n_epipe + 1);
               Obs.incr c_epipe;
               finished := true)
       | exception End_of_file -> finished := true
       | exception P.Protocol_error msg ->
           (try P.send_reply fd (P.Server_error ("protocol error: " ^ msg))
            with _ -> ());
           finished := true
       | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _)
         ->
           locked t (fun () -> t.stats.n_epipe <- t.stats.n_epipe + 1);
           Obs.incr c_epipe;
           finished := true
     done
   with _ -> ());
  locked t (fun () ->
      t.conns <- List.filter (fun c -> c != fd) t.conns);
  try Unix.close fd with Unix.Unix_error _ -> ()

(* Register a connection and serve it on its own thread.  Returns false
   (and closes the fd) if the server is already stopping.  This is how
   the accept loop admits sockets and how a shard adopts fds handed
   over by the balancer. *)
let adopt_connection t ?initial fd =
  let admit =
    locked t (fun () ->
        if t.stopping then false
        else begin
          t.conns <- fd :: t.conns;
          true
        end)
  in
  if admit then
    locked t (fun () ->
        t.handler_threads <-
          Thread.create (fun () -> handler_loop t ?initial fd) ()
          :: t.handler_threads)
  else Unix.close fd;
  admit

let accept_loop t listen_fd =
  let stop = ref false in
  while not !stop do
    if locked t (fun () -> t.stopping) then stop := true
    else
      (* Block in [select] rather than [accept] — closing a socket does
         not reliably wake a thread already inside [accept].  The
         self-pipe makes [request_stop] wake this select immediately;
         no poll-period latency on either accept or shutdown. *)
      match Unix.select [ listen_fd; t.stop_rd ] [] [] (-1.0) with
      | rd, _, _ when List.memq t.stop_rd rd -> stop := true
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
          match Unix.accept ~cloexec:true listen_fd with
          | fd, _ -> ignore (adopt_connection t fd)
          | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
              ()
          | exception Unix.Unix_error (Unix.EBADF, _, _) -> stop := true)
      | exception Unix.Unix_error ((Unix.EINTR | Unix.EBADF), _, _) -> ()
  done

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

(* Listening sockets are close-on-exec: the balancer respawns shard
   children from the process that holds them, and an inherited listener
   would keep a crashed balancer's address bound (and its clients
   EOF-less) for as long as any shard lives. *)
let bind_listen = function
  | Unix_path path ->
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      (fd, Unix_path path)
  | Tcp (host, port) ->
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      let addr = Unix.inet_addr_of_string host in
      Unix.bind fd (Unix.ADDR_INET (addr, port));
      Unix.listen fd 64;
      let bound_port =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> port
      in
      (fd, Tcp (host, bound_port))

(* A peer that disappears mid-write must surface as EPIPE on that
   connection, not as a process-killing SIGPIPE. *)
let ignore_sigpipe () =
  if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let make ~listen ~bound cfg predictor =
  ignore_sigpipe ();
  if cfg.queue_capacity < 1 then invalid_arg "Server.start: queue_capacity < 1";
  if cfg.max_batch < 1 then invalid_arg "Server.start: max_batch < 1";
  (* Computing the fingerprint before binding also forces the int8
     compilation for [`I8] servers: the first request pays no
     quantization latency, and a model that cannot compile fails at
     startup, not mid-serve. *)
  let fingerprint = Predictor.fingerprint ~numeric:cfg.numeric predictor in
  let stop_rd, stop_wr = Unix.pipe ~cloexec:true () in
  let spill = Option.map (fun dir -> Spill.create ~dir) cfg.spill_dir in
  let t =
    {
      cfg;
      predictor;
      fingerprint;
      listen;
      bound;
      stop_rd;
      stop_wr;
      spill;
      started_at = now ();
      m = Mutex.create ();
      queue_cv = Condition.create ();
      flow_cv = Condition.create ();
      corpus_cv = Condition.create ();
      queue = Queue.create ();
      cache = Lru.create ~capacity:cfg.cache_capacity;
      jobs = Hashtbl.create 16;
      flow_queue = Queue.create ();
      corpus_jobs = Hashtbl.create 16;
      corpus_queue = Queue.create ();
      corpus_inflight = Hashtbl.create 16;
      next_job_id = 0;
      stopping = false;
      conns = [];
      stats =
        {
          n_requests = 0;
          n_cache_hits = 0;
          n_cache_misses = 0;
          n_overloaded = 0;
          n_timeouts = 0;
          n_batches = 0;
          max_batch_seen = 0;
          n_epipe = 0;
          jobs_submitted = 0;
          jobs_done = 0;
          jobs_failed = 0;
          n_spill_hits = 0;
          n_spill_writes = 0;
          corpus_submitted = 0;
          corpus_dedup = 0;
          corpus_done = 0;
          corpus_failed = 0;
        };
      accept_thread = None;
      batcher_thread = None;
      flow_thread = None;
      corpus_thread = None;
      handler_threads = [];
    }
  in
  (* Eviction-to-disk hook: fires inside [Lru.put] while [t.m] is held,
     which is fine — entries are two small gcell maps and the write is
     one buffered temp file + rename. *)
  Option.iter
    (fun sp ->
      Lru.set_on_evict t.cache (fun key value ->
          if Spill.put sp key value then begin
            t.stats.n_spill_writes <- t.stats.n_spill_writes + 1;
            Obs.incr c_spill_write
          end))
    spill;
  Option.iter
    (fun listen_fd ->
      t.accept_thread <- Some (Thread.create (fun () -> accept_loop t listen_fd) ()))
    listen;
  t.batcher_thread <- Some (Thread.create (fun () -> batcher_loop t) ());
  t.flow_thread <- Some (Thread.create (fun () -> flow_loop t) ());
  t.corpus_thread <- Some (Thread.create (fun () -> corpus_loop t) ());
  t

let start cfg predictor =
  let listen_fd, bound = bind_listen cfg.address in
  make ~listen:(Some listen_fd) ~bound cfg predictor

let start_detached cfg predictor =
  make ~listen:None ~bound:cfg.address cfg predictor

let bound_addr t = t.bound
let fingerprint t = t.fingerprint
let numeric t = t.cfg.numeric

let request_stop t =
  let first =
    locked t (fun () ->
        if t.stopping then false
        else begin
          t.stopping <- true;
          Condition.broadcast t.queue_cv;
          Condition.broadcast t.flow_cv;
          Condition.broadcast t.corpus_cv;
          true
        end)
  in
  (* Self-pipe byte: wakes the accept loop's blocking select now. *)
  if first then
    try ignore (Unix.write t.stop_wr (Bytes.make 1 '!') 0 1)
    with Unix.Unix_error _ -> ()

let wait t =
  Option.iter Thread.join t.accept_thread;
  (* Unblock handlers parked in [recv_request] (receive side only:
     handlers waiting on a queued predict must still be able to send
     the reply once the batcher drains it below). *)
  locked t (fun () -> t.conns)
  |> List.iter (fun fd ->
         try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE
         with Unix.Unix_error _ -> ());
  (* The batcher drains the remaining queue before exiting (its loop
     only stops on [stopping && queue empty]); same for the flow
     worker.  Handlers waiting on pending outcomes therefore finish. *)
  Option.iter Thread.join t.batcher_thread;
  List.iter Thread.join (locked t (fun () -> t.handler_threads));
  Option.iter Thread.join t.flow_thread;
  Option.iter Thread.join t.corpus_thread;
  (* Flush the surviving hot set so a successor process starts warm —
     eviction only spilled the overflow; this writes what's resident. *)
  Option.iter
    (fun sp ->
      locked t (fun () ->
          Lru.iter t.cache (fun key value ->
              if Spill.put sp key value then begin
                t.stats.n_spill_writes <- t.stats.n_spill_writes + 1;
                Obs.incr c_spill_write
              end)))
    t.spill;
  Option.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) t.listen;
  (try Unix.close t.stop_rd with Unix.Unix_error _ -> ());
  (try Unix.close t.stop_wr with Unix.Unix_error _ -> ());
  match (t.listen, t.bound) with
  | Some _, Unix_path path -> (
      try Unix.unlink path with Unix.Unix_error _ -> ())
  | _ -> ()

let stop t =
  request_stop t;
  wait t
