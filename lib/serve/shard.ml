(* Shard-side of the balancer's control channel.

   A shard is a normal serving process ([Server.start_detached] — full
   batcher/LRU/spill/flow pipeline, no listening socket) that dials the
   balancer's control socket, announces itself with a [shard_hello],
   and then loops on control messages:

     'C'  adopt the attached fd as a client connection; the payload,
          when non-empty, is a raw request frame the balancer already
          consumed for routing, replayed as the connection's first
          request
     'D'  drain: stop gracefully (spilling the hot set) and exit

   EOF on the control channel means the balancer died; the shard drains
   and exits too rather than lingering unreachable. *)

module P = Protocol
module Obs = Dco3d_obs.Obs

let c_adopted = Obs.counter "shard/adopted"

type outcome = Drained | Balancer_gone

let run ~ctl_path (cfg : Server.config) predictor =
  let sock = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect sock (Unix.ADDR_UNIX ctl_path)
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  let t = Server.start_detached cfg predictor in
  let hello =
    {
      P.sh_pid = Unix.getpid ();
      sh_shard = cfg.Server.shard_id;
      sh_fingerprint = Server.fingerprint t;
      sh_numeric = Server.numeric_name (Server.numeric t);
    }
  in
  (match Fdpass.send_ctl sock ~tag:'H' (P.encode_shard_hello hello) with
   | () -> ()
   | exception e ->
       Server.stop t;
       (try Unix.close sock with Unix.Unix_error _ -> ());
       raise e);
  let rec loop () =
    match Fdpass.recv_ctl sock with
    | None -> Balancer_gone
    | Some ('C', payload, Some fd) ->
        let initial = if payload = "" then None else Some payload in
        if Server.adopt_connection t ?initial fd then Obs.incr c_adopted;
        loop ()
    | Some ('D', _, fd) ->
        Option.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) fd;
        Drained
    | Some (_, _, fd) ->
        (* Unknown tag from a newer balancer: drop any descriptor and
           keep serving rather than dying on it. *)
        Option.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) fd;
        loop ()
    | exception P.Protocol_error _ -> Balancer_gone
    | exception Unix.Unix_error _ -> Balancer_gone
  in
  let outcome = loop () in
  Server.stop t;
  (try Unix.close sock with Unix.Unix_error _ -> ());
  outcome
