(** One shard of the balanced serving fleet: a detached {!Server}
    driven entirely by connections handed over the balancer's
    Unix-domain control channel via [SCM_RIGHTS] ({!Fdpass}).

    The [dco3d serve --shard-of CTL] CLI is a thin wrapper around
    {!run}. *)

type outcome =
  | Drained  (** the balancer asked this shard to drain (rolling swap) *)
  | Balancer_gone  (** control channel hit EOF/error — balancer died *)

val run : ctl_path:string -> Server.config -> Dco3d_core.Predictor.t -> outcome
(** Connect to the balancer's control socket, register with a
    [shard_hello] (pid, shard id, model fingerprint, numeric path),
    then serve adopted connections until told to drain or the balancer
    disappears.  Returns after the server has fully drained (queued
    requests answered, hot set spilled).  The [Server.config.address]
    is never bound.
    @raise Unix.Unix_error if the control socket cannot be reached. *)
