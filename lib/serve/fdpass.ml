(* Unix-domain control-channel messaging with SCM_RIGHTS descriptor
   passing.  A control message is: one tag byte sent via sendmsg (the
   descriptor, when present, rides as ancillary data on that byte),
   then a u32_be payload length, then the payload — the length and
   payload travel as ordinary stream bytes so the C stub never deals
   with partial transfers. *)

external send_tag_fd : Unix.file_descr -> int -> Unix.file_descr -> unit
  = "dco3d_fdpass_send"

external recv_tag_fd : Unix.file_descr -> int * Unix.file_descr
  = "dco3d_fdpass_recv"

let no_fd : Unix.file_descr = Obj.magic (-1)

let send_ctl sock ?fd ~tag payload =
  let fd = match fd with Some fd -> fd | None -> no_fd in
  send_tag_fd sock (Char.code tag) fd;
  let len = String.length payload in
  let lenb = Bytes.create 4 in
  Bytes.set_int32_be lenb 0 (Int32.of_int len);
  Protocol.write_all sock lenb 0 4;
  if len > 0 then
    Protocol.write_all sock (Bytes.unsafe_of_string payload) 0 len

let recv_ctl sock =
  let tag, fd = recv_tag_fd sock in
  if tag < 0 then None
  else begin
    let fd = if Obj.magic fd < 0 then None else Some fd in
    let close_fd () = match fd with Some fd -> Unix.close fd | None -> () in
    match
      let lenb = Bytes.create 4 in
      Protocol.read_all sock lenb 0 4;
      let len = Int32.to_int (Bytes.get_int32_be lenb 0) in
      if len < 0 || len > Protocol.max_frame_bytes then
        raise (Protocol.Protocol_error
                 (Printf.sprintf "bad control payload length %d" len));
      let payload = Bytes.create len in
      Protocol.read_all sock payload 0 len;
      Bytes.unsafe_to_string payload
    with
    | payload -> Some (Char.chr (tag land 0xff), payload, fd)
    | exception e -> close_fd (); raise e
  end
