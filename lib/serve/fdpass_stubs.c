/* SCM_RIGHTS file-descriptor passing for the sharded serving fleet.
 *
 * OCaml 5.1's Unix library has no sendmsg/recvmsg binding, so the
 * balancer's zero-copy connection handoff needs these two stubs.  The
 * wire discipline keeps the stub side trivial: exactly ONE byte of
 * regular data (the control-message tag) travels per sendmsg, with an
 * optional descriptor attached as ancillary data.  Everything larger
 * (lengths, payloads) is streamed through ordinary read/write on the
 * same stream socket, where the existing OCaml loops already handle
 * partial transfers and EINTR.  Because SCM_RIGHTS acts as a message
 * barrier on SOCK_STREAM sockets, the one-byte recvmsg below can never
 * swallow bytes belonging to a later message.
 */

#include <caml/mlvalues.h>
#include <caml/memory.h>
#include <caml/alloc.h>
#include <caml/fail.h>
#include <caml/threads.h>
#include <caml/unixsupport.h>

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

/* send one tag byte, optionally with one descriptor attached.
   fd = -1 means "no descriptor".  Raises Unix_error on failure. */
CAMLprim value dco3d_fdpass_send(value vsock, value vtag, value vfd)
{
  CAMLparam3(vsock, vtag, vfd);
  int sock = Int_val(vsock);
  int fd = Int_val(vfd);
  char tag = (char)Int_val(vtag);
  char cbuf[CMSG_SPACE(sizeof(int))];
  struct iovec iov;
  struct msghdr msg;
  ssize_t n;

  memset(&msg, 0, sizeof msg);
  iov.iov_base = &tag;
  iov.iov_len = 1;
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  if (fd >= 0) {
    struct cmsghdr *cmsg;
    memset(cbuf, 0, sizeof cbuf);
    msg.msg_control = cbuf;
    msg.msg_controllen = CMSG_SPACE(sizeof(int));
    cmsg = CMSG_FIRSTHDR(&msg);
    cmsg->cmsg_level = SOL_SOCKET;
    cmsg->cmsg_type = SCM_RIGHTS;
    cmsg->cmsg_len = CMSG_LEN(sizeof(int));
    memcpy(CMSG_DATA(cmsg), &fd, sizeof(int));
  }

  caml_release_runtime_system();
  do {
    n = sendmsg(sock, &msg, 0);
  } while (n == -1 && errno == EINTR);
  caml_acquire_runtime_system();

  if (n == -1) caml_uerror("dco3d_fdpass_send", Nothing);
  CAMLreturn(Val_unit);
}

/* receive one tag byte plus an optional attached descriptor.
   Returns (tag, fd) where tag = -1 on EOF and fd = -1 when no
   descriptor arrived.  Raises Unix_error on failure. */
CAMLprim value dco3d_fdpass_recv(value vsock)
{
  CAMLparam1(vsock);
  CAMLlocal1(result);
  int sock = Int_val(vsock);
  char tag;
  char cbuf[CMSG_SPACE(sizeof(int))];
  struct iovec iov;
  struct msghdr msg;
  struct cmsghdr *cmsg;
  ssize_t n;
  int fd = -1;
  int flags = 0;

  /* A received descriptor must be close-on-exec: a shard that respawns
   * a sibling (or any future exec in this process) must not leak other
   * clients' connections into the child, where the extra dup would
   * defeat the fleet's EOF-based lifecycle signals. */
#ifdef MSG_CMSG_CLOEXEC
  flags = MSG_CMSG_CLOEXEC;
#endif

  memset(&msg, 0, sizeof msg);
  memset(cbuf, 0, sizeof cbuf);
  iov.iov_base = &tag;
  iov.iov_len = 1;
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  msg.msg_control = cbuf;
  msg.msg_controllen = sizeof cbuf;

  caml_release_runtime_system();
  do {
    n = recvmsg(sock, &msg, flags);
  } while (n == -1 && errno == EINTR);
  caml_acquire_runtime_system();

  if (n == -1) caml_uerror("dco3d_fdpass_recv", Nothing);

  for (cmsg = CMSG_FIRSTHDR(&msg); cmsg != NULL; cmsg = CMSG_NXTHDR(&msg, cmsg)) {
    if (cmsg->cmsg_level == SOL_SOCKET && cmsg->cmsg_type == SCM_RIGHTS &&
        cmsg->cmsg_len >= CMSG_LEN(sizeof(int)))
      memcpy(&fd, CMSG_DATA(cmsg), sizeof(int));
  }
#ifndef MSG_CMSG_CLOEXEC
  if (fd >= 0) fcntl(fd, F_SETFD, FD_CLOEXEC);
#endif

  result = caml_alloc_tuple(2);
  Store_field(result, 0, Val_int(n == 0 ? -1 : (int)(unsigned char)tag));
  Store_field(result, 1, Val_int(fd));
  CAMLreturn(result);
}
