(* Doubly-linked recency list + hashtable.  The list head is the
   most-recently-used entry, the tail the eviction candidate.  All
   operations are O(1). *)

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
}

type 'a t = {
  cap : int;
  table : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option;
  mutable tail : 'a node option;
  mutable on_evict : (string -> 'a -> unit) option;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Lru.create: negative capacity";
  {
    cap = capacity;
    table = Hashtbl.create (max 16 capacity);
    head = None;
    tail = None;
    on_evict = None;
  }

let set_on_evict c f = c.on_evict <- Some f

let capacity c = c.cap
let length c = Hashtbl.length c.table

let unlink c n =
  (match n.prev with
  | Some p -> p.next <- n.next
  | None -> c.head <- n.next);
  (match n.next with
  | Some s -> s.prev <- n.prev
  | None -> c.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front c n =
  n.next <- c.head;
  n.prev <- None;
  (match c.head with Some h -> h.prev <- Some n | None -> c.tail <- Some n);
  c.head <- Some n

let find c key =
  match Hashtbl.find_opt c.table key with
  | None -> None
  | Some n ->
      unlink c n;
      push_front c n;
      Some n.value

let mem c key = Hashtbl.mem c.table key

(* The single spot every capacity eviction funnels through — the spill
   hook lives here so "evicted" always implies "offered to disk". *)
let evict_tail c =
  match c.tail with
  | None -> ()
  | Some n ->
      unlink c n;
      Hashtbl.remove c.table n.key;
      match c.on_evict with Some f -> f n.key n.value | None -> ()

let put c key value =
  if c.cap > 0 then
    match Hashtbl.find_opt c.table key with
    | Some n ->
        n.value <- value;
        unlink c n;
        push_front c n
    | None ->
        if Hashtbl.length c.table >= c.cap then evict_tail c;
        let n = { key; value; prev = None; next = None } in
        Hashtbl.replace c.table key n;
        push_front c n

let iter c f =
  let rec go = function
    | None -> ()
    | Some n ->
        f n.key n.value;
        go n.next
  in
  go c.head

let clear c =
  Hashtbl.reset c.table;
  c.head <- None;
  c.tail <- None
