(* Disk spill for evicted LRU result-cache entries.

   One file per entry under the spill dir, named by the MD5 hex of the
   cache key, framed like the on-disk model files:

     "DCO3D-SPILL-V1" | 16-byte MD5(body) | body

   where body = Marshal of (key, (c_bottom, c_top)).  The stored key is
   re-checked on load, so an MD5 filename collision (or a stale file
   from another model — keys embed the fingerprint) can never serve the
   wrong maps.  Writes go through a temp file + rename so a crash
   mid-write leaves no torn entry; any corrupt file found on read is
   deleted and treated as a miss. *)

module T = Dco3d_tensor.Tensor

type t = { dir : string }

let magic = "DCO3D-SPILL-V1"

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ~dir =
  mkdir_p dir;
  { dir }

let dir t = t.dir
let path_of t key = Filename.concat t.dir (Digest.to_hex (Digest.string key) ^ ".spill")

(* Temp names carry a per-process sequence besides the pid: two threads
   writing the same key concurrently (the LRU eviction hook vs. the
   shutdown flush in [Server.wait]) would otherwise share one temp path
   and interleave writes — the digest check downgrades that to a
   deleted entry, but the entry is still silently lost. *)
let tmp_seq = Atomic.make 0

let put t key (value : T.t * T.t) =
  let body = Marshal.to_string (key, value) [] in
  let path = path_of t key in
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
      (Atomic.fetch_and_add tmp_seq 1)
  in
  try
    let oc = open_out_bin tmp in
    (try
       output_string oc magic;
       output_string oc (Digest.string body);
       output_string oc body;
       close_out oc
     with e ->
       close_out_noerr oc;
       raise e);
    Sys.rename tmp path;
    true
  with Sys_error _ | Unix.Unix_error _ ->
    (* Best-effort: a full or read-only disk must not break serving. *)
    (try Sys.remove tmp with Sys_error _ -> ());
    false

let discard path = try Sys.remove path with Sys_error _ -> ()

let find t key =
  let path = path_of t key in
  if not (Sys.file_exists path) then None
  else
    match
      let ic = open_in_bin path in
      Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
      let m = really_input_string ic (String.length magic) in
      if m <> magic then raise Exit;
      let digest = really_input_string ic (String.length (Digest.string "")) in
      let blen = in_channel_length ic - pos_in ic in
      let body = really_input_string ic blen in
      if Digest.string body <> digest then raise Exit;
      let stored_key, value = (Marshal.from_string body 0 : string * (T.t * T.t)) in
      if stored_key <> key then raise Exit;
      value
    with
    | value -> Some value
    | exception (Exit | End_of_file | Failure _ | Sys_error _) ->
        (* Truncated, corrupted, colliding, or unreadable: drop it so the
           next eviction can rewrite a good copy. *)
        discard path;
        None

let count t =
  match Sys.readdir t.dir with
  | entries ->
      Array.fold_left
        (fun n e -> if Filename.check_suffix e ".spill" then n + 1 else n)
        0 entries
  | exception Sys_error _ -> 0
