(* Disk spill for evicted LRU result-cache entries.

   One file per entry under the spill dir, named by the MD5 hex of the
   cache key, using the shared [Framing] layout:

     "DCO3D-SPILL-V1" | 16-byte MD5(body) | body

   where body = Marshal of (key, (c_bottom, c_top)).  The stored key is
   re-checked on load, so an MD5 filename collision (or a stale file
   from another model — keys embed the fingerprint) can never serve the
   wrong maps.  Framing handles temp-file + rename writes and deletes
   any corrupt file found on read, treating it as a miss. *)

module T = Dco3d_tensor.Tensor
module Framing = Dco3d_framing.Framing

type t = { dir : string }

let magic = "DCO3D-SPILL-V1"
let suffix = ".spill"

let create ~dir =
  Framing.mkdir_p dir;
  { dir }

let dir t = t.dir
let path_of t key = Framing.path_of ~dir:t.dir ~suffix key

let put t key (value : T.t * T.t) =
  let body = Marshal.to_string (key, value) [] in
  Framing.write_file ~magic ~path:(path_of t key) ~body

let find t key =
  let path = path_of t key in
  match Framing.read_file ~magic ~path with
  | None -> None
  | Some body -> (
      match (Marshal.from_string body 0 : string * (T.t * T.t)) with
      | stored_key, value when stored_key = key -> Some value
      | _ ->
          (* digest-valid but colliding/stale key: drop it so the next
             eviction can rewrite a good copy *)
          Framing.discard path;
          None
      | exception Failure _ ->
          Framing.discard path;
          None)

let count t = Framing.count_entries ~dir:t.dir ~suffix
