(** Blocking client for the [dco3d serve] daemon.

    One {!t} wraps one connection; requests on it are answered in
    order.  Not thread-safe — give each concurrent caller (e.g. each
    pool worker in the e2e test) its own connection. *)

type t

exception Error of string
(** Unexpected reply shape, [Server_error], or a failed flow job. *)

exception Lost_connection
(** The peer vanished mid-request (EOF, EPIPE/ECONNRESET, or a frame
    cut mid-flight).  {!predict} maps it to [Disconnected]; the other
    request helpers let it propagate.  The connection is closed. *)

val connect : Server.address -> t
(** Also ignores SIGPIPE for the process, so a daemon dying mid-request
    raises on this connection instead of killing the caller.  The
    client remembers the address, so {!retry} can redial after a
    [Disconnected].
    @raise Unix.Unix_error when nothing listens at the address. *)

val of_fd : Unix.file_descr -> t
(** Wrap an already-connected socket (e.g. one end of a socketpair the
    balancer health-checks shards through).  No redial on loss. *)

val close : t -> unit

val ping : t -> unit
(** Round-trip liveness check. @raise Error on anything but [Pong]. *)

val hello : ?want:Protocol.route_want -> t -> string * int * string
(** Route pin + handshake: sends [Hello want] (default [Want_any]) and
    returns the serving shard's [(fingerprint, shard_id, numeric)].
    Behind a balancer this must be the connection's first request —
    it is what the routing decision is made from. *)

type predict_outcome =
  | Ok of {
      c_bottom : Dco3d_tensor.Tensor.t;
      c_top : Dco3d_tensor.Tensor.t;
      cache_hit : bool;
    }
  | Overloaded of { queue_len : int; capacity : int }
  | Timed_out
  | Disconnected
      (** the connection died mid-request; the request may or may not
          have executed (predicts are idempotent, so re-sending is
          always safe) *)

val predict :
  ?timeout_ms:float ->
  t ->
  Dco3d_tensor.Tensor.t ->
  Dco3d_tensor.Tensor.t ->
  predict_outcome
(** [predict c f_bottom f_top] sends the raw [[7; ny; nx]] feature
    stacks and returns the daemon's congestion maps — bit-identical to
    a local [Predictor.predict] with the served model, whatever batch
    the daemon coalesced the request into.  [Overloaded] and
    [Timed_out] are expected backpressure outcomes, not errors. *)

val retry :
  ?attempts:int ->
  ?base_delay_s:float ->
  ?max_delay_s:float ->
  ?deadline_s:float ->
  ?seed:int ->
  ?timeout_ms:float ->
  t ->
  Dco3d_tensor.Tensor.t ->
  Dco3d_tensor.Tensor.t ->
  predict_outcome
(** {!predict} wrapped in jittered exponential backoff on the transient
    outcomes [Overloaded], [Timed_out], and [Disconnected].  The k-th
    retry waits [min max_delay_s (base_delay_s * 2^k)] scaled by a
    uniform jitter in [\[0.5, 1)] drawn from a deterministic stream
    ([seed]), so competing clients decorrelate instead of re-colliding.
    After [Disconnected], a client built with {!connect} redials before
    the next attempt — behind a balancer this turns a shard crash
    mid-request into a transparently retried success once the balancer
    has replaced the shard.  At most [attempts] total requests (default
    5) are sent; [deadline_s], when given, bounds the whole loop —
    sleeps are clamped to the budget remaining and no request is sent
    after it is exhausted.  When the loop gives up, the daemon's last
    outcome is returned verbatim.
    Defaults: [base_delay_s = 0.01], [max_delay_s = 0.5], no deadline.
    @raise Error as {!predict} does (server errors are not retried). *)

val submit_flow : t -> Protocol.flow_spec -> int
(** Enqueue a flow job; returns its id immediately. *)

val poll_flow : t -> int -> Protocol.job_status

val wait_flow :
  ?poll_interval_s:float -> t -> int -> Protocol.flow_summary
(** Poll until the job finishes (default every 50 ms).
    @raise Error if the job failed or the id is unknown. *)

val submit_corpus : t -> Protocol.corpus_req -> int
(** Enqueue a corpus job (PPA cell or dataset build); returns its id
    immediately.  An identical request already queued or running on
    the shard returns the in-flight job's id (deduped server-side). *)

val poll_corpus : t -> int -> Protocol.corpus_status

val wait_corpus :
  ?poll_interval_s:float -> t -> int -> Protocol.corpus_result
(** Poll until the corpus job finishes (default every 50 ms).
    @raise Error if the job failed or the id is unknown. *)

val stats : t -> (string * float) list
