(** Blocking client for the [dco3d serve] daemon.

    One {!t} wraps one connection; requests on it are answered in
    order.  Not thread-safe — give each concurrent caller (e.g. each
    pool worker in the e2e test) its own connection. *)

type t

exception Error of string
(** Unexpected reply shape, [Server_error], or a failed flow job. *)

val connect : Server.address -> t
(** Also ignores SIGPIPE for the process, so a daemon dying mid-request
    raises on this connection instead of killing the caller.
    @raise Unix.Unix_error when nothing listens at the address. *)

val close : t -> unit

val ping : t -> unit
(** Round-trip liveness check. @raise Error on anything but [Pong]. *)

type predict_outcome =
  | Ok of {
      c_bottom : Dco3d_tensor.Tensor.t;
      c_top : Dco3d_tensor.Tensor.t;
      cache_hit : bool;
    }
  | Overloaded of { queue_len : int; capacity : int }
  | Timed_out

val predict :
  ?timeout_ms:float ->
  t ->
  Dco3d_tensor.Tensor.t ->
  Dco3d_tensor.Tensor.t ->
  predict_outcome
(** [predict c f_bottom f_top] sends the raw [[7; ny; nx]] feature
    stacks and returns the daemon's congestion maps — bit-identical to
    a local [Predictor.predict] with the served model, whatever batch
    the daemon coalesced the request into.  [Overloaded] and
    [Timed_out] are expected backpressure outcomes, not errors. *)

val submit_flow : t -> Protocol.flow_spec -> int
(** Enqueue a flow job; returns its id immediately. *)

val poll_flow : t -> int -> Protocol.job_status

val wait_flow :
  ?poll_interval_s:float -> t -> int -> Protocol.flow_summary
(** Poll until the job finishes (default every 50 ms).
    @raise Error if the job failed or the id is unknown. *)

val stats : t -> (string * float) list
