type predict_payload = {
  f_bottom : Dco3d_tensor.Tensor.t;
  f_top : Dco3d_tensor.Tensor.t;
}

type flow_variant = Pin3d | Pin3d_cong

type flow_spec = {
  fl_design : string;
  fl_scale : float;
  fl_seed : int;
  fl_gcell : int;
  fl_variant : flow_variant;
}

(* What a client asks the balancer to route it to.  Matching is against
   the shard's numeric-aware model fingerprint. *)
type route_want =
  | Want_any
  | Want_numeric of string      (* "f32" | "i8" *)
  | Want_fingerprint of string

(* The third async request class: corpus PPA cells and corpus dataset
   builds, keyed on disk by (netlist digest, flow config, seed). *)
type corpus_kind =
  | Corpus_ppa
  | Corpus_dataset of int  (* n_samples *)

type corpus_req = {
  cr_spec : Dco3d_corpus.Corpus.spec;
  cr_config : Dco3d_corpus.Corpus.flow_config;
  cr_kind : corpus_kind;
}

(* New constructors are appended at the END of request/reply so Marshal
   tags of existing constructors never shift between releases. *)
type request =
  | Ping
  | Predict of predict_payload
  | Flow_submit of flow_spec
  | Flow_poll of int
  | Stats
  | Hello of route_want
  | Corpus_submit of corpus_req
  | Corpus_poll of int

type envelope = { req : request; timeout_ms : float option }

type flow_summary = {
  fs_name : string;
  fs_overflow : int;
  fs_wirelength_um : float;
  fs_wns_ps : float;
  fs_tns_ps : float;
  fs_power_mw : float;
}

type job_status =
  | Job_queued
  | Job_running
  | Job_done of flow_summary
  | Job_failed of string

type corpus_result =
  | Corpus_row of Dco3d_corpus.Corpus.row
  | Corpus_dataset_built of {
      cd_design : string;
      cd_samples : int;
      cd_digest : string;
    }

type corpus_status =
  | Corpus_queued
  | Corpus_running
  | Corpus_done of corpus_result
  | Corpus_failed of string

type reply =
  | Pong
  | Predicted of {
      c_bottom : Dco3d_tensor.Tensor.t;
      c_top : Dco3d_tensor.Tensor.t;
      cache_hit : bool;
    }
  | Accepted of int
  | Status of job_status
  | Stats_reply of (string * float) list
  | Overloaded of { queue_len : int; capacity : int }
  | Timed_out
  | Server_error of string
  | Hello_reply of { h_fingerprint : string; h_shard : int; h_numeric : string }
  | Corpus_status of corpus_status

exception Protocol_error of string

let magic = "DCO3D-SERVE-V1"
let version = 1
let max_frame_bytes = 256 * 1024 * 1024
let header_bytes = String.length magic + 1 + 4 + 16

(* ------------------------------------------------------------------ *)
(* Raw IO.  [Unix.read]/[Unix.write] may move fewer bytes than asked   *)
(* and may be interrupted; loop until done.                            *)
(* ------------------------------------------------------------------ *)

let rec write_all fd buf off len =
  if len > 0 then begin
    let n =
      try Unix.write fd buf off len with
      | Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd buf (off + n) (len - n)
  end

let read_all fd buf off len =
  let off = ref off and len = ref len in
  while !len > 0 do
    let n =
      try Unix.read fd buf !off !len with
      | Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    if n = 0 && !len > 0 then raise End_of_file;
    off := !off + n;
    len := !len - n
  done

let send_frame fd payload =
  let plen = String.length payload in
  if plen > max_frame_bytes then
    raise (Protocol_error (Printf.sprintf "frame too large: %d bytes" plen));
  let header = Bytes.create header_bytes in
  Bytes.blit_string magic 0 header 0 (String.length magic);
  Bytes.set_uint8 header (String.length magic) version;
  Bytes.set_int32_be header (String.length magic + 1) (Int32.of_int plen);
  Bytes.blit_string (Digest.string payload) 0 header (String.length magic + 5) 16;
  write_all fd header 0 header_bytes;
  write_all fd (Bytes.unsafe_of_string payload) 0 plen

let recv_frame fd =
  let header = Bytes.create header_bytes in
  (* Distinguish "peer closed between frames" (End_of_file, a normal
     disconnect) from "closed mid-frame" (protocol error). *)
  (try read_all fd header 0 1 with End_of_file -> raise End_of_file);
  (try read_all fd header 1 (header_bytes - 1)
   with End_of_file -> raise (Protocol_error "truncated frame header"));
  if Bytes.sub_string header 0 (String.length magic) <> magic then
    raise (Protocol_error "bad frame magic");
  let v = Bytes.get_uint8 header (String.length magic) in
  if v <> version then
    raise (Protocol_error (Printf.sprintf "unsupported protocol version %d" v));
  let plen = Int32.to_int (Bytes.get_int32_be header (String.length magic + 1)) in
  if plen < 0 || plen > max_frame_bytes then
    raise (Protocol_error (Printf.sprintf "bad frame length %d" plen));
  let digest = Bytes.sub_string header (String.length magic + 5) 16 in
  let payload = Bytes.create plen in
  (try read_all fd payload 0 plen
   with End_of_file -> raise (Protocol_error "truncated frame payload"));
  let payload = Bytes.unsafe_to_string payload in
  if Digest.string payload <> digest then
    raise (Protocol_error "frame digest mismatch");
  payload

(* The payload types are closure-free plain data, so Marshal round-trips
   them exactly (tensors travel as their shape + float array fields). *)
let send_value fd v = send_frame fd (Marshal.to_string v [])

let recv_value fd =
  let payload = recv_frame fd in
  try Marshal.from_string payload 0
  with Failure msg -> raise (Protocol_error ("undecodable payload: " ^ msg))

let send_request fd (e : envelope) = send_value fd e
let recv_request fd : envelope = recv_value fd
let send_reply fd (r : reply) = send_value fd r
let recv_reply fd : reply = recv_value fd

(* The balancer reads one raw frame per new connection to decide the
   route, then forwards those exact bytes to the chosen shard, which
   replays them through [decode_request] — no re-encoding, so the
   shard sees bit-for-bit what the client sent. *)
let decode_request payload : envelope =
  try Marshal.from_string payload 0
  with Failure msg -> raise (Protocol_error ("undecodable payload: " ^ msg))

(* Sent by a shard over the control channel right after connecting to
   the balancer, announcing what it serves. *)
type shard_hello = {
  sh_pid : int;
  sh_shard : int;
  sh_fingerprint : string;
  sh_numeric : string;
}

let encode_shard_hello (h : shard_hello) = Marshal.to_string h []

let decode_shard_hello payload : shard_hello =
  try Marshal.from_string payload 0
  with Failure msg ->
    raise (Protocol_error ("undecodable shard hello: " ^ msg))

let predict_key (p : predict_payload) =
  Digest.to_hex (Digest.string (Marshal.to_string (p.f_bottom, p.f_top) []))

(* In-flight dedup identity of a corpus request: two submits carrying
   the same (spec, config, kind) share one job. *)
let corpus_key (r : corpus_req) =
  Digest.to_hex (Digest.string (Marshal.to_string r []))
