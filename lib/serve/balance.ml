(* The fd-passing balancer: front process of the sharded serving fleet.

   One public socket, N shard daemons.  The balancer accepts a client
   connection, reads exactly ONE request frame to pick a shard, then
   hands the accepted descriptor to that shard over a Unix-domain
   control channel via SCM_RIGHTS ([Fdpass]) — together with the raw
   frame bytes, which the shard replays as the connection's first
   request.  After the handoff the balancer holds nothing: every
   subsequent frame flows directly between client and shard, so the
   fleet's steady-state data path has zero proxy copies.

   Routing: a [Hello want] first request pins the connection to a shard
   by numeric path or model fingerprint (the balancer answers the hello
   itself, then passes a bare fd).  Any other first request routes
   within the primary fingerprint group — slot 0's model — so clients
   that never hello always get results bit-identical to a direct
   [Predictor.predict] with that model: [Predict]s by hash affinity on
   their predict key (cache locality across connections), everything
   else round-robin.  While that group is momentarily empty (startup,
   mid-swap) default traffic gets [Overloaded] rather than a
   foreign-fingerprint shard; [Client.retry] rides through.

   Supervision: shards are child processes respawned from the same
   argv.  A health loop reaps crashed pids ([waitpid WNOHANG] per pid),
   pings each live shard over a private socketpair (handed to the shard
   as an ordinary adopted connection), SIGKILLs hung ones, and restarts
   with a small backoff.  [drain_shard] sends the control-channel drain
   command; the shard finishes queued work, spills its hot set, and
   exits — the health loop then respawns it, which is how
   [rolling_restart] swaps models with zero fleet downtime. *)

module P = Protocol
module Obs = Dco3d_obs.Obs

let c_accepted = Obs.counter "balance/accepted"
let c_handoffs = Obs.counter "balance/handoffs"
let c_no_shard = Obs.counter "balance/no_shard"
let c_restarts = Obs.counter "balance/restarts"
let c_health_fail = Obs.counter "balance/health_fail"

type config = {
  address : Server.address;
  ctl_path : string;
  n_shards : int;
  health_period_s : float;
  health_timeout_s : float;
  restart_backoff_s : float;
}

let default_config ~address ~ctl_path ~n_shards =
  {
    address;
    ctl_path;
    n_shards;
    health_period_s = 0.25;
    health_timeout_s = 5.0;
    restart_backoff_s = 0.2;
  }

type slot_state = Starting | Live | Draining | Dead

let state_name = function
  | Starting -> "starting"
  | Live -> "live"
  | Draining -> "draining"
  | Dead -> "dead"

type slot = {
  idx : int;
  g_live : Obs.gauge;  (* balance/shard:<i>/live *)
  send_m : Mutex.t;  (* serializes control-channel writes to this shard *)
  mutable pid : int;  (* -1 = no process *)
  mutable state : slot_state;
  mutable ctl : Unix.file_descr option;  (* control channel to the shard *)
  mutable health : Unix.file_descr option;  (* our end of the health pair *)
  mutable fingerprint : string;
  mutable numeric : string;
  mutable restarts : int;  (* completed respawns *)
  mutable respawn_at : float;  (* earliest next spawn, Unix time *)
}

type slot_info = {
  si_idx : int;
  si_state : string;
  si_pid : int;
  si_fingerprint : string;
  si_numeric : string;
  si_restarts : int;
}

type t = {
  cfg : config;
  argv_of : int -> string array;
  listen_fd : Unix.file_descr;
  bound : Server.address;
  ctl_fd : Unix.file_descr;
  stop_rd : Unix.file_descr;
  stop_wr : Unix.file_descr;
  m : Mutex.t;
  slots : slot array;
  mutable rr : int;  (* round-robin cursor *)
  mutable stopping : bool;
  mutable accept_thread : Thread.t option;
  mutable ctl_thread : Thread.t option;
  mutable health_thread : Thread.t option;
  mutable router_threads : Thread.t list;
}

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Send a control message to a shard WITHOUT holding [t.m] across the
   write.  A shard that stops reading (hung, or wedged on a spill
   write) would otherwise block the sender with the global lock held,
   and the health loop — which needs [t.m] to ping and SIGKILL — could
   never run: one stuck shard would deadlock the whole balancer.

   The ctl descriptor is duplicated under the lock so the health loop
   may reap the slot (closing [slot.ctl]) mid-send without the
   descriptor being recycled under our feet; the kernel socket stays
   alive until the dup is closed, and a send to a reaped shard just
   fails with EPIPE.  [slot.send_m] serializes concurrent senders —
   the control protocol is tag byte + length + payload, so interleaved
   writers would corrupt the framing.  A sender blocked on a hung
   shard holds only [send_m]; the watchdog stays free to SIGKILL the
   shard, which closes the peer end and unblocks the write. *)
let send_to_slot t slot ?fd ~tag ~when_ payload =
  let dup =
    locked t (fun () ->
        match slot.ctl with
        | Some ctl when when_ slot.state -> (
            match Unix.dup ~cloexec:true ctl with
            | d -> Some d
            | exception Unix.Unix_error _ -> None)
        | _ -> None)
  in
  match dup with
  | None -> false
  | Some d ->
      let ok =
        Mutex.lock slot.send_m;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock slot.send_m)
          (fun () ->
            match Fdpass.send_ctl d ?fd ~tag payload with
            | () -> true
            | exception _ -> false)
      in
      close_quiet d;
      ok

(* ------------------------------------------------------------------ *)
(* Slot lifecycle (all called with [t.m] held unless noted)            *)
(* ------------------------------------------------------------------ *)

let cleanup_slot slot =
  Option.iter close_quiet slot.ctl;
  Option.iter close_quiet slot.health;
  slot.ctl <- None;
  slot.health <- None;
  Obs.set_gauge slot.g_live 0.

let spawn_slot t slot =
  let argv = t.argv_of slot.idx in
  let pid = Unix.create_process argv.(0) argv Unix.stdin Unix.stdout Unix.stderr in
  slot.pid <- pid;
  slot.state <- Starting

(* The shard process connected to the control socket and said hello:
   wire it into its slot and hand it the health-check socketpair as a
   regular adopted connection. *)
let register_shard t sock (hello : P.shard_hello) =
  let ok =
    locked t (fun () ->
        if
          hello.P.sh_shard < 0
          || hello.P.sh_shard >= Array.length t.slots
          || t.stopping
        then false
        else begin
          let slot = t.slots.(hello.P.sh_shard) in
          (* A stale process from a previous incarnation of this slot
             must not displace the current one. *)
          if slot.pid <> hello.P.sh_pid then false
          else begin
            cleanup_slot slot;
            let h_bal, h_shard =
              Unix.socketpair ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0
            in
            (* Sending under [t.m] is safe only here: the payload is
               empty (one tag byte + a 4-byte length) into the empty
               buffer of a socket the shard just connected, so the
               write cannot block. *)
            (match Fdpass.send_ctl sock ~fd:h_shard ~tag:'C' "" with
             | () ->
                 close_quiet h_shard;
                 slot.ctl <- Some sock;
                 slot.health <- Some h_bal;
                 slot.fingerprint <- hello.P.sh_fingerprint;
                 slot.numeric <- hello.P.sh_numeric;
                 slot.state <- Live;
                 Obs.set_gauge slot.g_live 1.
             | exception _ ->
                 close_quiet h_shard;
                 close_quiet h_bal;
                 raise Exit);
            true
          end
        end)
  in
  if not ok then close_quiet sock

let ctl_accept_loop t =
  let stop = ref false in
  while not !stop do
    match Unix.select [ t.ctl_fd; t.stop_rd ] [] [] (-1.0) with
    | rd, _, _ when List.memq t.stop_rd rd -> stop := true
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
        match Unix.accept ~cloexec:true t.ctl_fd with
        | sock, _ -> (
            (* The shard speaks first ('H' + shard_hello).  Reading it
               inline is fine: shards are our own children and send the
               hello immediately after connecting. *)
            match Fdpass.recv_ctl sock with
            | Some ('H', payload, None) -> (
                match register_shard t sock (P.decode_shard_hello payload) with
                | () -> ()
                | exception _ -> close_quiet sock)
            | _ | (exception _) -> close_quiet sock)
        | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
            ()
        | exception Unix.Unix_error (Unix.EBADF, _, _) -> stop := true)
    | exception Unix.Unix_error ((Unix.EINTR | Unix.EBADF), _, _) -> ()
  done

(* ------------------------------------------------------------------ *)
(* Routing                                                             *)
(* ------------------------------------------------------------------ *)

let live_slots t = (* t.m held *)
  Array.to_list t.slots |> List.filter (fun s -> s.state = Live)

(* The model group a no-hello connection lands in: slot 0's model, so
   default traffic is deterministic regardless of which shard serves
   it.  While the group is empty (startup, or slot 0's model mid-swap
   with no same-fingerprint sibling) this returns nothing and the
   caller answers [Overloaded] — [Client.retry] rides through the gap.
   Falling back to a foreign-fingerprint shard (e.g. i8) would break
   the guarantee that default traffic is bit-identical to a direct
   predict with slot 0's model. *)
let primary_group t = (* t.m held *)
  let fp0 = t.slots.(0).fingerprint in
  if fp0 = "" then []
  else List.filter (fun s -> s.fingerprint = fp0) (live_slots t)

let round_robin t candidates = (* t.m held *)
  match candidates with
  | [] -> None
  | _ ->
      let n = List.length candidates in
      t.rr <- t.rr + 1;
      Some (List.nth candidates (t.rr mod n))

let pick_slot t (env : P.envelope) = (* t.m held *)
  match env.P.req with
  | P.Hello want ->
      let candidates =
        match want with
        | P.Want_any -> live_slots t
        | P.Want_numeric num ->
            List.filter (fun s -> s.numeric = num) (live_slots t)
        | P.Want_fingerprint fp ->
            List.filter (fun s -> s.fingerprint = fp) (live_slots t)
      in
      round_robin t candidates
  | P.Predict payload -> (
      (* Hash affinity: the same feature maps always land on the same
         shard of the primary group, so its LRU concentrates the hits
         instead of every shard caching everything. *)
      match primary_group t with
      | [] -> None
      | group ->
          let n = List.length group in
          let h = Hashtbl.hash (P.predict_key payload) in
          Some (List.nth group (h mod n)))
  | P.Flow_submit spec -> (
      (* Design affinity: all jobs on one design land on one shard of
         the primary group, so its flow worker's route cache and warm
         state concentrate per design instead of every shard routing
         every design. *)
      match primary_group t with
      | [] -> None
      | group ->
          let h = Hashtbl.hash spec.P.fl_design in
          Some (List.nth group (h mod List.length group)))
  | P.Corpus_submit req -> (
      (* Same per-design affinity for the corpus class. *)
      match primary_group t with
      | [] -> None
      | group ->
          let h = Hashtbl.hash req.P.cr_spec.Dco3d_corpus.Corpus.sp_name in
          Some (List.nth group (h mod List.length group)))
  | P.Ping | P.Stats | P.Flow_poll _ | P.Corpus_poll _ ->
      (* Job polls are connection-scoped: submit and poll travel on one
         connection, which lives on one shard, so round-robin is safe. *)
      round_robin t (primary_group t)

(* Route one accepted connection: read its first frame, pick a shard,
   hand the fd over.  Runs on a short-lived thread per connection so a
   slow first frame cannot head-of-line-block other clients. *)
let route_connection t fd =
  let reply_and_close r =
    (try P.send_reply fd r with _ -> ());
    close_quiet fd
  in
  match
    Obs.with_span "balance/route" (fun () ->
        (* A client that connects but never writes must not pin this
           thread forever. *)
        match Unix.select [ fd ] [] [] 30.0 with
        | [], _, _ -> `Drop
        | _ ->
            let payload = P.recv_frame fd in
            let env = P.decode_request payload in
            let target =
              locked t (fun () ->
                  match pick_slot t env with
                  | None -> None
                  | Some slot ->
                      (match env.P.req with
                      | P.Hello _ ->
                          (* The balancer owns the hello: pass a bare
                             fd (the shard sees a brand-new connection)
                             and answer the hello itself — but only
                             once the handoff succeeds, below. *)
                          Some
                            ( slot,
                              "",
                              Some
                                (P.Hello_reply
                                   {
                                     h_fingerprint = slot.fingerprint;
                                     h_shard = slot.idx;
                                     h_numeric = slot.numeric;
                                   }) )
                      | _ -> Some (slot, payload, None)))
            in
            match target with
            | None -> `No_shard
            | Some (slot, initial, reply) -> `Handoff (slot, initial, reply))
  with
  | `Drop -> close_quiet fd
  | `No_shard ->
      (* Transient: the fleet is mid-restart.  [Overloaded] lets
         [Client.retry] handle it transparently. *)
      Obs.incr c_no_shard;
      reply_and_close (P.Overloaded { queue_len = 0; capacity = 0 })
  | `Handoff (slot, initial, reply) -> (
      (* Draining still accepts the fd we already routed — the shard
         finishes existing work before exiting. *)
      let sent =
        send_to_slot t slot ~fd ~tag:'C' initial
          ~when_:(function Live | Draining -> true | Starting | Dead -> false)
      in
      match sent with
      | true ->
          Obs.incr c_handoffs;
          (* Hello replies go out only now, after the handoff stuck: a
             reply written before a failed handoff would be followed by
             the Overloaded frame below, and the client's next request
             would read that stray frame as its answer. *)
          Option.iter (fun r -> try P.send_reply fd r with _ -> ()) reply;
          (* The kernel duplicated the descriptor into the shard; our
             copy is now just a refcount to drop. *)
          close_quiet fd
      | false ->
          Obs.incr c_no_shard;
          reply_and_close (P.Overloaded { queue_len = 0; capacity = 0 }))
  | exception End_of_file -> close_quiet fd
  | exception P.Protocol_error msg ->
      reply_and_close (P.Server_error ("protocol error: " ^ msg))
  | exception _ -> close_quiet fd

let accept_loop t =
  let stop = ref false in
  while not !stop do
    match Unix.select [ t.listen_fd; t.stop_rd ] [] [] (-1.0) with
    | rd, _, _ when List.memq t.stop_rd rd -> stop := true
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
        (* cloexec everywhere a descriptor is born: a shard respawned
           by [spawn_slot] must inherit nothing but stdio, or a leaked
           dup defeats every EOF-based lifecycle signal in the fleet
           (shards waiting on balancer EOF, clients on shard EOF) and
           can keep a dead balancer's port bound. *)
        match Unix.accept ~cloexec:true t.listen_fd with
        | fd, _ ->
            Obs.incr c_accepted;
            let th = Thread.create (fun () -> route_connection t fd) () in
            locked t (fun () ->
                t.router_threads <-
                  th :: List.filteri (fun i _ -> i < 64) t.router_threads)
        | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
            ()
        | exception Unix.Unix_error (Unix.EBADF, _, _) -> stop := true)
    | exception Unix.Unix_error ((Unix.EINTR | Unix.EBADF), _, _) -> ()
  done

(* ------------------------------------------------------------------ *)
(* Health / supervision                                                *)
(* ------------------------------------------------------------------ *)

let now () = Unix.gettimeofday ()

(* Ping a shard over its private health connection with a hard reply
   timeout.  Any failure marks the shard unhealthy. *)
let health_ping t slot =
  match locked t (fun () -> slot.health) with
  | None -> true (* not wired yet; process liveness covers it *)
  | Some fd -> (
      let probe () =
        P.send_request fd { P.req = P.Ping; timeout_ms = None };
        match Unix.select [ fd ] [] [] t.cfg.health_timeout_s with
        | [], _, _ -> `Timeout
        | _ -> ( match P.recv_reply fd with P.Pong -> `Ok | _ -> `Bad)
      in
      match probe () with
      | `Ok -> true
      | `Timeout | `Bad -> false
      | exception _ -> false)

let reap_slot t slot = (* not holding t.m *)
  locked t (fun () ->
      cleanup_slot slot;
      slot.pid <- -1;
      slot.state <- Dead;
      slot.restarts <- slot.restarts + 1;
      slot.respawn_at <- now () +. t.cfg.restart_backoff_s)

let health_pass t =
  Array.iter
    (fun slot ->
      let pid, state = locked t (fun () -> (slot.pid, slot.state)) in
      match state with
      | Dead ->
          locked t (fun () ->
              if (not t.stopping) && slot.state = Dead && now () >= slot.respawn_at
              then begin
                Obs.incr c_restarts;
                spawn_slot t slot
              end)
      | Starting | Live | Draining -> (
          (* Reap if the process exited (crash, or a drain completing). *)
          match Unix.waitpid [ Unix.WNOHANG ] pid with
          | 0, _ ->
              if state = Live && not (health_ping t slot) then begin
                (* Hung: a shard that stops answering pings is as dead
                   as a crashed one, just politer.  Kill and respawn. *)
                Obs.incr c_health_fail;
                (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
                (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
                reap_slot t slot
              end
          | _pid, _status -> reap_slot t slot
          | exception Unix.Unix_error (Unix.ECHILD, _, _) -> reap_slot t slot))
    t.slots

let health_loop t =
  while not (locked t (fun () -> t.stopping)) do
    health_pass t;
    (* Sleep in small steps so stop requests are honored promptly. *)
    let slept = ref 0. in
    while
      !slept < t.cfg.health_period_s && not (locked t (fun () -> t.stopping))
    do
      Thread.delay 0.05;
      slept := !slept +. 0.05
    done
  done

(* ------------------------------------------------------------------ *)
(* Public API                                                          *)
(* ------------------------------------------------------------------ *)

let start cfg ~argv_of =
  if cfg.n_shards < 1 then invalid_arg "Balance.start: n_shards < 1";
  if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let ctl_fd, _ = Server.bind_listen (Server.Unix_path cfg.ctl_path) in
  let listen_fd, bound =
    try Server.bind_listen cfg.address
    with e ->
      close_quiet ctl_fd;
      (try Unix.unlink cfg.ctl_path with Unix.Unix_error _ -> ());
      raise e
  in
  let stop_rd, stop_wr = Unix.pipe ~cloexec:true () in
  let t =
    {
      cfg;
      argv_of;
      listen_fd;
      bound;
      ctl_fd;
      stop_rd;
      stop_wr;
      m = Mutex.create ();
      slots =
        Array.init cfg.n_shards (fun idx ->
            {
              idx;
              g_live = Obs.gauge (Printf.sprintf "balance/shard:%d/live" idx);
              send_m = Mutex.create ();
              pid = -1;
              state = Dead;
              ctl = None;
              health = None;
              fingerprint = "";
              numeric = "";
              restarts = -1;  (* first spawn is not a "restart" *)
              respawn_at = 0.;
            });
      rr = 0;
      stopping = false;
      accept_thread = None;
      ctl_thread = None;
      health_thread = None;
      router_threads = [];
    }
  in
  t.ctl_thread <- Some (Thread.create (fun () -> ctl_accept_loop t) ());
  locked t (fun () ->
      Array.iter
        (fun slot ->
          slot.restarts <- 0;
          spawn_slot t slot)
        t.slots);
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t.health_thread <- Some (Thread.create (fun () -> health_loop t) ());
  t

let bound_addr t = t.bound

let slots t =
  locked t (fun () ->
      Array.to_list t.slots
      |> List.map (fun s ->
             {
               si_idx = s.idx;
               si_state = state_name s.state;
               si_pid = s.pid;
               si_fingerprint = s.fingerprint;
               si_numeric = s.numeric;
               si_restarts = s.restarts;
             }))

let n_live t =
  locked t (fun () -> List.length (live_slots t))

let await_live ?(timeout_s = 60.) t n =
  let deadline = now () +. timeout_s in
  let rec go () =
    if n_live t >= n then true
    else if now () > deadline then false
    else begin
      Thread.delay 0.02;
      go ()
    end
  in
  go ()

let drain_shard t idx =
  if idx < 0 || idx >= Array.length t.slots then
    invalid_arg "Balance.drain_shard: bad shard index";
  let slot = t.slots.(idx) in
  let eligible =
    locked t (fun () ->
        match (slot.state, slot.ctl) with
        | Live, Some _ ->
            slot.state <- Draining;
            Obs.set_gauge slot.g_live 0.;
            true
        | _ -> false)
  in
  if eligible then
    (* Send failure means the shard is already dying; the health loop
       reaps it either way. *)
    ignore (send_to_slot t slot ~tag:'D' ~when_:(fun s -> s = Draining) "")

let rolling_restart ?(timeout_s = 120.) t =
  Array.for_all
    (fun slot ->
      let before = locked t (fun () -> slot.restarts) in
      drain_shard t slot.idx;
      (* Wait for this slot to cycle back to Live before touching the
         next one — that is what keeps the swap zero-downtime. *)
      let deadline = now () +. timeout_s in
      let rec wait () =
        let restarted, state =
          locked t (fun () -> (slot.restarts > before, slot.state))
        in
        if restarted && state = Live then true
        else if now () > deadline then false
        else begin
          Thread.delay 0.05;
          wait ()
        end
      in
      wait ())
    t.slots

let request_stop t =
  let first =
    locked t (fun () ->
        if t.stopping then false
        else begin
          t.stopping <- true;
          true
        end)
  in
  if first then
    try ignore (Unix.write t.stop_wr (Bytes.make 1 '!') 0 1)
    with Unix.Unix_error _ -> ()

let wait t =
  Option.iter Thread.join t.accept_thread;
  Option.iter Thread.join t.ctl_thread;
  Option.iter Thread.join t.health_thread;
  List.iter Thread.join (locked t (fun () -> t.router_threads));
  (* Graceful fleet shutdown: ask every shard to drain, then reap.
     The drain sends run outside [t.m] like all slot writes — a shard
     wedged with a full control buffer must not hang the shutdown with
     the lock held (the bounded reap below escalates to SIGKILL). *)
  let pids =
    locked t (fun () ->
        Array.to_list t.slots
        |> List.filter_map (fun slot ->
               if slot.pid > 0 then Some (slot, slot.pid) else None))
  in
  List.iter
    (fun (slot, _) -> ignore (send_to_slot t slot ~tag:'D' ~when_:(fun _ -> true) ""))
    pids;
  List.iter
    (fun (slot, pid) ->
      (* Bounded wait for the drain, then escalate. *)
      let deadline = now () +. 30. in
      let rec reap () =
        match Unix.waitpid [ Unix.WNOHANG ] pid with
        | 0, _ ->
            if now () > deadline then begin
              (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
              try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()
            end
            else begin
              Thread.delay 0.02;
              reap ()
            end
        | _ -> ()
        | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
      in
      reap ();
      locked t (fun () ->
          cleanup_slot slot;
          slot.pid <- -1;
          slot.state <- Dead))
    pids;
  close_quiet t.listen_fd;
  close_quiet t.ctl_fd;
  close_quiet t.stop_rd;
  close_quiet t.stop_wr;
  (try Unix.unlink t.cfg.ctl_path with Unix.Unix_error _ -> ());
  match t.bound with
  | Server.Unix_path path -> (
      try Unix.unlink path with Unix.Unix_error _ -> ())
  | Server.Tcp _ -> ()

let stop t =
  request_stop t;
  wait t
